(* Graph and generator tests. *)

let test_builder_basics () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_node b "a" in
  let c = Graph.Builder.add_node b "c" in
  Graph.Builder.add_edge b a c;
  let g = Graph.Builder.build b in
  Alcotest.(check int) "nodes" 2 (Graph.n_nodes g);
  Alcotest.(check int) "edges" 1 (Graph.n_edges g);
  Alcotest.(check int) "links (one-way counts)" 1 (Graph.n_links g);
  Alcotest.(check bool) "has edge" true (Graph.has_edge g a c);
  Alcotest.(check bool) "directed" false (Graph.has_edge g c a);
  Alcotest.(check string) "name" "a" (Graph.name g a);
  Alcotest.(check (option int)) "find_by_name" (Some c) (Graph.find_by_name g "c")

let test_builder_rejects_self_loop () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_node b "a" in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.Builder.add_edge: self-loop") (fun () ->
      Graph.Builder.add_edge b a a)

let test_duplicate_edges_ignored () =
  let g = Graph.of_links ~n:2 [ (0, 1); (0, 1); (1, 0) ] in
  Alcotest.(check int) "edges" 2 (Graph.n_edges g);
  Alcotest.(check int) "links" 1 (Graph.n_links g)

let test_succ_pred () =
  let g = Graph.of_links ~n:4 [ (0, 1); (0, 2); (3, 0) ] in
  Alcotest.(check (array int)) "succ 0" [| 1; 2; 3 |] (Graph.succ g 0);
  Alcotest.(check (array int)) "pred 1" [| 0 |] (Graph.pred g 1);
  Alcotest.(check int) "degree" 3 (Graph.degree g 0)

let test_connectivity () =
  Alcotest.(check bool) "ring connected" true
    (Graph.is_connected (Generators.ring ~n:5));
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_node b "x");
  ignore (Graph.Builder.add_node b "y");
  Alcotest.(check bool) "two isolated nodes" false
    (Graph.is_connected (Graph.Builder.build b))

let test_fattree_sizes () =
  List.iter
    (fun (k, nodes) ->
      let ft = Generators.fattree ~k in
      Alcotest.(check int)
        (Printf.sprintf "k=%d nodes" k)
        nodes
        (Graph.n_nodes ft.Generators.ft_graph);
      (* k^3/2 links: k^3/4 edge-agg + k^3/4 agg-core *)
      Alcotest.(check int)
        (Printf.sprintf "k=%d links" k)
        (k * k * k / 2)
        (Graph.n_links ft.Generators.ft_graph);
      Alcotest.(check bool) "connected" true
        (Graph.is_connected ft.Generators.ft_graph))
    [ (4, 20); (12, 180); (20, 500); (30, 1125) ]

let test_fattree_pods () =
  let ft = Generators.fattree ~k:4 in
  Array.iter
    (fun v -> Alcotest.(check int) "core pod" (-1) ft.Generators.ft_pod.(v))
    ft.Generators.ft_core;
  (* every edge switch connects only to aggs in its own pod *)
  Array.iter
    (fun e ->
      Array.iter
        (fun a ->
          Alcotest.(check int) "same pod" ft.Generators.ft_pod.(e)
            ft.Generators.ft_pod.(a))
        (Graph.succ ft.Generators.ft_graph e))
    ft.Generators.ft_edge

let test_ring_mesh () =
  let r = Generators.ring ~n:8 in
  Alcotest.(check int) "ring links" 8 (Graph.n_links r);
  let m = Generators.full_mesh ~n:7 in
  Alcotest.(check int) "mesh links" 21 (Graph.n_links m);
  Alcotest.(check int) "mesh degree" 6 (Graph.degree m 0)

let test_datacenter_shape () =
  let dc = Generators.datacenter ~clusters:8 ~leaves:16 ~spines:8 ~cores:5 () in
  Alcotest.(check int) "nodes" 197 (Graph.n_nodes dc.Generators.dc_graph);
  Alcotest.(check bool) "connected" true (Graph.is_connected dc.Generators.dc_graph);
  (* leaves attach only within their cluster *)
  let leaf0 = dc.Generators.dc_leaves.(0) in
  Alcotest.(check int) "leaf degree = spines" 8
    (Graph.degree dc.Generators.dc_graph leaf0)

let test_wan_shape () =
  let w = Generators.wan ~extra:1 ~pops:31 ~pop_size:33 ~seed:7 () in
  Alcotest.(check int) "nodes" 1086 (Graph.n_nodes w.Generators.wan_graph);
  Alcotest.(check bool) "connected" true (Graph.is_connected w.Generators.wan_graph)

let test_wan_deterministic () =
  let w1 = Generators.wan ~pops:5 ~pop_size:8 ~seed:3 () in
  let w2 = Generators.wan ~pops:5 ~pop_size:8 ~seed:3 () in
  Alcotest.(check (list (pair int int))) "same edges"
    (Graph.edges w1.Generators.wan_graph)
    (Graph.edges w2.Generators.wan_graph)

let test_random_connected () =
  for seed = 0 to 10 do
    let g = Generators.random_connected ~n:30 ~extra:10 ~seed in
    Alcotest.(check bool) "connected" true (Graph.is_connected g);
    Alcotest.(check int) "nodes" 30 (Graph.n_nodes g)
  done

let test_grid_star () =
  let g = Generators.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "grid nodes" 12 (Graph.n_nodes g);
  Alcotest.(check int) "grid links" 17 (Graph.n_links g);
  let s = Generators.star ~n:5 in
  Alcotest.(check int) "star links" 4 (Graph.n_links s);
  Alcotest.(check int) "hub degree" 4 (Graph.degree s 0)

let test_fold_and_stats () =
  let g = Generators.ring ~n:4 in
  Alcotest.(check int) "fold_nodes sums ids" 6
    (Graph.fold_nodes g ~init:0 ~f:( + ));
  let s = Format.asprintf "%a" Graph.pp_stats g in
  Alcotest.(check bool) "stats mention counts" true
    (Astring_contains.contains s "nodes=4" && Astring_contains.contains s "links=4")

let test_one_way_edge_link_count () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_node b "a" in
  let c = Graph.Builder.add_node b "c" in
  let d = Graph.Builder.add_node b "d" in
  Graph.Builder.add_edge b a c;
  Graph.Builder.add_link b c d;
  let g = Graph.Builder.build b in
  Alcotest.(check int) "3 directed edges" 3 (Graph.n_edges g);
  Alcotest.(check int) "2 links (one-way counts once)" 2 (Graph.n_links g)

let test_dot_output () =
  let g = Graph.of_links ~n:2 [ (0, 1) ] in
  let dot = Dot.to_string ~name:"t" g in
  Alcotest.(check bool) "mentions link" true
    (Astring_contains.contains dot "0 -- 1")

let test_dot_groups_and_direction () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_node b "a" in
  let c = Graph.Builder.add_node b "c" in
  Graph.Builder.add_edge b a c;
  let g = Graph.Builder.build b in
  let dot = Dot.to_string ~node_group:(fun v -> v) g in
  Alcotest.(check bool) "one-way edge rendered directed" true
    (Astring_contains.contains dot "dir=forward");
  Alcotest.(check bool) "group colors differ" true
    (Astring_contains.contains dot "fillcolor=\"#e6194b\""
    && Astring_contains.contains dot "fillcolor=\"#3cb44b\"")

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "builder" `Quick test_builder_basics;
          Alcotest.test_case "self-loop rejected" `Quick
            test_builder_rejects_self_loop;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges_ignored;
          Alcotest.test_case "succ/pred" `Quick test_succ_pred;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
        ] );
      ( "generators",
        [
          Alcotest.test_case "fattree sizes" `Quick test_fattree_sizes;
          Alcotest.test_case "fattree pods" `Quick test_fattree_pods;
          Alcotest.test_case "ring/mesh" `Quick test_ring_mesh;
          Alcotest.test_case "datacenter" `Quick test_datacenter_shape;
          Alcotest.test_case "wan" `Quick test_wan_shape;
          Alcotest.test_case "wan deterministic" `Quick test_wan_deterministic;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "grid/star" `Quick test_grid_star;
        ] );
      ( "accessors",
        [
          Alcotest.test_case "fold/stats" `Quick test_fold_and_stats;
          Alcotest.test_case "one-way links" `Quick test_one_way_edge_link_count;
        ] );
      ( "dot",
        [
          Alcotest.test_case "output" `Quick test_dot_output;
          Alcotest.test_case "groups/direction" `Quick
            test_dot_groups_and_direction;
        ] );
    ]

(* IPv4 addresses, prefixes and the LPM trie. *)

let ip = Alcotest.testable Ipv4.pp Ipv4.equal
let pfx = Alcotest.testable Prefix.pp Prefix.equal

let test_ipv4_parse () =
  Alcotest.(check ip) "parse" (Ipv4.of_octets 10 1 2 3)
    (Ipv4.of_string "10.1.2.3");
  Alcotest.(check (option reject)) "bad octet" None
    (Option.map ignore (Ipv4.of_string_opt "10.1.2.300"));
  Alcotest.(check (option reject)) "short" None
    (Option.map ignore (Ipv4.of_string_opt "10.1.2"));
  Alcotest.(check string) "roundtrip" "192.168.0.1"
    (Ipv4.to_string (Ipv4.of_string "192.168.0.1"))

let test_ipv4_bits () =
  let a = Ipv4.of_octets 128 0 0 1 in
  Alcotest.(check bool) "top bit" true (Ipv4.bit a 0);
  Alcotest.(check bool) "second bit" false (Ipv4.bit a 1);
  Alcotest.(check bool) "last bit" true (Ipv4.bit a 31)

let test_prefix_normalizes () =
  let p = Prefix.make (Ipv4.of_octets 10 1 2 3) 24 in
  Alcotest.(check string) "host bits dropped" "10.1.2.0/24" (Prefix.to_string p)

let test_prefix_parse () =
  Alcotest.(check pfx) "with length" (Prefix.make (Ipv4.of_octets 10 0 0 0) 8)
    (Prefix.of_string "10.0.0.0/8");
  Alcotest.(check pfx) "bare address is /32"
    (Prefix.make (Ipv4.of_octets 1 2 3 4) 32)
    (Prefix.of_string "1.2.3.4")

let test_prefix_mem_subset () =
  let p8 = Prefix.of_string "10.0.0.0/8" in
  let p24 = Prefix.of_string "10.1.2.0/24" in
  Alcotest.(check bool) "mem" true (Prefix.mem (Ipv4.of_string "10.1.2.3") p24);
  Alcotest.(check bool) "not mem" false
    (Prefix.mem (Ipv4.of_string "10.1.3.0") p24);
  Alcotest.(check bool) "subset" true (Prefix.subset p24 p8);
  Alcotest.(check bool) "not subset" false (Prefix.subset p8 p24);
  Alcotest.(check bool) "overlap" true (Prefix.overlap p8 p24);
  Alcotest.(check bool) "disjoint" false
    (Prefix.overlap p24 (Prefix.of_string "10.1.3.0/24"))

let test_prefix_split () =
  let lo, hi = Prefix.split (Prefix.of_string "10.0.0.0/8") in
  Alcotest.(check pfx) "lo" (Prefix.of_string "10.0.0.0/9") lo;
  Alcotest.(check pfx) "hi" (Prefix.of_string "10.128.0.0/9") hi;
  Alcotest.check_raises "cannot split /32"
    (Invalid_argument "Prefix.split: cannot split a /32") (fun () ->
      ignore (Prefix.split (Prefix.of_string "1.2.3.4/32")))

let test_trie_exact () =
  let t = Prefix_trie.create () in
  Prefix_trie.add t (Prefix.of_string "10.0.0.0/8") "eight";
  Prefix_trie.add t (Prefix.of_string "10.1.0.0/16") "sixteen";
  Alcotest.(check (option string)) "exact /8" (Some "eight")
    (Prefix_trie.find_exact t (Prefix.of_string "10.0.0.0/8"));
  Alcotest.(check (option string)) "exact /16" (Some "sixteen")
    (Prefix_trie.find_exact t (Prefix.of_string "10.1.0.0/16"));
  Alcotest.(check (option string)) "absent" None
    (Prefix_trie.find_exact t (Prefix.of_string "10.1.0.0/24"))

let test_trie_lpm () =
  let t = Prefix_trie.create () in
  Prefix_trie.add t (Prefix.of_string "0.0.0.0/0") "default";
  Prefix_trie.add t (Prefix.of_string "10.0.0.0/8") "eight";
  Prefix_trie.add t (Prefix.of_string "10.1.0.0/16") "sixteen";
  let get a =
    Option.map snd (Prefix_trie.lpm t (Ipv4.of_string a))
  in
  Alcotest.(check (option string)) "deep" (Some "sixteen") (get "10.1.2.3");
  Alcotest.(check (option string)) "mid" (Some "eight") (get "10.2.0.1");
  Alcotest.(check (option string)) "top" (Some "default") (get "192.168.0.1")

let test_trie_bindings_roundtrip () =
  let t = Prefix_trie.create () in
  let ps =
    [ "10.0.0.0/8"; "10.128.0.0/9"; "10.1.2.0/24"; "0.0.0.0/0"; "255.255.255.255/32" ]
  in
  List.iteri (fun i s -> Prefix_trie.add t (Prefix.of_string s) i) ps;
  Alcotest.(check int) "cardinal" 5 (Prefix_trie.cardinal t);
  List.iteri
    (fun i s ->
      Alcotest.(check (option int)) s (Some i)
        (List.assoc_opt (Prefix.of_string s)
           (List.map (fun (p, v) -> (p, v)) (Prefix_trie.bindings t))))
    ps

let test_trie_update () =
  let t = Prefix_trie.create () in
  let p = Prefix.of_string "10.0.0.0/8" in
  Prefix_trie.update t p (function None -> 1 | Some n -> n + 1);
  Prefix_trie.update t p (function None -> 1 | Some n -> n + 1);
  Alcotest.(check (option int)) "updated twice" (Some 2)
    (Prefix_trie.find_exact t p)

let test_trie_lpm_prefix () =
  let t = Prefix_trie.create () in
  Prefix_trie.add t (Prefix.of_string "10.0.0.0/8") "eight";
  Prefix_trie.add t (Prefix.of_string "10.1.0.0/16") "sixteen";
  (* longest bound prefix containing the whole query prefix *)
  (match Prefix_trie.lpm_prefix t (Prefix.of_string "10.1.2.0/24") with
  | Some (_, v) -> Alcotest.(check string) "contained in /16" "sixteen" v
  | None -> Alcotest.fail "no match");
  (match Prefix_trie.lpm_prefix t (Prefix.of_string "10.0.0.0/12") with
  | Some (_, v) -> Alcotest.(check string) "only /8 contains a /12" "eight" v
  | None -> Alcotest.fail "no match");
  Alcotest.(check bool) "nothing contains 192/8" true
    (Prefix_trie.lpm_prefix t (Prefix.of_string "192.0.0.0/8") = None)

let test_prefix_default_and_bits () =
  Alcotest.(check string) "default" "0.0.0.0/0" (Prefix.to_string Prefix.default);
  Alcotest.(check bool) "everything in default" true
    (Prefix.mem (Ipv4.of_string "255.255.255.255") Prefix.default);
  Alcotest.check_raises "bit out of range"
    (Invalid_argument "Prefix.bit: index out of range") (fun () ->
      ignore (Prefix.bit (Prefix.of_string "10.0.0.0/8") 8));
  Alcotest.check_raises "ipv4 bit out of range"
    (Invalid_argument "Ipv4.bit: index out of range") (fun () ->
      ignore (Ipv4.bit (Ipv4.of_string "1.2.3.4") 32))

(* property: LPM agrees with a linear scan *)

let gen_prefix =
  QCheck.Gen.(
    let* len = int_range 0 32 in
    let* bits = int_range 0 0xFFFFFF in
    let* hi = int_range 0 255 in
    let addr = Ipv4.of_int32_bits ((hi lsl 24) lor bits) in
    return (Prefix.make addr len))

let prop_lpm_matches_scan =
  QCheck.Test.make ~name:"trie lpm = linear scan" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 0 20) gen_prefix)
           (int_range 0 0xFFFFFFF)))
    (fun (prefixes, addr_bits) ->
      let addr = Ipv4.of_int32_bits addr_bits in
      let t = Prefix_trie.create () in
      List.iteri (fun i p -> Prefix_trie.add t p i) prefixes;
      let expect =
        (* last write wins per prefix, longest prefix first *)
        let indexed = List.mapi (fun i p -> (p, i)) prefixes in
        let matching = List.filter (fun (p, _) -> Prefix.mem addr p) indexed in
        match
          List.sort
            (fun ((a : Prefix.t), i) ((b : Prefix.t), j) ->
              compare (b.Prefix.len, j) (a.Prefix.len, i))
            matching
        with
        | [] -> None
        | (p, _) :: _ ->
          (* the trie stores one value per prefix: find last write *)
          let same = List.filter (fun (q, _) -> Prefix.equal p q) indexed in
          Some (snd (List.nth same (List.length same - 1)))
      in
      Option.map snd (Prefix_trie.lpm t addr) = expect)

let () =
  Alcotest.run "prefix"
    [
      ( "ipv4",
        [
          Alcotest.test_case "parse" `Quick test_ipv4_parse;
          Alcotest.test_case "bits" `Quick test_ipv4_bits;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "normalize" `Quick test_prefix_normalizes;
          Alcotest.test_case "parse" `Quick test_prefix_parse;
          Alcotest.test_case "mem/subset/overlap" `Quick test_prefix_mem_subset;
          Alcotest.test_case "split" `Quick test_prefix_split;
        ] );
      ( "trie",
        [
          Alcotest.test_case "exact" `Quick test_trie_exact;
          Alcotest.test_case "lpm" `Quick test_trie_lpm;
          Alcotest.test_case "bindings" `Quick test_trie_bindings_roundtrip;
          Alcotest.test_case "update" `Quick test_trie_update;
          Alcotest.test_case "lpm_prefix" `Quick test_trie_lpm_prefix;
          Alcotest.test_case "default/bits" `Quick test_prefix_default_and_bits;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_lpm_matches_scan ] );
    ]

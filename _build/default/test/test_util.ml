(* Union-split-find: unit tests and refinement laws. *)

let test_create_single_class () =
  let t = Union_split_find.create 5 in
  Alcotest.(check int) "classes" 1 (Union_split_find.num_classes t);
  Alcotest.(check int) "length" 5 (Union_split_find.length t);
  for i = 0 to 4 do
    Alcotest.(check int) "same class" (Union_split_find.find t 0)
      (Union_split_find.find t i)
  done

let test_create_empty () =
  let t = Union_split_find.create 0 in
  Alcotest.(check int) "classes" 0 (Union_split_find.num_classes t)

let test_split_basic () =
  let t = Union_split_find.create 6 in
  let c = Union_split_find.split t [ 1; 3 ] in
  Alcotest.(check int) "classes" 2 (Union_split_find.num_classes t);
  Alcotest.(check (list int)) "members" [ 1; 3 ] (Union_split_find.members t c);
  Alcotest.(check bool) "others unchanged" true
    (Union_split_find.find t 0 = Union_split_find.find t 2)

let test_split_whole_class_noop () =
  let t = Union_split_find.create 3 in
  let c0 = Union_split_find.find t 0 in
  let c = Union_split_find.split t [ 0; 1; 2 ] in
  Alcotest.(check int) "same id" c0 c;
  Alcotest.(check int) "classes" 1 (Union_split_find.num_classes t)

let test_split_rejects_cross_class () =
  let t = Union_split_find.create 4 in
  ignore (Union_split_find.split t [ 0 ]);
  Alcotest.check_raises "cross-class" (Invalid_argument
    "Union_split_find.split: elements span several classes") (fun () ->
      ignore (Union_split_find.split t [ 0; 1 ]))

let test_split_rejects_duplicates () =
  let t = Union_split_find.create 4 in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Union_split_find.split: duplicate element") (fun () ->
      ignore (Union_split_find.split t [ 1; 1 ]))

let test_refine_by_parity () =
  let t = Union_split_find.create 10 in
  let fresh =
    Union_split_find.refine t ~cls:(Union_split_find.find t 0)
      ~key:(fun x -> x mod 2)
  in
  Alcotest.(check int) "one new class" 1 (List.length fresh);
  Alcotest.(check int) "classes" 2 (Union_split_find.num_classes t);
  Alcotest.(check bool) "evens together" true
    (Union_split_find.find t 0 = Union_split_find.find t 8);
  Alcotest.(check bool) "odd/even apart" true
    (Union_split_find.find t 0 <> Union_split_find.find t 1)

let test_refine_stable_when_uniform () =
  let t = Union_split_find.create 8 in
  let fresh =
    Union_split_find.refine t ~cls:(Union_split_find.find t 0) ~key:(fun _ -> 0)
  in
  Alcotest.(check (list int)) "no change" [] fresh

let test_canonical_and_equal () =
  let a = Union_split_find.create 6 in
  let b = Union_split_find.create 6 in
  ignore (Union_split_find.split a [ 0; 2 ]);
  ignore (Union_split_find.split b [ 4; 5; 1; 3 ]);
  (* complementary splits of the same set: partitions coincide *)
  Alcotest.(check bool) "equal partitions" true (Union_split_find.equal a b)

let test_class_ids_cover_everything () =
  let t = Union_split_find.create 12 in
  ignore (Union_split_find.split t [ 1; 5; 7 ]);
  ignore (Union_split_find.split t [ 2 ]);
  let total =
    List.fold_left
      (fun acc c -> acc + Union_split_find.class_size t c)
      0 (Union_split_find.class_ids t)
  in
  Alcotest.(check int) "sizes sum to n" 12 total

let test_out_of_range_errors () =
  let t = Union_split_find.create 3 in
  Alcotest.check_raises "find oob"
    (Invalid_argument "Union_split_find: element out of range") (fun () ->
      ignore (Union_split_find.find t 3));
  Alcotest.check_raises "dead class"
    (Invalid_argument "Union_split_find: dead class id") (fun () ->
      ignore (Union_split_find.members t 99));
  Alcotest.check_raises "negative size"
    (Invalid_argument "Union_split_find.create: negative size") (fun () ->
      ignore (Union_split_find.create (-1)))

let test_to_class_array_and_refine_all () =
  let t = Union_split_find.create 6 in
  ignore (Union_split_find.refine_all t ~key:(fun x -> x mod 3));
  let arr = Union_split_find.to_class_array t in
  Alcotest.(check int) "array length" 6 (Array.length arr);
  Alcotest.(check bool) "classes by residue" true
    (arr.(0) = arr.(3) && arr.(1) = arr.(4) && arr.(0) <> arr.(1));
  Alcotest.(check bool) "refine_all stable after" false
    (Union_split_find.refine_all t ~key:(fun x -> x mod 3))

let test_timing () =
  let r, t = Timing.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "non-negative" true (t >= 0.0);
  Alcotest.(check bool) "time_ignore" true (Timing.time_ignore (fun () -> ()) >= 0.0)

(* qcheck: refinement laws *)

let gen_ops =
  QCheck.make
    QCheck.Gen.(
      pair (int_range 1 40)
        (list_size (int_range 0 8) (list_size (int_range 1 5) (int_range 0 39))))

let prop_splits_refine =
  QCheck.Test.make ~name:"splits only refine (never merge)" ~count:200 gen_ops
    (fun (n, splitss) ->
      let t = Union_split_find.create n in
      let snapshots = ref [ Union_split_find.canonical t ] in
      List.iter
        (fun xs ->
          let xs = List.sort_uniq compare (List.filter (fun x -> x < n) xs) in
          match xs with
          | [] -> ()
          | x :: rest ->
            let c = Union_split_find.find t x in
            let same_class = List.filter (fun y -> Union_split_find.find t y = c) rest in
            ignore (Union_split_find.split t (x :: same_class));
            snapshots := Union_split_find.canonical t :: !snapshots)
        splitss;
      (* each snapshot refines the previous: same canonical class implies
         same class earlier *)
      let rec check = function
        | later :: (earlier :: _ as rest) ->
          let ok = ref true in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              if later.(i) = later.(j) && earlier.(i) <> earlier.(j) then
                ok := false
            done
          done;
          !ok && check rest
        | _ -> true
      in
      check !snapshots)

let prop_refine_groups_by_key =
  QCheck.Test.make ~name:"refine groups exactly by key" ~count:200
    QCheck.(pair (int_range 1 50) (int_range 1 5))
    (fun (n, k) ->
      let t = Union_split_find.create n in
      ignore (Union_split_find.refine t ~cls:(Union_split_find.find t 0)
                ~key:(fun x -> x mod k));
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let same = Union_split_find.find t i = Union_split_find.find t j in
          if same <> (i mod k = j mod k) then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "util"
    [
      ( "union-split-find",
        [
          Alcotest.test_case "create" `Quick test_create_single_class;
          Alcotest.test_case "create empty" `Quick test_create_empty;
          Alcotest.test_case "split" `Quick test_split_basic;
          Alcotest.test_case "split whole = noop" `Quick test_split_whole_class_noop;
          Alcotest.test_case "split cross-class rejected" `Quick
            test_split_rejects_cross_class;
          Alcotest.test_case "split duplicates rejected" `Quick
            test_split_rejects_duplicates;
          Alcotest.test_case "refine by parity" `Quick test_refine_by_parity;
          Alcotest.test_case "refine uniform stable" `Quick
            test_refine_stable_when_uniform;
          Alcotest.test_case "canonical equality" `Quick test_canonical_and_equal;
          Alcotest.test_case "class ids cover" `Quick test_class_ids_cover_everything;
          Alcotest.test_case "errors" `Quick test_out_of_range_errors;
          Alcotest.test_case "class array / refine_all" `Quick
            test_to_class_array_and_refine_all;
          Alcotest.test_case "timing" `Quick test_timing;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_splits_refine; prop_refine_groups_by_key ] );
    ]

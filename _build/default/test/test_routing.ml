(* Protocol models: attribute orders and transfer functions (paper §3.2). *)

let line3 () = Graph.of_links ~n:3 [ (0, 1); (1, 2) ]

(* --- RIP --- *)

let test_rip_increments () =
  let srp = Rip.make (line3 ()) ~dest:0 in
  Alcotest.(check (option int)) "one hop" (Some 1) (srp.Srp.trans 1 0 (Some 0));
  Alcotest.(check (option int)) "bottom" None (srp.Srp.trans 1 0 None)

let test_rip_hop_limit () =
  let srp = Rip.make (line3 ()) ~dest:0 in
  Alcotest.(check (option int)) "at limit" None
    (srp.Srp.trans 1 0 (Some Rip.max_hops));
  Alcotest.(check (option int)) "below limit" (Some 15)
    (srp.Srp.trans 1 0 (Some 14))

let test_rip_prefers_shorter () =
  Alcotest.(check bool) "2 < 5" true (Rip.compare 2 5 < 0)

let test_rip_long_line_unreachable () =
  (* 20-node line: nodes past 15 hops get no route *)
  let n = 20 in
  let g = Graph.of_links ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let sol = Solver.solve_exn (Rip.make g ~dest:0) in
  Alcotest.(check (option int)) "reachable at 15" (Some 15) (Solution.label sol 15);
  Alcotest.(check (option int)) "unreachable at 16" None (Solution.label sol 16)

(* --- OSPF --- *)

let test_ospf_costs () =
  let cost u v = if u = 1 && v = 0 then 10 else 1 in
  let srp = Ospf.make ~cost (line3 ()) ~dest:0 in
  let sol = Solver.solve_exn srp in
  Alcotest.(check (option int)) "node1 cost" (Some 10)
    (Option.map (fun (a : Ospf.attr) -> a.Ospf.cost) (Solution.label sol 1));
  Alcotest.(check (option int)) "node2 cost" (Some 11)
    (Option.map (fun (a : Ospf.attr) -> a.Ospf.cost) (Solution.label sol 2))

let test_ospf_prefers_intra_area () =
  let a = { Ospf.cost = 10; inter_area = false } in
  let b = { Ospf.cost = 2; inter_area = true } in
  Alcotest.(check bool) "intra preferred despite cost" true (Ospf.compare a b < 0)

let test_ospf_area_crossing () =
  let area v = if v = 2 then 1 else 0 in
  let srp = Ospf.make ~area (line3 ()) ~dest:0 in
  let sol = Solver.solve_exn srp in
  Alcotest.(check (option bool)) "node1 intra" (Some false)
    (Option.map (fun (a : Ospf.attr) -> a.Ospf.inter_area) (Solution.label sol 1));
  Alcotest.(check (option bool)) "node2 inter" (Some true)
    (Option.map (fun (a : Ospf.attr) -> a.Ospf.inter_area) (Solution.label sol 2))

let test_ospf_rejects_nonpositive_cost () =
  let srp = Ospf.make ~cost:(fun _ _ -> 0) (line3 ()) ~dest:0 in
  Alcotest.check_raises "zero cost"
    (Invalid_argument "Ospf: link costs must be positive") (fun () ->
      ignore (srp.Srp.trans 1 0 (Some { Ospf.cost = 0; inter_area = false })))

(* --- BGP --- *)

let test_bgp_compare_lp_then_path () =
  let base = Bgp.init in
  let high_lp = { base with Bgp.lp = 200; path = [ 1; 2; 3 ] } in
  let short = { base with Bgp.path = [ 1 ] } in
  Alcotest.(check bool) "lp wins over length" true (Bgp.compare high_lp short < 0);
  let a = { base with Bgp.path = [ 1 ] } in
  let b = { base with Bgp.path = [ 2; 3 ] } in
  Alcotest.(check bool) "shorter path wins" true (Bgp.compare a b < 0);
  let c = { base with Bgp.path = [ 2 ] } in
  Alcotest.(check int) "tie" 0 (Bgp.compare a c)

let test_bgp_med_tiebreak () =
  let a = { Bgp.init with Bgp.med = 1; path = [ 7 ] } in
  let b = { Bgp.init with Bgp.med = 5; path = [ 8 ] } in
  Alcotest.(check bool) "lower med preferred" true (Bgp.compare a b < 0)

let test_bgp_communities () =
  let a = Bgp.add_comm 5 (Bgp.add_comm 3 (Bgp.add_comm 5 Bgp.init)) in
  Alcotest.(check (list int)) "sorted, deduped" [ 3; 5 ] a.Bgp.comms;
  Alcotest.(check bool) "has" true (Bgp.has_comm 3 a);
  let a = Bgp.del_comm 3 a in
  Alcotest.(check bool) "deleted" false (Bgp.has_comm 3 a)

let test_bgp_appends_path_and_loop_check () =
  let g = line3 () in
  let srp = Bgp.make ~policy:(fun _ _ a -> Some a) g ~dest:0 in
  (match srp.Srp.trans 1 0 (Some Bgp.init) with
  | Some a -> Alcotest.(check (list int)) "appended" [ 0 ] a.Bgp.path
  | None -> Alcotest.fail "dropped");
  (* a route whose path already contains the receiver is rejected *)
  Alcotest.(check bool) "loop rejected" true
    (srp.Srp.trans 1 2 (Some { Bgp.init with Bgp.path = [ 1; 0 ] }) = None);
  (* without loop prevention it is accepted *)
  let srp' =
    Bgp.make ~loop_prevention:false ~policy:(fun _ _ a -> Some a) g ~dest:0
  in
  Alcotest.(check bool) "accepted without prevention" true
    (srp'.Srp.trans 1 2 (Some { Bgp.init with Bgp.path = [ 1; 0 ] }) <> None)

let test_bgp_policy_applied () =
  let g = line3 () in
  let policy u _v a =
    if u = 2 then Some (Bgp.add_comm 9 { a with Bgp.lp = 150 }) else Some a
  in
  let srp = Bgp.make ~policy g ~dest:0 in
  let sol = Solver.solve_exn srp in
  match Solution.label sol 2 with
  | Some a ->
    Alcotest.(check int) "lp set" 150 a.Bgp.lp;
    Alcotest.(check (list int)) "comm added" [ 9 ] a.Bgp.comms
  | None -> Alcotest.fail "no route at node 2"

(* --- static routes --- *)

let test_static_spontaneous () =
  let g = line3 () in
  let srp = Static_route.make g ~dest:0 ~routes:[ (1, 0) ] in
  Alcotest.(check bool) "route present without neighbor attr" true
    (srp.Srp.trans 1 0 None = Some ());
  Alcotest.(check bool) "no route elsewhere" true (srp.Srp.trans 2 1 None = None);
  Alcotest.(check bool) "non-spontaneity violated by design" false
    (Srp.non_spontaneous srp)

let test_static_rejects_missing_edge () =
  let g = line3 () in
  Alcotest.check_raises "missing edge"
    (Invalid_argument "Static_route.make: route along a missing edge")
    (fun () -> ignore (Static_route.make g ~dest:0 ~routes:[ (2, 0) ]))

let test_static_loop_representable () =
  (* Figure 6 made pathological: two nodes pointing at each other *)
  let g = Graph.of_links ~n:3 [ (0, 1); (1, 2) ] in
  let srp = Static_route.make g ~dest:0 ~routes:[ (1, 2); (2, 1) ] in
  let sol = Solver.solve_exn srp in
  let fwd1 = Solution.fwd sol 1 and fwd2 = Solution.fwd sol 2 in
  Alcotest.(check (list (pair int int))) "1 -> 2" [ (1, 2) ] fwd1;
  Alcotest.(check (list (pair int int))) "2 -> 1" [ (2, 1) ] fwd2

(* --- multi-protocol --- *)

let test_admin_distance_order () =
  Alcotest.(check bool) "static < ebgp" true
    (Multi.admin_distance Multi.P_static < Multi.admin_distance Multi.P_ebgp);
  Alcotest.(check bool) "ebgp < ospf" true
    (Multi.admin_distance Multi.P_ebgp < Multi.admin_distance Multi.P_ospf);
  Alcotest.(check bool) "ospf < ibgp" true
    (Multi.admin_distance Multi.P_ospf < Multi.admin_distance Multi.P_ibgp)

let test_multi_selects_by_ad () =
  let a =
    {
      Multi.static_ = false;
      ospf = Some { Ospf.cost = 1; inter_area = false };
      bgp = Some { Multi.battr = Bgp.init; via_ibgp = false };
    }
  in
  Alcotest.(check bool) "ebgp selected over ospf" true
    (Multi.selected a = Multi.P_ebgp);
  let b = { a with Multi.static_ = true } in
  Alcotest.(check bool) "static wins" true (Multi.selected b = Multi.P_static)

let test_multi_static_beats_bgp_in_solution () =
  let g = line3 () in
  let srp = Multi.make ~static_routes:[ (1, 0) ] g ~dest:0 in
  let sol = Solver.solve_exn srp in
  match Solution.label sol 1 with
  | Some a -> Alcotest.(check bool) "selected static" true (Multi.selected a = Multi.P_static)
  | None -> Alcotest.fail "no route"

let test_multi_ospf_only_network () =
  let g = line3 () in
  let srp =
    Multi.make ~bgp_enabled:(fun _ _ -> false) ~origin_protocols:[ Multi.P_ospf ]
      g ~dest:0
  in
  let sol = Solver.solve_exn srp in
  match Solution.label sol 2 with
  | Some a ->
    Alcotest.(check bool) "ospf selected" true (Multi.selected a = Multi.P_ospf);
    Alcotest.(check (option int)) "cost 2" (Some 2)
      (Option.map (fun (o : Ospf.attr) -> o.Ospf.cost) a.Multi.ospf)
  | None -> Alcotest.fail "no route"

let test_multi_redistribution_ospf_into_bgp () =
  (* 0 -(ospf)- 1 -(bgp)- 2: node 1 redistributes OSPF into BGP *)
  let g = line3 () in
  let srp =
    Multi.make
      ~ospf_enabled:(fun u v -> (u, v) = (1, 0) || (u, v) = (0, 1))
      ~bgp_enabled:(fun u v -> (u, v) = (1, 2) || (u, v) = (2, 1))
      ~redistribute:(fun v -> if v = 1 then [ Multi.Ospf_into_bgp ] else [])
      ~origin_protocols:[ Multi.P_ospf ] g ~dest:0
  in
  let sol = Solver.solve_exn srp in
  (match Solution.label sol 1 with
  | Some a -> Alcotest.(check bool) "1 has ospf" true (Option.is_some a.Multi.ospf)
  | None -> Alcotest.fail "no route at 1");
  match Solution.label sol 2 with
  | Some a ->
    Alcotest.(check bool) "2 got bgp via redistribution" true
      (Option.is_some a.Multi.bgp)
  | None -> Alcotest.fail "no route at 2"

let test_multi_ibgp_no_readvertise () =
  (* chain of three iBGP sessions: third node must not learn the route
     because routes learned over iBGP are not re-advertised *)
  let g = Graph.of_links ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let srp =
    Multi.make
      ~ibgp:(fun u v -> (min u v, max u v) <> (0, 1))
      ~ospf_enabled:(fun _ _ -> false)
      ~origin_protocols:[ Multi.P_ebgp ] g ~dest:0
  in
  let sol = Solver.solve_exn srp in
  Alcotest.(check bool) "2 learns over ibgp" true
    (match Solution.label sol 2 with
    | Some a -> a.Multi.bgp <> None
    | None -> false);
  Alcotest.(check bool) "3 does not" true (Solution.label sol 3 = None)

let test_multi_ibgp_keeps_path () =
  let g = line3 () in
  let srp = Multi.make ~ibgp:(fun _ _ -> true) g ~dest:0 in
  match srp.Srp.trans 1 0 (Some {
      Multi.static_ = false; ospf = None;
      bgp = Some { Multi.battr = Bgp.init; via_ibgp = false } }) with
  | Some { Multi.bgp = Some b; _ } ->
    Alcotest.(check (list int)) "path unchanged over ibgp" [] b.Multi.battr.Bgp.path;
    Alcotest.(check bool) "marked ibgp" true b.Multi.via_ibgp
  | _ -> Alcotest.fail "route dropped"

(* --- SRP helpers -------------------------------------------------------- *)

let test_non_spontaneous () =
  let g = line3 () in
  Alcotest.(check bool) "rip" true (Srp.non_spontaneous (Rip.make g ~dest:0));
  Alcotest.(check bool) "ospf" true (Srp.non_spontaneous (Ospf.make g ~dest:0));
  Alcotest.(check bool) "bgp" true
    (Srp.non_spontaneous (Bgp.make ~policy:(fun _ _ a -> Some a) g ~dest:0));
  Alcotest.(check bool) "multi" true (Srp.non_spontaneous (Multi.make g ~dest:0))

let test_pp_label () =
  let srp = Rip.make (line3 ()) ~dest:0 in
  Alcotest.(check string) "bottom" "⊥"
    (Format.asprintf "%a" (Srp.pp_label srp) None);
  Alcotest.(check string) "attr" "3"
    (Format.asprintf "%a" (Srp.pp_label srp) (Some 3))

let test_map_graph () =
  let srp = Rip.make (line3 ()) ~dest:0 in
  let g' = Generators.ring ~n:4 in
  let srp' = Srp.map_graph srp g' ~dest:2 in
  Alcotest.(check int) "new dest" 2 srp'.Srp.dest;
  Alcotest.(check int) "new graph" 4 (Graph.n_nodes srp'.Srp.graph);
  (* protocol parts survive *)
  Alcotest.(check (option int)) "trans" (Some 1) (srp'.Srp.trans 1 2 (Some 0))

let test_multi_static_into_bgp () =
  (* 0 -(static at 1)- 1 -(bgp)- 2: node 1 redistributes its static route *)
  let g = line3 () in
  let srp =
    Multi.make
      ~ospf_enabled:(fun _ _ -> false)
      ~bgp_enabled:(fun u v -> (u, v) = (1, 2) || (u, v) = (2, 1))
      ~static_routes:[ (1, 0) ]
      ~redistribute:(fun v -> if v = 1 then [ Multi.Static_into_bgp ] else [])
      ~origin_protocols:[ Multi.P_static ] g ~dest:0
  in
  let sol = Solver.solve_exn srp in
  (match Solution.label sol 1 with
  | Some a -> Alcotest.(check bool) "1 uses static" true (a.Multi.static_ = true)
  | None -> Alcotest.fail "no route at 1");
  match Solution.label sol 2 with
  | Some a ->
    Alcotest.(check bool) "2 got redistributed bgp" true (a.Multi.bgp <> None)
  | None -> Alcotest.fail "no route at 2"

let test_multi_pp_smoke () =
  let a =
    {
      Multi.static_ = true;
      ospf = Some { Ospf.cost = 3; inter_area = true };
      bgp = Some { Multi.battr = Bgp.init; via_ibgp = true };
    }
  in
  let s = Format.asprintf "%a" Multi.pp a in
  Alcotest.(check bool) "mentions selection" true
    (Astring_contains.contains s "sel=static");
  Alcotest.(check bool) "mentions ibgp" true (Astring_contains.contains s "ibgp")

let test_bgp_tie_filter () =
  let a = { Bgp.init with Bgp.comms = [ 5 ]; path = [ 1 ] } in
  let b = { Bgp.init with Bgp.comms = []; path = [ 2 ] } in
  (* default comparison tie-breaks on the communities *)
  Alcotest.(check bool) "unfiltered orders" true (Bgp.compare a b <> 0);
  (* filtering community 5 away restores the tie *)
  Alcotest.(check int) "filtered ties" 0
    (Bgp.compare_with ~tie_filter:(fun c -> c <> 5) a b)

let () =
  Alcotest.run "routing"
    [
      ( "rip",
        [
          Alcotest.test_case "increments" `Quick test_rip_increments;
          Alcotest.test_case "hop limit" `Quick test_rip_hop_limit;
          Alcotest.test_case "prefers shorter" `Quick test_rip_prefers_shorter;
          Alcotest.test_case "long line unreachable" `Quick
            test_rip_long_line_unreachable;
        ] );
      ( "ospf",
        [
          Alcotest.test_case "costs" `Quick test_ospf_costs;
          Alcotest.test_case "intra-area preferred" `Quick
            test_ospf_prefers_intra_area;
          Alcotest.test_case "area crossing" `Quick test_ospf_area_crossing;
          Alcotest.test_case "positive costs" `Quick
            test_ospf_rejects_nonpositive_cost;
        ] );
      ( "bgp",
        [
          Alcotest.test_case "compare" `Quick test_bgp_compare_lp_then_path;
          Alcotest.test_case "med tiebreak" `Quick test_bgp_med_tiebreak;
          Alcotest.test_case "communities" `Quick test_bgp_communities;
          Alcotest.test_case "path append + loop check" `Quick
            test_bgp_appends_path_and_loop_check;
          Alcotest.test_case "policy applied" `Quick test_bgp_policy_applied;
        ] );
      ( "static",
        [
          Alcotest.test_case "spontaneous" `Quick test_static_spontaneous;
          Alcotest.test_case "missing edge rejected" `Quick
            test_static_rejects_missing_edge;
          Alcotest.test_case "loops representable" `Quick
            test_static_loop_representable;
        ] );
      ( "srp",
        [
          Alcotest.test_case "non-spontaneity" `Quick test_non_spontaneous;
          Alcotest.test_case "pp_label" `Quick test_pp_label;
          Alcotest.test_case "map_graph" `Quick test_map_graph;
          Alcotest.test_case "bgp tie filter" `Quick test_bgp_tie_filter;
        ] );
      ( "multi",
        [
          Alcotest.test_case "admin distance" `Quick test_admin_distance_order;
          Alcotest.test_case "selection by AD" `Quick test_multi_selects_by_ad;
          Alcotest.test_case "static beats bgp" `Quick
            test_multi_static_beats_bgp_in_solution;
          Alcotest.test_case "ospf-only" `Quick test_multi_ospf_only_network;
          Alcotest.test_case "redistribution" `Quick
            test_multi_redistribution_ospf_into_bgp;
          Alcotest.test_case "ibgp no readvertise" `Quick
            test_multi_ibgp_no_readvertise;
          Alcotest.test_case "ibgp keeps path" `Quick test_multi_ibgp_keeps_path;
          Alcotest.test_case "static into bgp" `Quick test_multi_static_into_bgp;
          Alcotest.test_case "pp" `Quick test_multi_pp_smoke;
        ] );
    ]

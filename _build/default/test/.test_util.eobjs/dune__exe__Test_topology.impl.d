test/test_topology.ml: Alcotest Array Astring_contains Dot Format Generators Graph List Printf

test/test_abstract_config.mli:

test/test_prefix.ml: Alcotest Ipv4 List Option Prefix Prefix_trie QCheck QCheck_alcotest

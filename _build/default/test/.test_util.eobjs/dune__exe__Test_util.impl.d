test/test_util.ml: Alcotest Array List QCheck QCheck_alcotest Timing Union_split_find

test/test_config_text.mli:

test/test_simulate.ml: Alcotest Array Astring_contains Bgp Compile Ecs Format Generators Graph List Ospf Printf QCheck QCheck_alcotest Queue Rip Solution Solver Srp String Synthesis

test/test_lint.ml: Acl Alcotest Array Bdd Bgp Cond_bdd Config_text Device Diag Format Generators Lint List Prefix QCheck QCheck_alcotest Route_map String Synthesis

test/test_bdd.ml: Alcotest Bdd Bvec Fun List QCheck QCheck_alcotest

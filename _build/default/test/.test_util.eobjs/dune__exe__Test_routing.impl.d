test/test_routing.ml: Alcotest Astring_contains Bgp Format Generators Graph List Multi Option Ospf Rip Solution Solver Srp Static_route

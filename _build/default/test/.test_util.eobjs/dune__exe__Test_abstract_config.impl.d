test/test_abstract_config.ml: Abstract_config Abstraction Alcotest Array Bonsai_api Compile Device Ecs Fun Generators Graph List Prefix Printf Properties Solution Solver Synthesis

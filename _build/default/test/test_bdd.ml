(* BDD substrate: unit tests plus property tests checking agreement with a
   brute-force truth-table semantics, and canonicity (semantic equality is
   physical equality). *)

(* A tiny Boolean-formula AST with an evaluator, used as the reference
   semantics. *)
type form =
  | Var of int
  | Const of bool
  | Not of form
  | And of form * form
  | Or of form * form
  | Xor of form * form

let rec eval_form env = function
  | Var i -> env i
  | Const b -> b
  | Not f -> not (eval_form env f)
  | And (a, b) -> eval_form env a && eval_form env b
  | Or (a, b) -> eval_form env a || eval_form env b
  | Xor (a, b) -> eval_form env a <> eval_form env b

let rec to_bdd m = function
  | Var i -> Bdd.var m i
  | Const true -> Bdd.top
  | Const false -> Bdd.bot
  | Not f -> Bdd.not_ m (to_bdd m f)
  | And (a, b) -> Bdd.and_ m (to_bdd m a) (to_bdd m b)
  | Or (a, b) -> Bdd.or_ m (to_bdd m a) (to_bdd m b)
  | Xor (a, b) -> Bdd.xor m (to_bdd m a) (to_bdd m b)

let nvars = 6

let gen_form : form QCheck.arbitrary =
  let open QCheck.Gen in
  let leaf = oneof [ map (fun i -> Var i) (int_range 0 (nvars - 1));
                     map (fun b -> Const b) bool ] in
  let rec go n =
    if n <= 0 then leaf
    else
      frequency
        [
          (1, leaf);
          (2, map (fun f -> Not f) (go (n - 1)));
          (2, map2 (fun a b -> And (a, b)) (go (n / 2)) (go (n / 2)));
          (2, map2 (fun a b -> Or (a, b)) (go (n / 2)) (go (n / 2)));
          (1, map2 (fun a b -> Xor (a, b)) (go (n / 2)) (go (n / 2)));
        ]
  in
  QCheck.make (go 8)

let all_envs =
  List.init (1 lsl nvars) (fun bits -> fun i -> (bits lsr i) land 1 = 1)

let prop_semantics =
  QCheck.Test.make ~name:"bdd agrees with truth table" ~count:300 gen_form
    (fun f ->
      let m = Bdd.man () in
      let b = to_bdd m f in
      List.for_all (fun env -> Bdd.eval b env = eval_form env f) all_envs)

let prop_canonicity =
  QCheck.Test.make ~name:"semantic equality = physical equality" ~count:300
    (QCheck.pair gen_form gen_form) (fun (f, g) ->
      let m = Bdd.man () in
      let bf = to_bdd m f and bg = to_bdd m g in
      let sem_equal =
        List.for_all (fun env -> eval_form env f = eval_form env g) all_envs
      in
      Bdd.equal bf bg = sem_equal)

let prop_ite =
  QCheck.Test.make ~name:"ite is if-then-else" ~count:200
    (QCheck.triple gen_form gen_form gen_form) (fun (c, t, e) ->
      let m = Bdd.man () in
      let b = Bdd.ite m (to_bdd m c) (to_bdd m t) (to_bdd m e) in
      List.for_all
        (fun env ->
          Bdd.eval b env
          = if eval_form env c then eval_form env t else eval_form env e)
        all_envs)

let prop_restrict =
  QCheck.Test.make ~name:"restrict fixes a variable" ~count:200
    (QCheck.triple gen_form (QCheck.int_range 0 (nvars - 1)) QCheck.bool)
    (fun (f, v, value) ->
      let m = Bdd.man () in
      let b = Bdd.restrict m (to_bdd m f) ~var:v value in
      List.for_all
        (fun env ->
          let env' i = if i = v then value else env i in
          Bdd.eval b env = eval_form env' f)
        all_envs)

let prop_exists =
  QCheck.Test.make ~name:"exists quantifies" ~count:200
    (QCheck.pair gen_form (QCheck.int_range 0 (nvars - 1))) (fun (f, v) ->
      let m = Bdd.man () in
      let b = Bdd.exists m [ v ] (to_bdd m f) in
      List.for_all
        (fun env ->
          let expect =
            eval_form (fun i -> if i = v then true else env i) f
            || eval_form (fun i -> if i = v then false else env i) f
          in
          Bdd.eval b env = expect)
        all_envs)

let prop_sat_count =
  QCheck.Test.make ~name:"sat_count counts satisfying assignments" ~count:200
    gen_form (fun f ->
      let m = Bdd.man () in
      let b = to_bdd m f in
      let expect =
        List.length (List.filter (fun env -> eval_form env f) all_envs)
      in
      int_of_float (Bdd.sat_count b ~nvars) = expect)

let prop_any_sat =
  QCheck.Test.make ~name:"any_sat returns a satisfying assignment" ~count:200
    gen_form (fun f ->
      let m = Bdd.man () in
      let b = to_bdd m f in
      if Bdd.is_bot b then true
      else begin
        let partial = Bdd.any_sat b in
        let env i =
          match List.assoc_opt i partial with Some x -> x | None -> false
        in
        eval_form env f
      end)

let prop_rename_shift =
  QCheck.Test.make ~name:"rename_shift shifts the support" ~count:200
    (QCheck.pair gen_form (QCheck.int_range 0 4)) (fun (f, k) ->
      let m = Bdd.man () in
      let b = Bdd.rename_shift m (to_bdd m f) k in
      List.for_all
        (fun env ->
          (* evaluate shifted BDD under env composed with the shift *)
          Bdd.eval b (fun i -> i >= k && env (i - k)) = eval_form env f)
        all_envs)

(* unit tests *)

let test_constants () =
  Alcotest.(check bool) "bot" true (Bdd.is_bot Bdd.bot);
  Alcotest.(check bool) "top" true (Bdd.is_top Bdd.top);
  let m = Bdd.man () in
  Alcotest.(check bool) "x & !x = bot" true
    (Bdd.is_bot (Bdd.and_ m (Bdd.var m 0) (Bdd.nvar m 0)));
  Alcotest.(check bool) "x | !x = top" true
    (Bdd.is_top (Bdd.or_ m (Bdd.var m 0) (Bdd.nvar m 0)))

let test_hash_consing () =
  let m = Bdd.man () in
  let a = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  let b = Bdd.and_ m (Bdd.var m 1) (Bdd.var m 0) in
  Alcotest.(check bool) "commuted and shares node" true (Bdd.equal a b)

let test_support () =
  let m = Bdd.man () in
  let b = Bdd.and_ m (Bdd.var m 2) (Bdd.or_ m (Bdd.var m 5) (Bdd.var m 2)) in
  Alcotest.(check (list int)) "support" [ 2 ] (Bdd.support b)

let test_size () =
  let m = Bdd.man () in
  let b = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check int) "two nodes" 2 (Bdd.size b)

let test_var_rejects_negative () =
  let m = Bdd.man () in
  Alcotest.check_raises "negative var"
    (Invalid_argument "Bdd.var: negative variable") (fun () ->
      ignore (Bdd.var m (-1)))

let test_rename_monotone_rejects_nonmonotone () =
  let m = Bdd.man () in
  let b = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.check_raises "non-monotone"
    (Invalid_argument "Bdd.rename_monotone: map is not strictly increasing")
    (fun () -> ignore (Bdd.rename_monotone m b (fun v -> 1 - v)))

let test_boolean_identities () =
  let m = Bdd.man () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check bool) "imp = !x | y" true
    (Bdd.equal (Bdd.imp m x y) (Bdd.or_ m (Bdd.not_ m x) y));
  Alcotest.(check bool) "iff = !(x^y)" true
    (Bdd.equal (Bdd.iff m x y) (Bdd.not_ m (Bdd.xor m x y)));
  Alcotest.(check bool) "de morgan" true
    (Bdd.equal
       (Bdd.not_ m (Bdd.and_ m x y))
       (Bdd.or_ m (Bdd.not_ m x) (Bdd.not_ m y)));
  Alcotest.(check bool) "and_list" true
    (Bdd.equal (Bdd.and_list m [ x; y; x ]) (Bdd.and_ m x y));
  Alcotest.(check bool) "or_list empty = bot" true
    (Bdd.is_bot (Bdd.or_list m []));
  Alcotest.(check bool) "forall x. x = bot" true
    (Bdd.is_bot (Bdd.forall m [ 0 ] x));
  Alcotest.(check bool) "exists x. x = top" true
    (Bdd.is_top (Bdd.exists m [ 0 ] x))

let test_manager_state () =
  let m = Bdd.man () in
  let before = Bdd.num_nodes m in
  let b = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check bool) "nodes grew" true (Bdd.num_nodes m > before);
  Bdd.clear_caches m;
  (* equality survives cache clearing (the unique table is retained) *)
  Alcotest.(check bool) "hash consing survives" true
    (Bdd.equal b (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1)));
  Alcotest.(check bool) "compare_id total" true
    (Bdd.compare_id (Bdd.var m 0) (Bdd.var m 1) <> 0)

(* Bvec *)

let test_bvec_const_eq () =
  let m = Bdd.man () in
  let v = Bvec.of_vars m ~first:0 ~width:4 in
  let eq5 = Bvec.eq_const m v 5 in
  List.for_all
    (fun bits ->
      let env i = (bits lsr i) land 1 = 1 in
      Bdd.eval eq5 env = (bits = 5))
    (List.init 16 Fun.id)
  |> Alcotest.(check bool) "eq_const 5" true

let test_bvec_ite () =
  let m = Bdd.man () in
  let c = Bdd.var m 10 in
  let a = Bvec.const m ~width:3 5 in
  let b = Bvec.const m ~width:3 2 in
  let r = Bvec.ite m c a b in
  (* under c=true the vector equals 5, under c=false it equals 2 *)
  Alcotest.(check bool) "then" true
    (Bdd.is_top
       (Bdd.restrict m (Bvec.eq_const m r 5) ~var:10 true));
  Alcotest.(check bool) "else" true
    (Bdd.is_top
       (Bdd.restrict m (Bvec.eq_const m r 2) ~var:10 false));
  Alcotest.(check int) "width" 3 (Bvec.width r)

let test_bvec_bits_needed () =
  Alcotest.(check int) "0 -> 1" 1 (Bvec.bits_needed 0);
  Alcotest.(check int) "1 -> 1" 1 (Bvec.bits_needed 1);
  Alcotest.(check int) "2 -> 2" 2 (Bvec.bits_needed 2);
  Alcotest.(check int) "3 -> 2" 2 (Bvec.bits_needed 3);
  Alcotest.(check int) "4 -> 3" 3 (Bvec.bits_needed 4);
  Alcotest.(check int) "255 -> 8" 8 (Bvec.bits_needed 255)

let () =
  Alcotest.run "bdd"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "negative var" `Quick test_var_rejects_negative;
          Alcotest.test_case "rename monotone check" `Quick
            test_rename_monotone_rejects_nonmonotone;
          Alcotest.test_case "boolean identities" `Quick test_boolean_identities;
          Alcotest.test_case "manager state" `Quick test_manager_state;
        ] );
      ( "bvec",
        [
          Alcotest.test_case "const/eq" `Quick test_bvec_const_eq;
          Alcotest.test_case "ite" `Quick test_bvec_ite;
          Alcotest.test_case "bits_needed" `Quick test_bvec_bits_needed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_semantics;
            prop_canonicity;
            prop_ite;
            prop_restrict;
            prop_exists;
            prop_sat_count;
            prop_any_sat;
            prop_rename_shift;
          ] );
    ]

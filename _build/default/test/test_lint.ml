(* The semantic linter: unit tests for each check, the shadowing
   soundness property (a reported-dead clause can be deleted without
   changing the route-map's semantics on any advertisement), and
   no-false-positive guarantees on the defect-free synthesized
   networks. *)

let c1 = (100 * 65536) + 1
let c2 = (100 * 65536) + 2
let c3 = (100 * 65536) + 3
let p s = Prefix.of_string s

let clause ?(verdict = Route_map.Permit) ?(actions = []) conds =
  { Route_map.verdict; conds; actions }

(* --- shadowing: the semantic-only case ------------------------------- *)

(* Clause 2 is covered by the UNION of clauses 0 and 1 but by neither
   alone: only a semantic check finds it. *)
let union_shadow_rm : Route_map.t =
  [
    clause [ Route_map.Match_community [ c1 ] ];
    clause [ Route_map.Match_community [ c2 ] ];
    clause
      [
        Route_map.Match_prefix [ p "10.1.0.0/16" ];
        Route_map.Match_community [ c1; c2 ];
      ];
    clause ~verdict:Route_map.Deny [];
  ]

let test_union_shadow () =
  let u = Cond_bdd.of_route_map union_shadow_rm in
  Alcotest.(check (list int))
    "only the union-covered clause is dead" [ 2 ]
    (Cond_bdd.shadowed u union_shadow_rm);
  (* no single earlier clause covers it *)
  let guards = List.map (Cond_bdd.guard u) union_shadow_rm in
  let g2 = List.nth guards 2 in
  Alcotest.(check bool)
    "clause 0 alone does not cover it" false
    (Bdd.implies u.Cond_bdd.man g2 (List.nth guards 0));
  Alcotest.(check bool)
    "clause 1 alone does not cover it" false
    (Bdd.implies u.Cond_bdd.man g2 (List.nth guards 1))

let test_no_overreport () =
  (* A clause that merely overlaps earlier ones is alive. *)
  let rm =
    [
      clause [ Route_map.Match_prefix [ p "10.1.0.0/16" ] ];
      clause [ Route_map.Match_prefix [ p "10.0.0.0/8" ] ];
    ]
  in
  let u = Cond_bdd.of_route_map rm in
  Alcotest.(check (list int)) "wider second clause is alive" []
    (Cond_bdd.shadowed u rm);
  (* ...but the /8 destination itself escapes two /9 halves: splitting a
     match does NOT cover the original (destinations are prefixes). *)
  let halves =
    [
      clause [ Route_map.Match_prefix [ p "10.0.0.0/9" ] ];
      clause [ Route_map.Match_prefix [ p "10.128.0.0/9" ] ];
      clause [ Route_map.Match_prefix [ p "10.0.0.0/8" ] ];
    ]
  in
  let u = Cond_bdd.of_route_map halves in
  Alcotest.(check (list int)) "/8 clause not covered by the two /9s" []
    (Cond_bdd.shadowed u halves)

let test_unsatisfiable () =
  let rm =
    [
      clause
        [
          Route_map.Match_prefix [ p "10.2.0.0/16" ];
          Route_map.Match_prefix [ p "10.3.0.0/16" ];
        ];
      clause [];
    ]
  in
  let u = Cond_bdd.of_route_map rm in
  Alcotest.(check bool) "guard is unsatisfiable" true
    (Bdd.is_bot (Cond_bdd.guard u (List.hd rm)));
  Alcotest.(check (list int)) "reported dead" [ 0 ] (Cond_bdd.shadowed u rm)

(* --- shadowing soundness (QCheck) ------------------------------------ *)

let prefix_pool =
  List.map p
    [
      "10.0.0.0/8";
      "10.0.0.0/9";
      "10.128.0.0/9";
      "10.1.0.0/16";
      "10.1.128.0/17";
      "10.2.0.0/16";
      "192.168.7.0/24";
    ]

(* Destinations to probe with: the pool itself plus finer prefixes. *)
let dest_samples =
  prefix_pool
  @ List.map p
      [
        "10.1.2.0/24";
        "10.1.200.0/24";
        "10.77.0.0/16";
        "10.2.3.4/32";
        "192.168.7.128/25";
        "0.0.0.0/0";
      ]

let attr_samples =
  List.map
    (fun comms -> { Bgp.init with Bgp.comms = List.sort_uniq compare comms })
    [ []; [ c1 ]; [ c2 ]; [ c3 ]; [ c1; c2 ]; [ c1; c3 ]; [ c1; c2; c3 ] ]

let gen_route_map : Route_map.t QCheck.arbitrary =
  let open QCheck.Gen in
  let gen_comms = oneofl [ [ c1 ]; [ c2 ]; [ c3 ]; [ c1; c2 ]; [ c2; c3 ] ] in
  let gen_prefixes =
    map
      (fun ps -> List.sort_uniq Prefix.compare ps)
      (list_size (int_range 1 3) (oneofl prefix_pool))
  in
  let gen_cond =
    oneof
      [
        map (fun cs -> Route_map.Match_community cs) gen_comms;
        map (fun ps -> Route_map.Match_prefix ps) gen_prefixes;
      ]
  in
  let gen_actions =
    oneofl
      [ []; [ Route_map.Set_local_pref 200 ]; [ Route_map.Add_community c3 ] ]
  in
  let gen_clause =
    map3
      (fun verdict conds actions -> { Route_map.verdict; conds; actions })
      (oneofl [ Route_map.Permit; Route_map.Deny ])
      (list_size (int_range 0 2) gen_cond)
      gen_actions
  in
  QCheck.make
    ~print:(Format.asprintf "%a" Route_map.pp)
    (list_size (int_range 1 6) gen_clause)

let delete_nth i l = List.filteri (fun j _ -> j <> i) l

let prop_shadowed_deletable =
  QCheck.Test.make ~name:"deleting a shadowed clause preserves eval"
    ~count:500 gen_route_map (fun rm ->
      let u = Cond_bdd.of_route_map rm in
      List.for_all
        (fun i ->
          let rm' = delete_nth i rm in
          List.for_all
            (fun dest ->
              List.for_all
                (fun a ->
                  Route_map.eval rm ~dest a = Route_map.eval rm' ~dest a)
                attr_samples)
            dest_samples)
        (Cond_bdd.shadowed u rm))

(* --- ACLs ------------------------------------------------------------- *)

let test_acl_dead_rules () =
  let acl : Acl.t =
    [
      { permit = true; prefix = p "10.0.0.0/8" };
      { permit = false; prefix = p "10.1.0.0/16" };
      { permit = true; prefix = p "192.168.0.0/16" };
    ]
  in
  let u = Cond_bdd.create ~comms:[] in
  Alcotest.(check (list int))
    "rule inside an earlier rule is dead" [ 1 ]
    (Cond_bdd.acl_dead_rules u acl)

(* --- no false positives on the defect-free networks ------------------- *)

let test_fattree_clean () =
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:4) in
  Alcotest.(check int) "fattree:4 lints clean" 0 (List.length (Lint.run net))

let test_wan_clean () =
  (* The WAN aggregation routers redistribute both ways but their import
     filters deny re-entry: the redistribution-cycle check must stay
     quiet. *)
  let net = (Synthesis.wan ()).Synthesis.net in
  Alcotest.(check int) "wan lints clean" 0 (List.length (Lint.run net))

let test_datacenter_infos_only () =
  let net = (Synthesis.datacenter ()).Synthesis.net in
  let ds = Lint.run net in
  Alcotest.(check bool) "no errors or warnings" false
    (List.exists (fun d -> d.Diag.severity <> Diag.Info) ds);
  (* the per-leaf tags really are set and never matched: 86 of them *)
  Alcotest.(check int) "one note per unmatched leaf tag" 86
    (List.length
       (List.filter (fun d -> d.Diag.check = "unmatched-community") ds));
  Alcotest.(check int) "nothing else" 86 (List.length ds)

(* --- source locations -------------------------------------------------- *)

let test_locs () =
  let text =
    String.concat "\n"
      [
        "topology";
        "  node a";
        "  node b";
        "  link a b";
        "";
        "route-map RM";
        "  10 permit";
        "    match prefix 10.0.0.0/8";
        "  20 deny";
        "";
        "router a";
        "  bgp neighbor b export RM";
        "";
        "router b";
        "  bgp neighbor a";
        "";
      ]
  in
  match Config_text.parse_with_locs text with
  | Error e -> Alcotest.fail e
  | Ok (net, locs) ->
    Alcotest.(check (option int)) "router line" (Some 11)
      (Config_text.router_line locs "a");
    Alcotest.(check (option int)) "clause 0 line" (Some 7)
      (Config_text.clause_line locs "RM" 0);
    Alcotest.(check (option int)) "clause 1 line" (Some 9)
      (Config_text.clause_line locs "RM" 1);
    let rm =
      match (List.hd net.Device.routers.(0).Device.bgp_neighbors : int * Device.bgp_neighbor) with
      | _, { Device.export_rm = Some rm; _ } -> rm
      | _ -> Alcotest.fail "export route-map not parsed"
    in
    Alcotest.(check (option string)) "route-map name recovered" (Some "RM")
      (Config_text.rm_name_of locs rm)

let () =
  Alcotest.run "lint"
    [
      ( "shadowing",
        [
          Alcotest.test_case "union-covered clause (semantic only)" `Quick
            test_union_shadow;
          Alcotest.test_case "live clauses are not reported" `Quick
            test_no_overreport;
          Alcotest.test_case "unsatisfiable conjunction" `Quick
            test_unsatisfiable;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_shadowed_deletable ] );
      ("acl", [ Alcotest.test_case "dead rules" `Quick test_acl_dead_rules ]);
      ( "false-positives",
        [
          Alcotest.test_case "fattree" `Quick test_fattree_clean;
          Alcotest.test_case "wan" `Quick test_wan_clean;
          Alcotest.test_case "datacenter" `Quick test_datacenter_infos_only;
        ] );
      ("locations", [ Alcotest.test_case "line table" `Quick test_locs ]);
    ]

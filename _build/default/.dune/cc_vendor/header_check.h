
#if defined( _MSC_VER )
msvc
#elif defined( __clang__ )
clang
#elif defined( __GNUC__ )
gcc
#else
other
#endif

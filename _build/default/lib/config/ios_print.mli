(** Rendering networks as Cisco-IOS-flavored configurations.

    The paper's operational networks are "over 540,000 lines" of
    vendor-specific configuration; this module renders our
    vendor-independent model back into that style — one configuration per
    router with interfaces, `router bgp`/`router ospf` stanzas,
    route-maps, community lists, prefix lists, ACLs and static routes.

    Addressing is synthesized deterministically: the k-th link of the
    topology gets the /30 [10.254.0.0/16 + 4k], each endpoint taking one
    host address; router N uses AS [65000 + N] (routers run their own AS,
    as in the paper's datacenter). Output is for human consumption and
    scale comparison — parsing IOS back is Batfish's job, not ours. *)

val router_config : Device.network -> int -> string
(** The configuration of one router. *)

val to_string : Device.network -> string
(** All router configurations, banner-separated. *)

val line_count : Device.network -> int
(** Total IOS-style configuration lines (compare with the paper's
    540k/600k-line networks). *)

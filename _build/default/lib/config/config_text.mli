(** A textual format for vendor-independent configurations.

    Networks can be written to and read from a single self-contained text
    file, playing the role of the configuration directories Batfish parses
    for the real Bonsai. The format has three kinds of sections:

    {v
    topology
      node <name>
      link <name> <name>

    route-map <NAME>
      <seq> permit|deny
        match community <c> [<c> ...]
        match prefix <a.b.c.d/len> [...]
        set local-pref <n>
        set med <n>
        set community add <c>
        set community delete <c>

    router <name>
      ospf area <n>
      ospf link <neighbor> cost <n> [area <n>]
      bgp neighbor <neighbor> [ibgp] [import <RM>] [export <RM>]
      static <prefix> via <neighbor>
      acl out <neighbor>
        permit|deny <prefix>
      originate <prefix>
      redistribute ospf-into-bgp|static-into-bgp|bgp-into-ospf
    v}

    Communities are written either as plain integers or Cisco-style
    [asn:value] pairs (encoded as [asn * 65536 + value]). Lines starting
    with [#] are comments. Printing then parsing yields a structurally
    identical network (checked by the test suite). *)

val print : Device.network -> string
(** Render a network. Identical route-maps are shared under one name. *)

val parse : string -> (Device.network, string) result
(** Parse a network; the error string includes a line number. *)

val load : string -> (Device.network, string) result
(** Read and parse a file. *)

val save : path:string -> Device.network -> unit

val community_to_string : int -> string
(** Cisco-style [asn:value] when the value is >= 65536, decimal
    otherwise. *)

val community_of_string : string -> int option

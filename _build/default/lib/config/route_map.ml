type cond = Match_community of int list | Match_prefix of Prefix.t list

type action =
  | Set_local_pref of int
  | Add_community of int
  | Delete_community of int
  | Set_med of int

type verdict = Permit | Deny

type clause = { verdict : verdict; conds : cond list; actions : action list }
type t = clause list

let permit_all = [ { verdict = Permit; conds = []; actions = [] } ]
let deny_all = []

let cond_holds ~dest a = function
  | Match_community cs -> List.exists (fun c -> Bgp.has_comm c a) cs
  | Match_prefix ps -> List.exists (fun p -> Prefix.subset dest p) ps

let apply_action a = function
  | Set_local_pref lp -> { a with Bgp.lp }
  | Add_community c -> Bgp.add_comm c a
  | Delete_community c -> Bgp.del_comm c a
  | Set_med med -> { a with Bgp.med }

let eval rm ~dest a =
  let rec go = function
    | [] -> None
    | cl :: rest ->
      if List.for_all (cond_holds ~dest a) cl.conds then
        match cl.verdict with
        | Deny -> None
        | Permit -> Some (List.fold_left apply_action a cl.actions)
      else go rest
  in
  go rm

(* A prefix condition is static once the destination is fixed. *)
let static_cond ~dest = function
  | Match_prefix ps -> Some (List.exists (fun p -> Prefix.subset dest p) ps)
  | Match_community _ -> None

let relevant rm ~dest =
  List.filter_map
    (fun cl ->
      let keep = ref true in
      let conds =
        List.filter
          (fun c ->
            match static_cond ~dest c with
            | Some true -> false (* always holds: drop the condition *)
            | Some false ->
              keep := false;
              false
            | None -> true)
          cl.conds
      in
      if !keep then Some { cl with conds } else None)
    rm

let sort_uniq = List.sort_uniq Int.compare

let local_prefs rm ~dest =
  relevant rm ~dest
  |> List.concat_map (fun cl ->
         if cl.verdict = Deny then []
         else
           List.filter_map
             (function Set_local_pref lp -> Some lp | _ -> None)
             cl.actions)
  |> sort_uniq

let communities_matched rm =
  List.concat_map
    (fun cl ->
      List.concat_map
        (function Match_community cs -> cs | Match_prefix _ -> [])
        cl.conds)
    rm
  |> sort_uniq

let communities_set rm =
  List.concat_map
    (fun cl ->
      List.filter_map
        (function
          | Add_community c | Delete_community c -> Some c
          | Set_local_pref _ | Set_med _ -> None)
        cl.actions)
    rm
  |> sort_uniq

let pp_cond ppf = function
  | Match_community cs ->
    Format.fprintf ppf "community {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      cs
  | Match_prefix ps ->
    Format.fprintf ppf "prefix {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Prefix.pp)
      ps

let pp_action ppf = function
  | Set_local_pref lp -> Format.fprintf ppf "set lp %d" lp
  | Add_community c -> Format.fprintf ppf "add community %d" c
  | Delete_community c -> Format.fprintf ppf "del community %d" c
  | Set_med m -> Format.fprintf ppf "set med %d" m

let pp ppf rm =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i cl ->
      Format.fprintf ppf "%d %s match [%a] do [%a]@,"
        (10 * (i + 1))
        (match cl.verdict with Permit -> "permit" | Deny -> "deny")
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_cond)
        cl.conds
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_action)
        cl.actions)
    rm;
  Format.fprintf ppf "@]"

type rule = { permit : bool; prefix : Prefix.t }
type t = rule list

let permits acl dest =
  match acl with
  | None -> true
  | Some rules -> (
    let rec go = function
      | [] -> false (* implicit deny *)
      | r :: rest -> if Prefix.overlap dest r.prefix then r.permit else go rest
    in
    go rules)

let pp ppf rules =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%s %a@,"
        (if r.permit then "permit" else "deny")
        Prefix.pp r.prefix)
    rules;
  Format.fprintf ppf "@]"

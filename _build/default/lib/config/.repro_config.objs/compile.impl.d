lib/config/compile.ml: Acl Array Bdd Bgp Device Hashtbl Int List Multi Option Policy_bdd Route_map

lib/config/device.mli: Acl Graph Multi Prefix Route_map

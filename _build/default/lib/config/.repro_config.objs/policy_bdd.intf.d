lib/config/policy_bdd.mli: Bdd Bgp Device Format Prefix Route_map

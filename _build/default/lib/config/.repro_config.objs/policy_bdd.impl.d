lib/config/policy_bdd.ml: Acl Array Bdd Bgp Bvec Device Format Int List Option Printf Route_map

lib/config/acl.ml: Format List Prefix

lib/config/route_map.mli: Bgp Format Prefix

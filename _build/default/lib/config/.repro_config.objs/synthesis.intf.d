lib/config/synthesis.mli: Device Generators Graph Prefix

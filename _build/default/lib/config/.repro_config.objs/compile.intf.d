lib/config/compile.mli: Bgp Device Multi Policy_bdd Prefix Srp

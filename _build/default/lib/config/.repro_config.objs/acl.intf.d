lib/config/acl.mli: Format Prefix

lib/config/config_text.ml: Acl Array Buffer Device Fun Graph Hashtbl List Multi Option Prefix Printf Result Route_map String

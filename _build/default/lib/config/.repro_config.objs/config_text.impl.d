lib/config/config_text.ml: Acl Array Buffer Device Fun Graph Hashtbl List Multi Option Prefix Printf Route_map String

lib/config/device.ml: Acl Array Graph List Multi Prefix Printf Route_map

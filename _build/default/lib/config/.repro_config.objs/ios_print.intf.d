lib/config/ios_print.mli: Device

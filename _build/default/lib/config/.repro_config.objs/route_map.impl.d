lib/config/route_map.ml: Bgp Format Int List Prefix

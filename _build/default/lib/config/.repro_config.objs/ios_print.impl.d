lib/config/ios_print.ml: Acl Array Buffer Device Graph Hashtbl Ipv4 List Multi Prefix Printf Route_map String

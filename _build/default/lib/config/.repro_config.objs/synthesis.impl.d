lib/config/synthesis.ml: Acl Array Device Fun Generators Graph Hashtbl Ipv4 List Multi Prefix Random Route_map

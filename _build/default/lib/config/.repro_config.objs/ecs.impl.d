lib/config/ecs.ml: Device Format List Prefix Prefix_trie

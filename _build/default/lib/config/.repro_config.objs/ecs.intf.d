lib/config/ecs.mli: Device Format Ipv4 Prefix

lib/config/config_text.mli: Device

lib/config/config_text.mli: Device Route_map

(** Destination equivalence classes (paper §5.1).

    Announcements for different destinations do not interact, so the
    network is partitioned into classes of destinations that are "rooted"
    at the same node(s); Bonsai computes one abstraction per class rather
    than one per address. We build the classes with a prefix trie over
    every originated prefix: each distinct announced prefix (paired with
    the set of nodes announcing it) is one class — the address range it
    governs is the part of the prefix not covered by a longer announced
    prefix. *)

type ec = {
  ec_prefix : Prefix.t;
  ec_origins : int list;  (** nodes originating this prefix, sorted *)
}

val compute : Device.network -> ec list
(** One class per distinct announced prefix, sorted by prefix. *)

val count : Device.network -> int

val ec_for : Device.network -> Ipv4.t -> ec option
(** The class governing an address: the longest announced prefix
    containing it. *)

val ranges : Device.network -> ec -> Prefix.t list
(** The disjoint address ranges a class actually governs: its prefix minus
    every more-specific announced prefix, expressed as a minimal list of
    non-overlapping prefixes. The ranges of all classes partition the
    announced address space. *)

val single_origin : ec -> int
(** The unique origin. @raise Invalid_argument for an anycast class
    (multiple origins) — the compression pipeline currently requires a
    unique destination router per class (see DESIGN.md limitations). *)

val pp : Format.formatter -> ec -> unit

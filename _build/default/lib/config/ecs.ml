type ec = { ec_prefix : Prefix.t; ec_origins : int list }

let trie_of_network net =
  let trie = Prefix_trie.create () in
  List.iter
    (fun (p, v) ->
      Prefix_trie.update trie p (function
        | None -> [ v ]
        | Some vs -> if List.mem v vs then vs else List.sort compare (v :: vs)))
    (Device.originations net);
  trie

let compute net =
  Prefix_trie.bindings (trie_of_network net)
  |> List.map (fun (p, vs) -> { ec_prefix = p; ec_origins = vs })
  |> List.sort (fun a b -> Prefix.compare a.ec_prefix b.ec_prefix)

let count net = List.length (compute net)

let ec_for net addr =
  match Prefix_trie.lpm (trie_of_network net) addr with
  | None -> None
  | Some (p, vs) -> Some { ec_prefix = p; ec_origins = vs }

let ranges net ec =
  let all = compute net in
  let more_specific =
    List.filter_map
      (fun other ->
        if
          (not (Prefix.equal other.ec_prefix ec.ec_prefix))
          && Prefix.subset other.ec_prefix ec.ec_prefix
        then Some other.ec_prefix
        else None)
      all
  in
  (* Recursively split [p] until each piece is either disjoint from every
     more-specific prefix or exactly one of them (excluded). *)
  let rec carve p acc =
    if List.exists (fun q -> Prefix.equal q p || Prefix.subset p q) more_specific
    then acc
    else if not (List.exists (fun q -> Prefix.overlap p q) more_specific) then
      p :: acc
    else
      let lo, hi = Prefix.split p in
      carve lo (carve hi acc)
  in
  List.sort Prefix.compare (carve ec.ec_prefix [])

let single_origin ec =
  match ec.ec_origins with
  | [ v ] -> v
  | _ ->
    invalid_arg
      (Format.asprintf "Ecs.single_origin: %a has %d origins" Prefix.pp
         ec.ec_prefix
         (List.length ec.ec_origins))

let pp ppf ec =
  Format.fprintf ppf "%a@%a" Prefix.pp ec.ec_prefix
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    ec.ec_origins

(* Deterministic link addressing: undirected link k (in the order of
   Graph.edges restricted to u < v) owns the /30 starting at
   10.254.0.0 + 4k; the lower endpoint gets host .1, the upper .2. *)

let link_table (net : Device.network) =
  let g = net.Device.graph in
  let tbl = Hashtbl.create 256 in
  let k = ref 0 in
  List.iter
    (fun (u, v) ->
      if u < v || not (Graph.has_edge g v u) then begin
        let base = Ipv4.to_int (Ipv4.of_octets 10 254 0 0) + (4 * !k) in
        Hashtbl.replace tbl (min u v, max u v) base;
        incr k
      end)
    (Graph.edges g);
  tbl

let local_ip tbl u v =
  let base = Hashtbl.find tbl (min u v, max u v) in
  Ipv4.of_int32_bits (base + if u < v then 1 else 2)

let peer_ip tbl u v = local_ip tbl v u

let asn v = 65000 + v

let mask_of_len len =
  let m = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF in
  Ipv4.to_string (Ipv4.of_int32_bits m)

let inverse_mask_of_len len =
  let m = if len = 0 then 0xFFFFFFFF else lnot (0xFFFFFFFF lsl (32 - len)) land 0xFFFFFFFF in
  Ipv4.to_string (Ipv4.of_int32_bits m)

let community_str c =
  if c >= 65536 then Printf.sprintf "%d:%d" (c lsr 16) (c land 0xFFFF)
  else string_of_int c

(* Route-maps and their referenced community/prefix lists, named per
   router so each configuration is self-contained. *)
let render_route_map buf name (rm : Route_map.t) =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let comm_lists = ref [] and prefix_lists = ref [] in
  List.iteri
    (fun i (cl : Route_map.clause) ->
      let seq = 10 * (i + 1) in
      pr "route-map %s %s %d\n" name
        (match cl.verdict with Route_map.Permit -> "permit" | Route_map.Deny -> "deny")
        seq;
      List.iteri
        (fun j cond ->
          match cond with
          | Route_map.Match_community cs ->
            let ln = Printf.sprintf "%s_C%d_%d" name seq j in
            comm_lists := (ln, cs) :: !comm_lists;
            pr " match community %s\n" ln
          | Route_map.Match_prefix ps ->
            let ln = Printf.sprintf "%s_P%d_%d" name seq j in
            prefix_lists := (ln, ps) :: !prefix_lists;
            pr " match ip address prefix-list %s\n" ln)
        cl.conds;
      List.iter
        (fun action ->
          match action with
          | Route_map.Set_local_pref n -> pr " set local-preference %d\n" n
          | Route_map.Set_med n -> pr " set metric %d\n" n
          | Route_map.Add_community c ->
            pr " set community %s additive\n" (community_str c)
          | Route_map.Delete_community c ->
            pr " set comm-list %s_D%d delete\n" name seq;
            comm_lists := (Printf.sprintf "%s_D%d" name seq, [ c ]) :: !comm_lists)
        cl.actions;
      pr "!\n")
    rm;
  List.iter
    (fun (ln, cs) ->
      List.iter
        (fun c -> pr "ip community-list standard %s permit %s\n" ln (community_str c))
        cs)
    (List.rev !comm_lists);
  List.iter
    (fun (ln, ps) ->
      List.iteri
        (fun i p ->
          pr "ip prefix-list %s seq %d permit %s\n" ln (5 * (i + 1))
            (Prefix.to_string p))
        ps)
    (List.rev !prefix_lists);
  if !comm_lists <> [] || !prefix_lists <> [] then pr "!\n"

let router_config (net : Device.network) v =
  let g = net.Device.graph in
  let tbl = link_table net in
  let r = net.Device.routers.(v) in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "hostname %s\n!\n" r.Device.name;
  (* interfaces, one per neighbor *)
  let nbrs = Array.to_list (Graph.succ g v) in
  List.iteri
    (fun i u ->
      pr "interface Ethernet%d\n" i;
      pr " description to %s\n" (Graph.name g u);
      pr " ip address %s %s\n"
        (Ipv4.to_string (local_ip tbl v u))
        (mask_of_len 30);
      (match Device.ospf_link_config r u with
      | Some l ->
        pr " ip ospf cost %d\n" l.Device.cost;
        pr " ip ospf 1 area %d\n" l.Device.area
      | None -> ());
      (match Device.acl_for r u with
      | Some _ -> pr " ip access-group ACL_E%d out\n" i
      | None -> ());
      pr "!\n")
    nbrs;
  (* loopback carrying originated prefixes *)
  List.iteri
    (fun i p ->
      pr "interface Loopback%d\n ip address %s %s\n!\n" i
        (Ipv4.to_string (p : Prefix.t).Prefix.addr)
        (mask_of_len p.Prefix.len))
    r.Device.originated;
  (* OSPF *)
  if r.Device.ospf_links <> [] then begin
    pr "router ospf 1\n";
    List.iter
      (fun (u, (l : Device.ospf_link)) ->
        let ip = local_ip tbl v u in
        pr " network %s 0.0.0.3 area %d\n" (Ipv4.to_string ip) l.area)
      r.Device.ospf_links;
    if List.mem Multi.Bgp_into_ospf r.Device.redistribute then
      pr " redistribute bgp %d subnets\n" (asn v);
    pr "!\n"
  end;
  (* BGP *)
  if r.Device.bgp_neighbors <> [] then begin
    pr "router bgp %d\n" (asn v);
    List.iter
      (fun p ->
        pr " network %s mask %s\n"
          (Ipv4.to_string (p : Prefix.t).Prefix.addr)
          (mask_of_len p.Prefix.len))
      r.Device.originated;
    if List.mem Multi.Ospf_into_bgp r.Device.redistribute then
      pr " redistribute ospf 1\n";
    if List.mem Multi.Static_into_bgp r.Device.redistribute then
      pr " redistribute static\n";
    List.iteri
      (fun i (u, (nb : Device.bgp_neighbor)) ->
        let ip = Ipv4.to_string (peer_ip tbl v u) in
        pr " neighbor %s remote-as %d\n" ip (if nb.ibgp then asn v else asn u);
        pr " neighbor %s description %s\n" ip (Graph.name g u);
        (match nb.import_rm with
        | Some _ -> pr " neighbor %s route-map RM_IN_%d in\n" ip i
        | None -> ());
        match nb.export_rm with
        | Some _ -> pr " neighbor %s route-map RM_OUT_%d out\n" ip i
        | None -> ())
      r.Device.bgp_neighbors;
    pr "!\n"
  end;
  (* static routes *)
  List.iter
    (fun (p, nh) ->
      pr "ip route %s %s %s\n"
        (Ipv4.to_string (p : Prefix.t).Prefix.addr)
        (mask_of_len p.Prefix.len)
        (Ipv4.to_string (peer_ip tbl v nh)))
    r.Device.static_routes;
  if r.Device.static_routes <> [] then pr "!\n";
  (* ACLs *)
  List.iteri
    (fun i (u, acl) ->
      ignore u;
      pr "ip access-list extended ACL_E%d\n" i;
      List.iter
        (fun (rule : Acl.rule) ->
          pr " %s ip any %s %s\n"
            (if rule.permit then "permit" else "deny")
            (Ipv4.to_string rule.prefix.Prefix.addr)
            (inverse_mask_of_len rule.prefix.Prefix.len))
        acl;
      pr "!\n")
    r.Device.acl_out;
  (* route-maps *)
  List.iteri
    (fun i (_, (nb : Device.bgp_neighbor)) ->
      (match nb.import_rm with
      | Some rm -> render_route_map buf (Printf.sprintf "RM_IN_%d" i) rm
      | None -> ());
      match nb.export_rm with
      | Some rm -> render_route_map buf (Printf.sprintf "RM_OUT_%d" i) rm
      | None -> ())
    r.Device.bgp_neighbors;
  pr "end\n";
  Buffer.contents buf

let to_string net =
  let buf = Buffer.create 65536 in
  for v = 0 to Graph.n_nodes net.Device.graph - 1 do
    Buffer.add_string buf
      (Printf.sprintf "! ================ %s ================\n"
         (Graph.name net.Device.graph v));
    Buffer.add_string buf (router_config net v)
  done;
  Buffer.contents buf

let line_count net =
  String.split_on_char '\n' (to_string net)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

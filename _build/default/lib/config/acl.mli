(** Access control lists over destination prefixes.

    ACLs do not influence route selection but can block forwarding out an
    interface; Bonsai conservatively folds them into the transfer function
    so that nodes are only merged when their ACLs agree for the destination
    (paper §6). Rules are evaluated first-match; an ACL with no matching
    rule denies (implicit deny), and the absence of an ACL permits. *)

type rule = { permit : bool; prefix : Prefix.t }
type t = rule list

val permits : t option -> Prefix.t -> bool
(** [permits acl dest] decides whether traffic to [dest] may pass. [None]
    (no ACL configured) permits. A destination {e overlapping} a rule's
    prefix without being contained decides by the rule as well — the rule
    applies to part of the range, and we conservatively let the first
    overlapping rule decide (destination ECs are chosen fine enough that
    this does not arise in practice). *)

val pp : Format.formatter -> t -> unit

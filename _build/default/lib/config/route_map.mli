(** Vendor-independent BGP routing policy: route-maps.

    A route-map is an ordered list of clauses. A clause matches a route
    advertisement when {e all} its conditions hold (an empty condition list
    always matches); the first matching clause decides: [Permit] applies
    the clause's actions and accepts, [Deny] filters the route. A route
    matching no clause is denied (the usual implicit deny). This mirrors
    the policy fragment Bonsai consumes from Batfish's vendor-independent
    representation (paper §5.1, Figure 10). *)

type cond =
  | Match_community of int list
      (** any of the listed communities is attached (a community-list) *)
  | Match_prefix of Prefix.t list
      (** the {e destination} prefix of the route lies inside one of the
          listed prefixes (a prefix-list) *)

type action =
  | Set_local_pref of int
  | Add_community of int
  | Delete_community of int
  | Set_med of int

type verdict = Permit | Deny

type clause = { verdict : verdict; conds : cond list; actions : action list }
type t = clause list

val permit_all : t
val deny_all : t

val eval : t -> dest:Prefix.t -> Bgp.attr -> Bgp.attr option
(** [eval rm ~dest a] runs the route-map on advertisement [a] for a route
    to [dest]. [None] means filtered. *)

val local_prefs : t -> dest:Prefix.t -> int list
(** Local-preference values that clauses reachable for this destination may
    assign (the ingredients of the paper's [prefs(v)], §4.3); sorted,
    deduplicated, {e excluding} the default. *)

val communities_matched : t -> int list
(** Communities tested by some [Match_community]; sorted, deduplicated. *)

val communities_set : t -> int list
(** Communities added or deleted by some action; sorted, deduplicated. *)

val relevant : t -> dest:Prefix.t -> t
(** Specializes the route-map to a destination: drops clauses whose prefix
    conditions can never hold for [dest] and resolves prefix conditions
    that always hold. The result contains no [Match_prefix]. *)

val pp : Format.formatter -> t -> unit

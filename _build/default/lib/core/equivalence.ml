type outcome = {
  ok : bool;
  errors : string list;
  fr : int array;
  abs_labels_opaque : unit;
}

(* Topological order of the concrete forwarding relation: every node after
   its forwarding successors. Returns [None] on a forwarding cycle. *)
let topo_order (sol : 'a Solution.t) =
  let g = sol.Solution.srp.Srp.graph in
  let n = Graph.n_nodes g in
  let color = Array.make n 0 in
  let order = ref [] in
  let cyclic = ref false in
  let rec visit u =
    if color.(u) = 1 then cyclic := true
    else if color.(u) = 0 then begin
      color.(u) <- 1;
      List.iter (fun (_, v) -> visit v) (Solution.fwd sol u);
      color.(u) <- 2;
      order := u :: !order
    end
  in
  for u = 0 to n - 1 do
    visit u
  done;
  if !cyclic then None else Some (List.rev !order)

let generic (type a) ~(abs_srp : a Srp.t) (t : Abstraction.t)
    ~(concrete : a Solution.t) ~(map_attr : fr:(int -> int) -> a -> a)
    ?(behavior_equal : (a -> a -> bool) option) () :
    outcome * a Solution.t option =
  let behavior_equal =
    match behavior_equal with
    | Some f -> f
    | None -> abs_srp.Srp.attr_equal
  in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let n = Graph.n_nodes t.Abstraction.net.Device.graph in
  let n_abs = Abstraction.n_abstract t in
  let fr = Array.make n (-1) in
  let fail_out () =
    ( { ok = false; errors = List.rev !errors; fr; abs_labels_opaque = () },
      None )
  in
  match topo_order concrete with
  | None ->
    err "concrete forwarding relation is cyclic";
    fail_out ()
  | Some order ->
    (* [order] lists forwarding successors first, so by the time we map
       node u's attribute, every node named in its path already has its
       copy assigned. *)
    let abs_labels : a option array = Array.make n_abs None in
    let assigned : bool array = Array.make n_abs false in
    (* Per group: behaviors claimed so far. A behavior is the h-image of
       the label together with the abstract image of the node's forwarding
       edges: two nodes share a behavior when their labels agree up to
       [behavior_equal] (for BGP: everything but the concrete identity of
       an equal-length path — ties broken across symmetric neighbors) and
       they forward into the same abstract nodes. The stability and
       fwd-equivalence checks below re-validate whatever this merges. *)
    let behaviors : (int, (a option * int list * int) list) Hashtbl.t =
      Hashtbl.create 64
    in
    let attr_opt_equal x y =
      match (x, y) with
      | None, None -> true
      | Some a, Some b -> behavior_equal a b
      | _ -> false
    in
    let construction_ok = ref true in
    let fr_fun u =
      let a = fr.(u) in
      if a < 0 then (
        (* path mentions a node we have not processed: should not happen
           for stable loop-free solutions *)
        construction_ok := false;
        Abstraction.f t u)
      else a
    in
    List.iter
      (fun u ->
        if !construction_ok then begin
          let g = t.Abstraction.group_of.(u) in
          let k = t.Abstraction.copies.(g) in
          let base = t.Abstraction.abs_of_group.(g) in
          let behavior =
            Option.map (map_attr ~fr:fr_fun) concrete.Solution.labels.(u)
          in
          let fwd_img =
            Solution.fwd concrete u
            |> List.map (fun (_, v) -> fr_fun v)
            |> List.sort_uniq compare
          in
          let existing =
            match Hashtbl.find_opt behaviors g with Some l -> l | None -> []
          in
          match
            List.find_opt
              (fun (b, img, _) -> img = fwd_img && attr_opt_equal b behavior)
              existing
          with
          | Some (_, _, idx) -> fr.(u) <- base + idx
          | None ->
            let idx = List.length existing in
            if idx >= k then begin
              err
                "group of %s exhibits more behaviors than its %d copies"
                (Graph.name t.Abstraction.net.Device.graph u)
                k;
              construction_ok := false
            end
            else begin
              Hashtbl.replace behaviors g ((behavior, fwd_img, idx) :: existing);
              fr.(u) <- base + idx;
              (* The slot's label is recomputed through the abstract
                 transfer function along the node's forwarding choice, so
                 it is an offered attribute of the abstract SRP by
                 construction; we then check it is the h-image of the
                 concrete label up to [behavior_equal] — the paper's
                 label-equivalence, modulo which of several tied paths the
                 two sides picked. *)
              let abs_label =
                if u = t.Abstraction.dest then behavior
                else
                  match concrete.Solution.labels.(u) with
                  | None -> None
                  | Some l -> (
                    (* Recompute through the abstract transfer along the
                       same neighbor the concrete label came from (ties
                       can differ in fields ≺ ignores, e.g. communities). *)
                    let provenance =
                      Solution.choices concrete u
                      |> List.find_opt (fun (_, a) ->
                             concrete.Solution.srp.Srp.attr_equal a l)
                    in
                    match provenance with
                    | Some ((_, v), _) ->
                      abs_srp.Srp.trans (base + idx) fr.(v) abs_labels.(fr.(v))
                    | None -> behavior)
              in
              (match (abs_label, behavior) with
              | None, None -> ()
              | Some a, Some b when behavior_equal a b -> ()
              | _ ->
                err "label-equivalence violated at %s"
                  (Graph.name t.Abstraction.net.Device.graph u);
                construction_ok := false);
              abs_labels.(base + idx) <- abs_label;
              assigned.(base + idx) <- true
            end
        end)
      order;
    if not !construction_ok then fail_out ()
    else begin
      (* Make f_r onto (Theorem A.8): a copy that received no behavior
         steals a concrete node from a sibling copy holding several, and
         mirrors that copy's label. Copies are capped at the group size,
         so by pigeonhole such a sibling always exists. *)
      let slot_members = Array.make n_abs [] in
      for u = n - 1 downto 0 do
        if fr.(u) >= 0 then slot_members.(fr.(u)) <- u :: slot_members.(fr.(u))
      done;
      for a = 0 to n_abs - 1 do
        if not assigned.(a) then begin
          let g = t.Abstraction.group_of_abs.(a) in
          let base = t.Abstraction.abs_of_group.(g) in
          let donor = ref None in
          for s = base to base + t.Abstraction.copies.(g) - 1 do
            if !donor = None && assigned.(s)
               && List.length slot_members.(s) > 1
            then donor := Some s
          done;
          match !donor with
          | Some s -> (
            match slot_members.(s) with
            | u :: rest ->
              slot_members.(s) <- rest;
              slot_members.(a) <- [ u ];
              fr.(u) <- a;
              abs_labels.(a) <- abs_labels.(s);
              assigned.(a) <- true
            | [] -> assert false)
          | None ->
            err "no donor member for unassigned abstract copy %d" a
        end
      done;
      let abs_sol = { Solution.srp = abs_srp; labels = abs_labels } in
      (* 1. abstract labeling must be a stable solution *)
      List.iter
        (fun (node, why) ->
          err "abstract solution unstable at %s: %s"
            (Graph.name t.Abstraction.abs_graph node)
            why)
        (Solution.stability_violations abs_sol);
      (* 2. fwd-equivalence, concrete-to-abstract *)
      for u = 0 to n - 1 do
        List.iter
          (fun (_, v) ->
            let au = fr.(u) and av = fr.(v) in
            let abs_fwd = Solution.fwd abs_sol au in
            if not (List.exists (fun (_, w) -> w = av) abs_fwd) then
              err "concrete fwd edge (%s,%s) has no abstract counterpart"
                (Graph.name t.Abstraction.net.Device.graph u)
                (Graph.name t.Abstraction.net.Device.graph v))
          (Solution.fwd concrete u)
      done;
      (* 3. fwd-equivalence, abstract-to-concrete *)
      for au = 0 to n_abs - 1 do
        List.iter
          (fun (_, av) ->
            List.iter
              (fun u ->
                if fr.(u) = au then begin
                  let ok =
                    List.exists
                      (fun (_, v) -> fr.(v) = av)
                      (Solution.fwd concrete u)
                  in
                  if not ok then
                    err
                      "abstract fwd edge (%d,%d) not realized at concrete %s"
                      au av
                      (Graph.name t.Abstraction.net.Device.graph u)
                end)
              t.Abstraction.groups.(t.Abstraction.group_of_abs.(au))
          )
          (Solution.fwd abs_sol au)
      done;
      ( {
          ok = !errors = [];
          errors = List.rev !errors;
          fr;
          abs_labels_opaque = ();
        },
        Some abs_sol )
    end

(* BGP labels are the same behavior when they agree on everything except
   which of several equal-length (hence tied) paths was chosen. *)
let bgp_behavior_equal (a : Bgp.attr) (b : Bgp.attr) =
  a.Bgp.lp = b.Bgp.lp && a.Bgp.med = b.Bgp.med && a.Bgp.comms = b.Bgp.comms
  && List.length a.Bgp.path = List.length b.Bgp.path

let check_bgp ?loop_prevention t (sol : Bgp.attr Solution.t) =
  let abs_srp = Abstraction.bgp_srp ?loop_prevention t in
  generic ~abs_srp t ~concrete:sol
    ~map_attr:(fun ~fr a -> Abstraction.h_attr t ~fr a)
    ~behavior_equal:bgp_behavior_equal ()

let check_multi t (sol : Multi.attr Solution.t) =
  let abs_srp = Abstraction.multi_srp t in
  let map_attr ~fr (a : Multi.attr) =
    {
      a with
      Multi.bgp =
        Option.map
          (fun (b : Multi.bgp_route) ->
            { b with Multi.battr = Abstraction.h_attr t ~fr b.Multi.battr })
          a.Multi.bgp;
    }
  in
  let behavior_equal (a : Multi.attr) (b : Multi.attr) =
    a.Multi.static_ = b.Multi.static_
    && a.Multi.ospf = b.Multi.ospf
    &&
    match (a.Multi.bgp, b.Multi.bgp) with
    | None, None -> true
    | Some x, Some y ->
      x.Multi.via_ibgp = y.Multi.via_ibgp
      && bgp_behavior_equal x.Multi.battr y.Multi.battr
    | _ -> false
  in
  generic ~abs_srp t ~concrete:sol ~map_attr ~behavior_equal ()

let check_plain ~abs_srp t sol =
  generic ~abs_srp t ~concrete:sol ~map_attr:(fun ~fr:_ a -> a) ()

(** Emitting the compressed network as configurations.

    Bonsai's product is not just a smaller graph: it is a smaller
    collection of vendor-independent configurations that other tools
    (simulators, verifiers) consume directly (paper §7). This module
    rebuilds a {!Device.network} for the abstract topology: each abstract
    router receives the configuration of its group representative, with
    neighbor references rewritten through representative edges.

    The emitted network is specific to the abstraction's destination
    equivalence class: only the class's prefix is originated (at the
    abstract destination), and static routes whose next hop has no
    abstract counterpart are dropped. Compressing the emitted network
    again is a no-op (idempotence), which the test suite checks. *)

val emit : Abstraction.t -> Device.network
(** Build the abstract network's configurations. The result validates
    ({!Device.validate}) and compiles with {!Compile} like any concrete
    network. *)

val config_reduction : Abstraction.t -> int * int
(** (concrete, abstract) configuration line counts, for reporting the
    configuration-level compression the paper emphasizes. *)

type violation = { condition : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "%s: %s" v.condition v.detail

let check (t : Abstraction.t) ~signature =
  let g = t.Abstraction.net.Device.graph in
  let ag = t.Abstraction.abs_graph in
  let out = ref [] in
  let add condition detail = out := { condition; detail } :: !out in
  let name u = Graph.name g u in
  (* dest-equivalence *)
  let dest_group = t.Abstraction.group_of.(t.Abstraction.dest) in
  (match t.Abstraction.groups.(dest_group) with
  | [ d ] when d = t.Abstraction.dest -> ()
  | ms ->
    add "dest-equivalence"
      (Printf.sprintf "destination group has %d members" (List.length ms)));
  (* abstract self-loop freedom: Graph.Builder rejects self-loops, so a
     violation can only arise from a single-copy group with internal
     edges, which Abstraction.make rejects; still check edges for safety *)
  Graph.iter_edges ag (fun a1 a2 ->
      if a1 = a2 then add "self-loop-free" (Printf.sprintf "loop at %d" a1));
  (* forall-exists 1: every concrete edge between distinct groups has an
     abstract image. Intra-group edges are intentionally dead (no abstract
     self-loop; inter-copy edges for split groups). *)
  Graph.iter_edges g (fun u v ->
      let a1 = Abstraction.f t u and a2 = Abstraction.f t v in
      if
        t.Abstraction.group_of.(u) <> t.Abstraction.group_of.(v)
        && not (Graph.has_edge ag a1 a2)
      then
        add "forall-exists-1"
          (Printf.sprintf "edge (%s,%s) has no abstract image" (name u) (name v)));
  (* forall-exists 2 and transfer-equivalence, per abstract edge between
     distinct groups *)
  Graph.iter_edges ag (fun a1 a2 ->
      let g1 = t.Abstraction.group_of_abs.(a1)
      and g2 = t.Abstraction.group_of_abs.(a2) in
      if g1 <> g2 then begin
        let members1 = t.Abstraction.groups.(g1) in
        let sigs = ref [] in
        List.iter
          (fun u ->
            let nbrs =
              Array.to_list (Graph.succ g u)
              |> List.filter (fun v -> t.Abstraction.group_of.(v) = g2 && v <> u)
            in
            if nbrs = [] then
              add "forall-exists-2"
                (Printf.sprintf
                   "node %s (abstract %d) has no edge into abstract %d"
                   (name u) a1 a2)
            else
              List.iter (fun v -> sigs := signature u v :: !sigs) nbrs)
          members1;
        match List.sort_uniq compare !sigs with
        | [] | [ _ ] -> ()
        | _ :: _ :: _ ->
          add "transfer-equivalence"
            (Printf.sprintf
               "edges mapping to abstract (%d,%d) have differing signatures"
               a1 a2)
      end);
  (* forall-forall for split groups: identical concrete neighborhoods *)
  Array.iteri
    (fun gid members ->
      if t.Abstraction.copies.(gid) > 1 then begin
        let nbr_sets =
          List.map
            (fun u ->
              Array.to_list (Graph.succ g u) |> List.sort_uniq compare)
            members
        in
        match List.sort_uniq compare nbr_sets with
        | [] | [ _ ] -> ()
        | _ ->
          add "forall-forall"
            (Printf.sprintf
               "split group %d members have differing neighborhoods" gid)
      end)
    t.Abstraction.groups;
  List.rev !out

let check_exn t ~signature =
  match check t ~signature with
  | [] -> ()
  | vs ->
    let msg =
      String.concat "; "
        (List.map (fun v -> v.condition ^ ": " ^ v.detail) vs)
    in
    failwith ("Check.check_exn: " ^ msg)

(** Bonsai: end-to-end control plane compression (paper §5, §7, §8).

    [compress] partitions the destinations into equivalence classes,
    builds one BDD universe for the whole network, and computes one
    abstraction per class (the paper processes classes in parallel; we
    process them sequentially and report per-class times). *)

type ec_result = {
  ec : Ecs.ec;
  abstraction : Abstraction.t;
  refine_stats : Refine.stats;
  time_s : float;  (** wall-clock compression time for this class *)
}

type summary = {
  net : Device.network;
  bdd_time_s : float;
      (** time to build the BDD universe and encode every interface
          policy for the first class (the paper's "BDD time") *)
  results : ec_result list;
  skipped_anycast : int;  (** multi-origin classes (not supported) *)
}

val compress_ec :
  ?universe:Policy_bdd.universe ->
  Device.network ->
  Ecs.ec ->
  ec_result
(** Compress one destination class. @raise Invalid_argument on an anycast
    class. *)

val compress :
  ?keep_unmatched_comms:bool ->
  ?stride:int ->
  ?max_ecs:int ->
  ?domains:int ->
  Device.network ->
  summary
(** Compress every destination class. For sampling large networks,
    [stride] keeps every k-th class and [max_ecs] caps how many are
    processed. [keep_unmatched_comms] selects the naive attribute
    abstraction (see {!Policy_bdd.universe_of_network}). [domains] > 1
    processes classes in parallel on that many OCaml domains (destination
    classes are disjoint, exactly the parallelism the paper exploits, §7);
    each domain owns a private BDD manager. *)

(** {1 Reporting} *)

val mean_abs_nodes : summary -> float
val mean_abs_links : summary -> float
val stddev_abs_nodes : summary -> float
val stddev_abs_links : summary -> float
val mean_time_per_ec : summary -> float

val roles :
  ?keep_unmatched_comms:bool -> Device.network -> int
(** Number of unique router "roles": routers are identified by the vector
    of their interface policies — import/export route-maps compared
    semantically as BDDs — plus their static routes, ACLs, OSPF interface
    configuration and redistributions. Reproduces the paper's role
    counts (§8: 112 naive vs 26 semantic roles on the datacenter). *)

val explain :
  Device.network -> Ecs.ec -> int -> int -> string list
(** [explain net ec u v] — why two routers ended up in different roles for
    this destination class: human-readable differences between their
    (signature, neighbor-role) sets (policy inequality, ACLs, OSPF costs,
    static routes, preference levels, or differing neighbor roles). Empty
    when the two routers share a role. *)

val pp_summary : Format.formatter -> summary -> unit

lib/core/check.ml: Abstraction Array Device Format Graph List Printf String

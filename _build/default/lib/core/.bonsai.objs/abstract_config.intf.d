lib/core/abstract_config.mli: Abstraction Device

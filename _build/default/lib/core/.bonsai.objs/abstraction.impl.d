lib/core/abstraction.ml: Array Bgp Compile Device Format Graph Hashtbl List Multi Option Policy_bdd Prefix Printf Union_split_find

lib/core/abstract_config.ml: Abstraction Array Device Graph List Option

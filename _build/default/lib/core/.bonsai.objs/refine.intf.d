lib/core/refine.mli: Device Union_split_find

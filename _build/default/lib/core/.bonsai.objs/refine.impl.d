lib/core/refine.ml: Array Device Graph Hashtbl Int List Queue Union_split_find

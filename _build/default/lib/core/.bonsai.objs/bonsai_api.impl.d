lib/core/bonsai_api.ml: Abstraction Array Bdd Compile Device Domain Ecs Format Graph Hashtbl List Multi Policy_bdd Prefix Printf Refine Route_map String Timing Union_split_find

lib/core/check.mli: Abstraction Compile Format

lib/core/bonsai_api.mli: Abstraction Device Ecs Format Policy_bdd Refine

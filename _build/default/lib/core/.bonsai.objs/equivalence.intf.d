lib/core/equivalence.mli: Abstraction Bgp Multi Solution Srp

lib/core/abstraction.mli: Bgp Device Format Graph Multi Policy_bdd Prefix Srp Union_split_find

lib/core/equivalence.ml: Abstraction Array Bgp Device Format Graph Hashtbl List Multi Option Solution Srp

(** Validation of the effective-abstraction conditions (paper Figure 4).

    The refinement loop is designed to establish these conditions; this
    module re-checks them independently on the finished abstraction, both
    as a safety net in production use and as the oracle for the test
    suite. *)

type violation = {
  condition : string;  (** e.g. "dest-equivalence", "forall-exists" *)
  detail : string;
}

val check : Abstraction.t -> signature:(int -> int -> Compile.edge_signature)
  -> violation list
(** Empty when the abstraction satisfies:
    - {b dest-equivalence}: the destination is alone in its group;
    - {b forall-exists 1}: every concrete edge has an abstract image;
    - {b forall-exists 2}: for every abstract edge [(û, v̂)], every member
      of [û] has a concrete edge to some member of [v̂];
    - {b transfer-equivalence}: all concrete edges mapping to one abstract
      edge carry the same interface signature (policy BDDs compared by
      pointer);
    - {b forall-forall} for split groups: members of a group with several
      local-preference levels have identical concrete neighborhoods;
    - {b self-loop freedom} of the abstract graph. *)

val check_exn : Abstraction.t ->
  signature:(int -> int -> Compile.edge_signature) -> unit
(** @raise Failure listing the violations, if any. *)

val pp_violation : Format.formatter -> violation -> unit

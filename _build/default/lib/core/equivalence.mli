(** CP-equivalence checking (paper §4.2–§4.4).

    Given a stable solution [L] of the concrete network and an abstraction,
    we {e construct} the corresponding abstract labeling [L̂] — choosing,
    for split groups, the solution-dependent refinement [f_r] that maps
    each concrete node to the copy carrying its behavior (Theorem 4.5) —
    and then verify that:

    - the construction succeeds (≤ [|prefs(û)|] behaviors per group,
      Theorem 4.4; consistent labels within non-split groups);
    - [L̂] is a {e stable} solution of the abstract SRP;
    - the two solutions are fwd-equivalent: every concrete forwarding edge
      maps to an abstract one under [f_r], and every abstract forwarding
      edge is realized by every concrete node mapped onto its source.

    Together with label-equivalence (which holds by construction of [L̂])
    this is exactly the paper's CP-equivalence, checked on one concrete
    solution. *)

type outcome = {
  ok : bool;
  errors : string list;
  fr : int array;  (** concrete node -> abstract node (the refinement) *)
  abs_labels_opaque : unit;  (** see [check_*] returns for typed labels *)
}

val check_bgp :
  ?loop_prevention:bool ->
  Abstraction.t ->
  Bgp.attr Solution.t ->
  outcome * Bgp.attr Solution.t option
(** Check a BGP solution; returns the constructed abstract solution when
    the behavior assignment succeeded (even if later checks failed). *)

val check_multi :
  Abstraction.t ->
  Multi.attr Solution.t ->
  outcome * Multi.attr Solution.t option
(** Multi-protocol variant; requires the concrete forwarding relation to
    be acyclic (static-route loops make the inductive construction
    impossible — fwd-equivalence for pure static routing is checked
    separately by the test suite). *)

val check_plain :
  abs_srp:'a Srp.t ->
  Abstraction.t ->
  'a Solution.t ->
  outcome * 'a Solution.t option
(** For protocols whose attributes mention no node names (RIP, OSPF,
    static): [h] is the identity. *)

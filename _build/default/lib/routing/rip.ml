type attr = int

let max_hops = 15
let compare = Int.compare
let pp = Format.pp_print_int

let make graph ~dest =
  {
    Srp.graph;
    dest;
    init = 0;
    compare;
    trans =
      (fun _u _v a ->
        match a with
        | None -> None
        | Some h -> if h >= max_hops then None else Some (h + 1));
    attr_equal = Int.equal;
    pp_attr = pp;
  }

(** Static routing (paper §3.2, Figure 6): the attribute set is the single
    value [true] marking the presence of a static route; the comparison
    relation is empty; the transfer function ignores the neighbor's label —
    it yields a route exactly on edges carrying a configured static route
    (so this SRP is deliberately {e spontaneous}, and can express loops). *)

type attr = unit

val make : Graph.t -> dest:int -> routes:(int * int) list -> attr Srp.t
(** [routes] lists directed edges [(u, v)]: node [u] has a static route for
    the destination pointing out the interface to [v]. Edges not in the
    graph are rejected. *)

val pp : Format.formatter -> attr -> unit

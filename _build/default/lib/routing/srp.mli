(** The Stable Routing Problem (paper §3).

    An SRP instance is a tuple [(G, A, a_d, ≺, trans)]: a topology with a
    destination, a set of routing-message attributes, the initial attribute
    announced by the destination, a comparison relation on attributes, and a
    transfer function describing how attributes change (or are dropped)
    across edges.

    This module represents an SRP generically over the attribute type ['a].
    The comparison relation is given as a total preorder [compare]
    (our protocols — RIP, OSPF, BGP, static — all order attributes
    totally up to ties; [compare a b < 0] means [a ≺ b], i.e. [a] is
    preferred, and [compare a b = 0] is the paper's [a ≈ b]).

    The transfer function receives the edge as the pair [(u, v)] where [u]
    is the {e receiving} node and [v] the neighbor across the edge, matching
    the paper's [choices_L(u) = {(e, a) | e = (u,v), a = trans(e, L(v))}].
    [None] is the absent attribute [⊥]. *)

type 'a t = {
  graph : Graph.t;
  dest : int;
  init : 'a;  (** [a_d], the attribute at the destination. *)
  compare : 'a -> 'a -> int;
      (** Total preorder; negative means the first argument is preferred. *)
  trans : int -> int -> 'a option -> 'a option;
      (** [trans u v a]: attribute received at [u] from neighbor [v] whose
          label is [a]. *)
  attr_equal : 'a -> 'a -> bool;
      (** Structural equality on attributes (used for fixpoint detection;
          usually [Stdlib.( = )]). *)
  pp_attr : Format.formatter -> 'a -> unit;
}

val non_spontaneous : 'a t -> bool
(** Checks [trans e ⊥ = ⊥] on every edge (a {e well-formed} SRP property;
    static routing deliberately violates it, paper §3.2). *)

val pp_label : 'a t -> Format.formatter -> 'a option -> unit
(** Prints an attribute or [⊥]. *)

val map_graph : 'a t -> Graph.t -> dest:int -> 'a t
(** Replace the topology and destination, keeping the protocol parts.
    The transfer function must make sense on the new graph. *)

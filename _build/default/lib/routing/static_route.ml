type attr = unit

let pp ppf () = Format.pp_print_string ppf "static"

let make graph ~dest ~routes =
  let set = Hashtbl.create (List.length routes) in
  List.iter
    (fun (u, v) ->
      if not (Graph.has_edge graph u v) then
        invalid_arg "Static_route.make: route along a missing edge";
      Hashtbl.replace set (u, v) ())
    routes;
  {
    Srp.graph;
    dest;
    init = ();
    compare = (fun () () -> 0);
    trans = (fun u v _a -> if Hashtbl.mem set (u, v) then Some () else None);
    attr_equal = (fun () () -> true);
    pp_attr = pp;
  }

type 'a t = {
  graph : Graph.t;
  dest : int;
  init : 'a;
  compare : 'a -> 'a -> int;
  trans : int -> int -> 'a option -> 'a option;
  attr_equal : 'a -> 'a -> bool;
  pp_attr : Format.formatter -> 'a -> unit;
}

let non_spontaneous t =
  let ok = ref true in
  Graph.iter_edges t.graph (fun u v ->
      match t.trans u v None with Some _ -> ok := false | None -> ());
  !ok

let pp_label t ppf = function
  | None -> Format.pp_print_string ppf "⊥"
  | Some a -> t.pp_attr ppf a

let map_graph t graph ~dest = { t with graph; dest }

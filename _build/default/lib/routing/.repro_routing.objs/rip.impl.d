lib/routing/rip.ml: Format Int Srp

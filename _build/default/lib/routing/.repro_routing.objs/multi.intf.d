lib/routing/multi.mli: Bgp Format Graph Ospf Srp

lib/routing/srp.ml: Format Graph

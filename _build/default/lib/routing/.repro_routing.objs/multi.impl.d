lib/routing/multi.ml: Bgp Format Graph Hashtbl Int List Option Ospf Srp String

lib/routing/rip.mli: Format Graph Srp

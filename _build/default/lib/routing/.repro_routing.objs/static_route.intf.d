lib/routing/static_route.mli: Format Graph Srp

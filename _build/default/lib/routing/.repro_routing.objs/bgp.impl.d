lib/routing/bgp.ml: Format Int List Srp Stdlib

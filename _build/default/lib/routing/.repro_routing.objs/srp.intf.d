lib/routing/srp.mli: Format Graph

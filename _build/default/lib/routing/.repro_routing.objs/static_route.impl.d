lib/routing/static_route.ml: Format Graph Hashtbl List Srp

lib/routing/ospf.mli: Format Graph Srp

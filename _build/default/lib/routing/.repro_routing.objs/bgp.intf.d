lib/routing/bgp.mli: Format Graph Srp

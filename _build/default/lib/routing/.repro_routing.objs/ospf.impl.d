lib/routing/ospf.ml: Bool Format Int Srp

(** RIP (distance vector, paper §3.2): attributes are hop counts in
    [0 .. 15]; shorter is preferred; the transfer function increments and
    drops routes that exceed the hop limit. *)

type attr = int

val max_hops : int
(** 15: RIP treats 16 as infinity. *)

val compare : attr -> attr -> int
val make : Graph.t -> dest:int -> attr Srp.t
val pp : Format.formatter -> attr -> unit

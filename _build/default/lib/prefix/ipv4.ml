type t = int

let of_int32_bits n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Ipv4.of_int32_bits: out of range";
  n

let to_int a = a

let of_octets a b c d =
  let ok x = x >= 0 && x <= 255 in
  if not (ok a && ok b && ok c && ok d) then
    invalid_arg "Ipv4.of_octets: octet out of range";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    match
      (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c,
       int_of_string_opt d)
    with
    | Some a, Some b, Some c, Some d
      when a >= 0 && a <= 255 && b >= 0 && b <= 255 && c >= 0 && c <= 255
           && d >= 0 && d <= 255 ->
      Some (of_octets a b c d)
    | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg ("Ipv4.of_string: " ^ s)

let to_string a =
  Printf.sprintf "%d.%d.%d.%d"
    ((a lsr 24) land 0xFF)
    ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF)
    (a land 0xFF)

let pp ppf a = Format.pp_print_string ppf (to_string a)
let compare = Int.compare
let equal = Int.equal

let bit a i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit: index out of range";
  (a lsr (31 - i)) land 1 = 1

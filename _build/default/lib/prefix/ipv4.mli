(** IPv4 addresses as 32-bit unsigned values (stored in an OCaml [int]). *)

type t = private int

val of_int32_bits : int -> t
(** [of_int32_bits n] interprets the low 32 bits of [n] as an address.
    @raise Invalid_argument if other bits are set or [n] is negative. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d]. Each octet must be in [0, 255]. *)

val of_string : string -> t
(** Parse dotted-quad notation. @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

val bit : t -> int -> bool
(** [bit a i] is bit [i] of the address counting from the most significant
    (bit 0 is the top bit). [i] must be in [0, 31]. *)

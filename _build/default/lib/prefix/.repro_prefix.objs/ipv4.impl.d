lib/prefix/ipv4.ml: Format Int Printf String

lib/prefix/prefix_trie.mli: Ipv4 Prefix

(** Binary prefix trie mapping IPv4 prefixes to values.

    Bonsai partitions the many destinations of a network into equivalence
    classes using a prefix trie whose leaves carry destination node sets
    (paper §5.1). This module is the generic container; the EC computation
    lives in the core library. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> Prefix.t -> 'a -> unit
(** [add t p v] binds [p] to [v], replacing any previous binding of exactly
    [p]. Bindings at other (even overlapping) prefixes are unaffected. *)

val update : 'a t -> Prefix.t -> ('a option -> 'a) -> unit
(** [update t p f] rebinds [p] to [f (find_exact t p)]. *)

val find_exact : 'a t -> Prefix.t -> 'a option

val lpm : 'a t -> Ipv4.t -> (Prefix.t * 'a) option
(** Longest-prefix match for an address. *)

val lpm_prefix : 'a t -> Prefix.t -> (Prefix.t * 'a) option
(** [lpm_prefix t p] is the longest bound prefix that contains all of [p]. *)

val fold : 'a t -> (Prefix.t -> 'a -> 'b -> 'b) -> 'b -> 'b
(** Folds over bound prefixes in trie (depth-first, shorter prefixes first
    on equal paths). *)

val iter : 'a t -> (Prefix.t -> 'a -> unit) -> unit
val cardinal : 'a t -> int
val bindings : 'a t -> (Prefix.t * 'a) list

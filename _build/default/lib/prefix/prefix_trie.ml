type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = 'a node

let mk_node () = { value = None; zero = None; one = None }
let create = mk_node

let child node bit =
  match if bit then node.one else node.zero with
  | Some n -> n
  | None ->
    let n = mk_node () in
    if bit then node.one <- Some n else node.zero <- Some n;
    n

let locate t p =
  let rec go node i =
    if i >= (p : Prefix.t).len then node else go (child node (Prefix.bit p i)) (i + 1)
  in
  go t 0

let add t p v = (locate t p).value <- Some v

let update t p f =
  let node = locate t p in
  node.value <- Some (f node.value)

let find_exact t p =
  let rec go node i =
    if i >= (p : Prefix.t).len then node.value
    else
      match if Prefix.bit p i then node.one else node.zero with
      | None -> None
      | Some n -> go n (i + 1)
  in
  go t 0

let lpm t addr =
  let best = ref None in
  let rec go node i =
    (match node.value with
    | Some v -> best := Some (Prefix.make addr i, v)
    | None -> ());
    if i < 32 then
      match if Ipv4.bit addr i then node.one else node.zero with
      | None -> ()
      | Some n -> go n (i + 1)
  in
  go t 0;
  !best

let lpm_prefix t p =
  let best = ref None in
  let rec go node i =
    (match node.value with
    | Some v -> best := Some (Prefix.make (p : Prefix.t).addr i, v)
    | None -> ());
    if i < p.len then
      match if Prefix.bit p i then node.one else node.zero with
      | None -> ()
      | Some n -> go n (i + 1)
  in
  go t 0;
  !best

let fold t f init =
  (* Reconstructs each bound prefix from the path of bits leading to it. *)
  let rec go node bits depth acc =
    let acc =
      match node.value with
      | Some v ->
        let addr = ref 0 in
        List.iteri
          (fun i b -> if b then addr := !addr lor (1 lsl (31 - i)))
          (List.rev bits);
        f (Prefix.make (Ipv4.of_int32_bits !addr) depth) v acc
      | None -> acc
    in
    let acc =
      match node.zero with
      | Some n -> go n (false :: bits) (depth + 1) acc
      | None -> acc
    in
    match node.one with
    | Some n -> go n (true :: bits) (depth + 1) acc
    | None -> acc
  in
  go t [] 0 init

let iter t f = fold t (fun p v () -> f p v) ()
let cardinal t = fold t (fun _ _ n -> n + 1) 0
let bindings t = List.rev (fold t (fun p v acc -> (p, v) :: acc) [])

type t = Bdd.t array

let width = Array.length

let bits_needed k =
  if k < 0 then invalid_arg "Bvec.bits_needed: negative";
  let rec go w acc = if acc > k then w else go (w + 1) (acc * 2) in
  go 1 2

let const _m ~width k =
  if k < 0 || (width < 63 && k lsr width <> 0) then
    invalid_arg "Bvec.const: value does not fit";
  Array.init width (fun i -> if (k lsr i) land 1 = 1 then Bdd.top else Bdd.bot)

let of_vars m ~first ~width = Array.init width (fun i -> Bdd.var m (first + i))

let eq m a b =
  if Array.length a <> Array.length b then invalid_arg "Bvec.eq: width mismatch";
  let acc = ref Bdd.top in
  Array.iteri (fun i ai -> acc := Bdd.and_ m !acc (Bdd.iff m ai b.(i))) a;
  !acc

let eq_const m a k = eq m a (const m ~width:(Array.length a) k)

let ge_const m a k =
  if k < 0 then invalid_arg "Bvec.ge_const: negative";
  let w = Array.length a in
  if w < 63 && k lsr w <> 0 then Bdd.bot
  else begin
    (* MSB-down: ge i decides bits i-1 .. 0 against the low bits of k. *)
    let rec ge i =
      if i = 0 then Bdd.top
      else
        let bit = (k lsr (i - 1)) land 1 = 1 in
        let rest = ge (i - 1) in
        if bit then Bdd.and_ m a.(i - 1) rest
        else Bdd.or_ m a.(i - 1) rest
    in
    ge w
  end

let ite m c a b =
  if Array.length a <> Array.length b then invalid_arg "Bvec.ite: width mismatch";
  Array.init (Array.length a) (fun i -> Bdd.ite m c a.(i) b.(i))

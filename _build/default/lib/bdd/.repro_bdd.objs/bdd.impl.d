lib/bdd/bdd.ml: Format Hashtbl Int List

lib/bdd/bvec.ml: Array Bdd

(** Computing stable solutions of an SRP by simulating asynchronous message
    processing.

    The solver repeatedly activates nodes from a worklist; an activated
    node recomputes its best choice from its neighbors' current labels.
    When the worklist drains, the labeling is locally stable by
    construction. Which of the (possibly multiple, paper §3.1) solutions
    is found depends on the activation order and on how ties are broken,
    both of which can be seeded — this emulates the message-arrival timing
    that selects solutions in a real network (paper Figure 2). For
    divergent instances (e.g. BGP gadgets with no stable solution), the
    step budget runs out and the solver reports failure. *)

type stats = { steps : int; updates : int }

val solve :
  ?seed:int ->
  ?max_steps:int ->
  'a Srp.t ->
  ('a Solution.t * stats, [ `Diverged of 'a Solution.t ]) result
(** [solve srp] computes a stable solution. [seed] permutes the activation
    order and neighbor tie-breaking (default 0: deterministic first-best).
    [max_steps] bounds node activations (default [64 * n * (n + 1)]).
    On [Error (`Diverged s)], [s] is the (unstable) labeling when the
    budget ran out. *)

val solve_exn : ?seed:int -> ?max_steps:int -> 'a Srp.t -> 'a Solution.t
(** @raise Failure when the solver diverges. *)

val solutions_sample : ?tries:int -> 'a Srp.t -> 'a Solution.t list
(** Solve under several seeds and keep the distinct stable solutions
    found (compared by labels). Used to explore multi-solution SRPs like
    the paper's Figure 2 gadget. *)

val enumerate_solutions : ?max_nodes:int -> 'a Srp.t -> 'a Solution.t list
(** All stable solutions of a {e small} SRP, by exhaustive search over the
    per-node route choices (each node selects one neighbor or no route;
    labels follow from the selection when it is acyclic; the stability
    check filters the rest). Exponential — guarded by [max_nodes]
    (default 12).
    @raise Invalid_argument if the network is larger than [max_nodes]. *)

type stats = { steps : int; updates : int }

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let solve ?(seed = 0) ?max_steps (srp : 'a Srp.t) =
  let g = srp.Srp.graph in
  let n = Graph.n_nodes g in
  let max_steps =
    match max_steps with Some m -> m | None -> 64 * n * (n + 1)
  in
  let rng = Random.State.make [| seed; 0x50f7 |] in
  let labels : 'a option array = Array.make n None in
  if n > 0 then labels.(srp.Srp.dest) <- Some srp.Srp.init;
  (* Per-node neighbor order decides tie-breaking among equally good
     choices; a seeded shuffle explores different stable solutions. *)
  let nbr_order =
    Array.init n (fun u ->
        let a = Array.copy (Graph.succ g u) in
        if seed <> 0 then shuffle rng a;
        a)
  in
  let best u =
    let best = ref None in
    Array.iter
      (fun v ->
        match srp.Srp.trans u v labels.(v) with
        | None -> ()
        | Some a -> (
          match !best with
          | None -> best := Some a
          | Some b -> if srp.Srp.compare a b < 0 then best := Some a))
      nbr_order.(u);
    !best
  in
  let in_queue = Array.make n false in
  let queue = Queue.create () in
  let push u =
    if u <> srp.Srp.dest && not in_queue.(u) then begin
      in_queue.(u) <- true;
      Queue.add u queue
    end
  in
  let initial = Array.init n Fun.id in
  if seed <> 0 then shuffle rng initial;
  Array.iter push initial;
  let steps = ref 0 and updates = ref 0 in
  let budget_ok = ref true in
  while !budget_ok && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    in_queue.(u) <- false;
    incr steps;
    if !steps > max_steps then budget_ok := false
    else begin
      let b = best u in
      let same =
        match (labels.(u), b) with
        | None, None -> true
        | Some a, Some b -> srp.Srp.attr_equal a b
        | _ -> false
      in
      if not same then begin
        labels.(u) <- b;
        incr updates;
        (* Nodes whose choices mention u must re-evaluate. *)
        Array.iter push (Graph.pred g u)
      end
    end
  done;
  let sol = { Solution.srp; labels } in
  if !budget_ok && Solution.is_stable sol then
    Ok (sol, { steps = !steps; updates = !updates })
  else Error (`Diverged sol)

let solve_exn ?seed ?max_steps srp =
  match solve ?seed ?max_steps srp with
  | Ok (s, _) -> s
  | Error (`Diverged _) -> failwith "Solver.solve_exn: no stable solution found"

let solutions_sample ?(tries = 16) srp =
  let found = ref [] in
  for seed = 0 to tries - 1 do
    match solve ~seed srp with
    | Ok (s, _) ->
      if
        not
          (List.exists
             (fun s' -> s'.Solution.labels = s.Solution.labels)
             !found)
      then found := s :: !found
    | Error _ -> ()
  done;
  List.rev !found

let enumerate_solutions ?(max_nodes = 12) (srp : 'a Srp.t) =
  let g = srp.Srp.graph in
  let n = Graph.n_nodes g in
  if n > max_nodes then
    invalid_arg "Solver.enumerate_solutions: network too large";
  let dest = srp.Srp.dest in
  (* choice.(u) = Some v: u takes its route from v; None: no route *)
  let choice = Array.make n None in
  let found = ref [] in
  let labels_of_choice () =
    (* Follow each node's selection to the destination, failing on cycles
       or dropped transfers. *)
    let labels = Array.make n None in
    if n > 0 then labels.(dest) <- Some srp.Srp.init;
    let state = Array.make n 0 (* 0 unvisited, 1 in progress, 2 done *) in
    let exception Bad in
    let rec resolve u =
      if u = dest then labels.(u)
      else
        match state.(u) with
        | 1 -> raise Bad (* cycle among selections *)
        | 2 -> labels.(u)
        | _ -> (
          state.(u) <- 1;
          let l =
            match choice.(u) with
            | None -> None
            | Some v -> (
              match srp.Srp.trans u v (resolve v) with
              | Some a -> Some a
              | None -> raise Bad (* selected a dropped route *))
          in
          state.(u) <- 2;
          labels.(u) <- l;
          l)
    in
    match
      for u = 0 to n - 1 do
        ignore (resolve u)
      done
    with
    | () -> Some labels
    | exception Bad -> None
  in
  let record () =
    match labels_of_choice () with
    | None -> ()
    | Some labels ->
      let sol = { Solution.srp; labels } in
      if
        Solution.is_stable sol
        && not
             (List.exists
                (fun s -> s.Solution.labels = labels)
                !found)
      then found := sol :: !found
  in
  let rec go u =
    if u >= n then record ()
    else if u = dest then go (u + 1)
    else begin
      choice.(u) <- None;
      go (u + 1);
      Array.iter
        (fun v ->
          choice.(u) <- Some v;
          go (u + 1))
        (Graph.succ g u);
      choice.(u) <- None
    end
  in
  (* Static-style spontaneous transfers mean even "no route" nodes need a
     try; the stability filter sorts everything out. *)
  if n > 0 then go 0;
  List.rev !found

lib/simulate/solver.mli: Solution Srp

lib/simulate/solver.ml: Array Fun Graph List Queue Random Solution Srp

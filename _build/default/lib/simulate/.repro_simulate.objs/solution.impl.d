lib/simulate/solution.ml: Array Format Graph List Srp

lib/simulate/solution.mli: Format Srp

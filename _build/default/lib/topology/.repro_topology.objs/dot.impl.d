lib/topology/dot.ml: Array Buffer Fun Graph List Printf

lib/topology/generators.mli: Graph

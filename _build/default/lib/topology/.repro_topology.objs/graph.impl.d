lib/topology/graph.ml: Array Format Fun Hashtbl List Printf

lib/topology/generators.ml: Array Graph Hashtbl List Printf Random

type t = {
  names : string array;
  succ : int array array;
  pred : int array array;
  edge_set : (int * int, unit) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
  n_edges : int;
}

module Builder = struct
  type graph = t

  type t = {
    mutable b_names : string list; (* reversed *)
    mutable b_n : int;
    b_edges : (int * int, unit) Hashtbl.t;
  }

  let create () = { b_names = []; b_n = 0; b_edges = Hashtbl.create 64 }

  let add_node b name =
    let id = b.b_n in
    b.b_names <- name :: b.b_names;
    b.b_n <- id + 1;
    id

  let add_edge b u v =
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    if u < 0 || u >= b.b_n || v < 0 || v >= b.b_n then
      invalid_arg "Graph.Builder.add_edge: unknown endpoint";
    Hashtbl.replace b.b_edges (u, v) ()

  let add_link b u v =
    add_edge b u v;
    add_edge b v u

  let build b : graph =
    let n = b.b_n in
    let names = Array.of_list (List.rev b.b_names) in
    let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
    Hashtbl.iter
      (fun (u, v) () ->
        out_deg.(u) <- out_deg.(u) + 1;
        in_deg.(v) <- in_deg.(v) + 1)
      b.b_edges;
    let succ = Array.init n (fun u -> Array.make out_deg.(u) 0) in
    let pred = Array.init n (fun v -> Array.make in_deg.(v) 0) in
    let oi = Array.make n 0 and ii = Array.make n 0 in
    Hashtbl.iter
      (fun (u, v) () ->
        succ.(u).(oi.(u)) <- v;
        oi.(u) <- oi.(u) + 1;
        pred.(v).(ii.(v)) <- u;
        ii.(v) <- ii.(v) + 1)
      b.b_edges;
    Array.iter (fun a -> Array.sort compare a) succ;
    Array.iter (fun a -> Array.sort compare a) pred;
    let by_name = Hashtbl.create n in
    Array.iteri (fun i s -> Hashtbl.replace by_name s i) names;
    {
      names;
      succ;
      pred;
      edge_set = Hashtbl.copy b.b_edges;
      by_name;
      n_edges = Hashtbl.length b.b_edges;
    }
end

let of_links ~n links =
  let b = Builder.create () in
  for i = 0 to n - 1 do
    ignore (Builder.add_node b (Printf.sprintf "n%d" i))
  done;
  List.iter (fun (u, v) -> Builder.add_link b u v) links;
  Builder.build b

let n_nodes g = Array.length g.names
let n_edges g = g.n_edges

let n_links g =
  let count = ref 0 in
  Hashtbl.iter
    (fun (u, v) () ->
      if u < v || not (Hashtbl.mem g.edge_set (v, u)) then incr count)
    g.edge_set;
  !count

let name g i = g.names.(i)
let find_by_name g s = Hashtbl.find_opt g.by_name s
let succ g i = g.succ.(i)
let pred g i = g.pred.(i)
let has_edge g u v = Hashtbl.mem g.edge_set (u, v)

let edges g =
  Hashtbl.fold (fun e () acc -> e :: acc) g.edge_set [] |> List.sort compare

let iter_edges g f =
  List.iter (fun (u, v) -> f u v) (edges g)

let fold_nodes g ~init ~f =
  let acc = ref init in
  for i = 0 to n_nodes g - 1 do
    acc := f !acc i
  done;
  !acc

let degree g i = Array.length g.succ.(i)

let is_connected g =
  let n = n_nodes g in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        stack := v :: !stack
      end
    in
    let rec loop () =
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        Array.iter visit g.succ.(u);
        Array.iter visit g.pred.(u);
        loop ()
    in
    loop ();
    Array.for_all Fun.id seen
  end

let pp_stats ppf g =
  Format.fprintf ppf "nodes=%d directed-edges=%d links=%d" (n_nodes g)
    (n_edges g) (n_links g)

(** Topology generators for the paper's synthetic and "real" networks.

    Each generator also returns enough structure (tiers, pods, clusters) for
    the configuration synthesizer to assign per-role policies. *)

type fattree = {
  ft_graph : Graph.t;
  ft_k : int;
  ft_core : int array;
  ft_agg : int array; (* aggregation tier, grouped by pod *)
  ft_edge : int array; (* edge (ToR) tier, grouped by pod *)
  ft_pod : int array; (* node -> pod id; -1 for core *)
}

val fattree : k:int -> fattree
(** [fattree ~k] is the standard k-ary fattree [Al-Fares et al.]:
    [(k/2)^2] core switches and [k] pods of [k/2] aggregation plus [k/2]
    edge switches — [5k^2/4] nodes total (paper Table 1 uses k = 12, 20,
    30 for 180, 500, 1125 nodes). @raise Invalid_argument if [k] is odd
    or [< 2]. *)

val ring : n:int -> Graph.t
(** Cycle of [n >= 3] nodes. *)

val full_mesh : n:int -> Graph.t
(** Complete graph on [n >= 2] nodes. *)

type datacenter = {
  dc_graph : Graph.t;
  dc_leaves : int array; (* grouped by cluster *)
  dc_spines : int array; (* grouped by cluster *)
  dc_cores : int array;
  dc_cluster : int array; (* node -> cluster id; -1 for core *)
}

val datacenter :
  ?leaf_counts:int list ->
  clusters:int -> leaves:int -> spines:int -> cores:int -> unit -> datacenter
(** Multiple Clos-like clusters joined by a core layer, mimicking the
    paper's 197-router operational datacenter: each cluster is a complete
    leaf-spine bipartite graph and every spine links to every core router.
    [leaf_counts] gives per-cluster leaf counts (default: [leaves]
    everywhere); heterogeneous clusters are what keep the real network's
    abstraction from collapsing to a handful of nodes. *)

type wan = {
  wan_graph : Graph.t;
  wan_backbone : int array;
  wan_pop_routers : int array; (* grouped by pop *)
  wan_pop : int array; (* node -> pop id; -1 for backbone *)
}

val wan : ?extra:int -> pops:int -> pop_size:int -> seed:int -> unit -> wan
(** Wide-area network: a backbone ring with chords (two routers per PoP
    attachment point) and a small access tree per PoP, mimicking the
    paper's 1086-device WAN. [extra] standalone routers (default 0) attach
    to the first backbone router (e.g. a NOC), letting callers hit an exact
    device count. Deterministic in [seed]. *)

val random_connected : n:int -> extra:int -> seed:int -> Graph.t
(** Random connected graph: a uniform random spanning tree plus [extra]
    random non-parallel links. Deterministic in [seed]. Used by the
    property-based tests. *)

val star : n:int -> Graph.t
(** One hub (node 0) linked to [n - 1] spokes. *)

val grid : rows:int -> cols:int -> Graph.t

let palette =
  [| "#e6194b"; "#3cb44b"; "#ffe119"; "#4363d8"; "#f58231"; "#911eb4";
     "#46f0f0"; "#f032e6"; "#bcf60c"; "#fabebe"; "#008080"; "#e6beff" |]

let to_string ?(name = "g") ?node_label ?node_group g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" name);
  Buffer.add_string buf "  node [shape=ellipse, style=filled, fillcolor=white];\n";
  for v = 0 to Graph.n_nodes g - 1 do
    let label =
      match node_label with Some f -> f v | None -> Graph.name g v
    in
    let color =
      match node_group with
      | Some f -> Printf.sprintf ", fillcolor=\"%s\"" palette.(f v mod Array.length palette)
      | None -> ""
    in
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"%s];\n" v label color)
  done;
  List.iter
    (fun (u, v) ->
      if Graph.has_edge g v u then begin
        if u < v then Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)
      end
      else Buffer.add_string buf (Printf.sprintf "  %d -- %d [dir=forward];\n" u v))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path ?name ?node_label ?node_group g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name ?node_label ?node_group g))

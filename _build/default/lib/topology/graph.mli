(** Directed graphs over dense integer node ids.

    The SRP model (paper §3) works over a graph [G = (V, E, d)] with
    directed edges; links of real networks are represented as a pair of
    directed edges. Nodes carry a name used for reporting and DOT output. *)

type t

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_node : t -> string -> int
  (** Returns the fresh node's id (dense, starting at 0). *)

  val add_edge : t -> int -> int -> unit
  (** Directed edge. Duplicate edges are ignored; self-loops are rejected
      ({e well-formed} SRPs are self-loop-free, paper §3.1).
      @raise Invalid_argument on a self-loop or unknown endpoint. *)

  val add_link : t -> int -> int -> unit
  (** Undirected link: both directed edges. *)

  val build : t -> graph
end

val of_links : n:int -> (int * int) list -> t
(** [of_links ~n links] builds a graph with nodes [0 .. n-1] named
    ["n<i>"] and an undirected link per pair. *)

(** {1 Access} *)

val n_nodes : t -> int
val n_edges : t -> int
(** Number of directed edges. *)

val n_links : t -> int
(** Number of undirected links (pairs [{u,v}] with both directions
    present); one-way edges count as a link too. *)

val name : t -> int -> string
val find_by_name : t -> string -> int option
val succ : t -> int -> int array
(** Out-neighbors, ascending. Do not mutate. *)

val pred : t -> int -> int array
val has_edge : t -> int -> int -> bool
val edges : t -> (int * int) list
(** All directed edges, lexicographic order. *)

val iter_edges : t -> (int -> int -> unit) -> unit
val fold_nodes : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val degree : t -> int -> int
(** Out-degree. *)

val is_connected : t -> bool
(** Weak connectivity (treating edges as undirected). Vacuously true for
    the empty graph. *)

val pp_stats : Format.formatter -> t -> unit

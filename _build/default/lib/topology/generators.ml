type fattree = {
  ft_graph : Graph.t;
  ft_k : int;
  ft_core : int array;
  ft_agg : int array;
  ft_edge : int array;
  ft_pod : int array;
}

let fattree ~k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Generators.fattree: k must be even, >= 2";
  let h = k / 2 in
  let b = Graph.Builder.create () in
  let core = Array.init (h * h) (fun i -> Graph.Builder.add_node b (Printf.sprintf "core%d" i)) in
  let agg = Array.make (k * h) 0 in
  let edge = Array.make (k * h) 0 in
  for p = 0 to k - 1 do
    for j = 0 to h - 1 do
      agg.((p * h) + j) <- Graph.Builder.add_node b (Printf.sprintf "agg%d_%d" p j)
    done;
    for j = 0 to h - 1 do
      edge.((p * h) + j) <- Graph.Builder.add_node b (Printf.sprintf "edge%d_%d" p j)
    done
  done;
  for p = 0 to k - 1 do
    (* complete bipartite edge-agg inside the pod *)
    for i = 0 to h - 1 do
      for j = 0 to h - 1 do
        Graph.Builder.add_link b edge.((p * h) + i) agg.((p * h) + j)
      done
    done;
    (* aggregation j of each pod connects to core group j *)
    for j = 0 to h - 1 do
      for i = 0 to h - 1 do
        Graph.Builder.add_link b agg.((p * h) + j) core.((j * h) + i)
      done
    done
  done;
  let g = Graph.Builder.build b in
  let pod = Array.make (Graph.n_nodes g) (-1) in
  Array.iteri (fun i v -> pod.(v) <- i / h) agg;
  Array.iteri (fun i v -> pod.(v) <- i / h) edge;
  { ft_graph = g; ft_k = k; ft_core = core; ft_agg = agg; ft_edge = edge; ft_pod = pod }

let ring ~n =
  if n < 3 then invalid_arg "Generators.ring: n >= 3 required";
  Graph.of_links ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let full_mesh ~n =
  if n < 2 then invalid_arg "Generators.full_mesh: n >= 2 required";
  let links = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      links := (i, j) :: !links
    done
  done;
  Graph.of_links ~n !links

type datacenter = {
  dc_graph : Graph.t;
  dc_leaves : int array;
  dc_spines : int array;
  dc_cores : int array;
  dc_cluster : int array;
}

let datacenter ?leaf_counts ~clusters ~leaves ~spines ~cores () =
  if clusters < 1 || leaves < 1 || spines < 1 || cores < 1 then
    invalid_arg "Generators.datacenter: all sizes must be positive";
  let leaf_counts =
    match leaf_counts with
    | None -> Array.make clusters leaves
    | Some l ->
      if List.length l <> clusters then
        invalid_arg "Generators.datacenter: leaf_counts length mismatch";
      Array.of_list l
  in
  let total_leaves = Array.fold_left ( + ) 0 leaf_counts in
  let b = Graph.Builder.create () in
  let dc_cores =
    Array.init cores (fun i -> Graph.Builder.add_node b (Printf.sprintf "core%d" i))
  in
  let dc_leaves = Array.make total_leaves 0 in
  let dc_spines = Array.make (clusters * spines) 0 in
  let leaf_cluster = Array.make total_leaves 0 in
  let li = ref 0 in
  for c = 0 to clusters - 1 do
    for i = 0 to spines - 1 do
      dc_spines.((c * spines) + i) <-
        Graph.Builder.add_node b (Printf.sprintf "spine%d_%d" c i)
    done;
    let first_leaf = !li in
    for i = 0 to leaf_counts.(c) - 1 do
      dc_leaves.(!li) <- Graph.Builder.add_node b (Printf.sprintf "leaf%d_%d" c i);
      leaf_cluster.(!li) <- c;
      incr li
    done;
    for i = first_leaf to !li - 1 do
      for j = 0 to spines - 1 do
        Graph.Builder.add_link b dc_leaves.(i) dc_spines.((c * spines) + j)
      done
    done;
    for j = 0 to spines - 1 do
      Array.iter
        (fun core -> Graph.Builder.add_link b dc_spines.((c * spines) + j) core)
        dc_cores
    done
  done;
  let g = Graph.Builder.build b in
  let cluster = Array.make (Graph.n_nodes g) (-1) in
  Array.iteri (fun i v -> cluster.(v) <- leaf_cluster.(i)) dc_leaves;
  Array.iteri (fun i v -> cluster.(v) <- i / spines) dc_spines;
  { dc_graph = g; dc_leaves; dc_spines; dc_cores; dc_cluster = cluster }

type wan = {
  wan_graph : Graph.t;
  wan_backbone : int array;
  wan_pop_routers : int array;
  wan_pop : int array;
}

let wan ?(extra = 0) ~pops ~pop_size ~seed () =
  if pops < 3 || pop_size < 1 then
    invalid_arg "Generators.wan: pops >= 3 and pop_size >= 1 required";
  let rng = Random.State.make [| seed; 0x57a4 |] in
  let b = Graph.Builder.create () in
  (* Two backbone routers per PoP attachment, arranged in a ring of pairs
     with a few chords. *)
  let backbone =
    Array.init (2 * pops) (fun i -> Graph.Builder.add_node b (Printf.sprintf "bb%d" i))
  in
  for p = 0 to pops - 1 do
    Graph.Builder.add_link b backbone.(2 * p) backbone.((2 * p) + 1);
    let q = (p + 1) mod pops in
    Graph.Builder.add_link b backbone.(2 * p) backbone.(2 * q);
    Graph.Builder.add_link b backbone.((2 * p) + 1) backbone.((2 * q) + 1)
  done;
  (* chords across the ring for path diversity *)
  let n_chords = max 1 (pops / 4) in
  for _ = 1 to n_chords do
    let p = Random.State.int rng pops and q = Random.State.int rng pops in
    if p <> q && (p + 1) mod pops <> q && (q + 1) mod pops <> p then
      Graph.Builder.add_link b backbone.(2 * p) backbone.(2 * q)
  done;
  (* Each PoP: a two-level access tree hanging off both backbone routers. *)
  let pop_routers = Array.make (pops * pop_size) 0 in
  for p = 0 to pops - 1 do
    let aggs = max 1 (pop_size / 8) in
    for i = 0 to pop_size - 1 do
      pop_routers.((p * pop_size) + i) <-
        Graph.Builder.add_node b (Printf.sprintf "pop%d_r%d" p i)
    done;
    for i = 0 to pop_size - 1 do
      let v = pop_routers.((p * pop_size) + i) in
      if i < aggs then begin
        (* aggregation routers dual-home to the backbone pair *)
        Graph.Builder.add_link b v backbone.(2 * p);
        Graph.Builder.add_link b v backbone.((2 * p) + 1)
      end
      else begin
        (* access routers dual-home to two aggregation routers *)
        let a1 = i mod aggs in
        let a2 = (i + 1) mod aggs in
        Graph.Builder.add_link b v pop_routers.((p * pop_size) + a1);
        if a2 <> a1 then Graph.Builder.add_link b v pop_routers.((p * pop_size) + a2)
      end
    done
  done;
  for i = 0 to extra - 1 do
    let v = Graph.Builder.add_node b (Printf.sprintf "noc%d" i) in
    Graph.Builder.add_link b v backbone.(0)
  done;
  let g = Graph.Builder.build b in
  let pop = Array.make (Graph.n_nodes g) (-1) in
  Array.iteri (fun i v -> pop.(v) <- i / pop_size) pop_routers;
  { wan_graph = g; wan_backbone = backbone; wan_pop_routers = pop_routers; wan_pop = pop }

let random_connected ~n ~extra ~seed =
  if n < 1 then invalid_arg "Generators.random_connected: n >= 1 required";
  let rng = Random.State.make [| seed; 0x3a11 |] in
  let links = ref [] in
  (* random spanning tree: attach node i to a uniformly random earlier node *)
  for i = 1 to n - 1 do
    links := (i, Random.State.int rng i) :: !links
  done;
  let have = Hashtbl.create 64 in
  List.iter
    (fun (u, v) -> Hashtbl.replace have (min u v, max u v) ())
    !links;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < extra * 20 do
    incr attempts;
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v && not (Hashtbl.mem have (min u v, max u v)) then begin
      Hashtbl.replace have (min u v, max u v) ();
      links := (u, v) :: !links;
      incr added
    end
  done;
  Graph.of_links ~n !links

let star ~n =
  if n < 2 then invalid_arg "Generators.star: n >= 2 required";
  Graph.of_links ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid: positive dims required";
  let id r c = (r * cols) + c in
  let links = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then links := (id r c, id r (c + 1)) :: !links;
      if r + 1 < rows then links := (id r c, id (r + 1) c) :: !links
    done
  done;
  Graph.of_links ~n:(rows * cols) !links

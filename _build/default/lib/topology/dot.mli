(** Graphviz DOT output for concrete and abstract networks. *)

val to_string :
  ?name:string ->
  ?node_label:(int -> string) ->
  ?node_group:(int -> int) ->
  Graph.t ->
  string
(** [to_string g] renders [g] as an undirected DOT graph (paired directed
    edges collapse to one line; genuinely one-way edges are rendered as
    directed). [node_group] colors nodes by group id (e.g. by abstract
    node). *)

val write_file :
  path:string ->
  ?name:string ->
  ?node_label:(int -> string) ->
  ?node_group:(int -> int) ->
  Graph.t ->
  unit

lib/verify/properties.ml: Array Graph List Solution Srp

lib/verify/robust.mli: Solution Srp

lib/verify/properties.mli: Solution

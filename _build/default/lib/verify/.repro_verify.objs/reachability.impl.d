lib/verify/reachability.ml: Abstraction Bonsai_api Compile Device Ecs Graph List Option Policy_bdd Properties Solution Solver Srp Timing

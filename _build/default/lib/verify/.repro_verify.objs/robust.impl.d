lib/verify/robust.ml: Graph List Solution Solver Srp

lib/verify/dataplane.mli: Addr_set Device Ipv4 Prefix

lib/verify/reachability.mli: Device Ecs

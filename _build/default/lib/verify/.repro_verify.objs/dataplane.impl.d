lib/verify/dataplane.ml: Addr_set Array Compile Device Ecs Graph List Option Prefix Prefix_trie Solution Solver

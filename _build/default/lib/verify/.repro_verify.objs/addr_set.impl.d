lib/verify/addr_set.ml: Bdd Format Ipv4 List Prefix

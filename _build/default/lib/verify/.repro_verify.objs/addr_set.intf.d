lib/verify/addr_set.mli: Format Ipv4 Prefix

(** All-pairs reachability verification — the analysis client whose runtime
    Bonsai accelerates (paper §8, Figure 12 and the Batfish query).

    The engine plays the role of Batfish/Minesweeper: for every destination
    equivalence class it simulates the control plane to a stable solution
    and checks which sources reach the destination. Run on the concrete
    network, its cost grows with network size; run on Bonsai's compressed
    networks (one per class, compression time included), it answers the
    same queries — CP-equivalence guarantees the per-pair verdicts
    coincide. *)

type protocol = [ `Bgp | `Multi ]

type result = {
  pairs : int;  (** (source, class) pairs checked *)
  unreachable : int;  (** pairs where some/all paths fail *)
  ecs_done : int;
  time_s : float;  (** total wall-clock, including compression if any *)
  compress_time_s : float;  (** abstract runs only *)
  timed_out : bool;
}

val concrete_all_pairs :
  ?timeout_s:float -> ?protocol:protocol -> ?max_ecs:int ->
  Device.network -> result

val abstract_all_pairs :
  ?timeout_s:float -> ?protocol:protocol -> ?max_ecs:int ->
  Device.network -> result
(** Compress each class first (time included), then verify on the abstract
    network. The [pairs] counted are abstract pairs — one per abstract
    node, i.e. one per role, which is exactly the saving. *)

val concrete_query :
  ?protocol:protocol -> Device.network -> src:int -> ec:Ecs.ec -> bool
(** Single reachability query (the paper's Batfish experiment). *)

val abstract_query :
  ?protocol:protocol -> Device.network -> src:int -> ec:Ecs.ec -> bool
(** The same query answered by compressing the class and asking about
    [f src] in the abstract network. *)

type flows = {
  sources_reaching : int;  (** sources with a forwarding path to the dest *)
  total_paths : int;  (** forwarding paths enumerated across all sources *)
  flow_time_s : float;
}

val concrete_flows : ?protocol:protocol -> Device.network -> ec:Ecs.ec -> flows
(** The paper's Batfish/NoD experiment: compute {e all} forwarding paths
    from every source towards the destination class (multipath fattrees
    make this blow up combinatorially on the concrete network). *)

val abstract_flows : ?protocol:protocol -> Device.network -> ec:Ecs.ec -> flows
(** Same analysis after compressing the class (compression time included);
    [sources_reaching] counts abstract sources. *)

(** Verification over {e all} stable solutions.

    An SRP can have several stable solutions (paper §3.1) — which one the
    network converges to depends on message timing. A property verified on
    one solution may silently fail in another (e.g. which of the paper's
    Figure 2 middle routers sends traffic through the top router differs
    per solution). This module quantifies over solutions: exhaustively for
    small networks (via {!Solver.enumerate_solutions}), by seeded sampling
    otherwise.

    Combined with compression this is the paper's intended workflow: a
    property holds in every solution of the concrete network iff it holds
    (modulo [f], [h]) in every solution of the abstract network — and the
    abstract network is usually small enough to enumerate. *)

type 'a result =
  | Holds  (** holds in every stable solution (exhaustive) *)
  | Fails of 'a Solution.t  (** a counterexample solution *)
  | Sampled_holds of int
      (** held in each of the n sampled solutions (non-exhaustive) *)

val for_all_solutions :
  ?max_nodes:int ->
  ?tries:int ->
  'a Srp.t ->
  ('a Solution.t -> bool) ->
  'a result
(** Exhaustive when the network has at most [max_nodes] (default 12)
    nodes; otherwise checks the distinct solutions found by [tries]
    (default 16) seeded solver runs. *)

val exists_solution :
  ?max_nodes:int -> ?tries:int -> 'a Srp.t -> ('a Solution.t -> bool) ->
  'a Solution.t option
(** A solution satisfying the predicate, if one is found. *)

type t = {
  net : Device.network;
  fibs : (Prefix.t * int list) Prefix_trie.t array;  (** one trie per router *)
  origin : (Prefix.t * int) list;  (** class prefix -> destination router *)
  mutable entries : int;
  mutable ecs : int;
}

type hop_result =
  | Delivered of int list
  | Dropped of int list
  | Looped of int list

let of_network ?(protocol = `Bgp) ?max_ecs (net : Device.network) =
  let n = Graph.n_nodes net.Device.graph in
  let t =
    {
      net;
      fibs = Array.init n (fun _ -> Prefix_trie.create ());
      origin = [];
      entries = 0;
      ecs = 0;
    }
  in
  let ecs = Ecs.compute net in
  let ecs =
    match max_ecs with
    | None -> ecs
    | Some k -> List.filteri (fun i _ -> i < k) ecs
  in
  let add_solution (type a) ec (sol : a Solution.t) =
    t.ecs <- t.ecs + 1;
    for u = 0 to n - 1 do
      match Solution.fwd sol u with
      | [] -> ()
      | fwd ->
        let nhs = List.map snd fwd in
        Prefix_trie.add t.fibs.(u) ec.Ecs.ec_prefix (ec.Ecs.ec_prefix, nhs);
        t.entries <- t.entries + 1
    done
  in
  let origins = ref [] in
  List.iter
    (fun ec ->
      match ec.Ecs.ec_origins with
      | [ dest ] -> (
        origins := (ec.Ecs.ec_prefix, dest) :: !origins;
        match protocol with
        | `Bgp -> (
          match
            Solver.solve (Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix)
          with
          | Ok (sol, _) -> add_solution ec sol
          | Error _ -> ())
        | `Multi -> (
          match
            Solver.solve
              (Compile.multi_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix)
          with
          | Ok (sol, _) -> add_solution ec sol
          | Error _ -> ()))
      | _ -> ())
    ecs;
  { t with origin = !origins }

let fib t u =
  Prefix_trie.bindings t.fibs.(u)
  |> List.map snd
  |> List.sort (fun (p, _) (q, _) -> Prefix.compare p q)

let lookup t u addr =
  match Prefix_trie.lpm t.fibs.(u) addr with
  | Some (_, (_, nhs)) -> nhs
  | None -> []

let dest_of t addr =
  List.fold_left
    (fun best (p, d) ->
      if Prefix.mem addr p then
        match best with
        | Some ((q : Prefix.t), _) when q.Prefix.len >= p.Prefix.len -> best
        | _ -> Some (p, d)
      else best)
    None t.origin
  |> Option.map snd

let trace_gen ~all t ~src addr =
  let dest = dest_of t addr in
  let rec go u path seen =
    if Some u = dest then [ Delivered (List.rev (u :: path)) ]
    else if List.mem u seen then [ Looped (List.rev (u :: path)) ]
    else
      match lookup t u addr with
      | [] -> [ Dropped (List.rev (u :: path)) ]
      | nh :: rest ->
        let nexts = if all then nh :: rest else [ nh ] in
        List.concat_map (fun v -> go v (u :: path) (u :: seen)) nexts
  in
  go src [] []

let trace t ~src addr =
  match trace_gen ~all:false t ~src addr with
  | [ r ] -> r
  | _ -> assert false

let trace_all t ~src addr = trace_gen ~all:true t ~src addr

let n_entries t = t.entries
let ecs_solved t = t.ecs

let ec_of_prefix t p =
  List.find_opt (fun ec -> Prefix.equal ec.Ecs.ec_prefix p) (Ecs.compute t.net)

let ranges_of_prefix t p =
  match ec_of_prefix t p with
  | Some ec -> Ecs.ranges t.net ec
  | None -> [ p ]

let addresses_via t u v =
  Prefix_trie.bindings t.fibs.(u)
  |> List.fold_left
       (fun acc (_, (p, nhs)) ->
         if List.mem v nhs then
           Addr_set.union acc (Addr_set.of_prefixes (ranges_of_prefix t p))
         else acc)
       Addr_set.empty

let addresses_delivered t ~src ~dst =
  List.fold_left
    (fun acc (p, origin) ->
      if origin <> dst then acc
      else
        let addr = p.Prefix.addr in
        let delivered =
          List.exists
            (function Delivered _ -> true | _ -> false)
            (trace_all t ~src addr)
        in
        if delivered then
          Addr_set.union acc (Addr_set.of_prefixes (ranges_of_prefix t p))
        else acc)
    Addr_set.empty t.origin

let reachable = Solution.reaches

let max_path_len sol = Graph.n_nodes sol.Solution.srp.Srp.graph + 1

let paths sol ~src = Solution.forwarding_paths sol ~src ~max_len:(max_path_len sol)

let ends_at_dest sol p =
  match List.rev p with
  | last :: _ -> last = sol.Solution.srp.Srp.dest
  | [] -> false

let path_lengths sol ~src =
  paths sol ~src
  |> List.filter (ends_at_dest sol)
  |> List.map (fun p -> List.length p - 1)
  |> List.sort compare

let black_hole sol u =
  paths sol ~src:u
  |> List.exists (fun p ->
         match List.rev p with
         | last :: _ ->
           last <> sol.Solution.srp.Srp.dest
           && Solution.fwd sol last = [] (* dead end, not a truncated loop *)
         | [] -> false)

let has_routing_loop sol =
  let g = sol.Solution.srp.Srp.graph in
  let n = Graph.n_nodes g in
  let color = Array.make n 0 in
  let found = ref false in
  let rec visit u =
    if color.(u) = 1 then found := true
    else if color.(u) = 0 then begin
      color.(u) <- 1;
      List.iter (fun (_, v) -> visit v) (Solution.fwd sol u);
      color.(u) <- 2
    end
  in
  for u = 0 to n - 1 do
    if not !found then visit u
  done;
  !found

let waypointed sol ~src ~waypoints =
  paths sol ~src
  |> List.filter (ends_at_dest sol)
  |> List.for_all (fun p -> List.exists (fun w -> List.mem w p) waypoints)

let multipath_consistent sol ~src =
  let ps = paths sol ~src in
  match ps with
  | [] -> true
  | _ ->
    let good, bad =
      List.partition (ends_at_dest sol) ps
    in
    good = [] || bad = []

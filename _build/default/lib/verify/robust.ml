type 'a result =
  | Holds
  | Fails of 'a Solution.t
  | Sampled_holds of int

let solutions ?(max_nodes = 12) ?(tries = 16) (srp : 'a Srp.t) =
  if Graph.n_nodes srp.Srp.graph <= max_nodes then
    (`Exhaustive, Solver.enumerate_solutions ~max_nodes srp)
  else (`Sampled, Solver.solutions_sample ~tries srp)

let for_all_solutions ?max_nodes ?tries srp prop =
  let kind, sols = solutions ?max_nodes ?tries srp in
  match List.find_opt (fun s -> not (prop s)) sols with
  | Some cex -> Fails cex
  | None -> (
    match kind with
    | `Exhaustive -> Holds
    | `Sampled -> Sampled_holds (List.length sols))

let exists_solution ?max_nodes ?tries srp prop =
  let _, sols = solutions ?max_nodes ?tries srp in
  List.find_opt prop sols

(** The data plane: per-router forwarding tables and packet tracing.

    Batfish "first simulates the control plane to produce the data plane"
    (paper §8) and then answers packet-level queries on it. This module is
    that step: it solves the SRP of every destination class and assembles,
    for each router, a longest-prefix-match FIB mapping destination
    prefixes to next hops. Packets are then traced hop by hop.

    Built either from a concrete network or from a compressed one (one
    abstract data plane per destination class is meaningless — instead,
    {!of_network} accepts any configured network, so the emitted abstract
    configurations of {!Abstract_config} work directly). *)

type t

type hop_result =
  | Delivered of int list  (** the path taken, source first *)
  | Dropped of int list  (** no FIB entry at the last node of the path *)
  | Looped of int list  (** the path revisits a node *)

val of_network :
  ?protocol:[ `Bgp | `Multi ] -> ?max_ecs:int -> Device.network -> t
(** Solve every (single-origin) destination class and build the FIBs.
    Classes whose control plane diverges contribute no entries. *)

val fib : t -> int -> (Prefix.t * int list) list
(** A router's forwarding table: prefix, next hops; sorted by prefix. *)

val lookup : t -> int -> Ipv4.t -> int list
(** Longest-prefix-match next hops for an address at a router ([[]] if
    none). *)

val trace : t -> src:int -> Ipv4.t -> hop_result
(** Follow the FIBs from [src] (first next-hop at each router) until the
    address's destination router, a drop, or a loop. *)

val trace_all : t -> src:int -> Ipv4.t -> hop_result list
(** Like {!trace} but following {e every} next hop (ECMP); one result per
    distinct path, depth-first order. *)

val n_entries : t -> int
(** Total number of FIB entries across all routers. *)

val ecs_solved : t -> int

(** {1 Address-set queries (the NoD-style analysis)} *)

val addresses_via : t -> int -> int -> Addr_set.t
(** The set of destination addresses router [u] forwards to neighbor
    [v] — the union of the governing ranges of every class whose FIB entry
    at [u] lists [v] as a next hop. *)

val addresses_delivered : t -> src:int -> dst:int -> Addr_set.t
(** "All packets that can traverse between source and destination" (the
    paper's Batfish query): destination addresses originated at [dst] that
    traffic entering at [src] actually reaches (along at least one ECMP
    path). *)

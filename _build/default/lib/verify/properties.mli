(** Path properties preserved by CP-equivalence (paper §4.4).

    All properties are judged on a stable solution's forwarding relation;
    by Theorems 4.2/4.5 each holds on the concrete network iff it holds
    (modulo the abstraction functions) on the compressed network. *)

val reachable : 'a Solution.t -> int -> bool
(** Every forwarding path from the node reaches the destination, and there
    is at least one. *)

val path_lengths : 'a Solution.t -> src:int -> int list
(** Lengths of all forwarding paths from [src] that reach the destination;
    sorted ascending. *)

val black_hole : 'a Solution.t -> int -> bool
(** Some forwarding path from the node ends at a non-destination with no
    forwarding edge. *)

val has_routing_loop : 'a Solution.t -> bool
(** The forwarding relation contains a cycle. *)

val waypointed : 'a Solution.t -> src:int -> waypoints:int list -> bool
(** Every forwarding path from [src] that reaches the destination passes
    through one of the waypoints. Vacuously true if nothing reaches. *)

val multipath_consistent : 'a Solution.t -> src:int -> bool
(** Not the case that traffic from [src] reaches the destination along one
    path but is dropped along another (paper's multipath consistency). *)

lib/util/union_split_find.mli: Format

lib/util/timing.mli:

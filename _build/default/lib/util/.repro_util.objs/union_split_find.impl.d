lib/util/union_split_find.ml: Array Format Fun Hashtbl List

let now = Unix.gettimeofday

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let time_ignore f = snd (time f)

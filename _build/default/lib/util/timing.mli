(** Wall-clock timing helpers for the benchmark harness. *)

val now : unit -> float
(** Monotonic-enough wall-clock time in seconds. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

val time_ignore : (unit -> 'a) -> float
(** [time_ignore f] is the elapsed seconds of [f ()], discarding the result. *)

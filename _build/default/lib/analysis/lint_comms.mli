(** Set-but-never-matched communities.

    The compiler's attribute abstraction (paper §8) drops communities no
    policy matches on; configurations that still {e set} them pay the cost
    of tagging without any effect on routing. Each such community is
    reported once, at Info severity, together with every route-map that
    sets it. *)

val checks : (string * string) list

val run : ?locs:Config_text.loc_table -> Device.network -> Diag.t list

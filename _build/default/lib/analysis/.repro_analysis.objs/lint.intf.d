lib/analysis/lint.mli: Config_text Device Diag Format

lib/analysis/lint_compress.ml: Array Bdd Device Diag Ecs Graph Hashtbl Int List Option Policy_bdd Prefix Printf String

lib/analysis/lint_comms.mli: Config_text Device Diag

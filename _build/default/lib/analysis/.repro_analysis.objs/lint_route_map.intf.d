lib/analysis/lint_route_map.mli: Cond_bdd Config_text Device Diag

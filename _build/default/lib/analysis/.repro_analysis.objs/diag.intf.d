lib/analysis/diag.mli: Format

lib/analysis/lint_compress.mli: Config_text Device Diag

lib/analysis/lint_route_map.ml: Array Bdd Cond_bdd Config_text Device Diag Graph Hashtbl List Option Printf Route_map String

lib/analysis/cond_bdd.mli: Acl Bdd Device Prefix Route_map

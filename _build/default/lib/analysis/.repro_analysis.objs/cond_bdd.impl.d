lib/analysis/cond_bdd.ml: Acl Array Bdd Bvec Device Fun Int List Option Prefix Route_map

lib/analysis/lint.ml: Cond_bdd Device Diag Format Lint_acl Lint_comms Lint_compress Lint_route_map Lint_routing Lint_session List

lib/analysis/diag.ml: Buffer Char Format Int List Option Printf Stdlib String

lib/analysis/lint_session.mli: Config_text Device Diag

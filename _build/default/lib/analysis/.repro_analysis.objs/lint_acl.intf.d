lib/analysis/lint_acl.mli: Cond_bdd Config_text Device Diag

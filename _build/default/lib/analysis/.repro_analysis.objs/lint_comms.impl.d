lib/analysis/lint_comms.ml: Array Config_text Device Diag Graph Hashtbl Int List Option Printf Route_map String

lib/analysis/lint_session.ml: Array Config_text Device Diag Graph List Option Printf

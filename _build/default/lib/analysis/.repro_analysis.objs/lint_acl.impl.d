lib/analysis/lint_acl.ml: Acl Array Bdd Cond_bdd Config_text Device Diag Graph List Option Prefix Printf

lib/analysis/lint_routing.mli: Cond_bdd Config_text Device Diag

lib/analysis/lint_routing.ml: Array Bdd Cond_bdd Config_text Device Diag Graph Hashtbl Int List Multi Option Prefix Printf Route_map String

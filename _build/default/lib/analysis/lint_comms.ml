let checks =
  [
    ( "unmatched-community",
      "community set by some route-map but matched by none (pruned by the \
       attribute abstraction)" );
  ]

let run ?locs (net : Device.network) =
  let matched = Hashtbl.create 16 in
  (* community -> (router, neighbor, dir, rm) of the setters, reversed *)
  let setters : (int, (string * string * string * Route_map.t) list ref)
      Hashtbl.t =
    Hashtbl.create 16
  in
  let g = net.Device.graph in
  let seen : (Route_map.t, unit) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun v (r : Device.router) ->
      List.iter
        (fun (u, (nb : Device.bgp_neighbor)) ->
          let visit dir rm =
            List.iter
              (fun c -> Hashtbl.replace matched c ())
              (Route_map.communities_matched rm);
            if not (Hashtbl.mem seen rm) then begin
              Hashtbl.replace seen rm ();
              List.iter
                (fun c ->
                  let cur =
                    match Hashtbl.find_opt setters c with
                    | Some l -> l
                    | None ->
                      let l = ref [] in
                      Hashtbl.add setters c l;
                      l
                  in
                  cur := (Graph.name g v, Graph.name g u, dir, rm) :: !cur)
                (Route_map.communities_set rm)
            end
          in
          Option.iter (visit "import") nb.import_rm;
          Option.iter (visit "export") nb.export_rm)
        r.bgp_neighbors)
    net.routers;
  let unmatched =
    Hashtbl.fold
      (fun c l acc -> if Hashtbl.mem matched c then acc else (c, !l) :: acc)
      setters []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.map
    (fun (c, sets) ->
      let sets = List.rev sets in
      let router, neighbor, _, rm = List.hd sets in
      let rm_name = Option.bind locs (fun l -> Config_text.rm_name_of l rm) in
      let where (router, neighbor, dir, rm) =
        match Option.bind locs (fun l -> Config_text.rm_name_of l rm) with
        | Some n -> Printf.sprintf "route-map %s" n
        | None ->
          Printf.sprintf "the %s route-map of %s -> %s" dir router neighbor
      in
      let loc =
        {
          Diag.router = Some router;
          neighbor = Some neighbor;
          rm_name;
          clause = None;
          line =
            Option.bind rm_name (fun n ->
                Option.bind locs (fun l ->
                    Option.map
                      (fun r -> r.Config_text.rm_line)
                      (Config_text.rm_loc l n)));
        }
      in
      Diag.make ~check:"unmatched-community" ~severity:Diag.Info ~loc
        (Printf.sprintf
           "community %s is set by %s but matched nowhere; the attribute \
            abstraction prunes it, and it only grows advertisements on the \
            wire"
           (Config_text.community_to_string c)
           (String.concat " and " (List.map where sets))))
    unmatched

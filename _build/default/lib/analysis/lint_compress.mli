(** Compression blockers.

    Routers that the topology alone would let Bonsai merge — same degree,
    same neighbor-degree profile, same protocol mix — can still land in
    different roles because their interface policies differ semantically.
    When the difference is {e small} (confined to a couple of BDD fields,
    typically one community or one local-preference value — the shape of a
    copy-paste error), this check reports the closest blocking pair per
    topological group and names the first BDD variable on which the two
    policies disagree, with a witness advertisement. Info severity: the
    configurations may well be intentional; the report explains why the
    abstraction is bigger than the topology suggests. *)

val checks : (string * string) list

val run : ?locs:Config_text.loc_table -> Device.network -> Diag.t list

type t = { man : Bdd.man; comms : int array }

let addr_bits = 32
let len_bits = 6 (* lengths 0..32 *)
let len_first = addr_bits
let comm_first = addr_bits + len_bits

let create ~comms =
  {
    man = Bdd.man ();
    comms = Array.of_list (List.sort_uniq Int.compare comms);
  }

let of_network (net : Device.network) =
  let matched = ref [] in
  Array.iter
    (fun (r : Device.router) ->
      List.iter
        (fun (_, (nb : Device.bgp_neighbor)) ->
          let scan rm = matched := Route_map.communities_matched rm @ !matched in
          Option.iter scan nb.import_rm;
          Option.iter scan nb.export_rm)
        r.bgp_neighbors)
    net.routers;
  create ~comms:!matched

let of_route_map rm = create ~comms:(Route_map.communities_matched rm)

let len_vec t = Bvec.of_vars t.man ~first:len_first ~width:len_bits

let addr_in t (p : Prefix.t) =
  let m = t.man in
  let acc = ref Bdd.top in
  for i = 0 to p.Prefix.len - 1 do
    let v = if Prefix.bit p i then Bdd.var m i else Bdd.nvar m i in
    acc := Bdd.and_ m !acc v
  done;
  !acc

let dest_in t (p : Prefix.t) =
  Bdd.and_ t.man (Bvec.ge_const t.man (len_vec t) p.Prefix.len) (addr_in t p)

let index_of arr x =
  let rec go i =
    if i >= Array.length arr then None
    else if arr.(i) = x then Some i
    else go (i + 1)
  in
  go 0

let comm t c =
  match index_of t.comms c with
  | Some i -> Bdd.var t.man (comm_first + i)
  | None -> Bdd.bot

let cond t = function
  | Route_map.Match_community cs ->
    Bdd.or_list t.man (List.map (comm t) cs)
  | Route_map.Match_prefix ps ->
    Bdd.or_list t.man (List.map (dest_in t) ps)

let guard t (cl : Route_map.clause) =
  Bdd.and_list t.man (List.map (cond t) cl.conds)

let dead_under_cover t guards =
  let m = t.man in
  let earlier = ref Bdd.bot in
  List.mapi
    (fun i g ->
      let dead = Bdd.implies m g !earlier in
      earlier := Bdd.or_ m !earlier g;
      if dead then Some i else None)
    guards
  |> List.filter_map Fun.id

let shadowed t (rm : Route_map.t) =
  dead_under_cover t (List.map (guard t) rm)

let acl_permits t (acl : Acl.t) =
  let m = t.man in
  List.fold_right
    (fun (rule : Acl.rule) rest ->
      Bdd.ite m (addr_in t rule.prefix)
        (if rule.permit then Bdd.top else Bdd.bot)
        rest)
    acl Bdd.bot

let acl_dead_rules t (acl : Acl.t) =
  dead_under_cover t
    (List.map (fun (rule : Acl.rule) -> addr_in t rule.prefix) acl)

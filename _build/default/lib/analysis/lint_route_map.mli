(** Route-map clause shadowing (semantic dead-clause detection).

    A clause is dead iff the disjunction of the earlier clauses'
    match-condition BDDs covers its own ({!Cond_bdd.shadowed}) — a purely
    semantic test over the (destination prefix, communities) condition
    space, so it catches covers no syntactic comparison of prefix-list or
    community-list entries sees (e.g. a clause whose matches are split
    between one earlier clause's community list and another's). Clauses
    that can never match at all (mutually exclusive conditions) are
    reported separately. *)

val checks : (string * string) list
(** Check ids and one-line descriptions contributed by this module. *)

val run :
  ?locs:Config_text.loc_table -> Cond_bdd.t -> Device.network -> Diag.t list
(** Each structurally distinct route-map attached to some BGP session is
    linted once; the diagnostic points at the first (router, neighbor,
    direction) using it. *)

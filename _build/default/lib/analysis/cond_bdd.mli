(** Condition-space BDD encoding for the semantic linter.

    {!Policy_bdd} encodes what a policy {e does} to an advertisement (a
    relation over attribute fields, specialized to one destination). The
    linter instead needs what a clause {e matches}: a predicate over the
    pair (destination prefix, attached communities), with the destination
    left symbolic so that prefix-list conditions of different clauses can
    be compared semantically. This module provides that second encoding —
    the condition-only universe derived the same way as
    {!Policy_bdd.universe_of_network} collects the community universe.

    Variable layout (one manager per {!t}):
    - variables [0..31]: destination address bits, most significant first;
    - variables [32..37]: destination prefix length, a 6-bit vector
      (least-significant bit first, as in {!Bvec});
    - variables [38..]: one per community in the universe.

    A destination prefix [d] satisfies [dest_in p] iff [d ⊆ p] — exactly
    the semantics of {!Route_map.cond_holds} for prefix lists: the length
    vector must be at least [p]'s length and the first [len p] address
    bits must agree. Encoding the length (rather than treating
    destinations as single addresses) is what keeps the shadowing check
    sound against {!Route_map.eval}, which evaluates route-maps on
    destination {e prefixes}: a clause matching [10.0.0.0/8] is {e not}
    covered by clauses matching the two /9 halves, because the /8 itself
    is a destination neither half contains. *)

type t = { man : Bdd.man; comms : int array }

val create : comms:int list -> t
(** A universe over the given matchable communities (sorted, deduplicated
    internally). *)

val of_network : Device.network -> t
(** Universe over every community matched by some route-map of the
    network (the same collection {!Policy_bdd.universe_of_network} prunes
    against). *)

val of_route_map : Route_map.t -> t
(** Universe over the communities one route-map matches (enough to lint
    that route-map in isolation). *)

val dest_in : t -> Prefix.t -> Bdd.t
(** The set of destination prefixes contained in the given prefix. *)

val addr_in : t -> Prefix.t -> Bdd.t
(** The set of destination {e addresses} inside the prefix (the length
    variables left free). ACL rules filter traffic, so their semantic
    domain is addresses; route-map prefix lists match announced prefixes,
    so theirs is [dest_in]. *)

val comm : t -> int -> Bdd.t
(** The set of advertisements carrying the community; [Bdd.bot] for a
    community outside the universe (it can never be attached as far as
    any match is concerned). *)

val cond : t -> Route_map.cond -> Bdd.t
(** A single route-map condition (disjunction over its list). *)

val guard : t -> Route_map.clause -> Bdd.t
(** Conjunction of the clause's conditions (true for an empty list). *)

val shadowed : t -> Route_map.t -> int list
(** 0-based indices of dead clauses: clause [i] is dead iff the
    disjunction of clauses [0..i-1]'s guards covers its own guard (a
    clause with an unsatisfiable guard is dead by the same test).
    Deleting a dead clause cannot change {!Route_map.eval} on any
    destination/advertisement pair. *)

val acl_permits : t -> Acl.t -> Bdd.t
(** The set of destinations an ACL lets through (first-match, implicit
    deny). *)

val acl_dead_rules : t -> Acl.t -> int list
(** 0-based indices of ACL rules whose prefix is covered by the union of
    earlier rules' prefixes — they can never be the first match. *)

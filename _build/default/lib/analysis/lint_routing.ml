let checks =
  [
    ( "redistribution-cycle",
      "an OSPF-originated prefix can re-enter its own OSPF domain via BGP" );
    ( "static-route-blackhole",
      "static route whose own next-hop interface ACL denies the prefix" );
    ("static-route-loop", "static routes of several routers form a cycle");
  ]

(* Connected components over links enabled on both sides. *)
let components (net : Device.network) enabled =
  let g = net.Device.graph in
  let n = Graph.n_nodes g in
  let comp = Array.make n (-1) in
  let rec flood c v =
    if comp.(v) = -1 then begin
      comp.(v) <- c;
      Array.iter
        (fun u -> if enabled v u && enabled u v then flood c u)
        (Graph.succ g v)
    end
  in
  for v = 0 to n - 1 do
    if comp.(v) = -1 then flood v v
  done;
  comp

(* First-match semantic accept: can the import route-map permit some
   advertisement of destination [p]? After specializing to [p], guards
   range over communities only; a Permit clause is reachable iff its
   guard escapes the union of the earlier ones. *)
let can_permit (u : Cond_bdd.t) rm ~dest =
  match rm with
  | None -> true
  | Some rm ->
    let m = u.Cond_bdd.man in
    let rec go earlier = function
      | [] -> false
      | (cl : Route_map.clause) :: rest ->
        let g = Cond_bdd.guard u cl in
        let fresh = Bdd.and_ m g (Bdd.not_ m earlier) in
        if cl.Route_map.verdict = Route_map.Permit && not (Bdd.is_bot fresh)
        then true
        else go (Bdd.or_ m earlier g) rest
    in
    go Bdd.bot (Route_map.relevant rm ~dest)

let redistribution_cycles ?locs (u : Cond_bdd.t) (net : Device.network) =
  let g = net.Device.graph in
  let rs = net.Device.routers in
  let ospf_comp =
    components net (fun v w ->
        Device.ospf_link_config rs.(v) w <> None)
  in
  let bgp_comp =
    components net (fun v w ->
        Device.bgp_neighbor_config rs.(v) w <> None)
  in
  let n = Graph.n_nodes g in
  let runs_ospf v = rs.(v).Device.ospf_links <> [] in
  let exports v =
    runs_ospf v
    && rs.(v).Device.bgp_neighbors <> []
    && List.mem Multi.Ospf_into_bgp rs.(v).Device.redistribute
  in
  let reinjects v =
    runs_ospf v
    && rs.(v).Device.bgp_neighbors <> []
    && List.mem Multi.Bgp_into_ospf rs.(v).Device.redistribute
  in
  (* Originated prefixes per OSPF domain (component of OSPF speakers). *)
  let domain_prefixes = Hashtbl.create 8 in
  for v = 0 to n - 1 do
    if runs_ospf v then
      List.iter
        (fun p ->
          let c = ospf_comp.(v) in
          let cur = Option.value ~default:[] (Hashtbl.find_opt domain_prefixes c) in
          Hashtbl.replace domain_prefixes c ((p, v) :: cur))
        rs.(v).Device.originated
  done;
  let out = ref [] in
  let reported = Hashtbl.create 8 in
  for a = 0 to n - 1 do
    if exports a then
      for b = 0 to n - 1 do
        if
          reinjects b && a <> b
          && ospf_comp.(a) = ospf_comp.(b)
          && bgp_comp.(a) = bgp_comp.(b)
          && not (Hashtbl.mem reported (ospf_comp.(a), b))
        then begin
          let prefixes =
            Option.value ~default:[]
              (Hashtbl.find_opt domain_prefixes ospf_comp.(a))
          in
          let accepted =
            List.find_opt
              (fun (p, _) ->
                List.exists
                  (fun (_, (nb : Device.bgp_neighbor)) ->
                    can_permit u nb.Device.import_rm ~dest:p)
                  rs.(b).Device.bgp_neighbors)
              prefixes
          in
          match accepted with
          | None -> ()
          | Some (p, origin) ->
            Hashtbl.replace reported (ospf_comp.(a), b) ();
            let name = Graph.name g in
            let router = name b in
            out :=
              Diag.make ~check:"redistribution-cycle" ~severity:Diag.Warning
                ~loc:
                  (Diag.at_router
                     ?line:
                       (Option.bind locs (fun l ->
                            Config_text.router_line l router))
                     router)
                (Printf.sprintf
                   "%s (originated by %s inside the OSPF domain) is exported \
                    into BGP at %s and accepted back by this router's BGP \
                    import, then redistributed into the same OSPF domain — \
                    a redistribution cycle"
                   (Prefix.to_string p) (name origin) (name a))
              :: !out
        end
      done
  done;
  List.rev !out

let static_checks ?locs (u : Cond_bdd.t) (net : Device.network) =
  let g = net.Device.graph in
  let rs = net.Device.routers in
  let m = u.Cond_bdd.man in
  let out = ref [] in
  let loc v nh =
    let router = Graph.name g v in
    Diag.at_router
      ~neighbor:(Graph.name g nh)
      ?line:(Option.bind locs (fun l -> Config_text.router_line l router))
      router
  in
  (* Blackholes: the route's own interface ACL denies the prefix. *)
  Array.iteri
    (fun v (r : Device.router) ->
      List.iter
        (fun (p, nh) ->
          match Device.acl_for r nh with
          | None -> ()
          | Some acl ->
            let inside = Cond_bdd.addr_in u p in
            let denied = Bdd.not_ m (Cond_bdd.acl_permits u acl) in
            if not (Bdd.is_bot (Bdd.and_ m inside denied)) then
              out :=
                Diag.make ~check:"static-route-blackhole" ~severity:Diag.Error
                  ~loc:(loc v nh)
                  (Printf.sprintf
                     "static route %s via %s, but the ACL on that interface \
                      denies %s the prefix: matching traffic is dropped at \
                      this router"
                     (Prefix.to_string p) (Graph.name g nh)
                     (if Bdd.implies m inside denied then "all of"
                      else "part of"))
                :: !out)
        r.static_routes)
    rs;
  (* Loops: cycles in the covering-static-route graph of some prefix. *)
  let prefixes =
    Array.to_list rs
    |> List.concat_map (fun (r : Device.router) ->
           List.map fst r.Device.static_routes)
    |> List.sort_uniq Prefix.compare
  in
  let seen_cycle = Hashtbl.create 8 in
  List.iter
    (fun q ->
      let next v = Device.static_next_hops rs.(v) ~dest:q in
      (* DFS with an explicit color array; report each cycle once. *)
      let n = Graph.n_nodes g in
      let color = Array.make n 0 in
      let rec dfs stack v =
        if color.(v) = 1 then begin
          (* back edge: the cycle is the stack suffix from v *)
          let rec take = function
            | [] -> []
            | w :: rest -> if w = v then [ w ] else w :: take rest
          in
          let cycle = List.rev (take stack) in
          let key = List.sort Int.compare cycle in
          if not (Hashtbl.mem seen_cycle key) then begin
            Hashtbl.replace seen_cycle key ();
            let names = List.map (Graph.name g) cycle in
            let head = List.hd cycle in
            out :=
              Diag.make ~check:"static-route-loop" ~severity:Diag.Error
                ~loc:(loc head (List.nth cycle (1 mod List.length cycle)))
                (Printf.sprintf
                   "static routes for %s forward in a cycle: %s -> %s"
                   (Prefix.to_string q)
                   (String.concat " -> " names)
                   (List.hd names))
              :: !out
          end
        end
        else if color.(v) = 0 then begin
          color.(v) <- 1;
          List.iter (fun w -> dfs (v :: stack) w) (next v);
          color.(v) <- 2
        end
      in
      for v = 0 to n - 1 do
        dfs [] v
      done)
    prefixes;
  List.rev !out

let run ?locs u net =
  redistribution_cycles ?locs u net @ static_checks ?locs u net

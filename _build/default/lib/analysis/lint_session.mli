(** Session-symmetry checks.

    BGP sessions and OSPF adjacencies involve both endpoints of a link;
    these checks flag links where only one side is configured, where the
    two sides disagree on the session kind ([ibgp] flag), or where the
    OSPF areas of the two interface configurations differ (the adjacency
    would never form). *)

val checks : (string * string) list

val run : ?locs:Config_text.loc_table -> Device.network -> Diag.t list

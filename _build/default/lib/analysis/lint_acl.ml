let checks =
  [
    ( "dead-acl-rule",
      "ACL rule covered by the union of earlier rules (never first match)" );
    ( "acl-denies-origin",
      "outbound ACL denies (part of) a prefix the same router originates" );
  ]

let run ?locs (u : Cond_bdd.t) (net : Device.network) =
  let g = net.Device.graph in
  let m = u.Cond_bdd.man in
  let out = ref [] in
  let add d = out := d :: !out in
  Array.iteri
    (fun v (r : Device.router) ->
      let router = Graph.name g v in
      let line = Option.bind locs (fun l -> Config_text.router_line l router) in
      List.iter
        (fun (w, acl) ->
          let neighbor = Graph.name g w in
          List.iter
            (fun i ->
              let rule : Acl.rule = List.nth acl i in
              add
                (Diag.make ~check:"dead-acl-rule" ~severity:Diag.Warning
                   ~loc:
                     {
                       (Diag.at_router ~neighbor ?line router) with
                       Diag.clause = Some i;
                     }
                   (Printf.sprintf
                      "rule %d (%s %s) of the ACL towards %s is dead: \
                       earlier rules already match every address it matches"
                      (i + 1)
                      (if rule.Acl.permit then "permit" else "deny")
                      (Prefix.to_string rule.Acl.prefix)
                      neighbor)))
            (Cond_bdd.acl_dead_rules u acl);
          let denied = Bdd.not_ m (Cond_bdd.acl_permits u acl) in
          List.iter
            (fun p ->
              let inside = Cond_bdd.addr_in u p in
              let blocked = Bdd.and_ m inside denied in
              if not (Bdd.is_bot blocked) then
                add
                  (Diag.make ~check:"acl-denies-origin" ~severity:Diag.Error
                     ~loc:(Diag.at_router ~neighbor ?line router)
                     (Printf.sprintf
                        "the ACL towards %s denies %s %s, which this router \
                         itself originates"
                        neighbor
                        (if Bdd.implies m inside denied then "all of"
                         else "part of")
                        (Prefix.to_string p))))
            r.originated)
        r.acl_out)
    net.routers;
  List.rev !out

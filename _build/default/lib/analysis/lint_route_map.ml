let checks =
  [
    ( "shadowed-clause",
      "route-map clause covered by the union of earlier clauses' matches" );
    ( "unsatisfiable-clause",
      "route-map clause whose conditions can never hold together" );
  ]

(* Iterate every route-map attached to a BGP session, first occurrence
   (router order, neighbor order, import before export) per structurally
   distinct value. *)
let iter_route_maps (net : Device.network) f =
  let seen : (Route_map.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let g = net.Device.graph in
  Array.iteri
    (fun v (r : Device.router) ->
      List.iter
        (fun (u, (nb : Device.bgp_neighbor)) ->
          let visit dir rm =
            if not (Hashtbl.mem seen rm) then begin
              Hashtbl.replace seen rm ();
              f ~router:(Graph.name g v) ~neighbor:(Graph.name g u) ~dir rm
            end
          in
          Option.iter (visit `Import) nb.import_rm;
          Option.iter (visit `Export) nb.export_rm)
        r.bgp_neighbors)
    net.routers

let clause_loc ?locs ~router ~neighbor rm i =
  let rm_name = Option.bind locs (fun l -> Config_text.rm_name_of l rm) in
  let line =
    match (rm_name, locs) with
    | Some n, Some l -> Config_text.clause_line l n i
    | _ -> None
  in
  { Diag.router = Some router; neighbor = Some neighbor; rm_name;
    clause = Some i; line }

let dir_name = function `Import -> "import" | `Export -> "export"

let run ?locs (u : Cond_bdd.t) (net : Device.network) =
  let out = ref [] in
  iter_route_maps net (fun ~router ~neighbor ~dir rm ->
      let guards = List.map (Cond_bdd.guard u) rm in
      let dead = Cond_bdd.shadowed u rm in
      List.iter
        (fun i ->
          let loc = clause_loc ?locs ~router ~neighbor rm i in
          let d =
            if Bdd.is_bot (List.nth guards i) then
              Diag.make ~check:"unsatisfiable-clause" ~severity:Diag.Warning
                ~loc
                (Printf.sprintf
                   "clause %d of the %s route-map can never match: its \
                    conditions are mutually exclusive"
                   (i + 1) (dir_name dir))
            else
              (* The clauses that steal its matches: earlier clauses whose
                 guard intersects this one's. *)
              let gi = List.nth guards i in
              let earlier =
                List.filteri (fun j _ -> j < i) guards
                |> List.mapi (fun j g -> (j, g))
                |> List.filter (fun (_, g) ->
                       not (Bdd.is_bot (Bdd.and_ u.Cond_bdd.man g gi)))
                |> List.map (fun (j, _) -> string_of_int (j + 1))
              in
              Diag.make ~check:"shadowed-clause" ~severity:Diag.Warning ~loc
                (Printf.sprintf
                   "clause %d of the %s route-map is dead: every \
                    advertisement it matches is already matched by clause%s \
                    %s"
                   (i + 1) (dir_name dir)
                   (if List.length earlier = 1 then "" else "s")
                   (String.concat ", " earlier))
          in
          out := d :: !out)
        dead);
  List.rev !out

(* Quickstart: the paper's Figure 1.

   A four-router RIP network — a -- b1 -- d and a -- b2 -- d — is
   compressed by Bonsai into three abstract routers (b1 and b2 play the
   same role). We solve the routing problem on both networks and check
   that the solutions correspond.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Topology: node ids are a=0, b1=1, b2=2, d=3. *)
  let g = Graph.of_links ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in

  (* 2. Compress for destination d. This network has no policy, so every
     edge carries the same transfer function: we feed the refinement a
     constant edge signature and no BGP preference values. *)
  let net =
    {
      Device.graph = g;
      routers =
        Array.init 4 (fun v -> Device.default_router (Graph.name g v));
    }
  in
  let partition, _ =
    Refine.find_partition net ~dest:3 ~signature:(fun _ _ -> 0)
      ~prefs:(fun _ -> [])
  in
  let abstraction =
    Abstraction.make net ~dest:3 ~dest_prefix:(Prefix.of_string "10.0.0.0/24")
      ~universe:(Policy_bdd.universe_of_network net) ~partition
      ~copies:(fun _ -> 1)
  in
  Format.printf "concrete network: %d nodes, %d links@."
    (Graph.n_nodes g) (Graph.n_links g);
  Format.printf "abstract network: %d nodes, %d links@."
    (Abstraction.n_abstract abstraction)
    (Graph.n_links abstraction.Abstraction.abs_graph);
  for v = 0 to 3 do
    Format.printf "  %s -> %s@." (Graph.name g v)
      (Graph.name abstraction.Abstraction.abs_graph (Abstraction.f abstraction v))
  done;

  (* 3. Solve RIP on the concrete network (Figure 1b) ... *)
  let sol = Solver.solve_exn (Rip.make g ~dest:3) in
  Format.printf "@.concrete solution (hop counts):@.%a@." Solution.pp sol;

  (* ... and check CP-equivalence against the abstract network. *)
  let abs_srp =
    Rip.make abstraction.Abstraction.abs_graph
      ~dest:abstraction.Abstraction.abs_dest
  in
  let outcome, abs_sol = Equivalence.check_plain ~abs_srp abstraction sol in
  (match abs_sol with
  | Some abs_sol ->
    Format.printf "abstract solution:@.%a@." Solution.pp abs_sol
  | None -> ());
  Format.printf "CP-equivalent: %b@." outcome.Equivalence.ok;
  if not outcome.Equivalence.ok then
    List.iter (Format.printf "  %s@.") outcome.Equivalence.errors

examples/custom_protocol.ml: Abstraction Array Device Equivalence Format Generators Graph Int List Policy_bdd Prefix Refine Solution Solver Srp

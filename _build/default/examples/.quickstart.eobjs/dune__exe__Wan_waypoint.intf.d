examples/wan_waypoint.mli:

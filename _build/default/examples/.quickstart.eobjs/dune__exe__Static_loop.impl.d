examples/static_loop.ml: Abstraction Array Device Equivalence Format Graph List Policy_bdd Prefix Properties Refine Solver Static_route

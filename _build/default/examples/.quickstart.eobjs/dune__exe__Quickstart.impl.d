examples/quickstart.ml: Abstraction Array Device Equivalence Format Graph List Policy_bdd Prefix Refine Rip Solution Solver

examples/bgp_split.mli:

examples/bgp_fattree.mli:

examples/bgp_fattree.ml: Abstraction Array Bonsai_api Compile Device Ecs Equivalence Format Generators Graph List Prefix Solver String Synthesis Sys

examples/static_loop.mli:

examples/quickstart.mli:

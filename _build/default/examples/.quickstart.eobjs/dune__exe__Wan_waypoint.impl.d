examples/wan_waypoint.ml: Abstraction Bonsai_api Compile Device Ecs Equivalence Format Fun Graph List Option Prefix Properties Solver String Synthesis

examples/bgp_split.ml: Abstraction Array Bonsai_api Compile Device Ecs Equivalence Format Graph List Prefix Refine Route_map Solution Solver String

examples/fault_tolerance.ml: Abstraction Array Bonsai_api Ecs Format Fun Generators Graph List Properties Rip Solver Srp Synthesis

(* The SRP model is generic (paper §3): any protocol built from a
   comparison relation and a transfer function fits, and Bonsai's theory
   applies as long as the protocol is strictly monotone (loop-free).

   Here we define a protocol the paper never mentions — shortest-widest
   path routing, which maximizes bottleneck bandwidth and breaks ties by
   hop count — compress a network running it, and check CP-equivalence.

   Run with: dune exec examples/custom_protocol.exe *)

type swp = { width : int; hops : int }

let compare_swp a b =
  match Int.compare b.width a.width (* wider preferred *) with
  | 0 -> Int.compare a.hops b.hops (* then shorter *)
  | c -> c

let make_srp ~bandwidth graph ~dest =
  {
    Srp.graph;
    dest;
    init = { width = max_int; hops = 0 };
    compare = compare_swp;
    trans =
      (fun u v a ->
        match a with
        | None -> None
        | Some a -> Some { width = min a.width (bandwidth u v); hops = a.hops + 1 });
    attr_equal = ( = );
    pp_attr =
      (fun ppf a ->
        if a.width = max_int then Format.fprintf ppf "(∞, %d hops)" a.hops
        else Format.fprintf ppf "(%dG, %d hops)" a.width a.hops);
  }

let () =
  (* A fattree where edge-aggregation links are 10G and aggregation-core
     links are 40G. Bandwidth classes are part of the edge signature, so
     refinement only merges routers whose links look alike. *)
  let ft = Generators.fattree ~k:4 in
  let g = ft.Generators.ft_graph in
  let is_core = Array.make (Graph.n_nodes g) false in
  Array.iter (fun v -> is_core.(v) <- true) ft.Generators.ft_core;
  let bandwidth u v = if is_core.(u) || is_core.(v) then 40 else 10 in
  let dest = ft.Generators.ft_edge.(0) in

  let net =
    {
      Device.graph = g;
      routers =
        Array.init (Graph.n_nodes g) (fun v ->
            Device.default_router (Graph.name g v));
    }
  in
  let partition, _ =
    Refine.find_partition net ~dest
      ~signature:(fun u v -> bandwidth u v)
      ~prefs:(fun _ -> [])
  in
  let t =
    Abstraction.make net ~dest ~dest_prefix:(Prefix.of_string "10.0.0.0/24")
      ~universe:(Policy_bdd.universe_of_network net) ~partition
      ~copies:(fun _ -> 1)
  in
  Format.printf "shortest-widest-path fattree (k=4): %d nodes -> %d abstract@."
    (Graph.n_nodes g) (Abstraction.n_abstract t);

  let sol = Solver.solve_exn (make_srp ~bandwidth g ~dest) in
  let abs_bandwidth a b =
    let u, v = Abstraction.repr_edge t a b in
    bandwidth u v
  in
  let abs_srp =
    make_srp ~bandwidth:abs_bandwidth t.Abstraction.abs_graph
      ~dest:t.Abstraction.abs_dest
  in
  let outcome, abs_sol = Equivalence.check_plain ~abs_srp t sol in
  (match abs_sol with
  | Some abs_sol -> Format.printf "abstract solution:@.%a@." Solution.pp abs_sol
  | None -> ());
  Format.printf "CP-equivalent: %b@." outcome.Equivalence.ok;
  List.iter (Format.printf "  %s@.") outcome.Equivalence.errors;

  (* every remote router sees a 10G bottleneck over 4 hops *)
  let far = ft.Generators.ft_edge.(Array.length ft.Generators.ft_edge - 1) in
  match Solution.label sol far with
  | Some a ->
    Format.printf "%s: bottleneck %dG over %d hops@." (Graph.name g far)
      a.width a.hops
  | None -> Format.printf "unreachable?!@."

(* What compression does NOT preserve (paper §4.5).

   Effective abstractions reduce the number of paths and neighbors — that
   is the point — so fault-tolerance properties are lost: a single link
   failure can partition the abstract network while the concrete network
   routes around it. This example demonstrates the caveat so users do not
   draw the wrong conclusion from the compressed network.

   Run with: dune exec examples/fault_tolerance.exe *)

let remove_link g (a, b) =
  let bld = Graph.Builder.create () in
  for v = 0 to Graph.n_nodes g - 1 do
    ignore (Graph.Builder.add_node bld (Graph.name g v))
  done;
  List.iter
    (fun (u, v) ->
      if not ((u = a && v = b) || (u = b && v = a)) then
        Graph.Builder.add_edge bld u v)
    (Graph.edges g);
  Graph.Builder.build bld

let reachable_count srp =
  let sol = Solver.solve_exn srp in
  List.init (Graph.n_nodes srp.Srp.graph) Fun.id
  |> List.filter (Properties.reachable sol)
  |> List.length

let () =
  let ft = Generators.fattree ~k:4 in
  let g = ft.Generators.ft_graph in
  let net = Synthesis.fattree_shortest_path ft in
  let ec = List.hd (Ecs.compute net) in
  let dest = Ecs.single_origin ec in
  let t = (Bonsai_api.compress_ec net ec).Bonsai_api.abstraction in
  Format.printf "fattree k=4: %d nodes -> %d abstract nodes@.@."
    (Graph.n_nodes g) (Abstraction.n_abstract t);

  (* Fail one concrete aggregation-core link. *)
  let agg = ft.Generators.ft_agg.(0) in
  let core =
    Array.to_list (Graph.succ g agg)
    |> List.find (fun v -> ft.Generators.ft_pod.(v) = -1)
  in
  let g' = remove_link g (agg, core) in
  let srp' = Rip.make g' ~dest in
  Format.printf "concrete network after failing link %s--%s:@."
    (Graph.name g agg) (Graph.name g core);
  Format.printf "  %d/%d routers still reach the destination@."
    (reachable_count srp') (Graph.n_nodes g');

  (* Fail the corresponding abstract link. *)
  let ag = t.Abstraction.abs_graph in
  let a_agg = Abstraction.f t agg and a_core = Abstraction.f t core in
  let ag' = remove_link ag (a_agg, a_core) in
  let abs_srp' = Rip.make ag' ~dest:t.Abstraction.abs_dest in
  Format.printf "abstract network after failing link %s--%s:@."
    (Graph.name ag a_agg) (Graph.name ag a_core);
  Format.printf "  %d/%d abstract routers still reach the destination@.@."
    (reachable_count abs_srp') (Graph.n_nodes ag');

  Format.printf
    "The concrete fattree routes around any single failure; the 6-node@.";
  Format.printf
    "abstraction is partitioned by one. Compression preserves path@.";
  Format.printf
    "properties of the working network, not fault tolerance (paper §4.5).@."

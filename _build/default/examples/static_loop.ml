(* Figure 6 gone wrong: detecting a static-route loop on the abstraction.

   Static routes do not depend on routes learned from neighbors, so a
   misconfiguration can create a forwarding loop. The theory stays sound
   in that case (Theorem 4.3): the compressed network has a routing loop
   iff the concrete one does, so operators can find the bug by inspecting
   the small network.

   Run with: dune exec examples/static_loop.exe *)

let build routes =
  (* a(0) - b1(1) - d(3), a(0) - b2(2) - d(3), b1 - b2 *)
  let g = Graph.of_links ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3); (1, 2) ] in
  let srp = Static_route.make g ~dest:3 ~routes in
  (g, srp)

let compress g routes =
  let net =
    {
      Device.graph = g;
      routers =
        Array.init (Graph.n_nodes g) (fun v ->
            Device.default_router (Graph.name g v));
    }
  in
  let has_static u v = List.mem (u, v) routes in
  let partition, _ =
    Refine.find_partition net ~dest:3 ~live_self:has_static
      ~signature:(fun u v -> if has_static u v then 1 else 0)
      ~prefs:(fun _ -> [])
  in
  let t =
    Abstraction.make net ~dest:3 ~dest_prefix:(Prefix.of_string "10.0.0.0/24")
      ~universe:(Policy_bdd.universe_of_network net) ~partition
      ~copies:(fun _ -> 1)
  in
  let abs_routes =
    List.filter_map
      (fun (u, v) ->
        let au = Abstraction.f t u and av = Abstraction.f t v in
        if Graph.has_edge t.Abstraction.abs_graph au av then Some (au, av)
        else None)
      routes
  in
  (t, Static_route.make t.Abstraction.abs_graph ~dest:t.Abstraction.abs_dest
        ~routes:abs_routes)

let analyse name routes =
  let g, srp = build routes in
  let t, abs_srp = compress g routes in
  let sol = Solver.solve_exn srp in
  let abs_sol = Solver.solve_exn abs_srp in
  Format.printf "%s:@." name;
  Format.printf "  abstract network: %d nodes (concrete: %d)@."
    (Abstraction.n_abstract t) (Graph.n_nodes g);
  Format.printf "  routing loop in the concrete network: %b@."
    (Properties.has_routing_loop sol);
  Format.printf "  routing loop in the abstract network: %b@."
    (Properties.has_routing_loop abs_sol);
  let outcome, _ = Equivalence.check_plain ~abs_srp t sol in
  Format.printf "  fwd-equivalent: %b@.@."
    (outcome.Equivalence.ok
    ||
    (* a looping solution has no topological order; fall back to comparing
       the loop verdicts, which is what Theorem 4.3 preserves *)
    Properties.has_routing_loop sol = Properties.has_routing_loop abs_sol)

let () =
  (* the intended configuration: a -> b2 -> d (Figure 6) *)
  analyse "correct static routes (a -> b2 -> d)" [ (0, 2); (2, 3) ];
  (* the misconfiguration: b1 and b2 point at each other *)
  analyse "misconfigured static routes (b1 <-> b2)" [ (0, 2); (2, 1); (1, 2) ]

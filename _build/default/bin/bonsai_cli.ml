(* bonsai: command-line frontend for control plane compression.

     bonsai info fattree:12
     bonsai compress wan --dot /tmp/wan.dot
     bonsai compress datacenter --ec 10.100.3.0/24
     bonsai verify fattree:12 --src edge3_1
     bonsai roles datacenter

   Network specifications: fattree:K, fattree-prefer:K, ring:N, mesh:N,
   random:N[:SEED], datacenter, wan. *)

let parse_network spec =
  let fail () =
    `Error
      (false,
       Printf.sprintf
         "unknown network %S (expected fattree:K, fattree-prefer:K, ring:N, \
          mesh:N, random:N[:SEED], datacenter, wan)"
         spec)
  in
  match String.split_on_char ':' spec with
  | "file" :: rest -> (
    match Config_text.load (String.concat ":" rest) with
    | Ok net -> `Ok net
    | Error e -> `Error (false, e))
  | [ "datacenter" ] -> `Ok (Synthesis.datacenter ()).Synthesis.net
  | [ "wan" ] -> `Ok (Synthesis.wan ()).Synthesis.net
  | [ "fattree"; k ] -> (
    match int_of_string_opt k with
    | Some k -> `Ok (Synthesis.fattree_shortest_path (Generators.fattree ~k))
    | None -> fail ())
  | [ "fattree-prefer"; k ] -> (
    match int_of_string_opt k with
    | Some k -> `Ok (Synthesis.fattree_prefer_bottom (Generators.fattree ~k))
    | None -> fail ())
  | [ "ring"; n ] -> (
    match int_of_string_opt n with
    | Some n -> `Ok (Synthesis.ring_bgp ~n)
    | None -> fail ())
  | [ "mesh"; n ] -> (
    match int_of_string_opt n with
    | Some n -> `Ok (Synthesis.mesh_bgp ~n)
    | None -> fail ())
  | [ "random"; n ] | [ "random"; n; _ ] -> (
    let seed =
      match String.split_on_char ':' spec with
      | [ _; _; s ] -> Option.value ~default:0 (int_of_string_opt s)
      | _ -> 0
    in
    match int_of_string_opt n with
    | Some n -> `Ok (Synthesis.random_network ~n ~seed)
    | None -> fail ())
  | _ -> fail ()

let network_conv =
  Cmdliner.Arg.conv
    ( (fun s ->
        match parse_network s with
        | `Ok net -> Ok net
        | `Error (_, msg) -> Error (`Msg msg)),
      fun ppf _ -> Format.pp_print_string ppf "<network>" )

let network_arg =
  Cmdliner.Arg.(
    required
    & pos 0 (some network_conv) None
    & info [] ~docv:"NETWORK" ~doc:"Network specification (e.g. fattree:12).")

let find_ec net = function
  | None -> List.hd (Ecs.compute net)
  | Some p -> (
    let p = Prefix.of_string p in
    match
      List.find_opt
        (fun ec -> Prefix.equal ec.Ecs.ec_prefix p)
        (Ecs.compute net)
    with
    | Some ec -> ec
    | None -> Format.kasprintf failwith "no destination class %a" Prefix.pp p)

(* --- info ----------------------------------------------------------- *)

let info_cmd_run net =
  let g = net.Device.graph in
  Format.printf "nodes: %d@." (Graph.n_nodes g);
  Format.printf "links: %d@." (Graph.n_links g);
  Format.printf "destination classes: %d@." (Ecs.count net);
  Format.printf "configuration lines: %d@." (Device.config_lines net);
  Format.printf "unique roles: %d@." (Bonsai_api.roles net);
  match Device.validate net with
  | Ok () -> Format.printf "configuration: valid@."
  | Error e -> Format.printf "configuration: INVALID (%s)@." e

(* --- compress --------------------------------------------------------- *)

let compress_cmd_run net ec_prefix dot all =
  if all then begin
    let s = Bonsai_api.compress net in
    Format.printf "%a@." Bonsai_api.pp_summary s
  end
  else begin
    let ec = find_ec net ec_prefix in
    let r = Bonsai_api.compress_ec net ec in
    let t = r.Bonsai_api.abstraction in
    Format.printf "%a@." Abstraction.pp_summary t;
    Format.printf "compression time: %.3fs (%d refinement iterations)@."
      r.Bonsai_api.time_s r.Bonsai_api.refine_stats.Refine.iterations;
    Array.iteri
      (fun gid members ->
        Format.printf "  role %d (%d node%s%s): %s@." gid
          (List.length members)
          (if List.length members = 1 then "" else "s")
          (if t.Abstraction.copies.(gid) > 1 then
             Printf.sprintf ", %d copies" t.Abstraction.copies.(gid)
           else "")
          (String.concat ", "
             (List.map (Graph.name net.Device.graph)
                (List.filteri (fun i _ -> i < 6) members)
             @ if List.length members > 6 then [ "..." ] else [])))
      t.Abstraction.groups;
    match dot with
    | None -> ()
    | Some path ->
      Dot.write_file ~path t.Abstraction.abs_graph;
      Format.printf "abstract topology written to %s@." path
  end

(* --- verify ------------------------------------------------------------ *)

let verify_cmd_run net src ec_prefix =
  let ec = find_ec net ec_prefix in
  let src_id =
    match Graph.find_by_name net.Device.graph src with
    | Some v -> v
    | None -> Format.kasprintf failwith "unknown router %S" src
  in
  let cv, ct =
    Timing.time (fun () -> Reachability.concrete_query net ~src:src_id ~ec)
  in
  let av, at =
    Timing.time (fun () -> Reachability.abstract_query net ~src:src_id ~ec)
  in
  Format.printf "%s reaches %a: %b (concrete, %.3fs) / %b (abstract, %.3fs)@."
    src Ecs.pp ec cv ct av at;
  if cv <> av then begin
    Format.printf "DISAGREEMENT — this is a bug@.";
    exit 1
  end

(* --- trace ------------------------------------------------------------- *)

let trace_cmd_run net src_name addr all =
  let src =
    match Graph.find_by_name net.Device.graph src_name with
    | Some v -> v
    | None -> Format.kasprintf failwith "unknown router %S" src_name
  in
  let addr = Ipv4.of_string addr in
  let dp = Dataplane.of_network net in
  Format.printf "data plane: %d classes solved, %d FIB entries@."
    (Dataplane.ecs_solved dp) (Dataplane.n_entries dp);
  let show = function
    | Dataplane.Delivered path ->
      Format.printf "delivered: %s@."
        (String.concat " -> "
           (List.map (Graph.name net.Device.graph) path))
    | Dataplane.Dropped path ->
      Format.printf "DROPPED at %s: %s@."
        (Graph.name net.Device.graph (List.nth path (List.length path - 1)))
        (String.concat " -> " (List.map (Graph.name net.Device.graph) path))
    | Dataplane.Looped path ->
      Format.printf "LOOP: %s@."
        (String.concat " -> " (List.map (Graph.name net.Device.graph) path))
  in
  if all then List.iter show (Dataplane.trace_all dp ~src addr)
  else show (Dataplane.trace dp ~src addr)

(* --- explain ----------------------------------------------------------- *)

let explain_cmd_run net a_name b_name ec_prefix =
  let ec = find_ec net ec_prefix in
  let node name =
    match Graph.find_by_name net.Device.graph name with
    | Some v -> v
    | None -> Format.kasprintf failwith "unknown router %S" name
  in
  match Bonsai_api.explain net ec (node a_name) (node b_name) with
  | [] ->
    Format.printf "%s and %s play the same role for %a@." a_name b_name
      Prefix.pp ec.Ecs.ec_prefix
  | reasons ->
    Format.printf "%s and %s differ for %a:@." a_name b_name Prefix.pp
      ec.Ecs.ec_prefix;
    List.iter (Format.printf "  - %s@.") reasons

(* --- policy ----------------------------------------------------------- *)

let policy_cmd_run net from_name to_name ec_prefix =
  let ec = find_ec net ec_prefix in
  let node name =
    match Graph.find_by_name net.Device.graph name with
    | Some v -> v
    | None -> Format.kasprintf failwith "unknown router %S" name
  in
  let recv = node from_name and sender = node to_name in
  let u = Policy_bdd.universe_of_network net in
  let b = Policy_bdd.edge_policy u net ~dest:ec.Ecs.ec_prefix recv sender in
  Format.printf
    "policy for routes received at %s from %s (destination %a):@." from_name
    to_name Prefix.pp ec.Ecs.ec_prefix;
  (match Device.bgp_neighbor_config net.Device.routers.(recv) sender with
  | Some nb ->
    (match nb.Device.import_rm with
    | Some rm -> Format.printf "import route-map:@.%a@." Route_map.pp rm
    | None -> Format.printf "import: permit all@.")
  | None -> Format.printf "no BGP session@.");
  Format.printf "BDD: %d nodes@." (Bdd.size b);
  Format.printf "relation: %a@." (Policy_bdd.pp_policy u) b

(* --- export --------------------------------------------------------------- *)

let export_cmd_run net path format =
  (match format with
  | "text" -> Config_text.save ~path net
  | "ios" ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Ios_print.to_string net))
  | f -> Format.kasprintf failwith "unknown format %S (text|ios)" f);
  Format.printf "wrote %s@." path

(* --- roles -------------------------------------------------------------- *)

let roles_cmd_run net =
  Format.printf "semantic roles (BDD policy equality): %d@."
    (Bonsai_api.roles net);
  Format.printf "naive roles (unmatched communities kept): %d@."
    (Bonsai_api.roles ~keep_unmatched_comms:true net)

(* --- command wiring ------------------------------------------------------ *)

open Cmdliner

let ec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ec" ] ~docv:"PREFIX"
        ~doc:"Destination class to operate on (default: the first).")

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Describe a network")
    Term.(const info_cmd_run $ network_arg)

let compress_cmd =
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"PATH" ~doc:"Write the abstract topology as DOT.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Compress every destination class and summarize.")
  in
  Cmd.v
    (Cmd.info "compress" ~doc:"Compress a network for one destination class")
    Term.(const compress_cmd_run $ network_arg $ ec_arg $ dot $ all)

let verify_cmd =
  let src =
    Arg.(
      required
      & opt (some string) None
      & info [ "src" ] ~docv:"ROUTER" ~doc:"Source router name.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Answer a reachability query on the concrete and compressed network")
    Term.(const verify_cmd_run $ network_arg $ src $ ec_arg)

let roles_cmd =
  Cmd.v
    (Cmd.info "roles" ~doc:"Count unique router roles")
    Term.(const roles_cmd_run $ network_arg)

let policy_cmd =
  let from_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"ROUTER" ~doc:"Receiving router.")
  in
  let to_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "to" ] ~docv:"ROUTER" ~doc:"Sending neighbor.")
  in
  Cmd.v
    (Cmd.info "policy"
       ~doc:"Show an interface's routing policy and its BDD (paper Figure 10)")
    Term.(const policy_cmd_run $ network_arg $ from_arg $ to_arg $ ec_arg)

let trace_cmd =
  let src =
    Arg.(
      required
      & opt (some string) None
      & info [ "src" ] ~docv:"ROUTER" ~doc:"Source router.")
  in
  let addr =
    Arg.(
      required
      & opt (some string) None
      & info [ "addr" ] ~docv:"A.B.C.D" ~doc:"Destination address.")
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Follow every ECMP next hop.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Trace a packet through the data plane")
    Term.(const trace_cmd_run $ network_arg $ src $ addr $ all)

let explain_cmd =
  let a_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "a" ] ~docv:"ROUTER" ~doc:"First router.")
  in
  let b_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "b" ] ~docv:"ROUTER" ~doc:"Second router.")
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Explain why two routers play different roles")
    Term.(const explain_cmd_run $ network_arg $ a_arg $ b_arg $ ec_arg)

let export_cmd =
  let path =
    Arg.(
      required
      & opt (some string) None
      & info [ "o" ] ~docv:"PATH" ~doc:"Output file.")
  in
  let format =
    Arg.(
      value & opt string "text"
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: our text format or Cisco-IOS flavor (text|ios).")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a network as a configuration file")
    Term.(const export_cmd_run $ network_arg $ path $ format)

let () =
  let doc = "Bonsai: control plane compression (SIGCOMM 2018 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "bonsai" ~version:"1.0.0" ~doc)
          [ info_cmd; compress_cmd; verify_cmd; roles_cmd; export_cmd; policy_cmd; explain_cmd; trace_cmd ]))

(* Figure 11: the abstraction of a BGP fattree depends on the policy.

   Under shortest-path routing the whole fattree collapses to six abstract
   routers. When the aggregation tier prefers routes learned from the edge
   tier (local-preference 200), middle-tier routers can exhibit several
   forwarding behaviors and the abstraction must keep more of the
   structure — exactly the effect the paper illustrates.

   Run with: dune exec examples/bgp_fattree.exe [-- k] *)

let compress_first_ec net =
  let ec = List.hd (Ecs.compute net) in
  (ec, Bonsai_api.compress_ec_exn net ec)

let report name net =
  let ec, r = compress_first_ec net in
  let t = r.Bonsai_api.abstraction in
  Format.printf "%s (destination %a):@." name Prefix.pp ec.Ecs.ec_prefix;
  Format.printf "  concrete: %d nodes / %d links@."
    (Graph.n_nodes net.Device.graph)
    (Graph.n_links net.Device.graph);
  Format.printf "  abstract: %d nodes / %d links@."
    (Abstraction.n_abstract t)
    (Graph.n_links t.Abstraction.abs_graph);
  (* show the roles Bonsai discovered *)
  Array.iteri
    (fun gid members ->
      Format.printf "    role %d (%d copies): %s@." gid t.Abstraction.copies.(gid)
        (String.concat ", "
           (List.map (Graph.name net.Device.graph)
              (List.filteri (fun i _ -> i < 4) members)
           @ if List.length members > 4 then [ "..." ] else [])))
    t.Abstraction.groups;
  (* verify CP-equivalence on a solved instance *)
  let dest = Ecs.single_origin ec in
  let sol =
    Solver.solve_exn (Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix)
  in
  let outcome, _ = Equivalence.check_bgp t sol in
  Format.printf "  CP-equivalent: %b@.@." outcome.Equivalence.ok

let () =
  let k = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let ft = Generators.fattree ~k in
  report "shortest-path policy" (Synthesis.fattree_shortest_path ft);
  report "middle tier prefers the bottom tier"
    (Synthesis.fattree_prefer_bottom ft)

(* Figures 2, 3 and 9: BGP loop prevention forces node splitting.

   Three middle routers b1, b2, b3 sit between the destination d and a
   router a, and prefer routes learned from a (local-preference 200).
   Because a's own route goes through one of the b's, that b's preferred
   route is rejected by loop prevention: despite identical configurations,
   one b behaves differently from the other two. Merging all three into a
   single abstract node (Figure 2b) would create a forwarding loop; Bonsai
   instead splits the abstract node into two copies (Figure 3c), bounded
   by the number of local-preference levels (Theorem 4.4).

   Run with: dune exec examples/bgp_split.exe *)

let network () =
  let g =
    Graph.of_links ~n:5 [ (0, 1); (0, 2); (0, 3); (4, 1); (4, 2); (4, 3) ]
  in
  let prefer_a : Route_map.t =
    [ { verdict = Permit; conds = []; actions = [ Set_local_pref 200 ] } ]
  in
  let routers =
    Array.init 5 (fun v ->
        let r = Device.default_router (Graph.name g v) in
        let r =
          {
            r with
            Device.bgp_neighbors =
              Array.to_list (Graph.succ g v)
              |> List.map (fun u ->
                     let import_rm =
                       if v >= 1 && v <= 3 && u = 4 then Some prefer_a else None
                     in
                     (u, { Device.import_rm; export_rm = None; ibgp = false; rel = Device.Rel_unknown }));
          }
        in
        if v = 0 then
          { r with Device.originated = [ Prefix.of_string "10.0.0.0/24" ] }
        else r)
  in
  { Device.graph = g; routers }

let () =
  let net = network () in
  let names = [| "d"; "b1"; "b2"; "b3"; "a" |] in
  let ec = List.hd (Ecs.compute net) in
  let r = Bonsai_api.compress_ec_exn net ec in
  let t = r.Bonsai_api.abstraction in
  Format.printf "concrete: 5 nodes, 6 links; abstract: %d nodes, %d links@.@."
    (Abstraction.n_abstract t)
    (Graph.n_links t.Abstraction.abs_graph);
  Array.iteri
    (fun gid members ->
      Format.printf "role %d: {%s} split into %d abstract node(s)@." gid
        (String.concat ", " (List.map (fun v -> names.(v)) members))
        t.Abstraction.copies.(gid))
    t.Abstraction.groups;

  (* The gadget has several stable solutions depending on message timing:
     each b can end up as the one routing directly. Bonsai's abstraction
     accounts for all of them. *)
  let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
  let sols = Solver.solutions_sample ~tries:24 srp in
  Format.printf "@.%d distinct stable solutions found; checking each:@."
    (List.length sols);
  List.iter
    (fun sol ->
      let direct =
        List.filter (fun b -> List.exists (fun (_, v) -> v = 0) (Solution.fwd sol b))
          [ 1; 2; 3 ]
      in
      let outcome, _ = Equivalence.check_bgp t sol in
      Format.printf "  down-routers {%s}: CP-equivalent = %b@."
        (String.concat ", " (List.map (fun v -> names.(v)) direct))
        outcome.Equivalence.ok)
    sols;

  (* Show what goes wrong without splitting: the naive one-node-per-role
     abstraction of Figure 2(b) cannot map any of these solutions. *)
  let _, signature = Compile.edge_signatures net ~dest:ec.Ecs.ec_prefix in
  let partition, _ =
    Refine.find_partition net ~dest:0 ~signature ~prefs:(fun _ -> [])
  in
  let naive =
    Abstraction.make net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix
      ~universe:t.Abstraction.universe ~partition ~copies:(fun _ -> 1)
  in
  let sol = List.hd sols in
  let outcome, _ = Equivalence.check_bgp naive sol in
  Format.printf
    "@.naive abstraction (no splitting, Figure 2b): CP-equivalent = %b@."
    outcome.Equivalence.ok;
  List.iter (Format.printf "  reason: %s@.") outcome.Equivalence.errors

(* What compression does NOT preserve (paper §4.5 / §9).

   Effective abstractions reduce the number of paths and neighbors — that
   is the point — so fault-tolerance properties are lost: a single link
   failure can partition the abstract network while the concrete network
   routes around it. The fault-injection engine (lib/faults) makes the
   caveat operational: it enumerates failure scenarios, re-solves both
   networks per scenario, and reports the *minimal* failure set under
   which the abstraction stops being sound.

   Run with: dune exec examples/fault_tolerance.exe *)

let () =
  let ft = Generators.fattree ~k:4 in
  let g = ft.Generators.ft_graph in
  let net = Synthesis.fattree_shortest_path ft in
  let ec = List.hd (Ecs.compute net) in
  let dest = Ecs.single_origin ec in
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  Format.printf "fattree k=4: %d nodes -> %d abstract nodes@.@."
    (Graph.n_nodes g) (Abstraction.n_abstract t);

  (* 1. Quantify over single-link failures of the concrete network. *)
  let srp = Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
  let plan = Fault_engine.plan ~k:1 g in
  let report = Fault_engine.survey srp plan in
  Format.printf
    "concrete network, all %d single-link failures: %d stable & reachable, \
     %d disconnected, %d diverged@."
    (List.length plan.Fault_engine.scenarios)
    report.Fault_engine.n_stable report.Fault_engine.n_disconnected
    report.Fault_engine.n_diverged;

  (* 2. The same quantifier phrased as a property check: reachability
     holds under every single failure, and the engine shrinks any
     counterexample before reporting it. *)
  (match
     Robust.for_all_failures ~k:1 srp (fun sol ->
         List.init (Graph.n_nodes g) Fun.id
         |> List.for_all (fun u -> u = dest || Solution.reaches sol u))
   with
  | Robust.Fault_holds { scenarios; _ } ->
    Format.printf "  reachability survives every scenario (%d checked)@.@."
      scenarios
  | Robust.Fault_fails (sc, _) ->
    Format.printf "  minimal failure set breaking reachability: %a@.@."
      (Scenario.pp ~names:(Graph.name g))
      sc
  | Robust.Fault_diverges (sc, _) ->
    Format.printf "  minimal failure set breaking convergence: %a@.@."
      (Scenario.pp ~names:(Graph.name g))
      sc);

  (* 3. Ask where the abstraction itself stops telling the truth: map
     each scenario through f, re-solve both sides, compare verdicts. *)
  (match
     Soundness.first_break t ~concrete:srp
       ~abstract_:(Abstraction.bgp_srp t) plan.Fault_engine.scenarios
   with
  | None -> Format.printf "abstraction agrees on every scenario@."
  | Some (sc, m) ->
    Format.printf "abstraction breaks under the single failure %a:@."
      (Scenario.pp ~names:(Graph.name g))
      sc;
    Format.printf
      "  %s still reaches the destination, its abstract image %s does not@.@."
      (Graph.name g m.Soundness.mis_node)
      (Graph.name t.Abstraction.abs_graph m.Soundness.mis_abs));

  Format.printf
    "The concrete fattree routes around any single failure; the 6-node@.";
  Format.printf
    "abstraction is partitioned by one. Compression preserves path@.";
  Format.printf
    "properties of the working network, not fault tolerance (paper §4.5).@.";
  Format.printf
    "To trust a property under failures, re-check it per scenario:@.";
  Format.printf "  bonsai faults fattree:4 --k 1@."

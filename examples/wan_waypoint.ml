(* Verifying path properties of a WAN on its compressed form.

   The synthetic WAN runs eBGP/iBGP on its backbone, OSPF inside each PoP
   (redistributed into BGP at the aggregation routers), and static routes
   on some access routers — the paper's §6 multi-protocol setting. We pick
   a destination, compress that equivalence class, and verify reachability
   and waypointing on the small abstract network; CP-equivalence transfers
   the verdicts to the 1086-device concrete network, which we confirm by
   solving it directly.

   Run with: dune exec examples/wan_waypoint.exe *)

let () =
  let wan = Synthesis.wan () in
  let net = wan.Synthesis.net in
  let g = net.Device.graph in
  Format.printf "%s@." wan.Synthesis.description;
  Format.printf "concrete: %d nodes, %d links, %d destination classes@.@."
    (Graph.n_nodes g) (Graph.n_links g) (Ecs.count net);

  (* a destination in PoP 5 *)
  let ec =
    Ecs.compute net
    |> List.find (fun ec -> Prefix.subset ec.Ecs.ec_prefix (Prefix.of_string "10.5.0.0/16"))
  in
  let dest = Ecs.single_origin ec in
  Format.printf "destination class %a rooted at %s@." Prefix.pp
    ec.Ecs.ec_prefix (Graph.name g dest);

  let r = Bonsai_api.compress_ec_exn net ec in
  let t = r.Bonsai_api.abstraction in
  Format.printf "compressed to %d nodes / %d links in %.3fs@.@."
    (Abstraction.n_abstract t)
    (Graph.n_links t.Abstraction.abs_graph)
    r.Bonsai_api.time_s;

  (* Solve the small abstract network and verify properties there. *)
  let abs_sol = Solver.solve_exn (Abstraction.multi_srp t) in
  let src = Graph.find_by_name g "pop12_r20" |> Option.get in
  let asrc = Abstraction.f t src in
  let backbone_abs =
    List.init (Graph.n_nodes g) Fun.id
    |> List.filter (fun v ->
           String.length (Graph.name g v) > 1 && String.sub (Graph.name g v) 0 2 = "bb")
    |> List.map (Abstraction.f t)
    |> List.sort_uniq compare
  in
  Format.printf "on the abstract network:@.";
  Format.printf "  %s reaches the destination: %b@." (Graph.name g src)
    (Properties.reachable abs_sol asrc);
  Format.printf "  traffic crosses the backbone (waypointing): %b@."
    (Properties.waypointed abs_sol ~src:asrc ~waypoints:backbone_abs);
  Format.printf "  abstract path lengths: %s@.@."
    (String.concat ", "
       (List.map string_of_int (Properties.path_lengths abs_sol ~src:asrc)));

  (* Confirm on the concrete network (what CP-equivalence guarantees). *)
  let sol =
    Solver.solve_exn (Compile.multi_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix)
  in
  let backbone =
    List.init (Graph.n_nodes g) Fun.id
    |> List.filter (fun v ->
           String.length (Graph.name g v) > 1 && String.sub (Graph.name g v) 0 2 = "bb")
  in
  Format.printf "on the concrete network:@.";
  Format.printf "  %s reaches the destination: %b@." (Graph.name g src)
    (Properties.reachable sol src);
  Format.printf "  traffic crosses the backbone (waypointing): %b@."
    (Properties.waypointed sol ~src ~waypoints:backbone);
  let outcome, _ = Equivalence.check_multi t sol in
  Format.printf "  CP-equivalence verified: %b@." outcome.Equivalence.ok

(* Self-healing compression: repair the abstraction until it is sound
   under failures (lib/repair).

   fault_tolerance.ml shows the caveat: an effective abstraction is
   proven sound for the failure-free control plane, and a single link
   failure can break that (paper §4.5 / §9). This example closes the
   loop instead of merely reporting it — Repair.harden runs the
   standard CEGAR recipe: compress, sweep failure scenarios through the
   soundness check, and on a mismatch pin the disagreeing routers into
   singleton roles and recompress, until a sweep comes back clean.

   Run with: dune exec examples/self_healing.exe *)

let () =
  let ft = Generators.fattree ~k:4 in
  let g = ft.Generators.ft_graph in
  let net = Synthesis.fattree_shortest_path ft in
  let ec = List.hd (Ecs.compute net) in

  (* Plain compression first: 20 nodes become 6, and the very first
     single-link failure shows the abstraction lying. *)
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  Format.printf "plain compression: %d nodes -> %d abstract nodes@."
    (Graph.n_nodes g) (Abstraction.n_abstract t);
  (match
     Soundness.first_break t
       ~concrete:
         (Compile.bgp_srp net ~dest:(Ecs.single_origin ec)
            ~dest_prefix:ec.Ecs.ec_prefix)
       ~abstract_:(Abstraction.bgp_srp t)
       (Scenario.enumerate ~k:1 g)
   with
  | None -> Format.printf "  (unexpectedly sound under k=1)@."
  | Some (sc, _) ->
    Format.printf "  breaks under the single failure %a@."
      (Scenario.pp ~names:(Graph.name g))
      sc);

  (* Now harden: the same compression, inside the repair loop. *)
  let r =
    match Repair.harden ~k:1 net ec with
    | Ok r -> r
    | Error e -> Format.kasprintf failwith "%a" Bonsai_error.pp e
  in
  Format.printf "@.harden --k 1:@.";
  List.iter
    (fun (rl : Repair.round_log) ->
      match rl.Repair.rl_counterexample with
      | None ->
        Format.printf "  round %d: %d abstract nodes, clean sweep over %d \
                       scenarios@."
          rl.Repair.rl_round rl.Repair.rl_abs_nodes rl.Repair.rl_scenarios
      | Some sc ->
        Format.printf
          "  round %d: %d abstract nodes, counterexample %a -> pinned %d@."
          rl.Repair.rl_round rl.Repair.rl_abs_nodes
          (Scenario.pp ~names:(Graph.name g))
          sc
          (List.length rl.Repair.rl_new_pins))
    r.Repair.rounds;
  let t' = r.Repair.result.Bonsai_api.abstraction in
  Format.printf
    "  hardened: %d abstract nodes, sound=%b, %d pins, %d scenario checks \
     (%d cached)@."
    (Abstraction.n_abstract t') r.Repair.sound
    (List.length r.Repair.pins)
    r.Repair.n_scenarios r.Repair.cache_hits;

  (* The result carries a proof obligation we can re-discharge from
     scratch: no scenario up to k=1 distinguishes the two networks. *)
  (match
     Soundness.first_break t'
       ~concrete:
         (Compile.bgp_srp net ~dest:(Ecs.single_origin ec)
            ~dest_prefix:ec.Ecs.ec_prefix)
       ~abstract_:(Abstraction.bgp_srp t')
       (Scenario.enumerate ~k:1 g)
   with
  | None -> Format.printf "  re-checked: agrees on every k=1 scenario@."
  | Some _ -> failwith "hardened abstraction still breaks — this is a bug");

  Format.printf
    "@.On this fattree every router is fault-relevant, so the repaired@.";
  Format.printf
    "abstraction is the identity — 'uncompressed but sound' is the@.";
  Format.printf
    "worst case the loop guarantees, not a failure mode. Networks whose@.";
  Format.printf
    "redundancy is confined to part of the topology keep compression@.";
  Format.printf "in the untouched regions. CLI: bonsai harden fattree:4 --k 1@."

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8) on the synthetic substrates described in DESIGN.md.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table1a      -- one artifact
     dune exec bench/main.exe -- --help

   Subcommands: table1a table1b figure11 figure12 batfish-query
   ablation-bdd ablation-uu faults harden incr serve certify modular micro all.

   Absolute numbers differ from the paper (different hardware, an
   explicit-state analysis client instead of SMT); EXPERIMENTS.md records
   paper-vs-measured values and discusses the shapes. *)

let fail fmt = Format.kasprintf failwith fmt

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 1: compression results                                        *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  row_name : string;
  nodes : int;
  links : int;
  abs_nodes : float;
  abs_nodes_std : float;
  abs_links : float;
  abs_links_std : float;
  num_ecs : int;
  sampled : int;
  bdd_time : float;
  time_per_ec : float;
}

let t1_header () =
  Printf.printf "%-20s %14s %18s %18s %6s %9s %12s\n" "Topology" "Nodes/Links"
    "Abs. Nodes" "Abs. Links" "ECs" "BDD time" "Time per EC";
  Printf.printf "%s\n" (String.make 112 '-')

let t1_print r =
  let ratio a b = float_of_int a /. max 1.0 b in
  Printf.printf
    "%-20s %6d /%7d %9.1f ±%-6.1f %9.1f ±%-6.1f %6d %8.2fs %10.4fs  (%.1fx/%.1fx%s)\n%!"
    r.row_name r.nodes r.links r.abs_nodes r.abs_nodes_std r.abs_links
    r.abs_links_std r.num_ecs r.bdd_time r.time_per_ec
    (ratio r.nodes r.abs_nodes) (ratio r.links r.abs_links)
    (if r.sampled < r.num_ecs then Printf.sprintf "; %d ECs timed" r.sampled
     else "")

let compress_row ?(sample = 64) name (net : Device.network) =
  let total_ecs = Ecs.count net in
  let stride = max 1 (total_ecs / sample) in
  let s = Bonsai_api.compress_exn ~stride net in
  {
    row_name = name;
    nodes = Graph.n_nodes net.Device.graph;
    links = Graph.n_links net.Device.graph;
    abs_nodes = Bonsai_api.mean_abs_nodes s;
    abs_nodes_std = Bonsai_api.stddev_abs_nodes s;
    abs_links = Bonsai_api.mean_abs_links s;
    abs_links_std = Bonsai_api.stddev_abs_links s;
    num_ecs = total_ecs;
    sampled = List.length s.Bonsai_api.results;
    bdd_time = s.Bonsai_api.bdd_time_s;
    time_per_ec = Bonsai_api.mean_time_per_ec s;
  }

let table1a () =
  hr "Table 1(a): compression of synthetic networks";
  t1_header ();
  List.iter
    (fun k ->
      let ft = Generators.fattree ~k in
      let net = Synthesis.fattree_shortest_path ft in
      t1_print (compress_row (Printf.sprintf "Fattree (k=%d)" k) net))
    [ 12; 20; 30 ];
  List.iter
    (fun n ->
      t1_print
        (compress_row (Printf.sprintf "Ring (n=%d)" n) (Synthesis.ring_bgp ~n)))
    [ 100; 500; 1000 ];
  List.iter
    (fun n ->
      t1_print
        (compress_row
           (Printf.sprintf "Full mesh (n=%d)" n)
           (Synthesis.mesh_bgp ~n)))
    [ 50; 150; 250 ]

let table1b () =
  hr "Table 1(b): compression of the (synthetic stand-in) real networks";
  let dc = Synthesis.datacenter () in
  let wan = Synthesis.wan () in
  Printf.printf "datacenter: %s\n" dc.Synthesis.description;
  Printf.printf
    "  unique roles: %d semantic (%d with unmatched communities kept)\n"
    (Bonsai_api.roles dc.Synthesis.net)
    (Bonsai_api.roles ~keep_unmatched_comms:true dc.Synthesis.net);
  Printf.printf "  configuration scale: %d lines (%d IOS-style lines)\n"
    (Device.config_lines dc.Synthesis.net)
    (Ios_print.line_count dc.Synthesis.net);
  Printf.printf "wan: %s\n" wan.Synthesis.description;
  Printf.printf "  unique roles: %d\n" (Bonsai_api.roles wan.Synthesis.net);
  Printf.printf "  configuration scale: %d lines (%d IOS-style lines)\n\n"
    (Device.config_lines wan.Synthesis.net)
    (Ios_print.line_count wan.Synthesis.net);
  t1_header ();
  t1_print (compress_row ~sample:128 "Data center (197)" dc.Synthesis.net);
  t1_print (compress_row ~sample:128 "WAN (1086)" wan.Synthesis.net)

(* ------------------------------------------------------------------ *)
(* Figure 11: policy-dependent abstractions of a fattree               *)
(* ------------------------------------------------------------------ *)

let figure11 () =
  hr "Figure 11: fattree abstractions under different policies";
  Printf.printf "%-16s %24s %24s\n" "Fattree" "shortest-path abs."
    "prefer-bottom abs.";
  List.iter
    (fun k ->
      let ft = Generators.fattree ~k in
      let size net =
        let ec = List.hd (Ecs.compute net) in
        let r = Bonsai_api.compress_ec_exn net ec in
        ( Abstraction.n_abstract r.Bonsai_api.abstraction,
          Graph.n_links r.Bonsai_api.abstraction.Abstraction.abs_graph )
      in
      let n1, e1 = size (Synthesis.fattree_shortest_path ft) in
      let n2, e2 = size (Synthesis.fattree_prefer_bottom ft) in
      Printf.printf "k=%-3d (%4d nodes) %12d n /%4d l %14d n /%4d l\n%!" k
        (Graph.n_nodes ft.Generators.ft_graph)
        n1 e1 n2 e2)
    [ 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* Figure 12: verification time with and without compression           *)
(* ------------------------------------------------------------------ *)

let fig12_series ~timeout_s name nets =
  Printf.printf "\n%s (timeout %.0fs per point)\n" name timeout_s;
  Printf.printf "%-10s %8s %16s %16s %9s\n" "size" "nodes" "verify concrete"
    "verify + Bonsai" "speedup";
  List.iter
    (fun (label, net) ->
      let c = Reachability.concrete_all_pairs ~timeout_s net in
      let a = Reachability.abstract_all_pairs ~timeout_s net in
      let show (r : Reachability.result) =
        if r.Reachability.timed_out then
          Printf.sprintf "timeout@%dec" r.Reachability.ecs_done
        else Printf.sprintf "%.2fs" r.Reachability.time_s
      in
      let speedup =
        if c.Reachability.timed_out || a.Reachability.timed_out then "-"
        else
          Printf.sprintf "%.1fx"
            (c.Reachability.time_s /. max 1e-6 a.Reachability.time_s)
      in
      if
        (not (c.Reachability.timed_out || a.Reachability.timed_out))
        && c.Reachability.unreachable <> a.Reachability.unreachable
      then fail "figure12: verdicts disagree on %s" label;
      Printf.printf "%-10s %8d %16s %16s %9s\n%!" label
        (Graph.n_nodes net.Device.graph)
        (show c) (show a) speedup)
    nets

let figure12 ?(timeout_s = 60.0) () =
  hr "Figure 12: all-pairs reachability verification time";
  fig12_series ~timeout_s "(a) Fattree"
    (List.map
       (fun k ->
         ( Printf.sprintf "k=%d" k,
           Synthesis.fattree_shortest_path (Generators.fattree ~k) ))
       [ 4; 8; 12; 16; 20 ]);
  fig12_series ~timeout_s "(b) Full mesh"
    (List.map
       (fun n -> (Printf.sprintf "n=%d" n, Synthesis.mesh_bgp ~n))
       [ 10; 50; 100; 150; 200 ]);
  fig12_series ~timeout_s "(c) Ring"
    (List.map
       (fun n -> (Printf.sprintf "n=%d" n, Synthesis.ring_bgp ~n))
       [ 20; 100; 200; 300; 500 ])

(* ------------------------------------------------------------------ *)
(* The Batfish experiment (§8, last paragraph)                         *)
(* ------------------------------------------------------------------ *)

let batfish_query () =
  hr "Batfish/NoD-style query: all flows towards a destination class";
  let run name net =
    let ec = List.hd (Ecs.compute net) in
    let c = Reachability.concrete_flows net ~ec in
    let a = Reachability.abstract_flows net ~ec in
    Printf.printf "%s, destination %s:\n" name
      (Format.asprintf "%a" Ecs.pp ec);
    Printf.printf
      "  without Bonsai: %d sources, %d forwarding paths in %.3fs\n"
      c.Reachability.sources_reaching c.Reachability.total_paths
      c.Reachability.flow_time_s;
    Printf.printf
      "  with Bonsai:    %d roles reaching, %d paths in %.3fs (incl. compression, %.0fx)\n%!"
      a.Reachability.sources_reaching a.Reachability.total_paths
      a.Reachability.flow_time_s
      (c.Reachability.flow_time_s /. max 1e-6 a.Reachability.flow_time_s)
  in
  run "datacenter (197 nodes)" (Synthesis.datacenter ()).Synthesis.net;
  run "fattree k=20 (500 nodes)"
    (Synthesis.fattree_shortest_path (Generators.fattree ~k:20));
  run "fattree k=30 (1125 nodes)"
    (Synthesis.fattree_shortest_path (Generators.fattree ~k:30))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_bdd () =
  hr "Ablation: semantic (BDD) policy equality vs naive comparison";
  let dc = Synthesis.datacenter () in
  let semantic = Bonsai_api.roles dc.Synthesis.net in
  let naive = Bonsai_api.roles ~keep_unmatched_comms:true dc.Synthesis.net in
  Printf.printf
    "datacenter roles: %d with the refined attribute abstraction\n\
    \                  %d when set-but-never-matched communities are kept\n"
    semantic naive;
  let mean keep =
    let s =
      Bonsai_api.compress_exn ?keep_unmatched_comms:keep ~stride:11
        dc.Synthesis.net
    in
    Bonsai_api.mean_abs_nodes s
  in
  Printf.printf "mean abstract size: %.1f nodes (semantic) vs %.1f (naive)\n%!"
    (mean None) (mean (Some true))

let ablation_uu () =
  hr "Ablation: BGP node splitting (prefs-driven) on vs off";
  let check k prefer =
    let ft = Generators.fattree ~k in
    let net =
      if prefer then Synthesis.fattree_prefer_bottom ft
      else Synthesis.fattree_shortest_path ft
    in
    let ec = List.hd (Ecs.compute net) in
    let dest = Ecs.single_origin ec in
    let r = Bonsai_api.compress_ec_exn net ec in
    let sound = r.Bonsai_api.abstraction in
    (* disable the preference-driven splitting *)
    let _, signature = Compile.edge_signatures net ~dest:ec.Ecs.ec_prefix in
    let partition, _ =
      Refine.find_partition net ~dest ~signature ~prefs:(fun _ -> [])
    in
    let naive =
      Abstraction.make net ~dest ~dest_prefix:ec.Ecs.ec_prefix
        ~universe:sound.Abstraction.universe ~partition ~copies:(fun _ -> 1)
    in
    let srp = Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
    (* the gadget effect is solution-dependent: sample several stable
       solutions and require every one to map *)
    let sols = Solver.solutions_sample ~tries:12 srp in
    let all_ok t =
      List.for_all
        (fun sol -> (fst (Equivalence.check_bgp t sol)).Equivalence.ok)
        sols
    in
    Printf.printf
      "fattree k=%d %-14s splitting on: %3d nodes (CP-equiv %b); off: %3d nodes (CP-equiv %b) [%d solutions]\n%!"
      k
      (if prefer then "prefer-bottom" else "shortest-path")
      (Abstraction.n_abstract sound)
      (all_ok sound) (Abstraction.n_abstract naive) (all_ok naive)
      (List.length sols)
  in
  check 4 false;
  check 4 true;
  check 8 true;
  (* and the paper's own gadget (Figure 2), where a single abstract node
     for the three middle routers is provably unsound *)
  let gadget () =
    let g =
      Graph.of_links ~n:5 [ (0, 1); (0, 2); (0, 3); (4, 1); (4, 2); (4, 3) ]
    in
    let prefer_a : Route_map.t =
      [ { verdict = Permit; conds = []; actions = [ Set_local_pref 200 ] } ]
    in
    let routers =
      Array.init 5 (fun v ->
          let r = Device.default_router (Graph.name g v) in
          let r =
            {
              r with
              Device.bgp_neighbors =
                Array.to_list (Graph.succ g v)
                |> List.map (fun u ->
                       let import_rm =
                         if v >= 1 && v <= 3 && u = 4 then Some prefer_a
                         else None
                       in
                       (u, { Device.import_rm; export_rm = None; ibgp = false; rel = Device.Rel_unknown }));
            }
          in
          if v = 0 then
            { r with Device.originated = [ Prefix.of_string "10.0.0.0/24" ] }
          else r)
    in
    { Device.graph = g; routers }
  in
  let net = gadget () in
  let ec = List.hd (Ecs.compute net) in
  let sound = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  let _, signature = Compile.edge_signatures net ~dest:ec.Ecs.ec_prefix in
  let partition, _ =
    Refine.find_partition net ~dest:0 ~signature ~prefs:(fun _ -> [])
  in
  let naive =
    Abstraction.make net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix
      ~universe:sound.Abstraction.universe ~partition ~copies:(fun _ -> 1)
  in
  let sols =
    Solver.solutions_sample ~tries:12
      (Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix)
  in
  let all_ok t =
    List.for_all
      (fun sol -> (fst (Equivalence.check_bgp t sol)).Equivalence.ok)
      sols
  in
  Printf.printf
    "Figure 2 gadget      splitting on: %3d nodes (CP-equiv %b); off: %3d nodes (CP-equiv %b) [%d solutions]\n%!"
    (Abstraction.n_abstract sound) (all_ok sound)
    (Abstraction.n_abstract naive) (all_ok naive) (List.length sols)

(* ------------------------------------------------------------------ *)
(* Fault injection throughput                                          *)
(* ------------------------------------------------------------------ *)

let faults ?samples () =
  hr "Fault injection: re-solving under failure scenarios (k=2)";
  Printf.printf "%-20s %8s %10s %10s %8s %8s %14s\n" "Topology" "links"
    "scenarios" "mode" "disc." "div." "scenarios/sec";
  Printf.printf "%s\n" (String.make 84 '-');
  let row name (net : Device.network) =
    let ec = List.hd (Ecs.compute net) in
    let dest = Ecs.single_origin ec in
    let srp = Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
    let plan = Fault_engine.plan ?samples ~k:2 net.Device.graph in
    let r = Fault_engine.survey srp plan in
    let n = List.length plan.Fault_engine.scenarios in
    Printf.printf "%-20s %8d %10d %10s %8d %8d %14.0f\n%!" name
      (Graph.n_links net.Device.graph)
      n
      (if plan.Fault_engine.exhaustive then "exhaustive" else "sampled")
      r.Fault_engine.n_disconnected r.Fault_engine.n_diverged
      (float_of_int n /. max 1e-9 r.Fault_engine.time_s)
  in
  row "Fattree (k=4)"
    (Synthesis.fattree_shortest_path (Generators.fattree ~k:4));
  row "Fattree (k=8)"
    (Synthesis.fattree_shortest_path (Generators.fattree ~k:8));
  row "Ring (n=50)" (Synthesis.ring_bgp ~n:50);
  row "Full mesh (n=20)" (Synthesis.mesh_bgp ~n:20)

(* ------------------------------------------------------------------ *)
(* Counterexample-guided repair overhead                               *)
(* ------------------------------------------------------------------ *)

let harden () =
  hr "Hardening: fault-sound compression via counterexample-guided repair (k=1)";
  Printf.printf "%-20s %8s %12s %8s %8s %8s %10s %10s %8s\n" "Topology" "nodes"
    "plain abs." "rounds" "cex" "pins" "hard abs." "checks" "time";
  Printf.printf "%s\n" (String.make 100 '-');
  let row name (net : Device.network) =
    let ec = List.hd (Ecs.compute net) in
    let plain =
      Abstraction.n_abstract
        (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction
    in
    let r, dt = Timing.time (fun () -> Repair.harden_exn ~k:1 net ec) in
    assert r.Repair.sound;
    Printf.printf "%-20s %8d %12d %8d %8d %8d %10d %10d %7.2fs\n%!" name
      (Graph.n_nodes net.Device.graph)
      plain
      (List.length r.Repair.rounds)
      r.Repair.n_counterexamples
      (List.length r.Repair.pins)
      (Abstraction.n_abstract r.Repair.result.Bonsai_api.abstraction)
      r.Repair.n_scenarios dt
  in
  row "Fattree (k=4)"
    (Synthesis.fattree_shortest_path (Generators.fattree ~k:4));
  row "Ring (n=20)" (Synthesis.ring_bgp ~n:20);
  row "Ring (n=50)" (Synthesis.ring_bgp ~n:50);
  row "Full mesh (n=10)" (Synthesis.mesh_bgp ~n:10)

(* ------------------------------------------------------------------ *)
(* Incremental recompression (the `bonsai diff`/`watch` engine)        *)
(* ------------------------------------------------------------------ *)

(* Run OSPF as an infrastructure underlay on the core/aggregation tiers
   (cost 1, area 0) so a link-cost change is a real configuration delta.
   The edge routers — the destination originators — stay out of OSPF and
   nothing redistributes, so OSPF carries none of the monitored prefixes
   (Compile.ospf_live is false for every class): dependency tracking must
   prove a cost change irrelevant and reuse every abstraction. *)
let with_ospf (net : Device.network) =
  let g = net.Device.graph in
  let underlay u =
    let n = Graph.name g u in
    not (String.length n >= 4 && String.sub n 0 4 = "edge")
  in
  {
    net with
    Device.routers =
      Array.mapi
        (fun u r ->
          if not (underlay u) then r
          else
            {
              r with
              Device.ospf_links =
                Array.to_list (Graph.succ g u)
                |> List.filter underlay
                |> List.map (fun v -> (v, { Device.cost = 1; area = 0 }));
            })
        net.Device.routers;
  }

type incr_row = {
  ir_delta : string;
  ir_t_full : float;
  ir_t_incr : float;
  ir_reused : int;
  ir_seeded : int;
  ir_scratch : int;
  ir_hit_rate : float;
}

(* A deterministic stream of single-delta edits. The first is the
   acceptance metric: one OSPF link-cost change, which dependency
   tracking must prove irrelevant to every destination class. *)
let incr_delta_stream rng (net : Device.network) n =
  let g = net.Device.graph in
  let name = Graph.name g in
  let all_edges = Graph.edges g in
  let edges = Array.of_list all_edges in
  let ospf_edges =
    Array.of_list
      (List.filter
         (fun (u, v) ->
           Option.is_some (Device.ospf_link_config net.Device.routers.(u) v)
           && Option.is_some (Device.ospf_link_config net.Device.routers.(v) u))
         all_edges)
  in
  let pick arr = arr.(Random.State.int rng (Array.length arr)) in
  List.init n (fun i ->
      match i mod 4 with
      | 0 | 2 ->
        let u, v = pick ospf_edges in
        Delta.Ospf_cost { node = name u; nbr = name v; cost = 2 + i }
      | 1 ->
        let u, v = pick edges in
        Delta.Acl_set
          {
            node = name u;
            nbr = name v;
            acl =
              Some
                [
                  {
                    Acl.permit = false;
                    prefix = Prefix.of_string "10.255.0.0/24";
                  };
                ];
          }
      | _ ->
        let u, v = pick edges in
        Delta.Route_map_set
          { node = name u; nbr = name v; dir = Delta.Import; rm = None })

let incr_bench ?(k = 8) ?(n_deltas = 10) ~json_path ~assert_speedup () =
  hr "Incremental recompression (the bonsai diff/watch engine)";
  let net = with_ospf (Synthesis.fattree_shortest_path (Generators.fattree ~k)) in
  let g = net.Device.graph in
  let n_ecs = Ecs.count net in
  Printf.printf "fattree k=%d: %d nodes, %d links, %d destination classes\n" k
    (Graph.n_nodes g) (Graph.n_links g) n_ecs;
  let st, t_init =
    Timing.time (fun () ->
        match Incr.init net with
        | Ok st -> st
        | Error e -> fail "incr init: %a" Bonsai_error.pp e)
  in
  Printf.printf "from-scratch init: %.3fs\n%!" t_init;
  let rng = Random.State.make [| 0xb05a1; k |] in
  let deltas = incr_delta_stream rng net n_deltas in
  Printf.printf "%-40s %10s %10s %9s %22s %6s\n" "delta" "full" "incr"
    "speedup" "reused/seeded/scratch" "cache";
  let rows =
    List.map
      (fun d ->
        let rep =
          match Incr.recompress st [ d ] with
          | Ok r -> r
          | Error e -> fail "incr recompress: %a" Bonsai_error.pp e
        in
        (* the honest baseline: recompressing the *changed* network from
           scratch, every class, fresh universe *)
        let _, t_full =
          Timing.time (fun () -> Bonsai_api.compress_exn (Incr.network st))
        in
        let hit_rate =
          let total = rep.Incr.r_cache_hits + rep.Incr.r_cache_misses in
          if total = 0 then 1.0
          else float_of_int rep.Incr.r_cache_hits /. float_of_int total
        in
        let row =
          {
            ir_delta = Delta.to_string d;
            ir_t_full = t_full;
            ir_t_incr = rep.Incr.r_time_s;
            ir_reused = rep.Incr.r_reused;
            ir_seeded = rep.Incr.r_seeded;
            ir_scratch = rep.Incr.r_scratch;
            ir_hit_rate = hit_rate;
          }
        in
        Printf.printf "%-40s %9.4fs %9.4fs %8.1fx %12d/%3d/%3d %5.0f%%\n%!"
          row.ir_delta row.ir_t_full row.ir_t_incr
          (row.ir_t_full /. max 1e-9 row.ir_t_incr)
          row.ir_reused row.ir_seeded row.ir_scratch (100.0 *. hit_rate);
        row)
      deltas
  in
  let speedup r = r.ir_t_full /. max 1e-9 r.ir_t_incr in
  let first = List.hd rows in
  let hits, misses = Incr.cache_stats st in
  Printf.printf "single link-cost delta: %.4fs full vs %.4fs incremental (%.1fx)\n"
    first.ir_t_full first.ir_t_incr (speedup first);
  Printf.printf "signature cache (cumulative): %d hits, %d misses\n%!" hits
    misses;
  let row_json r =
    Printf.sprintf
      "    {\"delta\": \"%s\", \"t_full_s\": %.6f, \"t_incr_s\": %.6f, \
       \"speedup\": %.2f, \"reused\": %d, \"seeded\": %d, \"scratch\": %d, \
       \"cache_hit_rate\": %.3f}"
      (String.concat "'" (String.split_on_char '"' r.ir_delta))
      r.ir_t_full r.ir_t_incr (speedup r) r.ir_reused r.ir_seeded r.ir_scratch
      r.ir_hit_rate
  in
  let doc =
    Printf.sprintf
      "{\n\
      \  \"topology\": \"fattree\",\n\
      \  \"k\": %d,\n\
      \  \"nodes\": %d,\n\
      \  \"links\": %d,\n\
      \  \"ecs\": %d,\n\
      \  \"init_time_s\": %.6f,\n\
      \  \"single_link_cost_speedup\": %.2f,\n\
      \  \"cache\": {\"hits\": %d, \"misses\": %d},\n\
      \  \"deltas\": [\n%s\n  ]\n\
       }\n"
      k (Graph.n_nodes g) (Graph.n_links g) n_ecs t_init (speedup first) hits
      misses
      (String.concat ",\n" (List.map row_json rows))
  in
  let oc = open_out json_path in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  match assert_speedup with
  | Some min_s when speedup first < min_s ->
    Printf.eprintf
      "FAIL: single link-cost speedup %.2fx below required %.2fx\n"
      (speedup first) min_s;
    exit 1
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Differential data-plane compilation (bonsai dataplane-diff)         *)
(* ------------------------------------------------------------------ *)

type dp_row = {
  dr_name : string;
  dr_nodes : int;
  dr_classes : int;
  dr_t_full : float;
  dr_t_incr : float;
  dr_reused : int;
  dr_recompiled : int;
  dr_changes : int;
}

(* Full data-plane recompilation vs incremental dataplane-diff on a
   single OSPF link-cost edit.

   Fattree: the OSPF underlay carries no monitored prefix (with_ospf
   above), so the differ must prove the edit irrelevant per class and
   reuse everything — this row is the acceptance metric. WAN (multiwan):
   OSPF redistributes into BGP, making OSPF-liveness a whole-network
   property of every class, so a cost edit honestly recompiles all of
   them; the row is reported for scale, not asserted (DESIGN.md §17). *)
(* The WAN row's network: multiwan with an OSPF underlay on the core
   ring that redistributes into BGP. Redistribution makes OSPF-liveness
   a whole-network property of every destination class, so a core
   link-cost edit honestly dirties all of them — the contrast row to the
   fattree's total reuse. *)
let multiwan_with_ospf ~regions ~region_size =
  let net = (Synthesis.multiwan ~regions ~region_size).Synthesis.net in
  let g = net.Device.graph in
  let core u =
    let n = Graph.name g u in
    String.length n >= 4 && String.sub n 0 4 = "core"
  in
  {
    net with
    Device.routers =
      Array.mapi
        (fun u r ->
          if not (core u) then r
          else
            {
              r with
              Device.ospf_links =
                Array.to_list (Graph.succ g u)
                |> List.filter core
                |> List.map (fun v -> (v, { Device.cost = 1; area = 0 }));
              redistribute = [ Multi.Ospf_into_bgp; Multi.Bgp_into_ospf ];
            })
        net.Device.routers;
  }

let dataplane_bench ?(k = 8) ~json_path ~assert_speedup () =
  hr "Differential data-plane compilation (bonsai dataplane-diff)";
  let row name (old_net : Device.network) =
    let ospf_edge =
      List.find_opt
        (fun (u, v) ->
          Option.is_some (Device.ospf_link_config old_net.Device.routers.(u) v)
          && Option.is_some
               (Device.ospf_link_config old_net.Device.routers.(v) u))
        (Graph.edges old_net.Device.graph)
    in
    match ospf_edge with
    | None -> fail "dataplane bench: %s has no OSPF edge to edit" name
    | Some (u, v) ->
      let g = old_net.Device.graph in
      let d =
        Delta.Ospf_cost
          { node = Graph.name g u; nbr = Graph.name g v; cost = 7 }
      in
      let new_net = Delta.apply old_net [ d ] in
      let protocol = Dataplane.detect_protocol new_net in
      (* the honest baseline: compile the changed network's entire data
         plane from scratch, as a non-incremental pipeline would *)
      let full, t_full =
        Timing.time (fun () -> Dataplane.of_network ~protocol new_net)
      in
      (* warm-state scenario (the serve op): the signature cache already
         exists; the differ proves classes untouched through it *)
      let cache = Sig_cache.create old_net in
      let rep, t_incr =
        Timing.time (fun () ->
            match Dp_diff.run ~cache ~old_net ~new_net [ d ] with
            | Ok rep -> rep
            | Error e -> fail "dataplane diff: %a" Bonsai_error.pp e)
      in
      if rep.Dp_diff.dp_unknown <> [] then
        fail "dataplane bench: %d classes unknown"
          (List.length rep.Dp_diff.dp_unknown);
      let r =
        {
          dr_name = name;
          dr_nodes = Graph.n_nodes g;
          dr_classes = rep.Dp_diff.dp_classes;
          dr_t_full = t_full;
          dr_t_incr = t_incr;
          dr_reused = rep.Dp_diff.dp_reused;
          dr_recompiled = rep.Dp_diff.dp_recompiled;
          dr_changes = List.length rep.Dp_diff.dp_changes;
        }
      in
      Printf.printf
        "%-24s %5d nodes %5d classes %9.4fs full %9.4fs incr %8.1fx \
         %5d reused %5d recompiled %4d changes (%d entries)\n\
         %!"
        r.dr_name r.dr_nodes r.dr_classes r.dr_t_full r.dr_t_incr
        (r.dr_t_full /. max 1e-9 r.dr_t_incr)
        r.dr_reused r.dr_recompiled r.dr_changes
        (Dataplane.n_entries full);
      r
  in
  let ft =
    row
      (Printf.sprintf "fattree (k=%d)" k)
      (with_ospf (Synthesis.fattree_shortest_path (Generators.fattree ~k)))
  in
  let wan =
    row "multiwan (4x10)" (multiwan_with_ospf ~regions:4 ~region_size:10)
  in
  let speedup r = r.dr_t_full /. max 1e-9 r.dr_t_incr in
  let row_json r =
    Printf.sprintf
      "    {\"topology\": \"%s\", \"nodes\": %d, \"classes\": %d, \
       \"t_full_s\": %.6f, \"t_incr_s\": %.6f, \"speedup\": %.2f, \
       \"reused\": %d, \"recompiled\": %d, \"fib_changes\": %d}"
      r.dr_name r.dr_nodes r.dr_classes r.dr_t_full r.dr_t_incr (speedup r)
      r.dr_reused r.dr_recompiled r.dr_changes
  in
  let doc =
    Printf.sprintf
      "{\n\
      \  \"k\": %d,\n\
      \  \"single_link_cost_speedup\": %.2f,\n\
      \  \"rows\": [\n%s\n  ]\n\
       }\n"
      k (speedup ft)
      (String.concat ",\n" (List.map row_json [ ft; wan ]))
  in
  let oc = open_out json_path in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  match assert_speedup with
  | Some min_s when speedup ft < min_s ->
    Printf.eprintf
      "FAIL: fattree single link-cost dataplane speedup %.2fx below \
       required %.2fx\n"
      (speedup ft) min_s;
    exit 1
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Resident engine (bonsai serve)                                      *)
(* ------------------------------------------------------------------ *)

(* In-process: drives Serve_engine.handle_line directly, so the numbers
   are the engine's own (dispatch + compression + response rendering),
   without socket noise. The CI soak (scripts/serve_soak.sh) covers the
   transport. *)

let serve_resolve spec =
  match String.split_on_char ':' spec with
  | [ "fattree"; k ] -> (
    match int_of_string_opt k with
    | Some k -> Synthesis.fattree_shortest_path (Generators.fattree ~k)
    | None -> fail "serve bench: bad spec %s" spec)
  | [ "ring"; n ] -> (
    match int_of_string_opt n with
    | Some n -> Synthesis.ring_bgp ~n
    | None -> fail "serve bench: bad spec %s" spec)
  | [ "wan" ] -> (Synthesis.wan ()).Synthesis.net
  | _ -> fail "serve bench: unknown spec %s" spec

let serve_req eng line =
  let resp, _ = Serve_engine.handle_line eng ~queue_depth:0 line in
  (match Json.parse resp with
  | Ok j -> (
    match Json.member "ok" j with
    | Some (Json.Bool true) -> ()
    | _ -> fail "serve bench: request failed: %s" resp)
  | Error e -> fail "serve bench: unparsable response %s: %s" resp e);
  resp

let serve_latency ~fixture =
  (* cold: first compress on a fresh engine (resolve + init + compress);
     warm: the same request against the now-resident state; restored:
     the same request after a checkpoint/restore round-trip into a
     second engine — what a restarted server pays. *)
  let line = Printf.sprintf "{\"op\":\"compress\",\"network\":\"%s\"}" fixture in
  let eng = Serve_engine.create ~resolve:serve_resolve () in
  let cold_resp = ref "" in
  let (), t_cold = Timing.time (fun () -> cold_resp := serve_req eng line) in
  let (), t_warm = Timing.time (fun () -> ignore (serve_req eng line : string)) in
  let ckpt = Filename.temp_file "bonsai-bench" ".ckpt" in
  let saved =
    match Serve_engine.checkpoint eng ~path:ckpt with
    | Ok n -> n
    | Error e -> fail "serve bench: checkpoint: %s" e
  in
  let eng' = Serve_engine.create ~resolve:serve_resolve () in
  (match Serve_engine.restore eng' ~path:ckpt with
  | `Restored n when n = saved -> ()
  | `Restored n -> fail "serve bench: restored %d of %d networks" n saved
  | `Version_skew reason | `Corrupt reason ->
    fail "serve bench: cold restore: %s" reason
  | `Missing -> fail "serve bench: checkpoint vanished");
  let restored_resp = ref "" in
  let (), t_restored =
    Timing.time (fun () -> restored_resp := serve_req eng' line)
  in
  Sys.remove ckpt;
  if not (String.equal !cold_resp !restored_resp) then
    fail "serve bench: warm-restored response differs from cold on %s" fixture;
  Printf.printf "%-12s cold %8.3fs   warm %8.4fs   restored %8.4fs (%.0fx)\n%!"
    fixture t_cold t_warm t_restored (t_cold /. max 1e-9 t_restored);
  (t_cold, t_warm, t_restored)

let serve_bench ?(k = 6) ?(n_requests = 200) ~json_path () =
  hr "Resident engine (bonsai serve)";
  let fixture = Printf.sprintf "fattree:%d" k in
  let eng = Serve_engine.create ~resolve:serve_resolve () in
  let (), t_load =
    Timing.time (fun () ->
        ignore
          (serve_req eng
             (Printf.sprintf "{\"op\":\"load\",\"network\":\"%s\"}" fixture)
            : string))
  in
  Printf.printf "%s: cold load %.3fs\n%!" fixture t_load;
  (* a deterministic mixed stream against the warm network: the request
     shapes a monitoring client actually sends *)
  let stream =
    [
      Printf.sprintf "{\"op\":\"compress\",\"network\":\"%s\"}" fixture;
      Printf.sprintf
        "{\"op\":\"compress\",\"network\":\"%s\",\"ec\":\"10.0.0.0/24\"}"
        fixture;
      Printf.sprintf "{\"op\":\"lint\",\"network\":\"%s\"}" fixture;
      Printf.sprintf "{\"op\":\"flow\",\"network\":\"%s\"}" fixture;
      "{\"op\":\"health\"}";
      "{\"op\":\"stats\"}";
    ]
  in
  let (), t_stream =
    Timing.time (fun () ->
        for i = 0 to n_requests - 1 do
          ignore
            (serve_req eng (List.nth stream (i mod List.length stream))
              : string)
        done)
  in
  let rps = float_of_int n_requests /. max 1e-9 t_stream in
  Printf.printf "%d mixed requests in %.3fs: %.0f requests/s\n%!" n_requests
    t_stream rps;
  let ft_cold, ft_warm, ft_restored = serve_latency ~fixture in
  let wan_cold, wan_warm, wan_restored = serve_latency ~fixture:"wan" in
  let doc =
    Printf.sprintf
      "{\n\
      \  \"stream\": {\"fixture\": \"%s\", \"requests\": %d, \"total_s\": \
       %.6f, \"requests_per_s\": %.1f, \"cold_load_s\": %.6f},\n\
      \  \"latency\": [\n\
      \    {\"fixture\": \"%s\", \"cold_s\": %.6f, \"warm_s\": %.6f, \
       \"warm_restored_s\": %.6f},\n\
      \    {\"fixture\": \"wan\", \"cold_s\": %.6f, \"warm_s\": %.6f, \
       \"warm_restored_s\": %.6f}\n\
      \  ]\n\
       }\n"
      fixture n_requests t_stream rps t_load fixture ft_cold ft_warm
      ft_restored wan_cold wan_warm wan_restored
  in
  let oc = open_out json_path in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path

(* ------------------------------------------------------------------ *)
(* Certification overhead (bonsai compress --certify)                  *)
(* ------------------------------------------------------------------ *)

(* What --certify costs on top of compress: full compression of every
   class, then the independent sample-audit check over a fresh BDD
   universe — the exact work the CLI flag adds. The gate (CI passes
   --assert-overhead 2.0) keeps certification cheap enough to leave on
   by default. *)

let certify_bench ?(k = 6) ~json_path ~assert_overhead () =
  hr "Certification overhead (--audit sample)";
  let fixtures =
    [
      ( Printf.sprintf "fattree:%d" k,
        Synthesis.fattree_shortest_path (Generators.fattree ~k) );
      ("wan", (Synthesis.wan ()).Synthesis.net);
    ]
  in
  let rows =
    List.map
      (fun (name, net) ->
        let summary = ref None in
        let (), t_compress =
          Timing.time (fun () ->
              match Bonsai_api.compress net with
              | Ok s -> summary := Some s
              | Error e ->
                fail "certify bench: compress %s: %s" name
                  (Format.asprintf "%a" Bonsai_error.pp e))
        in
        let s = match !summary with Some s -> s | None -> assert false in
        let obligations = ref 0 in
        let (), t_certify =
          Timing.time (fun () ->
              let universe = Policy_bdd.universe_of_network net in
              List.iter
                (fun r ->
                  match
                    Certify.check_result ~universe ~audit:Certify.Sample net r
                  with
                  | Certify.Certified _ as v ->
                    obligations := !obligations + Certify.obligation_count v
                  | v ->
                    fail "certify bench: %s did not certify: %s" name
                      (Format.asprintf "%a" Certify.pp_verdict v))
                s.Bonsai_api.results)
        in
        let overhead = t_certify /. max 1e-9 t_compress in
        Printf.printf
          "%-12s compress %8.3fs   certify %8.3fs (%5d obligations)   \
           overhead %.2fx\n\
           %!"
          name t_compress t_certify !obligations overhead;
        (name, List.length s.Bonsai_api.results, !obligations, t_compress,
         t_certify, overhead))
      fixtures
  in
  let row_json (name, ecs, obligations, t_c, t_a, ov) =
    Printf.sprintf
      "    {\"fixture\": \"%s\", \"classes\": %d, \"obligations\": %d, \
       \"compress_s\": %.6f, \"certify_s\": %.6f, \"overhead\": %.3f}"
      name ecs obligations t_c t_a ov
  in
  let doc =
    Printf.sprintf
      "{\n\
      \  \"audit\": \"sample\",\n\
      \  \"fixtures\": [\n%s\n  ]\n\
       }\n"
      (String.concat ",\n" (List.map row_json rows))
  in
  let oc = open_out json_path in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  match assert_overhead with
  | None -> ()
  | Some max_ov ->
    List.iter
      (fun (name, _, _, _, _, ov) ->
        if ov >= max_ov then begin
          Printf.eprintf
            "FAIL: %s certification overhead %.2fx is not under %.2fx\n" name
            ov max_ov;
          exit 1
        end)
      rows

(* ------------------------------------------------------------------ *)
(* Modular compression (bonsai modular)                                *)
(* ------------------------------------------------------------------ *)

(* The ISSUE acceptance contrast: the streaming modular engine compresses
   the multiwan WAN one region at a time (the whole network never
   materialized), while monolithic compression of the same network under
   a wall-clock budget exhausts and degrades. Modular runs first, so the
   monotone [Gc.stat].top_heap_words read after each phase is an honest
   per-phase peak. *)
let modular_bench ?(regions = 50) ?(region_size = 40) ~mono_budget_s
    ~json_path () =
  hr "Modular compression (bonsai modular) vs monolithic";
  let peak_mb () =
    float_of_int (Gc.stat ()).Gc.top_heap_words
    *. float_of_int (Sys.word_size / 8)
    /. 1e6
  in
  Gc.compact ();
  let rep, t_mod =
    Timing.time (fun () ->
        match
          Modular.run_stream ~count:regions
            (Synthesis.multiwan_stream ~regions ~region_size)
        with
        | Ok rep -> rep
        | Error e -> fail "modular bench: %a" Bonsai_error.pp e)
  in
  let mod_peak = peak_mb () in
  let faulted =
    List.length
      (List.filter
         (fun m ->
           match m.Modular.mr_health with
           | Modular.Degraded | Modular.Refuted -> true
           | Modular.Healthy | Modular.Retried -> false)
         rep.Modular.rp_modules)
  in
  let concrete =
    List.fold_left
      (fun a m -> a + m.Modular.mr_concrete)
      0 rep.Modular.rp_modules
  and abstract =
    List.fold_left
      (fun a m -> a + m.Modular.mr_abstract)
      0 rep.Modular.rp_modules
  in
  Printf.printf
    "modular stream: %d modules, %d routers in %.3fs (peak %.0f MB); %d \
     faulted; %d concrete -> %d abstract\n%!"
    (List.length rep.Modular.rp_modules)
    rep.Modular.rp_routers t_mod mod_peak faulted concrete abstract;
  let net = (Synthesis.multiwan ~regions ~region_size).Synthesis.net in
  let budget = Budget.create ~deadline_s:mono_budget_s () in
  let s, t_mono =
    Timing.time (fun () ->
        match Bonsai_api.compress ~budget net with
        | Ok s -> s
        | Error e -> fail "modular bench (monolithic): %a" Bonsai_error.pp e)
  in
  let mono_peak = peak_mb () in
  let completed, total =
    match s.Bonsai_api.degradation with
    | Some d -> (d.Bonsai_api.deg_completed, d.Bonsai_api.deg_total)
    | None -> (List.length s.Bonsai_api.results, List.length s.Bonsai_api.results)
  in
  Printf.printf
    "monolithic (%.0fs budget): %d/%d classes compressed in %.3fs (peak %.0f \
     MB)%s\n%!"
    mono_budget_s completed total t_mono mono_peak
    (if completed < total then " -- budget exhausted, rest degraded to identity"
     else "");
  let doc =
    Printf.sprintf
      "{\n\
      \  \"regions\": %d,\n\
      \  \"region_size\": %d,\n\
      \  \"routers\": %d,\n\
      \  \"modular\": {\"time_s\": %.6f, \"peak_mb\": %.1f, \"modules\": %d, \
       \"faulted\": %d, \"concrete\": %d, \"abstract\": %d},\n\
      \  \"monolithic\": {\"time_s\": %.6f, \"peak_mb\": %.1f, \"budget_s\": \
       %.1f, \"classes_total\": %d, \"classes_compressed\": %d, \"degraded\": \
       %b}\n\
       }\n"
      regions region_size rep.Modular.rp_routers t_mod mod_peak
      (List.length rep.Modular.rp_modules)
      faulted concrete abstract t_mono mono_peak mono_budget_s total completed
      (completed < total)
  in
  let oc = open_out json_path in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  if faulted > 0 then begin
    Printf.eprintf "FAIL: %d module(s) faulted on the healthy workload\n"
      faulted;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the core kernels                        *)
(* ------------------------------------------------------------------ *)

let micro () =
  hr "Microbenchmarks (Bechamel)";
  let open Bechamel in
  let ft = Generators.fattree ~k:12 in
  let net = Synthesis.fattree_shortest_path ft in
  let ec = List.hd (Ecs.compute net) in
  let dest = Ecs.single_origin ec in
  let universe = Policy_bdd.universe_of_network net in
  let rm : Route_map.t =
    [
      {
        verdict = Permit;
        conds = [ Match_community [ 1; 2 ] ];
        actions = [ Add_community 3; Set_local_pref 350 ];
      };
      { verdict = Permit; conds = []; actions = [] };
    ]
  in
  let mini =
    (* a tiny network whose only policy is [rm], so the BDD universe
       covers exactly the benchmarked map *)
    let g = Graph.of_links ~n:2 [ (0, 1) ] in
    {
      Device.graph = g;
      routers =
        [|
          {
            (Device.default_router "a") with
            Device.bgp_neighbors =
              [ (1, { Device.import_rm = Some rm; export_rm = None; ibgp = false; rel = Device.Rel_unknown }) ];
          };
          Device.default_router "b";
        |];
    }
  in
  let mini_universe =
    Policy_bdd.universe_of_network ~keep_unmatched_comms:true mini
  in
  let tests =
    Test.make_grouped ~name:"bonsai"
      [
        Test.make ~name:"encode-route-map"
          (Staged.stage (fun () ->
               Policy_bdd.encode_route_map mini_universe rm
                 ~dest:(Prefix.of_string "10.0.0.0/24")));
        Test.make ~name:"compress-ec-fattree-180"
          (Staged.stage (fun () -> Bonsai_api.compress_ec_exn ~universe net ec));
        Test.make ~name:"solve-fattree-180"
          (Staged.stage (fun () ->
               Solver.solve
                 (Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-40s %12.3f ms/run\n" name (est /. 1e6)
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let all ~timeout_s () =
  table1a ();
  table1b ();
  figure11 ();
  figure12 ~timeout_s ();
  batfish_query ();
  ablation_bdd ();
  ablation_uu ()

let () =
  let usage () =
    prerr_endline
      "usage: bench/main.exe \
       [table1a|table1b|figure11|figure12|batfish-query|ablation-bdd|ablation-uu|faults|harden|incr|dataplane|serve|certify|modular|micro|all] \
       [--timeout SECONDS] [--samples N] [--k K] [--deltas N] \
       [--regions N] [--region-size N] [--json FILE] \
       [--assert-speedup MIN] [--assert-overhead MAX]";
    exit 2
  in
  let args = Array.to_list Sys.argv |> List.tl in
  let timeout_s = ref 60.0 in
  let samples = ref None in
  let k = ref 8 in
  let n_deltas = ref 10 in
  let regions = ref 50 in
  let region_size = ref 40 in
  let json_path = ref "BENCH_incr.json" in
  let assert_speedup = ref None in
  let assert_overhead = ref None in
  let rec parse cmds = function
    | [] -> List.rev cmds
    | "--timeout" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t -> timeout_s := t
      | None -> usage ());
      parse cmds rest
    | "--samples" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n -> samples := Some n
      | None -> usage ());
      parse cmds rest
    | "--k" :: v :: rest ->
      (match int_of_string_opt v with Some n -> k := n | None -> usage ());
      parse cmds rest
    | "--deltas" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n -> n_deltas := n
      | None -> usage ());
      parse cmds rest
    | "--regions" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n -> regions := n
      | None -> usage ());
      parse cmds rest
    | "--region-size" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n -> region_size := n
      | None -> usage ());
      parse cmds rest
    | "--json" :: v :: rest ->
      json_path := v;
      parse cmds rest
    | "--assert-speedup" :: v :: rest ->
      (match float_of_string_opt v with
      | Some s -> assert_speedup := Some s
      | None -> usage ());
      parse cmds rest
    | "--assert-overhead" :: v :: rest ->
      (match float_of_string_opt v with
      | Some s -> assert_overhead := Some s
      | None -> usage ());
      parse cmds rest
    | "--help" :: _ | "-h" :: _ -> usage ()
    | c :: rest -> parse (c :: cmds) rest
  in
  let cmds = match parse [] args with [] -> [ "all" ] | cs -> cs in
  List.iter
    (fun cmd ->
      match cmd with
      | "table1a" -> table1a ()
      | "table1b" -> table1b ()
      | "figure11" -> figure11 ()
      | "figure12" -> figure12 ~timeout_s:!timeout_s ()
      | "batfish-query" -> batfish_query ()
      | "ablation-bdd" -> ablation_bdd ()
      | "ablation-uu" -> ablation_uu ()
      | "faults" -> faults ?samples:!samples ()
      | "harden" -> harden ()
      | "incr" ->
        incr_bench ~k:!k ~n_deltas:!n_deltas ~json_path:!json_path
          ~assert_speedup:!assert_speedup ()
      | "dataplane" ->
        let json_path =
          if String.equal !json_path "BENCH_incr.json" then
            "BENCH_dataplane.json"
          else !json_path
        in
        dataplane_bench ~k:!k ~json_path ~assert_speedup:!assert_speedup ()
      | "serve" ->
        (* --json is shared with incr; redirect its default here *)
        let json_path =
          if String.equal !json_path "BENCH_incr.json" then "BENCH_serve.json"
          else !json_path
        in
        serve_bench
          ~k:(if !k = 8 then 6 else !k)
          ?n_requests:!samples ~json_path ()
      | "certify" ->
        let json_path =
          if String.equal !json_path "BENCH_incr.json" then
            "BENCH_certify.json"
          else !json_path
        in
        certify_bench
          ~k:(if !k = 8 then 6 else !k)
          ~json_path ~assert_overhead:!assert_overhead ()
      | "modular" ->
        let json_path =
          if String.equal !json_path "BENCH_incr.json" then
            "BENCH_modular.json"
          else !json_path
        in
        modular_bench ~regions:!regions ~region_size:!region_size
          ~mono_budget_s:!timeout_s ~json_path ()
      | "micro" -> micro ()
      | "all" -> all ~timeout_s:!timeout_s ()
      | _ -> usage ())
    cmds

type protocol = [ `Bgp | `Multi ]

type result = {
  pairs : int;
  unreachable : int;
  ecs_done : int;
  time_s : float;
  compress_time_s : float;
  timed_out : bool;
}

let solve_or_fail (type a) (srp : a Srp.t) : a Solution.t =
  match Solver.solve srp with
  | Ok (s, _) -> s
  | Error (`Diverged d) ->
    d.Solver.diag_sol (* judged unstable: all pairs unreachable *)
  | Error (`Budget (_, partial)) ->
    partial (* unstable partial labeling: counts as unreachable *)

let check_pairs (type a) (sol : a Solution.t) =
  let n = Graph.n_nodes sol.Solution.srp.Srp.graph in
  let dest = sol.Solution.srp.Srp.dest in
  let pairs = ref 0 and unreachable = ref 0 in
  for u = 0 to n - 1 do
    if u <> dest then begin
      incr pairs;
      if not (Properties.reachable sol u) then incr unreachable
    end
  done;
  (!pairs, !unreachable)

let run_ecs ?timeout_s ?max_ecs (net : Device.network) per_ec =
  let t0 = Timing.now () in
  let deadline = Option.map (fun s -> t0 +. s) timeout_s in
  let ecs = Ecs.compute net in
  let ecs =
    match max_ecs with
    | None -> ecs
    | Some k -> List.filteri (fun i _ -> i < k) ecs
  in
  let pairs = ref 0 and unreachable = ref 0 and ecs_done = ref 0 in
  let compress_time = ref 0.0 in
  let timed_out = ref false in
  List.iter
    (fun ec ->
      let expired =
        match deadline with Some d -> Timing.now () > d | None -> false
      in
      if expired then timed_out := true
      else
        match ec.Ecs.ec_origins with
        | [ _ ] ->
          let p, u, ct = per_ec ec in
          pairs := !pairs + p;
          unreachable := !unreachable + u;
          compress_time := !compress_time +. ct;
          incr ecs_done
        | _ -> ())
    ecs;
  {
    pairs = !pairs;
    unreachable = !unreachable;
    ecs_done = !ecs_done;
    time_s = Timing.now () -. t0;
    compress_time_s = !compress_time;
    timed_out = !timed_out;
  }

let concrete_solution ?(protocol = `Bgp) (net : Device.network) ec =
  let dest = Ecs.single_origin ec in
  match protocol with
  | `Bgp ->
    let srp = Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
    let sol = solve_or_fail srp in
    `Bgp_sol sol
  | `Multi ->
    let srp = Compile.multi_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
    let sol = solve_or_fail srp in
    `Multi_sol sol

let concrete_all_pairs ?timeout_s ?protocol ?max_ecs net =
  run_ecs ?timeout_s ?max_ecs net (fun ec ->
      let p, u =
        match concrete_solution ?protocol net ec with
        | `Bgp_sol sol -> check_pairs sol
        | `Multi_sol sol -> check_pairs sol
      in
      (p, u, 0.0))

let abstract_solution ?(protocol = `Bgp) ~universe (net : Device.network) ec =
  let r = Bonsai_api.compress_ec_exn ~universe net ec in
  let t = r.Bonsai_api.abstraction in
  match protocol with
  | `Bgp -> (r, `Bgp_sol (solve_or_fail (Abstraction.bgp_srp t)))
  | `Multi -> (r, `Multi_sol (solve_or_fail (Abstraction.multi_srp t)))

let abstract_all_pairs ?timeout_s ?protocol ?max_ecs (net : Device.network) =
  let universe, u_time =
    Timing.time (fun () -> Policy_bdd.universe_of_network net)
  in
  let first = ref true in
  run_ecs ?timeout_s ?max_ecs net (fun ec ->
      let (r, sol), t =
        Timing.time (fun () -> abstract_solution ?protocol ~universe net ec)
      in
      let p, u =
        match sol with
        | `Bgp_sol sol -> check_pairs sol
        | `Multi_sol sol -> check_pairs sol
      in
      let ct =
        r.Bonsai_api.time_s +. (if !first then u_time else 0.0)
      in
      first := false;
      ignore t;
      (p, u, ct))

let concrete_query ?protocol net ~src ~ec =
  match concrete_solution ?protocol net ec with
  | `Bgp_sol sol -> Properties.reachable sol src
  | `Multi_sol sol -> Properties.reachable sol src

let abstract_query ?protocol net ~src ~ec =
  let universe = Policy_bdd.universe_of_network net in
  let r, sol = abstract_solution ?protocol ~universe net ec in
  let asrc = Abstraction.f r.Bonsai_api.abstraction src in
  match sol with
  | `Bgp_sol sol -> Properties.reachable sol asrc
  | `Multi_sol sol -> Properties.reachable sol asrc

type flows = {
  sources_reaching : int;
  total_paths : int;
  flow_time_s : float;
}

let flows_of_solution (type a) (sol : a Solution.t) t0 =
  let n = Graph.n_nodes sol.Solution.srp.Srp.graph in
  let dest = sol.Solution.srp.Srp.dest in
  let sources = ref 0 and paths = ref 0 in
  for u = 0 to n - 1 do
    if u <> dest then begin
      if Properties.reachable sol u then incr sources;
      paths :=
        !paths
        + List.length (Solution.forwarding_paths sol ~src:u ~max_len:(n + 1))
    end
  done;
  {
    sources_reaching = !sources;
    total_paths = !paths;
    flow_time_s = Timing.now () -. t0;
  }

let concrete_flows ?protocol net ~ec =
  let t0 = Timing.now () in
  match concrete_solution ?protocol net ec with
  | `Bgp_sol sol -> flows_of_solution sol t0
  | `Multi_sol sol -> flows_of_solution sol t0

let abstract_flows ?protocol net ~ec =
  let t0 = Timing.now () in
  let universe = Policy_bdd.universe_of_network net in
  let _, sol = abstract_solution ?protocol ~universe net ec in
  match sol with
  | `Bgp_sol sol -> flows_of_solution sol t0
  | `Multi_sol sol -> flows_of_solution sol t0

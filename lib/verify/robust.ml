type 'a result =
  | Holds
  | Fails of 'a Solution.t
  | Sampled_holds of int

let solutions ?(max_nodes = 12) ?(tries = 16) (srp : 'a Srp.t) =
  if Graph.n_nodes srp.Srp.graph <= max_nodes then
    (`Exhaustive, Solver.enumerate_solutions ~max_nodes srp)
  else (`Sampled, Solver.solutions_sample ~tries srp)

let for_all_solutions ?max_nodes ?tries srp prop =
  let kind, sols = solutions ?max_nodes ?tries srp in
  match List.find_opt (fun s -> not (prop s)) sols with
  | Some cex -> Fails cex
  | None -> (
    match kind with
    | `Exhaustive -> Holds
    | `Sampled -> Sampled_holds (List.length sols))

let exists_solution ?max_nodes ?tries srp prop =
  let _, sols = solutions ?max_nodes ?tries srp in
  List.find_opt prop sols

(* --- quantifying over failure scenarios ------------------------------ *)

type 'a fault_result =
  | Fault_holds of { scenarios : int; exhaustive : bool }
  | Fault_fails of Scenario.t * 'a Solution.t
  | Fault_diverges of Scenario.t * 'a Solver.diagnosis

let scenario_violates ?max_steps srp prop sc =
  match Fault_engine.run ?max_steps srp sc with
  | Fault_engine.Stable sol | Fault_engine.Disconnected (sol, _) ->
    if prop sol then None else Some (`Fails sol)
  | Fault_engine.Diverged d -> Some (`Diverged d)

let for_all_failures ?(k = 1) ?budget ?samples ?seed ?max_steps
    (srp : 'a Srp.t) prop =
  let plan = Fault_engine.plan ?budget ?samples ?seed ~k srp.Srp.graph in
  let fails sc = scenario_violates ?max_steps srp prop sc <> None in
  match List.find_opt fails plan.Fault_engine.scenarios with
  | None ->
    Fault_holds
      {
        scenarios = List.length plan.Fault_engine.scenarios;
        exhaustive = plan.Fault_engine.exhaustive;
      }
  | Some sc -> (
    let minimal = Scenario.shrink fails sc in
    match scenario_violates ?max_steps srp prop minimal with
    | Some (`Fails sol) -> Fault_fails (minimal, sol)
    | Some (`Diverged d) -> Fault_diverges (minimal, d)
    | None -> assert false)

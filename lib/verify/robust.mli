(** Verification over {e all} stable solutions.

    An SRP can have several stable solutions (paper §3.1) — which one the
    network converges to depends on message timing. A property verified on
    one solution may silently fail in another (e.g. which of the paper's
    Figure 2 middle routers sends traffic through the top router differs
    per solution). This module quantifies over solutions: exhaustively for
    small networks (via {!Solver.enumerate_solutions}), by seeded sampling
    otherwise.

    Combined with compression this is the paper's intended workflow: a
    property holds in every solution of the concrete network iff it holds
    (modulo [f], [h]) in every solution of the abstract network — and the
    abstract network is usually small enough to enumerate. *)

type 'a result =
  | Holds  (** holds in every stable solution (exhaustive) *)
  | Fails of 'a Solution.t  (** a counterexample solution *)
  | Sampled_holds of int
      (** held in each of the n sampled solutions (non-exhaustive) *)

val for_all_solutions :
  ?max_nodes:int ->
  ?tries:int ->
  'a Srp.t ->
  ('a Solution.t -> bool) ->
  'a result
(** Exhaustive when the network has at most [max_nodes] (default 12)
    nodes; otherwise checks the distinct solutions found by [tries]
    (default 16) seeded solver runs. *)

val exists_solution :
  ?max_nodes:int -> ?tries:int -> 'a Srp.t -> ('a Solution.t -> bool) ->
  'a Solution.t option
(** A solution satisfying the predicate, if one is found. *)

(** {1 Quantifying over failure scenarios}

    Verification under all (or sampled) failure scenarios up to [k] downed
    links, Tiramisu-style, built on {!Fault_engine} (lib/faults). Note the
    quantifier order: per scenario we check {e one} solver solution — the
    paper's multi-solution subtlety and the failure quantifier compose but
    multiply the cost; combine with [for_all_solutions] manually when both
    matter. *)

type 'a fault_result =
  | Fault_holds of { scenarios : int; exhaustive : bool }
  | Fault_fails of Scenario.t * 'a Solution.t
      (** a 1-minimal failure set and the violating stable solution *)
  | Fault_diverges of Scenario.t * 'a Solver.diagnosis
      (** a 1-minimal failure set under which the SRP no longer
          converges *)

val for_all_failures :
  ?k:int ->
  ?budget:int ->
  ?samples:int ->
  ?seed:int ->
  ?max_steps:int ->
  'a Srp.t ->
  ('a Solution.t -> bool) ->
  'a fault_result
(** Does the property hold in the solved solution of every surviving
    network with at most [k] (default 1) downed links? Scenario selection
    as in {!Fault_engine.plan}; failing scenarios are shrunk with
    {!Scenario.shrink} before reporting. Divergence counts as a violation
    (the network has no stable routing to judge). *)

(** Fixed-width bit vectors of BDDs.

    Bonsai's policy relations encode route-advertisement fields (e.g. the
    local-preference value) as small bit vectors. A vector is an array of
    BDD functions, least-significant bit first. *)

type t = Bdd.t array

val width : t -> int

val const : Bdd.man -> width:int -> int -> t
(** [const m ~width k] encodes the constant [k] (non-negative, must fit). *)

val of_vars : Bdd.man -> first:int -> width:int -> t
(** [of_vars m ~first ~width] is the vector of variables
    [first, first+1, ..., first+width-1]. *)

val eq : Bdd.man -> t -> t -> Bdd.t
(** Bitwise equality of two same-width vectors. *)

val eq_const : Bdd.man -> t -> int -> Bdd.t

val ge_const : Bdd.man -> t -> int -> Bdd.t
(** [ge_const m a k] holds where the vector's unsigned value is at least
    [k] (false everywhere when [k] does not fit the width). Used by the
    linter's prefix-length encoding. *)

val ite : Bdd.man -> Bdd.t -> t -> t -> t
(** [ite m c a b] selects [a] where [c] holds and [b] elsewhere,
    component-wise. *)

val bits_needed : int -> int
(** [bits_needed k] is the least [w] with [k < 2^w] (at least 1). *)

type t =
  | False
  | True
  | Node of { id : int; v : int; lo : t; hi : t }

let node_id = function False -> 0 | True -> 1 | Node n -> n.id

module Unique = Hashtbl.Make (struct
  type key = int * int * int (* var, lo id, hi id *)
  type t = key

  let equal (a1, b1, c1) (a2, b2, c2) = a1 = a2 && b1 = b2 && c1 = c2
  let hash (a, b, c) = (a * 0x9e3779b1) lxor (b * 0x85ebca77) lxor (c * 0xc2b2ae3d)
end)

module Memo1 = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = x * 0x9e3779b1
end)

module Memo2 = Hashtbl.Make (struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x9e3779b1) lxor (b * 0x85ebca77)
end)

module Memo3 = Hashtbl.Make (struct
  type t = int * int * int

  let equal (a1, b1, c1) (a2, b2, c2) = a1 = a2 && b1 = b2 && c1 = c2
  let hash (a, b, c) = (a * 0x9e3779b1) lxor (b * 0x85ebca77) lxor (c * 0xc2b2ae3d)
end)

type man = {
  unique : t Unique.t;
  mutable next_id : int;
  not_memo : t Memo1.t;
  and_memo : t Memo2.t;
  or_memo : t Memo2.t;
  xor_memo : t Memo2.t;
  ite_memo : t Memo3.t;
  restrict_memo : t Memo3.t; (* node id, var, (0|1) *)
  exists_memo : t Memo2.t; (* node id, generation of quantified-set *)
  shift_memo : t Memo2.t;
  mutable quant_gen : int; (* distinguishes successive exists/forall calls *)
  mutable quant_vars : (int, unit) Hashtbl.t;
  mutable budget : Budget.t;
  mutable node_cap : int; (* max unique-table nodes; max_int = unbounded *)
  mutable apply_hits : int;
  mutable apply_misses : int;
  mutable ite_hits : int;
  mutable ite_misses : int;
}

let man ?(cache_size = 4096) ?(node_cap = max_int) () =
  {
    unique = Unique.create cache_size;
    next_id = 2;
    not_memo = Memo1.create cache_size;
    and_memo = Memo2.create cache_size;
    or_memo = Memo2.create cache_size;
    xor_memo = Memo2.create cache_size;
    ite_memo = Memo3.create cache_size;
    restrict_memo = Memo3.create cache_size;
    exists_memo = Memo2.create cache_size;
    shift_memo = Memo2.create cache_size;
    quant_gen = 0;
    quant_vars = Hashtbl.create 8;
    budget = Budget.infinite;
    node_cap;
    apply_hits = 0;
    apply_misses = 0;
    ite_hits = 0;
    ite_misses = 0;
  }


let set_budget m b = m.budget <- b
let set_node_cap m cap =
  m.node_cap <- (match cap with Some c -> c | None -> max_int)

let phase = "bdd"

let clear_caches m =
  Memo1.reset m.not_memo;
  Memo2.reset m.and_memo;
  Memo2.reset m.or_memo;
  Memo2.reset m.xor_memo;
  Memo3.reset m.ite_memo;
  Memo3.reset m.restrict_memo;
  Memo2.reset m.exists_memo;
  Memo2.reset m.shift_memo

let num_nodes m = Unique.length m.unique

let bot = False
let top = True

let mk m v ~lo ~hi =
  if lo == hi then lo
  else
    let key = (v, node_id lo, node_id hi) in
    match Unique.find_opt m.unique key with
    | Some n -> n
    | None ->
      if Unique.length m.unique >= m.node_cap then
        raise
          (Budget.Exhausted
             (Budget.info m.budget ~phase
                ~note:
                  (Printf.sprintf "unique-table node cap %d reached"
                     m.node_cap)
                ()));
      let n = Node { id = m.next_id; v; lo; hi } in
      m.next_id <- m.next_id + 1;
      Unique.replace m.unique key n;
      n

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  mk m i ~lo:False ~hi:True

let nvar m i =
  if i < 0 then invalid_arg "Bdd.nvar: negative variable";
  mk m i ~lo:True ~hi:False

let rec not_ m b =
  match b with
  | False -> True
  | True -> False
  | Node { id; v; lo; hi } -> (
    match Memo1.find_opt m.not_memo id with
    | Some r -> r
    | None ->
      Budget.tick m.budget ~phase;
      let r = mk m v ~lo:(not_ m lo) ~hi:(not_ m hi) in
      Memo1.replace m.not_memo id r;
      r)

(* Generic binary apply with per-operation memo table and short-circuit
   rules supplied by the caller. *)
let apply m memo ~commutative ~short f =
  let rec go a b =
    match short a b with
    | Some r -> r
    | None -> (
      let ia = node_id a and ib = node_id b in
      let key = if commutative && ib < ia then (ib, ia) else (ia, ib) in
      match Memo2.find_opt memo key with
      | Some r ->
        m.apply_hits <- m.apply_hits + 1;
        r
      | None ->
        m.apply_misses <- m.apply_misses + 1;
        Budget.tick m.budget ~phase;
        let r =
          match (a, b) with
          | Node na, Node nb ->
            if na.v = nb.v then mk m na.v ~lo:(go na.lo nb.lo) ~hi:(go na.hi nb.hi)
            else if na.v < nb.v then mk m na.v ~lo:(go na.lo b) ~hi:(go na.hi b)
            else mk m nb.v ~lo:(go a nb.lo) ~hi:(go a nb.hi)
          | (False | True), _ | _, (False | True) ->
            (* terminal-terminal pairs are always short-circuited *)
            f a b
        in
        Memo2.replace memo key r;
        r)
  in
  go

let and_ m a b =
  apply m m.and_memo ~commutative:true
    ~short:(fun a b ->
      match (a, b) with
      | False, _ | _, False -> Some False
      | True, x | x, True -> Some x
      | _ -> if a == b then Some a else None)
    (fun _ _ -> assert false)
    a b

let or_ m a b =
  apply m m.or_memo ~commutative:true
    ~short:(fun a b ->
      match (a, b) with
      | True, _ | _, True -> Some True
      | False, x | x, False -> Some x
      | _ -> if a == b then Some a else None)
    (fun _ _ -> assert false)
    a b

let xor m a b =
  apply m m.xor_memo ~commutative:true
    ~short:(fun a b ->
      match (a, b) with
      | False, x | x, False -> Some x
      | True, x | x, True -> Some (not_ m x)
      | _ -> if a == b then Some False else None)
    (fun _ _ -> assert false)
    a b

let imp m a b = or_ m (not_ m a) b
let iff m a b = not_ m (xor m a b)
let implies m a b = imp m a b == True

let ( &&& ) = and_
let ( ||| ) = or_

let rec ite m c t e =
  match c with
  | True -> t
  | False -> e
  | Node _ when t == e -> t
  | Node _ when t == True && e == False -> c
  | Node nc -> (
    let key = (node_id c, node_id t, node_id e) in
    match Memo3.find_opt m.ite_memo key with
    | Some r ->
      m.ite_hits <- m.ite_hits + 1;
      r
    | None ->
      m.ite_misses <- m.ite_misses + 1;
      Budget.tick m.budget ~phase;
      let top_var =
        let vt = match t with Node n -> n.v | _ -> max_int in
        let ve = match e with Node n -> n.v | _ -> max_int in
        min nc.v (min vt ve)
      in
      let cof b =
        match b with
        | Node n when n.v = top_var -> (n.lo, n.hi)
        | _ -> (b, b)
      in
      let c0, c1 = cof c and t0, t1 = cof t and e0, e1 = cof e in
      let r = mk m top_var ~lo:(ite m c0 t0 e0) ~hi:(ite m c1 t1 e1) in
      Memo3.replace m.ite_memo key r;
      r)

let and_list m = List.fold_left (and_ m) True
let or_list m = List.fold_left (or_ m) False

let rec restrict m b ~var ~value =
  match b with
  | False | True -> b
  | Node { id; v; lo; hi } ->
    if v > var then b
    else if v = var then if value then hi else lo
    else
      let key = (id, var, if value then 1 else 0) in
      (match Memo3.find_opt m.restrict_memo key with
      | Some r -> r
      | None ->
        Budget.tick m.budget ~phase;
        let r =
          mk m v ~lo:(restrict m lo ~var ~value) ~hi:(restrict m hi ~var ~value)
        in
        Memo3.replace m.restrict_memo key r;
        r)

let restrict m b ~var value = restrict m b ~var ~value

let exists m vars b =
  match vars with
  | [] -> b
  | _ ->
    m.quant_gen <- m.quant_gen + 1;
    let gen = m.quant_gen in
    let set = Hashtbl.create (List.length vars) in
    List.iter (fun v -> Hashtbl.replace set v ()) vars;
    m.quant_vars <- set;
    let rec go b =
      match b with
      | False | True -> b
      | Node { id; v; lo; hi } -> (
        match Memo2.find_opt m.exists_memo (id, gen) with
        | Some r -> r
        | None ->
          Budget.tick m.budget ~phase;
          let r =
            if Hashtbl.mem set v then or_ m (go lo) (go hi)
            else mk m v ~lo:(go lo) ~hi:(go hi)
          in
          Memo2.replace m.exists_memo (id, gen) r;
          r)
    in
    go b

let forall m vars b = not_ m (exists m vars (not_ m b))

let rename_shift m b k =
  if k = 0 then b
  else begin
    (* Use the quantifier generation counter to key this call's memo
       entries, since the shift amount changes the result. *)
    m.quant_gen <- m.quant_gen + 1;
    let gen = m.quant_gen in
    let rec go b =
      match b with
      | False | True -> b
      | Node { id; v; lo; hi } -> (
        match Memo2.find_opt m.shift_memo (id, gen) with
        | Some r -> r
        | None ->
          Budget.tick m.budget ~phase;
          if v + k < 0 then invalid_arg "Bdd.rename_shift: negative variable";
          let r = mk m (v + k) ~lo:(go lo) ~hi:(go hi) in
          Memo2.replace m.shift_memo (id, gen) r;
          r)
    in
    go b
  end

let equal a b = a == b
let compare_id a b = Int.compare (node_id a) (node_id b)
let hash b = node_id b
let is_bot b = b == False
let is_top b = b == True

let rec eval b env =
  match b with
  | False -> false
  | True -> true
  | Node { v; lo; hi; _ } -> if env v then eval hi env else eval lo env

let support b =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | False | True -> ()
    | Node { id; v; lo; hi } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.replace seen id ();
        Hashtbl.replace vars v ();
        go lo;
        go hi
      end
  in
  go b;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort compare

let size b =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | False | True -> ()
    | Node { id; lo; hi; _ } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.replace seen id ();
        go lo;
        go hi
      end
  in
  go b;
  Hashtbl.length seen

let rename_monotone m b f =
  let sup = support b in
  let rec check = function
    | x :: (y :: _ as rest) ->
      if f x >= f y then
        invalid_arg "Bdd.rename_monotone: map is not strictly increasing";
      check rest
    | _ -> ()
  in
  (match sup with
  | x :: _ when f x < 0 -> invalid_arg "Bdd.rename_monotone: negative variable"
  | _ -> ());
  check sup;
  m.quant_gen <- m.quant_gen + 1;
  let gen = m.quant_gen in
  let rec go b =
    match b with
    | False | True -> b
    | Node { id; v; lo; hi } -> (
      match Memo2.find_opt m.shift_memo (id, gen) with
      | Some r -> r
      | None ->
        Budget.tick m.budget ~phase;
        let r = mk m (f v) ~lo:(go lo) ~hi:(go hi) in
        Memo2.replace m.shift_memo (id, gen) r;
        r)
  in
  go b

let sat_count b ~nvars =
  (* Counts assignments over variables [0..nvars-1]; memoized on node id. *)
  let memo = Hashtbl.create 64 in
  let rec go b =
    (* number of sat assignments over variables >= level of b's root,
       normalized by treating the root as level [var] *)
    match b with
    | False -> (0.0, nvars)
    | True -> (1.0, nvars)
    | Node { id; v; lo; hi } -> (
      match Hashtbl.find_opt memo id with
      | Some r -> r
      | None ->
        let clo, vlo = go lo and chi, vhi = go hi in
        let scale c from_v = c *. (2.0 ** float_of_int (from_v - v - 1)) in
        let r = (scale clo vlo +. scale chi vhi, v) in
        Hashtbl.replace memo id r;
        r)
  in
  let c, v = go b in
  c *. (2.0 ** float_of_int v)

let any_sat b =
  let rec go acc = function
    | False -> raise Not_found
    | True -> List.rev acc
    | Node { v; lo; hi; _ } ->
      if lo == False then go ((v, true) :: acc) hi else go ((v, false) :: acc) lo
  in
  go [] b

let pp ppf b =
  match b with
  | False -> Format.pp_print_string ppf "false"
  | True -> Format.pp_print_string ppf "true"
  | _ ->
    let first = ref true in
    let rec cubes acc = function
      | False -> ()
      | True ->
        if not !first then Format.fprintf ppf " | ";
        first := false;
        (match List.rev acc with
        | [] -> Format.pp_print_string ppf "true"
        | lits ->
          Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "&")
            (fun ppf (v, s) -> Format.fprintf ppf "%s%d" (if s then "x" else "!x") v)
            ppf lits)
      | Node { v; lo; hi; _ } ->
        cubes ((v, false) :: acc) lo;
        cubes ((v, true) :: acc) hi
    in
    cubes [] b

(* --- statistics (defined last so the [man] fields above stay the ones
   field punning resolves to) ----------------------------------------- *)

type stats = {
  nodes : int;
  apply_hits : int;
  apply_misses : int;
  ite_hits : int;
  ite_misses : int;
}

let stats (m : man) =
  {
    nodes = Unique.length m.unique;
    apply_hits = m.apply_hits;
    apply_misses = m.apply_misses;
    ite_hits = m.ite_hits;
    ite_misses = m.ite_misses;
  }

let hit_rate ~hits ~misses =
  let t = hits + misses in
  if t = 0 then 0.0 else float_of_int hits /. float_of_int t

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "nodes=%d apply memo %d/%d hits (%.0f%%), ite memo %d/%d hits (%.0f%%)"
    s.nodes s.apply_hits
    (s.apply_hits + s.apply_misses)
    (100.0 *. hit_rate ~hits:s.apply_hits ~misses:s.apply_misses)
    s.ite_hits
    (s.ite_hits + s.ite_misses)
    (100.0 *. hit_rate ~hits:s.ite_hits ~misses:s.ite_misses)

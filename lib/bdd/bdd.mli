(** Reduced ordered binary decision diagrams (ROBDDs), hash-consed.

    Bonsai encodes each interface's routing policy as a BDD so that semantic
    equality of two policies is a pointer comparison (paper §5.1). This
    module provides the substrate: a manager owning a unique table and
    operation caches, and the usual Boolean operations.

    Variables are non-negative integers; the variable order is the integer
    order (smaller variables closer to the root). Two BDDs built in the same
    manager denote the same Boolean function iff they are physically equal
    ({!equal}). *)

type man
(** A BDD manager: unique table plus memoization caches. *)

type t
(** A BDD node, owned by some manager. Mixing nodes across managers is a
    programming error and is not detected. *)

val man : ?cache_size:int -> ?node_cap:int -> unit -> man
(** Fresh manager. [cache_size] seeds the internal hash tables;
    [node_cap] bounds the unique table (see {!set_node_cap}). *)

(** {1 Resource governance}

    BDD operations can blow up exponentially on adversarial policies. A
    manager optionally carries a {!Budget.t} — every uncached recursion
    step of [apply]/[ite]/[not_]/[restrict]/[exists]/renaming consumes one
    work tick — and a unique-table node cap. Both signal exhaustion by
    raising [Budget.Exhausted]; callers at API boundaries convert this to
    the typed [Bonsai_error.Budget_exceeded]. *)

val set_budget : man -> Budget.t -> unit
(** Install a budget on the manager ([Budget.infinite] to remove it). *)

val set_node_cap : man -> int option -> unit
(** Cap the number of interior nodes in the unique table ([None] removes
    the cap). Creating a node beyond the cap raises [Budget.Exhausted]
    with a note naming the cap. *)

val clear_caches : man -> unit
(** Drop operation caches (the unique table is retained, so equality of
    previously built nodes is preserved). *)

val num_nodes : man -> int
(** Number of live interior nodes in the unique table. *)

(** {1 Statistics}

    Counters over a manager's lifetime, exposed so callers that keep a
    manager alive across many compressions (the policy-signature cache of
    lib/incr) can report how much hash-consing actually saves. *)

type stats = {
  nodes : int;  (** unique-table occupancy ({!num_nodes}) *)
  apply_hits : int;
      (** binary-operation ([and]/[or]/[xor]) memo hits *)
  apply_misses : int;  (** uncached binary-operation recursion steps *)
  ite_hits : int;
  ite_misses : int;
}

val stats : man -> stats
(** Cumulative since the manager was created ({!clear_caches} empties the
    memo tables but does not reset the counters). *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Constants and variables} *)

val bot : t
(** The constant false. *)

val top : t
(** The constant true. *)

val var : man -> int -> t
(** [var m i] is the function "variable [i] is true".
    @raise Invalid_argument on negative [i]. *)

val nvar : man -> int -> t
(** [nvar m i] is the negation of [var m i]. *)

(** {1 Operations} *)

val mk : man -> int -> lo:t -> hi:t -> t
(** [mk m v ~lo ~hi] is the node testing variable [v], with [lo] the
    co-factor for [v = false]. Callers must respect the variable order:
    [v] must be strictly smaller than the root variables of [lo] and [hi]. *)

val not_ : man -> t -> t
val ( &&& ) : man -> t -> t -> t
val ( ||| ) : man -> t -> t -> t

val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor : man -> t -> t -> t
val imp : man -> t -> t -> t
val iff : man -> t -> t -> t

val implies : man -> t -> t -> bool
(** [implies m a b] decides whether [a] covers into [b] — every assignment
    satisfying [a] satisfies [b] (i.e. [imp m a b] is the constant true).
    The semantic containment test behind the linter's clause-shadowing and
    dead-ACL-rule checks. *)


val ite : man -> t -> t -> t -> t
val and_list : man -> t list -> t
val or_list : man -> t list -> t

val restrict : man -> t -> var:int -> bool -> t
(** Co-factor: fix a variable to a constant. *)

val exists : man -> int list -> t -> t
(** Existential quantification over the listed variables. *)

val forall : man -> int list -> t -> t

val rename_shift : man -> t -> int -> t
(** [rename_shift m b k] adds [k] to every variable index ([k] may be
    negative as long as no index goes negative). The relative order of
    variables is preserved, so the result is a well-formed BDD. *)

val rename_monotone : man -> t -> (int -> int) -> t
(** [rename_monotone m b f] renames every variable [v] in the support to
    [f v]. [f] must be strictly increasing on the support of [b] (checked)
    and non-negative, so the result remains ordered. *)

(** {1 Inspection} *)

val equal : t -> t -> bool
(** Semantic equality; O(1) thanks to hash-consing. *)

val compare_id : t -> t -> int
(** A total order on nodes of one manager (by unique id); semantically
    meaningless, useful for keys in maps. *)

val hash : t -> int
val is_bot : t -> bool
val is_top : t -> bool

val eval : t -> (int -> bool) -> bool
(** [eval b env] evaluates the function under the assignment [env]. *)

val support : t -> int list
(** Variables the function actually depends on, increasing order. *)

val size : t -> int
(** Number of interior nodes reachable from this root. *)

val sat_count : t -> nvars:int -> float
(** Number of satisfying assignments over the variable universe
    [0 .. nvars-1]. *)

val any_sat : t -> (int * bool) list
(** A satisfying partial assignment (variables not listed are don't-care).
    @raise Not_found if the function is unsatisfiable. *)

val pp : Format.formatter -> t -> unit
(** Render as a sum of cubes (exponential in the worst case; intended for
    small policy BDDs in tests and examples). *)

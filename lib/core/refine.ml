type stats = { iterations : int; splits : int }

let group_prefs ~prefs members =
  List.concat_map prefs members |> List.sort_uniq Int.compare

let find_partition ?(live_self = fun _ _ -> false) ?(pinned = []) ?seed
    ?(budget = Budget.infinite) (net : Device.network) ~dest ~signature
    ~prefs =
  let g = net.Device.graph in
  let n = Graph.n_nodes g in
  let part =
    match seed with
    | None -> Union_split_find.create n
    | Some s ->
      if Union_split_find.length s <> n then
        invalid_arg "Refine.find_partition: seed size mismatch";
      s
  in
  if n > 1 && not (Union_split_find.is_singleton part dest) then
    ignore (Union_split_find.split part [ dest ]);
  (* Pins seed the partition with forced singletons. Refinement only
     splits classes, so pinned nodes stay alone in the fixpoint, and a
     larger pin set always yields a (weakly) finer partition — the
     monotonicity the CEGAR repair loop (lib/repair) relies on. *)
  List.iter
    (fun u -> ignore (Union_split_find.pin part u))
    (List.sort_uniq Int.compare pinned);
  let iterations = ref 0 and splits = ref 0 in
  (* Worklist of classes to (re)examine. A node's key depends on its own
     interface signatures (fixed) and on the class ids of its successors,
     so when members move to a fresh class, only the classes of their
     graph predecessors can be affected. *)
  let pending = Queue.create () in
  let in_pending = Hashtbl.create 64 in
  let push c =
    if not (Hashtbl.mem in_pending c) then begin
      Hashtbl.replace in_pending c ();
      Queue.add c pending
    end
  in
  let refine_class cls =
    let members = Union_split_find.members part cls in
    if List.length members > 1 then begin
      let num_prefs = List.length (group_prefs ~prefs members) in
      (* The key includes BOTH directions of each incident edge: a node is
         also characterized by how its neighbors treat routes from it
         (e.g. two upstreams are different roles when downstream import
         policies assign them different preferences, even though their own
         configurations agree). *)
      let key u =
        Array.to_list (Graph.succ g u)
        |> List.map (fun v ->
               let nbr =
                 if num_prefs > 1 then v else Union_split_find.find part v
               in
               (signature u v, signature v u, nbr))
        |> List.sort_uniq compare
      in
      match Union_split_find.refine part ~cls ~key with
      | [] -> ()
      | fresh ->
        incr splits;
        push cls;
        List.iter
          (fun c ->
            push c;
            List.iter
              (fun v -> Array.iter (fun w -> push (Union_split_find.find part w)) (Graph.pred g v))
              (Union_split_find.members part c))
          fresh
    end
  in
  let signature_fixpoint () =
    List.iter push (Union_split_find.class_ids part);
    while not (Queue.is_empty pending) do
      Budget.tick budget ~phase:"refine";
      Budget.check budget ~phase:"refine";
      incr iterations;
      let c = Queue.pop pending in
      Hashtbl.remove in_pending c;
      if Union_split_find.class_size part c > 1 then refine_class c
    done
  in
  (* Intra-class edges whose transfer is {e live} (does not depend on the
     neighbor's label — static routes) cannot be dropped as dead abstract
     self-loops: a merged class would hide e.g. a static forwarding loop
     (Figure 6 misconfigured). Peel one endpoint and re-refine. *)
  let peel_live_self_edges () =
    let changed = ref false in
    List.iter
      (fun cls ->
        let members = Union_split_find.members part cls in
        if List.length members > 1 && !changed = false then begin
          let in_class = Hashtbl.create 8 in
          List.iter (fun u -> Hashtbl.replace in_class u ()) members;
          let offender =
            List.find_opt
              (fun u ->
                Array.exists
                  (fun v -> Hashtbl.mem in_class v && live_self u v)
                  (Graph.succ g u))
              members
          in
          match offender with
          | Some u ->
            ignore (Union_split_find.split part [ u ]);
            incr splits;
            changed := true
          | None -> ()
        end)
      (Union_split_find.class_ids part);
    !changed
  in
  (try
     signature_fixpoint ();
     while peel_live_self_edges () do
       signature_fixpoint ()
     done
   with Budget.Exhausted info ->
     (* surface how far the fixpoint got: the degradation report prints
        the partition size reached when the budget ran out *)
     raise
       (Budget.Exhausted
          (Budget.with_note info
             (Printf.sprintf "partition had %d/%d classes"
                (Union_split_find.num_classes part) n))));
  (part, { iterations = !iterations; splits = !splits })

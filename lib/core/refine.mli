(** Abstraction refinement (paper §5, Algorithm 1).

    Starting from the coarsest partition (destination alone, everything
    else together), repeatedly split classes whose members disagree on
    their multiset of (interface signature, neighbor) pairs. The neighbor
    is taken {e abstractly} ([f v]) for classes whose members use a single
    BGP local-preference value (the ∀∃ case) and {e concretely} ([v]) for
    classes with several (the ∀∀ case needed to bound BGP loop-prevention
    behaviors, §4.3).

    Classes may keep internal edges (e.g. the non-destination class of a
    full mesh): the corresponding abstract self-loop is {e omitted} from
    the abstract topology rather than split away. This matches the paper's
    own full-mesh result (2 nodes, 1 edge, Table 1) and is sound because a
    self-loop transfer can never be chosen: BGP's loop prevention rejects
    the re-entrant path outright, and the monotone metrics of RIP/OSPF
    make the self-offer strictly worse than the route it was derived
    from. *)

type stats = {
  iterations : int;  (** passes of the outer fixpoint loop *)
  splits : int;  (** total class splits performed *)
}

val find_partition :
  ?live_self:(int -> int -> bool) ->
  ?pinned:int list ->
  ?seed:Union_split_find.t ->
  ?budget:Budget.t ->
  Device.network ->
  dest:int ->
  signature:(int -> int -> 'k) ->
  prefs:(int -> int list) ->
  Union_split_find.t * stats
(** Computes the refined partition. [signature u v] is the directed-edge
    signature (usually {!Compile.edge_signatures}, but any type compared
    structurally works); [prefs u] the local-preference values assignable
    at [u] ({!Compile.prefs}). [live_self u v] (default: never) marks
    edges whose transfer does not depend on the neighbor's label — static
    routes; classes containing such an internal edge are split, because
    those self-loops cannot be dropped as dead.

    [pinned] (default none) seeds the partition with forced singleton
    classes: each pinned node is split out before refinement starts and —
    because refinement only ever splits — stays a singleton in the
    result. Pinning is monotone: a superset of pins produces a (weakly)
    finer partition, so a repair loop that only grows its pin set
    terminates at the discrete partition in the worst case.

    [seed] (default: the coarsest partition, destination split out)
    starts the fixpoint from an existing partition instead — the seed is
    refined {e in place} and returned. Because the loop only splits, the
    result is the coarsest {e stable} partition refining the seed: equal
    to the from-scratch partition whenever the seed is coarser than it,
    and otherwise a sound over-refinement that the incremental engine
    (lib/incr) coarsens back with a quotient-level merge pass. The
    destination and any [pinned] nodes are split out of the seed if not
    already alone.

    [budget] (default infinite) is consumed one tick per worklist
    iteration; on exhaustion [Budget.Exhausted] is re-raised with a note
    recording how many classes the partition had reached — the payload of
    the CLI's degradation report. *)

val group_prefs : prefs:(int -> int list) -> int list -> int list
(** Union of [prefs] over the members of a class — the paper's
    [prefs(û)]. *)

(** Bonsai: end-to-end control plane compression (paper §5, §7, §8).

    [compress] partitions the destinations into equivalence classes,
    builds one BDD universe for the whole network, and computes one
    abstraction per class (the paper processes classes in parallel; we
    process them sequentially and report per-class times). *)

type ec_result = {
  ec : Ecs.ec;
  abstraction : Abstraction.t;
  refine_stats : Refine.stats;
  time_s : float;  (** wall-clock compression time for this class *)
  degraded : bool;
      (** [true] when compression ran out of budget and this class fell
          back to the identity abstraction (see {!Abstraction.identity}) *)
}

type degradation = {
  deg_info : Budget.info;  (** where/when the budget ran out *)
  deg_completed : int;  (** classes fully compressed before exhaustion *)
  deg_total : int;  (** classes attempted *)
}

type summary = {
  net : Device.network;
  bdd_time_s : float;
      (** time to build the BDD universe and encode every interface
          policy for the first class (the paper's "BDD time") *)
  results : ec_result list;
  skipped_anycast : int;  (** multi-origin classes (not supported) *)
  degradation : degradation option;
      (** [Some _] iff any class fell back to the identity abstraction *)
}

val effective_prefs : Device.network -> Ecs.ec -> int -> int list
(** The preference levels refinement must account for at a node:
    {!Compile.prefs} plus, in multi-protocol networks, a [-1] sentinel
    level when administrative distance can demote the node from BGP to a
    redistributed OSPF/static route (the asymmetry needs the same ∀∀
    treatment as local preference, §4.3). Exposed so the incremental
    engine (lib/incr) computes the exact same levels as [compress_ec]. *)

val compress_ec :
  ?universe:Policy_bdd.universe ->
  ?rm_bdd:(Route_map.t option -> Bdd.t) ->
  ?pinned:int list ->
  ?budget:Budget.t ->
  Device.network ->
  Ecs.ec ->
  (ec_result, Bonsai_error.t) result
(** Compress one destination class. Never raises: an exhausted [budget]
    (default infinite; also installed on the universe's BDD manager for
    the duration of the call) is [Error (Budget_exceeded _)], an anycast
    class is [Error (Compile_error _)].

    [pinned] forces the listed concrete nodes into singleton partition
    classes before refinement (see {!Refine.find_partition}); the CEGAR
    repair loop uses it to carve fault-suspect nodes out of merged
    groups.

    [rm_bdd] is threaded to {!Compile.edge_signatures}: the incremental
    engine's policy-signature cache ([Sig_cache] in lib/incr) supplies
    it so route-maps of untouched devices are never re-encoded. It must
    encode against [universe]. *)

val compress_ec_exn :
  ?universe:Policy_bdd.universe ->
  ?rm_bdd:(Route_map.t option -> Bdd.t) ->
  ?pinned:int list ->
  ?budget:Budget.t ->
  Device.network ->
  Ecs.ec ->
  ec_result
(** Like {!compress_ec} but raising: [Budget.Exhausted] on exhaustion,
    [Invalid_argument] on an anycast class.

    The incremental recompression API lives in lib/incr ([Incr.init] /
    [Incr.recompress]) — it cannot be defined here because lib/incr
    depends on this library. *)

val role_partition :
  ?budget:Budget.t ->
  Device.network ->
  Ecs.ec ->
  (int array, Bonsai_error.t) result
(** The compressed role partition for one destination class: index [r]
    is router [r]'s group id (routers sharing an id share one abstract
    node). A thin wrapper over {!compress_ec} for consumers that only
    need the grouping — [bonsai flow --facts] prints provenance facts per
    role instead of per router through this. *)

val compress :
  ?keep_unmatched_comms:bool ->
  ?stride:int ->
  ?max_ecs:int ->
  ?domains:int ->
  ?budget:Budget.t ->
  Device.network ->
  (summary, Bonsai_error.t) result
(** Compress every destination class. For sampling large networks,
    [stride] keeps every k-th class and [max_ecs] caps how many are
    processed. [keep_unmatched_comms] selects the naive attribute
    abstraction (see {!Policy_bdd.universe_of_network}). [domains] > 1
    processes classes in parallel on that many OCaml domains (destination
    classes are disjoint, exactly the parallelism the paper exploits, §7);
    each domain owns a private BDD manager.

    With a finite [budget], classes are processed {e sequentially}
    (ignoring [domains], which would share the single budget token) and
    exhaustion degrades gracefully instead of failing: the class that ran
    out and every remaining class fall back to the identity abstraction
    (marked [degraded]; always sound — the abstract network is the
    concrete network, just without any compression benefit), and
    [summary.degradation] records where the budget went. [Error] is
    reserved for non-budget failures. *)

val compress_exn :
  ?keep_unmatched_comms:bool ->
  ?stride:int ->
  ?max_ecs:int ->
  ?domains:int ->
  ?budget:Budget.t ->
  Device.network ->
  summary
(** Like {!compress} but unwrapped (budget exhaustion still degrades
    rather than raising). *)

(** {1 Fault-sound compression (counterexample-guided repair)} *)

type hardened = {
  h_result : ec_result;
      (** the final abstraction; [degraded] iff a fallback fired *)
  h_rounds : int;
      (** soundness sweeps completed (0 if the budget died first) *)
  h_pins : int list;
      (** concrete nodes forced into singleton classes, sorted *)
  h_counterexamples : int;  (** 1-minimal failing scenarios consumed *)
  h_scenarios : int;  (** scenario checks across all sweeps *)
  h_cache_hits : int;  (** re-solves avoided by the scenario cache *)
  h_fallback : fallback;
  h_sound : bool;
      (** the final sweep found no mismatch (always true for fallbacks —
          the identity abstraction is sound by construction; [false] only
          when repair was disabled and a counterexample survived) *)
}

and fallback =
  | No_fallback
  | Budget_fallback of Budget.info
      (** the budget ran out mid-repair: identity abstraction returned *)
  | Rounds_fallback
      (** the retry count ran out: identity abstraction returned *)

type fault_sound_fn =
  ?k:int ->
  ?rounds:int ->
  ?frontier:int ->
  ?samples:int ->
  ?seed:int ->
  ?budget:Budget.t ->
  Device.network ->
  Ecs.ec ->
  (hardened, Bonsai_error.t) result

val compress_fault_sound : fault_sound_fn
(** Compression that is sound under failures, not just for the intact
    topology: compress, sweep failure scenarios up to [k] downed links
    through the soundness check, and on a mismatch pin the disagreeing
    nodes and re-refine, iterating until the sweep is clean (CEGAR). On
    budget or round exhaustion the result degrades to the identity
    abstraction — sound, compression ratio 1 — rather than ever returning
    an unsound artifact. Implemented by [Repair.harden] (lib/repair),
    which registers itself here at link time; executables that do not
    link [repro_repair] get [Error (Internal _)]. See {!Repair} for
    parameter semantics and the per-round trace. *)

val register_fault_sound : fault_sound_fn -> unit
(** Install the implementation (called by [Repair] at module
    initialization; not meant for end users). *)

val hardened_ratio : hardened -> float * float
(** (node ratio, edge ratio) of the final abstraction, as
    {!Abstraction.compression_ratio}. *)

(** {1 Reporting} *)

val mean_abs_nodes : summary -> float
val mean_abs_links : summary -> float
val stddev_abs_nodes : summary -> float
val stddev_abs_links : summary -> float
val mean_time_per_ec : summary -> float

val roles :
  ?keep_unmatched_comms:bool -> Device.network -> int
(** Number of unique router "roles": routers are identified by the vector
    of their interface policies — import/export route-maps compared
    semantically as BDDs — plus their static routes, ACLs, OSPF interface
    configuration and redistributions. Reproduces the paper's role
    counts (§8: 112 naive vs 26 semantic roles on the datacenter). *)

val explain :
  Device.network -> Ecs.ec -> int -> int -> string list
(** [explain net ec u v] — why two routers ended up in different roles for
    this destination class: human-readable differences between their
    (signature, neighbor-role) sets (policy inequality, ACLs, OSPF costs,
    static routes, preference levels, or differing neighbor roles). Empty
    when the two routers share a role. *)

val pp_degradation : Format.formatter -> degradation -> unit
(** The degradation report: phase reached, work ticks consumed (plus the
    exhaustion note, e.g. the partition size the refinement loop got to),
    and how many classes were compressed before the fallback. Elapsed
    wall-clock is deliberately omitted — the report is deterministic for a
    deterministic budget. *)

val pp_summary : Format.formatter -> summary -> unit
(** Appends {!pp_degradation} when the summary is degraded. *)

let emit (t : Abstraction.t) =
  let net = t.Abstraction.net in
  let routers = net.Device.routers in
  let ag = t.Abstraction.abs_graph in
  let n_abs = Abstraction.n_abstract t in
  let abs_routers =
    Array.init n_abs (fun a ->
        let r = routers.(Abstraction.repr_of_abs t a) in
        let nbrs = Array.to_list (Graph.succ ag a) in
        (* Each abstract session copies the representative concrete
           session's configuration for that neighbor group. *)
        let bgp_neighbors =
          List.filter_map
            (fun b ->
              match Abstraction.repr_edge t a b with
              | u, v -> (
                match Device.bgp_neighbor_config routers.(u) v with
                | Some nb -> Some (b, nb)
                | None -> None)
              | exception Not_found -> None)
            nbrs
        in
        let ospf_links =
          List.filter_map
            (fun b ->
              match Abstraction.repr_edge t a b with
              | u, v -> (
                match
                  ( Device.ospf_link_config routers.(u) v,
                    Device.ospf_link_config routers.(v) u )
                with
                | Some l, Some _ -> Some (b, l)
                | _ -> None)
              | exception Not_found -> None)
            nbrs
        in
        let acl_out =
          List.filter_map
            (fun b ->
              match Abstraction.repr_edge t a b with
              | u, v ->
                Option.map (fun acl -> (b, acl)) (Device.acl_for routers.(u) v)
              | exception Not_found -> None)
            nbrs
        in
        (* Static routes survive when their next hop has an image among
           the abstract neighbors carrying the same interface. *)
        let static_routes =
          List.filter_map
            (fun (p, nh) ->
              let target = Abstraction.f t nh in
              if Graph.has_edge ag a target then Some (p, target) else None)
            r.Device.static_routes
        in
        {
          Device.name = Graph.name ag a;
          bgp_neighbors;
          ospf_links;
          ospf_area = r.Device.ospf_area;
          static_routes;
          acl_out;
          originated =
            (if a = t.Abstraction.abs_dest then [ t.Abstraction.dest_prefix ]
             else []);
          redistribute = r.Device.redistribute;
          module_name = r.Device.module_name;
        })
  in
  { Device.graph = ag; routers = abs_routers }

let config_reduction t =
  (Device.config_lines t.Abstraction.net, Device.config_lines (emit t))

type ec_result = {
  ec : Ecs.ec;
  abstraction : Abstraction.t;
  refine_stats : Refine.stats;
  time_s : float;
  degraded : bool;
}

type degradation = {
  deg_info : Budget.info;
  deg_completed : int;
  deg_total : int;
}

type summary = {
  net : Device.network;
  bdd_time_s : float;
  results : ec_result list;
  skipped_anycast : int;
  degradation : degradation option;
}

let effective_prefs (net : Device.network) (ec : Ecs.ec) u =
  let dest = Ecs.single_origin ec in
  let p = Compile.prefs net ~dest:ec.Ecs.ec_prefix u in
  (* In multi-protocol networks, administrative distance can act as
     one more preference level: when BGP loop prevention rejects a
     router's best BGP route, it can fall back to an OSPF route while
     an identically-configured peer keeps BGP — the same asymmetry
     local preference causes within BGP (section 4.3), so it needs the
     same forall-forall treatment and node splitting. The reflection
     requires the router to (a) run BGP with an OSPF fallback (worse
     administrative distance than eBGP — static routes always win, so
     they cannot flip), (b) redistribute into BGP, (c) sit in the
     destination's IGP region, and (d) have an import that can accept
     the destination back; only then does the sentinel level below
     grow |prefs|. *)
  let r = net.Device.routers.(u) in
  let dest_r = net.Device.routers.(dest) in
  let ospf_fallback = r.Device.ospf_links <> [] in
  let redistributes =
    List.mem Multi.Ospf_into_bgp r.Device.redistribute
    || List.mem Multi.Static_into_bgp r.Device.redistribute
  in
  let same_region =
    ospf_fallback
    && (dest_r.Device.ospf_links = []
       || dest_r.Device.ospf_area = r.Device.ospf_area)
  in
  let import_could_accept =
    r.Device.bgp_neighbors <> []
    && List.exists
         (fun (_, (nb : Device.bgp_neighbor)) ->
           match nb.import_rm with
           | None -> true
           | Some rm -> (
             (* first unconditional clause decides; a conditional one
                is conservatively assumed reachable *)
             let scan = function
               | [] -> false (* implicit deny *)
               | (cl : Route_map.clause) :: _ -> (
                 match (cl.conds, cl.verdict) with
                 | [], Route_map.Permit -> true
                 | [], Route_map.Deny -> false
                 | _ :: _, _ -> true (* conditionally reachable *))
             in
             scan (Route_map.relevant rm ~dest:ec.Ecs.ec_prefix)))
         r.Device.bgp_neighbors
  in
  if redistributes && same_region && import_could_accept then -1 :: p else p

let compress_ec_exn ?universe ?rm_bdd ?pinned ?(budget = Budget.infinite)
    (net : Device.network) (ec : Ecs.ec) =
  let dest = Ecs.single_origin ec in
  let t0 = Timing.now () in
  let universe =
    match universe with
    | Some u -> u
    | None -> Policy_bdd.universe_of_network net
  in
  (* The BDD encoding of interface policies is the first phase that can
     blow up; the manager consumes the same budget as the later phases. *)
  Bdd.set_budget universe.Policy_bdd.man budget;
  Fun.protect ~finally:(fun () ->
      Bdd.set_budget universe.Policy_bdd.man Budget.infinite)
  @@ fun () ->
  let universe, signature =
    Compile.edge_signatures ~universe ?rm_bdd net ~dest:ec.Ecs.ec_prefix
  in
  let prefs_memo = Hashtbl.create 64 in
  let prefs u =
    match Hashtbl.find_opt prefs_memo u with
    | Some p -> p
    | None ->
      let p = effective_prefs net ec u in
      Hashtbl.replace prefs_memo u p;
      p
  in
  let live_self u v = (signature u v).Compile.sig_static in
  let partition, refine_stats =
    Refine.find_partition net ~dest ~live_self ?pinned ~budget ~signature
      ~prefs
  in
  let copies m =
    let cls = Union_split_find.find partition m in
    List.length
      (Refine.group_prefs ~prefs (Union_split_find.members partition cls))
  in
  let abstraction =
    Abstraction.make net ~dest ~dest_prefix:ec.Ecs.ec_prefix ~universe
      ~partition ~copies
  in
  { ec; abstraction; refine_stats; time_s = Timing.now () -. t0;
    degraded = false }

let compress_ec ?universe ?rm_bdd ?pinned ?budget (net : Device.network)
    (ec : Ecs.ec) =
  Bonsai_error.protect (fun () ->
      try compress_ec_exn ?universe ?rm_bdd ?pinned ?budget net ec
      with Invalid_argument m ->
        Bonsai_error.error (Bonsai_error.Compile_error m))

let role_partition ?budget (net : Device.network) (ec : Ecs.ec) =
  match compress_ec ?budget net ec with
  | Error _ as e -> e
  | Ok r -> Ok (Array.copy r.abstraction.Abstraction.group_of)

let identity_ec ~identity_of (ec : Ecs.ec) =
  let t0 = Timing.now () in
  let abstraction =
    Lazy.force identity_of ~dest:(Ecs.single_origin ec)
      ~dest_prefix:ec.Ecs.ec_prefix
  in
  {
    ec;
    abstraction;
    refine_stats = { Refine.iterations = 0; splits = 0 };
    time_s = Timing.now () -. t0;
    degraded = true;
  }

let compress_exn ?keep_unmatched_comms ?(stride = 1) ?max_ecs ?(domains = 1)
    ?(budget = Budget.infinite) (net : Device.network) =
  let universe0, bdd_time_s =
    Timing.time (fun () ->
        Policy_bdd.universe_of_network ?keep_unmatched_comms net)
  in
  let ecs = Ecs.compute net in
  let ecs =
    if stride <= 1 then ecs
    else List.filteri (fun i _ -> i mod stride = 0) ecs
  in
  let ecs =
    match max_ecs with
    | None -> ecs
    | Some k -> List.filteri (fun i _ -> i < k) ecs
  in
  let singles, anycast = List.partition (fun ec -> match ec.Ecs.ec_origins with [ _ ] -> true | _ -> false) ecs in
  let skipped_anycast = List.length anycast in
  let run_chunk chunk =
    (* BDD managers are not shared across domains: each worker builds its
       own universe (cheap — it only scans the configurations). *)
    let universe = Policy_bdd.universe_of_network ?keep_unmatched_comms net in
    List.map (fun ec -> compress_ec_exn ~universe net ec) chunk
  in
  if Budget.is_infinite budget then begin
    let results =
      if domains <= 1 then run_chunk singles
      else begin
        let chunks = Array.make domains [] in
        List.iteri
          (fun i ec -> chunks.(i mod domains) <- ec :: chunks.(i mod domains))
          singles;
        let workers =
          Array.map
            (fun chunk ->
              let chunk = List.rev chunk in
              Domain.spawn (fun () -> run_chunk chunk))
            chunks
        in
        Array.to_list workers |> List.concat_map Domain.join
        |> List.sort (fun a b -> Prefix.compare a.ec.Ecs.ec_prefix b.ec.Ecs.ec_prefix)
      end
    in
    { net; bdd_time_s; results; skipped_anycast; degradation = None }
  end
  else begin
    (* Budgeted runs are sequential: degradation needs a well-defined
       "first class that ran out", and the budget is a single mutable
       token not meant to be shared across domains. *)
    let total = List.length singles in
    (* Identity fallbacks use a fresh, un-budgeted universe — the
       budgeted manager may be the very thing that ran out — and share
       one skeleton across all degraded classes. *)
    let identity_of =
      lazy
        (Abstraction.identity_family net
           ~universe:(Policy_bdd.universe_of_network ?keep_unmatched_comms net))
    in
    let acc = ref [] in
    let degradation = ref None in
    let rec go = function
      | [] -> ()
      | ec :: rest -> (
        match compress_ec_exn ~universe:universe0 ~budget net ec with
        | r ->
          acc := r :: !acc;
          go rest
        | exception Budget.Exhausted info ->
          degradation :=
            Some
              {
                deg_info = info;
                deg_completed = List.length !acc;
                deg_total = total;
              };
          List.iter
            (fun ec -> acc := identity_ec ~identity_of ec :: !acc)
            (ec :: rest))
    in
    go singles;
    {
      net;
      bdd_time_s;
      results = List.rev !acc;
      skipped_anycast;
      degradation = !degradation;
    }
  end

let compress ?keep_unmatched_comms ?stride ?max_ecs ?domains ?budget net =
  Bonsai_error.protect (fun () ->
      compress_exn ?keep_unmatched_comms ?stride ?max_ecs ?domains ?budget
        net)

(* --- fault-sound compression (CEGAR repair, lib/repair) -------------- *)

type hardened = {
  h_result : ec_result;
  h_rounds : int;
  h_pins : int list;
  h_counterexamples : int;
  h_scenarios : int;
  h_cache_hits : int;
  h_fallback : fallback;
  h_sound : bool;
}

and fallback = No_fallback | Budget_fallback of Budget.info | Rounds_fallback

type fault_sound_fn =
  ?k:int ->
  ?rounds:int ->
  ?frontier:int ->
  ?samples:int ->
  ?seed:int ->
  ?budget:Budget.t ->
  Device.network ->
  Ecs.ec ->
  (hardened, Bonsai_error.t) result

(* The repair loop needs lib/faults (scenarios, soundness sweeps), which
   sits above this library; Repair (lib/repair) registers the real
   implementation at link time. A library-level forward reference, not a
   per-call hook: any executable linking repro_repair gets the loop. *)
let fault_sound_impl : fault_sound_fn ref =
  ref (fun ?k:_ ?rounds:_ ?frontier:_ ?samples:_ ?seed:_ ?budget:_ _ _ ->
      Error
        (Bonsai_error.Internal
           "compress_fault_sound: repro_repair is not linked (Repair \
            registers the implementation)"))

let register_fault_sound f = fault_sound_impl := f

let compress_fault_sound ?k ?rounds ?frontier ?samples ?seed ?budget net ec
    =
  !fault_sound_impl ?k ?rounds ?frontier ?samples ?seed ?budget net ec

let hardened_ratio h =
  Abstraction.compression_ratio h.h_result.abstraction

let float_stats f s =
  let xs = List.map f s.results in
  match xs with
  | [] -> (0.0, 0.0)
  | _ ->
    let n = float_of_int (List.length xs) in
    let mean = List.fold_left ( +. ) 0.0 xs /. n in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n
    in
    (mean, sqrt var)

let mean_abs_nodes s =
  fst (float_stats (fun r -> float_of_int (Abstraction.n_abstract r.abstraction)) s)

let stddev_abs_nodes s =
  snd (float_stats (fun r -> float_of_int (Abstraction.n_abstract r.abstraction)) s)

let mean_abs_links s =
  fst
    (float_stats
       (fun r -> float_of_int (Graph.n_links r.abstraction.Abstraction.abs_graph))
       s)

let stddev_abs_links s =
  snd
    (float_stats
       (fun r -> float_of_int (Graph.n_links r.abstraction.Abstraction.abs_graph))
       s)

let mean_time_per_ec s = fst (float_stats (fun r -> r.time_s) s)

let roles ?keep_unmatched_comms (net : Device.network) =
  let universe =
    Policy_bdd.universe_of_network ?keep_unmatched_comms net
  in
  (* A route-map's role identity: its BDD when every prefix condition is
     kept (encoded against the whole address space so no clause is
     discarded), paired with the raw prefix-lists it tests — semantically
     equal community/preference behavior collapses, prefix-filter
     differences do not. *)
  let strip_prefix_conds rm =
    List.map
      (fun (cl : Route_map.clause) ->
        {
          cl with
          Route_map.conds =
            List.filter
              (function
                | Route_map.Match_prefix _ -> false
                | Route_map.Match_community _ -> true)
              cl.conds;
        })
      rm
  in
  let prefix_lists rm =
    List.concat_map
      (fun (cl : Route_map.clause) ->
        List.filter_map
          (function
            | Route_map.Match_prefix ps -> Some (List.sort Prefix.compare ps)
            | Route_map.Match_community _ -> None)
          cl.conds)
      rm
  in
  let rm_memo : (Route_map.t option, int * Prefix.t list list) Hashtbl.t =
    Hashtbl.create 64
  in
  let rm_id rm =
    match Hashtbl.find_opt rm_memo rm with
    | Some id -> id
    | None ->
      let id =
        match rm with
        | None -> (Bdd.hash (Policy_bdd.identity universe), [])
        | Some rm ->
          ( Bdd.hash
              (Policy_bdd.encode_route_map universe (strip_prefix_conds rm)
                 ~dest:Prefix.default),
            prefix_lists rm )
      in
      Hashtbl.replace rm_memo rm id;
      id
  in
  (* A role is the *set* of interface policies a router uses (paper §8:
     "unique roles (set of policies)") plus its static routes, ACLs, OSPF
     interface costs and redistributions. Sets, not multisets: a spine with
     twelve identically-configured leaf sessions plays the same role as one
     with twenty. Site-specific numbering (OSPF area ids) is excluded. *)
  let fingerprint (r : Device.router) =
    let bgp =
      List.map
        (fun (_, (nb : Device.bgp_neighbor)) ->
          (rm_id nb.import_rm, rm_id nb.export_rm, nb.ibgp))
        r.bgp_neighbors
      |> List.sort_uniq compare
    in
    let ospf =
      List.map (fun (_, (l : Device.ospf_link)) -> l.cost) r.ospf_links
      |> List.sort_uniq compare
    in
    let acls = List.map snd r.acl_out |> List.sort_uniq compare in
    ( bgp,
      ospf,
      List.sort compare r.static_routes |> List.map fst,
      acls,
      List.sort compare r.redistribute )
  in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun r -> Hashtbl.replace seen (fingerprint r) ())
    net.routers;
  Hashtbl.length seen

let explain (net : Device.network) (ec : Ecs.ec) u v =
  let r = compress_ec_exn net ec in
  let t = r.abstraction in
  if t.Abstraction.group_of.(u) = t.Abstraction.group_of.(v) then []
  else begin
    let _, signature =
      Compile.edge_signatures ~universe:t.Abstraction.universe net
        ~dest:ec.Ecs.ec_prefix
    in
    let g = net.Device.graph in
    let name = Graph.name g in
    let entries x =
      Array.to_list (Graph.succ g x)
      |> List.map (fun w ->
             (t.Abstraction.group_of.(w), signature x w, signature w x))
      |> List.sort compare
    in
    let eu = entries u and ev = entries v in
    let diff a b = List.filter (fun e -> not (List.mem e b)) a in
    let describe who (grp, out_sig, in_sig) =
      let parts = ref [] in
      let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
      (match out_sig.Compile.sig_ospf with
      | Some (cost, _, _) -> add "OSPF cost %d" cost
      | None -> ());
      if out_sig.Compile.sig_import >= 0 then
        add "BGP session (import policy #%d, export policy #%d%s)"
          out_sig.Compile.sig_import out_sig.Compile.sig_export
          (if out_sig.Compile.sig_ibgp then ", iBGP" else "");
      if not out_sig.Compile.sig_acl then add "ACL denies the destination";
      if out_sig.Compile.sig_static then add "a static route";
      if in_sig.Compile.sig_import >= 0 then
        add "neighbor-side import policy #%d" in_sig.Compile.sig_import;
      Printf.sprintf "%s has an interface towards role %d with %s" who grp
        (match List.rev !parts with
        | [] -> "no protocol"
        | ps -> String.concat ", " ps)
    in
    let prefs_u = Compile.prefs net ~dest:ec.Ecs.ec_prefix u in
    let prefs_v = Compile.prefs net ~dest:ec.Ecs.ec_prefix v in
    let pref_note =
      if prefs_u <> prefs_v then
        [
          Printf.sprintf
            "%s may assign local preferences {%s} but %s {%s}" (name u)
            (String.concat ", " (List.map string_of_int prefs_u))
            (name v)
            (String.concat ", " (List.map string_of_int prefs_v));
        ]
      else []
    in
    pref_note
    @ List.sort_uniq compare (List.map (describe (name u)) (diff eu ev))
    @ List.sort_uniq compare (List.map (describe (name v)) (diff ev eu))
  end

let pp_degradation ppf d =
  Format.fprintf ppf
    "@[<v>DEGRADED: budget exhausted in phase %S after %d ticks%s@,\
     %d/%d destination classes compressed; the rest fall back to the@,\
     identity abstraction (abstract network = concrete network)@]"
    d.deg_info.Budget.phase d.deg_info.Budget.ticks
    (match d.deg_info.Budget.note with
    | None -> ""
    | Some n -> Printf.sprintf " (%s)" n)
    d.deg_completed d.deg_total

let pp_summary ppf s =
  let g = s.net.Device.graph in
  Format.fprintf ppf
    "@[<v>nodes=%d links=%d ecs=%d (skipped %d anycast)@,\
     abstract nodes: %.1f ± %.1f, links: %.1f ± %.1f@,\
     compression: %.1fx nodes, %.1fx links@,\
     bdd time: %.2fs, %.3fs per EC@]"
    (Graph.n_nodes g) (Graph.n_links g)
    (List.length s.results)
    s.skipped_anycast (mean_abs_nodes s) (stddev_abs_nodes s)
    (mean_abs_links s) (stddev_abs_links s)
    (float_of_int (Graph.n_nodes g) /. max 1.0 (mean_abs_nodes s))
    (float_of_int (Graph.n_links g) /. max 1.0 (mean_abs_links s))
    s.bdd_time_s (mean_time_per_ec s);
  match s.degradation with
  | None -> ()
  | Some d -> Format.fprintf ppf "@,%a" pp_degradation d

type t = {
  net : Device.network;
  dest : int;
  dest_prefix : Prefix.t;
  group_of : int array;
  groups : int list array;
  copies : int array;
  abs_of_group : int array;
  group_of_abs : int array;
  abs_graph : Graph.t;
  abs_dest : int;
  universe : Policy_bdd.universe;
}

let f t u = t.abs_of_group.(t.group_of.(u))
let n_abstract t = Graph.n_nodes t.abs_graph
let members_of_abs t a = t.groups.(t.group_of_abs.(a))

let repr_of_abs t a =
  match members_of_abs t a with
  | m :: _ -> m
  | [] -> invalid_arg "Abstraction.repr_of_abs: empty group"

let node_image t u =
  let g = t.group_of.(u) in
  List.init t.copies.(g) (fun i -> t.abs_of_group.(g) + i)

let link_image t (u, v) =
  let gu = t.group_of.(u) and gv = t.group_of.(v) in
  if gu = gv then []
  else
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if Graph.has_edge t.abs_graph a b then Some (a, b) else None)
          (node_image t v))
      (node_image t u)

(* Group-level edge representatives, computed once. *)
let group_edge_reprs (net : Device.network) group_of =
  let reprs = Hashtbl.create 256 in
  Graph.iter_edges net.graph (fun u v ->
      let key = (group_of.(u), group_of.(v)) in
      match Hashtbl.find_opt reprs key with
      | Some (u', v') -> if (u, v) < (u', v') then Hashtbl.replace reprs key (u, v)
      | None -> Hashtbl.replace reprs key (u, v));
  reprs

let make net ~dest ~dest_prefix ~universe ~partition ~copies =
  let n = Graph.n_nodes net.Device.graph in
  let group_of = Union_split_find.canonical partition in
  let n_groups = Union_split_find.num_classes partition in
  let groups = Array.make n_groups [] in
  for u = n - 1 downto 0 do
    groups.(group_of.(u)) <- u :: groups.(group_of.(u))
  done;
  let edge_reprs = group_edge_reprs net group_of in
  let copies_arr =
    Array.init n_groups (fun g ->
        match groups.(g) with
        | [] -> invalid_arg "Abstraction.make: empty group"
        | m :: _ as ms ->
          if List.mem dest ms then 1
          else max 1 (min (copies m) (List.length ms)))
  in
  (* Intra-group concrete edges yield no abstract self-loop (see
     Refine): for single-copy groups they are simply omitted; for split
     groups they become edges between distinct copies below. *)
  let abs_of_group = Array.make n_groups 0 in
  let total = ref 0 in
  Array.iteri
    (fun g c ->
      abs_of_group.(g) <- !total;
      total := !total + c)
    copies_arr;
  let n_abs = !total in
  let group_of_abs = Array.make n_abs 0 in
  Array.iteri
    (fun g c ->
      for i = 0 to c - 1 do
        group_of_abs.(abs_of_group.(g) + i) <- g
      done)
    copies_arr;
  let b = Graph.Builder.create () in
  for a = 0 to n_abs - 1 do
    let g = group_of_abs.(a) in
    let m = List.hd groups.(g) in
    let size = List.length groups.(g) in
    let copy = a - abs_of_group.(g) in
    let name =
      if copies_arr.(g) > 1 then
        Printf.sprintf "~%s(%d)#%d" (Graph.name net.Device.graph m) size copy
      else if size > 1 then
        Printf.sprintf "~%s(%d)" (Graph.name net.Device.graph m) size
      else Printf.sprintf "~%s" (Graph.name net.Device.graph m)
    in
    ignore (Graph.Builder.add_node b name)
  done;
  Hashtbl.iter
    (fun (g1, g2) _ ->
      for i = 0 to copies_arr.(g1) - 1 do
        for j = 0 to copies_arr.(g2) - 1 do
          let a1 = abs_of_group.(g1) + i and a2 = abs_of_group.(g2) + j in
          if a1 <> a2 then Graph.Builder.add_edge b a1 a2
        done
      done)
    edge_reprs;
  let abs_graph = Graph.Builder.build b in
  {
    net;
    dest;
    dest_prefix;
    group_of;
    groups;
    copies = copies_arr;
    abs_of_group;
    group_of_abs;
    abs_graph;
    abs_dest = abs_of_group.(group_of.(dest));
    universe;
  }

let identity net ~dest ~dest_prefix ~universe =
  let partition =
    Union_split_find.discrete (Graph.n_nodes net.Device.graph)
  in
  make net ~dest ~dest_prefix ~universe ~partition ~copies:(fun _ -> 1)

(* With every group a singleton and one copy each, nothing in the
   identity abstraction depends on the destination except [dest],
   [dest_prefix] and [abs_dest] — so a degraded run stamping out one
   fallback per destination class can share a single skeleton instead of
   rebuilding the (concrete-sized) abstract graph each time. *)
let identity_family net ~universe =
  let template = ref None in
  fun ~dest ~dest_prefix ->
    let t =
      match !template with
      | Some t -> t
      | None ->
        let t = identity net ~dest ~dest_prefix ~universe in
        template := Some t;
        t
    in
    { t with dest; dest_prefix; abs_dest = t.abs_of_group.(t.group_of.(dest)) }

let is_identity t =
  Array.for_all (function [ _ ] -> true | _ -> false) t.groups

let repr_edge t a1 a2 =
  let reprs = group_edge_reprs t.net t.group_of in
  match Hashtbl.find_opt reprs (t.group_of_abs.(a1), t.group_of_abs.(a2)) with
  | Some e -> e
  | None -> raise Not_found

(* Memoized variant used by the abstract SRPs (rebuilding the table per
   edge lookup would be quadratic). *)
let edge_repr_fun t =
  let reprs = group_edge_reprs t.net t.group_of in
  fun a1 a2 ->
    match Hashtbl.find_opt reprs (t.group_of_abs.(a1), t.group_of_abs.(a2)) with
    | Some e -> e
    | None -> raise Not_found

let erase_comms t (a : Bgp.attr) =
  let in_universe c =
    Array.exists (fun c' -> c' = c) t.universe.Policy_bdd.comms
  in
  { a with Bgp.comms = List.filter in_universe a.comms }

let h_attr t ~fr (a : Bgp.attr) =
  { (erase_comms t a) with Bgp.path = List.map fr a.path }

let bgp_srp ?loop_prevention t =
  let repr = edge_repr_fun t in
  (* The abstract policy is the representative concrete policy composed
     with the attribute abstraction h: communities outside the BDD
     universe (set but never matched anywhere) are erased, so abstract
     attributes are exactly the h-images of concrete ones. *)
  let policy a1 a2 =
    let u, v = repr a1 a2 in
    let p = Compile.bgp_policy t.net ~dest:t.dest_prefix u v in
    fun a -> Option.map (erase_comms t) (p a)
  in
  Bgp.make ?loop_prevention ~tie_filter:(Compile.matched_comms t.net) ~policy
    t.abs_graph ~dest:t.abs_dest

let multi_srp t =
  let repr = edge_repr_fun t in
  let r = t.net.Device.routers in
  let ospf_link a1 a2 =
    let u, v = repr a1 a2 in
    match
      (Device.ospf_link_config r.(u) v, Device.ospf_link_config r.(v) u)
    with
    | Some l, Some _ -> Some l
    | _ -> None
  in
  let bgp_nb a1 a2 =
    let u, v = repr a1 a2 in
    match
      (Device.bgp_neighbor_config r.(u) v, Device.bgp_neighbor_config r.(v) u)
    with
    | Some nb, Some _ -> Some nb
    | _ -> None
  in
  let statics = ref [] in
  Graph.iter_edges t.abs_graph (fun a1 a2 ->
      let u, v = repr a1 a2 in
      if List.mem v (Device.static_next_hops r.(u) ~dest:t.dest_prefix) then
        statics := (a1, a2) :: !statics);
  let dest_r = r.(t.dest) in
  let origin_protocols =
    (if dest_r.Device.bgp_neighbors <> [] then [ Multi.P_ebgp ] else [])
    @ (if dest_r.Device.ospf_links <> [] then [ Multi.P_ospf ] else [])
  in
  let origin_protocols =
    if origin_protocols = [] then [ Multi.P_ebgp ] else origin_protocols
  in
  Multi.make
    ~ospf_cost:(fun a1 a2 ->
      match ospf_link a1 a2 with Some l -> l.Device.cost | None -> 1)
    ~ospf_area:(fun a -> r.(repr_of_abs t a).Device.ospf_area)
    ~ospf_enabled:(fun a1 a2 -> Option.is_some (ospf_link a1 a2))
    ~bgp_enabled:(fun a1 a2 -> Option.is_some (bgp_nb a1 a2))
    ~ibgp:(fun a1 a2 ->
      match bgp_nb a1 a2 with Some nb -> nb.Device.ibgp | None -> false)
    ~bgp_policy:(fun a1 a2 ->
      let u, v = repr a1 a2 in
      let p = Compile.bgp_policy t.net ~dest:t.dest_prefix u v in
      fun a -> Option.map (erase_comms t) (p a))
    ~static_routes:!statics
    ~redistribute:(fun a -> r.(repr_of_abs t a).Device.redistribute)
    ~bgp_tie_filter:(Compile.matched_comms t.net)
    ~origin_protocols t.abs_graph ~dest:t.abs_dest

let compression_ratio t =
  let n = float_of_int (Graph.n_nodes t.net.Device.graph) in
  let e = float_of_int (max 1 (Graph.n_links t.net.Device.graph)) in
  let n' = float_of_int (n_abstract t) in
  let e' = float_of_int (max 1 (Graph.n_links t.abs_graph)) in
  (n /. n', e /. e')

let pp_summary ppf t =
  let rn, re = compression_ratio t in
  Format.fprintf ppf
    "%a: %d/%d nodes, %d/%d links (%.1fx / %.1fx)" Prefix.pp t.dest_prefix
    (Graph.n_nodes t.net.Device.graph)
    (n_abstract t)
    (Graph.n_links t.net.Device.graph)
    (Graph.n_links t.abs_graph)
    rn re

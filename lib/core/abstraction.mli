(** Network abstractions (paper §4): the result of compression for one
    destination equivalence class.

    An abstraction partitions the concrete nodes into {e groups} with
    equal transfer behavior; each group becomes one abstract node — except
    groups whose members use several BGP local-preference values, which
    are split into [min(|prefs|, |members|)] abstract {e copies} (the
    intermediate network [SRP‾] of §4.3: the concrete-to-copy mapping is
    solution-dependent). The abstract topology has an edge between two
    abstract nodes iff some pair of their concrete members is adjacent. *)

type t = {
  net : Device.network;
  dest : int;
  dest_prefix : Prefix.t;
  group_of : int array;  (** concrete node -> group id *)
  groups : int list array;  (** group id -> sorted members *)
  copies : int array;  (** group id -> number of abstract copies, >= 1 *)
  abs_of_group : int array;  (** group id -> first abstract node id *)
  group_of_abs : int array;  (** abstract node id -> its group *)
  abs_graph : Graph.t;
  abs_dest : int;
  universe : Policy_bdd.universe;
}

val make :
  Device.network ->
  dest:int ->
  dest_prefix:Prefix.t ->
  universe:Policy_bdd.universe ->
  partition:Union_split_find.t ->
  copies:(int -> int) ->
  t
(** Build the abstract network from a refined partition. [copies] gives
    the number of abstract copies for a partition class (keyed by a member
    node); classes containing the destination always get one copy.
    Concrete edges between members of one group produce no abstract
    self-loop (they are dead transfers — see {!Refine}); between copies of
    a split group they become inter-copy edges. *)

val identity :
  Device.network ->
  dest:int ->
  dest_prefix:Prefix.t ->
  universe:Policy_bdd.universe ->
  t
(** The identity abstraction: the discrete partition (every node its own
    group, one copy each), so the abstract network {e is} the concrete
    network. Trivially sound — it is the degradation fallback when
    compression runs out of budget. *)

val identity_family :
  Device.network ->
  universe:Policy_bdd.universe ->
  dest:int ->
  dest_prefix:Prefix.t ->
  t
(** [identity_family net ~universe] is a constructor of per-destination
    identity abstractions that builds the (concrete-sized) skeleton only
    once and stamps [dest]/[dest_prefix]/[abs_dest] per call — a degraded
    [compress] over many destination classes is O(network) once, not per
    class. *)

val is_identity : t -> bool
(** Every group is a singleton (hence one copy each): the abstract
    network is the concrete network. Holds for {!identity} and for any
    refinement that pinned every node (see {!Refine.find_partition}). *)

val f : t -> int -> int
(** The topology abstraction [f] on nodes (for split groups: the first
    copy; the per-solution refinement picks actual copies). *)

val n_abstract : t -> int
val members_of_abs : t -> int -> int list
val repr_of_abs : t -> int -> int
(** The least concrete member, used as the group representative. *)

val node_image : t -> int -> int list
(** Every abstract copy of the node's group. Failing a concrete node is
    modeled (conservatively) by failing all of them; with one copy this is
    just [[f t u]]. *)

val link_image : t -> int * int -> (int * int) list
(** The abstract edges standing for a concrete edge [(u, v)]: all
    copy-pairs of the two groups that are adjacent in the abstract
    topology. Empty for intra-group links (they have no abstract
    counterpart). An abstract edge represents {e every} concrete edge
    between the two groups, so failing the image of one concrete link fails
    more than that link — exactly the lossiness {!Soundness} (lib/faults)
    measures per failure scenario (paper §9 limitation). *)

val repr_edge : t -> int -> int -> int * int
(** [repr_edge t û v̂] is a concrete edge [(u, v)] with [u 7→ û], [v 7→ v̂]
    (groups taken up to copies). @raise Not_found if no such edge.
    Rebuilds the representative table on every call — use
    {!edge_repr_fun} for repeated lookups. *)

val edge_repr_fun : t -> int -> int -> int * int
(** Memoized {!repr_edge}: builds the representative table once and
    returns the lookup closure. @raise Not_found as {!repr_edge}. *)

val h_attr : t -> fr:(int -> int) -> Bgp.attr -> Bgp.attr
(** The attribute abstraction [h] for BGP (§4.3 and §8):
    [(lp, tags, path) ↦ (lp, tags − unused, fr(path))] — communities
    outside the BDD universe are erased, the AS path is mapped node-wise
    through the given node mapping (usually {!f}, or a solution-specific
    refinement). *)

val bgp_srp : ?loop_prevention:bool -> t -> Bgp.attr Srp.t
(** The abstract BGP SRP: policies are taken from representative concrete
    edges (sound by transfer-equivalence of the refined partition). *)

val multi_srp : t -> Multi.attr Srp.t
(** The abstract multi-protocol SRP, mapping each protocol's per-edge
    configuration through representative edges. *)

val compression_ratio : t -> float * float
(** (node ratio, edge ratio): concrete size over abstract size, counting
    undirected links. *)

val pp_summary : Format.formatter -> t -> unit

(** The data plane: per-router forwarding tables and packet tracing.

    Batfish "first simulates the control plane to produce the data plane"
    (paper §8) and then answers packet-level queries on it. This module is
    that step: it solves the SRP of every destination class and assembles,
    for each router, a longest-prefix-match FIB mapping destination
    prefixes to ECMP next-hop sets — with each interface's outbound ACL
    folded in, so the emitted table is what the device would actually
    forward on. Packets are then traced hop by hop.

    Built either from a concrete network or from a compressed one (one
    abstract data plane per destination class is meaningless — instead,
    {!of_network} accepts any configured network, so the emitted abstract
    configurations of {!Abstract_config} work directly).

    The per-class compiler {!compile_ec} is the unit the differ
    ({!Dp_diff}) and the bisimulation checker ({!Dp_bisim}) recompile
    selectively. *)

type entry = {
  e_prefix : Prefix.t;  (** the destination class the entry matches *)
  e_next_hops : int list;  (** ECMP next hops the ACLs permit *)
  e_acl_dropped : int list;
      (** solution next hops removed because the router's outbound ACL on
          that interface denies the destination; [e_next_hops = []] with
          a non-empty [e_acl_dropped] is an ACL-induced blackhole *)
}

type class_fib = {
  cf_prefix : Prefix.t;
  cf_origin : int;  (** the class's (single) destination router *)
  cf_entries : (int * entry) list;  (** router -> entry, sorted by router *)
}
(** The forwarding state one destination class contributes: at most one
    FIB entry per router. *)

type t

type hop_result =
  | Delivered of int list  (** the path taken, source first *)
  | Dropped of int list  (** no FIB entry at the last node of the path *)
  | Looped of int list  (** the path revisits a node *)

val detect_protocol : Device.network -> [ `Bgp | `Multi ]
(** [`Multi] iff any router configures OSPF interfaces, static routes or
    redistribution — the protocol family under which the FIBs should be
    compiled to reflect every route source. *)

val compile_ec :
  ?protocol:[ `Bgp | `Multi ] ->
  ?budget:Budget.t ->
  Device.network ->
  Ecs.ec ->
  [ `Compiled of class_fib | `Anycast | `Unsolved ]
(** Solve one destination class's SRP and fold the ACLs into its
    forwarding entries. [`Anycast] for multi-origin classes (no FIB),
    [`Unsolved] when the control plane diverges. Consumes one budget tick
    per call and raises [Budget.Exhausted] (for the caller to convert)
    when the allowance runs out mid-solve. *)

val of_network :
  ?protocol:[ `Bgp | `Multi ] ->
  ?max_ecs:int ->
  ?budget:Budget.t ->
  Device.network ->
  t
(** Solve every (single-origin) destination class and build the FIBs.
    Classes whose control plane diverges contribute no entries and are
    listed in {!unknown_classes}. *)

val fib : t -> int -> (Prefix.t * int list) list
(** A router's forwarding table: prefix, permitted next hops; sorted by
    prefix. *)

val fib_entries : t -> int -> entry list
(** Like {!fib} but with the ACL-drop detail per entry. *)

val lookup : t -> int -> Ipv4.t -> int list
(** Longest-prefix-match next hops for an address at a router ([[]] if
    none). *)

val trace : t -> src:int -> Ipv4.t -> hop_result
(** Follow the FIBs from [src] (first next-hop at each router) until the
    address's destination router, a drop, or a loop. *)

val trace_all : t -> src:int -> Ipv4.t -> hop_result list
(** Like {!trace} but following {e every} next hop (ECMP); one result per
    distinct path, depth-first order. *)

val walk :
  all:bool ->
  lookup:(int -> int list) ->
  dest:int option ->
  int ->
  hop_result list
(** The underlying FIB walk over an arbitrary lookup function (used by
    {!Dp_bisim} to trace single-class and abstract FIBs). *)

val n_entries : t -> int
(** Total number of FIB entries across all routers. *)

val ecs_solved : t -> int

val unknown_classes : t -> Prefix.t list
(** Classes with no forwarding state because their control plane
    diverged — reported, never silently omitted. *)

(** {1 Address-set queries (the NoD-style analysis)} *)

val addresses_via : t -> int -> int -> Addr_set.t
(** The set of destination addresses router [u] forwards to neighbor
    [v] — the union of the governing ranges of every class whose FIB entry
    at [u] lists [v] as a next hop. *)

val addresses_delivered : t -> src:int -> dst:int -> Addr_set.t
(** "All packets that can traverse between source and destination" (the
    paper's Batfish query): destination addresses originated at [dst] that
    traffic entering at [src] actually reaches (along at least one ECMP
    path). *)

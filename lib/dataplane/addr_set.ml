(* One shared manager: address sets from different call sites stay
   comparable by pointer. Variable i is bit i of the address counting from
   the most significant, matching Prefix/Ipv4 bit order. *)
let man = Bdd.man ()

type t = Bdd.t

let empty = Bdd.bot
let full = Bdd.top

let of_prefix (p : Prefix.t) =
  let acc = ref Bdd.top in
  for i = p.Prefix.len - 1 downto 0 do
    let v = Bdd.var man i in
    acc := Bdd.and_ man (if Prefix.bit p i then v else Bdd.not_ man v) !acc
  done;
  !acc

let of_prefixes ps = List.fold_left (fun acc p -> Bdd.or_ man acc (of_prefix p)) empty ps

let union = Bdd.or_ man
let inter = Bdd.and_ man
let diff a b = Bdd.and_ man a (Bdd.not_ man b)
let complement = Bdd.not_ man
let mem a t = Bdd.eval t (fun i -> Ipv4.bit a i)
let is_empty = Bdd.is_bot
let equal = Bdd.equal
let count t = Bdd.sat_count t ~nvars:32

let choose t =
  match Bdd.any_sat t with
  | exception Not_found -> None
  | partial ->
    let bits = ref 0 in
    List.iter
      (fun (i, b) -> if b then bits := !bits lor (1 lsl (31 - i)))
      partial;
    Some (Ipv4.of_int32_bits !bits)

let to_prefixes t =
  (* Walk the prefix tree, emitting a prefix whenever the remaining set is
     full below this point. *)
  let rec go t addr len acc =
    if Bdd.is_bot t then acc
    else if Bdd.is_top t then
      Prefix.make (Ipv4.of_int32_bits addr) len :: acc
    else if len >= 32 then Prefix.make (Ipv4.of_int32_bits addr) 32 :: acc
    else begin
      let lo = Bdd.restrict man t ~var:len false in
      let hi = Bdd.restrict man t ~var:len true in
      let acc = go lo addr (len + 1) acc in
      go hi (addr lor (1 lsl (31 - len))) (len + 1) acc
    end
  in
  go t 0 0 [] |> List.sort Prefix.compare

let pp ppf t =
  match to_prefixes t with
  | [] -> Format.pp_print_string ppf "{}"
  | ps ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Prefix.pp)
      ps

(** Differential data-plane compilation: the exact set of FIB entries a
    configuration change adds, removes or modifies — the pre-deployment
    change-review question, answered incrementally.

    Composes {!Dataplane.compile_ec} with lib/incr's clean-class proof
    ({!Incr.solution_unchanged}): destination classes whose SRP inputs
    are provably unchanged across the delta are {e reused} without
    solving anything (the edge signature includes the per-edge ACL
    verdict, so the proof covers the data-plane fold too); only dirty
    classes are recompiled — on both networks — and diffed router by
    router. *)

type change_kind = Added | Removed | Modified

type change = {
  c_router : int;
  c_prefix : Prefix.t;
  c_kind : change_kind;
  c_old : Dataplane.entry option;  (** [None] iff [Added] *)
  c_new : Dataplane.entry option;  (** [None] iff [Removed] *)
}

type report = {
  dp_deltas : Delta.t list;
  dp_classes : int;  (** single-origin classes examined *)
  dp_reused : int;  (** classes proven unchanged, not recompiled *)
  dp_recompiled : int;  (** classes solved on both networks and diffed *)
  dp_anycast : int;  (** multi-origin classes skipped (no FIB) *)
  dp_full_rebuild : bool;
      (** no reuse was possible: a node-level delta, or no signature
          cache compatible with both networks *)
  dp_changes : change list;  (** sorted by (prefix, router) *)
  dp_unknown : Prefix.t list;
      (** classes with no verdict — budget exhausted or control plane
          diverged; reported, never silently omitted *)
  dp_degradation : Bonsai_api.degradation option;
      (** [Some _] iff [dp_unknown] is non-empty *)
  dp_time_s : float;
}

val run :
  ?budget:Budget.t ->
  ?cache:Sig_cache.t ->
  ?protocol:[ `Bgp | `Multi ] ->
  old_net:Device.network ->
  new_net:Device.network ->
  Delta.t list ->
  (report, Bonsai_error.t) result
(** Diff the data planes of two networks related by [deltas]
    (typically [Delta.diff old_net new_net]). [cache] — e.g. a warm
    {!Incr.sig_cache} — enables class reuse when it is
    {!Sig_cache.compatible} with both networks; without one, a cache is
    built from [old_net]. Reuse is disabled (but recompilation still
    per-class) under topology deltas, and wholesale under node-level
    deltas or cache incompatibility ([dp_full_rebuild]). *)

val changed : report -> bool
(** Any FIB entry added, removed or modified. Note deltas may be
    non-empty while the data plane is identical (e.g. an ACL edit not
    covering any originated prefix). *)

val counts : report -> int * int * int
(** (added, removed, modified) entry counts. *)

val kind_string : change_kind -> string

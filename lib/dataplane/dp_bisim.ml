(* Data-plane bisimulation: the paper's control-plane bisimulation
   (Figure 4) implies that concrete and compressed networks agree on the
   stable solution of every destination class — so the forwarding tables
   compiled from those solutions must agree too, up to the topology
   abstraction f. This module spot-checks exactly that consequence: per
   class, compile the concrete class FIB and the abstract class FIB (ACLs
   folded through representative edges on the abstract side) and trace
   the class's address from every role representative through both.
   Delivery, drop and loop behavior must coincide; the first divergence
   is returned as a typed (router, prefix, path) witness. *)

type refutation = {
  rf_router : int;  (** the role representative whose traces diverge *)
  rf_prefix : Prefix.t;
  rf_concrete : Dataplane.hop_result;
  rf_abstract : Dataplane.hop_result;
}

exception Found of refutation

type verdict =
  | Equivalent of { classes : int; traces : int }
  | Refuted of refutation
  | Incomplete of {
      classes : int;
      traces : int;
      unknown : Prefix.t list;
      info : Budget.info;
    }

(* Outcome summary of the ECMP path set from one router: does any path
   deliver / drop / loop? Comparing summaries (not raw paths) is what
   makes the check robust to the legitimate differences bisimilar FIBs
   may show — ECMP enumeration order, intra-group hops that vanish
   under f. Computed as a colored DFS over the forwarding relation in
   O(nodes + edges) per class: enumerating ECMP paths (à la trace_all)
   is exponential in path diversity and melts down on the WAN. The
   three flags are exact graph properties — a path delivers iff it
   reaches [dest], drops iff it reaches a router with no next hop, and
   loops iff it enters a cycle (a gray-node hit during the DFS
   witnesses a real cycle through that node). *)
let outcome_flags ~lookup ~dest ~n =
  let memo = Array.make n None in
  let on_stack = Array.make n false in
  let rec go u =
    if u = dest then (true, false, false)
    else
      match memo.(u) with
      | Some f -> f
      | None ->
        if on_stack.(u) then (false, false, true)
        else (
          on_stack.(u) <- true;
          let f =
            match lookup u with
            | [] -> (false, true, false)
            | nhs ->
              List.fold_left
                (fun (d, r, l) v ->
                  let d', r', l' = go v in
                  (d || d', r || r', l || l'))
                (false, false, false) nhs
          in
          on_stack.(u) <- false;
          memo.(u) <- Some f;
          f)
  in
  go

let lookup_of_class (cf : Dataplane.class_fib) u =
  match List.assoc_opt u cf.cf_entries with
  | Some e -> e.Dataplane.e_next_hops
  | None -> []

(* The abstract class FIB: solve the abstract SRP and fold the ACLs of
   representative concrete edges into the abstract next hops (sound
   because transfer-equivalence of the refined partition makes every
   member edge's ACL verdict for this destination equal). *)
let abstract_lookup ~protocol ?budget (t : Abstraction.t) =
  let net = t.Abstraction.net in
  let repr_edge = Abstraction.edge_repr_fun t in
  let permits u_hat v_hat =
    match repr_edge u_hat v_hat with
    | u, v ->
      Acl.permits
        (Device.acl_for net.Device.routers.(u) v)
        t.Abstraction.dest_prefix
    | exception Not_found -> true
  in
  let of_sol (type a) (sol : a Solution.t) u_hat =
    List.filter (permits u_hat) (List.map snd (Solution.fwd sol u_hat))
  in
  match protocol with
  | `Bgp -> (
    match Solver.solve ?budget (Abstraction.bgp_srp t) with
    | Ok (sol, _) -> `Solved (of_sol sol)
    | Error (`Budget (info, _)) -> raise (Budget.Exhausted info)
    | Error (`Diverged _) -> `Diverged)
  | `Multi -> (
    match Solver.solve ?budget (Abstraction.multi_srp t) with
    | Ok (sol, _) -> `Solved (of_sol sol)
    | Error (`Budget (info, _)) -> raise (Budget.Exhausted info)
    | Error (`Diverged _) -> `Diverged)

(* One class: trace from every role representative through both FIBs.
   [`Ok traces] | [`Mismatch refutation] | [`Unknown] (concrete control
   plane diverged — nothing to compare against). *)
let check_class ~protocol ?budget (net : Device.network)
    (r : Bonsai_api.ec_result) =
  let t = r.Bonsai_api.abstraction in
  let ec = r.Bonsai_api.ec in
  if Abstraction.is_identity t then
    (* the identity abstraction IS the concrete network; its data plane
       is the concrete data plane by construction *)
    `Ok 0
  else
    match Dataplane.compile_ec ~protocol ?budget net ec with
    | `Anycast -> `Ok 0
    | `Unsolved -> `Unknown
    | `Compiled cf -> (
      let concrete_lookup = lookup_of_class cf in
      let abs_lookup =
        match abstract_lookup ~protocol ?budget t with
        | `Solved l -> l
        | `Diverged ->
          (* the abstract control plane has no stable solution where the
             concrete one does: every abstract trace drops immediately,
             so the per-representative comparison below refutes with the
             concrete delivery as witness *)
          fun _ -> []
      in
      let concrete_flags =
        outcome_flags ~lookup:concrete_lookup
          ~dest:cf.Dataplane.cf_origin
          ~n:(Graph.n_nodes net.Device.graph)
      in
      let abs_flags =
        outcome_flags ~lookup:abs_lookup ~dest:t.Abstraction.abs_dest
          ~n:(Abstraction.n_abstract t)
      in
      let refutation = ref None in
      let traces = ref 0 in
      let n_abs = Abstraction.n_abstract t in
      let u_hat = ref 0 in
      while !refutation = None && !u_hat < n_abs do
        let rep = Abstraction.repr_of_abs t !u_hat in
        traces := !traces + 2;
        if concrete_flags rep <> abs_flags (Abstraction.f t rep) then (
          (* the summaries diverge; materialize one witness path per
             side (first ECMP branch — enumeration is only safe now
             that we know the walk is worth showing) *)
          let first ~lookup ~dest src =
            List.hd (Dataplane.walk ~all:false ~lookup ~dest src)
          in
          refutation :=
            Some
              {
                rf_router = rep;
                rf_prefix = ec.Ecs.ec_prefix;
                rf_concrete =
                  first ~lookup:concrete_lookup
                    ~dest:(Some cf.Dataplane.cf_origin) rep;
                rf_abstract =
                  first ~lookup:abs_lookup
                    ~dest:(Some t.Abstraction.abs_dest)
                    (Abstraction.f t rep);
              });
        incr u_hat
      done;
      match !refutation with
      | Some rf -> `Mismatch rf
      | None -> `Ok !traces)

let check ?protocol ?budget (net : Device.network)
    (results : Bonsai_api.ec_result list) =
  let protocol =
    match protocol with
    | Some p -> p
    | None -> Dataplane.detect_protocol net
  in
  let classes = ref 0 and traces = ref 0 in
  let unknown = ref [] in
  let stop = ref None in
  (try
     List.iter
       (fun (r : Bonsai_api.ec_result) ->
         match check_class ~protocol ?budget net r with
         | `Ok n ->
           incr classes;
           traces := !traces + n
         | `Unknown ->
           incr classes;
           unknown := r.Bonsai_api.ec.Ecs.ec_prefix :: !unknown
         | `Mismatch rf -> raise (Found rf))
       results
   with
  | Found rf -> stop := Some (`Refuted rf)
  | Budget.Exhausted info -> stop := Some (`Budget info));
  match !stop with
  | Some (`Refuted rf) -> Refuted rf
  | Some (`Budget info) ->
    (* the class that ran out and every class not yet reached are
       unknown — reported, never silently omitted *)
    let seen = !classes + List.length !unknown in
    let rest =
      List.filteri (fun i _ -> i >= seen) results
      |> List.map (fun (r : Bonsai_api.ec_result) ->
             r.Bonsai_api.ec.Ecs.ec_prefix)
    in
    Incomplete
      {
        classes = !classes;
        traces = !traces;
        unknown = List.rev_append !unknown rest;
        info;
      }
  | None ->
    if !unknown = [] then Equivalent { classes = !classes; traces = !traces }
    else
      Incomplete
        {
          classes = !classes;
          traces = !traces;
          unknown = List.rev !unknown;
          info = Budget.info Budget.infinite ~phase:"dataplane-bisim" ();
        }

let pp_path names ppf path =
  Format.pp_print_string ppf (String.concat " -> " (List.map names path))

let pp_outcome names ppf = function
  | Dataplane.Delivered p ->
    Format.fprintf ppf "delivered via %a" (pp_path names) p
  | Dataplane.Dropped p -> Format.fprintf ppf "dropped at %a" (pp_path names) p
  | Dataplane.Looped p -> Format.fprintf ppf "loops %a" (pp_path names) p

let refutation_string (net : Device.network) (t : Abstraction.t) rf =
  let names u = Graph.name net.Device.graph u in
  let abs_names u_hat =
    Printf.sprintf "~%s(%d)"
      (names (Abstraction.repr_of_abs t u_hat))
      u_hat
  in
  Format.asprintf
    "data planes diverge at router %s for %a: concrete %a, abstract %a"
    (names rf.rf_router) Prefix.pp rf.rf_prefix
    (pp_outcome names) rf.rf_concrete
    (pp_outcome abs_names) rf.rf_abstract

(** Sets of IPv4 addresses as BDDs over the 32 address bits.

    This is the header-space flavor of analysis NoD performs for Batfish
    (paper §8): "compute all possible packets that can traverse between
    source and destination nodes". Address sets are closed under the usual
    Boolean operations, membership is a 32-step walk, and counting is a
    BDD satisfy-count.

    All sets share one global manager, so {!equal} is pointer equality. *)

type t

val empty : t
val full : t
val of_prefix : Prefix.t -> t
val of_prefixes : Prefix.t list -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
val mem : Ipv4.t -> t -> bool
val is_empty : t -> bool
val equal : t -> t -> bool

val count : t -> float
(** Number of addresses (up to 2^32, hence a float). *)

val choose : t -> Ipv4.t option
(** Some address in the set, if any. *)

val to_prefixes : t -> Prefix.t list
(** A minimal disjoint prefix cover of the set, sorted. Worst-case
    exponential in fragmentation; fine for route-table-shaped sets. *)

val pp : Format.formatter -> t -> unit

type entry = {
  e_prefix : Prefix.t;
  e_next_hops : int list;
  e_acl_dropped : int list;
}

type class_fib = {
  cf_prefix : Prefix.t;
  cf_origin : int;
  cf_entries : (int * entry) list;
}

type t = {
  net : Device.network;
  fibs : entry Prefix_trie.t array;  (** one trie per router *)
  origin : (Prefix.t * int) list;  (** class prefix -> destination router *)
  mutable entries : int;
  mutable ecs : int;
  mutable unknown : Prefix.t list;
}

type hop_result =
  | Delivered of int list
  | Dropped of int list
  | Looped of int list

let detect_protocol (net : Device.network) =
  if
    Array.exists
      (fun (r : Device.router) ->
        r.Device.ospf_links <> []
        || r.Device.static_routes <> []
        || r.Device.redistribute <> [])
      net.Device.routers
  then `Multi
  else `Bgp

(* The data-plane ACL fold: a packet towards [prefix] leaving [u] for
   next hop [v] is dropped by [u]'s outbound ACL on that interface. The
   control plane already folds the same ACL into BGP route propagation
   (Compile.bgp_policy), but OSPF- and static-derived next hops carry no
   such filter — the FIB is where the two planes meet. [None] permits,
   so ACL-free networks are untouched. *)
let split_acl (net : Device.network) u prefix nhs =
  List.partition
    (fun v -> Acl.permits (Device.acl_for net.Device.routers.(u) v) prefix)
    nhs

let compile_ec ?(protocol = `Bgp) ?budget (net : Device.network)
    (ec : Ecs.ec) =
  match ec.Ecs.ec_origins with
  | [ dest ] -> (
    Option.iter (fun b -> Budget.tick b ~phase:"dataplane") budget;
    let build (type a) (sol : a Solution.t) =
      let n = Graph.n_nodes net.Device.graph in
      let entries = ref [] in
      for u = n - 1 downto 0 do
        match Solution.fwd sol u with
        | [] -> ()
        | fwd ->
          let permitted, dropped =
            split_acl net u ec.Ecs.ec_prefix (List.map snd fwd)
          in
          entries :=
            ( u,
              {
                e_prefix = ec.Ecs.ec_prefix;
                e_next_hops = permitted;
                e_acl_dropped = dropped;
              } )
            :: !entries
      done;
      `Compiled
        {
          cf_prefix = ec.Ecs.ec_prefix;
          cf_origin = dest;
          cf_entries = !entries;
        }
    in
    let budget_stop (info : Budget.info) = raise (Budget.Exhausted info) in
    match protocol with
    | `Bgp -> (
      match
        Solver.solve ?budget
          (Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix)
      with
      | Ok (sol, _) -> build sol
      | Error (`Budget (info, _)) -> budget_stop info
      | Error (`Diverged _) -> `Unsolved)
    | `Multi -> (
      match
        Solver.solve ?budget
          (Compile.multi_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix)
      with
      | Ok (sol, _) -> build sol
      | Error (`Budget (info, _)) -> budget_stop info
      | Error (`Diverged _) -> `Unsolved))
  | _ -> `Anycast

let of_network ?(protocol = `Bgp) ?max_ecs ?budget (net : Device.network) =
  let n = Graph.n_nodes net.Device.graph in
  let t =
    {
      net;
      fibs = Array.init n (fun _ -> Prefix_trie.create ());
      origin = [];
      entries = 0;
      ecs = 0;
      unknown = [];
    }
  in
  let ecs = Ecs.compute net in
  let ecs =
    match max_ecs with
    | None -> ecs
    | Some k -> List.filteri (fun i _ -> i < k) ecs
  in
  let origins = ref [] in
  List.iter
    (fun ec ->
      match compile_ec ~protocol ?budget net ec with
      | `Compiled cf ->
        t.ecs <- t.ecs + 1;
        origins := (cf.cf_prefix, cf.cf_origin) :: !origins;
        List.iter
          (fun (u, e) ->
            Prefix_trie.add t.fibs.(u) e.e_prefix e;
            t.entries <- t.entries + 1)
          cf.cf_entries
      | `Unsolved ->
        (match ec.Ecs.ec_origins with
        | [ dest ] -> origins := (ec.Ecs.ec_prefix, dest) :: !origins
        | _ -> ());
        t.unknown <- ec.Ecs.ec_prefix :: t.unknown
      | `Anycast -> ())
    ecs;
  { t with origin = !origins; unknown = List.rev t.unknown }

let fib t u =
  Prefix_trie.bindings t.fibs.(u)
  |> List.map (fun (_, e) -> (e.e_prefix, e.e_next_hops))
  |> List.sort (fun (p, _) (q, _) -> Prefix.compare p q)

let fib_entries t u =
  Prefix_trie.bindings t.fibs.(u)
  |> List.map snd
  |> List.sort (fun e e' -> Prefix.compare e.e_prefix e'.e_prefix)

let lookup t u addr =
  match Prefix_trie.lpm t.fibs.(u) addr with
  | Some (_, e) -> e.e_next_hops
  | None -> []

let dest_of t addr =
  List.fold_left
    (fun best (p, d) ->
      if Prefix.mem addr p then
        match best with
        | Some ((q : Prefix.t), _) when q.Prefix.len >= p.Prefix.len -> best
        | _ -> Some (p, d)
      else best)
    None t.origin
  |> Option.map snd

(* Shared FIB walk: [lookup u] gives the next hops for the traced
   address at [u]; [dest] is its destination router (None: no class
   covers it — every walk ends in a drop). Used both by the whole-table
   tracer below and by the per-class traces of {!Dp_bisim}. *)
let walk ~all ~lookup ~dest src =
  let rec go u path seen =
    if Some u = dest then [ Delivered (List.rev (u :: path)) ]
    else if List.mem u seen then [ Looped (List.rev (u :: path)) ]
    else
      match lookup u with
      | [] -> [ Dropped (List.rev (u :: path)) ]
      | nh :: rest ->
        let nexts = if all then nh :: rest else [ nh ] in
        List.concat_map (fun v -> go v (u :: path) (u :: seen)) nexts
  in
  go src [] []

let trace_gen ~all t ~src addr =
  walk ~all ~lookup:(fun u -> lookup t u addr) ~dest:(dest_of t addr) src

let trace t ~src addr =
  match trace_gen ~all:false t ~src addr with
  | [ r ] -> r
  | _ -> assert false

let trace_all t ~src addr = trace_gen ~all:true t ~src addr

let n_entries t = t.entries
let ecs_solved t = t.ecs
let unknown_classes t = t.unknown

let ec_of_prefix t p =
  List.find_opt (fun ec -> Prefix.equal ec.Ecs.ec_prefix p) (Ecs.compute t.net)

let ranges_of_prefix t p =
  match ec_of_prefix t p with
  | Some ec -> Ecs.ranges t.net ec
  | None -> [ p ]

let addresses_via t u v =
  Prefix_trie.bindings t.fibs.(u)
  |> List.fold_left
       (fun acc (_, e) ->
         if List.mem v e.e_next_hops then
           Addr_set.union acc
             (Addr_set.of_prefixes (ranges_of_prefix t e.e_prefix))
         else acc)
       Addr_set.empty

let addresses_delivered t ~src ~dst =
  List.fold_left
    (fun acc (p, origin) ->
      if origin <> dst then acc
      else
        let addr = p.Prefix.addr in
        let delivered =
          List.exists
            (function Delivered _ -> true | _ -> false)
            (trace_all t ~src addr)
        in
        if delivered then
          Addr_set.union acc (Addr_set.of_prefixes (ranges_of_prefix t p))
        else acc)
    Addr_set.empty t.origin

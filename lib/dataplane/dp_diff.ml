(* Differential data-plane compilation: exactly which FIB entries does a
   config change touch? Composes the per-class compiler with lib/incr's
   clean-class proof (Incr.solution_unchanged): a class whose SRP inputs
   are provably unchanged across the delta — same origins, untouched
   destination, stable OSPF-liveness, equal edge signatures (which
   include the per-edge ACL verdict for the class) on every
   touched-incident edge — has byte-identical forwarding state on both
   sides and is never recompiled. Only dirty classes are solved, on both
   networks, and their entries diffed router by router. *)

type change_kind = Added | Removed | Modified

type change = {
  c_router : int;
  c_prefix : Prefix.t;
  c_kind : change_kind;
  c_old : Dataplane.entry option;
  c_new : Dataplane.entry option;
}

type report = {
  dp_deltas : Delta.t list;
  dp_classes : int;
  dp_reused : int;
  dp_recompiled : int;
  dp_anycast : int;
  dp_full_rebuild : bool;
  dp_changes : change list;
  dp_unknown : Prefix.t list;
  dp_degradation : Bonsai_api.degradation option;
  dp_time_s : float;
}

let changed r = r.dp_changes <> []

(* Diff one class's per-router entries (both sides sorted by router). *)
let diff_class prefix old_entries new_entries =
  let rec go acc olds news =
    match (olds, news) with
    | [], [] -> List.rev acc
    | (u, e) :: olds', [] ->
      go
        ({ c_router = u; c_prefix = prefix; c_kind = Removed;
           c_old = Some e; c_new = None }
        :: acc)
        olds' []
    | [], (u, e) :: news' ->
      go
        ({ c_router = u; c_prefix = prefix; c_kind = Added;
           c_old = None; c_new = Some e }
        :: acc)
        [] news'
    | (u, e) :: olds', (u', e') :: news' ->
      if u < u' then
        go
          ({ c_router = u; c_prefix = prefix; c_kind = Removed;
             c_old = Some e; c_new = None }
          :: acc)
          olds' news
      else if u' < u then
        go
          ({ c_router = u'; c_prefix = prefix; c_kind = Added;
             c_old = None; c_new = Some e' }
          :: acc)
          olds news'
      else if
        e.Dataplane.e_next_hops = e'.Dataplane.e_next_hops
        && e.Dataplane.e_acl_dropped = e'.Dataplane.e_acl_dropped
      then go acc olds' news'
      else
        go
          ({ c_router = u; c_prefix = prefix; c_kind = Modified;
             c_old = Some e; c_new = Some e' }
          :: acc)
          olds' news'
  in
  go [] old_entries new_entries

let entries_of ?protocol ?budget net = function
  | None -> `Entries []
  | Some ec -> (
    match Dataplane.compile_ec ?protocol ?budget net ec with
    | `Compiled cf -> `Entries cf.Dataplane.cf_entries
    | `Unsolved -> `Unsolved
    | `Anycast -> `Entries [])

let run ?budget ?cache ?protocol ~(old_net : Device.network)
    ~(new_net : Device.network) (deltas : Delta.t list) =
  Bonsai_error.protect @@ fun () ->
  let t0 = Timing.now () in
  let protocol =
    match protocol with
    | Some p -> Some p
    | None ->
      (* either side multi-protocol ⇒ compile both under `Multi so the
         two FIBs are comparable *)
      Some
        (match
           ( Dataplane.detect_protocol old_net,
             Dataplane.detect_protocol new_net )
         with
        | `Bgp, `Bgp -> `Bgp
        | _ -> `Multi)
  in
  let node_change = List.exists Delta.is_node_change deltas in
  let has_topo = List.exists Delta.is_topology deltas in
  (* reuse needs one signature cache compatible with BOTH networks so
     BDD ids are directly comparable; failing that, every class is dirty
     (a full rebuild — correct, just not incremental) *)
  let cache =
    match cache with
    | Some c
      when Sig_cache.compatible c old_net && Sig_cache.compatible c new_net
      ->
      Some c
    | Some _ -> None
    | None ->
      let c = Sig_cache.create old_net in
      if Sig_cache.compatible c new_net then Some c else None
  in
  let full_rebuild = node_change || cache = None in
  let touched =
    List.concat_map (Delta.touched new_net) deltas
    |> List.sort_uniq Stdlib.compare
  in
  let old_ecs = Ecs.compute old_net and new_ecs = Ecs.compute new_net in
  let old_by_prefix = Hashtbl.create 64 in
  List.iter
    (fun (ec : Ecs.ec) -> Hashtbl.replace old_by_prefix ec.Ecs.ec_prefix ec)
    old_ecs;
  let new_prefixes =
    List.fold_left
      (fun acc (ec : Ecs.ec) -> ec.Ecs.ec_prefix :: acc)
      [] new_ecs
  in
  (* classes only the old network had: their entries disappear *)
  let removed_ecs =
    List.filter
      (fun (ec : Ecs.ec) ->
        not (List.exists (Prefix.equal ec.Ecs.ec_prefix) new_prefixes))
      old_ecs
  in
  let reused = ref 0 and recompiled = ref 0 and anycast = ref 0 in
  let changes = ref [] and unknown = ref [] in
  let deg_info = ref None in
  let work ec_prefix old_ec new_ec =
    match !deg_info with
    | Some _ ->
      (* budget already exhausted: everything further is unknown *)
      unknown := ec_prefix :: !unknown
    | None -> (
      try
        match (entries_of ?protocol ?budget old_net old_ec,
               entries_of ?protocol ?budget new_net new_ec)
        with
        | `Entries olds, `Entries news ->
          incr recompiled;
          changes := List.rev_append (diff_class ec_prefix olds news) !changes
        | _ -> unknown := ec_prefix :: !unknown
      with Budget.Exhausted info ->
        deg_info := Some info;
        unknown := ec_prefix :: !unknown)
  in
  List.iter
    (fun (ec : Ecs.ec) ->
      match ec.Ecs.ec_origins with
      | [ _ ] -> (
        let old_ec = Hashtbl.find_opt old_by_prefix ec.Ecs.ec_prefix in
        let same_origins =
          match old_ec with
          | Some o -> o.Ecs.ec_origins = ec.Ecs.ec_origins
          | None -> false
        in
        match (cache, old_ec) with
        | Some cache, Some _
          when same_origins && (not full_rebuild) && (not has_topo)
               && Incr.solution_unchanged ~old_net ~new_net ~cache ~touched
                    ec ->
          incr reused
        | _ -> work ec.Ecs.ec_prefix old_ec (Some ec))
      | _ -> incr anycast)
    new_ecs;
  List.iter
    (fun (ec : Ecs.ec) ->
      match ec.Ecs.ec_origins with
      | [ _ ] -> work ec.Ecs.ec_prefix (Some ec) None
      | _ -> incr anycast)
    removed_ecs;
  let changes =
    List.sort
      (fun a b ->
        match Prefix.compare a.c_prefix b.c_prefix with
        | 0 -> Stdlib.compare a.c_router b.c_router
        | c -> c)
      !changes
  in
  let unknown = List.rev !unknown in
  let degradation =
    match (unknown, !deg_info) with
    | [], _ -> None
    | _ :: _, info ->
      let info =
        match info with
        | Some i -> i
        | None ->
          (* unknown without exhaustion: a diverging control plane *)
          Budget.info
            (Option.value budget ~default:Budget.infinite)
            ~phase:"dataplane-diff" ~note:"control plane diverged" ()
      in
      Some
        {
          Bonsai_api.deg_info = info;
          deg_completed = !reused + !recompiled;
          deg_total = !reused + !recompiled + List.length unknown;
        }
  in
  {
    dp_deltas = deltas;
    dp_classes = !reused + !recompiled + List.length unknown;
    dp_reused = !reused;
    dp_recompiled = !recompiled;
    dp_anycast = !anycast;
    dp_full_rebuild = full_rebuild;
    dp_changes = changes;
    dp_unknown = unknown;
    dp_degradation = degradation;
    dp_time_s = Timing.now () -. t0;
  }

let kind_string = function
  | Added -> "added"
  | Removed -> "removed"
  | Modified -> "modified"

let counts r =
  List.fold_left
    (fun (a, rm, m) c ->
      match c.c_kind with
      | Added -> (a + 1, rm, m)
      | Removed -> (a, rm + 1, m)
      | Modified -> (a, rm, m + 1))
    (0, 0, 0) r.dp_changes

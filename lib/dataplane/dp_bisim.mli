(** Data-plane bisimulation between a concrete network and its
    compressed abstraction.

    The control-plane bisimulation (paper §5) guarantees both networks
    reach the same stable solution per destination class; since FIBs are
    compiled from stable solutions (and ACLs are preserved edge-wise by
    transfer-equivalence), the {e forwarding} behavior must agree too, up
    to the topology abstraction [f]. [check] spot-checks that
    consequence end to end: per class it compiles the concrete class FIB
    ({!Dataplane.compile_ec}) and the abstract class FIB (abstract SRP +
    ACLs of representative edges), then traces the class's address from
    every role representative through both, comparing
    delivery/drop/loop behavior. The first divergence is a typed
    (router, prefix, path) refutation — the same shape `certify` uses
    for control-plane witnesses. *)

type refutation = {
  rf_router : int;  (** the role representative whose traces diverge *)
  rf_prefix : Prefix.t;  (** the destination class *)
  rf_concrete : Dataplane.hop_result;  (** witness trace, concrete FIB *)
  rf_abstract : Dataplane.hop_result;
      (** witness trace through the abstract FIB (abstract node ids) *)
}

type verdict =
  | Equivalent of { classes : int; traces : int }
      (** every class agrees; [traces] paths compared in total *)
  | Refuted of refutation  (** first diverging witness *)
  | Incomplete of {
      classes : int;  (** classes fully checked before stopping *)
      traces : int;
      unknown : Prefix.t list;
          (** classes with no verdict (budget ran out, or the control
              plane diverged) — reported, never silently omitted *)
      info : Budget.info;
    }

val check :
  ?protocol:[ `Bgp | `Multi ] ->
  ?budget:Budget.t ->
  Device.network ->
  Bonsai_api.ec_result list ->
  verdict
(** Check every compression result against the concrete network it
    abstracts. Identity abstractions are trivially equivalent (the
    abstract network {e is} the concrete network) and counted without
    re-solving. [protocol] defaults to {!Dataplane.detect_protocol}. *)

val refutation_string : Device.network -> Abstraction.t -> refutation -> string
(** Render a witness with router names (abstract nodes as
    [~repr(id)]), e.g. for [Bonsai_error.Soundness_break]. *)

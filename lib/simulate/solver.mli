(** Computing stable solutions of an SRP by simulating asynchronous message
    processing.

    The solver repeatedly activates nodes from a worklist; an activated
    node recomputes its best choice from its neighbors' current labels.
    When the worklist drains, the labeling is locally stable by
    construction. Which of the (possibly multiple, paper §3.1) solutions
    is found depends on the activation order and on how ties are broken,
    both of which can be seeded — this emulates the message-arrival timing
    that selects solutions in a real network (paper Figure 2).

    Divergent instances (e.g. BGP gadgets with no stable solution, or
    perturbed topologies — "Routing Regardless of Network Stability") run
    the step budget out; instead of failing opaquely the solver then runs a
    post-mortem: a deterministic sweep that either exposes the oscillation
    cycle (period and participating nodes), reaches a fixed point (the
    budget was simply too small), or gives up after a bounded number of
    rounds ("inconclusive"). [solve] never raises on divergence. *)

type stats = { steps : int; updates : int }

type cycle = {
  period : int;  (** sweeps until the label vector repeats *)
  participants : int list;  (** nodes whose labels change within the cycle *)
}

type verdict =
  | Oscillation of cycle  (** a repeated label vector: a true routing
                              oscillation (no stable solution reachable
                              from this state) *)
  | Likely_convergent
      (** the diagnosis sweep reached a fixed point — the instance is
          stable and only [max_steps] was too small *)
  | Inconclusive of int
      (** no repeat within this many diagnosis rounds *)

type 'a diagnosis = {
  diag_sol : 'a Solution.t;
      (** the (unstable) labeling after the diagnosis sweeps *)
  diag_steps : int;  (** activations spent before the budget ran out *)
  diag_trace : (int * 'a option) list;
      (** tail of the update trace (node, new label), oldest first *)
  diag_verdict : verdict;
}

val solve :
  ?seed:int ->
  ?max_steps:int ->
  ?budget:Budget.t ->
  ?diag_rounds:int ->
  'a Srp.t ->
  ( 'a Solution.t * stats,
    [ `Diverged of 'a diagnosis | `Budget of Budget.info * 'a Solution.t ] )
  result
(** [solve srp] computes a stable solution. [seed] permutes the activation
    order and neighbor tie-breaking (default 0: deterministic first-best).
    [max_steps] bounds node activations (default [64 * n * (n + 1)]);
    internally it is one more {!Budget} (ticks only) whose exhaustion
    means "possibly divergent" and triggers the post-mortem bounded by
    [diag_rounds] (default 64). The caller-supplied [budget] (wall clock /
    ticks / cancellation, shared across a whole pipeline run) is consumed
    one tick per activation; its exhaustion instead returns [`Budget] with
    the exhaustion info and the partial (unstable) labeling reached so
    far. [solve] never raises. *)

val solve_exn :
  ?seed:int -> ?max_steps:int -> ?budget:Budget.t -> ?diag_rounds:int ->
  'a Srp.t -> 'a Solution.t
(** @raise Bonsai_error.Error with [Divergence] on divergence (the
    diagnosis in the message), and [Budget.Exhausted] on budget
    exhaustion. *)

val pp_verdict : graph:Graph.t -> Format.formatter -> verdict -> unit
val pp_diagnosis : Format.formatter -> 'a diagnosis -> unit

val solutions_sample : ?tries:int -> 'a Srp.t -> 'a Solution.t list
(** Solve under several seeds and keep the distinct stable solutions found
    (labelings compared with {!Solution.equal_labels}, i.e. the SRP's own
    attribute equality). Used to explore multi-solution SRPs like the
    paper's Figure 2 gadget. *)

val enumerate_solutions : ?max_nodes:int -> 'a Srp.t -> 'a Solution.t list
(** All stable solutions of a {e small} SRP, by exhaustive search over the
    per-node route choices (each node selects one neighbor or no route;
    labels follow from the selection when it is acyclic; the stability
    check filters the rest). Exponential — guarded by [max_nodes]
    (default 12).
    @raise Invalid_argument if the network is larger than [max_nodes]. *)

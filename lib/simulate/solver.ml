type stats = { steps : int; updates : int }

type cycle = { period : int; participants : int list }

type verdict =
  | Oscillation of cycle
  | Likely_convergent
  | Inconclusive of int

type 'a diagnosis = {
  diag_sol : 'a Solution.t;
  diag_steps : int;
  diag_trace : (int * 'a option) list;
  diag_verdict : verdict;
}

let trace_cap = 32

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let label_equal (srp : 'a Srp.t) a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> srp.Srp.attr_equal a b
  | _ -> false

(* Post-mortem analysis of an unstable labeling: iterate a deterministic
   synchronous-in-order (Gauss-Seidel) sweep and watch for a repeated label
   vector. The sweep is a function on a finite state space for protocols
   with loop prevention, so a true oscillation must revisit a state; a
   fixed point instead means the labeling is actually stable and only the
   step budget was too small. *)
let diagnose (srp : 'a Srp.t) (labels : 'a option array) ~rounds =
  let g = srp.Srp.graph in
  let n = Graph.n_nodes g in
  let best u =
    let best = ref None in
    Array.iter
      (fun v ->
        match srp.Srp.trans u v labels.(v) with
        | None -> ()
        | Some a -> (
          match !best with
          | None -> best := Some a
          | Some b -> if srp.Srp.compare a b < 0 then best := Some a))
      (Graph.succ g u);
    !best
  in
  let vec_equal a b =
    let ok = ref true in
    for u = 0 to n - 1 do
      if not (label_equal srp a.(u) b.(u)) then ok := false
    done;
    !ok
  in
  (* snaps.(r) is the label vector after r sweeps *)
  let snaps = ref [ Array.copy labels ] (* newest first *) in
  let result = ref None in
  let r = ref 0 in
  while !result = None && !r < rounds do
    incr r;
    let changed = ref false in
    for u = 0 to n - 1 do
      if u <> srp.Srp.dest then begin
        let b = best u in
        if not (label_equal srp labels.(u) b) then begin
          labels.(u) <- b;
          changed := true
        end
      end
    done;
    if not !changed then result := Some Likely_convergent
    else begin
      let snap = Array.copy labels in
      (match
         List.find_index (fun old -> vec_equal old snap) !snaps
       with
      | Some back ->
        (* the state [back + 1] sweeps ago reappeared *)
        let period = back + 1 in
        let window = List.filteri (fun i _ -> i <= back) !snaps in
        let participants =
          List.init n Fun.id
          |> List.filter (fun u ->
                 List.exists
                   (fun old -> not (label_equal srp old.(u) snap.(u)))
                   window)
        in
        result := Some (Oscillation { period; participants })
      | None -> ());
      snaps := snap :: !snaps
    end
  done;
  match !result with Some v -> v | None -> Inconclusive !r

let solve ?(seed = 0) ?max_steps ?(budget = Budget.infinite)
    ?(diag_rounds = 64) (srp : 'a Srp.t) =
  let g = srp.Srp.graph in
  let n = Graph.n_nodes g in
  let max_steps =
    match max_steps with Some m -> m | None -> 64 * n * (n + 1)
  in
  (* The classic [max_steps] cutoff is itself a (tick-only) budget; its
     exhaustion means "possibly divergent" and triggers the post-mortem,
     whereas exhaustion of the caller-supplied [budget] means "out of
     resources" and returns the partial labeling as [`Budget]. *)
  let step_budget = Budget.create ~max_ticks:max_steps () in
  let rng = Random.State.make [| seed; 0x50f7 |] in
  let labels : 'a option array = Array.make n None in
  if n > 0 then labels.(srp.Srp.dest) <- Some srp.Srp.init;
  (* Per-node neighbor order decides tie-breaking among equally good
     choices; a seeded shuffle explores different stable solutions. *)
  let nbr_order =
    Array.init n (fun u ->
        let a = Array.copy (Graph.succ g u) in
        if seed <> 0 then shuffle rng a;
        a)
  in
  let best u =
    let best = ref None in
    Array.iter
      (fun v ->
        match srp.Srp.trans u v labels.(v) with
        | None -> ()
        | Some a -> (
          match !best with
          | None -> best := Some a
          | Some b -> if srp.Srp.compare a b < 0 then best := Some a))
      nbr_order.(u);
    !best
  in
  let in_queue = Array.make n false in
  let queue = Queue.create () in
  let push u =
    if u <> srp.Srp.dest && not in_queue.(u) then begin
      in_queue.(u) <- true;
      Queue.add u queue
    end
  in
  let initial = Array.init n Fun.id in
  if seed <> 0 then shuffle rng initial;
  Array.iter push initial;
  let updates = ref 0 in
  (* tail of the update trace, for the divergence diagnosis *)
  let trace = Queue.create () in
  let budget_ok = ref true in
  let interrupted = ref None in
  (try
     while !budget_ok && not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       in_queue.(u) <- false;
       Budget.tick budget ~phase:"solve";
       (match Budget.tick step_budget ~phase:"solve-steps" with
       | () -> ()
       | exception Budget.Exhausted _ -> budget_ok := false);
       if !budget_ok then begin
         let b = best u in
         if not (label_equal srp labels.(u) b) then begin
           labels.(u) <- b;
           incr updates;
           Queue.add (u, b) trace;
           if Queue.length trace > trace_cap then ignore (Queue.pop trace);
           (* Nodes whose choices mention u must re-evaluate. *)
           Array.iter push (Graph.pred g u)
         end
       end
     done
   with Budget.Exhausted info -> interrupted := Some info);
  let steps = Budget.ticks step_budget in
  let sol = { Solution.srp; labels } in
  match !interrupted with
  | Some info -> Error (`Budget (info, sol))
  | None ->
    if !budget_ok && Solution.is_stable sol then
      Ok (sol, { steps; updates = !updates })
    else begin
      let diag_trace = List.of_seq (Queue.to_seq trace) in
      (* diagnosis mutates a copy; [diag_sol] is the post-sweep labeling *)
      let labels' = Array.copy labels in
      let diag_verdict = diagnose srp labels' ~rounds:diag_rounds in
      Error
        (`Diverged
          {
            diag_sol = { Solution.srp; labels = labels' };
            diag_steps = steps;
            diag_trace;
            diag_verdict;
          })
    end

let pp_verdict ~graph ppf = function
  | Oscillation { period; participants } ->
    Format.fprintf ppf "oscillation of period %d among {%s}" period
      (String.concat ", " (List.map (Graph.name graph) participants))
  | Likely_convergent ->
    Format.fprintf ppf
      "likely convergent (the diagnosis sweep reached a fixed point; raise \
       max_steps)"
  | Inconclusive rounds ->
    Format.fprintf ppf "inconclusive after %d diagnosis rounds" rounds

let pp_diagnosis ppf d =
  Format.fprintf ppf "diverged after %d steps: %a" d.diag_steps
    (pp_verdict ~graph:d.diag_sol.Solution.srp.Srp.graph)
    d.diag_verdict

let solve_exn ?seed ?max_steps ?budget ?diag_rounds srp =
  match solve ?seed ?max_steps ?budget ?diag_rounds srp with
  | Ok (s, _) -> s
  | Error (`Diverged d) ->
    Bonsai_error.error
      (Bonsai_error.Divergence (Format.asprintf "%a" pp_diagnosis d))
  | Error (`Budget (info, _)) -> raise (Budget.Exhausted info)

let solutions_sample ?(tries = 16) srp =
  let found = ref [] in
  for seed = 0 to tries - 1 do
    match solve ~seed srp with
    | Ok (s, _) ->
      if not (List.exists (Solution.equal_labels s) !found) then
        found := s :: !found
    | Error _ -> ()
  done;
  List.rev !found

let enumerate_solutions ?(max_nodes = 12) (srp : 'a Srp.t) =
  let g = srp.Srp.graph in
  let n = Graph.n_nodes g in
  if n > max_nodes then
    invalid_arg "Solver.enumerate_solutions: network too large";
  let dest = srp.Srp.dest in
  (* choice.(u) = Some v: u takes its route from v; None: no route *)
  let choice = Array.make n None in
  let found = ref [] in
  let labels_of_choice () =
    (* Follow each node's selection to the destination, failing on cycles
       or dropped transfers. *)
    let labels = Array.make n None in
    if n > 0 then labels.(dest) <- Some srp.Srp.init;
    let state = Array.make n 0 (* 0 unvisited, 1 in progress, 2 done *) in
    let exception Bad in
    let rec resolve u =
      if u = dest then labels.(u)
      else
        match state.(u) with
        | 1 -> raise Bad (* cycle among selections *)
        | 2 -> labels.(u)
        | _ -> (
          state.(u) <- 1;
          let l =
            match choice.(u) with
            | None -> None
            | Some v -> (
              match srp.Srp.trans u v (resolve v) with
              | Some a -> Some a
              | None -> raise Bad (* selected a dropped route *))
          in
          state.(u) <- 2;
          labels.(u) <- l;
          l)
    in
    match
      for u = 0 to n - 1 do
        ignore (resolve u)
      done
    with
    | () -> Some labels
    | exception Bad -> None
  in
  let record () =
    match labels_of_choice () with
    | None -> ()
    | Some labels ->
      let sol = { Solution.srp; labels } in
      if
        Solution.is_stable sol
        && not (List.exists (Solution.equal_labels sol) !found)
      then found := sol :: !found
  in
  let rec go u =
    if u >= n then record ()
    else if u = dest then go (u + 1)
    else begin
      choice.(u) <- None;
      go (u + 1);
      Array.iter
        (fun v ->
          choice.(u) <- Some v;
          go (u + 1))
        (Graph.succ g u);
      choice.(u) <- None
    end
  in
  (* Static-style spontaneous transfers mean even "no route" nodes need a
     try; the stability filter sorts everything out. *)
  if n > 0 then go 0;
  List.rev !found

type 'a t = { srp : 'a Srp.t; labels : 'a option array }

let label s u = s.labels.(u)

let equal_labels s s' =
  let eq = s.srp.Srp.attr_equal in
  Array.length s.labels = Array.length s'.labels
  && Array.for_all2
       (fun a b ->
         match (a, b) with
         | None, None -> true
         | Some a, Some b -> eq a b
         | _ -> false)
       s.labels s'.labels

let choices s u =
  let srp = s.srp in
  Array.to_list (Graph.succ srp.Srp.graph u)
  |> List.filter_map (fun v ->
         match srp.Srp.trans u v s.labels.(v) with
         | Some a -> Some ((u, v), a)
         | None -> None)

let node_violation s u =
  let srp = s.srp in
  if u = srp.Srp.dest then
    match s.labels.(u) with
    | Some a when srp.Srp.attr_equal a srp.Srp.init -> None
    | _ -> Some "destination is not labeled with the initial attribute"
  else
    let cs = choices s u in
    match (s.labels.(u), cs) with
    | None, [] -> None
    | Some _, [] -> Some "labeled but has no choices"
    | None, _ :: _ -> Some "unlabeled but has choices"
    | Some a, _ :: _ ->
      if not (List.exists (fun (_, c) -> srp.Srp.attr_equal c a) cs) then
        Some "label is not an offered attribute"
      else if List.exists (fun (_, c) -> srp.Srp.compare c a < 0) cs then
        Some "a strictly better choice exists"
      else None

let stability_violations s =
  let n = Graph.n_nodes s.srp.Srp.graph in
  let acc = ref [] in
  for u = n - 1 downto 0 do
    match node_violation s u with
    | Some why -> acc := (u, why) :: !acc
    | None -> ()
  done;
  !acc

let is_stable s = stability_violations s = []

let fwd s u =
  match s.labels.(u) with
  | None -> []
  | Some a ->
    choices s u
    |> List.filter_map (fun (e, c) ->
           if s.srp.Srp.compare c a = 0 then Some e else None)

let fwd_edges s =
  let n = Graph.n_nodes s.srp.Srp.graph in
  let acc = ref [] in
  for u = n - 1 downto 0 do
    acc := fwd s u @ !acc
  done;
  List.sort compare !acc

let forwarding_paths s ~src ~max_len =
  let dest = s.srp.Srp.dest in
  let rec go u path_rev seen len =
    if u = dest then [ List.rev (u :: path_rev) ]
    else if List.mem u seen then [ List.rev (u :: path_rev) ]
    else if len >= max_len then [ List.rev (u :: path_rev) ]
    else
      match fwd s u with
      | [] -> [ List.rev (u :: path_rev) ]
      | nexts ->
        List.concat_map
          (fun (_, v) -> go v (u :: path_rev) (u :: seen) (len + 1))
          nexts
  in
  go src [] [] 0

let reaches s u =
  let dest = s.srp.Srp.dest in
  let n = Graph.n_nodes s.srp.Srp.graph in
  (* 0 = unvisited, 1 = on stack, 2 = good, 3 = bad *)
  let state = Array.make n 0 in
  let rec good u =
    if u = dest then true
    else
      match state.(u) with
      | 1 -> false (* cycle *)
      | 2 -> true
      | 3 -> false
      | _ ->
        state.(u) <- 1;
        let nexts = fwd s u in
        let ok = nexts <> [] && List.for_all (fun (_, v) -> good v) nexts in
        state.(u) <- (if ok then 2 else 3);
        ok
  in
  good u

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun u l ->
      Format.fprintf ppf "%s: %a@,"
        (Graph.name s.srp.Srp.graph u)
        (Srp.pp_label s.srp) l)
    s.labels;
  Format.fprintf ppf "@]"

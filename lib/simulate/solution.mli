(** SRP solutions: labelings [L : V -> A⊥] and the forwarding relation they
    induce (paper §3.1, Figure 4). *)

type 'a t = { srp : 'a Srp.t; labels : 'a option array }

val label : 'a t -> int -> 'a option

val equal_labels : 'a t -> 'a t -> bool
(** Pointwise equality of the two labelings under the SRP's [attr_equal]
    (never polymorphic [=]: attributes may have non-structural equality, or
    contain closures that [=] refuses to compare). *)

val choices : 'a t -> int -> ((int * int) * 'a) list
(** [choices s u] — the paper's [choices_L(u)]: pairs of an edge [(u, v)]
    and the attribute [trans((u,v), L(v))], for attributes that are not
    dropped. The destination's initial attribute is {e not} a choice. *)

val is_stable : 'a t -> bool
(** Every node is locally stable: the destination is labeled [a_d]; a node
    with no choices is labeled [⊥]; any other node's label is one of its
    choices and no choice is strictly preferred to it. *)

val stability_violations : 'a t -> (int * string) list
(** Human-readable reasons nodes are unstable (for tests and debugging). *)

val fwd : 'a t -> int -> (int * int) list
(** [fwd s u] — the paper's [fwd_L(u)]: edges whose attribute is as good
    ([≈]) as the chosen label. Empty for the destination and for
    unreachable nodes. *)

val fwd_edges : 'a t -> (int * int) list
(** All forwarding edges, sorted. *)

val forwarding_paths : 'a t -> src:int -> max_len:int -> int list list
(** All forwarding paths from [src] following [fwd] edges until the
    destination, a node with no forwarding edge (black hole), a repeated
    node (loop — the path ends with the repeated node appearing twice), or
    [max_len] hops. *)

val reaches : 'a t -> int -> bool
(** [reaches s u]: every forwarding path from [u] ends at the destination
    (and there is at least one). *)

val pp : Format.formatter -> 'a t -> unit

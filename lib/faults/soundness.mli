(** Abstraction soundness under failures (paper §9 limitation).

    A Bonsai abstraction is computed for the {e intact} topology: one
    abstract node stands for many concrete nodes, one abstract edge for
    many concrete links. Under failures the two networks can drift apart —
    the canonical example is a fattree whose 6-node abstraction is
    partitioned by a single link failure the concrete network routes
    around. This module makes that drift observable: map a failure
    scenario through the abstraction functions, re-solve both sides, and
    compare per-node reachability verdicts. *)

type mismatch = {
  mis_node : int;  (** concrete node whose verdict differs *)
  mis_abs : int;  (** the abstract copy it was compared against *)
  concrete_reaches : bool;
  abstract_reaches : bool;
  concrete_stable : bool;  (** the re-solved concrete SRP converged *)
  abstract_stable : bool;
}

val abstract_scenario : Abstraction.t -> Scenario.t -> Scenario.t
(** The failure set mapped through [f]: downed links through
    {!Abstraction.link_image} (intra-group links vanish), downed nodes
    through {!Abstraction.node_image}. *)

val check_all :
  ?max_steps:int ->
  ?concrete_cache:'a Fault_engine.cache ->
  ?abstract_cache:'b Fault_engine.cache ->
  Abstraction.t ->
  concrete:'a Srp.t ->
  abstract_:'b Srp.t ->
  Scenario.t ->
  mismatch list
(** Re-solve both networks under the scenario (a diverged side counts as
    reaching nothing, as in {!Reachability}) and return {e every} concrete
    node — in increasing id order, skipping downed nodes — whose
    reachability disagrees with every abstract copy of its group (the
    per-solution refinement may map a node to any copy, so disagreement
    with all of them is what rules out a refinement that saves the
    abstraction). The full set is what the CEGAR repair loop (lib/repair)
    pins in one round; [[]] means the abstraction answered this scenario's
    reachability queries correctly.

    [concrete_cache]/[abstract_cache] memoize the two per-side re-solves
    ({!Fault_engine.run}); each cache must be dedicated to its side's SRP
    (the abstract one only for the lifetime of one abstraction). *)

val check :
  ?max_steps:int ->
  ?concrete_cache:'a Fault_engine.cache ->
  ?abstract_cache:'b Fault_engine.cache ->
  Abstraction.t ->
  concrete:'a Srp.t ->
  abstract_:'b Srp.t ->
  Scenario.t ->
  mismatch option
(** The lowest-id mismatch of {!check_all} ([None] iff none). *)

val first_break :
  ?max_steps:int ->
  ?concrete_cache:'a Fault_engine.cache ->
  ?abstract_cache:'b Fault_engine.cache ->
  Abstraction.t ->
  concrete:'a Srp.t ->
  abstract_:'b Srp.t ->
  Scenario.t list ->
  (Scenario.t * mismatch) option
(** The first scenario (in list order) where {!check} reports a mismatch,
    greedily shrunk ({!Scenario.shrink}) to a 1-minimal failing failure
    set — the counterexample an operator can act on. The returned mismatch
    is re-computed on the shrunk scenario. *)

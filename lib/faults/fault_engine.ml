type 'a outcome =
  | Stable of 'a Solution.t
  | Disconnected of 'a Solution.t * int list
  | Diverged of 'a Solver.diagnosis

let survives sc ~dest = not (Scenario.mem_node sc dest)

let derive (srp : 'a Srp.t) sc =
  Srp.map_graph srp (Scenario.apply srp.Srp.graph sc) ~dest:srp.Srp.dest

(* Scenarios are normalized (sorted, deduplicated failure sets), so the
   scenario itself is the cache key: two syntactically different failure
   lists naming the same downed set hit the same entry. *)
type 'a cache = {
  tbl : (Scenario.t, 'a outcome) Hashtbl.t;
  mutable hits : int;
}

let cache () = { tbl = Hashtbl.create 64; hits = 0 }
let cache_hits c = c.hits
let cache_size c = Hashtbl.length c.tbl

let solve_scenario ?max_steps ~budget (srp : 'a Srp.t) sc =
  let srp' = derive srp sc in
  match Solver.solve ?max_steps ~budget srp' with
  | Error (`Budget (info, _)) -> raise (Budget.Exhausted info)
  | Error (`Diverged d) -> Diverged d
  | Ok (sol, _) ->
    let n = Graph.n_nodes srp'.Srp.graph in
    let stranded = ref [] in
    for u = n - 1 downto 0 do
      if u <> srp'.Srp.dest && (not (Scenario.mem_node sc u))
         && not (Solution.reaches sol u)
      then stranded := u :: !stranded
    done;
    if !stranded = [] then Stable sol else Disconnected (sol, !stranded)

let run ?max_steps ?(budget = Budget.infinite) ?cache (srp : 'a Srp.t) sc =
  match cache with
  | None -> solve_scenario ?max_steps ~budget srp sc
  | Some c -> (
    match Hashtbl.find_opt c.tbl sc with
    | Some outcome ->
      c.hits <- c.hits + 1;
      outcome
    | None ->
      let outcome = solve_scenario ?max_steps ~budget srp sc in
      Hashtbl.replace c.tbl sc outcome;
      outcome)

type plan = { scenarios : Scenario.t list; exhaustive : bool }

let plan ?(budget = 1024) ?samples ?(seed = 0) ~k g =
  match samples with
  | Some samples ->
    { scenarios = Scenario.sample ~k ~samples ~seed g; exhaustive = false }
  | None ->
    if Scenario.count ~k g <= budget then
      { scenarios = Scenario.enumerate ~k g; exhaustive = true }
    else
      {
        scenarios = Scenario.sample ~k ~samples:256 ~seed g;
        exhaustive = false;
      }

type 'a report = {
  plan : plan;
  outcomes : (Scenario.t * 'a outcome) list;
  n_stable : int;
  n_disconnected : int;
  n_diverged : int;
  n_skipped : int;
  n_cache_hits : int;
  time_s : float;
}

let survey ?max_steps ?(budget = Budget.infinite) ?cache (srp : 'a Srp.t)
    plan =
  let t0 = Timing.now () in
  let hits0 = match cache with Some c -> c.hits | None -> 0 in
  (* A budget exhaustion mid-survey truncates the scan rather than losing
     the outcomes already computed; the report counts what was skipped. *)
  let outcomes = ref [] in
  (try
     List.iter
       (fun sc ->
         outcomes := (sc, run ?max_steps ~budget ?cache srp sc) :: !outcomes)
       plan.scenarios
   with Budget.Exhausted _ -> ());
  let outcomes = List.rev !outcomes in
  let count p = List.length (List.filter (fun (_, o) -> p o) outcomes) in
  {
    plan;
    outcomes;
    n_stable = count (function Stable _ -> true | _ -> false);
    n_disconnected = count (function Disconnected _ -> true | _ -> false);
    n_diverged = count (function Diverged _ -> true | _ -> false);
    n_skipped = List.length plan.scenarios - List.length outcomes;
    n_cache_hits = (match cache with Some c -> c.hits - hits0 | None -> 0);
    time_s = Timing.now () -. t0;
  }

(** Re-solving an SRP under failure scenarios.

    For each scenario the surviving SRP is derived (same attributes,
    transfer and preference — only the topology shrinks) and re-solved, and
    the outcome classified: converged with full reachability, converged but
    with stranded nodes, or diverged (with the solver's structured
    diagnosis — perturbing a topology can destroy convergence, cf. "Routing
    Regardless of Network Stability"). *)

type 'a outcome =
  | Stable of 'a Solution.t
      (** stable; every surviving non-destination node reaches the
          destination *)
  | Disconnected of 'a Solution.t * int list
      (** stable, but these surviving nodes do not reach the destination *)
  | Diverged of 'a Solver.diagnosis

val survives : Scenario.t -> dest:int -> bool
(** The destination itself is not downed (otherwise every verdict is
    trivially [Disconnected]). *)

val derive : 'a Srp.t -> Scenario.t -> 'a Srp.t
(** The surviving SRP: {!Scenario.apply} on the topology, everything else
    unchanged. *)

type 'a cache
(** Memo table for {!run}, keyed by the scenario's normalized downed set
    (scenarios are canonical: sorted, deduplicated). A cache is only
    meaningful for a fixed [(srp, max_steps)] pair — the caller owns that
    invariant. The repair loop (lib/repair) threads one concrete-side
    cache across all of its rounds so a scenario is never re-solved
    twice, and [bonsai faults] shares one between the survey and the
    soundness sweep. *)

val cache : unit -> 'a cache
val cache_hits : 'a cache -> int
(** Lifetime hit count (solves avoided). *)

val cache_size : 'a cache -> int
(** Distinct scenarios solved through the cache. *)

val run :
  ?max_steps:int -> ?budget:Budget.t -> ?cache:'a cache -> 'a Srp.t ->
  Scenario.t -> 'a outcome
(** A cache hit consumes no budget.
    @raise Budget.Exhausted when the caller-supplied [budget] (default
    infinite; distinct from the solver's internal [max_steps] cutoff,
    whose exhaustion is classified as [Diverged]) runs out mid-solve. *)

type plan = { scenarios : Scenario.t list; exhaustive : bool }

val plan :
  ?budget:int -> ?samples:int -> ?seed:int -> k:int -> Graph.t -> plan
(** Scenario selection: enumerate all link scenarios up to [k] failures
    when there are at most [budget] (default 1024) of them and [samples]
    was not forced; otherwise importance-sample [samples] (default 256)
    scenarios, cut links first ({!Scenario.sample}). *)

type 'a report = {
  plan : plan;
  outcomes : (Scenario.t * 'a outcome) list;
  n_stable : int;
  n_disconnected : int;
  n_diverged : int;
  n_skipped : int;
      (** planned scenarios not run because the budget ran out *)
  n_cache_hits : int;
      (** scenarios answered from the supplied [cache] (0 without one) *)
  time_s : float;  (** wall clock for solving all scenarios *)
}

val survey :
  ?max_steps:int -> ?budget:Budget.t -> ?cache:'a cache -> 'a Srp.t ->
  plan -> 'a report
(** Run every planned scenario ([scenarios/sec = List.length outcomes /.
    time_s] is the bench metric). Exhaustion of [budget] truncates the
    scan: outcomes computed so far are kept and the remainder counted in
    [n_skipped] — [survey] itself never raises on exhaustion. *)

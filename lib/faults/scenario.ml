type t = {
  down_links : (int * int) list;
  down_nodes : int list;
}

type element = Link of int * int | Node of int

let norm_link (u, v) = if u <= v then (u, v) else (v, u)

let link_compare (a, b) (c, d) =
  match Int.compare a c with 0 -> Int.compare b d | r -> r

let link_equal a b = link_compare a b = 0

let make ?(nodes = []) links =
  {
    down_links = List.sort_uniq link_compare (List.map norm_link links);
    down_nodes = List.sort_uniq Int.compare nodes;
  }

let empty = { down_links = []; down_nodes = [] }
let size t = List.length t.down_links + List.length t.down_nodes

let is_empty t =
  match (t.down_links, t.down_nodes) with [], [] -> true | _ -> false

let compare a b =
  match List.compare link_compare a.down_links b.down_links with
  | 0 -> List.compare Int.compare a.down_nodes b.down_nodes
  | r -> r

let equal a b = compare a b = 0

let elements t =
  List.map (fun (u, v) -> Link (u, v)) t.down_links
  @ List.map (fun u -> Node u) t.down_nodes

let of_elements es =
  make
    ~nodes:(List.filter_map (function Node u -> Some u | _ -> None) es)
    (List.filter_map (function Link (u, v) -> Some (u, v) | _ -> None) es)

let mem_node t u = List.exists (Int.equal u) t.down_nodes

let apply g t =
  let b = Graph.Builder.create () in
  for v = 0 to Graph.n_nodes g - 1 do
    ignore (Graph.Builder.add_node b (Graph.name g v))
  done;
  Graph.iter_edges g (fun u v ->
      if
        not
          (List.exists (link_equal (norm_link (u, v))) t.down_links
          || mem_node t u || mem_node t v)
      then Graph.Builder.add_edge b u v);
  Graph.Builder.build b

let all_links g =
  let acc = ref [] in
  Graph.iter_edges g (fun u v ->
      if u < v || not (Graph.has_edge g v u) then acc := norm_link (u, v) :: !acc);
  List.sort_uniq link_compare !acc

let cut_links g =
  if not (Graph.is_connected g) then []
  else
    List.filter
      (fun l -> not (Graph.is_connected (apply g (make [ l ]))))
      (all_links g)

(* k-subsets of [links] in lexicographic order, as scenarios *)
let rec subsets k links =
  if k = 0 then [ [] ]
  else
    match links with
    | [] -> []
    | l :: rest ->
      List.map (fun s -> l :: s) (subsets (k - 1) rest) @ subsets k rest

let enumerate ~k g =
  let links = all_links g in
  List.concat_map
    (fun i -> List.map (fun s -> make s) (subsets i links))
    (List.init k (fun i -> i + 1))

let count ~k g =
  let m = List.length (all_links g) in
  let rec choose m i = if i = 0 then 1 else choose (m - 1) (i - 1) * m / i in
  List.fold_left ( + ) 0 (List.init k (fun i -> choose m (i + 1)))

let sample ~k ~samples ~seed g =
  let links = Array.of_list (all_links g) in
  let m = Array.length links in
  let rng = Random.State.make [| seed; 0xfa17 |] in
  let seen = Hashtbl.create samples in
  let out = ref [] and n_out = ref 0 in
  let add sc =
    if not (Hashtbl.mem seen sc) then begin
      Hashtbl.replace seen sc ();
      out := sc :: !out;
      incr n_out
    end
  in
  List.iter
    (fun l -> if !n_out < samples then add (make [ l ]))
    (cut_links g);
  if m > 0 then begin
    (* give up after enough duplicate draws in a row: the subset space may
       hold fewer than [samples] distinct scenarios *)
    let misses = ref 0 in
    while !n_out < samples && !misses < 64 * samples do
      let size = 1 + Random.State.int rng (max 1 k) in
      let picked = ref [] in
      for _ = 1 to size do
        picked := links.(Random.State.int rng m) :: !picked
      done;
      let sc = make !picked in
      if Hashtbl.mem seen sc then incr misses
      else begin
        misses := 0;
        add sc
      end
    done
  end;
  List.rev !out

let element_equal a b =
  match (a, b) with
  | Link (u, v), Link (u', v') -> Int.equal u u' && Int.equal v v'
  | Node u, Node u' -> Int.equal u u'
  | (Link _ | Node _), _ -> false

let shrink fails sc =
  let rec go sc =
    let es = elements sc in
    let drop_one =
      List.find_map
        (fun e ->
          let smaller =
            of_elements (List.filter (fun e' -> not (element_equal e' e)) es)
          in
          if (not (is_empty smaller)) && fails smaller then Some smaller
          else None)
        es
    in
    match drop_one with Some smaller -> go smaller | None -> sc
  in
  if not (fails sc) then invalid_arg "Scenario.shrink: scenario does not fail";
  go sc

let pp ~names ppf t =
  let link (u, v) = Printf.sprintf "%s-%s" (names u) (names v) in
  let node u = Printf.sprintf "node %s" (names u) in
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map link t.down_links @ List.map node t.down_nodes))

type mismatch = {
  mis_node : int;
  mis_abs : int;
  concrete_reaches : bool;
  abstract_reaches : bool;
  concrete_stable : bool;
  abstract_stable : bool;
}

let abstract_scenario (t : Abstraction.t) sc =
  Scenario.make
    ~nodes:(List.concat_map (Abstraction.node_image t) sc.Scenario.down_nodes)
    (List.concat_map (Abstraction.link_image t) sc.Scenario.down_links)

(* reachability vector of a re-solved SRP; divergence reaches nothing *)
let solve_reaches ?max_steps ?cache (srp : 'a Srp.t) sc =
  match Fault_engine.run ?max_steps ?cache srp sc with
  | Fault_engine.Stable sol -> (true, fun u -> u = srp.Srp.dest || Solution.reaches sol u)
  | Fault_engine.Disconnected (sol, _) ->
    (true, fun u -> u = srp.Srp.dest || Solution.reaches sol u)
  | Fault_engine.Diverged _ -> (false, fun u -> u = srp.Srp.dest)

let check_all ?max_steps ?concrete_cache ?abstract_cache (t : Abstraction.t)
    ~(concrete : 'a Srp.t) ~(abstract_ : 'b Srp.t) sc =
  let abs_sc = abstract_scenario t sc in
  let concrete_stable, c_reaches =
    solve_reaches ?max_steps ?cache:concrete_cache concrete sc
  in
  let abstract_stable, a_reaches =
    solve_reaches ?max_steps ?cache:abstract_cache abstract_ abs_sc
  in
  let n = Graph.n_nodes concrete.Srp.graph in
  let out = ref [] in
  for u = n - 1 downto 0 do
    if not (Scenario.mem_node sc u) then begin
      let rc = c_reaches u in
      let copies = Abstraction.node_image t u in
      (* any copy agreeing keeps the abstraction defensible: the
         per-solution refinement f_r is free to pick that copy *)
      if not (List.exists (fun a -> a_reaches a = rc) copies) then
        out :=
          {
            mis_node = u;
            mis_abs = Abstraction.f t u;
            concrete_reaches = rc;
            abstract_reaches = a_reaches (Abstraction.f t u);
            concrete_stable;
            abstract_stable;
          }
          :: !out
    end
  done;
  !out

let check ?max_steps ?concrete_cache ?abstract_cache t ~concrete ~abstract_
    sc =
  match
    check_all ?max_steps ?concrete_cache ?abstract_cache t ~concrete
      ~abstract_ sc
  with
  | [] -> None
  | m :: _ -> Some m

let first_break ?max_steps ?concrete_cache ?abstract_cache t ~concrete
    ~abstract_ scenarios =
  let fails sc =
    Option.is_some
      (check ?max_steps ?concrete_cache ?abstract_cache t ~concrete
         ~abstract_ sc)
  in
  List.find_opt fails scenarios
  |> Option.map (fun sc ->
         let minimal = Scenario.shrink fails sc in
         match
           check ?max_steps ?concrete_cache ?abstract_cache t ~concrete
             ~abstract_ minimal
         with
         | Some m -> (minimal, m)
         | None -> assert false)

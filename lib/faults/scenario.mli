(** Failure scenarios: sets of downed links and nodes (paper §9; Tiramisu's
    "under all failure scenarios" verification style).

    A scenario never removes nodes from the graph — ids and names must stay
    aligned with the intact network so SRPs, abstractions and solutions map
    across directly. Downed nodes simply lose all their edges. *)

type t = {
  down_links : (int * int) list;  (** normalized [u < v], sorted, unique *)
  down_nodes : int list;  (** sorted, unique *)
}

type element = Link of int * int | Node of int

val empty : t
val make : ?nodes:int list -> (int * int) list -> t
val size : t -> int
val is_empty : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val elements : t -> element list
val of_elements : element list -> t

val mem_node : t -> int -> bool
(** The node itself is down (downed-link endpoints are not "down"). *)

val apply : Graph.t -> t -> Graph.t
(** The surviving topology: same nodes and names, minus the downed links
    (both directions) and every edge touching a downed node. *)

val all_links : Graph.t -> (int * int) list
(** The undirected links [u < v] (a one-way edge counts too), sorted. *)

val cut_links : Graph.t -> (int * int) list
(** Links whose single failure disconnects the (weakly connected) graph —
    the highest-value single-failure scenarios. Empty if the graph is
    already disconnected. *)

val enumerate : k:int -> Graph.t -> t list
(** Every non-empty link-failure scenario with at most [k] downed links:
    [sum_{i=1..k} C(m, i)] scenarios for [m] links, in deterministic
    (size-major, lexicographic) order. Node failures are not enumerated —
    build them with {!make} if needed. *)

val count : k:int -> Graph.t -> int
(** [List.length (enumerate ~k g)], without materializing the list. *)

val sample : k:int -> samples:int -> seed:int -> Graph.t -> t list
(** Importance sampling for networks where {!enumerate} is too large: every
    cut link first (as single-failure scenarios), then distinct uniformly
    random link sets of size [<= k], until [samples] scenarios (or the
    space is exhausted). Deterministic in [seed]. *)

val shrink : (t -> bool) -> t -> t
(** [shrink fails sc] greedily delta-debugs a failing scenario ([fails sc]
    must hold) to a 1-minimal one: the result still fails, and dropping
    any single element of it makes the failure disappear. Calls [fails]
    O(size²) times. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** E.g. [{agg0_0-core1, node edge2_1}]. *)

(** Minimal JSON values for the serve protocol.

    Total by construction: {!parse} never raises on malformed input
    (depth-bounded, every syntax error is a value), and {!to_string}
    always emits valid JSON (non-finite floats become [null]). This is
    what lets the engine promise that {e arbitrary} request bytes only
    ever produce typed error responses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value spanning the whole string (trailing whitespace
    allowed, trailing bytes are an error). Nesting beyond an internal
    depth bound is rejected rather than overflowing the stack. *)

val to_string : t -> string
(** Compact single-line rendering (no newlines — NDJSON-safe; control
    characters in strings are escaped). *)

val member : string -> t -> t option
(** Field lookup; [None] on a non-object or a missing key. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option

val equal : t -> t -> bool

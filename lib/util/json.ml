(* Minimal JSON for the serve protocol. The engine must survive arbitrary
   bytes on the wire (the @fuzz property feeds it random garbage), so the
   parser is total: every failure is a [Error msg], recursion depth is
   bounded, and nothing here raises on malformed input. No external JSON
   dependency — the container pins the package set. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Adversarial nesting would otherwise overflow the parser stack. *)
let max_depth = 64

exception Bad of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Bad (Printf.sprintf "expected %c, found %c" ch x))
  | None -> raise (Bad (Printf.sprintf "expected %c, found end of input" ch))

let literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.equal (String.sub c.s c.pos n) word
  then begin
    c.pos <- c.pos + n;
    v
  end
  else raise (Bad ("invalid literal at offset " ^ string_of_int c.pos))

let hex_digit = function
  | '0' .. '9' as ch -> Char.code ch - Char.code '0'
  | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
  | _ -> raise (Bad "invalid \\u escape")

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> raise (Bad "unterminated escape")
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.s then
            raise (Bad "truncated \\u escape");
          let v =
            (hex_digit c.s.[c.pos] lsl 12)
            lor (hex_digit c.s.[c.pos + 1] lsl 8)
            lor (hex_digit c.s.[c.pos + 2] lsl 4)
            lor hex_digit c.s.[c.pos + 3]
          in
          c.pos <- c.pos + 4;
          (* UTF-8 encode the code point; surrogate pairs are passed
             through as two 3-byte sequences (lossy but total) *)
          if v < 0x80 then Buffer.add_char buf (Char.chr v)
          else if v < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
          end
        | _ -> raise (Bad "invalid escape"));
        go ())
    | Some ch when Char.code ch < 0x20 -> raise (Bad "control byte in string")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num ch | None -> false) do
    advance c
  done;
  let text = String.sub c.s start (c.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> raise (Bad ("invalid number " ^ text)))

let rec parse_value c ~depth =
  if depth > max_depth then raise (Bad "nesting too deep");
  skip_ws c;
  match peek c with
  | None -> raise (Bad "empty input")
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [ parse_value c ~depth:(depth + 1) ] in
      skip_ws c;
      while peek c = Some ',' do
        advance c;
        items := parse_value c ~depth:(depth + 1) :: !items;
        skip_ws c
      done;
      expect c ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c ~depth:(depth + 1) in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws c;
      while peek c = Some ',' do
        advance c;
        fields := field () :: !fields;
        skip_ws c
      done;
      expect c '}';
      Obj (List.rev !fields)
    end
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> raise (Bad (Printf.sprintf "unexpected character %C" ch))

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c ~depth:0 with
  | v ->
    skip_ws c;
    if c.pos < String.length s then
      Error
        (Printf.sprintf "trailing bytes after value at offset %d" c.pos)
    else Ok v
  | exception Bad m -> Error m

(* --- printing -------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      (* total: JSON has no nan/infinity literals *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%g" f)
      else Buffer.add_string buf "null"
    | String s -> escape_into buf s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- accessors ------------------------------------------------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
    List.equal
      (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
      x y
  | _ -> false

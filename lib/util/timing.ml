(* The only wall clock in the tree. [Unix.gettimeofday] can step backwards
   (NTP slew, VM migration); every consumer that computes an elapsed time
   from two samples would then see a negative duration. [monotonic_now]
   never goes backwards: a backwards step freezes the reported time until
   the real clock catches up, so elapsed intervals degrade to zero instead
   of negative. *)

let last = ref neg_infinity

let monotonic_now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let now = monotonic_now

let time f =
  let t0 = monotonic_now () in
  let r = f () in
  (r, max 0.0 (monotonic_now () -. t0))

let time_ignore f = snd (time f)

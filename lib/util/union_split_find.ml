type t = {
  n : int;
  cls : int array; (* element -> class id *)
  member_lists : (int, int list) Hashtbl.t; (* class id -> members, sorted *)
  mutable next_id : int;
}

let create n =
  if n < 0 then invalid_arg "Union_split_find.create: negative size";
  let member_lists = Hashtbl.create 16 in
  if n > 0 then Hashtbl.replace member_lists 0 (List.init n Fun.id);
  { n; cls = Array.make (max n 1) 0; member_lists; next_id = 1 }

let discrete n =
  if n < 0 then invalid_arg "Union_split_find.discrete: negative size";
  let member_lists = Hashtbl.create (max 16 n) in
  for x = 0 to n - 1 do
    Hashtbl.replace member_lists x [ x ]
  done;
  { n; cls = Array.init (max n 1) Fun.id; member_lists; next_id = n }

let of_class_array a =
  let n = Array.length a in
  let member_lists = Hashtbl.create 16 in
  let max_id = ref (-1) in
  for x = n - 1 downto 0 do
    let c = a.(x) in
    if c < 0 then
      invalid_arg "Union_split_find.of_class_array: negative class id";
    if c > !max_id then max_id := c;
    let ms = Option.value ~default:[] (Hashtbl.find_opt member_lists c) in
    Hashtbl.replace member_lists c (x :: ms)
  done;
  let cls = Array.make (max n 1) 0 in
  Array.blit a 0 cls 0 n;
  { n; cls; member_lists; next_id = !max_id + 1 }

let length t = t.n

let num_classes t = Hashtbl.length t.member_lists

let check_elt t x =
  if x < 0 || x >= t.n then invalid_arg "Union_split_find: element out of range"

let find t x =
  check_elt t x;
  t.cls.(x)

let members t c =
  match Hashtbl.find_opt t.member_lists c with
  | Some ms -> ms
  | None -> invalid_arg "Union_split_find: dead class id"

let class_size t c = List.length (members t c)

let class_ids t =
  Hashtbl.fold (fun c _ acc -> c :: acc) t.member_lists [] |> List.sort compare

let split t xs =
  match xs with
  | [] -> invalid_arg "Union_split_find.split: empty subset"
  | x0 :: _ ->
    let c = find t x0 in
    let seen = Hashtbl.create (List.length xs) in
    List.iter
      (fun x ->
        check_elt t x;
        if t.cls.(x) <> c then
          invalid_arg "Union_split_find.split: elements span several classes";
        if Hashtbl.mem seen x then
          invalid_arg "Union_split_find.split: duplicate element";
        Hashtbl.replace seen x ())
      xs;
    let old_members = members t c in
    let k = Hashtbl.length seen in
    if k = List.length old_members then c
    else begin
      let fresh = t.next_id in
      t.next_id <- fresh + 1;
      List.iter (fun x -> t.cls.(x) <- fresh) xs;
      let moved, kept = List.partition (fun x -> Hashtbl.mem seen x) old_members in
      Hashtbl.replace t.member_lists c kept;
      Hashtbl.replace t.member_lists fresh moved;
      fresh
    end

let merge t x y =
  check_elt t x;
  check_elt t y;
  let cx = t.cls.(x) and cy = t.cls.(y) in
  if cx = cy then cx
  else begin
    let mx = members t cx and my = members t cy in
    let keep, kill, kms, dms =
      if List.length mx >= List.length my then (cx, cy, mx, my)
      else (cy, cx, my, mx)
    in
    List.iter (fun e -> t.cls.(e) <- keep) dms;
    Hashtbl.remove t.member_lists kill;
    Hashtbl.replace t.member_lists keep (List.merge Int.compare kms dms);
    keep
  end

let pin t x =
  check_elt t x;
  let c = t.cls.(x) in
  if class_size t c = 1 then c else split t [ x ]

let is_singleton t x = class_size t (find t x) = 1

let refine t ~cls ~key =
  match members t cls with
  | [] | [ _ ] -> []
  | ms ->
    let groups : ('k, int list) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun x ->
        let k = key x in
        match Hashtbl.find_opt groups k with
        | None ->
          order := k :: !order;
          Hashtbl.replace groups k [ x ]
        | Some xs -> Hashtbl.replace groups k (x :: xs))
      ms;
    let order = List.rev !order in
    if List.length order <= 1 then []
    else begin
      (* The largest group keeps the original class id: split out the rest. *)
      let groups_l =
        List.map (fun k -> List.rev (Hashtbl.find groups k)) order
      in
      let largest =
        List.fold_left
          (fun best g ->
            match best with
            | None -> Some g
            | Some b -> if List.length g > List.length b then Some g else best)
          None groups_l
      in
      let largest = match largest with Some g -> g | None -> assert false in
      List.filter_map
        (fun g -> if g != largest then Some (split t g) else None)
        groups_l
    end

let refine_all t ~key =
  let changed = ref false in
  List.iter
    (fun c -> if refine t ~cls:c ~key <> [] then changed := true)
    (class_ids t);
  !changed

let iter_classes t f =
  List.iter (fun c -> f c (members t c)) (class_ids t)

let to_class_array t = Array.sub t.cls 0 t.n

let canonical t =
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  Array.init t.n (fun x ->
      let c = t.cls.(x) in
      match Hashtbl.find_opt remap c with
      | Some i -> i
      | None ->
        let i = !next in
        incr next;
        Hashtbl.replace remap c i;
        i)

let equal a b = a.n = b.n && canonical a = canonical b

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter_classes t (fun c ms ->
      Format.fprintf ppf "%d: {%a}@,"
        c
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        ms);
  Format.fprintf ppf "@]"

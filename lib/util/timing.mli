(** Wall-clock timing, centralized behind a never-backwards clock.

    [Unix.gettimeofday] may step backwards under NTP adjustment; a naive
    [t1 -. t0] then yields a negative elapsed time, which has produced
    both nonsense benchmark rows and (worse) budget deadlines that never
    fire. Everything in the tree that needs a timestamp — {!time} here,
    [Budget] deadlines, the serve engine's drain deadline — goes through
    {!monotonic_now}. *)

val monotonic_now : unit -> float
(** Seconds since the epoch, guaranteed non-decreasing within this
    process: a backwards clock step freezes the value until the real
    clock catches up. *)

val now : unit -> float
(** Alias for {!monotonic_now}. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds
    (clamped to be non-negative). *)

val time_ignore : (unit -> 'a) -> float
(** [time_ignore f] is the elapsed seconds of [f ()], discarding the result. *)

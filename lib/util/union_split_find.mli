(** Union-split-find: a partition of the integers [0 .. n-1] supporting
    iterated refinement, as used by the Bonsai abstraction algorithm
    (paper Algorithm 1).

    Unlike classical union-find, the characteristic operation is {e split}:
    carving a subset of an existing class out into a fresh class. Classes
    are identified by small integer ids that remain stable until the class
    is split. *)

type t

val create : int -> t
(** [create n] is the coarsest partition of [0 .. n-1]: a single class
    containing every element. [n] must be non-negative; [n = 0] gives an
    empty partition. *)

val of_class_array : int array -> t
(** [of_class_array a] restores a partition from a class-assignment
    snapshot: element [x] joins class [a.(x)]. Accepts any array of
    non-negative ids (in particular {!to_class_array} and {!canonical}
    output, or an [Abstraction.group_of] table), so a partition computed
    by an earlier refinement can be re-used as the {e seed} of an
    incremental one.
    @raise Invalid_argument on a negative class id. *)

val discrete : int -> t
(** [discrete n] is the finest partition of [0 .. n-1]: every element its
    own class. Equivalent to [create n] followed by splitting each element
    out, but O(n) instead of quadratic (it backs the identity abstraction,
    built once per destination class on degraded runs). *)

val length : t -> int
(** Number of elements (the [n] given to {!create}). *)

val num_classes : t -> int

val find : t -> int -> int
(** [find t x] is the id of the class currently containing [x].
    @raise Invalid_argument if [x] is out of range. *)

val members : t -> int -> int list
(** [members t c] lists the elements of class [c] in increasing order.
    @raise Invalid_argument if [c] is not a live class id. *)

val class_size : t -> int -> int

val class_ids : t -> int list
(** Ids of all live classes, in increasing order. *)

val split : t -> int list -> int
(** [split t xs] moves the elements [xs] into a fresh class and returns its
    id. All elements must currently belong to the {e same} class, and [xs]
    must be a non-empty strict subset of that class (splitting a whole class
    is a no-op and returns the existing id).
    @raise Invalid_argument if elements span several classes or are
    duplicated. *)

val merge : t -> int -> int -> int
(** [merge t x y] coarsens the partition by uniting the classes of [x]
    and [y]; returns the id of the surviving class (the larger one; the
    other id dies). A no-op when they already share a class. Merging is
    the inverse device of {!split}: the incremental refiner first
    coarsens a stale partition locally and then re-splits, instead of
    refining from scratch. *)

val pin : t -> int -> int
(** [pin t x] forces [x] into a singleton class and returns its class id
    (a no-op when [x] is already alone). A pinned element stays a
    singleton under any sequence of further {!split}/{!refine} calls —
    refinement only ever makes classes smaller — which is what makes
    pin sets a monotone repair device: the partition seeded with a
    superset of pins refines the partition seeded with a subset. *)

val is_singleton : t -> int -> bool
(** [is_singleton t x]: the class of [x] has exactly one member. *)

val refine : t -> cls:int -> key:(int -> 'k) -> int list
(** [refine t ~cls ~key] groups the members of class [cls] by [key] (using
    polymorphic equality/hashing on the key) and splits the class so each
    group becomes its own class. The largest group keeps the original id.
    Returns the ids of the freshly created classes ([[]] if no split
    happened). *)

val refine_all : t -> key:(int -> 'k) -> bool
(** [refine_all t ~key] applies {!refine} to every live class; returns
    [true] if any class was split. *)

val iter_classes : t -> (int -> int list -> unit) -> unit
(** [iter_classes t f] calls [f class_id members] for each live class. *)

val to_class_array : t -> int array
(** [to_class_array t] is an array mapping each element to its class id. *)

val canonical : t -> int array
(** [canonical t] maps each element to a dense class index in
    [0 .. num_classes - 1]; equal iff in the same class. Useful for
    comparing partitions irrespective of id history. *)

val equal : t -> t -> bool
(** [equal a b] holds when the two partitions group elements identically
    (ids are ignored). *)

val pp : Format.formatter -> t -> unit

type plane = Ospf | Bgp

let t_ospf = 1
let t_ebgp = 2
let t_ibgp = 4
let t_redist = 8
let t_static = 16
let t_from_provider = 32
let t_from_peer = 64
let has taint bit = taint land bit <> 0

let taint_to_string taint =
  let names =
    [
      (t_ospf, "ospf");
      (t_ebgp, "ebgp");
      (t_ibgp, "ibgp");
      (t_redist, "redist");
      (t_static, "static");
      (t_from_provider, "from-provider");
      (t_from_peer, "from-peer");
    ]
  in
  match List.filter_map (fun (b, n) -> if has taint b then Some n else None) names with
  | [] -> "-"
  | ns -> String.concat "+" ns

type prov = { org : int; taint : int; via_redist : int }

let prov_compare a b =
  match Int.compare a.org b.org with
  | 0 -> (
    match Int.compare a.taint b.taint with
    | 0 -> Int.compare a.via_redist b.via_redist
    | c -> c)
  | c -> c

(* Provs sharing (org, via_redist) are collapsed by or-ing their taints:
   every check is existential over the bits, so the union answers the
   same questions, and it bounds a node's prov set by
   #origins × (#exporters + 1) instead of additionally multiplying by
   the taint variants of every distinct path — which is what blows up
   on networks with many redundant paths. *)
let merge_provs provs =
  let key_cmp p q =
    match Int.compare p.org q.org with
    | 0 -> Int.compare p.via_redist q.via_redist
    | c -> c
  in
  let rec go = function
    | p :: q :: rest when key_cmp p q = 0 ->
      go ({ p with taint = p.taint lor q.taint } :: rest)
    | p :: rest -> p :: go rest
    | [] -> []
  in
  List.sort prov_compare (go (List.sort key_cmp provs))

type fact = Unknown | Facts of { provs : prov list; comms : int list }

let fact_equal a b =
  match (a, b) with
  | Unknown, Unknown -> true
  | Facts a, Facts b ->
    List.equal (fun p q -> prov_compare p q = 0) a.provs b.provs
    && List.equal Int.equal a.comms b.comms
  | (Unknown | Facts _), _ -> false

let join a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Facts a, Facts b ->
    Facts
      {
        provs = merge_provs (a.provs @ b.provs);
        comms = List.sort_uniq Int.compare (a.comms @ b.comms);
      }

(* ------------------------------------------------------------------ *)
(* First-match route-map reachability over the condition universe      *)

let rm_can_permit (u : Cond_bdd.t) rm ~dest =
  match rm with
  | None -> true
  | Some rm ->
    let m = u.Cond_bdd.man in
    let rec go earlier = function
      | [] -> false
      | (cl : Route_map.clause) :: rest ->
        let g = Cond_bdd.guard u cl in
        let fresh = Bdd.and_ m g (Bdd.not_ m earlier) in
        if cl.Route_map.verdict = Route_map.Permit && not (Bdd.is_bot fresh)
        then true
        else go (Bdd.or_ m earlier g) rest
    in
    go Bdd.bot (Route_map.relevant rm ~dest)

(* Fold over reachable clauses (guard escapes the union of the earlier
   guards) of the route-map specialized to [dest]. *)
let fold_reachable (u : Cond_bdd.t) rm ~dest ~init f =
  let m = u.Cond_bdd.man in
  let acc = ref init and earlier = ref Bdd.bot in
  List.iter
    (fun (cl : Route_map.clause) ->
      let g = Cond_bdd.guard u cl in
      let fresh = Bdd.and_ m g (Bdd.not_ m !earlier) in
      if not (Bdd.is_bot fresh) then acc := f !acc cl;
      earlier := Bdd.or_ m !earlier g)
    (Route_map.relevant rm ~dest);
  !acc

let reachable_matched u rm ~dest =
  fold_reachable u rm ~dest ~init:[] (fun acc (cl : Route_map.clause) ->
      List.fold_left
        (fun acc c ->
          match c with
          | Route_map.Match_community cs -> cs @ acc
          | Route_map.Match_prefix _ -> acc)
        acc cl.Route_map.conds)
  |> List.sort_uniq Int.compare

let reachable_added u rm ~dest =
  fold_reachable u rm ~dest ~init:[] (fun acc (cl : Route_map.clause) ->
      if cl.Route_map.verdict <> Route_map.Permit then acc
      else
        List.fold_left
          (fun acc a ->
            match a with
            | Route_map.Add_community c -> c :: acc
            | Route_map.Set_local_pref _ | Route_map.Delete_community _
            | Route_map.Set_med _ ->
              acc)
          acc cl.Route_map.actions)
  |> List.sort_uniq Int.compare

(* ------------------------------------------------------------------ *)
(* Propagation graph                                                   *)

(* Node id of a (router, plane) pair. *)
let node r = function Ospf -> 2 * r | Bgp -> (2 * r) + 1

type edge_kind =
  | K_ospf  (** OSPF adjacency, sender plane -> receiver plane *)
  | K_bgp of { ibgp : bool; rel : Device.relation; added : int list }
      (** deliverable BGP session; [rel] is the {e receiver}'s annotation
          of the sender, [added] the communities either route-map can add *)
  | K_o2b  (** [Ospf_into_bgp] redistribution inside one router *)
  | K_b2o  (** [Bgp_into_ospf] redistribution inside one router *)

type t = {
  net : Device.network;
  ec : Ecs.ec;
  cond : Cond_bdd.t;
  result : fact Dataflow.result;
  kinds : (int * int, edge_kind) Hashtbl.t;  (** (src node, dst node) *)
  bgp_edges : (int * int) list;  (** (sender, receiver) router pairs *)
}

let transfer_kind kind f =
  match f with
  | Unknown -> Some Unknown
  | Facts { provs; comms } -> (
    match kind with
    | K_ospf ->
      Some
        (Facts
           {
             provs =
               merge_provs
                 (List.map (fun p -> { p with taint = p.taint lor t_ospf }) provs);
             comms = [];
           })
    | K_o2b ->
      Some
        (Facts
           {
             provs =
               merge_provs
                 (List.map
                    (fun p -> { p with taint = p.taint lor t_redist })
                    provs);
             comms = [];
           })
    | K_b2o ->
      Some
        (Facts
           {
             provs =
               merge_provs
                 (List.map
                    (fun p ->
                      { p with taint = p.taint lor t_redist lor t_ospf })
                    provs);
             comms = [];
           })
    | K_bgp { ibgp; rel; added } ->
      let session = if ibgp then t_ibgp else t_ebgp in
      let relation =
        match rel with
        | Device.Provider -> t_from_provider
        | Device.Peer -> t_from_peer
        | Device.Customer | Device.Rel_unknown -> 0
      in
      let provs =
        (* Routes learned over iBGP are not re-advertised over iBGP
           (mirrors Multi's transfer). *)
        (if ibgp then List.filter (fun p -> not (has p.taint t_ibgp)) provs
         else provs)
        |> List.map (fun p ->
               { p with taint = p.taint lor session lor relation })
        |> merge_provs
      in
      if provs = [] then None
      else
        Some
          (Facts { provs; comms = List.sort_uniq Int.compare (comms @ added) }))

let analyze ?budget ?cond (net : Device.network) (ec : Ecs.ec) =
  let g = net.Device.graph in
  let rs = net.Device.routers in
  let n = Graph.n_nodes g in
  let dest = ec.Ecs.ec_prefix in
  let cond =
    match cond with Some c -> c | None -> Cond_bdd.of_network net
  in
  let kinds : (int * int, edge_kind) Hashtbl.t = Hashtbl.create 64 in
  let succ = Array.make (2 * n) [] in
  let add_edge src dst kind =
    if not (Hashtbl.mem kinds (src, dst)) then begin
      Hashtbl.replace kinds (src, dst) kind;
      succ.(src) <- dst :: succ.(src)
    end
  in
  let bgp_edges = ref [] in
  for v = 0 to n - 1 do
    (* OSPF adjacencies: link configured on both ends; routes at [v]
       propagate to each such neighbor [w]. *)
    List.iter
      (fun (w, _) ->
        if Option.is_some (Device.ospf_link_config rs.(w) v) then
          add_edge (node v Ospf) (node w Ospf) K_ospf)
      rs.(v).Device.ospf_links;
    (* BGP sessions: v (sender) -> w (receiver), kept only when the
       session can deliver the class — both sides configured, receiver's
       outbound ACL towards the sender permits it (the compiled
       [Compile.bgp_policy] semantics), and both route-maps can permit it
       individually (an over-approximation of the chained evaluation). *)
    List.iter
      (fun (w, (exp_nb : Device.bgp_neighbor)) ->
        match Device.bgp_neighbor_config rs.(w) v with
        | None -> ()
        | Some imp_nb ->
          if
            Acl.permits (Device.acl_for rs.(w) v) dest
            && rm_can_permit cond exp_nb.Device.export_rm ~dest
            && rm_can_permit cond imp_nb.Device.import_rm ~dest
          then begin
            let added =
              List.sort_uniq Int.compare
                ((match exp_nb.Device.export_rm with
                 | None -> []
                 | Some rm -> reachable_added cond rm ~dest)
                @
                match imp_nb.Device.import_rm with
                | None -> []
                | Some rm -> reachable_added cond rm ~dest)
            in
            add_edge (node v Bgp) (node w Bgp)
              (K_bgp
                 {
                   ibgp = imp_nb.Device.ibgp;
                   rel = imp_nb.Device.rel;
                   added;
                 });
            bgp_edges := (v, w) :: !bgp_edges
          end)
      rs.(v).Device.bgp_neighbors;
    (* Redistribution inside [v]. *)
    let redistributes r =
      List.exists (Multi.redistribution_equal r) rs.(v).Device.redistribute
    in
    if redistributes Multi.Ospf_into_bgp && rs.(v).Device.bgp_neighbors <> []
    then add_edge (node v Ospf) (node v Bgp) K_o2b;
    if redistributes Multi.Bgp_into_ospf && rs.(v).Device.ospf_links <> []
    then add_edge (node v Bgp) (node v Ospf) K_b2o
  done;
  (* Seeds: the class's origins announce into the protocols the compiled
     SRP originates into; static routes redistributed into BGP seed a BGP
     announcement at the redistributing router. *)
  let seeds = ref [] in
  let seed r plane prov =
    seeds := (node r plane, Facts { provs = [ prov ]; comms = [] }) :: !seeds
  in
  List.iter
    (fun o ->
      List.iter
        (fun p ->
          match p with
          | Multi.P_ebgp -> seed o Bgp { org = o; taint = 0; via_redist = -1 }
          | Multi.P_ospf ->
            seed o Ospf { org = o; taint = t_ospf; via_redist = -1 }
          | Multi.P_static | Multi.P_ibgp -> ())
        (Compile.origin_protocols net o))
    ec.Ecs.ec_origins;
  for v = 0 to n - 1 do
    if
      List.exists
        (Multi.redistribution_equal Multi.Static_into_bgp)
        rs.(v).Device.redistribute
      && rs.(v).Device.bgp_neighbors <> []
      && Device.static_next_hops rs.(v) ~dest <> []
    then
      seed v Bgp
        { org = v; taint = t_static lor t_redist; via_redist = v }
  done;
  (* [Ospf_into_bgp]/[Static_into_bgp] stamp the exporter: a leak check
     needs to know where the route last entered BGP. The o2b edge cannot
     carry its own router id through [transfer_kind] (kinds are shared),
     so wrap the transfer to stamp it here. *)
  let transfer ~src ~dst f =
    match Hashtbl.find_opt kinds (src, dst) with
    | None -> None
    | Some kind -> (
      match (kind, transfer_kind kind f) with
      | K_o2b, Some (Facts { provs; comms }) ->
        Some
          (Facts
             {
               provs =
                 merge_provs
                   (List.map (fun p -> { p with via_redist = src / 2 }) provs);
               comms;
             })
      | _, r -> r)
  in
  (* [merge_provs] already bounds a node's set by
     #origins × (#exporters + 1), and each merged prov's taint only ever
     gains bits, so the natural per-node height is a few hundred joins
     even on thousand-node networks; the caps are backstops for
     pathological inputs, not the steady-state bound. Keep them
     constants — an earlier revision scaled the size cap with the
     network (64 + 8n) and unmerged taint variants, which made
     thousand-node networks quadratic without buying any verdicts. *)
  let widen ~joins f =
    match f with
    | Unknown -> Unknown
    | Facts { provs; _ } ->
      if joins > 512 || List.length provs > 64 then Unknown else f
  in
  let problem =
    {
      Dataflow.nodes = 2 * n;
      succ = (fun v -> succ.(v));
      transfer;
      seeds = !seeds;
      join;
      equal = fact_equal;
      top = Unknown;
      widen = Some widen;
    }
  in
  let result = Dataflow.solve ?budget problem in
  {
    net;
    ec;
    cond;
    result;
    kinds;
    bgp_edges =
      List.sort_uniq
        (fun (a, b) (c, d) ->
          match Int.compare a c with 0 -> Int.compare b d | r -> r)
        !bgp_edges;
  }

let network t = t.net
let ec t = t.ec
let cond t = t.cond
let degraded t = t.result.Dataflow.degraded
let relaxations t = t.result.Dataflow.relaxations
let fact t r plane = t.result.Dataflow.facts.(node r plane)

let bgp_edges t = t.bgp_edges

let arriving t ~src ~dst =
  match Hashtbl.find_opt t.kinds (node src Bgp, node dst Bgp) with
  | None | Some (K_ospf | K_o2b | K_b2o) -> None
  | Some (K_bgp _ as kind) ->
    Option.bind (fact t src Bgp) (transfer_kind kind)

let export_added t ~src ~dst =
  let dest = t.ec.Ecs.ec_prefix in
  match Device.bgp_neighbor_config t.net.Device.routers.(src) dst with
  | None -> []
  | Some nb -> (
    match nb.Device.export_rm with
    | None -> []
    | Some rm -> reachable_added t.cond rm ~dest)

let pp_fact ~names ppf = function
  | Unknown -> Format.pp_print_string ppf "unknown"
  | Facts { provs; comms } ->
    let prov p =
      Printf.sprintf "%s[%s]%s" (names p.org)
        (taint_to_string p.taint)
        (if p.via_redist >= 0 then "@" ^ names p.via_redist else "")
    in
    Format.fprintf ppf "{%s}" (String.concat ", " (List.map prov provs));
    if comms <> [] then
      Format.fprintf ppf " comms {%s}"
        (String.concat ", "
           (List.map Config_text.community_to_string comms))

(** Generic forward dataflow over a propagation graph (the static-analysis
    counterpart of the SRP solver's fixpoint).

    A problem is a directed graph whose nodes carry abstract facts from a
    join-semilattice: [join] combines facts flowing into a node, [transfer]
    pushes a fact across an edge ([None]: the edge filters it), and seeds
    place initial facts. [solve] runs a worklist to the least fixpoint
    above the seeds.

    Soundness under resource limits: each edge relaxation consumes one
    {!Budget} tick. If the budget runs out, the analysis does {e not}
    return the partial (unsound, under-approximate) state — every node's
    fact is forced to [top] ("anything may reach here") and the exhaustion
    info is reported in [degraded]. Clients that treat [top] as "unknown"
    therefore stay sound: facts only ever over-approximate, never drop, a
    reachable concrete state. [widen] bounds lattice height the same way:
    a node joined too many times can be bumped toward [top] instead of
    climbing an unbounded chain. *)

type 'fact problem = {
  nodes : int;  (** node ids are [0 .. nodes-1] *)
  succ : int -> int list;  (** out-edges of a node *)
  transfer : src:int -> dst:int -> 'fact -> 'fact option;
      (** fact leaving [src] as seen arriving at [dst]; [None] = filtered *)
  seeds : (int * 'fact) list;  (** initial facts (joined into bottom) *)
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  top : 'fact;  (** the "unknown" element: absorbing for [join] *)
  widen : (joins:int -> 'fact -> 'fact) option;
      (** applied after each changing join with the node's join count;
          must eventually reach a fixed fact (e.g. jump to [top]) *)
}

type 'fact result = {
  facts : 'fact option array;  (** [None]: nothing reaches the node *)
  relaxations : int;  (** edge relaxations performed *)
  degraded : Budget.info option;
      (** budget exhaustion: every fact was forced to [Some top] *)
}

val solve : ?budget:Budget.t -> 'fact problem -> 'fact result
(** Least fixpoint by FIFO worklist; one budget tick (phase ["flow"]) per
    edge relaxation. Never raises {!Budget.Exhausted} — see [degraded]. *)

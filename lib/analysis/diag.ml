type severity = Error | Warning | Info

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

type loc = {
  router : string option;
  neighbor : string option;
  rm_name : string option;
  clause : int option;
  line : int option;
}

let no_loc =
  { router = None; neighbor = None; rm_name = None; clause = None; line = None }

let at_router ?neighbor ?line router =
  { no_loc with router = Some router; neighbor; line }

type t = { check : string; severity : severity; loc : loc; message : string }

let make ~check ~severity ?(loc = no_loc) message =
  { check; severity; loc; message }

(* Report order: source position first (diagnostics read like compiler
   output over the config file — findings without a line sort last), then
   the check id, then severity and the remaining location fields for a
   total, deterministic order. *)
let opt_compare cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> 1
  | Some _, None -> -1
  | Some a, Some b -> cmp a b

let loc_compare a b =
  let c = opt_compare String.compare a.router b.router in
  if c <> 0 then c
  else
    let c = opt_compare String.compare a.neighbor b.neighbor in
    if c <> 0 then c
    else
      let c = opt_compare String.compare a.rm_name b.rm_name in
      if c <> 0 then c else opt_compare Int.compare a.clause b.clause

let compare a b =
  let c = opt_compare Int.compare a.loc.line b.loc.line in
  if c <> 0 then c
  else
    let c = String.compare a.check b.check in
    if c <> 0 then c
    else
      let c =
        Int.compare (severity_rank b.severity) (severity_rank a.severity)
      in
      if c <> 0 then c
      else
        let c = loc_compare a.loc b.loc in
        if c <> 0 then c else String.compare a.message b.message

let pp_loc ppf (l : loc) =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  Option.iter (fun r -> add "router %s" r) l.router;
  Option.iter (fun n -> add "-> %s" n) l.neighbor;
  Option.iter (fun n -> add "route-map %s" n) l.rm_name;
  Option.iter (fun i -> add "clause %d" (i + 1)) l.clause;
  Option.iter (fun n -> add "line %d" n) l.line;
  match List.rev !parts with
  | [] -> Format.pp_print_string ppf "network"
  | ps -> Format.pp_print_string ppf (String.concat " " ps)

let pp ppf d =
  Format.fprintf ppf "%s: [%s] %a: %s"
    (severity_to_string d.severity)
    d.check pp_loc d.loc d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 128 in
  let field k v = Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" k v) in
  let str_field k v = field k (Printf.sprintf "\"%s\"" (json_escape v)) in
  Buffer.add_string buf
    (Printf.sprintf "{\"check\":\"%s\",\"severity\":\"%s\""
       (json_escape d.check)
       (severity_to_string d.severity));
  Option.iter (str_field "router") d.loc.router;
  Option.iter (str_field "neighbor") d.loc.neighbor;
  Option.iter (str_field "route_map") d.loc.rm_name;
  Option.iter (fun i -> field "clause" (string_of_int (i + 1))) d.loc.clause;
  Option.iter (fun n -> field "line" (string_of_int n)) d.loc.line;
  str_field "message" d.message;
  Buffer.add_char buf '}';
  Buffer.contents buf

(** Compression blockers.

    Routers that the topology alone would let Bonsai merge — same degree,
    same neighbor-degree profile, same protocol mix — can still land in
    different roles because their interface policies differ semantically.
    When the difference is {e small} (confined to a couple of BDD fields,
    typically one community or one local-preference value — the shape of a
    copy-paste error), this check reports the closest blocking pair per
    topological group and names the first BDD variable on which the two
    policies disagree, with a witness advertisement. Info severity: the
    configurations may well be intentional; the report explains why the
    abstraction is bigger than the topology suggests. *)

val checks : (string * string) list

type blocker = {
  bl_dest : Prefix.t;  (** the destination class the pair was compared on *)
  bl_origin : int;  (** the class's (unique) origin node *)
  bl_r1 : int;  (** representative of the group *)
  bl_w1 : int;  (** the interface of [bl_r1] whose policy blocks *)
  bl_r2 : int;  (** the group member it cannot merge with *)
  bl_w2 : int;  (** the interface of [bl_r2] compared against *)
  bl_var : string;  (** first differing BDD variable, described *)
  bl_witness : string;  (** a satisfying assignment of the XOR *)
}

val blockers : Device.network -> blocker list
(** Structured blocker reports (one per topological group with a
    near-equal blocking pair), deterministic order. The flow analysis
    builds its upstream-divergence localization on top of these. *)

val run : ?locs:Config_text.loc_table -> Device.network -> Diag.t list

type 'fact problem = {
  nodes : int;
  succ : int -> int list;
  transfer : src:int -> dst:int -> 'fact -> 'fact option;
  seeds : (int * 'fact) list;
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  top : 'fact;
  widen : (joins:int -> 'fact -> 'fact) option;
}

type 'fact result = {
  facts : 'fact option array;
  relaxations : int;
  degraded : Budget.info option;
}

let solve ?(budget = Budget.infinite) p =
  let facts = Array.make p.nodes None in
  let joins = Array.make p.nodes 0 in
  let in_queue = Array.make p.nodes false in
  let queue = Queue.create () in
  let enqueue v =
    if not in_queue.(v) then begin
      in_queue.(v) <- true;
      Queue.add v queue
    end
  in
  let relaxations = ref 0 in
  (* Join [f] into node [v]; enqueue on change. *)
  let absorb v f =
    let f' =
      match facts.(v) with None -> f | Some old -> p.join old f
    in
    let changed =
      match facts.(v) with None -> true | Some old -> not (p.equal old f')
    in
    if changed then begin
      joins.(v) <- joins.(v) + 1;
      let f' =
        match p.widen with
        | Some w -> w ~joins:joins.(v) f'
        | None -> f'
      in
      facts.(v) <- Some f';
      enqueue v
    end
  in
  match
    List.iter (fun (v, f) -> absorb v f) p.seeds;
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      in_queue.(u) <- false;
      match facts.(u) with
      | None -> ()
      | Some fu ->
        List.iter
          (fun v ->
            Budget.tick budget ~phase:"flow";
            incr relaxations;
            match p.transfer ~src:u ~dst:v fu with
            | None -> ()
            | Some f -> absorb v f)
          (p.succ u)
    done
  with
  | () -> { facts; relaxations = !relaxations; degraded = None }
  | exception Budget.Exhausted info ->
    (* Degrade soundly: every node becomes "unknown" rather than keeping a
       partial under-approximation that would hide diagnostics. *)
    {
      facts = Array.make p.nodes (Some p.top);
      relaxations = !relaxations;
      degraded = Some info;
    }

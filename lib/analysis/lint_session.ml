let checks =
  [
    ("one-sided-bgp-session", "BGP neighbor configured on one side of a link");
    ("ibgp-mismatch", "session is iBGP on one side and eBGP on the other");
    ("one-sided-ospf-link", "OSPF interface configured on one side of a link");
    ("ospf-area-mismatch", "OSPF areas differ across a link");
  ]

let run ?locs (net : Device.network) =
  let g = net.Device.graph in
  let out = ref [] in
  let add d = out := d :: !out in
  let loc v u =
    let router = Graph.name g v in
    Diag.at_router
      ~neighbor:(Graph.name g u)
      ?line:(Option.bind locs (fun l -> Config_text.router_line l router))
      router
  in
  Graph.iter_edges g (fun v u ->
      let rv = net.Device.routers.(v) and ru = net.Device.routers.(u) in
      let nv = Device.bgp_neighbor_config rv u
      and nu = Device.bgp_neighbor_config ru v in
      (match (nv, nu) with
      | Some _, None ->
        add
          (Diag.make ~check:"one-sided-bgp-session" ~severity:Diag.Error
             ~loc:(loc v u)
             (Printf.sprintf
                "BGP neighbor %s is configured here, but %s has no matching \
                 neighbor statement — the session never comes up"
                (Graph.name g u) (Graph.name g u)))
      | Some cv, Some cu ->
        (* Report the mismatch once per link, from the lower endpoint. *)
        if v < u && cv.Device.ibgp <> cu.Device.ibgp then
          add
            (Diag.make ~check:"ibgp-mismatch" ~severity:Diag.Error
               ~loc:(loc v u)
               (Printf.sprintf
                  "session with %s is %s here but %s on the far side"
                  (Graph.name g u)
                  (if cv.Device.ibgp then "iBGP" else "eBGP")
                  (if cu.Device.ibgp then "iBGP" else "eBGP")))
      | None, _ -> ());
      let lv = Device.ospf_link_config rv u
      and lu = Device.ospf_link_config ru v in
      match (lv, lu) with
      | Some _, None ->
        add
          (Diag.make ~check:"one-sided-ospf-link" ~severity:Diag.Error
             ~loc:(loc v u)
             (Printf.sprintf
                "OSPF is enabled towards %s, but %s does not run OSPF on \
                 the reverse interface — no adjacency forms"
                (Graph.name g u) (Graph.name g u)))
      | Some cv, Some cu ->
        if v < u && cv.Device.area <> cu.Device.area then
          add
            (Diag.make ~check:"ospf-area-mismatch" ~severity:Diag.Error
               ~loc:(loc v u)
               (Printf.sprintf
                  "OSPF link to %s is in area %d here but area %d on the \
                   far side — the adjacency never forms"
                  (Graph.name g u) cv.Device.area cu.Device.area))
      | None, _ -> ());
  List.rev !out

(** ACL checks: dead rules and ACLs that blackhole the router's own
    prefixes.

    Both are semantic, over the address-cube encoding of {!Cond_bdd}: a
    rule is dead iff the union of earlier rules' address sets covers its
    own (so a rule can be killed by several narrower earlier rules
    together); an ACL conflicts with an origination when the addresses of
    an originated prefix are (even partly) denied by an outbound ACL of
    the same router — traffic the router attracts by announcing the
    prefix would then be dropped at its own interface. *)

val checks : (string * string) list

val run :
  ?locs:Config_text.loc_table -> Cond_bdd.t -> Device.network -> Diag.t list

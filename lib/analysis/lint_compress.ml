let checks =
  [
    ( "compression-blocker",
      "near-equal edge policies keep topologically similar routers in \
       different roles" );
  ]

(* Policy-free role of a router: what the topology alone says about it.
   Routers sharing this key are merge candidates; only their policies can
   keep them apart. *)
let topology_key (net : Device.network) v =
  let g = net.Device.graph in
  let r = net.Device.routers.(v) in
  let deg u = Array.length (Graph.succ g u) in
  ( deg v,
    List.sort Int.compare (List.map deg (Array.to_list (Graph.succ g v))),
    r.Device.bgp_neighbors <> [],
    r.Device.ospf_links <> [],
    List.length r.Device.static_routes,
    r.Device.originated <> [],
    List.sort compare r.Device.redistribute )

(* The import-side policy vector of a router for one destination: the edge
   policy of every interface, as (neighbor, BDD). *)
let policy_vector u (net : Device.network) ~dest v =
  Array.to_list (Graph.succ net.Device.graph v)
  |> List.map (fun w -> (w, Policy_bdd.edge_policy u net ~dest v w))

(* The first variable (in BDD order) where two distinct functions
   diverge, by simultaneous descent: at the topmost live variable, if
   both co-factor pairs differ the functions disagree about that variable
   itself; otherwise the difference is confined to one branch — follow
   it. Note [xor]'s support is the wrong tool here: two policies that are
   disjoint in a variable (one forces it true, the other false) cancel it
   out of the XOR entirely. *)
let rec first_diff_var m b1 b2 =
  let v =
    match (Bdd.support b1, Bdd.support b2) with
    | v1 :: _, v2 :: _ -> min v1 v2
    | v :: _, [] | [], v :: _ -> v
    | [], [] -> invalid_arg "first_diff_var: equal constants"
  in
  let co x = (Bdd.restrict m b1 ~var:v x, Bdd.restrict m b2 ~var:v x) in
  let f1, f2 = co false and t1, t2 = co true in
  if Bdd.equal f1 f2 then first_diff_var m t1 t2
  else if Bdd.equal t1 t2 then first_diff_var m f1 f2
  else v

let describe_var u i =
  let name = Policy_bdd.var_name u i in
  let base = String.concat "" (String.split_on_char '\'' name) in
  match i mod 3 with
  | 0 -> Printf.sprintf "input %s" base
  | 1 -> Printf.sprintf "output %s" base
  | _ -> name

type blocker = {
  bl_dest : Prefix.t;
  bl_origin : int;
  bl_r1 : int;
  bl_w1 : int;
  bl_r2 : int;
  bl_w2 : int;
  bl_var : string;
  bl_witness : string;
}

let blockers (net : Device.network) =
  let g = net.Device.graph in
  let n = Graph.n_nodes g in
  match
    List.find_opt
      (fun (ec : Ecs.ec) -> match ec.ec_origins with [ _ ] -> true | _ -> false)
      (Ecs.compute net)
  with
  | None -> []
  | Some ec ->
    let dest = ec.Ecs.ec_prefix in
    let origin = Ecs.single_origin ec in
    let u = Policy_bdd.universe_of_network net in
    let m = u.Policy_bdd.man in
    let groups = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      let k = topology_key net v in
      Hashtbl.replace groups k
        (v :: Option.value ~default:[] (Hashtbl.find_opt groups k))
    done;
    (* Deterministic group order: by smallest member id (Hashtbl.iter
       order depends on key hashing). *)
    let groups =
      Hashtbl.fold (fun _ members acc -> List.rev members :: acc) groups []
      |> List.filter (function [] | [ _ ] -> false | _ -> true)
      |> List.sort (fun a b -> Int.compare (List.hd a) (List.hd b))
    in
    (* Multiset difference of policy vectors by semantic (pointer)
       equality: the interfaces of [a] whose policy has no matching
       occurrence among [b]'s. Shared policies are exactly what would let
       the two routers merge, so only the leftovers can block. *)
    let vector_minus a b =
      List.fold_left
        (fun (left, b) (w, p) ->
          let rec pull acc = function
            | [] -> None
            | (_, q) :: rest when Policy_bdd.same p q ->
              Some (List.rev_append acc rest)
            | x :: rest -> pull (x :: acc) rest
          in
          match pull [] b with
          | Some b -> (left, b)
          | None -> ((w, p) :: left, b))
        ([], b) a
      |> fst
    in
    let out = ref [] in
    List.iter
      (fun members ->
        match members with
        | [] | [ _ ] -> ()
        | rep :: rest -> (
          let pv = policy_vector u net ~dest in
          let vec_rep = pv rep in
          (* The closest blocking pair in the group: the semantically
             different policy pair with the smallest XOR, comparing only
             interfaces towards the same kind of neighbor. *)
          let best = ref None in
          List.iter
            (fun v ->
              let vec_v = pv v in
              let rep_only = vector_minus vec_rep vec_v
              and v_only = vector_minus vec_v vec_rep in
              List.iter
                (fun (w1, b1) ->
                  List.iter
                    (fun (w2, b2) ->
                      if topology_key net w1 = topology_key net w2 then begin
                        let d = Bdd.xor m b1 b2 in
                        (* Near-equal only: the difference is confined to a
                           couple of fields. Genuinely different policies
                           mean genuinely different roles — not a blocker
                           worth reporting. *)
                        if List.length (Bdd.support d) <= 2 * 3 then
                          let sz = Bdd.size d in
                          match !best with
                          | Some (_, _, _, _, _, sz') when sz' <= sz -> ()
                          | _ -> best := Some (rep, w1, v, w2, d, sz)
                      end)
                    v_only)
                rep_only)
            rest;
          match !best with
          | None -> ()
          | Some (r1, w1, r2, w2, diff, _) ->
            let b1 = List.assoc w1 (pv r1) and b2 = List.assoc w2 (pv r2) in
            let v0 = first_diff_var m b1 b2 in
            let witness =
              Bdd.any_sat diff
              |> List.filter (fun (i, _) -> i mod 3 <> 2)
              |> List.map (fun (i, b) ->
                     Printf.sprintf "%s%s" (if b then "" else "!")
                       (Policy_bdd.var_name u i))
              |> String.concat " "
            in
            out :=
              {
                bl_dest = dest;
                bl_origin = origin;
                bl_r1 = r1;
                bl_w1 = w1;
                bl_r2 = r2;
                bl_w2 = w2;
                bl_var = describe_var u v0;
                bl_witness = witness;
              }
              :: !out))
      groups;
    List.rev !out

let run ?locs (net : Device.network) =
  ignore locs;
  let name = Graph.name net.Device.graph in
  List.map
    (fun b ->
      Diag.make ~check:"compression-blocker" ~severity:Diag.Info
        ~loc:(Diag.at_router ~neighbor:(name b.bl_r2) (name b.bl_r1))
        (Printf.sprintf
           "%s and %s fill the same topological role but cannot share an \
            abstract node for %s: the policy on %s<-%s differs from %s<-%s \
            starting at %s (witness: %s)"
           (name b.bl_r1) (name b.bl_r2)
           (Prefix.to_string b.bl_dest)
           (name b.bl_r1) (name b.bl_w1) (name b.bl_r2) (name b.bl_w2)
           b.bl_var b.bl_witness))
    (blockers net)

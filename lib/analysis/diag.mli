(** Lint diagnostics.

    Every semantic check over a {!Device.network} reports its findings as
    a list of diagnostics: which check fired, how severe it is, where in
    the configuration it points, and a human-readable message. Locations
    are structural (router, route-map, clause, ACL interface) with an
    optional source line filled in when the network was loaded from a
    configuration file ({!Config_text.parse_with_locs}). *)

type severity = Error | Warning | Info

val severity_rank : severity -> int
(** [Error] = 2, [Warning] = 1, [Info] = 0. *)

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

type loc = {
  router : string option;  (** node name the finding is attached to *)
  neighbor : string option;  (** the interface / session peer, if any *)
  rm_name : string option;  (** route-map name (text-loaded networks) *)
  clause : int option;  (** 0-based clause / ACL-rule index *)
  line : int option;  (** 1-based source line (text-loaded networks) *)
}

val no_loc : loc
val at_router : ?neighbor:string -> ?line:int -> string -> loc

type t = {
  check : string;  (** the check's stable identifier, kebab-case *)
  severity : severity;
  loc : loc;
  message : string;
}

val make :
  check:string -> severity:severity -> ?loc:loc -> string -> t

val compare : t -> t -> int
(** The deterministic report order: source line first (diagnostics without
    a line sort last), then check id, then descending severity, then the
    remaining location fields and the message. Total — equal only for
    identical diagnostics — so report output is stable across runs. *)

val pp : Format.formatter -> t -> unit
(** One line: [severity: [check] location: message]. *)

val to_json : t -> string
(** One JSON object (stable field order; absent location fields are
    omitted). *)

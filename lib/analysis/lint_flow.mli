(** Whole-network checks over the route-provenance dataflow ({!Flow}).

    Unlike the per-device linters, these only fire when the misbehaving
    route can actually {e get there}: every verdict is computed against
    the provenance fixpoint, which over-approximates the simulator, so
    "no reachable origin can do X" conclusions are sound. Facts degraded
    to [Unknown] (budget exhaustion) suppress the checks that would read
    them and add a single [flow-degraded] warning instead — the analysis
    never reports from partial state. *)

val checks : (string * string) list

val run :
  ?locs:Config_text.loc_table ->
  ?budget:Budget.t ->
  Device.network ->
  Diag.t list
(** All flow checks over every destination equivalence class. *)

val analyses :
  ?budget:Budget.t -> Device.network -> Flow.t list
(** The per-class provenance fixpoints the checks are computed from (for
    the CLI's [--facts] dump); one per {!Ecs.compute} class, same order. *)

(** Whole-network route-provenance analysis (the `bonsai flow` substrate).

    For one destination equivalence class, every router is split into an
    OSPF-plane and a BGP-plane node; directed edges model every way a
    route for the class can move between planes: OSPF adjacencies, BGP
    sessions whose policies can deliver the class (receiver ACL permits it
    and both route-maps can permit it, first-match semantics over
    {!Cond_bdd}), and intra-router redistribution. The {!Dataflow} engine
    then pushes {e provenance facts} to a fixpoint: at each plane of each
    router, the set of possible (origin, taint) pairs plus the communities
    a route may carry when it gets there.

    Facts {e over-approximate} the simulator: whenever the stable solution
    of the compiled SRP delivers a route to a router, this analysis admits
    a prov for it with the matching origin, and the fact's community set
    contains every community the delivered route carries. The converse
    does not hold (policies are abstracted to "can permit", AS-path loop
    prevention and community deletion are ignored), which is exactly what
    makes "no reachable origin can do X" verdicts trustworthy. Budget
    exhaustion degrades every fact to {!Unknown} — checks skip [Unknown]
    rather than report from partial state. *)

type plane = Ospf | Bgp

(** {1 Taint bits} — events on some path that produced the prov. *)

val t_ospf : int  (** has been in the OSPF plane *)

val t_ebgp : int  (** traversed an eBGP session *)

val t_ibgp : int  (** traversed an iBGP session *)

val t_redist : int  (** crossed a redistribution boundary *)

val t_static : int  (** originated from a static route *)

val t_from_provider : int  (** learned across a session from a provider *)

val t_from_peer : int  (** learned across a session from a peer *)

val has : int -> int -> bool
(** [has taint bit]. *)

val taint_to_string : int -> string
(** E.g. ["ospf+ebgp+redist"]; ["-"] for an empty taint. *)

type prov = {
  org : int;  (** originating router of the route *)
  taint : int;
  via_redist : int;
      (** the router whose [Ospf_into_bgp]/[Static_into_bgp] redistribution
          last injected this route into BGP, [-1] if none — the exporter a
          cross-protocol leak re-enters OSPF {e away} from *)
}

type fact = Unknown | Facts of { provs : prov list; comms : int list }
(** [provs] sorted and deduplicated; [comms] sorted ascending. [Unknown]
    is the lattice top ("any route, any communities"). *)

val fact_equal : fact -> fact -> bool

type t

val analyze :
  ?budget:Budget.t -> ?cond:Cond_bdd.t -> Device.network -> Ecs.ec -> t
(** One budget tick per edge relaxation (phase ["flow"]). Never raises
    {!Budget.Exhausted} — see {!degraded}. [cond] lets callers analyzing
    many classes share one condition universe (it is class-independent);
    built from the network when absent. *)

val network : t -> Device.network
val ec : t -> Ecs.ec
val cond : t -> Cond_bdd.t
(** The condition universe the analysis used (shared with callers so
    route-map reachability questions agree with edge construction). *)

val degraded : t -> Budget.info option
val relaxations : t -> int

val fact : t -> int -> plane -> fact option
(** [None]: no route for the class can reach this plane of the router. *)

val bgp_edges : t -> (int * int) list
(** The (sender, receiver) BGP session edges whose policies can deliver
    the class, sorted. Sessions filtered by ACL or route-maps are absent. *)

val arriving : t -> src:int -> dst:int -> fact option
(** The fact as it arrives at [dst] over the session edge [(src, dst)]
    (the edge's transfer applied to [src]'s final fact): after the iBGP
    re-advertisement filter, taint update and community additions. [None]
    when the edge is not in {!bgp_edges} or nothing reaches [src]. *)

val export_added : t -> src:int -> dst:int -> int list
(** Communities the {e sender-side} export route-map of the session can
    add (reachable permit clauses only) — what [dst]'s import route-map
    can observe beyond the communities already on the route at [src]. *)

val pp_fact : names:(int -> string) -> Format.formatter -> fact -> unit

(** {1 Route-map reachability helpers} (first-match semantics, shared with
    the flow checks). *)

val rm_can_permit : Cond_bdd.t -> Route_map.t option -> dest:Prefix.t -> bool
(** Can the route-map permit {e some} advertisement of [dest]? [None]
    (no route-map) permits everything. *)

val reachable_matched :
  Cond_bdd.t -> Route_map.t -> dest:Prefix.t -> int list
(** Communities tested by a reachable clause (permit or deny) of the
    route-map specialized to [dest]; sorted, deduplicated. *)

val reachable_added : Cond_bdd.t -> Route_map.t -> dest:Prefix.t -> int list
(** Communities added by a reachable {e permit} clause of the route-map
    specialized to [dest]; sorted, deduplicated. *)

(** The linter: every semantic configuration check, in one pass.

    Checks are semantic, not syntactic: route-map and ACL reachability are
    decided over a BDD encoding of the match conditions ({!Cond_bdd}), so
    a clause shadowed only by the {e union} of earlier clauses — invisible
    to pairwise syntactic comparison — is still found, and a clause that
    merely {e looks} redundant but is reachable is never flagged. *)

val checks : (string * string) list
(** Every check's (name, one-line description), in report order. *)

val run :
  ?locs:Config_text.loc_table ->
  ?compression:bool ->
  ?flow:bool ->
  ?budget:Budget.t ->
  Device.network ->
  Diag.t list
(** Run every check; diagnostics in the deterministic report order of
    {!Diag.compare} — source line first, then check id — so output is
    stable across runs and machines. [locs] (from
    {!Config_text.parse_with_locs}) adds source line numbers.
    [~compression:false] skips the compression-blocker report (it builds
    a full policy-BDD universe, noticeably slower on big networks).
    [~flow:true] additionally runs the whole-network provenance checks
    ({!Lint_flow}), metered by [budget]. *)

val filter : min_severity:Diag.severity -> Diag.t list -> Diag.t list
val has_errors : Diag.t list -> bool

val pp_text : Format.formatter -> Diag.t list -> unit
(** One line per diagnostic plus a summary count line. *)

val pp_json : Format.formatter -> Diag.t list -> unit
(** A JSON array of diagnostic objects (see {!Diag.to_json}). *)

let checks =
  [
    ( "cross-protocol-leak",
      "a route can leave OSPF into BGP, traverse sessions, and be \
       re-injected into OSPF at another router" );
    ( "unintended-transit",
      "a route learned from a provider or peer can be re-exported to \
       another provider or peer (Gao–Rexford violation)" );
    ( "community-provenance",
      "a community matched by a session's route-map that no route able to \
       reach the session can carry" );
    ( "compression-blocker-origin",
      "the upstream policy divergence that causes two near-equal roles to \
       split" );
    ( "flow-degraded",
      "the provenance analysis ran out of budget; flow facts are unknown" );
  ]

let analyses ?budget (net : Device.network) =
  let cond = Cond_bdd.of_network net in
  List.map (Flow.analyze ?budget ~cond net) (Ecs.compute net)

let router_loc ?locs g v =
  let router = Graph.name g v in
  Diag.at_router
    ?line:(Option.bind locs (fun l -> Config_text.router_line l router))
    router

let session_loc ?locs g v w =
  let router = Graph.name g v in
  Diag.at_router ~neighbor:(Graph.name g w)
    ?line:(Option.bind locs (fun l -> Config_text.router_line l router))
    router

(* ------------------------------------------------------------------ *)
(* Check 1: cross-protocol route leaks.

   A prov sitting in some router's BGP plane with [t_ospf] has been in
   OSPF, left it through an [Ospf_into_bgp] exporter ([via_redist]) and
   traversed at least one session; if this router re-injects BGP into
   OSPF and is not the exporter itself, the route re-enters OSPF away
   from where it left — the OSPF→BGP→OSPF shape the per-device
   redistribution-cycle check cannot see across multiple hops. *)

let leak_check ?locs (t : Flow.t) =
  let net = Flow.network t in
  let g = net.Device.graph in
  let rs = net.Device.routers in
  let dest = (Flow.ec t).Ecs.ec_prefix in
  let out = ref [] in
  Array.iteri
    (fun b (r : Device.router) ->
      if
        List.exists
          (Multi.redistribution_equal Multi.Bgp_into_ospf)
          r.Device.redistribute
        && r.Device.ospf_links <> []
      then
        match Flow.fact t b Flow.Bgp with
        | None | Some Flow.Unknown -> ()
        | Some (Flow.Facts { provs; _ }) -> (
          let leaky =
            List.filter
              (fun (p : Flow.prov) ->
                Flow.has p.taint Flow.t_ospf
                && Flow.has p.taint Flow.t_redist
                && (Flow.has p.taint Flow.t_ebgp
                   || Flow.has p.taint Flow.t_ibgp)
                && p.via_redist >= 0
                && p.via_redist <> b)
              provs
          in
          match leaky with
          | [] -> ()
          | p :: _ ->
            let name = Graph.name g in
            out :=
              Diag.make ~check:"cross-protocol-leak" ~severity:Diag.Error
                ~loc:(router_loc ?locs g b)
                (Printf.sprintf
                   "a route for %s originated at %s can leave OSPF into BGP \
                    at %s, traverse BGP sessions, and be re-injected into \
                    OSPF here at %s — a cross-protocol leak that can form a \
                    forwarding loop no single device sees"
                   (Prefix.to_string dest) (name p.org) (name p.via_redist)
                   (name b))
              :: !out))
    rs;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Check 2: unintended transit. Only sessions annotated with a business
   relationship participate; unannotated networks are silent. *)

let transit_check ?locs (t : Flow.t) =
  let net = Flow.network t in
  let g = net.Device.graph in
  let dest = (Flow.ec t).Ecs.ec_prefix in
  let edges = Flow.bgp_edges t in
  let edge_exists v w =
    List.exists (fun (a, b) -> Int.equal a v && Int.equal b w) edges
  in
  let out = ref [] in
  Array.iteri
    (fun r (rt : Device.router) ->
      List.iter
        (fun (w, (nb : Device.bgp_neighbor)) ->
          let exports_to_noncustomer =
            match nb.Device.rel with
            | Device.Provider | Device.Peer -> true
            | Device.Customer | Device.Rel_unknown -> false
          in
          if exports_to_noncustomer && edge_exists r w then
            match Flow.fact t r Flow.Bgp with
            | None | Some Flow.Unknown -> ()
            | Some (Flow.Facts { provs; _ }) -> (
              let tainted =
                List.filter
                  (fun (p : Flow.prov) ->
                    Flow.has p.taint Flow.t_from_provider
                    || Flow.has p.taint Flow.t_from_peer)
                  provs
              in
              match tainted with
              | [] -> ()
              | p :: _ ->
                let name = Graph.name g in
                out :=
                  Diag.make ~check:"unintended-transit"
                    ~severity:Diag.Warning
                    ~loc:(session_loc ?locs g r w)
                    (Printf.sprintf
                       "a route for %s learned from a %s (originated at %s) \
                        can be re-exported to %s, a %s — %s provides \
                        transit between non-customers (valley-free \
                        violation)"
                       (Prefix.to_string dest)
                       (if Flow.has p.taint Flow.t_from_provider then
                          "provider"
                        else "peer")
                       (name p.org) (name w)
                       (Device.relation_name nb.Device.rel)
                       (name r))
                  :: !out))
        rt.Device.bgp_neighbors)
    net.Device.routers;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Check 3: community provenance. A community matched by a reachable
   clause of a session's route-map is flagged when, across every class
   where a route can reach the session, the arriving community set never
   contains it. Any [Unknown] fact, and any class where it can arrive,
   clears the candidate — over-approximation keeps this sound (the
   simulator can only deliver communities the facts contain). *)

type comm_site = {
  cs_router : int;
  cs_peer : int;
  cs_dir : string;  (** "import" | "export" *)
  cs_comm : int;
}

let comm_check ?locs (ts : Flow.t list) =
  match ts with
  | [] -> []
  | t0 :: _ ->
    let net = Flow.network t0 in
    let g = net.Device.graph in
    (* candidate -> true when some class proved the match reachable (or
       unknown); candidates accumulate evidence only while absent *)
    let killed : (comm_site, unit) Hashtbl.t = Hashtbl.create 16 in
    let evidence : (comm_site, unit) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun t ->
        let dest = (Flow.ec t).Ecs.ec_prefix in
        let cond = Flow.cond t in
        Array.iteri
          (fun r (rt : Device.router) ->
            List.iter
              (fun (w, (nb : Device.bgp_neighbor)) ->
                (* Import side: r's import route-map on the session from
                   w; matches see the route as w's export left it. *)
                (match nb.Device.import_rm with
                | None -> ()
                | Some rm ->
                  let matched = Flow.reachable_matched cond rm ~dest in
                  if matched <> [] then (
                    match Flow.fact t w Flow.Bgp with
                    | None -> () (* nothing reaches w: no evidence *)
                    | Some Flow.Unknown ->
                      List.iter
                        (fun c ->
                          Hashtbl.replace killed
                            { cs_router = r; cs_peer = w; cs_dir = "import";
                              cs_comm = c }
                            ())
                        matched
                    | Some (Flow.Facts { provs; comms }) ->
                      if provs <> [] then
                        let arriving =
                          List.sort_uniq Int.compare
                            (comms @ Flow.export_added t ~src:w ~dst:r)
                        in
                        List.iter
                          (fun c ->
                            let site =
                              { cs_router = r; cs_peer = w;
                                cs_dir = "import"; cs_comm = c }
                            in
                            if List.exists (Int.equal c) arriving then
                              Hashtbl.replace killed site ()
                            else Hashtbl.replace evidence site ())
                          matched));
                (* Export side: r's export route-map towards w; matches
                   see r's own routes. *)
                match nb.Device.export_rm with
                | None -> ()
                | Some rm ->
                  let matched = Flow.reachable_matched cond rm ~dest in
                  if matched <> [] then (
                    match Flow.fact t r Flow.Bgp with
                    | None -> ()
                    | Some Flow.Unknown ->
                      List.iter
                        (fun c ->
                          Hashtbl.replace killed
                            { cs_router = r; cs_peer = w; cs_dir = "export";
                              cs_comm = c }
                            ())
                        matched
                    | Some (Flow.Facts { provs; comms }) ->
                      if provs <> [] then
                        List.iter
                          (fun c ->
                            let site =
                              { cs_router = r; cs_peer = w;
                                cs_dir = "export"; cs_comm = c }
                            in
                            if List.exists (Int.equal c) comms then
                              Hashtbl.replace killed site ()
                            else Hashtbl.replace evidence site ())
                          matched))
              rt.Device.bgp_neighbors)
          net.Device.routers)
      ts;
    Hashtbl.fold
      (fun site () acc ->
        if Hashtbl.mem killed site then acc else site :: acc)
      evidence []
    |> List.sort (fun a b ->
           match Int.compare a.cs_router b.cs_router with
           | 0 -> (
             match Int.compare a.cs_peer b.cs_peer with
             | 0 -> (
               match String.compare a.cs_dir b.cs_dir with
               | 0 -> Int.compare a.cs_comm b.cs_comm
               | c -> c)
             | c -> c)
           | c -> c)
    |> List.map (fun site ->
           let name = Graph.name g in
           Diag.make ~check:"community-provenance" ~severity:Diag.Warning
             ~loc:(session_loc ?locs g site.cs_router site.cs_peer)
             (Printf.sprintf
                "the %s route-map of %s %s %s matches community %s, but no \
                 route that can reach this session carries it — the match \
                 can never fire"
                site.cs_dir
                (name site.cs_router)
                (if site.cs_dir = "import" then "<-" else "->")
                (name site.cs_peer)
                (Config_text.community_to_string site.cs_comm)))

(* ------------------------------------------------------------------ *)
(* Check 4: compression-blocker localization. For each blocker pair,
   follow the BGP propagation tree from the class origin to both routers
   and compare the edge-policy BDDs hop by hop: if the first semantic
   divergence sits strictly before the final hop, the split the blocker
   reports is only a symptom — the causing divergence is upstream. *)

let blocker_origin_check ?locs (ts : Flow.t list) (net : Device.network) =
  match Lint_compress.blockers net with
  | [] -> []
  | bls -> (
    let g = net.Device.graph in
    let u = Policy_bdd.universe_of_network net in
    match
      List.find_opt
        (fun t ->
          match bls with
          | b :: _ -> Prefix.equal (Flow.ec t).Ecs.ec_prefix b.Lint_compress.bl_dest
          | [] -> false)
        ts
    with
    | None -> []
    | Some t ->
      let n = Graph.n_nodes g in
      (* BFS parent tree over deliverable sessions from the origin. *)
      let parent = Array.make n (-1) in
      let edges = Flow.bgp_edges t in
      let origin =
        match bls with b :: _ -> b.Lint_compress.bl_origin | [] -> 0
      in
      let visited = Array.make n false in
      visited.(origin) <- true;
      let q = Queue.create () in
      Queue.add origin q;
      while not (Queue.is_empty q) do
        let v = Queue.take q in
        List.iter
          (fun (s, r) ->
            if Int.equal s v && not visited.(r) then begin
              visited.(r) <- true;
              parent.(r) <- v;
              Queue.add r q
            end)
          edges
      done;
      let path_to v =
        if not visited.(v) then None
        else
          let rec go acc v = if v = origin then v :: acc else go (v :: acc) parent.(v) in
          Some (go [] v)
      in
      List.filter_map
        (fun (b : Lint_compress.blocker) ->
          let dest = b.Lint_compress.bl_dest in
          match (path_to b.Lint_compress.bl_r1, path_to b.Lint_compress.bl_r2) with
          | Some p1, Some p2 when List.length p1 = List.length p2 && List.length p1 > 1 ->
            let hops p = List.combine (List.tl p) (List.filteri (fun i _ -> i < List.length p - 1) p) in
            let h1 = hops p1 and h2 = hops p2 in
            let rec first_div i = function
              | [], [] -> None
              | (r1, s1) :: rest1, (r2, s2) :: rest2 ->
                let b1 = Policy_bdd.edge_policy u net ~dest r1 s1
                and b2 = Policy_bdd.edge_policy u net ~dest r2 s2 in
                if Policy_bdd.same b1 b2 then first_div (i + 1) (rest1, rest2)
                else Some (i, (r1, s1), (r2, s2))
              | _ -> None
            in
            Option.bind (first_div 0 (h1, h2)) (fun (i, (r1, s1), (r2, s2)) ->
                if i >= List.length h1 - 1 then None
                  (* divergence at the final hop: the blocker report
                     already points there *)
                else
                  let name = Graph.name g in
                  Some
                    (Diag.make ~check:"compression-blocker-origin"
                       ~severity:Diag.Info
                       ~loc:(session_loc ?locs g r1 s1)
                       (Printf.sprintf
                          "the role split between %s and %s for %s \
                           originates upstream: along the propagation \
                           paths from %s, the policies first diverge at \
                           %s<-%s vs %s<-%s (%d hop%s before the reported \
                           blocker)"
                          (name b.Lint_compress.bl_r1)
                          (name b.Lint_compress.bl_r2)
                          (Prefix.to_string dest)
                          (name origin) (name r1) (name s1) (name r2)
                          (name s2)
                          (List.length h1 - 1 - i)
                          (if List.length h1 - 1 - i = 1 then "" else "s"))))
          | _ -> None)
        bls)

(* ------------------------------------------------------------------ *)

let degraded_diag (ts : Flow.t list) =
  match List.find_map Flow.degraded ts with
  | None -> []
  | Some info ->
    [
      Diag.make ~check:"flow-degraded" ~severity:Diag.Warning
        (Printf.sprintf
           "provenance analysis exhausted its budget in phase %s after %d \
            ticks (%.1fs); flow facts degraded to unknown and flow checks \
            reading them were suppressed"
           info.Budget.phase info.Budget.ticks info.Budget.elapsed_s);
    ]

(* The per-class checks fire once per (class, site); on a network with
   hundreds of destination classes a single misconfigured router would
   drown the report. Collapse to one diagnostic per (check, site), the
   first class's message standing for the rest with a count. *)
let dedupe_sites (ds : Diag.t list) =
  let seen : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let key (d : Diag.t) =
    String.concat "|"
      [ d.Diag.check;
        Option.value ~default:"" d.Diag.loc.Diag.router;
        Option.value ~default:"" d.Diag.loc.Diag.neighbor ]
  in
  let kept =
    List.filter
      (fun d ->
        match Hashtbl.find_opt seen (key d) with
        | Some n ->
          incr n;
          false
        | None ->
          Hashtbl.replace seen (key d) (ref 0);
          true)
      ds
  in
  List.map
    (fun (d : Diag.t) ->
      match Hashtbl.find_opt seen (key d) with
      | Some { contents = n } when n > 0 ->
        {
          d with
          Diag.message =
            Printf.sprintf "%s (likewise for %d other destination class%s)"
              d.Diag.message n
              (if n = 1 then "" else "es");
        }
      | _ -> d)
    kept

let run ?locs ?budget (net : Device.network) =
  let ts = analyses ?budget net in
  dedupe_sites
    (List.concat_map
       (fun t -> leak_check ?locs t @ transit_check ?locs t)
       ts)
  @ comm_check ?locs ts
  @ blocker_origin_check ?locs ts net
  @ degraded_diag ts

(** Multi-protocol routing checks: redistribution cycles and broken
    static routes.

    A redistribution cycle exists when a prefix originated inside an OSPF
    domain can be exported into BGP at one router ([ospf-into-bgp]),
    travel the BGP session graph, and be re-injected into the {e same}
    OSPF domain at a {e different} router ([bgp-into-ospf]) whose BGP
    import policy semantically accepts the prefix — mutual redistribution
    at a single border, or re-entry filtered by import route-maps
    (deny-own-domain filters, as in the WAN network), is fine and not
    flagged. The accept test is first-match semantic over the condition
    encoding, not a syntactic scan for permit clauses.

    Static routes are flagged when the router's own outbound ACL on the
    next-hop interface denies (part of) the routed prefix — the route
    installs and then blackholes the traffic it attracts — and when the
    covering static routes of several routers form a forwarding cycle. *)

val checks : (string * string) list

val run :
  ?locs:Config_text.loc_table -> Cond_bdd.t -> Device.network -> Diag.t list

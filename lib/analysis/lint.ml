let checks =
  Lint_route_map.checks @ Lint_acl.checks @ Lint_comms.checks
  @ Lint_session.checks @ Lint_routing.checks @ Lint_compress.checks
  @ Lint_flow.checks

let run ?locs ?(compression = true) ?(flow = false) ?budget
    (net : Device.network) =
  let u = Cond_bdd.of_network net in
  let ds =
    Lint_route_map.run ?locs u net
    @ Lint_acl.run ?locs u net
    @ Lint_comms.run ?locs net
    @ Lint_session.run ?locs net
    @ Lint_routing.run ?locs u net
    @ (if compression then Lint_compress.run ?locs net else [])
    @ (if flow then Lint_flow.run ?locs ?budget net else [])
  in
  List.sort Diag.compare ds

let filter ~min_severity ds =
  List.filter
    (fun d ->
      Diag.severity_rank d.Diag.severity >= Diag.severity_rank min_severity)
    ds

let has_errors ds =
  List.exists (fun d -> d.Diag.severity = Diag.Error) ds

let pp_text ppf ds =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diag.pp d) ds;
  let count sev =
    List.length (List.filter (fun d -> d.Diag.severity = sev) ds)
  in
  Format.fprintf ppf "%d error%s, %d warning%s, %d note%s@."
    (count Diag.Error)
    (if count Diag.Error = 1 then "" else "s")
    (count Diag.Warning)
    (if count Diag.Warning = 1 then "" else "s")
    (count Diag.Info)
    (if count Diag.Info = 1 then "" else "s")

let pp_json ppf ds =
  Format.fprintf ppf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@\n  %s" (Diag.to_json d))
    ds;
  Format.fprintf ppf "@\n]@."

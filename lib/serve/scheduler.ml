(* Bounded FIFO admission queue. The engine is sequential (one BDD
   manager, one solver — request isolation comes from per-request
   budgets, not threads), so "inflight" means "admitted but not yet
   answered": the request being processed plus the queue behind it. A
   submit beyond the cap is shed immediately with a retry hint — the
   server never buffers unboundedly and never crashes under load. *)

type 'a t = {
  queue : 'a Queue.t;
  max_inflight : int;
  mutable n_admitted : int;
  mutable n_shed : int;
}

(* Deterministic back-off hint: we do not measure service time (that
   would make shed responses nondeterministic and ungoldenable); clients
   treat it as an order of magnitude, not a promise. *)
let per_request_hint_ms = 100

let create ~max_inflight =
  if max_inflight < 1 then invalid_arg "Scheduler.create: max_inflight < 1";
  { queue = Queue.create (); max_inflight; n_admitted = 0; n_shed = 0 }

let depth t = Queue.length t.queue

let submit t x =
  if Queue.length t.queue >= t.max_inflight then begin
    t.n_shed <- t.n_shed + 1;
    `Shed (t.max_inflight * per_request_hint_ms)
  end
  else begin
    Queue.add x t.queue;
    t.n_admitted <- t.n_admitted + 1;
    `Admitted
  end

let take t = Queue.take_opt t.queue
let admitted t = t.n_admitted
let shed t = t.n_shed

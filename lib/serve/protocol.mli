(** NDJSON protocol of the resident engine (`bonsai serve`).

    Requests are one JSON object per line with an ["op"] field and an
    optional ["id"] echoed back; responses are one object per line with
    ["ok"] and either result fields or a typed ["error"] object whose
    ["class"] mirrors the CLI error taxonomy ({!Bonsai_error.class_name})
    plus the protocol-level classes ["bad-request"] and ["overloaded"].
    Every constructor here produces a single line without the trailing
    newline. *)

type request = {
  req_id : Json.t;  (** echoed verbatim in the response; [Null] if absent *)
  req_op : string;
  req_body : Json.t;  (** the whole request object, for param lookups *)
}

val max_line_bytes : int
(** Requests longer than this are rejected as bad-request before parsing
    (bounds per-request memory). *)

val parse_request : string -> (request, string) result
(** Total: any malformed line becomes [Error message] (render it with
    {!bad_request}). *)

exception Bad_param of string
(** Raised by the typed accessors below on a type mismatch or a missing
    required parameter; the engine converts it to a bad-request
    response. *)

val string_param : request -> string -> string option
val int_param : request -> string -> int option
val bool_param : request -> string -> bool option
val require_string : request -> string -> string

val ok_response : id:Json.t -> op:string -> (string * Json.t) list -> string
val error_response :
  id:Json.t ->
  op:string ->
  cls:string ->
  ?data:(string * Json.t) list ->
  string ->
  string

val bad_request : id:Json.t -> op:string -> string -> string

val overloaded :
  id:Json.t -> op:string -> retry_after_ms:int -> string -> string
(** The shed-don't-crash response: structured, with a client back-off
    hint. *)

val of_bonsai_error : id:Json.t -> op:string -> Bonsai_error.t -> string
(** Map a typed pipeline error to its response (class name and, for
    budget exhaustion, the phase and tick count). *)

val exit_code_of_class : string -> int
(** The exit code [bonsai request] uses for a response's error class:
    identical to the one-shot CLI taxonomy for pipeline classes, 124
    (CLI misuse) for bad-request, 11 for overloaded (scripts retry on
    exactly that), internal's code for anything unrecognized. *)

(** Bounded admission queue with load shedding.

    The resident engine processes requests sequentially; this queue is
    the only buffering between the sockets and the engine. Its depth is
    capped at [max_inflight]: a {!submit} on a full queue returns
    [`Shed retry_after_ms] (count it, answer with
    {!Protocol.overloaded}, keep serving) instead of growing without
    bound. The retry hint is deterministic — cap × a constant
    per-request estimate — so shed responses stay golden-testable. *)

type 'a t

val create : max_inflight:int -> 'a t
(** Raises [Invalid_argument] if [max_inflight < 1]. *)

val submit : 'a t -> 'a -> [ `Admitted | `Shed of int ]
(** [`Shed retry_after_ms] when the queue already holds [max_inflight]
    entries. *)

val take : 'a t -> 'a option
(** Next admitted request, FIFO. *)

val depth : 'a t -> int
val admitted : 'a t -> int
val shed : 'a t -> int

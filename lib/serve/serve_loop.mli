(** The server loop of [bonsai serve]: transports, admission, drain.

    Wraps a {!Serve_engine.t} in one of three transports — stdio
    (deterministic, for golden tests and piping), a unix-domain socket,
    or TCP — with a bounded admission queue in front ({!Scheduler}):
    requests beyond [max_inflight] receive a typed overloaded response
    instead of unbounded buffering. [health] and [stats] bypass the
    queue, so an overloaded server still answers its control plane.

    SIGTERM, SIGINT, and the [shutdown] op drain: queued requests get
    [drain_ms] to finish, stragglers are answered with
    overloaded("server draining"), warm state is checkpointed (when
    [checkpoint_path] is set; also every [checkpoint_every] requests),
    and {!run} returns 0. Diagnostics go to stderr; stdout carries only
    protocol lines in stdio mode. *)

type listen = Stdio | Unix_socket of string | Tcp of string * int

val run :
  engine:Serve_engine.t ->
  listen:listen ->
  ?max_inflight:int ->
  ?drain_ms:int ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?preload:string list ->
  unit ->
  int
(** Serve until shutdown; returns the process exit code. When
    [checkpoint_path] is set, warm state is restored from it before the
    first request (corruption or version skew logs a warning and serves
    cold — exit stays 0). [preload] network specs are loaded before the
    first request (no-ops when the checkpoint already made them warm). *)

(* NDJSON request/response framing for `bonsai serve`.

   One request per line: {"id": ..., "op": "compress", ...params}. One
   response per line, echoing the request id: {"id": ..., "op": ...,
   "ok": true, ...result} or {"id": ..., "op": ..., "ok": false,
   "error": {"class": ..., "message": ..., ...}}. Error classes extend
   the CLI's typed taxonomy (Bonsai_error.class_name / exit codes) with
   two protocol-level classes: "bad-request" (unparsable or ill-typed
   request — the request never reached the pipeline) and "overloaded"
   (the admission queue was full; the response carries a retry hint and
   the server keeps running). *)

type request = {
  req_id : Json.t;  (** echoed verbatim in the response; [Null] if absent *)
  req_op : string;
  req_body : Json.t;  (** the whole request object, for param lookups *)
}

let max_line_bytes = 1 lsl 20

let parse_request line =
  if String.length line > max_line_bytes then
    Error
      (Printf.sprintf "request exceeds %d bytes" max_line_bytes)
  else
    match Json.parse line with
    | Error m -> Error ("invalid JSON: " ^ m)
    | Ok (Json.Obj _ as body) -> (
      let id = Option.value ~default:Json.Null (Json.member "id" body) in
      match Json.member "op" body with
      | Some (Json.String op) when op <> "" ->
        Ok { req_id = id; req_op = op; req_body = body }
      | Some _ -> Error "\"op\" must be a non-empty string"
      | None -> Error "missing \"op\"")
    | Ok _ -> Error "request must be a JSON object"

(* --- typed parameter access ------------------------------------------ *)

exception Bad_param of string

let string_param req key =
  match Json.member key req.req_body with
  | None -> None
  | Some (Json.String s) -> Some s
  | Some _ -> raise (Bad_param (Printf.sprintf "%S must be a string" key))

let int_param req key =
  match Json.member key req.req_body with
  | None -> None
  | Some (Json.Int i) -> Some i
  | Some _ -> raise (Bad_param (Printf.sprintf "%S must be an integer" key))

let bool_param req key =
  match Json.member key req.req_body with
  | None -> None
  | Some (Json.Bool b) -> Some b
  | Some _ -> raise (Bad_param (Printf.sprintf "%S must be a boolean" key))

let require_string req key =
  match string_param req key with
  | Some s -> s
  | None -> raise (Bad_param (Printf.sprintf "missing required %S" key))

(* --- responses ------------------------------------------------------- *)

let response ~id ~op fields =
  Json.to_string
    (Json.Obj (("id", id) :: ("op", Json.String op) :: fields))

let ok_response ~id ~op fields =
  response ~id ~op (("ok", Json.Bool true) :: fields)

let error_response ~id ~op ~cls ?(data = []) message =
  response ~id ~op
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          (("class", Json.String cls)
          :: ("message", Json.String message)
          :: data) );
    ]

let bad_request ~id ~op message = error_response ~id ~op ~cls:"bad-request" message

let overloaded ~id ~op ~retry_after_ms message =
  error_response ~id ~op ~cls:"overloaded"
    ~data:[ ("retry_after_ms", Json.Int retry_after_ms) ]
    message

(* The client-side mapping back: `bonsai request` exits with the same
   code the one-shot CLI command would have. The two protocol-level
   classes get codes outside the pipeline taxonomy: bad-request shares
   cmdliner's CLI-misuse code (124), overloaded gets its own (11) so
   scripts can retry on exactly that. *)
let exit_code_of_class = function
  | "budget-exceeded" ->
    Bonsai_error.exit_code
      (Bonsai_error.Budget_exceeded
         { Budget.phase = ""; ticks = 0; elapsed_s = 0.0; note = None })
  | "parse-error" ->
    Bonsai_error.exit_code (Bonsai_error.Parse_error { diagnostics = [] })
  | "compile-error" -> Bonsai_error.exit_code (Bonsai_error.Compile_error "")
  | "divergence" -> Bonsai_error.exit_code (Bonsai_error.Divergence "")
  | "soundness-break" ->
    Bonsai_error.exit_code (Bonsai_error.Soundness_break "")
  | "certificate-failure" ->
    Bonsai_error.exit_code (Bonsai_error.Certificate_failure "")
  | "bad-request" -> 124
  | "overloaded" -> 11
  | _ -> Bonsai_error.exit_code (Bonsai_error.Internal "")

(* Mirror of the CLI exit-code taxonomy: the same pipeline failure maps
   to the same class name clients already know from `bonsai --help`. *)
let of_bonsai_error ~id ~op (e : Bonsai_error.t) =
  let data =
    match e with
    | Bonsai_error.Budget_exceeded info ->
      [
        ("phase", Json.String info.Budget.phase);
        ("ticks", Json.Int info.Budget.ticks);
      ]
    | Bonsai_error.Parse_error { diagnostics } ->
      [ ("diagnostics", Json.Int (List.length diagnostics)) ]
    | _ -> []
  in
  error_response ~id ~op
    ~cls:(Bonsai_error.class_name e)
    ~data
    (Bonsai_error.to_string e)

(* The resident engine behind `bonsai serve`.

   One engine holds a registry of warm networks (each an [Incr.state]:
   the compressed per-class results plus the policy-signature cache) and
   answers protocol requests against them. The engine is deliberately
   sequential — the BDD manager is shared mutable state — so request
   isolation comes from budgets, not threads: every request runs under
   its own [Budget.t], the request's own --budget-ms/--budget-ticks
   clamped by the server-wide caps ([Budget.scoped]), and a request that
   exhausts it gets a typed budget-exceeded response while the engine
   (and every other queued request) is untouched. [handle_line] is
   total: arbitrary bytes in, exactly one typed response line out.

   Warm-state policy: a cold [Incr.init] that *degraded* (its budget ran
   out mid-compression, remaining classes fell back to identity) is
   answered from but never cached — otherwise one under-budgeted request
   would poison every later answer for that network with permanently
   degraded results. Only fully-compressed states enter the registry. *)

type entry = {
  en_spec : string;
  en_state : Incr.state;
  mutable en_stamp : int;  (* LRU clock for the network registry *)
}

(* Warm modular runs, in a registry of their own: a modular state is a
   set of per-module engines, quarantined module-by-module rather than
   evicted wholesale. *)
type mentry = {
  men_spec : string;
  men_state : Modular.state;
  mutable men_stamp : int;
}

type t = {
  resolve : string -> Device.network;
  cap_deadline_s : float option;
  cap_max_ticks : int option;
  cache_cap : int option;
  max_networks : int;
  registry : (string, entry) Hashtbl.t;
  modular_registry : (string, mentry) Hashtbl.t;
  mutable clock : int;
  mutable n_requests : int;
  mutable n_ok : int;
  mutable n_errors : int;
  mutable n_shed : int;
  mutable n_net_evictions : int;
  mutable n_checkpoints : int;
  mutable restored : bool;
  mutable checkpoint_status : string;
      (* "none" | "restored" | "missing" | "version-skew" | "corrupt" *)
  mutable n_incidents : int;
  mutable audit_cursor : int;  (* round-robin position of the self-audit *)
  mutable audit_dirty : bool;  (* warm state changed since the last full
                                  self-audit cycle *)
  mutable pending_incidents : (string * string) list;
      (* quarantines not yet drained by the server loop (spec, detail) *)
}

let create ~resolve ?budget_ms ?budget_ticks ?cache_cap ?(max_networks = 8) ()
    =
  if max_networks < 1 then
    invalid_arg "Serve_engine.create: max_networks < 1";
  {
    resolve;
    cap_deadline_s =
      Option.map (fun ms -> float_of_int ms /. 1000.0) budget_ms;
    cap_max_ticks = budget_ticks;
    cache_cap;
    max_networks;
    registry = Hashtbl.create 7;
    modular_registry = Hashtbl.create 7;
    clock = 0;
    n_requests = 0;
    n_ok = 0;
    n_errors = 0;
    n_shed = 0;
    n_net_evictions = 0;
    n_checkpoints = 0;
    restored = false;
    checkpoint_status = "none";
    n_incidents = 0;
    audit_cursor = 0;
    audit_dirty = false;
    pending_incidents = [];
  }

let note_shed t = t.n_shed <- t.n_shed + 1
let networks t = Hashtbl.length t.registry
let requests t = t.n_requests

(* --- registry --------------------------------------------------------- *)

let touch t en =
  t.clock <- t.clock + 1;
  en.en_stamp <- t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ en acc ->
        match acc with
        | Some best when best.en_stamp <= en.en_stamp -> acc
        | _ -> Some en)
      t.registry None
  in
  match victim with
  | None -> ()
  | Some en ->
    Hashtbl.remove t.registry en.en_spec;
    t.n_net_evictions <- t.n_net_evictions + 1

let admit t spec st =
  if Hashtbl.length t.registry >= t.max_networks then evict_lru t;
  let en = { en_spec = spec; en_state = st; en_stamp = 0 } in
  touch t en;
  Hashtbl.replace t.registry spec en;
  t.audit_dirty <- true

type warmth = Warm | Cold_cached | Cold_transient

(* Look up or cold-build the state for a spec. The cold build runs under
   the *request's* budget: a pathological network costs only its own
   requester, never the server. *)
let get_state t ~budget spec =
  match Hashtbl.find_opt t.registry spec with
  | Some en ->
    touch t en;
    (en.en_state, Warm)
  | None -> (
    let net = t.resolve spec in
    match Incr.init ?cache_cap:t.cache_cap ~budget net with
    | Error e -> Bonsai_error.error e
    | Ok st ->
      if Option.is_some (Incr.summary st).Bonsai_api.degradation then
        (st, Cold_transient)
      else begin
        admit t spec st;
        (st, Cold_cached)
      end)

(* --- parameter helpers ------------------------------------------------ *)

let request_budget t req =
  Budget.scoped
    ?deadline_s:
      (Option.map
         (fun ms -> float_of_int ms /. 1000.0)
         (Protocol.int_param req "budget_ms"))
    ?max_ticks:(Protocol.int_param req "budget_ticks")
    ?cap_deadline_s:t.cap_deadline_s ?cap_max_ticks:t.cap_max_ticks ()

let network_param req = Protocol.require_string req "network"

let find_ec net = function
  | None -> (
    match Ecs.compute net with
    | ec :: _ -> ec
    | [] -> failwith "network originates no destination prefixes")
  | Some p -> (
    let p = Prefix.of_string p in
    match
      List.find_opt
        (fun ec -> Prefix.equal ec.Ecs.ec_prefix p)
        (Ecs.compute net)
    with
    | Some ec -> ec
    | None -> Format.kasprintf failwith "no destination class %a" Prefix.pp p)

let prefix_str p = Format.asprintf "%a" Prefix.pp p

(* Mirror of the one-shot CLI's --degrade contract: a degraded result is
   a typed budget-exceeded response unless the request opted into
   degradation with "degrade": true — then it is an ok response whose
   "degraded" fields say what fell back to identity. *)
let wants_degrade req =
  Option.value ~default:false (Protocol.bool_param req "degrade")

let check_degradation req = function
  | Some (d : Bonsai_api.degradation) when not (wants_degrade req) ->
    Bonsai_error.error (Bonsai_error.Budget_exceeded d.Bonsai_api.deg_info)
  | _ -> ()

(* --- ops -------------------------------------------------------------- *)

(* Deterministic by design: responses carry structure (class sizes,
   counts, verdicts) but never wall-clock or cache counters — the
   kill-and-restart acceptance test diffs a warm-restored compress
   response byte-for-byte against a cold one. Timings live in `stats`. *)

let ec_row (r : Bonsai_api.ec_result) =
  Json.Obj
    [
      ("destination", Json.String (prefix_str r.Bonsai_api.ec.Ecs.ec_prefix));
      ( "abstract_nodes",
        Json.Int (Abstraction.n_abstract r.Bonsai_api.abstraction) );
      ( "abstract_links",
        Json.Int
          (Graph.n_links r.Bonsai_api.abstraction.Abstraction.abs_graph) );
      ("degraded", Json.Bool r.Bonsai_api.degraded);
    ]

let compress_op t req =
  let budget = request_budget t req in
  let st, _ = get_state t ~budget (network_param req) in
  let summary = Incr.summary st in
  check_degradation req summary.Bonsai_api.degradation;
  let results =
    match Protocol.string_param req "ec" with
    | None -> summary.Bonsai_api.results
    | Some p -> (
      let p = Prefix.of_string p in
      match
        List.filter
          (fun (r : Bonsai_api.ec_result) ->
            Prefix.equal r.Bonsai_api.ec.Ecs.ec_prefix p)
          summary.Bonsai_api.results
      with
      | [] -> Format.kasprintf failwith "no destination class %a" Prefix.pp p
      | rs -> rs)
  in
  [
    ("network", Json.String (network_param req));
    ("ecs", Json.Int (List.length results));
    ("skipped_anycast", Json.Int summary.Bonsai_api.skipped_anycast);
    ( "degraded",
      Json.Bool (Option.is_some summary.Bonsai_api.degradation) );
    ("classes", Json.List (List.map ec_row results));
  ]

let diag_json (d : Diag.t) =
  let opt_str k = function
    | None -> []
    | Some s -> [ (k, Json.String s) ]
  in
  let opt_int k = function None -> [] | Some i -> [ (k, Json.Int i) ] in
  Json.Obj
    (("check", Json.String d.Diag.check)
    :: ("severity", Json.String (Diag.severity_to_string d.Diag.severity))
    :: (opt_str "router" d.Diag.loc.Diag.router
       @ opt_str "neighbor" d.Diag.loc.Diag.neighbor
       @ opt_str "route_map" d.Diag.loc.Diag.rm_name
       @ opt_int "clause" d.Diag.loc.Diag.clause
       @ opt_int "line" d.Diag.loc.Diag.line
       @ [ ("message", Json.String d.Diag.message) ]))

let lint_op t req =
  let budget = request_budget t req in
  let spec = network_param req in
  let net =
    match Hashtbl.find_opt t.registry spec with
    | Some en ->
      touch t en;
      Incr.network en.en_state
    | None -> t.resolve spec
  in
  let compression =
    Option.value ~default:true (Protocol.bool_param req "compression")
  in
  let flow = Option.value ~default:false (Protocol.bool_param req "flow") in
  let ds = Lint.run ~compression ~flow ~budget net in
  [
    ("network", Json.String spec);
    ("findings", Json.List (List.map diag_json ds));
    ("count", Json.Int (List.length ds));
    ("errors", Json.Bool (Lint.has_errors ds));
  ]

let flow_op t req =
  let budget = request_budget t req in
  let spec = network_param req in
  let net =
    match Hashtbl.find_opt t.registry spec with
    | Some en ->
      touch t en;
      Incr.network en.en_state
    | None -> t.resolve spec
  in
  let ds = List.sort Diag.compare (Lint_flow.run ~budget net) in
  let degraded =
    List.exists (fun d -> String.equal d.Diag.check "flow-degraded") ds
  in
  [
    ("network", Json.String spec);
    ("findings", Json.List (List.map diag_json ds));
    ("count", Json.Int (List.length ds));
    ("degraded", Json.Bool degraded);
  ]

let diff_op t req =
  let budget = request_budget t req in
  let spec = network_param req in
  let to_spec = Protocol.require_string req "to" in
  let st, _ = get_state t ~budget spec in
  let net' = t.resolve to_spec in
  let recertify =
    match Protocol.string_param req "recertify" with
    | None -> None
    | Some s -> (
      match Certify.audit_of_string s with
      | Some a -> Some a
      | None -> Format.kasprintf failwith "bad recertify level %S" s)
  in
  match Incr.recompress_net ~budget ?recertify st net' with
  | Error e -> Bonsai_error.error e
  | Ok (deltas, rep) ->
    check_degradation req rep.Incr.r_degradation;
    (* the warm state just changed; the idle self-audit should revisit *)
    t.audit_dirty <- true;
    [
      ("network", Json.String spec);
      ("to", Json.String to_spec);
      ("deltas", Json.Int (List.length deltas));
      ("ecs", Json.Int rep.Incr.r_ecs);
      ("reused", Json.Int rep.Incr.r_reused);
      ("seeded", Json.Int rep.Incr.r_seeded);
      ("scratch", Json.Int rep.Incr.r_scratch);
      ("full_rebuild", Json.Bool rep.Incr.r_full_rebuild);
      ( "degraded",
        Json.Bool (Option.is_some rep.Incr.r_degradation) );
    ]
    @
    match recertify with
    | None -> []
    | Some _ ->
      [
        ("recertified", Json.Int rep.Incr.r_recertified);
        ("recert_refuted", Json.Int rep.Incr.r_recert_refuted);
      ]

(* Pre-deployment change review at warm-cache latency: diff the data
   planes of the warm network and a proposed one. Read-only with respect
   to the warm state — the registry entry, its results and its signature
   cache are only consulted (so no audit_dirty, and a follow-up diff/
   compress still sees the old network); only dirty destination classes
   are recompiled, on both networks. *)
let dataplane_diff_op t req =
  let budget = request_budget t req in
  let spec = network_param req in
  let to_spec = Protocol.require_string req "to" in
  let st, _ = get_state t ~budget spec in
  let old_net = Incr.network st in
  let new_net = t.resolve to_spec in
  let deltas = Delta.diff old_net new_net in
  match
    Dp_diff.run ~budget ~cache:(Incr.sig_cache st) ~old_net ~new_net deltas
  with
  | Error e -> Bonsai_error.error e
  | Ok rep ->
    check_degradation req rep.Dp_diff.dp_degradation;
    let added, removed, modified = Dp_diff.counts rep in
    let name net u = Graph.name net.Device.graph u in
    let entry_json net = function
      | None -> Json.Null
      | Some (e : Dataplane.entry) ->
        Json.Obj
          [
            ( "next_hops",
              Json.List
                (List.map
                   (fun u -> Json.String (name net u))
                   e.Dataplane.e_next_hops) );
            ( "acl_dropped",
              Json.List
                (List.map
                   (fun u -> Json.String (name net u))
                   e.Dataplane.e_acl_dropped) );
          ]
    in
    let change_row (c : Dp_diff.change) =
      let router_net =
        match c.Dp_diff.c_kind with
        | Dp_diff.Removed -> old_net
        | _ -> new_net
      in
      Json.Obj
        [
          ("router", Json.String (name router_net c.Dp_diff.c_router));
          ("prefix", Json.String (prefix_str c.Dp_diff.c_prefix));
          ("kind", Json.String (Dp_diff.kind_string c.Dp_diff.c_kind));
          ("old", entry_json old_net c.Dp_diff.c_old);
          ("new", entry_json new_net c.Dp_diff.c_new);
        ]
    in
    [
      ("network", Json.String spec);
      ("to", Json.String to_spec);
      ("deltas", Json.Int (List.length deltas));
      ("changed", Json.Bool (Dp_diff.changed rep));
      ("classes", Json.Int rep.Dp_diff.dp_classes);
      ("reused", Json.Int rep.Dp_diff.dp_reused);
      ("recompiled", Json.Int rep.Dp_diff.dp_recompiled);
      ("full_rebuild", Json.Bool rep.Dp_diff.dp_full_rebuild);
      ("added", Json.Int added);
      ("removed", Json.Int removed);
      ("modified", Json.Int modified);
      ("changes", Json.List (List.map change_row rep.Dp_diff.dp_changes));
      ( "unknown",
        Json.List
          (List.map
             (fun p -> Json.String (prefix_str p))
             rep.Dp_diff.dp_unknown) );
      ( "degraded",
        Json.Bool (Option.is_some rep.Dp_diff.dp_degradation) );
    ]

let faults_op t req =
  let budget = request_budget t req in
  let spec = network_param req in
  let st, _ = get_state t ~budget spec in
  let net = Incr.network st in
  let ec = find_ec net (Protocol.string_param req "ec") in
  let k = Option.value ~default:1 (Protocol.int_param req "k") in
  let samples = Protocol.int_param req "samples" in
  let seed = Option.value ~default:0 (Protocol.int_param req "seed") in
  let dest = Ecs.single_origin ec in
  let srp = Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
  let plan = Fault_engine.plan ?samples ~seed ~k net.Device.graph in
  let cache = Fault_engine.cache () in
  let report = Fault_engine.survey ~budget ~cache srp plan in
  (* the abstraction is the warm one the registry already holds *)
  let r =
    match
      List.find_opt
        (fun (r : Bonsai_api.ec_result) ->
          Prefix.equal r.Bonsai_api.ec.Ecs.ec_prefix ec.Ecs.ec_prefix)
        (Incr.summary st).Bonsai_api.results
    with
    | Some r -> r
    | None -> Format.kasprintf failwith "no result for class %a" Ecs.pp ec
  in
  let abstraction = r.Bonsai_api.abstraction in
  let break_ =
    Soundness.first_break abstraction ~concrete:srp ~concrete_cache:cache
      ~abstract_:(Abstraction.bgp_srp abstraction)
      plan.Fault_engine.scenarios
  in
  [
    ("network", Json.String spec);
    ("destination", Json.String (prefix_str ec.Ecs.ec_prefix));
    ("scenarios", Json.Int (List.length plan.Fault_engine.scenarios));
    ("exhaustive", Json.Bool plan.Fault_engine.exhaustive);
    ("stable", Json.Int report.Fault_engine.n_stable);
    ("disconnected", Json.Int report.Fault_engine.n_disconnected);
    ("diverged", Json.Int report.Fault_engine.n_diverged);
    ("skipped", Json.Int report.Fault_engine.n_skipped);
    ("sound", Json.Bool (Option.is_none break_));
    ( "break_scenario",
      match break_ with
      | None -> Json.Null
      | Some (sc, _) ->
        Json.String
          (Format.asprintf "%a" (Scenario.pp ~names:(Graph.name net.Device.graph)) sc) );
  ]

let harden_op t req =
  let budget = request_budget t req in
  let spec = network_param req in
  let st, _ = get_state t ~budget spec in
  let net = Incr.network st in
  let ec = find_ec net (Protocol.string_param req "ec") in
  let k = Protocol.int_param req "k" in
  let rounds = Protocol.int_param req "rounds" in
  let samples = Protocol.int_param req "samples" in
  let seed = Protocol.int_param req "seed" in
  match Repair.harden ?k ?rounds ?samples ?seed ~budget net ec with
  | Error e -> Bonsai_error.error e
  | Ok r ->
    let abstraction = r.Repair.result.Bonsai_api.abstraction in
    [
      ("network", Json.String spec);
      ("destination", Json.String (prefix_str ec.Ecs.ec_prefix));
      ("rounds", Json.Int (List.length r.Repair.rounds));
      ("pins", Json.Int (List.length r.Repair.pins));
      ("scenarios", Json.Int r.Repair.n_scenarios);
      ("counterexamples", Json.Int r.Repair.n_counterexamples);
      ("sound", Json.Bool r.Repair.sound);
      ( "fallback",
        Json.String
          (match r.Repair.fallback with
          | Bonsai_api.No_fallback -> "none"
          | Bonsai_api.Budget_fallback _ -> "budget"
          | Bonsai_api.Rounds_fallback -> "rounds") );
      ("abstract_nodes", Json.Int (Abstraction.n_abstract abstraction));
      ( "abstract_links",
        Json.Int (Graph.n_links abstraction.Abstraction.abs_graph) );
    ]

(* --- self-audit -------------------------------------------------------- *)

(* The warm state an entry answers from is exactly what the self-audit
   must distrust: a cache poisoned by an engine bug, a bad reuse
   decision, or checkpoint bytes. Re-export each class's certificate
   from the registry's own [Incr.state] and check it independently in a
   fresh BDD universe ([Certify.check_result] — the emission itself is
   exception-proof, a state too broken to export a witness is refuted). *)
let audit_entry ~budget ~audit (en : entry) =
  try
    let net = Incr.network en.en_state in
    let summary = Incr.summary en.en_state in
    let universe = Policy_bdd.universe_of_network net in
    let rec go obligations = function
      | [] ->
        Certify.Certified
          { ecs = List.length summary.Bonsai_api.results; obligations }
      | r :: rest -> (
        match Certify.check_result ~budget ~universe ~audit net r with
        | Certify.Certified { obligations = o; _ } ->
          go (obligations + o) rest
        | (Certify.Refuted _ | Certify.Audit_incomplete _) as v -> v)
    in
    go 0 summary.Bonsai_api.results
  with Budget.Exhausted info -> Certify.Audit_incomplete info

let push_incident t spec detail =
  t.n_incidents <- t.n_incidents + 1;
  t.pending_incidents <- (spec, detail) :: t.pending_incidents

(* A refuted warm entry never answers again: out of the registry (the
   caller also rewrites the checkpoint so the corruption cannot be
   resurrected), incident queued for the server loop's structured log.
   The next request for that spec rebuilds cold from the configs. *)
let quarantine t spec detail =
  Hashtbl.remove t.registry spec;
  push_incident t spec detail

let drain_incidents t =
  let xs = List.rev t.pending_incidents in
  t.pending_incidents <- [];
  xs

let audit_pending t = t.audit_dirty && Hashtbl.length t.registry > 0

type audit_outcome =
  | Audit_idle
  | Audit_clean of string
  | Audit_unfinished of string
  | Audit_quarantined of string * string

let sorted_specs t =
  Hashtbl.fold (fun spec _ acc -> spec :: acc) t.registry []
  |> List.sort String.compare

let audit_step ?(budget = Budget.infinite) t =
  match sorted_specs t with
  | [] ->
    t.audit_dirty <- false;
    Audit_idle
  | specs -> (
    let n = List.length specs in
    let i = t.audit_cursor mod n in
    let spec = List.nth specs i in
    if i + 1 >= n then begin
      t.audit_cursor <- 0;
      t.audit_dirty <- false
    end
    else t.audit_cursor <- i + 1;
    match Hashtbl.find_opt t.registry spec with
    | None -> Audit_idle
    | Some en -> (
      match audit_entry ~budget ~audit:Certify.Sample en with
      | Certify.Certified _ -> Audit_clean spec
      | Certify.Audit_incomplete _ ->
        (* ran out mid-cycle: stay dirty so the next idle moment retries *)
        t.audit_dirty <- true;
        Audit_unfinished spec
      | Certify.Refuted fs ->
        let detail = Certify.failures_string fs in
        quarantine t spec detail;
        Audit_quarantined (spec, detail)))

let audit_op t req =
  let budget = request_budget t req in
  let audit =
    match Protocol.string_param req "audit" with
    | None -> Certify.Sample
    | Some s -> (
      match Certify.audit_of_string s with
      | Some a -> a
      | None -> Format.kasprintf failwith "bad audit level %S" s)
  in
  let specs =
    match Protocol.string_param req "network" with
    | Some spec -> if Hashtbl.mem t.registry spec then [ spec ] else []
    | None -> sorted_specs t
  in
  let rows, quarantined =
    List.fold_left
      (fun (rows, q) spec ->
        match Hashtbl.find_opt t.registry spec with
        | None -> (rows, q)
        | Some en -> (
          match audit_entry ~budget ~audit en with
          | Certify.Certified { obligations; _ } ->
            ( Json.Obj
                [
                  ("network", Json.String spec);
                  ("verdict", Json.String "certified");
                  ("obligations", Json.Int obligations);
                ]
              :: rows,
              q )
          | Certify.Audit_incomplete _ ->
            ( Json.Obj
                [
                  ("network", Json.String spec);
                  ("verdict", Json.String "incomplete");
                ]
              :: rows,
              q )
          | Certify.Refuted fs ->
            let detail = Certify.failures_string fs in
            quarantine t spec detail;
            ( Json.Obj
                [
                  ("network", Json.String spec);
                  ("verdict", Json.String "refuted");
                  ("detail", Json.String detail);
                ]
              :: rows,
              spec :: q )))
      ([], []) specs
  in
  [
    ("audited", Json.List (List.rev rows));
    ( "quarantined",
      Json.List (List.map (fun s -> Json.String s) (List.rev quarantined)) );
    ("incidents", Json.Int t.n_incidents);
  ]

(* --- modular ---------------------------------------------------------- *)

let mtouch t men =
  t.clock <- t.clock + 1;
  men.men_stamp <- t.clock

let modular_health_rows (rp : Modular.report) =
  (* No wall-clock: the chaos suite diffs these rows byte-for-byte. *)
  List.map
    (fun (mr : Modular.module_report) ->
      Json.Obj
        ([
           ("module", Json.String mr.Modular.mr_name);
           ("routers", Json.Int mr.Modular.mr_routers);
           ("ecs", Json.Int mr.Modular.mr_ecs);
           ("concrete", Json.Int mr.Modular.mr_concrete);
           ("abstract", Json.Int mr.Modular.mr_abstract);
           ("health", Json.String (Modular.health_name mr.Modular.mr_health));
         ]
        @
        match mr.Modular.mr_detail with
        | Some d -> [ ("detail", Json.String d) ]
        | None -> []))
    rp.Modular.rp_modules

let get_modular t ~budget ~mode ~count ~certify spec =
  match Hashtbl.find_opt t.modular_registry spec with
  | Some men ->
    mtouch t men;
    (men.men_state, true)
  | None -> (
    let net = t.resolve spec in
    match Modular.run ~mode ?count ~budget ~certify net with
    | Error e -> Bonsai_error.error e
    | Ok st ->
      (* Same warm-state policy as compress: a run where *every* module
         faulted (e.g. an absurd request budget) is answered from but
         never cached; partial health is the normal warm shape. *)
      let rp = Modular.report st in
      let all_faulted =
        List.for_all
          (fun (mr : Modular.module_report) ->
            match mr.Modular.mr_health with
            | Modular.Degraded | Modular.Refuted -> true
            | Modular.Healthy | Modular.Retried -> false)
          rp.Modular.rp_modules
      in
      if not all_faulted then begin
        if Hashtbl.length t.modular_registry >= t.max_networks then begin
          let victim =
            Hashtbl.fold
              (fun _ men acc ->
                match acc with
                | Some best when best.men_stamp <= men.men_stamp -> acc
                | _ -> Some men)
              t.modular_registry None
          in
          match victim with
          | None -> ()
          | Some men ->
            Hashtbl.remove t.modular_registry men.men_spec;
            t.n_net_evictions <- t.n_net_evictions + 1
        end;
        let men = { men_spec = spec; men_state = st; men_stamp = 0 } in
        mtouch t men;
        Hashtbl.replace t.modular_registry spec men
      end;
      (st, false))

let modular_op t req =
  let budget = request_budget t req in
  let spec = network_param req in
  let mode =
    match Protocol.string_param req "modules" with
    | None -> Modular.Auto
    | Some s -> (
      match Modular.mode_of_string s with
      | Some m -> m
      | None -> Format.kasprintf failwith "bad modules mode %S" s)
  in
  let count = Protocol.int_param req "count" in
  let certify =
    Option.value ~default:false (Protocol.bool_param req "certify")
  in
  let audit = Option.value ~default:false (Protocol.bool_param req "audit") in
  let st, warm = get_modular t ~budget ~mode ~count ~certify spec in
  let quarantined =
    if not audit then []
    else begin
      (* Module-level quarantine: a refuted module's engine state is
         dropped (its rows degrade) while every other module stays warm;
         each refutation is an incident for the server loop to log. *)
      let refuted = Modular.self_audit ~budget st in
      List.iter
        (fun (m, detail) ->
          t.n_incidents <- t.n_incidents + 1;
          t.pending_incidents <-
            (spec ^ "/" ^ m, detail) :: t.pending_incidents)
        refuted;
      List.map fst refuted
    end
  in
  let rp = Modular.report st in
  [
    ("network", Json.String spec);
    ("warm", Json.Bool warm);
    ("modules", Json.List (modular_health_rows rp));
    ("routers", Json.Int rp.Modular.rp_routers);
    ("skipped_anycast", Json.Int rp.Modular.rp_skipped_anycast);
    ("faulted", Json.Bool (Modular.any_fault rp));
    ( "quarantined",
      Json.List (List.map (fun m -> Json.String m) quarantined) );
  ]

(* Test-only fault injection, enabled by BONSAI_TEST_HOOKS=1: silently
   corrupt one warm abstraction in place — move the largest member of a
   multi-member group into an earlier group (whose least member is
   smaller, so the canonical first-occurrence numbering survives and
   the corruption is invisible to shape checks). The abstract graph is
   left stale, which is precisely the wrong-answer state the self-audit
   exists to catch; the chaos suite drives this op and asserts the
   quarantine-and-rebuild path. With a "module" parameter it targets a
   warm *modular* module's state instead, so the suite can prove
   module-level quarantine isolates the refuted module only. *)
let test_hooks_enabled () =
  match Sys.getenv_opt "BONSAI_TEST_HOOKS" with
  | Some "1" -> true
  | _ -> false

let test_corrupt_op t req =
  let spec = network_param req in
  let corrupt_results results =
    let corrupt_result (r : Bonsai_api.ec_result) =
      let a = r.Bonsai_api.abstraction in
      let groups = a.Abstraction.groups in
      let n_groups = Array.length groups in
      let move m ~from ~into =
        groups.(from) <- List.filter (fun x -> x <> m) groups.(from);
        groups.(into) <- List.sort compare (m :: groups.(into));
        a.Abstraction.group_of.(m) <- into
      in
      let rec find g1 =
        if g1 >= n_groups then false
        else
          match groups.(g1) with
          | _ :: _ :: _ -> (
            let m = List.fold_left max (-1) groups.(g1) in
            let rec target g2 =
              if g2 >= n_groups then None
              else if g2 <> g1 && List.hd groups.(g2) < m then Some g2
              else target (g2 + 1)
            in
            match target 0 with
            | Some g2 ->
              move m ~from:g1 ~into:g2;
              true
            | None -> find (g1 + 1))
          | _ -> find (g1 + 1)
      in
      find 0
    in
    List.exists corrupt_result results
  in
  let results =
    match Protocol.string_param req "module" with
    | Some m -> (
      match Hashtbl.find_opt t.modular_registry spec with
      | None -> failwith "network not warm (modular)"
      | Some men -> (
        match Modular.module_summary men.men_state m with
        | None -> Format.kasprintf failwith "module %S not warm" m
        | Some s -> s.Bonsai_api.results))
    | None -> (
      match Hashtbl.find_opt t.registry spec with
      | None -> failwith "network not warm"
      | Some en -> (Incr.summary en.en_state).Bonsai_api.results)
  in
  if not (corrupt_results results) then
    failwith "no multi-member group to corrupt";
  [ ("network", Json.String spec); ("corrupted", Json.Bool true) ]

let load_op t req =
  let budget = request_budget t req in
  let spec = network_param req in
  let st, warmth = get_state t ~budget spec in
  let summary = Incr.summary st in
  check_degradation req summary.Bonsai_api.degradation;
  [
    ("network", Json.String spec);
    ("ecs", Json.Int (List.length summary.Bonsai_api.results));
    ( "degraded",
      Json.Bool (Option.is_some summary.Bonsai_api.degradation) );
    ( "cached",
      Json.Bool (match warmth with Cold_transient -> false | _ -> true) );
  ]

let unload_op t req =
  let spec = network_param req in
  let present = Hashtbl.mem t.registry spec in
  Hashtbl.remove t.registry spec;
  [ ("network", Json.String spec); ("removed", Json.Bool present) ]

let health_op t ~queue_depth =
  [
    ("status", Json.String "ok");
    ("networks", Json.Int (Hashtbl.length t.registry));
    ("queue_depth", Json.Int queue_depth);
  ]

let stats_op t ~queue_depth =
  let rows =
    Hashtbl.fold (fun _ en acc -> en :: acc) t.registry []
    |> List.sort (fun a b -> String.compare a.en_spec b.en_spec)
    |> List.map (fun en ->
           let hits, misses = Incr.cache_stats en.en_state in
           Json.Obj
             [
               ("network", Json.String en.en_spec);
               ( "ecs",
                 Json.Int
                   (List.length
                      (Incr.summary en.en_state).Bonsai_api.results) );
               ("cache_hits", Json.Int hits);
               ("cache_misses", Json.Int misses);
               ( "cache_evictions",
                 Json.Int (Incr.cache_evictions en.en_state) );
             ])
  in
  [
    ("requests", Json.Int t.n_requests);
    ("ok", Json.Int t.n_ok);
    ("errors", Json.Int t.n_errors);
    ("shed", Json.Int t.n_shed);
    ("queue_depth", Json.Int queue_depth);
    ("networks", Json.List rows);
    ("network_evictions", Json.Int t.n_net_evictions);
    ("checkpoints_saved", Json.Int t.n_checkpoints);
    ("restored_from_checkpoint", Json.Bool t.restored);
    ("checkpoint", Json.String t.checkpoint_status);
    ("incidents", Json.Int t.n_incidents);
  ]

(* --- dispatch --------------------------------------------------------- *)

let dispatch t ~queue_depth (req : Protocol.request) =
  match req.Protocol.req_op with
  | "compress" -> (compress_op t req, `Continue)
  | "lint" -> (lint_op t req, `Continue)
  | "flow" -> (flow_op t req, `Continue)
  | "diff" -> (diff_op t req, `Continue)
  | "dataplane-diff" -> (dataplane_diff_op t req, `Continue)
  | "faults" -> (faults_op t req, `Continue)
  | "harden" -> (harden_op t req, `Continue)
  | "load" -> (load_op t req, `Continue)
  | "unload" -> (unload_op t req, `Continue)
  | "audit" -> (audit_op t req, `Continue)
  | "modular" -> (modular_op t req, `Continue)
  | "test-corrupt" when test_hooks_enabled () ->
    (test_corrupt_op t req, `Continue)
  | "health" -> (health_op t ~queue_depth, `Continue)
  | "stats" -> (stats_op t ~queue_depth, `Continue)
  | "shutdown" -> ([ ("stopping", Json.Bool true) ], `Shutdown)
  | op -> Format.kasprintf failwith "unknown op %S" op

(* Total: every line in, exactly one typed response line out. The
   catch-all is the isolation boundary — no request, however malformed
   or expensive, takes the engine down. *)
let handle_line t ~queue_depth line =
  t.n_requests <- t.n_requests + 1;
  match Protocol.parse_request line with
  | Error m ->
    t.n_errors <- t.n_errors + 1;
    (Protocol.bad_request ~id:Json.Null ~op:"unknown" m, `Continue)
  | Ok req -> (
    let id = req.Protocol.req_id and op = req.Protocol.req_op in
    match dispatch t ~queue_depth req with
    | fields, continue ->
      t.n_ok <- t.n_ok + 1;
      (Protocol.ok_response ~id ~op fields, continue)
    | exception e ->
      t.n_errors <- t.n_errors + 1;
      let resp =
        match e with
        | Protocol.Bad_param m | Failure m | Invalid_argument m ->
          Protocol.bad_request ~id ~op m
        | e -> Protocol.of_bonsai_error ~id ~op (Bonsai_error.of_exn e)
      in
      (resp, `Continue))

(* --- warm-state checkpointing ----------------------------------------- *)

(* The payload is the registry contents, sorted by spec for a stable
   byte image. [Incr.state] is plain data all the way down (the BDD
   manager included), so one Marshal blob preserves the BDD sharing
   between the signature cache and every class result. *)
type payload = (string * Incr.state) list

let checkpoint t ~path =
  let rows =
    Hashtbl.fold (fun _ en acc -> (en.en_spec, en.en_state) :: acc)
      t.registry []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  match Checkpoint.save ~path (rows : payload) with
  | Ok () ->
    t.n_checkpoints <- t.n_checkpoints + 1;
    Ok (List.length rows)
  | Error m -> Error m

let restore t ~path =
  match (Checkpoint.load ~path : (payload, Checkpoint.load_error) result) with
  | Ok rows ->
    List.iter
      (fun (spec, st) ->
        (* marshaled copies lost Budget.infinite's physical identity *)
        Incr.rearm st;
        admit t spec st)
      rows;
    t.restored <- true;
    t.checkpoint_status <- "restored";
    (* checkpoint bytes are outside the trust boundary (DESIGN.md §15):
       the digest catches torn writes, not a buggy or hostile writer —
       schedule a self-audit cycle over everything we just adopted *)
    t.audit_dirty <- true;
    `Restored (List.length rows)
  | Error Checkpoint.Missing ->
    t.checkpoint_status <- "missing";
    `Missing
  | Error (Checkpoint.Version_skew m) ->
    t.checkpoint_status <- "version-skew";
    `Version_skew m
  | Error (Checkpoint.Corrupt m) ->
    t.checkpoint_status <- "corrupt";
    `Corrupt m

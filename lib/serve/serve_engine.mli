(** The resident engine behind [bonsai serve].

    Holds a registry of warm networks — each an [Incr.state]: the
    compressed per-class results plus the policy-signature cache — and
    answers protocol requests against them. Sequential by design (the
    BDD manager is shared mutable state): request isolation comes from
    per-request budgets, not threads. {!handle_line} is total — any
    byte sequence in, exactly one typed NDJSON response line out;
    nothing a client sends can crash the engine.

    Ops: [compress], [lint], [flow], [diff], [faults], [harden],
    [load], [unload], [audit], [modular], [health], [stats],
    [shutdown]. [modular] keeps its own warm registry of
    {!Modular.state}s (per-module engines with per-module fault
    isolation); with ["audit": true] it self-audits every warm module
    and quarantines refutations {e module-by-module} — the rest of the
    network's modules stay warm. Responses
    that acceptance tests diff byte-for-byte (compress in particular)
    carry no wall-clock or cache counters; those live in [stats] only.

    Self-audit: warm answers come from cached state — an engine bug, a
    bad incremental-reuse decision or adopted checkpoint bytes could
    make every later answer for that network wrong. The [audit] op (and
    the background {!audit_step} the server loop runs while idle)
    re-exports each warm class's certificate and re-checks it with
    {!Certify.check_result} in a fresh BDD universe; a refuted network
    is {e quarantined} — evicted from the registry, an incident queued
    for {!drain_incidents}, the next request rebuilds cold from the
    configs. A failed audit can therefore cost latency, never a wrong
    answer. [test-corrupt] (only with [BONSAI_TEST_HOOKS=1] in the
    environment) corrupts a warm abstraction in place so the chaos
    suite can prove exactly that. *)

type t

val create :
  resolve:(string -> Device.network) ->
  ?budget_ms:int ->
  ?budget_ticks:int ->
  ?cache_cap:int ->
  ?max_networks:int ->
  unit ->
  t
(** [resolve] maps a network spec (e.g. ["fattree:4"], ["file:PATH"])
    to a network; it may raise [Failure] (→ bad-request) or
    [Bonsai_error.Error] (→ the matching typed response).
    [budget_ms]/[budget_ticks] are server-wide caps: every request runs
    under [Budget.scoped] of its own ["budget_ms"]/["budget_ticks"]
    parameters clamped by these. [cache_cap] bounds each network's
    signature cache; [max_networks] (default 8) bounds the registry,
    LRU-evicting beyond it. *)

val handle_line :
  t -> queue_depth:int -> string -> string * [ `Continue | `Shutdown ]
(** Process one request line; returns the response line (no trailing
    newline) and whether the server should keep running. Total.
    [queue_depth] is echoed into [health]/[stats] responses. *)

val note_shed : t -> unit
(** Count a request shed by the admission queue (the scheduler lives in
    the server loop; the engine only keeps the statistic). *)

val networks : t -> int
val requests : t -> int

type audit_outcome =
  | Audit_idle  (** nothing warm to audit *)
  | Audit_clean of string  (** network audited, certificate held *)
  | Audit_unfinished of string
      (** audit budget ran out mid-network — retried at the next idle
          moment, never reported clean *)
  | Audit_quarantined of string * string
      (** (network, detail): certificate refuted; entry evicted *)

val audit_step : ?budget:Budget.t -> t -> audit_outcome
(** Audit the next warm network in round-robin order ([Sample]
    granularity). The server loop calls this while idle whenever
    {!audit_pending}. *)

val audit_pending : t -> bool
(** Warm state changed (admit, diff, restore) since the last complete
    self-audit cycle. *)

val drain_incidents : t -> (string * string) list
(** Quarantine incidents ((network, detail), oldest first) not yet
    collected — the server loop logs each as a structured incident line
    and rewrites the checkpoint so the corrupt state cannot return. *)

val checkpoint : t -> path:string -> (int, string) result
(** Atomically persist every registered network's warm state; returns
    how many were saved. *)

val restore :
  t ->
  path:string ->
  [ `Restored of int
  | `Missing
  | `Version_skew of string
  | `Corrupt of string ]
(** Load a checkpoint written by {!checkpoint}, re-arming each state's
    transient handles and scheduling a self-audit cycle over the
    adopted entries. Failures degrade to a cold start, distinguished so
    the caller can log them apart: [`Missing] (no file),
    [`Version_skew] (format or build mismatch), [`Corrupt] (bad magic,
    torn write, digest mismatch). Never an exception. *)

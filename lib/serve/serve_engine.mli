(** The resident engine behind [bonsai serve].

    Holds a registry of warm networks — each an [Incr.state]: the
    compressed per-class results plus the policy-signature cache — and
    answers protocol requests against them. Sequential by design (the
    BDD manager is shared mutable state): request isolation comes from
    per-request budgets, not threads. {!handle_line} is total — any
    byte sequence in, exactly one typed NDJSON response line out;
    nothing a client sends can crash the engine.

    Ops: [compress], [lint], [flow], [diff], [faults], [harden],
    [load], [unload], [health], [stats], [shutdown]. Responses that
    acceptance tests diff byte-for-byte (compress in particular) carry
    no wall-clock or cache counters; those live in [stats] only. *)

type t

val create :
  resolve:(string -> Device.network) ->
  ?budget_ms:int ->
  ?budget_ticks:int ->
  ?cache_cap:int ->
  ?max_networks:int ->
  unit ->
  t
(** [resolve] maps a network spec (e.g. ["fattree:4"], ["file:PATH"])
    to a network; it may raise [Failure] (→ bad-request) or
    [Bonsai_error.Error] (→ the matching typed response).
    [budget_ms]/[budget_ticks] are server-wide caps: every request runs
    under [Budget.scoped] of its own ["budget_ms"]/["budget_ticks"]
    parameters clamped by these. [cache_cap] bounds each network's
    signature cache; [max_networks] (default 8) bounds the registry,
    LRU-evicting beyond it. *)

val handle_line :
  t -> queue_depth:int -> string -> string * [ `Continue | `Shutdown ]
(** Process one request line; returns the response line (no trailing
    newline) and whether the server should keep running. Total.
    [queue_depth] is echoed into [health]/[stats] responses. *)

val note_shed : t -> unit
(** Count a request shed by the admission queue (the scheduler lives in
    the server loop; the engine only keeps the statistic). *)

val networks : t -> int
val requests : t -> int

val checkpoint : t -> path:string -> (int, string) result
(** Atomically persist every registered network's warm state; returns
    how many were saved. *)

val restore :
  t -> path:string -> [ `Restored of int | `Cold of string | `Missing ]
(** Load a checkpoint written by {!checkpoint}, re-arming each state's
    transient handles. Corruption or version skew degrades to
    [`Cold reason] — the caller logs it and serves cold; never an
    exception. *)

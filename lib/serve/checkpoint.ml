(* Crash-safe warm-state checkpoints.

   Format: one ASCII header line, then a Marshal payload.

     bonsai-checkpoint <format-version> <build-digest> <payload-md5> <len>\n
     <len bytes of Marshal data>

   Three independent guards, each degrading to a cold rebuild rather
   than a crash:

   - the payload MD5 and length catch torn/truncated/corrupted files
     (a kill -9 mid-write leaves only the temp file — the real path
     always holds a complete previous checkpoint, because publication is
     write-temp + atomic rename within the same directory);
   - the build digest (MD5 of the running executable) catches version
     skew: Marshal blobs are only meaningful to the binary that wrote
     them — unmarshaling foreign data can segfault, so a digest mismatch
     refuses to read the payload at all;
   - Marshal itself is wrapped, so even a payload that passes both
     checks (e.g. hand-crafted) cannot escape as an exception. *)

let format_version = 1

let magic = "bonsai-checkpoint"

type load_error =
  | Missing
  | Version_skew of string
  | Corrupt of string

let pp_load_error ppf = function
  | Missing -> Format.fprintf ppf "no checkpoint file"
  | Version_skew m -> Format.fprintf ppf "version skew: %s" m
  | Corrupt m -> Format.fprintf ppf "corrupt checkpoint: %s" m

let build_digest =
  lazy
    (Digest.to_hex
       (try Digest.file Sys.executable_name
        with Sys_error _ -> Digest.string Sys.executable_name))

(* Durability counter: incremented once per fsync actually issued
   (temp file, then its directory). The unit test asserts a save costs
   at least two — i.e. the old buffered-write + rename-only path, which
   could surface as a Corrupt load after a power loss, is gone. *)
let syncs = ref 0

let sync_count () = !syncs

let fsync_path ?(dir = false) p =
  let flags = if dir then [ Unix.O_RDONLY ] else [ Unix.O_WRONLY ] in
  match Unix.openfile p flags 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try
          Unix.fsync fd;
          incr syncs
        with Unix.Unix_error _ ->
          (* e.g. a filesystem that rejects directory fsync: rename
             atomicity still protects against torn writes, only the
             power-loss window stays *)
          ())

let save ~path v =
  match Marshal.to_string v [] with
  | exception e ->
    Error ("cannot serialize state: " ^ Printexc.to_string e)
  | payload -> (
    let header =
      Printf.sprintf "%s %d %s %s %d\n" magic format_version
        (Lazy.force build_digest)
        (Digest.to_hex (Digest.string payload))
        (String.length payload)
    in
    let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
    try
      Out_channel.with_open_bin tmp (fun oc ->
          Out_channel.output_string oc header;
          Out_channel.output_string oc payload);
      (* Durability order: flush the temp file's bytes to stable
         storage, publish with the atomic rename, then flush the
         directory so the rename itself survives a power loss —
         otherwise a crash right after checkpointing can resurface an
         old (or torn) image as a Corrupt load. *)
      fsync_path tmp;
      Sys.rename tmp path;
      fsync_path ~dir:true (Filename.dirname path);
      Ok ()
    with Sys_error m | Unix.Unix_error (_, m, _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error m)

let load ~path =
  if not (Sys.file_exists path) then Error Missing
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error m -> Error (Corrupt m)
    | raw -> (
      match String.index_opt raw '\n' with
      | None -> Error (Corrupt "missing header line")
      | Some nl -> (
        let header = String.sub raw 0 nl in
        let payload_start = nl + 1 in
        match String.split_on_char ' ' header with
        | [ m; version; digest; md5; len ] when String.equal m magic -> (
          match (int_of_string_opt version, int_of_string_opt len) with
          | Some v, _ when v <> format_version ->
            Error
              (Version_skew
                 (Printf.sprintf "checkpoint format %s, expected %d" version
                    format_version))
          | _, None | None, _ -> Error (Corrupt "unreadable header fields")
          | Some _, Some len ->
            if not (String.equal digest (Lazy.force build_digest)) then
              Error
                (Version_skew
                   "written by a different build of this executable")
            else if String.length raw - payload_start <> len then
              Error
                (Corrupt
                   (Printf.sprintf "payload is %d bytes, header says %d"
                      (String.length raw - payload_start)
                      len))
            else
              let payload = String.sub raw payload_start len in
              if
                not
                  (String.equal md5
                     (Digest.to_hex (Digest.string payload)))
              then Error (Corrupt "payload checksum mismatch")
              else (
                match Marshal.from_string payload 0 with
                | v -> Ok v
                | exception e ->
                  Error (Corrupt ("unmarshal: " ^ Printexc.to_string e))))
        | _ -> Error (Corrupt "unrecognized header")))

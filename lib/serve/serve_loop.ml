(* The server around the engine: sockets, admission, drain, checkpoint.

   Three transports share one ingestion path:

   - stdio: NDJSON on stdin/stdout, for golden tests and piping. Reads
     are chunked; each batch of complete lines is ingested (sheds
     answered immediately), then the queue drains fully before the next
     read — with a regular file on stdin the whole input arrives in the
     first read, so overload behavior is deterministic and goldenable.
   - unix / tcp: a select loop. Per iteration: ingest every complete
     line from every readable connection, then process exactly ONE
     queued request — admission is re-examined between requests, so a
     burst beyond --max-inflight sheds instead of buffering unboundedly.

   Control-plane ops (health, stats) bypass the admission queue: an
   overloaded server still answers them — that is the point of having
   them.

   Shutdown (SIGTERM, SIGINT, or the shutdown op) drains: in-flight and
   queued requests get [drain_ms] of wall-clock to finish, stragglers
   are answered with a typed overloaded("server draining") response,
   warm state is checkpointed, and the process exits 0. *)

type listen = Stdio | Unix_socket of string | Tcp of string * int

let control_op = function "health" | "stats" -> true | _ -> false

(* One queued unit: the raw line plus where its response goes. *)
type job = { j_line : string; j_out : string -> unit }

let log fmt = Format.eprintf ("bonsai serve: " ^^ fmt ^^ "@.")

(* --- shared ingestion / processing ------------------------------------ *)

type server = {
  eng : Serve_engine.t;
  sched : job Scheduler.t;
  mutable stop : bool;
  checkpoint_path : string option;
  checkpoint_every : int;
  drain_ms : int;
}

let maybe_checkpoint sv =
  match sv.checkpoint_path with
  | Some path
    when sv.checkpoint_every > 0
         && Serve_engine.requests sv.eng mod sv.checkpoint_every = 0 -> (
    match Serve_engine.checkpoint sv.eng ~path with
    | Ok _ -> ()
    | Error m -> log "checkpoint failed: %s" m)
  | _ -> ()

let final_checkpoint sv =
  match sv.checkpoint_path with
  | None -> ()
  | Some path -> (
    match Serve_engine.checkpoint sv.eng ~path with
    | Ok n -> log "checkpointed %d network%s" n (if n = 1 then "" else "s")
    | Error m -> log "checkpoint failed: %s" m)

(* Every quarantine becomes one structured incident line on stderr, and
   the checkpoint is rewritten immediately: the quarantined entry must
   be gone from disk before a crash could resurrect it. *)
let flush_incidents sv =
  match Serve_engine.drain_incidents sv.eng with
  | [] -> ()
  | incidents ->
    List.iter
      (fun (spec, detail) ->
        log "%s"
          (Json.to_string
             (Json.Obj
                [
                  ("event", Json.String "certificate-incident");
                  ("network", Json.String spec);
                  ("action", Json.String "quarantined");
                  ("detail", Json.String detail);
                ])))
      incidents;
    (match sv.checkpoint_path with
    | None -> ()
    | Some path -> (
      match Serve_engine.checkpoint sv.eng ~path with
      | Ok _ -> ()
      | Error m -> log "checkpoint failed: %s" m))

let ingest sv out line =
  if String.length line = 0 then ()
  else
    let parsed = Protocol.parse_request line in
    match parsed with
    | Ok req when control_op req.Protocol.req_op ->
      let resp, _ =
        Serve_engine.handle_line sv.eng
          ~queue_depth:(Scheduler.depth sv.sched) line
      in
      out resp
    | _ -> (
      match Scheduler.submit sv.sched { j_line = line; j_out = out } with
      | `Admitted -> ()
      | `Shed retry_after_ms ->
        Serve_engine.note_shed sv.eng;
        let id, op =
          match parsed with
          | Ok r -> (r.Protocol.req_id, r.Protocol.req_op)
          | Error _ -> (Json.Null, "unknown")
        in
        out
          (Protocol.overloaded ~id ~op ~retry_after_ms "server overloaded"))

(* Process one queued request; true if one was processed. *)
let step sv =
  match Scheduler.take sv.sched with
  | None -> false
  | Some job ->
    let resp, k =
      Serve_engine.handle_line sv.eng
        ~queue_depth:(Scheduler.depth sv.sched) job.j_line
    in
    job.j_out resp;
    (match k with `Shutdown -> sv.stop <- true | `Continue -> ());
    flush_incidents sv;
    maybe_checkpoint sv;
    true

(* Graceful drain: finish what we can inside the deadline, answer the
   rest with a typed response, persist warm state. *)
let drain sv =
  let deadline =
    Timing.monotonic_now () +. (float_of_int sv.drain_ms /. 1000.0)
  in
  let rec go () =
    if Scheduler.depth sv.sched > 0 && Timing.monotonic_now () < deadline
    then
      if step sv then go ()
  in
  go ();
  let rec flush_rest () =
    match Scheduler.take sv.sched with
    | None -> ()
    | Some job ->
      let id, op =
        match Protocol.parse_request job.j_line with
        | Ok r -> (r.Protocol.req_id, r.Protocol.req_op)
        | Error _ -> (Json.Null, "unknown")
      in
      job.j_out
        (Protocol.overloaded ~id ~op ~retry_after_ms:0 "server draining");
      flush_rest ()
  in
  flush_rest ();
  final_checkpoint sv

(* Complete lines out of an accumulation buffer; the partial tail stays. *)
let split_lines buf =
  let s = Buffer.contents buf in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
    | None ->
      Buffer.clear buf;
      Buffer.add_substring buf s start (String.length s - start);
      List.rev acc
  in
  go 0 []

let install_signal_handlers sv =
  let stop _ = sv.stop <- true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
   with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

(* --- stdio ------------------------------------------------------------- *)

let run_stdio sv =
  install_signal_handlers sv;
  let out line =
    print_string line;
    print_char '\n';
    flush stdout
  in
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    if sv.stop then drain sv
    else begin
      let n = In_channel.input In_channel.stdin chunk 0 (Bytes.length chunk) in
      if n = 0 then begin
        (* EOF: a trailing unterminated line still counts as a request *)
        if Buffer.length buf > 0 then begin
          ingest sv out (Buffer.contents buf);
          Buffer.clear buf
        end;
        while (not sv.stop) && step sv do
          ()
        done;
        if sv.stop then drain sv else final_checkpoint sv
      end
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        List.iter (ingest sv out) (split_lines buf);
        while (not sv.stop) && step sv do
          ()
        done;
        if sv.stop then drain sv else loop ()
      end
    end
  in
  loop ();
  0

(* --- sockets ----------------------------------------------------------- *)

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  mutable c_alive : bool;
}

let conn_out conn line =
  if conn.c_alive then begin
    let payload = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length payload in
    let rec write off =
      if off < len then begin
        match Unix.write conn.c_fd payload off (len - off) with
        | n -> write (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
        | exception Unix.Unix_error (_, _, _) ->
          (* peer went away mid-response; the request was already done *)
          conn.c_alive <- false
      end
    in
    write 0
  end

let close_conn conn =
  if conn.c_alive then conn.c_alive <- false;
  try Unix.close conn.c_fd with Unix.Unix_error (_, _, _) -> ()

let read_conn sv conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn conn
  | 0 ->
    (* orderly EOF: an unterminated trailing line is still a request *)
    if Buffer.length conn.c_buf > 0 then begin
      ingest sv (conn_out conn) (Buffer.contents conn.c_buf);
      Buffer.clear conn.c_buf
    end;
    close_conn conn
  | n ->
    Buffer.add_subbytes conn.c_buf chunk 0 n;
    List.iter (ingest sv (conn_out conn)) (split_lines conn.c_buf);
    if Buffer.length conn.c_buf > Protocol.max_line_bytes then begin
      (* unbounded garbage with no newline: answer and hang up *)
      conn_out conn
        (Protocol.bad_request ~id:Json.Null ~op:"unknown"
           (Printf.sprintf "request exceeds %d bytes" Protocol.max_line_bytes));
      close_conn conn
    end

let run_socket sv sock_addr cleanup =
  install_signal_handlers sv;
  let listener = Unix.socket (Unix.domain_of_sockaddr sock_addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  (match Unix.bind listener sock_addr with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    log "cannot bind: %s" (Unix.error_message e);
    exit 125);
  Unix.listen listener 64;
  log "listening";
  let conns = ref [] in
  let rec loop () =
    if sv.stop then ()
    else begin
      let fds = listener :: List.map (fun c -> c.c_fd) !conns in
      (* block only when idle; with queued work just poll for new input;
         with a pending self-audit, wake shortly to run one step *)
      let timeout =
        if Scheduler.depth sv.sched > 0 then 0.0
        else if Serve_engine.audit_pending sv.eng then 0.05
        else -1.0
      in
      let readable =
        match Unix.select fds [] [] timeout with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      (* idle and nothing arrived: spend the moment self-auditing one
         warm network under a small budget *)
      if
        readable = []
        && Scheduler.depth sv.sched = 0
        && Serve_engine.audit_pending sv.eng
      then begin
        (match
           Serve_engine.audit_step
             ~budget:(Budget.create ~deadline_s:0.25 ())
             sv.eng
         with
        | Serve_engine.Audit_quarantined (spec, _) ->
          log "self-audit quarantined %s" spec
        | Serve_engine.Audit_idle | Serve_engine.Audit_clean _
        | Serve_engine.Audit_unfinished _ ->
          ());
        flush_incidents sv
      end;
      if List.memq listener readable then begin
        match Unix.accept listener with
        | fd, _ ->
          conns :=
            { c_fd = fd; c_buf = Buffer.create 4096; c_alive = true }
            :: !conns
        | exception Unix.Unix_error (_, _, _) -> ()
      end;
      List.iter
        (fun c -> if List.memq c.c_fd readable then read_conn sv c)
        !conns;
      conns := List.filter (fun c -> c.c_alive) !conns;
      ignore (step sv : bool);
      loop ()
    end
  in
  loop ();
  log "draining (%dms deadline)" sv.drain_ms;
  drain sv;
  List.iter close_conn !conns;
  (try Unix.close listener with Unix.Unix_error (_, _, _) -> ());
  cleanup ();
  0

(* --- entry point -------------------------------------------------------- *)

let run ~engine ~listen ?(max_inflight = 16) ?(drain_ms = 2000)
    ?checkpoint_path ?(checkpoint_every = 0) ?(preload = []) () =
  let sv =
    {
      eng = engine;
      sched = Scheduler.create ~max_inflight;
      stop = false;
      checkpoint_path;
      checkpoint_every;
      drain_ms;
    }
  in
  (* restore warm state before accepting the first request; failure is a
     warning and a cold start, never a refusal to serve *)
  (match checkpoint_path with
  | None -> ()
  | Some path -> (
    match Serve_engine.restore engine ~path with
    | `Restored n ->
      log "restored %d network%s from checkpoint" n (if n = 1 then "" else "s")
    | `Missing -> ()
    | `Version_skew reason -> log "cold start: checkpoint version skew: %s" reason
    | `Corrupt reason -> log "cold start: corrupt checkpoint: %s" reason));
  (* preload after restore: specs already warm from the checkpoint are a
     registry hit, everything else compresses now instead of on the
     first request. Responses go to stderr — no client asked. *)
  List.iter
    (fun spec ->
      let line =
        Json.to_string
          (Json.Obj
             [ ("op", Json.String "load"); ("network", Json.String spec) ])
      in
      let resp, _ = Serve_engine.handle_line engine ~queue_depth:0 line in
      log "preload %s" resp)
    preload;
  match listen with
  | Stdio -> run_stdio sv
  | Unix_socket path ->
    (* a previous unclean death leaves the socket file behind *)
    (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
    run_socket sv (Unix.ADDR_UNIX path) (fun () ->
        try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback
    in
    run_socket sv (Unix.ADDR_INET (addr, port)) (fun () -> ())

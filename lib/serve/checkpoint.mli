(** Versioned, checksummed, atomically-published state checkpoints.

    {!save} writes a header (format version, digest of the running
    executable, payload MD5, payload length) plus a [Marshal] payload to
    a temp file and atomically renames it into place: a crash — up to
    and including [kill -9] mid-write — can never tear the published
    file, only leave a stale temp behind. {!load} re-verifies everything
    before touching [Marshal]: corruption and truncation are detected by
    checksum/length, and a checkpoint written by a {e different build}
    is rejected as version skew without reading the payload (unmarshaling
    foreign bytes is undefined behavior, not just an error). Every
    failure is a value; callers degrade to a cold rebuild.

    The payload type is the caller's ('a is not checked beyond the build
    digest — which pins the exact binary and therefore the exact type
    layout); keep one payload type per path. *)

type load_error =
  | Missing  (** no file at the path (first boot) *)
  | Version_skew of string
      (** written by another build or format version; payload not read *)
  | Corrupt of string  (** torn, truncated, or checksum-mismatched *)

val pp_load_error : Format.formatter -> load_error -> unit

val save : path:string -> 'a -> (unit, string) result
(** Serialize, write [path.<pid>.tmp], fsync it, rename to [path], fsync
    the containing directory — so the published checkpoint survives a
    power loss immediately after the call, not just a process crash. On
    [Error] the previously published checkpoint (if any) is untouched. *)

val sync_count : unit -> int
(** Cumulative fsyncs issued by {!save} in this process (temp file +
    directory per successful save). Exists so the test suite can assert
    the durability path is exercised — a save that skipped straight to
    rename would leave this unchanged. *)

val load : path:string -> ('a, load_error) result

val build_digest : string lazy_t
(** Hex MD5 of the running executable, the version-skew guard. *)

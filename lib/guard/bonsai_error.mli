(** Typed error taxonomy for the Bonsai pipeline.

    Historically the pipeline crashed via ad-hoc [failwith] and
    [Invalid_argument]; production use needs errors a caller can branch on
    and a CLI can map to stable exit codes. Every [Bonsai_api] entry point
    returns [('a, Bonsai_error.t) result]; internal code may still raise
    ({!Error}, [Budget.Exhausted]) but {!protect} converts anything that
    crosses an API boundary into a value — including unexpected exceptions,
    which become {!Internal} rather than escaping. *)

type t =
  | Parse_error of { diagnostics : (int * string) list }
      (** configuration text rejected; one (line, message) per diagnostic,
          in source order, at most 20 per file *)
  | Compile_error of string
      (** the parsed network cannot be compiled/compressed (invalid
          topology reference, anycast destination class, ...) *)
  | Budget_exceeded of Budget.info
      (** a phase ran out of wall-clock, work ticks, BDD nodes, or was
          cancelled; callers may degrade to the identity abstraction *)
  | Divergence of string
      (** the SRP solver found no stable solution (the message carries the
          oscillation post-mortem) *)
  | Soundness_break of string
      (** an independent check contradicted the abstraction *)
  | Certificate_failure of string
      (** the independent certificate checker refuted an answer's witness *)
  | Internal of string  (** a bug: an unexpected exception, crash-proofed *)

exception Error of t

val error : t -> 'a
(** [error e] raises {!Error}. *)

val exit_code : t -> int
(** Stable CLI exit code per class: budget 3, parse 4, compile 5,
    divergence 6, soundness 7, certificate 8, internal 9. (Exit codes 0,
    1, 124, 125 keep their usual meanings: success, failed check/lint,
    CLI misuse, internal cmdliner error.) *)

val class_name : t -> string
(** Short class tag: ["parse-error"], ["budget-exceeded"], ... *)

val of_exn : exn -> t
(** Map an arbitrary exception to the taxonomy: {!Error} unwraps,
    [Budget.Exhausted] becomes [Budget_exceeded], anything else
    [Internal]. *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a pipeline stage, converting every escaping exception via
    {!of_exn}. The crash-proof boundary used by [Bonsai_api] and the
    CLI. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Retry pacing for pollers, extracted from [bonsai watch] so the
    policy is unit-testable: exponential backoff under consecutive
    failures (capped), plus the one-shot mid-write re-read used when a
    snapshot was caught half-written.

    The invariant the watcher relies on: {!sleep_ms} is never below
    [base_ms], whatever the failure count — a file that stays broken
    (deleted, permission flip, an editor that died mid-save) slows the
    poll down, it can never speed it up into a busy loop. *)

type t

val create : ?cap_ms:int -> base_ms:int -> unit -> t
(** [cap_ms] defaults to 30_000 and is clamped to at least [base_ms].
    Raises [Invalid_argument] if [base_ms < 1]. *)

val sleep_ms : t -> int
(** [base_ms] while healthy; after [n] consecutive failures,
    [min cap_ms (base_ms * 2^min(n,16))]. The exponent clamp keeps the
    shift well-defined for any failure count. *)

val note_failure : t -> int
(** Record one more consecutive failure; returns the new {!sleep_ms}. *)

val reset : t -> unit
(** A successfully parsed snapshot ends the failure streak. *)

val failures : t -> int

val parse_with_retry :
  read:(unit -> (string, 'r) result) ->
  parse:(string -> ('a, 'e) result) ->
  sleep:(unit -> unit) ->
  string ->
  string * ('a, 'e) result
(** Parse a freshly read snapshot. On failure, [sleep] once (a
    truncate-then-write or rsync replace shows up as an empty or
    half-written file), re-[read], and re-parse {e only if the bytes
    actually changed} — an unchanged snapshot keeps the {e first}
    error rather than burning a second parse on identical input, and a
    failed re-read also keeps the first error. Returns the text
    settled on (so the caller's change detection stays consistent)
    and the outcome. *)

type t = { base_ms : int; cap_ms : int; mutable failures : int }

let create ?(cap_ms = 30_000) ~base_ms () =
  if base_ms < 1 then invalid_arg "Backoff.create: base_ms < 1";
  { base_ms; cap_ms = max cap_ms base_ms; failures = 0 }

let failures t = t.failures

(* the exponent clamp (16) keeps the shift well-defined for any streak
   length; the cap then bounds the result, and the failures = 0 arm
   guarantees sleep_ms >= base_ms always *)
let sleep_ms t =
  if t.failures = 0 then t.base_ms
  else min t.cap_ms (t.base_ms * (1 lsl min t.failures 16))

let note_failure t =
  t.failures <- t.failures + 1;
  sleep_ms t

let reset t = t.failures <- 0

let parse_with_retry ~read ~parse ~sleep text =
  match parse text with
  | Ok v -> (text, Ok v)
  | Error e0 -> (
    sleep ();
    match read () with
    | Ok text' when not (String.equal text' text) -> (text', parse text')
    | Ok _ | Error _ -> (text, Error e0))

type t =
  | Parse_error of { diagnostics : (int * string) list }
  | Compile_error of string
  | Budget_exceeded of Budget.info
  | Divergence of string
  | Soundness_break of string
  | Certificate_failure of string
  | Internal of string

exception Error of t

let error e = raise (Error e)

let exit_code = function
  | Budget_exceeded _ -> 3
  | Parse_error _ -> 4
  | Compile_error _ -> 5
  | Divergence _ -> 6
  | Soundness_break _ -> 7
  | Certificate_failure _ -> 8
  | Internal _ -> 9

let class_name = function
  | Parse_error _ -> "parse-error"
  | Compile_error _ -> "compile-error"
  | Budget_exceeded _ -> "budget-exceeded"
  | Divergence _ -> "divergence"
  | Soundness_break _ -> "soundness-break"
  | Certificate_failure _ -> "certificate-failure"
  | Internal _ -> "internal"

let of_exn = function
  | Error e -> e
  | Budget.Exhausted info -> Budget_exceeded info
  | e -> Internal (Printexc.to_string e)

let protect f =
  match f () with
  | v -> Ok v
  | exception ((Stack_overflow | Out_of_memory) as e) ->
    (* recoverable resource crashes are still typed, not fatal *)
    Error (Internal (Printexc.to_string e))
  | exception e -> Error (of_exn e)

let pp ppf = function
  | Parse_error { diagnostics } ->
    Format.fprintf ppf "parse error (%d diagnostic%s):" (List.length diagnostics)
      (if List.length diagnostics = 1 then "" else "s");
    List.iter
      (fun (line, msg) ->
        if line > 0 then Format.fprintf ppf "@,  line %d: %s" line msg
        else Format.fprintf ppf "@,  %s" msg)
      diagnostics
  | Compile_error msg -> Format.fprintf ppf "compile error: %s" msg
  | Budget_exceeded { phase; ticks; elapsed_s; note } ->
    Format.fprintf ppf "budget exceeded in phase %s after %d ticks (%.3fs)%s"
      phase ticks elapsed_s
      (match note with None -> "" | Some n -> "; " ^ n)
  | Divergence msg -> Format.fprintf ppf "divergence: %s" msg
  | Soundness_break msg -> Format.fprintf ppf "soundness break: %s" msg
  | Certificate_failure msg ->
    Format.fprintf ppf "certificate failure: %s" msg
  | Internal msg -> Format.fprintf ppf "internal error: %s" msg

let to_string e = Format.asprintf "@[<v>%a@]" pp e

type info = {
  phase : string;
  ticks : int;
  elapsed_s : float;
  note : string option;
}

exception Exhausted of info

type t = {
  mutable ticks : int;
  max_ticks : int;
  start : float;
  deadline : float; (* absolute; infinity when unbounded *)
  mutable cancelled : bool;
  parent : t option; (* set by [split]; never [infinite] *)
}

(* How often the (comparatively expensive) clock is consulted from [tick]:
   every [clock_stride] ticks. Tick-count and cancellation checks are exact
   on every tick. *)
let clock_stride_mask = 0xF

(* The centralized never-backwards clock: a backwards NTP step must not
   produce negative elapsed times or a deadline that can never fire. *)
let now = Timing.monotonic_now

let infinite =
  { ticks = 0; max_ticks = max_int; start = 0.0; deadline = infinity;
    cancelled = false; parent = None }

let create ?deadline_s ?max_ticks () =
  let start = now () in
  {
    ticks = 0;
    max_ticks = (match max_ticks with Some t -> t | None -> max_int);
    start;
    deadline =
      (match deadline_s with Some s -> start +. s | None -> infinity);
    cancelled = false;
    parent = None;
  }

let is_infinite b = b == infinite
let cancel b = if not (is_infinite b) then b.cancelled <- true

let rec cancelled b =
  b.cancelled || (match b.parent with Some p -> cancelled p | None -> false)
let ticks b = b.ticks
(* [max 0.0]: a restored-from-checkpoint or hand-built budget may carry a
   start in the future of the clamped clock; elapsed degrades to zero,
   never negative. *)
let elapsed_s b = if is_infinite b then 0.0 else max 0.0 (now () -. b.start)

let info b ~phase ?note () =
  { phase; ticks = b.ticks; elapsed_s = elapsed_s b; note }

let with_note i note = { i with note = Some note }

let fail b phase = raise (Exhausted (info b ~phase ()))

(* >=, not >: a zero allowance is expired from the moment it is created,
   even if the clock has not visibly advanced since. *)
let over_deadline b = b.deadline < infinity && now () >= b.deadline

let check b ~phase =
  if not (is_infinite b) then
    if cancelled b || b.ticks > b.max_ticks || over_deadline b then
      fail b phase

(* A child slice charges its ancestors too, so a parent's tick quota
   bounds the sum of the work done under every slice carved from it. The
   exception raised names whichever budget in the chain ran out first. *)
let rec tick b ~phase =
  if not (is_infinite b) then begin
    b.ticks <- b.ticks + 1;
    if
      b.cancelled
      || b.ticks > b.max_ticks
      || (b.ticks land clock_stride_mask = 0 && over_deadline b)
    then fail b phase;
    match b.parent with Some p -> tick p ~phase | None -> ()
  end

let scoped ?deadline_s ?max_ticks ?cap_deadline_s ?cap_max_ticks () =
  let min_opt a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)
  in
  match
    (min_opt deadline_s cap_deadline_s, min_opt max_ticks cap_max_ticks)
  with
  | None, None -> infinite
  | deadline_s, max_ticks -> create ?deadline_s ?max_ticks ()

let exhausted b =
  (not (is_infinite b))
  && (cancelled b || b.ticks > b.max_ticks || over_deadline b)

let split b ~frac =
  if is_infinite b then infinite
  else begin
    if not (frac > 0.0) || frac > 1.0 then
      invalid_arg "Budget.split: frac must be in (0, 1]";
    let start = now () in
    let deadline =
      if b.deadline = infinity then infinity
      else begin
        (* Carve [frac] of the parent's remaining seconds, measured now;
           the child's deadline can never outlive the parent's. *)
        let remaining = max 0.0 (b.deadline -. start) in
        min b.deadline (start +. (frac *. remaining))
      end
    in
    let max_ticks =
      if b.max_ticks = max_int then max_int
      else
        let remaining = max 0 (b.max_ticks - b.ticks) in
        int_of_float (frac *. float_of_int remaining)
    in
    { ticks = 0; max_ticks; start; deadline; cancelled = false;
      parent = Some b }
  end

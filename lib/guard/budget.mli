(** Resource budgets for the compression pipeline.

    Every long-running phase of Bonsai — BDD policy encoding, the SRP
    solver fixpoint, abstraction refinement, fault surveys — can run
    unboundedly long on adversarial inputs. A [Budget.t] bounds such a
    phase with three cooperating mechanisms:

    - a {e wall-clock deadline} (checked against a monotonic-enough clock
      every few ticks, so the per-tick cost stays one increment and one
      comparison);
    - a {e work-tick counter}: each unit of work (a BDD node expansion, a
      solver activation, a refinement iteration, a fault scenario) consumes
      one tick, against an optional maximum;
    - a {e cooperative cancellation token}: any thread may {!cancel} the
      budget and the working phase stops at its next tick.

    One budget is intended to be threaded through an entire pipeline run so
    the deadline covers parse → compile → compress → solve end to end.
    Exhaustion is signalled by the {!Exhausted} exception, which carries the
    phase that was executing, the ticks consumed and the elapsed wall-clock
    time; API boundaries ({!Bonsai_api}, the CLI) convert it into the typed
    [Bonsai_error.Budget_exceeded] error rather than letting it escape. *)

type info = {
  phase : string;  (** the pipeline phase whose tick hit the limit *)
  ticks : int;  (** work ticks consumed when the budget ran out *)
  elapsed_s : float;  (** wall-clock seconds since the budget was created *)
  note : string option;
      (** optional phase-specific progress, e.g. the partition size the
          refinement loop had reached *)
}

exception Exhausted of info

type t

val infinite : t
(** A budget that never runs out (the default everywhere). Shared; its
    tick counter is meaningless. *)

val create : ?deadline_s:float -> ?max_ticks:int -> unit -> t
(** [create ()] is a fresh budget. [deadline_s] is a wall-clock allowance
    in seconds, measured from this call; [max_ticks] bounds the number of
    work ticks. Omitted limits are unbounded (but the budget can still be
    {!cancel}led). *)

val scoped :
  ?deadline_s:float ->
  ?max_ticks:int ->
  ?cap_deadline_s:float ->
  ?cap_max_ticks:int ->
  unit ->
  t
(** Request-scoped budget for a resident engine: each limit is the
    minimum of the caller-requested value and the server-wide cap; an
    omitted request inherits the cap and an omitted cap leaves the
    request unclamped. With no limit from either side this is
    {!infinite}. *)

val split : t -> frac:float -> t
(** [split b ~frac] carves a child slice holding [frac] of [b]'s
    {e remaining} allowance, measured at the call: the child's deadline
    is [frac] of the seconds [b] has left (clamped to [b]'s own
    deadline) and its tick quota is [frac] of the ticks [b] has left.
    Child ticks also charge [b] (and its ancestors), so the parent's
    limits bound the sum of work across every slice carved from it, and
    cancelling [b] cancels every slice transitively. [split infinite]
    is {!infinite}. Raises [Invalid_argument] unless [0 < frac <= 1].

    This is the modular supervisor's isolation primitive: each module
    compresses under its own slice, so one module exhausting its quota
    raises inside that module only, leaving the parent (and the other
    modules' slices) alive. *)

val is_infinite : t -> bool

val cancel : t -> unit
(** Cooperatively cancel: the next {!tick}/{!check} raises {!Exhausted}. *)

val cancelled : t -> bool
val ticks : t -> int
val elapsed_s : t -> float

val tick : t -> phase:string -> unit
(** Consume one work tick. Raises {!Exhausted} when the tick limit is
    reached, the budget was cancelled, or (checked every few ticks) the
    deadline has passed. *)

val check : t -> phase:string -> unit
(** Like {!tick} but consumes nothing and always consults the clock; for
    coarse loops whose iterations are individually expensive (one fault
    scenario, one refinement pass). *)

val exhausted : t -> bool
(** Non-raising poll: has the budget run out (by any mechanism)? *)

val info : t -> phase:string -> ?note:string -> unit -> info
(** Snapshot the budget's consumption, for error reports. *)

val with_note : info -> string -> info
(** Replace the progress note (used to attach e.g. partition sizes). *)

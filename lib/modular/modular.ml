(* Modular compression with per-module fault isolation. See modular.mli
   for the contract and DESIGN.md §16 for the soundness argument. *)

type mode = Annot | Auto

let mode_of_string = function
  | "annot" -> Some Annot
  | "auto" -> Some Auto
  | _ -> None

let mode_to_string = function Annot -> "annot" | Auto -> "auto"

(* ------------------------------------------------------------------ *)
(* Partitioning *)

let partition ?count ~mode (net : Device.network) =
  let g = net.Device.graph in
  let n = Graph.n_nodes g in
  match mode with
  | Annot ->
    let tbl = Hashtbl.create 16 in
    let missing = ref 0 in
    let first = ref None in
    Array.iteri
      (fun v (r : Device.router) ->
        match r.Device.module_name with
        | Some m ->
          let l = try Hashtbl.find tbl m with Not_found -> [] in
          Hashtbl.replace tbl m (v :: l)
        | None ->
          incr missing;
          if !first = None then first := Some r.Device.name)
      net.Device.routers;
    if !missing > 0 then
      Error
        (Printf.sprintf
           "%d router(s) lack a module annotation (first: %s); annotate \
            every router or use --modules auto"
           !missing
           (match !first with Some s -> s | None -> "?"))
    else
      Hashtbl.fold (fun m l acc -> (m, List.rev l) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> Result.ok
  | Auto ->
    if n = 0 then Error "empty network"
    else begin
      let count =
        match count with
        | Some c -> max 1 (min c n)
        | None -> max 2 (min 64 (n / 100)) |> min n
      in
      let target = max 1 ((n + count - 1) / count) in
      let assigned = Array.make n false in
      let parts = ref [] in
      let idx = ref 0 in
      for root = 0 to n - 1 do
        if not assigned.(root) then begin
          (* Grow a BFS region of up to [target] yet-unassigned nodes,
             so regions are connected (modulo leftovers) and of roughly
             equal size — boundaries stay small on geographic WANs. *)
          let q = Queue.create () in
          let members = ref [] in
          let size = ref 0 in
          Queue.add root q;
          assigned.(root) <- true;
          incr size;
          while not (Queue.is_empty q) do
            let u = Queue.pop q in
            members := u :: !members;
            Array.iter
              (fun w ->
                if (not assigned.(w)) && !size < target then begin
                  assigned.(w) <- true;
                  incr size;
                  Queue.add w q
                end)
              (Graph.succ g u)
          done;
          parts :=
            (Printf.sprintf "m%03d" !idx, List.sort Int.compare !members)
            :: !parts;
          incr idx
        end
      done;
      Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) !parts)
    end

(* ------------------------------------------------------------------ *)
(* Health and reports *)

type health = Healthy | Retried | Degraded | Refuted

let health_name = function
  | Healthy -> "ok"
  | Retried -> "retried"
  | Degraded -> "degraded"
  | Refuted -> "refuted"

type module_report = {
  mr_name : string;
  mr_routers : int;
  mr_ecs : int;
  mr_concrete : int;
  mr_abstract : int;
  mr_health : health;
  mr_detail : string option;
  mr_time_s : float;
}

type report = {
  rp_modules : module_report list;
  rp_routers : int;
  rp_skipped_anycast : int;
  rp_time_s : float;
}

let any_fault rp =
  List.exists
    (fun mr -> match mr.mr_health with
      | Degraded | Refuted -> true
      | Healthy | Retried -> false)
    rp.rp_modules

(* ------------------------------------------------------------------ *)
(* Subnet construction: a module's members plus one pinned stub per
   boundary neighbor, carrying the interface routes (external prefix
   originations placed so the subnet's destination classes mirror the
   global ones). *)

type module_state = {
  ms_name : string;
  ms_members : int array;  (* global ids, ascending *)
  ms_env : int array;  (* global ids of boundary stubs, ascending *)
  mutable ms_subnet : Device.network;
      (* members first (same order), then stubs *)
  ms_pinned : int list;  (* subnet ids of the stubs *)
  mutable ms_state : Incr.state option;
  mutable ms_health : health;
  mutable ms_detail : string option;
  mutable ms_time_s : float;
}

let remap_router keep (r : Device.router) =
  {
    r with
    Device.bgp_neighbors =
      List.filter_map
        (fun (u, c) -> Option.map (fun u' -> (u', c)) (keep u))
        r.Device.bgp_neighbors;
    ospf_links =
      List.filter_map
        (fun (u, l) -> Option.map (fun u' -> (u', l)) (keep u))
        r.Device.ospf_links;
    acl_out =
      List.filter_map
        (fun (u, a) -> Option.map (fun u' -> (u', a)) (keep u))
        r.Device.acl_out;
    static_routes =
      List.filter_map
        (fun (p, u) -> Option.map (fun u' -> (p, u')) (keep u))
        r.Device.static_routes;
  }

let subnet_of (net : Device.network) ~name ~members ~(ecs : Ecs.ec list) =
  let g = net.Device.graph in
  let n = Graph.n_nodes g in
  let memb = Array.of_list members in
  let in_module = Array.make n false in
  Array.iter (fun v -> in_module.(v) <- true) memb;
  (* Boundary stubs: every external neighbor of a member. *)
  let env_set = Hashtbl.create 16 in
  Array.iter
    (fun u ->
      Array.iter
        (fun w -> if not in_module.(w) then Hashtbl.replace env_set w ())
        (Graph.succ g u))
    memb;
  let env =
    Hashtbl.fold (fun w () acc -> w :: acc) env_set []
    |> List.sort Int.compare |> Array.of_list
  in
  let b = Graph.Builder.create () in
  let sub_of = Hashtbl.create 64 in
  Array.iter
    (fun v -> Hashtbl.replace sub_of v (Graph.Builder.add_node b (Graph.name g v)))
    memb;
  Array.iter
    (fun v -> Hashtbl.replace sub_of v (Graph.Builder.add_node b (Graph.name g v)))
    env;
  (* Links: member-member (each once) and member-stub; stub-stub links
     are dropped — the stub summarizes only its sessions toward the
     module. *)
  Array.iter
    (fun u ->
      let u' = Hashtbl.find sub_of u in
      Array.iter
        (fun w ->
          match Hashtbl.find_opt sub_of w with
          | None -> ()
          | Some w' ->
            if in_module.(w) then begin
              if u < w then Graph.Builder.add_link b u' w'
            end
            else Graph.Builder.add_link b u' w')
        (Graph.succ g u))
    memb;
  let sg = Graph.Builder.build b in
  let n_members = Array.length memb in
  (* Destination-class parity: each global class with no origin among the
     members must announce its prefix from exactly one stub, placed in
     the stub's connected component of G∖members that holds an origin —
     so the route enters the module on the sessions it really would.
     One placement keeps subnet classes single-origin even for anycast
     prefixes. *)
  let comp = Array.make n (-1) in
  let next_comp = ref 0 in
  for v = 0 to n - 1 do
    if (not in_module.(v)) && comp.(v) < 0 then begin
      let c = !next_comp in
      incr next_comp;
      comp.(v) <- c;
      let q = Queue.create () in
      Queue.add v q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Array.iter
          (fun w ->
            if (not in_module.(w)) && comp.(w) < 0 then begin
              comp.(w) <- c;
              Queue.add w q
            end)
          (Graph.succ g u)
      done
    end
  done;
  let extra_origs = Hashtbl.create 16 in
  (* global stub id -> placed prefixes, reverse order *)
  List.iter
    (fun (ec : Ecs.ec) ->
      let internal = List.exists (fun o -> in_module.(o)) ec.Ecs.ec_origins in
      if (not internal) && Array.length env > 0 then begin
        let comps = List.map (fun o -> comp.(o)) ec.Ecs.ec_origins in
        let site =
          match
            Array.to_list env
            |> List.find_opt (fun e -> List.mem comp.(e) comps)
          with
          | Some e -> e
          | None -> env.(0)
        in
        let l = try Hashtbl.find extra_origs site with Not_found -> [] in
        Hashtbl.replace extra_origs site (ec.Ecs.ec_prefix :: l)
      end)
    ecs;
  let routers =
    Array.init (Graph.n_nodes sg) (fun v' ->
        if v' < n_members then
          let r = net.Device.routers.(memb.(v')) in
          remap_router (fun u -> Hashtbl.find_opt sub_of u) r
        else begin
          let gid = env.(v' - n_members) in
          let r = net.Device.routers.(gid) in
          (* Keep only the stub's config toward the members; its
             originations become the placed interface routes. *)
          let keep u =
            match Hashtbl.find_opt sub_of u with
            | Some i when i < n_members -> Some i
            | _ -> None
          in
          let r = remap_router keep r in
          {
            r with
            Device.originated =
              (try List.rev (Hashtbl.find extra_origs gid)
               with Not_found -> []);
            module_name = None;
          }
        end)
  in
  let subnet = { Device.graph = sg; routers } in
  let pinned = List.init (Array.length env) (fun i -> n_members + i) in
  {
    ms_name = name;
    ms_members = memb;
    ms_env = env;
    ms_subnet = subnet;
    ms_pinned = pinned;
    ms_state = None;
    ms_health = Degraded;
    ms_detail = None;
    ms_time_s = 0.0;
  }

(* ------------------------------------------------------------------ *)
(* The supervisor: compress one module under its own budget slice,
   isolating faults to that module. *)

let budget_detail (i : Budget.info) =
  (* No elapsed wall-clock: the detail lands in byte-pinned goldens. *)
  Printf.sprintf "budget exhausted (%s, %d ticks)" i.Budget.phase
    i.Budget.ticks

let attempt ~params ~budget ms =
  (* Fresh BDD manager per attempt over the global value layout: a
     faulting module cannot poison another module's node table, yet
     policy equality means the same thing everywhere. *)
  let universe = Policy_bdd.universe_of_params params in
  match Incr.init ~pinned:ms.ms_pinned ~universe ~budget ms.ms_subnet with
  | Ok st -> (
    match (Incr.summary st).Bonsai_api.degradation with
    | None -> Ok st
    | Some d -> Error (budget_detail d.Bonsai_api.deg_info))
  | Error (Bonsai_error.Budget_exceeded i) -> Error (budget_detail i)
  | Error e -> Error (Bonsai_error.to_string e)

let certify_state ~budget ms st =
  (* Independent audit in a fresh universe derived from the subnet
     itself — nothing shared with the engine under audit. *)
  let summary = Incr.summary st in
  let universe = Policy_bdd.universe_of_network ms.ms_subnet in
  let rec go = function
    | [] -> None
    | (r : Bonsai_api.ec_result) :: rest -> (
      match
        Certify.check_result ~budget ~universe ~audit:Certify.Sample
          ms.ms_subnet r
      with
      | Certify.Refuted fs -> Some (Certify.failures_string fs)
      | Certify.Certified _ | Certify.Audit_incomplete _ -> go rest)
  in
  go summary.Bonsai_api.results

let supervise ~params ~budget ~certify ~injected ~retry_pause ~remaining ms =
  let t0 = Timing.now () in
  let remaining = max 1 remaining in
  let slice frac =
    if injected then Budget.create ~max_ticks:1 ()
    else Budget.split budget ~frac
  in
  let frac1 = 1.0 /. float_of_int remaining in
  let outcome =
    match attempt ~params ~budget:(slice frac1) ms with
    | Ok st -> Some (st, Healthy)
    | Error detail1 -> (
      (* One escalated retry: twice the fair share of what is left. *)
      retry_pause ms.ms_name;
      let frac2 = min 1.0 (2.0 *. frac1) in
      match attempt ~params ~budget:(slice frac2) ms with
      | Ok st -> Some (st, Retried)
      | Error detail2 ->
        ms.ms_state <- None;
        ms.ms_health <- Degraded;
        ms.ms_detail <-
          Some (if detail2 = "" then detail1 else detail2);
        None)
  in
  (match outcome with
  | None -> ()
  | Some (st, h) -> (
    ms.ms_state <- Some st;
    ms.ms_health <- h;
    ms.ms_detail <- None;
    if certify then
      match certify_state ~budget ms st with
      | None -> ()
      | Some detail ->
        (* The checker refuted this module's witness: isolate it. *)
        ms.ms_state <- None;
        ms.ms_health <- Refuted;
        ms.ms_detail <- Some detail));
  ms.ms_time_s <- Timing.now () -. t0

let single_ec (ec : Ecs.ec) =
  match ec.Ecs.ec_origins with [ _ ] -> true | _ -> false

let module_report_of ms =
  let n_members = Array.length ms.ms_members in
  let ecs_count, concrete, abstract =
    match ms.ms_state with
    | Some st ->
      let s = Incr.summary st in
      let groups_of (r : Bonsai_api.ec_result) =
        let g = r.Bonsai_api.abstraction.Abstraction.group_of in
        let seen = Hashtbl.create 16 in
        let c = ref 0 in
        for i = 0 to n_members - 1 do
          if not (Hashtbl.mem seen g.(i)) then begin
            Hashtbl.replace seen g.(i) ();
            incr c
          end
        done;
        !c
      in
      let per = List.map groups_of s.Bonsai_api.results in
      let k = List.length per in
      (k, n_members * k, List.fold_left ( + ) 0 per)
    | None ->
      (* Degraded: the identity abstraction per destination class. *)
      let k = List.length (List.filter single_ec (Ecs.compute ms.ms_subnet)) in
      (k, n_members * k, n_members * k)
  in
  {
    mr_name = ms.ms_name;
    mr_routers = n_members;
    mr_ecs = ecs_count;
    mr_concrete = concrete;
    mr_abstract = abstract;
    mr_health = ms.ms_health;
    mr_detail = ms.ms_detail;
    mr_time_s = ms.ms_time_s;
  }

(* ------------------------------------------------------------------ *)
(* Whole-network state *)

type state = {
  mutable st_net : Device.network;
  st_mode : mode;
  st_count : int option;
  st_certify : bool;
  st_retry_pause : string -> unit;
  mutable st_skipped_anycast : int;
  mutable st_modules : module_state list;  (* sorted by name *)
  mutable st_params : Policy_bdd.universe_params;
  mutable st_time_s : float;
}

let build_state ~mode ~count ~certify ~retry_pause ~budget ~inject_fault net =
  let t0 = Timing.now () in
  (match Device.validate net with
  | Ok () -> ()
  | Error m -> Bonsai_error.error (Bonsai_error.Compile_error m));
  let parts =
    match partition ?count ~mode net with
    | Ok p -> p
    | Error m -> Bonsai_error.error (Bonsai_error.Compile_error m)
  in
  let ecs = Ecs.compute net in
  let anycast = List.length (List.filter (fun e -> not (single_ec e)) ecs) in
  let params = Policy_bdd.universe_params net in
  let modules =
    List.map (fun (name, members) -> subnet_of net ~name ~members ~ecs) parts
  in
  let total = List.length modules in
  List.iteri
    (fun i ms ->
      let injected = List.mem ms.ms_name inject_fault in
      supervise ~params ~budget ~certify ~injected ~retry_pause
        ~remaining:(total - i) ms)
    modules;
  {
    st_net = net;
    st_mode = mode;
    st_count = count;
    st_certify = certify;
    st_retry_pause = retry_pause;
    st_skipped_anycast = anycast;
    st_modules = modules;
    st_params = params;
    st_time_s = Timing.now () -. t0;
  }

let run ?(mode = Auto) ?count ?(budget = Budget.infinite) ?(certify = false)
    ?(inject_fault = []) ?(retry_pause = fun _ -> ()) net =
  Bonsai_error.protect @@ fun () ->
  build_state ~mode ~count ~certify ~retry_pause ~budget ~inject_fault net

let report st =
  let mods = List.map module_report_of st.st_modules in
  {
    rp_modules = mods;
    rp_routers = List.fold_left (fun a mr -> a + mr.mr_routers) 0 mods;
    rp_skipped_anycast = st.st_skipped_anycast;
    rp_time_s = st.st_time_s;
  }

let network st = st.st_net
let module_names st = List.map (fun ms -> ms.ms_name) st.st_modules

let module_summary st name =
  Option.bind
    (List.find_opt (fun ms -> ms.ms_name = name) st.st_modules)
    (fun ms -> Option.map Incr.summary ms.ms_state)

(* ------------------------------------------------------------------ *)
(* Streaming: already-summarized module subnets, one at a time; only
   the report survives, so a 10k-router network never materializes. *)

let run_stream ?(budget = Budget.infinite) ?(certify = false)
    ?(inject_fault = []) ?(retry_pause = fun _ -> ()) ~count seq =
  Bonsai_error.protect @@ fun () ->
  let t0 = Timing.now () in
  let entries = ref [] in
  let processed = ref 0 in
  Seq.iter
    (fun (name, (net : Device.network)) ->
      (match Device.validate net with
      | Ok () -> ()
      | Error m ->
        Bonsai_error.error
          (Bonsai_error.Compile_error (Printf.sprintf "%s: %s" name m)))
      ;
      let n = Graph.n_nodes net.Device.graph in
      let ms =
        {
          ms_name = name;
          ms_members = Array.init n (fun i -> i);
          ms_env = [||];
          ms_subnet = net;
          ms_pinned = [];
          ms_state = None;
          ms_health = Degraded;
          ms_detail = None;
          ms_time_s = 0.0;
        }
      in
      let params = Policy_bdd.universe_params net in
      let injected = List.mem name inject_fault in
      supervise ~params ~budget ~certify ~injected ~retry_pause
        ~remaining:(max 1 (count - !processed))
        ms;
      incr processed;
      entries := module_report_of ms :: !entries;
      (* Drop the engine state before pulling the next module. *)
      ms.ms_state <- None)
    seq;
  let mods =
    List.sort (fun a b -> String.compare a.mr_name b.mr_name) !entries
  in
  {
    rp_modules = mods;
    rp_routers = List.fold_left (fun a mr -> a + mr.mr_routers) 0 mods;
    rp_skipped_anycast = 0;
    rp_time_s = Timing.now () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Module-level quarantine and repair (the resident engine's hooks) *)

let find_module st name =
  List.find_opt (fun ms -> ms.ms_name = name) st.st_modules

let quarantine st name =
  match find_module st name with
  | Some ms when Option.is_some ms.ms_state ->
    ms.ms_state <- None;
    ms.ms_health <- Refuted;
    ms.ms_detail <- Some "quarantined";
    true
  | _ -> false

let rebuild_module ?(budget = Budget.infinite) st name =
  Bonsai_error.protect @@ fun () ->
  match find_module st name with
  | None ->
    Bonsai_error.error
      (Bonsai_error.Compile_error ("unknown module " ^ name))
  | Some ms ->
    supervise ~params:st.st_params ~budget ~certify:st.st_certify
      ~injected:false ~retry_pause:st.st_retry_pause ~remaining:1 ms

let self_audit ?(budget = Budget.infinite) st =
  List.filter_map
    (fun ms ->
      match ms.ms_state with
      | None -> None
      | Some engine -> (
        match certify_state ~budget ms engine with
        | None -> None
        | Some detail ->
          ms.ms_state <- None;
          ms.ms_health <- Refuted;
          ms.ms_detail <- Some detail;
          Some (ms.ms_name, detail)))
    st.st_modules

(* ------------------------------------------------------------------ *)
(* Incremental update: deltas confined to the interior of one healthy
   module recompress only that module. *)

let touched_names (d : Delta.t) =
  match d with
  | Delta.Link_up (a, b) | Delta.Link_down (a, b) -> [ a; b ]
  | Delta.Node_add _ | Delta.Node_remove _ -> []
  | Delta.Ospf_cost { node; nbr; _ }
  | Delta.Ospf_link_set { node; nbr; _ }
  | Delta.Route_map_set { node; nbr; _ }
  | Delta.Bgp_neighbor_set { node; nbr; _ }
  | Delta.Acl_set { node; nbr; _ } -> [ node; nbr ]
  | Delta.Ospf_area_set { node; _ }
  | Delta.Originate_set { node; _ }
  | Delta.Redistribute_set { node; _ } -> [ node ]
  | Delta.Static_set { node; routes } -> node :: List.map snd routes

let structural (d : Delta.t) =
  match d with
  | Delta.Node_add _ | Delta.Node_remove _ -> true
  (* Origination changes reshape the global destination classes, which
     every module's interface-route placement depends on. *)
  | Delta.Originate_set _ -> true
  | _ -> false

let rebuild_in_place ?budget st net =
  let budget = match budget with Some b -> b | None -> Budget.infinite in
  let st' =
    build_state ~mode:st.st_mode ~count:st.st_count ~certify:st.st_certify
      ~retry_pause:st.st_retry_pause ~budget ~inject_fault:[] net
  in
  st.st_net <- st'.st_net;
  st.st_skipped_anycast <- st'.st_skipped_anycast;
  st.st_modules <- st'.st_modules;
  st.st_params <- st'.st_params;
  st.st_time_s <- st'.st_time_s

let update ?budget st deltas =
  Bonsai_error.protect @@ fun () ->
  let g = st.st_net.Device.graph in
  (* name -> (module, interior?) for the fast-path test *)
  let owner = Hashtbl.create 64 in
  List.iter
    (fun ms ->
      let in_module = Hashtbl.create 64 in
      Array.iter
        (fun v -> Hashtbl.replace in_module (Graph.name g v) ())
        ms.ms_members;
      Array.iter
        (fun v ->
          let interior =
            Array.for_all
              (fun w -> Hashtbl.mem in_module (Graph.name g w))
              (Graph.succ g v)
          in
          Hashtbl.replace owner (Graph.name g v) (ms, interior))
        ms.ms_members)
    st.st_modules;
  let targeted =
    if List.exists structural deltas then None
    else begin
      let names = List.concat_map touched_names deltas in
      match names with
      | [] -> None
      | first :: _ -> (
        match Hashtbl.find_opt owner first with
        | None -> None
        | Some (ms0, _) ->
          let ok =
            List.for_all
              (fun nm ->
                match Hashtbl.find_opt owner nm with
                | Some (ms, interior) -> ms == ms0 && interior
                | None -> false)
              names
          in
          if ok then Some ms0 else None)
    end
  in
  match targeted with
  | Some ms when Option.is_some ms.ms_state -> (
    let engine = Option.get ms.ms_state in
    match Incr.recompress ?budget engine deltas with
    | Error e -> Bonsai_error.error e
    | Ok rep ->
      (* Names are preserved in the subnet, so the same deltas apply
         globally and locally. *)
      ms.ms_subnet <- Incr.network engine;
      st.st_net <- Delta.apply st.st_net deltas;
      Some rep)
  | _ ->
    rebuild_in_place ?budget st (Delta.apply st.st_net deltas);
    None

(* ------------------------------------------------------------------ *)
(* Composition: per-module partitions -> whole-network abstractions *)

let compose ?(budget = Budget.infinite) st =
  Bonsai_error.protect @@ fun () ->
  let net = st.st_net in
  let g = net.Device.graph in
  let n = Graph.n_nodes g in
  let universe, bdd_time_s =
    Timing.time (fun () -> Policy_bdd.universe_of_network net)
  in
  let ecs = Ecs.compute net in
  let singles = List.filter single_ec ecs in
  let anycast = List.length ecs - List.length singles in
  let prefs_trivial = Incr.no_lp_no_redistribute net in
  (* Per-module group labels for a class, looked up by prefix. *)
  let module_groups ms (ec : Ecs.ec) =
    match ms.ms_state with
    | None -> None
    | Some engine ->
      let s = Incr.summary engine in
      List.find_opt
        (fun (r : Bonsai_api.ec_result) ->
          Prefix.compare r.Bonsai_api.ec.Ecs.ec_prefix ec.Ecs.ec_prefix = 0)
        s.Bonsai_api.results
      |> Option.map (fun (r : Bonsai_api.ec_result) ->
             r.Bonsai_api.abstraction.Abstraction.group_of)
  in
  let seeded_result (ec : Ecs.ec) =
    let t0 = Timing.now () in
    let dest = Ecs.single_origin ec in
    (* Seed: union of per-module partitions, class ids disjoint across
       modules; a degraded module contributes singletons (the identity
       partition), which only refines the union — still exact after the
       merge pass (DESIGN.md §16). *)
    let cls = Array.make n 0 in
    let offset = ref 0 in
    List.iter
      (fun ms ->
        let m = Array.length ms.ms_members in
        (match module_groups ms ec with
        | Some group_of ->
          let dense = Hashtbl.create 16 in
          let k = ref 0 in
          Array.iteri
            (fun i v ->
              let gl = group_of.(i) in
              let id =
                match Hashtbl.find_opt dense gl with
                | Some id -> id
                | None ->
                  let id = !k in
                  incr k;
                  Hashtbl.replace dense gl id;
                  id
              in
              cls.(v) <- !offset + id)
            ms.ms_members;
          offset := !offset + !k
        | None ->
          Array.iteri (fun i v -> cls.(v) <- !offset + i) ms.ms_members;
          offset := !offset + m))
      st.st_modules;
    let seed = Union_split_find.of_class_array cls in
    Bdd.set_budget universe.Policy_bdd.man budget;
    Fun.protect ~finally:(fun () ->
        Bdd.set_budget universe.Policy_bdd.man Budget.infinite)
    @@ fun () ->
    let _, signature =
      Compile.edge_signatures ~universe net ~dest:ec.Ecs.ec_prefix
    in
    let prefs _ = [ Bgp.default_lp ] in
    let live_self u v = (signature u v).Compile.sig_static in
    let part, refine_stats =
      Refine.find_partition net ~dest ~live_self ~seed ~budget ~signature
        ~prefs
    in
    Incr.quotient_merge part net ~dest ~signature ~pinned:[] ~budget;
    let abstraction =
      Abstraction.make net ~dest ~dest_prefix:ec.Ecs.ec_prefix ~universe
        ~partition:part
        ~copies:(fun _ -> 1)
    in
    {
      Bonsai_api.ec;
      abstraction;
      refine_stats;
      time_s = Timing.now () -. t0;
      degraded = false;
    }
  in
  let results =
    List.map
      (fun ec ->
        if
          prefs_trivial
          && Incr.ec_seedable ~prefs_trivial:true net ec
        then seeded_result ec
        else
          match Bonsai_api.compress_ec ~universe ~budget net ec with
          | Ok r -> r
          | Error e -> Bonsai_error.error e)
      singles
  in
  {
    Bonsai_api.net;
    bdd_time_s;
    results;
    skipped_anycast = anycast;
    degradation = None;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_report ppf rp =
  let namew =
    List.fold_left
      (fun w mr -> max w (String.length mr.mr_name))
      (String.length "module") rp.rp_modules
  in
  Format.fprintf ppf "%-*s  %7s  %5s  %9s  %9s  %s@." namew "module"
    "routers" "ecs" "concrete" "abstract" "health";
  List.iter
    (fun mr ->
      Format.fprintf ppf "%-*s  %7d  %5d  %9d  %9d  %s%s@." namew mr.mr_name
        mr.mr_routers mr.mr_ecs mr.mr_concrete mr.mr_abstract
        (health_name mr.mr_health)
        (match mr.mr_detail with
        | Some d -> Printf.sprintf " (%s)" d
        | None -> ""))
    rp.rp_modules;
  let faulted =
    List.length
      (List.filter
         (fun mr ->
           match mr.mr_health with
           | Degraded | Refuted -> true
           | Healthy | Retried -> false)
         rp.rp_modules)
  in
  Format.fprintf ppf "total: %d module(s), %d router(s), %d faulted@."
    (List.length rp.rp_modules)
    rp.rp_routers faulted;
  if rp.rp_skipped_anycast > 0 then
    Format.fprintf ppf "skipped %d anycast class(es)@." rp.rp_skipped_anycast

let report_json_fields rp =
  let module_json mr =
    Json.Obj
      ([
         ("module", Json.String mr.mr_name);
         ("routers", Json.Int mr.mr_routers);
         ("ecs", Json.Int mr.mr_ecs);
         ("concrete", Json.Int mr.mr_concrete);
         ("abstract", Json.Int mr.mr_abstract);
         ("health", Json.String (health_name mr.mr_health));
         ("time_s", Json.Float mr.mr_time_s);
       ]
      @
      match mr.mr_detail with
      | Some d -> [ ("detail", Json.String d) ]
      | None -> [])
  in
  [
    ("modules", Json.List (List.map module_json rp.rp_modules));
    ("routers", Json.Int rp.rp_routers);
    ("skipped_anycast", Json.Int rp.rp_skipped_anycast);
    ("time_s", Json.Float rp.rp_time_s);
    ( "faulted",
      Json.Bool (any_fault rp) );
  ]

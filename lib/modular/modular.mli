(** Modular compression with per-module fault isolation.

    The paper's compression is monolithic: one refinement over the whole
    network, so one diverging destination class or exhausted budget
    degrades the entire run. Following LIGHTYEAR's posture — split the
    network into modules verified against interface summaries — this
    engine partitions the network (operator [module NAME] annotations,
    falling back to a BFS-region heuristic), summarizes each module's
    boundary as stub [env] routers carrying the interface routes its
    boundary sessions would deliver, and compresses every module
    independently under its own {!Budget.split} slice and fresh BDD
    manager (sharing the {e global} attribute-universe layout, so policy
    equality means the same thing in every module).

    The robustness contract: a module that diverges, exhausts its slice,
    or is refuted by the certificate checker is {e isolated} — retried
    once with an escalated slice, then degraded to the identity
    abstraction {e for that module only} — while healthy modules keep
    their exact compression. The final report carries a per-module
    health table (ok / retried / degraded / refuted) in deterministic
    (name) order.

    Soundness of the composition is argued in DESIGN.md §16: a module's
    refinement partition depends only on the destination class, the edge
    signatures incident to the module, and its members' preference
    levels — all preserved verbatim by the subnet construction (boundary
    neighbors are replicated as pinned singleton stubs) — so the union
    of per-module partitions is a {e stable} refinement of the global
    partition, and the incremental engine's quotient-merge pass
    ({!Incr.quotient_merge}) coarsens it back to exactly the
    from-scratch result under the seeded-path guards. Degraded modules
    contribute the identity (discrete) partition, which only refines the
    union further — degradation composes. *)

type mode = Annot | Auto

val mode_of_string : string -> mode option
val mode_to_string : mode -> string

val partition :
  ?count:int ->
  mode:mode ->
  Device.network ->
  ((string * int list) list, string) result
(** Module name -> member node ids (ascending), sorted by module name.
    [Annot] reads [module NAME] annotations and fails if any router
    lacks one. [Auto] grows BFS regions of roughly equal size; [count]
    (default: [max 2 (n / 100)], capped at 64) asks for that many
    regions. *)

type health = Healthy | Retried | Degraded | Refuted

val health_name : health -> string
(** ["ok"], ["retried"], ["degraded"], ["refuted"]. *)

type module_report = {
  mr_name : string;
  mr_routers : int;  (** member routers (boundary stubs excluded) *)
  mr_ecs : int;  (** destination classes compressed *)
  mr_concrete : int;  (** sum over classes of member nodes *)
  mr_abstract : int;
      (** sum over classes of member-visible abstract groups; equals
          [mr_concrete] for a degraded module (identity abstraction) *)
  mr_health : health;
  mr_detail : string option;  (** budget info / refutation detail *)
  mr_time_s : float;
}

type report = {
  rp_modules : module_report list;  (** sorted by module name *)
  rp_routers : int;  (** total member routers across modules *)
  rp_skipped_anycast : int;
  rp_time_s : float;
}

val any_fault : report -> bool
(** Some module is degraded or refuted (the CLI's degrade-gate input). *)

type state
(** A composed run kept warm: the global network, the partition, and one
    incremental engine state ({!Incr.state}) per healthy module — each
    with its own signature cache, so a delta recompresses only its
    module. *)

val run :
  ?mode:mode ->
  ?count:int ->
  ?budget:Budget.t ->
  ?certify:bool ->
  ?inject_fault:string list ->
  ?retry_pause:(string -> unit) ->
  Device.network ->
  (state, Bonsai_error.t) result
(** Partition, summarize boundaries, compress every module under its own
    budget slice. [certify] self-audits each module's results with
    {!Certify.check_result} (fresh universe) and treats a refutation as
    a module fault. [inject_fault] forces the named modules to run under
    a 1-tick budget (both attempts) — the deterministic fault used by
    tests and the fault-isolation golden. [retry_pause m] is called
    before module [m]'s escalated retry (the CLI wires {!Backoff}
    pacing in; defaults to no pause). Only a partition failure or an
    invalid input network fails the whole run — module faults degrade
    that module only. *)

val run_stream :
  ?budget:Budget.t ->
  ?certify:bool ->
  ?inject_fault:string list ->
  ?retry_pause:(string -> unit) ->
  count:int ->
  (string * Device.network) Seq.t ->
  (report, Bonsai_error.t) result
(** The 10k-router path: each element is an already-summarized,
    self-contained module subnet (e.g. {!Synthesis.multiwan_stream});
    modules are compressed one at a time and only the report is
    retained, so the whole network is never materialized. [count] is the
    expected module count (it paces the budget slices). *)

val report : state -> report
val network : state -> Device.network

val module_names : state -> string list
(** Sorted; the health-table order. *)

val module_summary : state -> string -> Bonsai_api.summary option
(** The named module's warm per-class results over its subnet (boundary
    stubs included), shaped like a [Bonsai_api.compress] summary; [None]
    if the module is unknown or cold (degraded/quarantined). The resident
    engine reads — and its test-corrupt hook mutates — warm module state
    through this. *)

val quarantine : state -> string -> bool
(** Drop the named module's warm engine state (its next use degrades to
    identity until {!rebuild_module}); [false] if unknown or already
    cold. The resident engine's module-level quarantine on self-audit
    refutation. *)

val rebuild_module :
  ?budget:Budget.t -> state -> string -> (unit, Bonsai_error.t) result
(** Recompress just the named module cold (fresh subnet state), leaving
    every other module's warm state untouched; updates the health table
    entry. *)

val self_audit : ?budget:Budget.t -> state -> (string * string) list
(** Re-check every warm module's results with the independent
    certificate checker (fresh universe per module). Returns refuted
    [(module, detail)] pairs {e after} quarantining each — the caller
    records incidents and may {!rebuild_module}. *)

val update :
  ?budget:Budget.t -> state -> Delta.t list -> (Incr.report option, Bonsai_error.t) result
(** Apply configuration deltas. When every touched router is an
    {e interior} member of one healthy module (no boundary router, no
    node add/remove), only that module recompresses — through its own
    signature cache — and [Some report] carries the incremental stats.
    Anything wider falls back to a full re-run ([None]). *)

val compose :
  ?budget:Budget.t -> state -> (Bonsai_api.summary, Bonsai_error.t) result
(** Compose the per-module partitions into whole-network abstractions,
    one per destination class, shaped like a [Bonsai_api.compress]
    summary. Under the seeded-path guards ({!Incr.no_lp_no_redistribute}
    + {!Incr.ec_seedable}) this seeds a global refinement with the union
    of module partitions and recovers the {e exact} from-scratch
    partition via {!Incr.quotient_merge}; otherwise it falls back to
    from-scratch compression of the class (sound, just not reusing
    module work). Degraded modules enter as identity partitions. *)

val pp_report : Format.formatter -> report -> unit
(** The health table, deterministic byte-for-byte (no wall-clock). *)

val report_json_fields : report -> (string * Json.t) list
(** JSON response fields for the CLI and the resident engine; includes
    per-module times (callers needing byte-stable output normalize or
    drop them). *)

(* Certificates and their independent checker. See certify.mli for the
   trust story; the implementation deliberately avoids the engine's
   refinement loop, its long-lived BDD manager and the incremental
   signature cache: signatures are recomputed in a fresh universe, route
   maps are additionally executed directly ([Compile.bgp_policy] is pure
   [Route_map.eval] composition), and the claimed labeling is judged by
   [Solution.is_stable], never by re-running the solver it came from. *)

type audit = Full | Sample

let audit_of_string = function
  | "full" -> Some Full
  | "sample" -> Some Sample
  | _ -> None

let audit_to_string = function Full -> "full" | Sample -> "sample"

type cert = {
  c_prefix : string;
  c_dest : string;
  c_groups : string list list;
  c_reprs : string list;
  c_prefs : int list list;
  c_copies : int list;
  c_abs_edges : (int * int) list;
  c_edge_reprs : ((int * int) * (string * string)) list;
  c_labels : Json.t option;
  c_degraded : bool;
}

type t = { network : string; certs : cert list }

type failure = { f_prefix : string; f_condition : string; f_detail : string }

type verdict =
  | Certified of { ecs : int; obligations : int }
  | Refuted of failure list
  | Audit_incomplete of Budget.info

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

(* Least concrete edge per ordered group pair — the same representative
   [Abstraction.repr_edge] would pick, computed in one pass instead of
   per-lookup (the degraded identity abstraction has one abstract edge
   per concrete edge). *)
let min_edge_table graph group_of =
  let reprs = Hashtbl.create 256 in
  Graph.iter_edges graph (fun u v ->
      let key = (group_of.(u), group_of.(v)) in
      match Hashtbl.find_opt reprs key with
      | Some (u', v') ->
        if u < u' || (u = u' && v < v') then Hashtbl.replace reprs key (u, v)
      | None -> Hashtbl.replace reprs key (u, v));
  reprs

let attr_json (a : Bgp.attr) =
  Json.Obj
    [
      ("lp", Json.Int a.Bgp.lp);
      ("med", Json.Int a.Bgp.med);
      ("comms", Json.List (List.map (fun c -> Json.Int c) a.Bgp.comms));
      ("path", Json.List (List.map (fun p -> Json.Int p) a.Bgp.path));
    ]

let attr_of_json j =
  match j with
  | Json.Null -> Ok None
  | Json.Obj _ ->
    let int_field k =
      match Option.map Json.to_int_opt (Json.member k j) with
      | Some (Some i) -> Ok i
      | _ -> Error (Printf.sprintf "label: missing int field %S" k)
    in
    let int_list_field k =
      match Json.member k j with
      | Some (Json.List xs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | x :: tl -> (
            match Json.to_int_opt x with
            | Some i -> go (i :: acc) tl
            | None -> Error (Printf.sprintf "label: non-int in %S" k))
        in
        go [] xs
      | _ -> Error (Printf.sprintf "label: missing list field %S" k)
    in
    Result.bind (int_field "lp") (fun lp ->
        Result.bind (int_field "med") (fun med ->
            Result.bind (int_list_field "comms") (fun comms ->
                Result.bind (int_list_field "path") (fun path ->
                    Ok (Some { Bgp.lp; med; comms; path })))))
  | _ -> Error "label: expected object or null"

let of_ec_result (net : Device.network) (r : Bonsai_api.ec_result) =
  let t = r.Bonsai_api.abstraction in
  let g = net.Device.graph in
  let name u = Graph.name g u in
  let ec = r.Bonsai_api.ec in
  let prefs_of u = Bonsai_api.effective_prefs net ec u in
  let groups = Array.to_list (Array.map (List.map name) t.Abstraction.groups) in
  let reprs =
    Array.to_list
      (Array.map (fun ms -> name (List.hd ms)) t.Abstraction.groups)
  in
  let prefs =
    Array.to_list
      (Array.map
         (fun ms -> Refine.group_prefs ~prefs:prefs_of ms)
         t.Abstraction.groups)
  in
  let abs_edges = ref [] in
  Graph.iter_edges t.Abstraction.abs_graph (fun a b ->
      abs_edges := (a, b) :: !abs_edges);
  let abs_edges = List.rev !abs_edges in
  let ereprs = min_edge_table g t.Abstraction.group_of in
  let edge_reprs =
    List.map
      (fun (a, b) ->
        let key =
          ( t.Abstraction.group_of_abs.(a),
            t.Abstraction.group_of_abs.(b) )
        in
        match Hashtbl.find_opt ereprs key with
        | Some (u, v) -> ((a, b), (name u, name v))
        | None ->
          (* unreachable for a well-formed abstraction; refuted cleanly
             by the checker's completeness pass *)
          ((a, b), ("?", "?")))
      abs_edges
  in
  let labels =
    (* no labeling claim when the abstract SRP does not stabilize — and a
       corrupted abstraction may not even be solvable (its representative
       edges can dangle); the structural checks still refute it *)
    match Solver.solve (Abstraction.bgp_srp t) with
    | Ok (sol, _) ->
      Some
        (Json.List
           (Array.to_list
              (Array.map
                 (function None -> Json.Null | Some a -> attr_json a)
                 sol.Solution.labels)))
    | Error _ -> None
    | exception (Budget.Exhausted _ as e) -> raise e
    | exception _ -> None
  in
  {
    c_prefix = Prefix.to_string ec.Ecs.ec_prefix;
    c_dest = name t.Abstraction.dest;
    c_groups = groups;
    c_reprs = reprs;
    c_prefs = prefs;
    c_copies = Array.to_list t.Abstraction.copies;
    c_abs_edges = abs_edges;
    c_edge_reprs = edge_reprs;
    c_labels = labels;
    c_degraded = r.Bonsai_api.degraded;
  }

let of_summary ~network (net : Device.network) (s : Bonsai_api.summary) =
  { network; certs = List.map (of_ec_result net) s.Bonsai_api.results }

(* ------------------------------------------------------------------ *)
(* JSON round trip                                                     *)

let format_tag = "bonsai-certificate"
let format_version = 1

let cert_json c =
  let strings xs = Json.List (List.map (fun s -> Json.String s) xs) in
  let ints xs = Json.List (List.map (fun i -> Json.Int i) xs) in
  let base =
    [
      ("prefix", Json.String c.c_prefix);
      ("dest", Json.String c.c_dest);
      ("degraded", Json.Bool c.c_degraded);
      ("groups", Json.List (List.map strings c.c_groups));
      ("reprs", strings c.c_reprs);
      ("prefs", Json.List (List.map ints c.c_prefs));
      ("copies", ints c.c_copies);
      ( "abs_edges",
        Json.List
          (List.map (fun (a, b) -> ints [ a; b ]) c.c_abs_edges) );
      ( "edge_reprs",
        Json.List
          (List.map
             (fun ((a, b), (u, v)) ->
               Json.List
                 [ Json.Int a; Json.Int b; Json.String u; Json.String v ])
             c.c_edge_reprs) );
    ]
  in
  let labels =
    match c.c_labels with None -> [] | Some l -> [ ("labels", l) ]
  in
  Json.Obj (base @ labels)

let to_json t =
  Json.Obj
    [
      ("format", Json.String format_tag);
      ("version", Json.Int format_version);
      ("network", Json.String t.network);
      ("classes", Json.List (List.map cert_json t.certs));
    ]

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "certificate: missing field %S" name)

let as_string name j =
  match Json.to_string_opt j with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "certificate: field %S: expected string" name)

let as_list name j =
  match j with
  | Json.List xs -> Ok xs
  | _ -> Error (Printf.sprintf "certificate: field %S: expected list" name)

let map_result f xs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: tl -> ( match f x with Ok y -> go (y :: acc) tl | Error e -> Error e)
  in
  go [] xs

let as_int name j =
  match Json.to_int_opt j with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "certificate: field %S: expected int" name)

let cert_of_json j =
  let* prefix = Result.bind (field "prefix" j) (as_string "prefix") in
  let* dest = Result.bind (field "dest" j) (as_string "dest") in
  let degraded =
    match Option.map Json.to_bool_opt (Json.member "degraded" j) with
    | Some (Some b) -> b
    | _ -> false
  in
  let* groups_j = Result.bind (field "groups" j) (as_list "groups") in
  let* groups =
    map_result
      (fun gj ->
        Result.bind (as_list "groups" gj) (map_result (as_string "groups")))
      groups_j
  in
  let* reprs =
    Result.bind
      (Result.bind (field "reprs" j) (as_list "reprs"))
      (map_result (as_string "reprs"))
  in
  let* prefs =
    Result.bind
      (Result.bind (field "prefs" j) (as_list "prefs"))
      (map_result (fun pj ->
           Result.bind (as_list "prefs" pj) (map_result (as_int "prefs"))))
  in
  let* copies =
    Result.bind
      (Result.bind (field "copies" j) (as_list "copies"))
      (map_result (as_int "copies"))
  in
  let* abs_edges =
    Result.bind
      (Result.bind (field "abs_edges" j) (as_list "abs_edges"))
      (map_result (fun ej ->
           match ej with
           | Json.List [ a; b ] ->
             let* a = as_int "abs_edges" a in
             let* b = as_int "abs_edges" b in
             Ok (a, b)
           | _ -> Error "certificate: abs_edges: expected [a, b]"))
  in
  let* edge_reprs =
    Result.bind
      (Result.bind (field "edge_reprs" j) (as_list "edge_reprs"))
      (map_result (fun ej ->
           match ej with
           | Json.List [ a; b; u; v ] ->
             let* a = as_int "edge_reprs" a in
             let* b = as_int "edge_reprs" b in
             let* u = as_string "edge_reprs" u in
             let* v = as_string "edge_reprs" v in
             Ok ((a, b), (u, v))
           | _ -> Error "certificate: edge_reprs: expected [a, b, u, v]"))
  in
  let labels =
    match Json.member "labels" j with
    | Some (Json.List _ as l) -> Some l
    | _ -> None
  in
  Ok
    {
      c_prefix = prefix;
      c_dest = dest;
      c_groups = groups;
      c_reprs = reprs;
      c_prefs = prefs;
      c_copies = copies;
      c_abs_edges = abs_edges;
      c_edge_reprs = edge_reprs;
      c_labels = labels;
      c_degraded = degraded;
    }

let of_json j =
  let* fmt = Result.bind (field "format" j) (as_string "format") in
  if not (String.equal fmt format_tag) then
    Error (Printf.sprintf "certificate: unknown format %S" fmt)
  else
    let* version = Result.bind (field "version" j) (as_int "version") in
    if version <> format_version then
      Error (Printf.sprintf "certificate: unsupported version %d" version)
    else
      let* network = Result.bind (field "network" j) (as_string "network") in
      let* classes = Result.bind (field "classes" j) (as_list "classes") in
      let* certs = map_result cert_of_json classes in
      Ok { network; certs }

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)

exception Refutation_overflow

let max_failures = 64

let sig_equal (a : Compile.edge_signature) (b : Compile.edge_signature) =
  a.Compile.sig_import = b.Compile.sig_import
  && a.Compile.sig_export = b.Compile.sig_export
  && Bool.equal a.Compile.sig_ibgp b.Compile.sig_ibgp
  && Bool.equal a.Compile.sig_acl b.Compile.sig_acl
  && (match (a.Compile.sig_ospf, b.Compile.sig_ospf) with
     | None, None -> true
     | Some (c, r, s), Some (c', r', s') -> c = c' && r = r' && s = s'
     | _ -> false)
  && Bool.equal a.Compile.sig_static b.Compile.sig_static

let int_list_equal = List.equal Int.equal

(* Deterministic spot-check subset: ends plus the middle. *)
let sample_list audit xs =
  match audit with
  | Full -> xs
  | Sample -> (
    match xs with
    | [] | [ _ ] | [ _; _ ] | [ _; _; _ ] -> xs
    | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      [ arr.(0); arr.(n / 2); arr.(n - 1) ])

(* BDD-free probe attributes: the route maps are executed directly on a
   small attribute matrix covering every community the network can match
   plus off-universe preference values. *)
let probe_attrs (u : Policy_bdd.universe) =
  let comms = Array.to_list u.Policy_bdd.comms in
  let comms = List.filteri (fun i _ -> i < 4) comms in
  let comm_sets = [] :: List.map (fun c -> [ c ]) comms in
  List.concat_map
    (fun lp ->
      List.map
        (fun cs -> { Bgp.lp; med = 0; comms = cs; path = [] })
        comm_sets)
    [ Bgp.default_lp; 50; 200 ]

(* Outputs are compared modulo the attribute abstraction h: communities
   no policy matches are erased by the universe (§8), so two route maps
   that differ only in unmatched added communities are equivalent — the
   raw interpreter output is stricter than the abstraction it audits. *)
let project_comms (u : Policy_bdd.universe) (a : Bgp.attr) =
  {
    a with
    Bgp.comms =
      List.filter
        (fun c -> Array.exists (Int.equal c) u.Policy_bdd.comms)
        a.Bgp.comms;
  }

let opt_attr_equal u a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Bgp.equal (project_comms u a) (project_comms u b)
  | _ -> false

(* One destination class. [add] records a failure; raises
   [Refutation_overflow] past [max_failures] so a garbage certificate
   cannot make the audit quadratic in its own noise. *)
let check_cert ~budget ~audit ~universe ~obligations (net : Device.network)
    (c : cert) add =
  let g = net.Device.graph in
  let n = Graph.n_nodes g in
  let name u = Graph.name g u in
  let fail cond detail = add c.c_prefix cond detail in
  let tick () = Budget.tick budget ~phase:"certify" in
  let obligation () = incr obligations in
  (* -- resolve the class ------------------------------------------- *)
  match
    List.find_opt
      (fun (ec : Ecs.ec) ->
        String.equal (Prefix.to_string ec.Ecs.ec_prefix) c.c_prefix)
      (Ecs.compute net)
  with
  | None -> fail "class" "prefix is not an announced destination class"
  | Some ec when List.length ec.Ecs.ec_origins <> 1 ->
    fail "class" "anycast class cannot be certified"
  | Some ec -> (
    let dest = Ecs.single_origin ec in
    if not (String.equal (name dest) c.c_dest) then
      fail "class"
        (Printf.sprintf "destination is %s, certificate claims %s" (name dest)
           c.c_dest);
    (* -- partition well-formedness --------------------------------- *)
    let n_groups = List.length c.c_groups in
    let group_of = Array.make n (-1) in
    let groups = Array.make (max n_groups 1) [] in
    let ok = ref (n_groups > 0) in
    List.iteri
      (fun gid members ->
        let ids =
          List.filter_map
            (fun nm ->
              match Graph.find_by_name g nm with
              | Some u -> Some u
              | None ->
                ok := false;
                fail "partition" (Printf.sprintf "unknown router %S" nm);
                None)
            members
        in
        let ids = List.sort_uniq compare ids in
        if List.length ids <> List.length members then begin
          ok := false;
          fail "partition"
            (Printf.sprintf "group %d has duplicate or unknown members" gid)
        end;
        List.iter
          (fun u ->
            if group_of.(u) >= 0 then begin
              ok := false;
              fail "partition"
                (Printf.sprintf "router %s appears in two groups" (name u))
            end
            else group_of.(u) <- gid)
          ids;
        if gid < Array.length groups then groups.(gid) <- ids)
      c.c_groups;
    for u = 0 to n - 1 do
      if group_of.(u) < 0 then begin
        ok := false;
        fail "partition"
          (Printf.sprintf "router %s is not covered by any group" (name u))
      end
    done;
    if
      List.length c.c_reprs <> n_groups
      || List.length c.c_prefs <> n_groups
      || List.length c.c_copies <> n_groups
    then begin
      ok := false;
      fail "partition" "reprs/prefs/copies arity differs from groups"
    end;
    if not !ok then () (* structure is broken; nothing below is meaningful *)
    else begin
      let reprs = Array.of_list c.c_reprs in
      let prefs_claim = Array.of_list c.c_prefs in
      let copies_claim = Array.of_list c.c_copies in
      (* canonical group order: the engine numbers groups by first
         occurrence over node ids, and the labeling below relies on it *)
      let seen = Array.make n_groups false in
      let next = ref 0 in
      for u = 0 to n - 1 do
        let gid = group_of.(u) in
        if not seen.(gid) then begin
          seen.(gid) <- true;
          if gid <> !next then
            fail "partition" "groups are not in canonical (first-member) order";
          incr next
        end
      done;
      (* dest-equivalence *)
      (match groups.(group_of.(dest)) with
      | [ d ] when d = dest -> ()
      | ms ->
        fail "dest-equivalence"
          (Printf.sprintf "destination group has %d members" (List.length ms)));
      (* representatives: least member *)
      Array.iteri
        (fun gid members ->
          let least = name (List.hd members) in
          if not (String.equal reprs.(gid) least) then
            fail "representative"
              (Printf.sprintf "group %d: claimed %s, least member is %s" gid
                 reprs.(gid) least))
        groups;
      (* rank agreement: every (sampled) member realizes the claimed
         preference levels *)
      Array.iteri
        (fun gid members ->
          List.iter
            (fun u ->
              tick ();
              obligation ();
              let p = Bonsai_api.effective_prefs net ec u in
              if not (int_list_equal p prefs_claim.(gid)) then
                fail "rank-agreement"
                  (Printf.sprintf
                     "group %d: %s has prefs {%s}, certificate claims {%s}"
                     gid (name u)
                     (String.concat "," (List.map string_of_int p))
                     (String.concat ","
                        (List.map string_of_int prefs_claim.(gid)))))
            (sample_list audit members))
        groups;
      (* copies: the clamp Abstraction.make applies to |prefs(û)| *)
      Array.iteri
        (fun gid members ->
          let expect =
            if List.mem dest members then 1
            else
              max 1
                (min (List.length prefs_claim.(gid)) (List.length members))
          in
          if copies_claim.(gid) <> expect then
            fail "copies"
              (Printf.sprintf "group %d: claimed %d copies, expected %d" gid
                 copies_claim.(gid) expect))
        groups;
      (* -- abstract layout and topology conditions ------------------ *)
      let abs_of_group = Array.make n_groups 0 in
      let total = ref 0 in
      Array.iteri
        (fun gid _ ->
          abs_of_group.(gid) <- !total;
          total := !total + max 1 copies_claim.(gid))
        groups;
      let n_abs = !total in
      let cert_edges = Hashtbl.create 256 in
      List.iter
        (fun (a, b) ->
          if a = b then
            fail "self-loop-free" (Printf.sprintf "abstract loop at %d" a)
          else if a < 0 || b < 0 || a >= n_abs || b >= n_abs then
            fail "abs-edges"
              (Printf.sprintf "abstract edge (%d,%d) out of range" a b)
          else Hashtbl.replace cert_edges (a, b) ())
        c.c_abs_edges;
      (* expected abstract edges from the concrete graph (∀∃1 plus
         completeness: the certificate may neither omit nor invent) *)
      let group_pairs = Hashtbl.create 256 in
      let min_edges = Hashtbl.create 256 in
      Graph.iter_edges g (fun u v ->
          let key = (group_of.(u), group_of.(v)) in
          Hashtbl.replace group_pairs key ();
          match Hashtbl.find_opt min_edges key with
          | Some (u', v') ->
            if u < u' || (u = u' && v < v') then
              Hashtbl.replace min_edges key (u, v)
          | None -> Hashtbl.replace min_edges key (u, v));
      let expected = Hashtbl.create 256 in
      Hashtbl.iter
        (fun (g1, g2) () ->
          for i = 0 to copies_claim.(g1) - 1 do
            for j = 0 to copies_claim.(g2) - 1 do
              let a1 = abs_of_group.(g1) + i and a2 = abs_of_group.(g2) + j in
              if a1 <> a2 then Hashtbl.replace expected (a1, a2) ()
            done
          done)
        group_pairs;
      Hashtbl.iter
        (fun (a1, a2) () ->
          if not (Hashtbl.mem cert_edges (a1, a2)) then
            fail "forall-exists-1"
              (Printf.sprintf
                 "concrete edges map to abstract (%d,%d) but the certificate \
                  omits it"
                 a1 a2))
        expected;
      Hashtbl.iter
        (fun (a1, a2) () ->
          if not (Hashtbl.mem expected (a1, a2)) then
            fail "phantom-edge"
              (Printf.sprintf
                 "certificate edge (%d,%d) has no concrete witness" a1 a2))
        cert_edges;
      (* ∀∃2 and transfer agreement per inter-group pair *)
      let _, signature = Compile.edge_signatures ~universe net ~dest:ec.Ecs.ec_prefix in
      let probes = probe_attrs universe in
      Hashtbl.iter
        (fun (g1, g2) () ->
          if g1 <> g2 then begin
            let members = groups.(g1) in
            (* ∀∃2: every member must keep an edge into g2 *)
            List.iter
              (fun u ->
                tick ();
                obligation ();
                let has =
                  Array.exists
                    (fun v -> v <> u && group_of.(v) = g2)
                    (Graph.succ g u)
                in
                if not has then
                  fail "forall-exists-2"
                    (Printf.sprintf
                       "%s (group %d) has no edge into group %d" (name u) g1
                       g2))
              (sample_list audit members);
            (* transfer agreement: recomputed signatures in the fresh
               universe, anchored at the least edge of the pair *)
            let edges = ref [] in
            List.iter
              (fun u ->
                Array.iter
                  (fun v ->
                    if v <> u && group_of.(v) = g2 then
                      edges := (u, v) :: !edges)
                  (Graph.succ g u))
              members;
            let edges = List.sort compare !edges in
            match edges with
            | [] -> () (* already reported by ∀∃2 *)
            | (u0, v0) :: rest ->
              let s0 = signature u0 v0 in
              tick ();
              List.iter
                (fun (u, v) ->
                  tick ();
                  obligation ();
                  if not (sig_equal s0 (signature u v)) then
                    fail "transfer-equivalence"
                      (Printf.sprintf
                         "edges (%s,%s) and (%s,%s) map to one abstract \
                          edge but differ in signature"
                         (name u0) (name v0) (name u) (name v)))
                (sample_list audit rest);
              (* BDD-free spot check: execute the route maps directly *)
              let pol0 = Compile.bgp_policy net ~dest:ec.Ecs.ec_prefix u0 v0 in
              List.iter
                (fun (u, v) ->
                  let pol = Compile.bgp_policy net ~dest:ec.Ecs.ec_prefix u v in
                  List.iter
                    (fun a ->
                      tick ();
                      obligation ();
                      if not (opt_attr_equal universe (pol0 a) (pol a)) then
                        fail "transfer-equivalence"
                          (Printf.sprintf
                             "route maps of (%s,%s) and (%s,%s) disagree on \
                              a probe announcement (lp %d)"
                             (name u0) (name v0) (name u) (name v) a.Bgp.lp))
                    probes)
                (sample_list Sample rest)
          end)
        group_pairs;
      (* claimed edge representatives must be the least concrete edge *)
      List.iter
        (fun ((a1, a2), (un, vn)) ->
          tick ();
          if a1 >= 0 && a1 < n_abs && a2 >= 0 && a2 < n_abs then begin
            let gid_of_abs a =
              (* invert the block layout *)
              let r = ref 0 in
              Array.iteri
                (fun gid start ->
                  if start <= a && a < start + max 1 copies_claim.(gid) then
                    r := gid)
                abs_of_group;
              !r
            in
            let g1 = gid_of_abs a1 and g2 = gid_of_abs a2 in
            match
              (Graph.find_by_name g un, Graph.find_by_name g vn,
               Hashtbl.find_opt min_edges (g1, g2))
            with
            | Some u, Some v, Some e0 when e0 = (u, v) -> ()
            | _, _, None ->
              fail "edge-repr"
                (Printf.sprintf
                   "abstract edge (%d,%d) claims representative (%s,%s) but \
                    no concrete edge maps onto it"
                   a1 a2 un vn)
            | _ ->
              fail "edge-repr"
                (Printf.sprintf
                   "abstract edge (%d,%d): (%s,%s) is not the least \
                    concrete edge of the class"
                   a1 a2 un vn)
          end)
        (sample_list audit c.c_edge_reprs);
      (* ∀∀ identical neighborhoods for split groups *)
      Array.iteri
        (fun gid members ->
          if copies_claim.(gid) > 1 then begin
            let nbrs u =
              Array.to_list (Graph.succ g u) |> List.sort_uniq compare
            in
            match members with
            | [] -> ()
            | m0 :: rest ->
              let n0 = nbrs m0 in
              List.iter
                (fun u ->
                  tick ();
                  obligation ();
                  if not (int_list_equal (nbrs u) n0) then
                    fail "forall-forall"
                      (Printf.sprintf
                         "split group %d: %s and %s have different \
                          neighborhoods"
                         gid (name m0) (name u)))
                (sample_list audit rest)
          end)
        groups;
      (* -- labeling stability --------------------------------------- *)
      match c.c_labels with
      | None -> ()
      | Some (Json.List entries) ->
        if List.length entries <> n_abs then
          fail "labeling"
            (Printf.sprintf "labeling has %d entries, abstract graph has %d"
               (List.length entries) n_abs)
        else (
          match map_result attr_of_json entries with
          | Error e -> fail "labeling" e
          | Ok labels ->
            tick ();
            (* rebuild the quotient from the certificate alone (fresh
               universe — the engine's manager is not consulted) *)
            let partition = Union_split_find.of_class_array group_of in
            let copies m = List.length prefs_claim.(group_of.(m)) in
            let t =
              Abstraction.make net ~dest ~dest_prefix:ec.Ecs.ec_prefix
                ~universe ~partition ~copies
            in
            if Abstraction.n_abstract t <> n_abs then
              fail "labeling" "rebuilt abstract graph size differs"
            else begin
              let sol =
                {
                  Solution.srp = Abstraction.bgp_srp t;
                  labels = Array.of_list labels;
                }
              in
              obligation ();
              if not (Solution.is_stable sol) then
                let why =
                  match Solution.stability_violations sol with
                  | (node, why) :: _ ->
                    Printf.sprintf " (abstract node %d: %s)" node why
                  | [] -> ""
                in
                fail "labeling-stability"
                  ("claimed labeling is not a stable solution" ^ why)
            end)
      | Some _ -> fail "labeling" "labels: expected a list"
    end)

let check ?(budget = Budget.infinite) ?universe ~audit (net : Device.network)
    (t : t) =
  let failures = ref [] in
  let count = ref 0 in
  let add prefix cond detail =
    incr count;
    if !count > max_failures then raise Refutation_overflow;
    failures :=
      { f_prefix = prefix; f_condition = cond; f_detail = detail }
      :: !failures
  in
  let obligations = ref 0 in
  let finish () =
    match List.rev !failures with
    | [] ->
      Certified { ecs = List.length t.certs; obligations = !obligations }
    | fs -> Refuted fs
  in
  match
    let universe =
      match universe with
      | Some u -> u
      | None -> Policy_bdd.universe_of_network net
    in
    List.iter
      (fun c -> check_cert ~budget ~audit ~universe ~obligations net c add)
      t.certs
  with
  | () -> finish ()
  | exception Refutation_overflow -> finish ()
  | exception Budget.Exhausted info ->
    (* never report "certified" on a truncated audit — but a refutation
       found before the budget died still stands *)
    (match List.rev !failures with
    | [] -> Audit_incomplete info
    | fs -> Refuted fs)

let check_result ?budget ?universe ~audit net (r : Bonsai_api.ec_result) =
  match of_ec_result net r with
  | c -> check ?budget ?universe ~audit net { network = ""; certs = [ c ] }
  | exception (Budget.Exhausted _ as e) -> raise e
  | exception e ->
    (* a state too corrupted to even export a witness is refuted, not a
       crash — this is the resident engine's self-audit path *)
    Refuted
      [
        {
          f_prefix = Prefix.to_string r.Bonsai_api.ec.Ecs.ec_prefix;
          f_condition = "emission";
          f_detail = Printexc.to_string e;
        };
      ]

let obligation_count = function
  | Certified { obligations; _ } -> obligations
  | Refuted _ | Audit_incomplete _ -> 0

let failures_string fs =
  String.concat "; "
    (List.map
       (fun f ->
         Printf.sprintf "%s: %s: %s" f.f_prefix f.f_condition f.f_detail)
       fs)

let pp_verdict ppf = function
  | Certified { ecs; obligations } ->
    Format.fprintf ppf "certified (%d class%s, %d obligations checked)" ecs
      (if ecs = 1 then "" else "es")
      obligations
  | Refuted fs ->
    Format.fprintf ppf "REFUTED (%d failure%s):" (List.length fs)
      (if List.length fs = 1 then "" else "s");
    List.iter
      (fun f ->
        Format.fprintf ppf "@,  %s %s: %s" f.f_prefix f.f_condition f.f_detail)
      fs
  | Audit_incomplete info ->
    Format.fprintf ppf
      "audit incomplete: budget exhausted in %s after %d ticks"
      info.Budget.phase info.Budget.ticks

let verdict_json = function
  | Certified { ecs; obligations } ->
    [
      ("certified", Json.Bool true);
      ("certified_ecs", Json.Int ecs);
      ("obligations", Json.Int obligations);
    ]
  | Refuted fs ->
    [
      ("certified", Json.Bool false);
      ( "certificate_failures",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("prefix", Json.String f.f_prefix);
                   ("condition", Json.String f.f_condition);
                   ("detail", Json.String f.f_detail);
                 ])
             fs) );
    ]
  | Audit_incomplete info ->
    [
      ("certified", Json.Bool false);
      ("audit_incomplete", Json.Bool true);
      ("audit_phase", Json.String info.Budget.phase);
    ]

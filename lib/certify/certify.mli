(** Certificates and their independent checker (defense in depth).

    The compression engine's answer — "this partition is an effective
    abstraction of the concrete network" — is only as trustworthy as the
    BDD manager, the refinement loop and the signature cache that produced
    it. Following LIGHTYEAR's posture (check small witnesses with a simple
    checker instead of trusting a monolithic engine) and Tiramisu's
    one-pass verification (stability of a labeling is checkable without
    re-running the fixpoint), every compression result can be exported as
    a {e certificate}: the role partition, per-class representative and
    preference levels, the abstract edge set with representative concrete
    edges, and the solved abstract labeling.

    {!check} re-validates the paper's Figure-4 conditions directly against
    the concrete configuration: partition well-formedness, dest
    equivalence, abstract self-loop freedom, ∀∃1/∀∃2, transfer equivalence
    (in a {e fresh} BDD universe, plus a BDD-free spot check that executes
    the route-maps themselves), rank agreement, ∀∀ neighborhoods for split
    groups, and stability of the claimed labeling via
    {!Solution.is_stable}.

    Trusted base: the config parser and the executable config semantics
    ([Compile.bgp_policy] = [Route_map.eval] composition, [Acl.permits],
    [Bonsai_api.effective_prefs], the quotient constructor and the
    stability predicate). Explicitly {e not} trusted: the engine's BDD
    manager and its hash-consing, the refinement loop, the incremental
    signature cache, and checkpoint bytes (see DESIGN.md §15). *)

type audit = Full | Sample

val audit_of_string : string -> audit option
val audit_to_string : audit -> string

type cert = {
  c_prefix : string;  (** destination prefix, [Prefix.to_string] form *)
  c_dest : string;  (** destination router name *)
  c_groups : string list list;
      (** per group, in abstract block order: member names, ascending by
          concrete node id *)
  c_reprs : string list;  (** per group: the representative (least member) *)
  c_prefs : int list list;
      (** per group: claimed effective local-preference levels (the
          paper's [prefs(û)]), ascending *)
  c_copies : int list;  (** per group: abstract copies (split groups) *)
  c_abs_edges : (int * int) list;  (** abstract edges over abstract ids *)
  c_edge_reprs : ((int * int) * (string * string)) list;
      (** per abstract edge: the representative concrete edge (least
          concrete edge mapping onto it) — the transfer-agreement
          obligation anchor *)
  c_labels : Json.t option;
      (** solved abstract labeling: a list, one entry per abstract node,
          [Null] for ⊥; [None] when the abstract SRP did not stabilize at
          emission (no labeling claim) *)
  c_degraded : bool;  (** identity fallback after budget exhaustion *)
}

type t = { network : string; certs : cert list }

type failure = { f_prefix : string; f_condition : string; f_detail : string }

type verdict =
  | Certified of { ecs : int; obligations : int }
      (** every condition of every class held; [obligations] counts the
          individual agreement checks performed *)
  | Refuted of failure list  (** at least one condition failed *)
  | Audit_incomplete of Budget.info
      (** the audit budget ran out before a verdict — never reported as
          certified *)

val of_ec_result : Device.network -> Bonsai_api.ec_result -> cert
(** Export the witness of one destination class; solves the (small)
    abstract SRP for the labeling claim. *)

val of_summary : network:string -> Device.network -> Bonsai_api.summary -> t

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val check :
  ?budget:Budget.t ->
  ?universe:Policy_bdd.universe ->
  audit:audit ->
  Device.network ->
  t ->
  verdict
(** Independent validation against the concrete configs. [Sample] checks
    every condition but spot-checks the per-member/per-edge agreement
    obligations on a deterministic subset; [Full] checks every member and
    every concrete edge. Budget exhaustion yields {!Audit_incomplete}.

    [universe] (default: a fresh [Policy_bdd.universe_of_network]) lets a
    caller auditing many classes amortize the universe build; it must be
    a manager {e independent} of the engine under audit, never the one
    that produced the certificate. *)

val check_result :
  ?budget:Budget.t ->
  ?universe:Policy_bdd.universe ->
  audit:audit ->
  Device.network ->
  Bonsai_api.ec_result ->
  verdict
(** [check (of_ec_result ...)] in one step — the re-certification path
    used by the incremental engine's reuse ladder and the resident
    engine's self-audit. *)

val obligation_count : verdict -> int
(** 0 unless [Certified]. *)

val failures_string : failure list -> string
val pp_verdict : Format.formatter -> verdict -> unit

val verdict_json : verdict -> (string * Json.t) list
(** Response fields: [("certified", Bool ...)] plus either the obligation
    count, the failure list, or the budget phase. *)

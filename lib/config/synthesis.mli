(** Synthetic configured networks for the paper's evaluation (§8).

    The synthetic networks (fattree / ring / full mesh) follow the paper
    exactly: eBGP shortest-path routing with destination-based prefix
    filters. The two "operational" networks are synthetic stand-ins for the
    paper's proprietary datacenter and WAN (see DESIGN.md): the generators
    reproduce the published topology style, protocol mix, and role
    diversity, which are the quantities compression depends on. *)

val prefix_of_index : int -> Prefix.t
(** [prefix_of_index i] is the /24 [10.x.y.0/24] with [x = i / 256] and
    [y = i mod 256]; the prefix originated by the [i]-th origin. *)

val ebgp_shortest_path :
  ?originators:int list -> Graph.t -> Device.network
(** Every router speaks eBGP with every topology neighbor with a
    destination-prefix filter permitting the experiment's address space;
    routers in [originators] (default: all) originate one /24 each. *)

val fattree_shortest_path : Generators.fattree -> Device.network
(** The paper's fattree workload: shortest-path eBGP, only edge (ToR)
    routers originate prefixes. *)

val fattree_prefer_bottom : Generators.fattree -> Device.network
(** Figure 11's second policy: aggregation routers prefer routes learned
    from the edge tier (import local-preference 200), giving middle-tier
    routers two possible behaviors and a larger abstraction. *)

val ring_bgp : n:int -> Device.network
val mesh_bgp : n:int -> Device.network

type real_network = {
  net : Device.network;
  description : string;
}

val datacenter : unit -> real_network
(** 197 routers in Clos-like clusters plus a core layer, eBGP + static
    routes, ACLs, community tagging (many tags attached but never matched,
    reproducing the paper's 112-naive-roles vs 26-semantic-roles gap),
    ~1269 originated prefixes. *)

val wan : unit -> real_network
(** 1086 devices: backbone (eBGP + iBGP pairs) and 31 PoPs running OSPF
    with redistribution into BGP, static routes on some access routers,
    neighbor-specific prefix filters creating ≈137 roles, ~845 originated
    prefixes. *)

val random_network : n:int -> seed:int -> Device.network
(** Random connected topology with route-maps drawn from a small policy
    pool (community tagging upstream, preference bumps downstream) and a
    single originated prefix at node 0. Drives the property-based
    CP-equivalence tests. *)

val random_multi_network : n:int -> seed:int -> Device.network
(** Random connected topology running a protocol mix: a BGP "core" region
    and an OSPF "edge" region with redistribution at the border, plus
    occasional static routes — exercising the §6 multi-protocol model in
    the property-based tests. Node 0 originates one prefix. *)

val multiwan_external : Prefix.t
(** The aggregate prefix standing in for every destination outside a
    region: the core originates it in {!multiwan}, each region's [env]
    stub originates it in {!multiwan_stream}. *)

val multiwan_region_prefix : int -> Prefix.t
(** The /16 owned (and originated) by region [k]. *)

val multiwan : regions:int -> region_size:int -> real_network
(** Fully materialized multi-region WAN with [module] annotations:
    [regions] regions of [region_size] eBGP routers (two gateways + an
    access chain with neighbor-specific import filters, module
    ["region<k>"]) stitched by a core ring (module ["core"]) that
    originates the external aggregate. Raises [Invalid_argument] unless
    [1 <= regions <= 250] and [region_size >= 3]. *)

val multiwan_stream :
  regions:int -> region_size:int -> (string * Device.network) Seq.t
(** The streaming form of {!multiwan} for 10k-router scale: lazily
    yields [(module name, self-contained subnet)] per region, never
    materializing the whole network. The core is pre-summarized into an
    [env] stub router attached to both gateways that originates
    {!multiwan_external} — the interface route every boundary session
    of the region would carry for destinations outside it. *)

type universe = {
  man : Bdd.man;
  comms : int array;
  lps : int array;
  meds : int array;
  lp_bits : int;
  med_bits : int;
  width : int;
}

let index_of arr x =
  let rec go i =
    if i >= Array.length arr then None
    else if arr.(i) = x then Some i
    else go (i + 1)
  in
  go 0

type universe_params = {
  up_comms : int array;
  up_lps : int array;
  up_meds : int array;
}

let universe_of_params { up_comms; up_lps; up_meds } =
  let lp_bits = Bvec.bits_needed (max 1 (Array.length up_lps - 1)) in
  let med_bits = Bvec.bits_needed (max 1 (Array.length up_meds - 1)) in
  {
    man = Bdd.man ();
    comms = up_comms;
    lps = up_lps;
    meds = up_meds;
    lp_bits;
    med_bits;
    width = Array.length up_comms + lp_bits + med_bits + 1;
  }

let params_of_universe u = { up_comms = u.comms; up_lps = u.lps; up_meds = u.meds }

let universe_params ?(keep_unmatched_comms = false) (net : Device.network) =
  let matched = ref [] and set = ref [] and lps = ref [ Bgp.default_lp ] in
  let meds = ref [ 0 ] in
  let scan_rm rm =
    matched := Route_map.communities_matched rm @ !matched;
    set := Route_map.communities_set rm @ !set;
    List.iter
      (fun (cl : Route_map.clause) ->
        List.iter
          (function
            | Route_map.Set_local_pref lp -> lps := lp :: !lps
            | Route_map.Set_med m -> meds := m :: !meds
            | Route_map.Add_community _ | Route_map.Delete_community _ -> ())
          cl.actions)
      rm
  in
  Array.iter
    (fun (r : Device.router) ->
      List.iter
        (fun (_, (nb : Device.bgp_neighbor)) ->
          Option.iter scan_rm nb.import_rm;
          Option.iter scan_rm nb.export_rm)
        r.bgp_neighbors)
    net.routers;
  let comms =
    if keep_unmatched_comms then !matched @ !set else !matched
  in
  {
    up_comms = Array.of_list (List.sort_uniq Int.compare comms);
    up_lps = Array.of_list (List.sort_uniq Int.compare !lps);
    up_meds = Array.of_list (List.sort_uniq Int.compare !meds);
  }

let universe_of_network ?keep_unmatched_comms net =
  universe_of_params (universe_params ?keep_unmatched_comms net)

(* Variable layout: the input, output and scratch variables of one field
   are adjacent ([3*field + b] with b = 0 input, 1 output, 2 scratch).
   Interleaving keeps the input-output equality constraints of
   pass-through fields local, so relation BDDs stay linear in the number
   of fields; a block-major layout would make them exponential. *)
let field_var _u b field = (3 * field) + b
let comm_var u b i = field_var u b i
let lp_var u b j = field_var u b (Array.length u.comms + j)
let med_var u b j = field_var u b (Array.length u.comms + u.lp_bits + j)
let drop_var u b = field_var u b (u.width - 1)

let lp_vec u b =
  Array.init u.lp_bits (fun j -> Bdd.var u.man (lp_var u b j))

let med_vec u b =
  Array.init u.med_bits (fun j -> Bdd.var u.man (med_var u b j))

(* Output forced to the canonical "dropped" state: drop flag set, all
   other output bits cleared. Keeping the dropped state canonical is what
   makes the relation a function of its inputs, hence the BDD canonical. *)
let dropped_output u =
  let m = u.man in
  let acc = ref (Bdd.var m (drop_var u 1)) in
  Array.iteri (fun i _ -> acc := Bdd.and_ m !acc (Bdd.nvar m (comm_var u 1 i))) u.comms;
  for j = 0 to u.lp_bits - 1 do
    acc := Bdd.and_ m !acc (Bdd.nvar m (lp_var u 1 j))
  done;
  for j = 0 to u.med_bits - 1 do
    acc := Bdd.and_ m !acc (Bdd.nvar m (med_var u 1 j))
  done;
  !acc

(* Output equal to input on every field, not dropped. *)
let passthrough_output u =
  let m = u.man in
  let acc = ref (Bdd.nvar m (drop_var u 1)) in
  Array.iteri
    (fun i _ ->
      acc :=
        Bdd.and_ m !acc
          (Bdd.iff m (Bdd.var m (comm_var u 1 i)) (Bdd.var m (comm_var u 0 i))))
    u.comms;
  acc := Bdd.and_ m !acc (Bvec.eq m (lp_vec u 1) (lp_vec u 0));
  acc := Bdd.and_ m !acc (Bvec.eq m (med_vec u 1) (med_vec u 0));
  !acc

let guard_dropped_input u rel =
  Bdd.ite u.man (Bdd.var u.man (drop_var u 0)) (dropped_output u) rel

let identity u = guard_dropped_input u (passthrough_output u)
let drop_all u = dropped_output u

(* The output relation of one Permit clause. Actions apply in order, so a
   later action on the same field overrides an earlier one. *)
let clause_output u (actions : Route_map.action list) =
  let m = u.man in
  (* Per-community fate: None = passthrough, Some b = forced constant. *)
  let fate = Array.make (Array.length u.comms) None in
  let lp_set = ref None and med_set = ref None in
  List.iter
    (fun (a : Route_map.action) ->
      match a with
      | Route_map.Add_community c -> (
        match index_of u.comms c with
        | Some i -> fate.(i) <- Some true
        | None -> () (* community outside the universe: erased by h *))
      | Route_map.Delete_community c -> (
        match index_of u.comms c with
        | Some i -> fate.(i) <- Some false
        | None -> ())
      | Route_map.Set_local_pref lp -> lp_set := Some lp
      | Route_map.Set_med md -> med_set := Some md)
    actions;
  let acc = ref (Bdd.nvar m (drop_var u 1)) in
  Array.iteri
    (fun i f ->
      let out = Bdd.var m (comm_var u 1 i) in
      let c =
        match f with
        | None -> Bdd.iff m out (Bdd.var m (comm_var u 0 i))
        | Some true -> out
        | Some false -> Bdd.not_ m out
      in
      acc := Bdd.and_ m !acc c)
    fate;
  (match !lp_set with
  | None -> acc := Bdd.and_ m !acc (Bvec.eq m (lp_vec u 1) (lp_vec u 0))
  | Some lp -> (
    match index_of u.lps lp with
    | Some i -> acc := Bdd.and_ m !acc (Bvec.eq_const m (lp_vec u 1) i)
    | None -> invalid_arg "Policy_bdd: local-pref value outside the universe"));
  (match !med_set with
  | None -> acc := Bdd.and_ m !acc (Bvec.eq m (med_vec u 1) (med_vec u 0))
  | Some md -> (
    match index_of u.meds md with
    | Some i -> acc := Bdd.and_ m !acc (Bvec.eq_const m (med_vec u 1) i)
    | None -> invalid_arg "Policy_bdd: MED value outside the universe"));
  !acc

let cond_bdd u (c : Route_map.cond) =
  let m = u.man in
  match c with
  | Route_map.Match_community cs ->
    List.fold_left
      (fun acc c ->
        match index_of u.comms c with
        | Some i -> Bdd.or_ m acc (Bdd.var m (comm_var u 0 i))
        | None -> acc (* can never be attached: contributes false *))
      Bdd.bot cs
  | Route_map.Match_prefix _ ->
    invalid_arg "Policy_bdd: route-map not specialized to a destination"

let encode_route_map u rm ~dest =
  let m = u.man in
  let rm = Route_map.relevant rm ~dest in
  let rel =
    List.fold_right
      (fun (cl : Route_map.clause) tail ->
        let guard = Bdd.and_list m (List.map (cond_bdd u) cl.conds) in
        let body =
          match cl.verdict with
          | Route_map.Deny -> dropped_output u
          | Route_map.Permit -> clause_output u cl.actions
        in
        Bdd.ite m guard body tail)
      rm
      (dropped_output u (* implicit deny *))
  in
  guard_dropped_input u rel

let compose u r1 r2 =
  (* R(x,z) = ∃y. r1(x,y) ∧ r2(y,z): shift r2's (in,out) pairs onto
     (out,scratch), conjoin, project out the middle, then pull the scratch
     variables back into the output slots. *)
  let m = u.man in
  let r2s = Bdd.rename_shift m r2 1 in
  let joined = Bdd.and_ m r1 r2s in
  let mid = List.init u.width (fun f -> (3 * f) + 1) in
  let projected = Bdd.exists m mid joined in
  Bdd.rename_monotone m projected (fun v -> if v mod 3 = 2 then v - 1 else v)

let encode_opt u rm ~dest =
  match rm with None -> identity u | Some rm -> encode_route_map u rm ~dest

let edge_policy u (net : Device.network) ~dest recv sender =
  let r_recv = net.routers.(recv) and r_send = net.routers.(sender) in
  match
    (Device.bgp_neighbor_config r_recv sender,
     Device.bgp_neighbor_config r_send recv)
  with
  | Some imp, Some exp ->
    if not (Acl.permits (Device.acl_for r_recv sender) dest) then drop_all u
    else
      compose u
        (encode_opt u exp.export_rm ~dest)
        (encode_opt u imp.import_rm ~dest)
  | _ -> drop_all u

let apply u rel (a : Bgp.attr) =
  let m = u.man in
  (* Fix the input block to the advertisement's values. *)
  let lp_idx =
    match index_of u.lps a.lp with
    | Some i -> i
    | None -> invalid_arg "Policy_bdd.apply: local-pref outside the universe"
  in
  let med_idx =
    match index_of u.meds a.med with
    | Some i -> i
    | None -> invalid_arg "Policy_bdd.apply: MED outside the universe"
  in
  let restricted = ref rel in
  let fix var value = restricted := Bdd.restrict m !restricted ~var value in
  Array.iteri (fun i c -> fix (comm_var u 0 i) (Bgp.has_comm c a)) u.comms;
  for j = 0 to u.lp_bits - 1 do
    fix (lp_var u 0 j) ((lp_idx lsr j) land 1 = 1)
  done;
  for j = 0 to u.med_bits - 1 do
    fix (med_var u 0 j) ((med_idx lsr j) land 1 = 1)
  done;
  fix (drop_var u 0) false;
  (* The relation is functional: the remaining BDD is a single full
     assignment of the output block. *)
  let assignment =
    try Bdd.any_sat !restricted
    with Not_found ->
      invalid_arg "Policy_bdd.apply: relation has no output (not functional?)"
  in
  let value var =
    match List.assoc_opt var assignment with Some b -> b | None -> false
  in
  if value (drop_var u 1) then None
  else begin
    let outside =
      List.filter (fun c -> index_of u.comms c = None) a.comms
    in
    let inside =
      Array.to_list u.comms
      |> List.filteri (fun i _ -> value (comm_var u 1 i))
    in
    let lp_out = ref 0 and med_out = ref 0 in
    for j = u.lp_bits - 1 downto 0 do
      lp_out := (2 * !lp_out) + if value (lp_var u 1 j) then 1 else 0
    done;
    for j = u.med_bits - 1 downto 0 do
      med_out := (2 * !med_out) + if value (med_var u 1 j) then 1 else 0
    done;
    if !lp_out >= Array.length u.lps || !med_out >= Array.length u.meds then
      invalid_arg "Policy_bdd.apply: output value outside the universe";
    Some
      {
        Bgp.lp = u.lps.(!lp_out);
        med = u.meds.(!med_out);
        comms = List.sort_uniq Int.compare (inside @ outside);
        path = a.path;
      }
  end

let same = Bdd.equal

let var_name u v =
  let block = v mod 3 and field = v / 3 in
  let prime = match block with 0 -> "" | 1 -> "'" | _ -> "''" in
  let ncomms = Array.length u.comms in
  if field < ncomms then
    let c = u.comms.(field) in
    let c_str =
      if c >= 65536 then Printf.sprintf "%d:%d" (c lsr 16) (c land 0xFFFF)
      else string_of_int c
    in
    Printf.sprintf "comm(%s)%s" c_str prime
  else if field < ncomms + u.lp_bits then
    Printf.sprintf "lp[%d]%s" (field - ncomms) prime
  else if field < ncomms + u.lp_bits + u.med_bits then
    Printf.sprintf "med[%d]%s" (field - ncomms - u.lp_bits) prime
  else Printf.sprintf "drop%s" prime

let pp_policy u ppf b =
  if Bdd.is_top b then Format.pp_print_string ppf "true"
  else if Bdd.is_bot b then Format.pp_print_string ppf "false"
  else begin
    (* enumerate cubes by co-factoring on the support, smallest var first *)
    let support = Bdd.support b in
    let first = ref true in
    let rec cubes acc rest b =
      if Bdd.is_bot b then ()
      else
        match rest with
        | [] ->
          if not !first then Format.fprintf ppf "@ | ";
          first := false;
          (match List.rev acc with
          | [] -> Format.pp_print_string ppf "true"
          | lits ->
            Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
              Format.pp_print_string ppf lits)
        | v :: rest ->
          let lo = Bdd.restrict u.man b ~var:v false in
          let hi = Bdd.restrict u.man b ~var:v true in
          if Bdd.equal lo hi then cubes acc rest lo
          else begin
            cubes (Printf.sprintf "!%s" (var_name u v) :: acc) rest lo;
            cubes (var_name u v :: acc) rest hi
          end
    in
    Format.fprintf ppf "@[<hov>";
    cubes [] support b;
    Format.fprintf ppf "@]"
  end

let bgp_policy (net : Device.network) ~dest u v : Bgp.policy =
 fun a ->
  let ru = net.routers.(u) and rv = net.routers.(v) in
  match (Device.bgp_neighbor_config ru v, Device.bgp_neighbor_config rv u) with
  | Some imp, Some exp ->
    if not (Acl.permits (Device.acl_for ru v) dest) then None
    else
      let eval rm a =
        match rm with
        | None -> Some a
        | Some rm -> Route_map.eval rm ~dest a
      in
      Option.bind (eval exp.export_rm a) (eval imp.import_rm)
  | _ -> None

let matched_comms (net : Device.network) =
  let set = Hashtbl.create 32 in
  let scan = function
    | None -> ()
    | Some rm ->
      List.iter (fun c -> Hashtbl.replace set c ())
        (Route_map.communities_matched rm)
  in
  Array.iter
    (fun (r : Device.router) ->
      List.iter
        (fun (_, (nb : Device.bgp_neighbor)) ->
          scan nb.import_rm;
          scan nb.export_rm)
        r.bgp_neighbors)
    net.routers;
  fun c -> Hashtbl.mem set c

let bgp_srp (net : Device.network) ~dest ~dest_prefix =
  Bgp.make ~tie_filter:(matched_comms net)
    ~policy:(bgp_policy net ~dest:dest_prefix) net.graph ~dest

(* Which protocols an origin node announces into: BGP if it speaks BGP,
   OSPF if it has OSPF interfaces; a node with neither still announces
   into BGP so the destination is not silently unreachable. Shared with
   the static flow analysis, which must seed its origins exactly like the
   simulator does. *)
let origin_protocols (net : Device.network) origin =
  let r = net.routers in
  let ps =
    (match r.(origin).Device.bgp_neighbors with
    | [] -> []
    | _ -> [ Multi.P_ebgp ])
    @ match r.(origin).Device.ospf_links with [] -> [] | _ -> [ Multi.P_ospf ]
  in
  match ps with [] -> [ Multi.P_ebgp ] | ps -> ps

let multi_srp (net : Device.network) ~dest ~dest_prefix =
  let r = net.routers in
  let ospf_enabled u v =
    Option.is_some (Device.ospf_link_config r.(u) v)
    && Option.is_some (Device.ospf_link_config r.(v) u)
  in
  let ospf_cost u v =
    match Device.ospf_link_config r.(u) v with
    | Some l -> l.Device.cost
    | None -> 1
  in
  let ospf_area v = r.(v).Device.ospf_area in
  let bgp_enabled u v =
    Option.is_some (Device.bgp_neighbor_config r.(u) v)
    && Option.is_some (Device.bgp_neighbor_config r.(v) u)
  in
  let ibgp u v =
    match Device.bgp_neighbor_config r.(u) v with
    | Some nb -> nb.Device.ibgp
    | None -> false
  in
  let statics =
    Array.to_list
      (Array.mapi
         (fun u ru ->
           Device.static_next_hops ru ~dest:dest_prefix
           |> List.map (fun nh -> (u, nh)))
         r)
    |> List.concat
  in
  let origin_protocols = origin_protocols net dest in
  Multi.make ~ospf_cost ~ospf_area ~ospf_enabled ~bgp_enabled ~ibgp
    ~bgp_policy:(bgp_policy net ~dest:dest_prefix)
    ~static_routes:statics
    ~redistribute:(fun v -> r.(v).Device.redistribute)
    ~bgp_tie_filter:(matched_comms net)
    ~origin_protocols net.graph ~dest

let prefs (net : Device.network) ~dest v =
  let lps =
    List.concat_map
      (fun (_, (nb : Device.bgp_neighbor)) ->
        match nb.import_rm with
        | None -> []
        | Some rm -> Route_map.local_prefs rm ~dest)
      net.routers.(v).Device.bgp_neighbors
  in
  List.sort_uniq Int.compare (Bgp.default_lp :: lps)

type edge_signature = {
  sig_import : int;
  sig_export : int;
  sig_ibgp : bool;
  sig_acl : bool;
  sig_ospf : (int * int * int) option;
  sig_static : bool;
}

(* Whether OSPF can carry [dest] at all: only via redistribution, or
   because an originator of [dest] injects it into OSPF (the
   [origin_protocols] rule of [multi_srp]). When neither holds, OSPF link
   state is inert for this class, and folding costs/areas into the
   signature would both over-refine the abstraction and defeat
   delta-driven reuse (lib/incr) on link-cost changes. Note this is a
   whole-network property: the incremental engine compares it across a
   delta before trusting signature locality. *)
let ospf_live (net : Device.network) ~dest =
  Array.exists (fun (r : Device.router) -> r.Device.redistribute <> [])
    net.routers
  || Array.exists
       (fun (r : Device.router) ->
         r.Device.ospf_links <> []
         && List.exists (fun p -> Prefix.equal p dest) r.Device.originated)
       net.routers

let edge_signatures ?universe ?rm_bdd (net : Device.network) ~dest =
  let u =
    match universe with
    | Some u -> u
    | None -> Policy_bdd.universe_of_network net
  in
  (* Route-maps are shared across many interfaces; memoize their BDDs by
     physical identity of the map. A caller that keeps route-map BDDs
     alive across calls (the policy-signature cache of lib/incr) supplies
     its own [rm_bdd] instead — it must encode against [u]. *)
  let rm_bdd =
    match rm_bdd with
    | Some f -> f
    | None ->
      let rm_memo : (Route_map.t option, Bdd.t) Hashtbl.t =
        Hashtbl.create 64
      in
      fun rm ->
        (match Hashtbl.find_opt rm_memo rm with
        | Some b -> b
        | None ->
          let b =
            match rm with
            | None -> Policy_bdd.identity u
            | Some rm -> Policy_bdd.encode_route_map u rm ~dest
          in
          Hashtbl.replace rm_memo rm b;
          b)
  in
  let ospf_live = ospf_live net ~dest in
  let memo = Hashtbl.create 256 in
  let signature recv sender =
    match Hashtbl.find_opt memo (recv, sender) with
    | Some s -> s
    | None ->
      let r = net.routers.(recv) in
      let bgp_on =
        Option.is_some (Device.bgp_neighbor_config r sender)
        && Option.is_some (Device.bgp_neighbor_config net.routers.(sender) recv)
      in
      let sig_import, sig_export, sig_ibgp =
        if not bgp_on then (-1, -1, false)
        else
          match Device.bgp_neighbor_config r sender with
          | None -> (-1, -1, false)
          | Some nb ->
            ( Bdd.hash (rm_bdd nb.Device.import_rm),
              Bdd.hash (rm_bdd nb.Device.export_rm),
              nb.Device.ibgp )
      in
      let sig_acl = Acl.permits (Device.acl_for r sender) dest in
      let sig_ospf =
        if not ospf_live then None
        else
          match
            (Device.ospf_link_config r sender,
             Device.ospf_link_config net.routers.(sender) recv)
          with
          | Some l, Some _ ->
            Some (l.Device.cost, r.Device.ospf_area,
                  net.routers.(sender).Device.ospf_area)
          | _ -> None
      in
      let sig_static = List.mem sender (Device.static_next_hops r ~dest) in
      let s = { sig_import; sig_export; sig_ibgp; sig_acl; sig_ospf; sig_static } in
      Hashtbl.replace memo (recv, sender) s;
      s
  in
  (u, signature)

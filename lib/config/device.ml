type relation = Rel_unknown | Provider | Customer | Peer

let relation_equal a b =
  match (a, b) with
  | Rel_unknown, Rel_unknown | Provider, Provider | Customer, Customer
  | Peer, Peer ->
    true
  | (Rel_unknown | Provider | Customer | Peer), _ -> false

let relation_name = function
  | Rel_unknown -> "unknown"
  | Provider -> "provider"
  | Customer -> "customer"
  | Peer -> "peer"

type bgp_neighbor = {
  import_rm : Route_map.t option;
  export_rm : Route_map.t option;
  ibgp : bool;
  rel : relation;
}

type ospf_link = { cost : int; area : int }

type router = {
  name : string;
  bgp_neighbors : (int * bgp_neighbor) list;
  ospf_links : (int * ospf_link) list;
  ospf_area : int;
  static_routes : (Prefix.t * int) list;
  acl_out : (int * Acl.t) list;
  originated : Prefix.t list;
  redistribute : Multi.redistribution list;
  module_name : string option;
      (* operator-assigned fault-isolation module, from a [module NAME]
         stanza line; [None] = unassigned (auto-partitioned) *)
}

type network = { graph : Graph.t; routers : router array }

let default_router name =
  {
    name;
    bgp_neighbors = [];
    ospf_links = [];
    ospf_area = 0;
    static_routes = [];
    acl_out = [];
    originated = [];
    redistribute = [];
    module_name = None;
  }

let ebgp_full ?import_rm ?export_rm graph v r =
  let nbrs = Graph.succ graph v in
  {
    r with
    bgp_neighbors =
      Array.to_list nbrs
      |> List.map (fun u ->
             (u, { import_rm; export_rm; ibgp = false; rel = Rel_unknown }));
  }

let validate net =
  let n = Graph.n_nodes net.graph in
  if Array.length net.routers <> n then
    Error
      (Printf.sprintf "router count %d does not match node count %d"
         (Array.length net.routers) n)
  else begin
    let err = ref None in
    Array.iteri
      (fun v r ->
        if !err = None then begin
          let check_nbr kind u =
            if !err = None && not (Graph.has_edge net.graph v u) then
              err :=
                Some
                  (Printf.sprintf "%s: %s neighbor %d is not adjacent" r.name
                     kind u)
          in
          List.iter (fun (u, _) -> check_nbr "bgp" u) r.bgp_neighbors;
          List.iter (fun (u, _) -> check_nbr "ospf" u) r.ospf_links;
          List.iter (fun (u, _) -> check_nbr "acl" u) r.acl_out;
          List.iter (fun (_, u) -> check_nbr "static" u) r.static_routes
        end)
      net.routers;
    match !err with None -> Ok () | Some e -> Error e
  end

let originations net =
  let acc = ref [] in
  Array.iteri
    (fun v r -> List.iter (fun p -> acc := (p, v) :: !acc) r.originated)
    net.routers;
  List.rev !acc

let bgp_neighbor_config r u = List.assoc_opt u r.bgp_neighbors
let ospf_link_config r u = List.assoc_opt u r.ospf_links
let acl_for r u = List.assoc_opt u r.acl_out

(* Longest-prefix match among the static routes covering [dest]; routes
   of equal (maximal) length all contribute next hops (static ECMP). *)
let static_next_hops r ~dest =
  let matching =
    List.filter (fun (p, _) -> Prefix.subset dest p) r.static_routes
  in
  let best =
    List.fold_left (fun m (p, _) -> max m (Prefix.length p)) (-1) matching
  in
  List.filter_map
    (fun (p, nh) -> if Prefix.length p = best then Some nh else None)
    matching

let config_lines net =
  let rm_lines = function
    | None -> 0
    | Some rm ->
      List.fold_left
        (fun acc (cl : Route_map.clause) ->
          acc + 1 + List.length cl.conds + List.length cl.actions)
        0 rm
  in
  Array.fold_left
    (fun acc r ->
      acc + 3
      + List.fold_left
          (fun acc (_, nb) -> acc + 2 + rm_lines nb.import_rm + rm_lines nb.export_rm)
          0 r.bgp_neighbors
      + (2 * List.length r.ospf_links)
      + List.length r.static_routes
      + List.fold_left (fun acc (_, acl) -> acc + 1 + List.length acl) 0 r.acl_out
      + List.length r.originated
      + List.length r.redistribute)
    0 net.routers

(** BDD encoding of routing policy (paper §5.1, Figure 10).

    Each interface's specialized policy — export route-map of the sender,
    import route-map of the receiver, and the outbound ACL, all specialized
    to one destination equivalence class — is encoded as a single BDD
    relating input advertisements to output advertisements. Because BDDs in
    one manager are hash-consed, two interfaces have semantically equal
    policies iff their BDDs are physically equal, turning the
    transfer-equivalence check of the refinement loop into a pointer
    comparison.

    A relation ranges over [w = C + L + M + 1] {e fields}: one per
    community in the universe, [L] bits for the local-preference value (an
    index into the value universe), [M] bits for the MED value, and one
    "dropped" flag. Each field owns three adjacent Boolean variables —
    input, output, and a scratch slot used during composition — keeping
    pass-through equality constraints local so relation BDDs stay linear
    in [w]. *)

type universe = {
  man : Bdd.man;
  comms : int array;  (** community values with a variable, ascending *)
  lps : int array;  (** local-preference value universe, ascending *)
  meds : int array;
  lp_bits : int;
  med_bits : int;
  width : int;  (** block width *)
}

val universe_of_network :
  ?keep_unmatched_comms:bool -> Device.network -> universe
(** Collects community and value universes from every route-map in the
    network. By default, communities that are {e set but never matched}
    anywhere are excluded — the paper's refined attribute abstraction
    [h(lp, tags, path) = (lp, tags - unused, f path)] (§8) that collapses
    spurious role differences. Pass [~keep_unmatched_comms:true] for the
    naive abstraction (used by the ablation benchmark). *)

type universe_params = {
  up_comms : int array;
  up_lps : int array;
  up_meds : int array;
}
(** A universe's value layout, detached from any BDD manager. Modular
    compression scans the whole network once for these, then builds one
    fresh-manager universe per module from the {e same} params: a
    community matched only in module B still gets a variable in module
    A's universe, so policy-BDD equality means the same thing in every
    module (and in the composition pass). *)

val universe_params :
  ?keep_unmatched_comms:bool -> Device.network -> universe_params
(** The scan half of {!universe_of_network} — no manager allocated. *)

val universe_of_params : universe_params -> universe
(** Build a universe with a fresh manager over a fixed layout. *)

val params_of_universe : universe -> universe_params

val identity : universe -> Bdd.t
(** Relation of the permit-all policy. *)

val drop_all : universe -> Bdd.t
(** Relation dropping every route (a denied interface). *)

val encode_route_map : universe -> Route_map.t -> dest:Prefix.t -> Bdd.t
(** Encode one route-map, specialized to the destination. *)

val compose : universe -> Bdd.t -> Bdd.t -> Bdd.t
(** [compose u r1 r2] is the relation applying [r1] then [r2]. *)

val edge_policy :
  universe -> Device.network -> dest:Prefix.t -> int -> int -> Bdd.t
(** [edge_policy u net ~dest recv sender] is the full policy relation for
    routes received at [recv] from [sender]: sender's export route-map,
    then receiver's import route-map; the whole edge drops everything if
    BGP is not configured on both ends or if the receiver's outbound ACL
    towards the sender denies the destination. *)

val apply : universe -> Bdd.t -> Bgp.attr -> Bgp.attr option
(** Run a policy relation on a concrete advertisement (communities outside
    the universe pass through untouched; the local-preference and MED must
    be in the universe). Used to cross-check the BDD encoding against
    {!Route_map.eval} in tests, and to execute abstract networks whose
    policies exist only as BDDs. *)

val same : Bdd.t -> Bdd.t -> bool
(** Pointer equality — the O(1) semantic-equality check. *)

val pp_policy : universe -> Format.formatter -> Bdd.t -> unit
(** Render a policy relation as a sum of cubes with named variables
    (communities in [asn:value] form, local-preference/MED index bits,
    the drop flag; primes mark outputs) — the textual analogue of the
    paper's Figure 10. Exponential in the worst case; meant for
    inspecting individual policies. *)

val var_name : universe -> int -> string
(** The display name of a BDD variable of this universe. *)

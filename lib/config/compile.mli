(** Compilation of a configured network into per-destination SRP instances,
    plus the per-edge data the abstraction algorithm consumes. *)

val matched_comms : Device.network -> int -> bool
(** Communities some route-map in the network matches on; the community
    tie-break of compiled SRPs is restricted to these, so route ranking
    commutes with the attribute abstraction. *)

val bgp_policy : Device.network -> dest:Prefix.t -> int -> int -> Bgp.policy
(** [bgp_policy net ~dest u v] is the executable policy for routes received
    at [u] from [v]: [v]'s export route-map, then [u]'s import route-map,
    with the route dropped when BGP is not configured on both ends or when
    [u]'s outbound ACL towards [v] denies the destination. *)

val bgp_srp : Device.network -> dest:int -> dest_prefix:Prefix.t -> Bgp.attr Srp.t
(** Single-protocol eBGP network (the synthetic evaluation networks). *)

val origin_protocols : Device.network -> int -> Multi.proto list
(** The protocols node [origin] announces a destination into: eBGP if it
    has BGP neighbors, OSPF if it has OSPF interfaces, eBGP as a fallback
    when it has neither. Exactly the origination rule of {!multi_srp};
    the flow analysis seeds its origin facts with it. *)

val multi_srp :
  Device.network -> dest:int -> dest_prefix:Prefix.t -> Multi.attr Srp.t
(** Multi-protocol network: eBGP/iBGP per BGP neighbor configs, OSPF per
    interface configs, static routes covering the destination, and
    redistribution (paper §6). The destination originates into the
    protocols under which it is configured (BGP if it has any BGP
    neighbor, OSPF if it has any OSPF interface). *)

val prefs : Device.network -> dest:Prefix.t -> int -> int list
(** [prefs net ~dest v] — the paper's [prefs(v)] (§4.3): the set of BGP
    local-preference values that may be assigned to an announcement at
    node [v], i.e. the default plus any value set by a reachable clause of
    one of [v]'s import route-maps. Sorted ascending. *)

type edge_signature = {
  sig_import : int;
      (** BDD id of [u]'s import route-map on the interface from [v]
          ([-1]: BGP not configured on the edge) *)
  sig_export : int;
      (** BDD id of [u]'s export route-map on the interface towards [v] *)
  sig_ibgp : bool;
  sig_acl : bool;  (** [u]'s outbound ACL towards [v] permits the dest *)
  sig_ospf : (int * int * int) option;
      (** receiver-side cost, receiver area, sender area; always [None]
          when {!ospf_live} is false for the destination — inert link
          state must not over-refine the abstraction *)
  sig_static : bool;  (** receiver has a static route for [dest] via sender *)
}
(** The signature of the directed edge [(u, v)]: everything [u]'s own
    configuration contributes to the transfer functions touching that
    interface. The refinement loop groups nodes by their multiset of
    (signature, neighbor) pairs; keying on {e both} the import and export
    side is what makes two merged nodes interchangeable for every adjacent
    transfer function (each contributes its import to routes it receives
    and its export to routes its neighbors receive). *)

val ospf_live : Device.network -> dest:Prefix.t -> bool
(** Whether OSPF can carry [dest] at all: some router redistributes, or
    an originator of [dest] has OSPF interfaces (the [origin_protocols]
    rule of {!multi_srp}). A whole-network property, not a per-edge one:
    the incremental engine must see it unchanged across a delta before it
    trusts signature locality and reuses untouched classes. *)

val edge_signatures :
  ?universe:Policy_bdd.universe ->
  ?rm_bdd:(Route_map.t option -> Bdd.t) ->
  Device.network ->
  dest:Prefix.t ->
  Policy_bdd.universe * (int -> int -> edge_signature)
(** Builds (lazily, memoized) the signature of every edge, sharing one BDD
    universe. Returns the universe for reuse across destinations.

    [rm_bdd] (default: a per-call memo) supplies the BDD of a route-map
    ([None] = permit-all), specialized to [dest]; it must encode against
    the same universe. The incremental engine passes a cache that
    persists across recompressions, so the signatures of untouched
    devices become table lookups. *)

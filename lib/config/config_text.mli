(** A textual format for vendor-independent configurations.

    Networks can be written to and read from a single self-contained text
    file, playing the role of the configuration directories Batfish parses
    for the real Bonsai. The format has three kinds of sections:

    {v
    topology
      node <name>
      link <name> <name>

    route-map <NAME>
      <seq> permit|deny
        match community <c> [<c> ...]
        match prefix <a.b.c.d/len> [...]
        set local-pref <n>
        set med <n>
        set community add <c>
        set community delete <c>

    router <name>
      ospf area <n>
      ospf link <neighbor> cost <n> [area <n>]
      bgp neighbor <neighbor> [ibgp] [import <RM>] [export <RM>]
      static <prefix> via <neighbor>
      acl out <neighbor>
        permit|deny <prefix>
      originate <prefix>
      redistribute ospf-into-bgp|static-into-bgp|bgp-into-ospf
    v}

    Communities are written either as plain integers or Cisco-style
    [asn:value] pairs (encoded as [asn * 65536 + value]). Lines starting
    with [#] are comments. Printing then parsing yields a structurally
    identical network (checked by the test suite). *)

val print : Device.network -> string
(** Render a network. Identical route-maps are shared under one name. *)

val parse : string -> (Device.network, string) result
(** Parse a network. The parser does not stop at the first problem: it
    recovers at the next section header and collects up to 20 diagnostics
    (see {!parse_full}); the error string joins them, one ["line N: msg"]
    per line. *)

val load : string -> (Device.network, string) result
(** Read and parse a file. *)

(** {1 Source locations}

    [Device.network] keeps no syntax, so diagnostics over a parsed network
    would otherwise only name nodes. [parse_with_locs] additionally returns
    a side table mapping router stanzas, route-map names, and individual
    clauses back to 1-based source lines; the lint engine threads it
    through to report [file:line] positions. *)

type rm_loc = {
  rm_line : int;  (** line of the [route-map NAME] header *)
  clause_lines : int array;
      (** line of each clause header, in final (seq-sorted) clause order *)
}

type loc_table = {
  router_lines : (string * int) list;  (** router name -> stanza line *)
  route_maps : (string * rm_loc) list;  (** route-map name -> location *)
  rm_names : (Route_map.t * string) list;
      (** parsed route-map value -> its name (first definition wins) *)
}

val empty_locs : loc_table

val router_line : loc_table -> string -> int option
val rm_name_of : loc_table -> Route_map.t -> string option
val rm_loc : loc_table -> string -> rm_loc option

val clause_line : loc_table -> string -> int -> int option
(** [clause_line locs name i] is the source line of the [i]-th (0-based,
    seq-sorted) clause of the named route-map. *)

val parse_with_locs : string -> (Device.network * loc_table, string) result
val load_with_locs : string -> (Device.network * loc_table, string) result

val parse_full :
  string -> (Device.network * loc_table, (int * string) list) result
(** Like {!parse_with_locs} but with structured diagnostics: each is a
    (1-based line, message) pair — line 0 for file-level problems — in
    source order, at most 20 per file. Scan-level errors skip the rest of
    the offending section and resume at the next unindented section
    header; name-resolution errors are collected per line. Never raises. *)

val load_full :
  string -> (Device.network * loc_table, (int * string) list) result
(** Read and {!parse_full} a file; an unreadable file is a single
    line-0 diagnostic. *)

val save : path:string -> Device.network -> unit

val community_to_string : int -> string
(** Cisco-style [asn:value] when the value is >= 65536, decimal
    otherwise. *)

val community_of_string : string -> int option

let community_to_string c =
  if c >= 65536 then Printf.sprintf "%d:%d" (c lsr 16) (c land 0xFFFF)
  else string_of_int c

let community_of_string s =
  match String.index_opt s ':' with
  | None -> int_of_string_opt s
  | Some i -> (
    let asn = String.sub s 0 i in
    let v = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt asn, int_of_string_opt v) with
    | Some a, Some v when a >= 0 && v >= 0 && v < 65536 -> Some ((a lsl 16) lor v)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let print (net : Device.network) =
  let buf = Buffer.create 4096 in
  let g = net.Device.graph in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* Collect route-maps, sharing structurally identical ones. *)
  let rm_names : (Route_map.t, string) Hashtbl.t = Hashtbl.create 16 in
  let rm_order = ref [] in
  let name_of_rm rm =
    match Hashtbl.find_opt rm_names rm with
    | Some n -> n
    | None ->
      let n = Printf.sprintf "RM%d" (Hashtbl.length rm_names) in
      Hashtbl.replace rm_names rm n;
      rm_order := (n, rm) :: !rm_order;
      n
  in
  Array.iter
    (fun (r : Device.router) ->
      List.iter
        (fun (_, (nb : Device.bgp_neighbor)) ->
          Option.iter (fun rm -> ignore (name_of_rm rm)) nb.import_rm;
          Option.iter (fun rm -> ignore (name_of_rm rm)) nb.export_rm)
        r.bgp_neighbors)
    net.Device.routers;
  (* topology *)
  pr "topology\n";
  for v = 0 to Graph.n_nodes g - 1 do
    pr "  node %s\n" (Graph.name g v)
  done;
  List.iter
    (fun (u, v) ->
      if u < v || not (Graph.has_edge g v u) then
        pr "  link %s %s\n" (Graph.name g u) (Graph.name g v))
    (Graph.edges g);
  (* route-maps *)
  List.iter
    (fun (name, rm) ->
      pr "\nroute-map %s\n" name;
      List.iteri
        (fun i (cl : Route_map.clause) ->
          pr "  %d %s\n"
            (10 * (i + 1))
            (match cl.verdict with Route_map.Permit -> "permit" | Route_map.Deny -> "deny");
          List.iter
            (function
              | Route_map.Match_community cs ->
                pr "    match community %s\n"
                  (String.concat " " (List.map community_to_string cs))
              | Route_map.Match_prefix ps ->
                pr "    match prefix %s\n"
                  (String.concat " " (List.map Prefix.to_string ps)))
            cl.conds;
          List.iter
            (function
              | Route_map.Set_local_pref n -> pr "    set local-pref %d\n" n
              | Route_map.Set_med n -> pr "    set med %d\n" n
              | Route_map.Add_community c ->
                pr "    set community add %s\n" (community_to_string c)
              | Route_map.Delete_community c ->
                pr "    set community delete %s\n" (community_to_string c))
            cl.actions)
        rm)
    (List.rev !rm_order);
  (* routers *)
  Array.iteri
    (fun v (r : Device.router) ->
      pr "\nrouter %s\n" (Graph.name g v);
      Option.iter (fun m -> pr "  module %s\n" m) r.module_name;
      if r.ospf_area <> 0 then pr "  ospf area %d\n" r.ospf_area;
      List.iter
        (fun (u, (l : Device.ospf_link)) ->
          pr "  ospf link %s cost %d%s\n" (Graph.name g u) l.cost
            (if l.area <> 0 then Printf.sprintf " area %d" l.area else ""))
        r.ospf_links;
      List.iter
        (fun (u, (nb : Device.bgp_neighbor)) ->
          pr "  bgp neighbor %s%s%s%s%s\n" (Graph.name g u)
            (if nb.ibgp then " ibgp" else "")
            (match nb.rel with
            | Device.Rel_unknown -> ""
            | rel -> " " ^ Device.relation_name rel)
            (match nb.import_rm with
            | Some rm -> " import " ^ name_of_rm rm
            | None -> "")
            (match nb.export_rm with
            | Some rm -> " export " ^ name_of_rm rm
            | None -> ""))
        r.bgp_neighbors;
      List.iter
        (fun (p, nh) ->
          pr "  static %s via %s\n" (Prefix.to_string p) (Graph.name g nh))
        r.static_routes;
      List.iter
        (fun (u, acl) ->
          pr "  acl out %s\n" (Graph.name g u);
          List.iter
            (fun (rule : Acl.rule) ->
              pr "    %s %s\n"
                (if rule.permit then "permit" else "deny")
                (Prefix.to_string rule.prefix))
            acl)
        r.acl_out;
      List.iter (fun p -> pr "  originate %s\n" (Prefix.to_string p)) r.originated;
      List.iter
        (fun rd ->
          pr "  redistribute %s\n"
            (match rd with
            | Multi.Ospf_into_bgp -> "ospf-into-bgp"
            | Multi.Static_into_bgp -> "static-into-bgp"
            | Multi.Bgp_into_ospf -> "bgp-into-ospf"))
        r.redistribute)
    net.Device.routers;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let error line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

type section =
  | S_none
  | S_topology
  | S_route_map of string
  | S_router of string
  | S_skip
      (* a diagnostic was recorded in the current section; its remaining
         lines are ignored and parsing resumes at the next section header *)

type pending_clause = {
  pc_seq : int;
  pc_line : int;
  pc_verdict : Route_map.verdict;
  mutable pc_conds : Route_map.cond list;
  mutable pc_actions : Route_map.action list;
}

type rm_loc = { rm_line : int; clause_lines : int array }

type loc_table = {
  router_lines : (string * int) list;
  route_maps : (string * rm_loc) list;
  rm_names : (Route_map.t * string) list;
}

let empty_locs = { router_lines = []; route_maps = []; rm_names = [] }

let router_line locs name = List.assoc_opt name locs.router_lines
let rm_name_of locs rm = List.assoc_opt rm locs.rm_names
let rm_loc locs name = List.assoc_opt name locs.route_maps

let clause_line locs name i =
  match rm_loc locs name with
  | Some l when i >= 0 && i < Array.length l.clause_lines ->
    Some l.clause_lines.(i)
  | _ -> None

let max_diagnostics = 20

let parse_full text =
  let lines = String.split_on_char '\n' text in
  (* Diagnostics, oldest first; capped so a hopeless file stays legible. *)
  let diags = ref [] and n_diags = ref 0 in
  let add_diag line msg =
    if !n_diags < max_diagnostics then begin
      diags := (line, msg) :: !diags;
      incr n_diags
    end
  in
  (* Mutable parse state. *)
  let nodes : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let node_order = ref [] in
  let links = ref [] in
  let route_maps : (string, int * pending_clause list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let rm_order = ref [] in
  (* Router bodies are stored raw and resolved once all nodes are known. *)
  let routers : (string * int * (int * string list) list) list ref = ref [] in
  let router_header = ref 0 in
  let section = ref S_none in
  let current_clauses : pending_clause list ref ref = ref (ref []) in
  let current_router : (int * string list) list ref = ref [] in
  let flush_router name =
    routers := (name, !router_header, List.rev !current_router) :: !routers;
    current_router := []
  in
  let close_section () =
    match !section with
    | S_router name -> flush_router name
    | S_none | S_topology | S_route_map _ | S_skip -> ()
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else
        try
           let indented = raw <> "" && (raw.[0] = ' ' || raw.[0] = '\t') in
           match (indented, tokens line) with
           | false, [ "topology" ] ->
             close_section ();
             section := S_topology
           | false, [ "route-map"; name ] ->
             close_section ();
             if Hashtbl.mem route_maps name then
               error lineno "duplicate route-map %s" name;
             let cls = ref [] in
             Hashtbl.replace route_maps name (lineno, cls);
             rm_order := name :: !rm_order;
             current_clauses := cls;
             section := S_route_map name
           | false, [ "router"; name ] ->
             close_section ();
             if not (Hashtbl.mem nodes name) then
               error lineno "router %s is not a topology node" name;
             router_header := lineno;
             section := S_router name
           | false, _ -> error lineno "unknown section: %s" line
           | true, toks -> (
             match !section with
             | S_skip -> ()
             | S_none -> error lineno "content before any section"
             | S_topology -> (
               match toks with
               | [ "node"; name ] ->
                 if Hashtbl.mem nodes name then
                   error lineno "duplicate node %s" name;
                 Hashtbl.replace nodes name (Hashtbl.length nodes);
                 node_order := name :: !node_order
               | [ "link"; a; b ] -> links := (lineno, a, b) :: !links
               | _ -> error lineno "bad topology line: %s" line)
             | S_route_map _ -> (
               let cls = !current_clauses in
               match toks with
               | [ seq; verdict ] -> (
                 match (int_of_string_opt seq, verdict) with
                 | Some seq, "permit" ->
                   cls :=
                     { pc_seq = seq; pc_line = lineno;
                       pc_verdict = Route_map.Permit;
                       pc_conds = []; pc_actions = [] }
                     :: !cls
                 | Some seq, "deny" ->
                   cls :=
                     { pc_seq = seq; pc_line = lineno;
                       pc_verdict = Route_map.Deny;
                       pc_conds = []; pc_actions = [] }
                     :: !cls
                 | _ -> error lineno "bad clause header: %s" line)
               | "match" :: "community" :: cs -> (
                 match !cls with
                 | [] -> error lineno "match before any clause"
                 | cl :: _ ->
                   let cs =
                     List.map
                       (fun s ->
                         match community_of_string s with
                         | Some c -> c
                         | None -> error lineno "bad community %s" s)
                       cs
                   in
                   if cs = [] then error lineno "empty community list";
                   cl.pc_conds <- Route_map.Match_community cs :: cl.pc_conds)
               | "match" :: "prefix" :: ps -> (
                 match !cls with
                 | [] -> error lineno "match before any clause"
                 | cl :: _ ->
                   let ps =
                     List.map
                       (fun s ->
                         match Prefix.of_string_opt s with
                         | Some p -> p
                         | None -> error lineno "bad prefix %s" s)
                       ps
                   in
                   if ps = [] then error lineno "empty prefix list";
                   cl.pc_conds <- Route_map.Match_prefix ps :: cl.pc_conds)
               | [ "set"; "local-pref"; n ] -> (
                 match (!cls, int_of_string_opt n) with
                 | cl :: _, Some n ->
                   cl.pc_actions <- Route_map.Set_local_pref n :: cl.pc_actions
                 | _ -> error lineno "bad set local-pref")
               | [ "set"; "med"; n ] -> (
                 match (!cls, int_of_string_opt n) with
                 | cl :: _, Some n ->
                   cl.pc_actions <- Route_map.Set_med n :: cl.pc_actions
                 | _ -> error lineno "bad set med")
               | [ "set"; "community"; "add"; c ] -> (
                 match (!cls, community_of_string c) with
                 | cl :: _, Some c ->
                   cl.pc_actions <- Route_map.Add_community c :: cl.pc_actions
                 | _ -> error lineno "bad set community add")
               | [ "set"; "community"; "delete"; c ] -> (
                 match (!cls, community_of_string c) with
                 | cl :: _, Some c ->
                   cl.pc_actions <-
                     Route_map.Delete_community c :: cl.pc_actions
                 | _ -> error lineno "bad set community delete")
               | _ -> error lineno "bad route-map line: %s" line)
             | S_router _ -> current_router := (lineno, toks) :: !current_router)
        with Parse_error (l, m) ->
          add_diag l m;
          (* drop the broken section: any router lines collected so far
             belong to a stanza we can no longer trust *)
          (match !section with
          | S_router _ -> current_router := []
          | _ -> ());
          section := S_skip)
    lines;
  close_section ();
  (* Scan errors leave nodes and route-maps incomplete; resolving against
     them would only pile up cascading "unknown name" noise. *)
  if !diags <> [] then Error (List.rev !diags)
  else begin
  (* Build the graph. *)
  let b = Graph.Builder.create () in
  List.iter (fun name -> ignore (Graph.Builder.add_node b name)) (List.rev !node_order);
  let node name lineno =
    match Hashtbl.find_opt nodes name with
    | Some v -> v
    | None -> error lineno "unknown node %s" name
  in
  List.iter
    (fun (lineno, a, bn) ->
      try Graph.Builder.add_link b (node a lineno) (node bn lineno) with
      | Parse_error (l, m) -> add_diag l m
      | Invalid_argument m -> add_diag lineno m (* e.g. a self-loop *))
    (List.rev !links);
  let g = Graph.Builder.build b in
  let sorted_clauses name lineno =
    match Hashtbl.find_opt route_maps name with
    | None -> error lineno "unknown route-map %s" name
    | Some (header, cls) ->
      ( header,
        List.rev !cls
        |> List.stable_sort (fun a b -> compare a.pc_seq b.pc_seq) )
  in
  let finished_rm name lineno =
    snd (sorted_clauses name lineno)
    |> List.map (fun pc ->
           {
             Route_map.verdict = pc.pc_verdict;
             conds = List.rev pc.pc_conds;
             actions = List.rev pc.pc_actions;
           })
  in
  (* Resolve router bodies. *)
  let router_arr =
    Array.init (Graph.n_nodes g) (fun v -> Device.default_router (Graph.name g v))
  in
  List.iter
    (fun (name, _header, body) ->
      let v = node name 0 in
      let r = ref router_arr.(v) in
      let acl_target = ref None in
      List.iter
        (fun (lineno, toks) ->
          try
          match toks with
          | [ "ospf"; "area"; n ] -> (
            match int_of_string_opt n with
            | Some n ->
              acl_target := None;
              r := { !r with Device.ospf_area = n }
            | None -> error lineno "bad ospf area")
          | "ospf" :: "link" :: nbr :: "cost" :: rest -> (
            acl_target := None;
            let u = node nbr lineno in
            match rest with
            | [ c ] | [ c; "area"; _ ] -> (
              let area =
                match rest with
                | [ _; "area"; a ] -> (
                  match int_of_string_opt a with
                  | Some a -> a
                  | None -> error lineno "bad area")
                | _ -> 0
              in
              match int_of_string_opt c with
              | Some cost ->
                r :=
                  {
                    !r with
                    Device.ospf_links =
                      !r.Device.ospf_links @ [ (u, { Device.cost; area }) ];
                  }
              | None -> error lineno "bad ospf cost")
            | _ -> error lineno "bad ospf link line")
          | "bgp" :: "neighbor" :: nbr :: opts ->
            acl_target := None;
            let u = node nbr lineno in
            let ibgp = ref false
            and rel = ref Device.Rel_unknown
            and import_rm = ref None
            and export_rm = ref None in
            let rec eat = function
              | [] -> ()
              | "ibgp" :: rest ->
                ibgp := true;
                eat rest
              | "provider" :: rest ->
                rel := Device.Provider;
                eat rest
              | "customer" :: rest ->
                rel := Device.Customer;
                eat rest
              | "peer" :: rest ->
                rel := Device.Peer;
                eat rest
              | "import" :: rm :: rest ->
                import_rm := Some (finished_rm rm lineno);
                eat rest
              | "export" :: rm :: rest ->
                export_rm := Some (finished_rm rm lineno);
                eat rest
              | t :: _ -> error lineno "bad bgp option %s" t
            in
            eat opts;
            r :=
              {
                !r with
                Device.bgp_neighbors =
                  !r.Device.bgp_neighbors
                  @ [
                      ( u,
                        {
                          Device.import_rm = !import_rm;
                          export_rm = !export_rm;
                          ibgp = !ibgp;
                          rel = !rel;
                        } );
                    ];
              }
          | [ "static"; p; "via"; nbr ] -> (
            acl_target := None;
            match Prefix.of_string_opt p with
            | Some p ->
              r :=
                {
                  !r with
                  Device.static_routes =
                    !r.Device.static_routes @ [ (p, node nbr lineno) ];
                }
            | None -> error lineno "bad static prefix %s" p)
          | [ "acl"; "out"; nbr ] ->
            let u = node nbr lineno in
            acl_target := Some u;
            r := { !r with Device.acl_out = !r.Device.acl_out @ [ (u, []) ] }
          | [ ("permit" | "deny") as verdict; p ] -> (
            match (!acl_target, Prefix.of_string_opt p) with
            | Some u, Some p ->
              let rule = { Acl.permit = verdict = "permit"; prefix = p } in
              r :=
                {
                  !r with
                  Device.acl_out =
                    List.map
                      (fun (w, acl) ->
                        if w = u then (w, acl @ [ rule ]) else (w, acl))
                      !r.Device.acl_out;
                }
            | None, _ -> error lineno "acl rule outside an acl block"
            | _, None -> error lineno "bad acl prefix %s" p)
          | [ "originate"; p ] -> (
            acl_target := None;
            match Prefix.of_string_opt p with
            | Some p ->
              r := { !r with Device.originated = !r.Device.originated @ [ p ] }
            | None -> error lineno "bad originate prefix %s" p)
          | [ "redistribute"; what ] -> (
            acl_target := None;
            let rd =
              match what with
              | "ospf-into-bgp" -> Multi.Ospf_into_bgp
              | "static-into-bgp" -> Multi.Static_into_bgp
              | "bgp-into-ospf" -> Multi.Bgp_into_ospf
              | _ -> error lineno "bad redistribute target %s" what
            in
            r := { !r with Device.redistribute = !r.Device.redistribute @ [ rd ] })
          | [ "module"; m ] ->
            acl_target := None;
            r := { !r with Device.module_name = Some m }
          | _ ->
            error lineno "bad router line: %s" (String.concat " " toks)
          with Parse_error (l, m) -> add_diag l m)
        body;
      router_arr.(v) <- !r)
    (List.rev !routers);
  let net = { Device.graph = g; routers = router_arr } in
  let locs =
    {
      router_lines =
        List.rev_map (fun (name, header, _) -> (name, header)) !routers;
      route_maps =
        List.rev_map
          (fun name ->
            let header, cls = sorted_clauses name 0 in
            ( name,
              {
                rm_line = header;
                clause_lines =
                  Array.of_list (List.map (fun pc -> pc.pc_line) cls);
              } ))
          !rm_order;
      rm_names =
        (* First definition wins when two names share a structure, so
           lookups by value are deterministic. *)
        List.rev_map (fun name -> (finished_rm name 0, name)) !rm_order;
    }
  in
  match List.rev !diags with
  | _ :: _ as ds -> Error ds
  | [] -> (
    match Device.validate net with
    | Ok () -> Ok (net, locs)
    | Error e -> Error [ (0, Printf.sprintf "invalid network: %s" e) ])
  end

let parse_full text =
  (* A belt for whatever slips past the per-line recovery (the grammar
     has no known way to get here, but parsers must not crash). *)
  try parse_full text with
  | Parse_error (l, m) -> Error [ (l, m) ]
  | Invalid_argument m -> Error [ (0, m) ]

let string_of_diags ds =
  String.concat "\n"
    (List.map
       (fun (l, m) -> if l = 0 then m else Printf.sprintf "line %d: %s" l m)
       ds)

let parse_with_locs text =
  Result.map_error string_of_diags (parse_full text)

let parse text = Result.map fst (parse_with_locs text)

let read_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Ok s
        | exception (End_of_file | Sys_error _) ->
          Error (Printf.sprintf "%s: unreadable (truncated or not a regular \
                                 file)" path))

let load path = Result.bind (read_file path) parse
let load_with_locs path = Result.bind (read_file path) parse_with_locs

let load_full path =
  match read_file path with
  | Ok text -> parse_full text
  | Error e -> Error [ (0, e) ]

let save ~path net =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (print net))

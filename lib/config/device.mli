(** Vendor-independent device configurations (the representation Bonsai
    consumes after Batfish's parsing, paper §7).

    A network is a topology plus one router configuration per node. Router
    configurations mention neighbors by node id; the compiler checks they
    agree with the topology. *)

type relation = Rel_unknown | Provider | Customer | Peer
(** Business relationship toward a BGP neighbor (Gao–Rexford): routes
    learned from a provider or peer should only be exported to customers.
    [Rel_unknown] (the default) opts the session out of transit checks. *)

val relation_equal : relation -> relation -> bool
val relation_name : relation -> string

type bgp_neighbor = {
  import_rm : Route_map.t option;  (** [None]: permit all, unchanged *)
  export_rm : Route_map.t option;
  ibgp : bool;
  rel : relation;  (** relationship {e of} the neighbor to this router *)
}

type ospf_link = { cost : int; area : int }

type router = {
  name : string;
  bgp_neighbors : (int * bgp_neighbor) list;
  ospf_links : (int * ospf_link) list;
  ospf_area : int;  (** the router's own area (used for inter-area marking) *)
  static_routes : (Prefix.t * int) list;  (** prefix, next-hop node *)
  acl_out : (int * Acl.t) list;  (** outbound ACL per neighbor interface *)
  originated : Prefix.t list;  (** prefixes this router announces *)
  redistribute : Multi.redistribution list;
  module_name : string option;
      (** operator-assigned fault-isolation module ([module NAME] in the
          config text); [None] = unassigned, auto-partitioned *)
}

type network = { graph : Graph.t; routers : router array }

val default_router : string -> router
(** No protocols, no routes, no ACLs. *)

val ebgp_full : ?import_rm:Route_map.t -> ?export_rm:Route_map.t ->
  Graph.t -> int -> router -> router
(** [ebgp_full g v r] adds every topology neighbor of [v] as an eBGP
    neighbor of router [r] with the given (shared) route-maps. *)

val validate : network -> (unit, string) result
(** Checks that router count matches the graph, that every configured
    neighbor is a topology neighbor, and that static-route next hops are
    neighbors. *)

val originations : network -> (Prefix.t * int) list
(** All (prefix, origin node) pairs, in node order. *)

val bgp_neighbor_config : router -> int -> bgp_neighbor option
val ospf_link_config : router -> int -> ospf_link option
val acl_for : router -> int -> Acl.t option

val static_next_hops : router -> dest:Prefix.t -> int list
(** Next hops of the longest-matching static routes covering [dest].
    Several routes of the same (maximal) prefix length yield multiple
    next hops (static ECMP); less specific covering routes lose. *)

val config_lines : network -> int
(** A crude count of configuration "lines" (for reporting network scale,
    like the paper's 540k/600k-line figures). *)

let prefix_of_index i =
  if i < 0 || i >= 256 * 256 then invalid_arg "Synthesis.prefix_of_index";
  Prefix.make (Ipv4.of_octets 10 (i / 256) (i mod 256) 0) 24

let space = Prefix.make (Ipv4.of_octets 10 0 0 0) 8

(* The destination-based prefix filter the synthetic networks attach to
   every import: permit routes for the experiment's address space only. *)
let space_filter : Route_map.t =
  [ { verdict = Permit; conds = [ Match_prefix [ space ] ]; actions = [] } ]

let ebgp_shortest_path ?originators (graph : Graph.t) : Device.network =
  let n = Graph.n_nodes graph in
  let originators =
    match originators with Some l -> l | None -> List.init n Fun.id
  in
  let origin_rank = Hashtbl.create n in
  List.iteri (fun i v -> Hashtbl.replace origin_rank v i) originators;
  let routers =
    Array.init n (fun v ->
        let r = Device.default_router (Graph.name graph v) in
        let r =
          {
            r with
            Device.bgp_neighbors =
              Array.to_list (Graph.succ graph v)
              |> List.map (fun u ->
                     ( u,
                       {
                         Device.import_rm = Some space_filter;
                         export_rm = None;
                         ibgp = false;
                         rel = Device.Rel_unknown;
                       } ));
          }
        in
        match Hashtbl.find_opt origin_rank v with
        | Some i -> { r with Device.originated = [ prefix_of_index i ] }
        | None -> r)
  in
  { Device.graph; routers }

let fattree_shortest_path (ft : Generators.fattree) =
  ebgp_shortest_path ~originators:(Array.to_list ft.ft_edge) ft.ft_graph

let fattree_prefer_bottom (ft : Generators.fattree) =
  let net = fattree_shortest_path ft in
  let is_edge = Array.make (Graph.n_nodes ft.ft_graph) false in
  Array.iter (fun v -> is_edge.(v) <- true) ft.ft_edge;
  let is_agg = Array.make (Graph.n_nodes ft.ft_graph) false in
  Array.iter (fun v -> is_agg.(v) <- true) ft.ft_agg;
  let routers =
    Array.mapi
      (fun v (r : Device.router) ->
        if not is_agg.(v) then r
        else
          {
            r with
            Device.bgp_neighbors =
              List.map
                (fun (u, (nb : Device.bgp_neighbor)) ->
                  if is_edge.(u) then
                    ( u,
                      {
                        nb with
                        Device.import_rm =
                          Some
                            [
                              {
                                Route_map.verdict = Permit;
                                conds = [ Match_prefix [ space ] ];
                                actions = [ Set_local_pref 200 ];
                              };
                            ];
                      } )
                  else (u, nb))
                r.Device.bgp_neighbors;
          })
      net.routers
  in
  { net with routers }

let ring_bgp ~n = ebgp_shortest_path (Generators.ring ~n)
let mesh_bgp ~n = ebgp_shortest_path (Generators.full_mesh ~n)

type real_network = { net : Device.network; description : string }

(* ------------------------------------------------------------------ *)
(* Datacenter: 8 clusters x (16 leaves + 8 spines) + 5 cores = 197.    *)
(* ------------------------------------------------------------------ *)

let dc_static_variants = 24
let dc_unique_comm_leaves = 86

(* Heterogeneous cluster sizes (total 128 leaves): real clusters differ in
   size, which is what keeps the compressed network at a few dozen nodes
   rather than a handful. *)
let dc_leaf_counts = [ 20; 18; 17; 16; 16; 15; 14; 12 ]

let datacenter () =
  let dc =
    Generators.datacenter ~leaf_counts:dc_leaf_counts ~clusters:8 ~leaves:16
      ~spines:8 ~cores:5 ()
  in
  let g = dc.dc_graph in
  let leaf_rank = Hashtbl.create 128 in
  Array.iteri (fun i v -> Hashtbl.replace leaf_rank v i) dc.dc_leaves;
  let spine_set = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace spine_set v ()) dc.dc_spines;
  (* Service prefixes reached through per-leaf static routes; originated by
     the core layer so they form destination ECs. *)
  let service_prefix k = Prefix.make (Ipv4.of_octets 10 100 k 0) 24 in
  let leaf_acl : Acl.t = [ { permit = true; prefix = space } ] in
  (* Spines prefer routes learned from the leaf tier (the Figure 11
     "middle tier prefers bottom" policy). The extra preference level is
     what forces the forall-forall treatment of the spine tier, so the
     compressed network keeps per-cluster structure as the paper's
     operational datacenter does. *)
  let spine_from_leaf : Route_map.t =
    [
      {
        verdict = Permit;
        conds = [ Match_prefix [ space ] ];
        actions = [ Set_local_pref 150 ];
      };
    ]
  in
  let leaf_set = Hashtbl.create 128 in
  Array.iter (fun v -> Hashtbl.replace leaf_set v ()) dc.dc_leaves;
  let core_set = Hashtbl.create 8 in
  Array.iter (fun v -> Hashtbl.replace core_set v ()) dc.dc_cores;
  let routers =
    Array.init (Graph.n_nodes g) (fun v ->
        let r = Device.default_router (Graph.name g v) in
        match Hashtbl.find_opt leaf_rank v with
        | Some li ->
          (* Leaves: eBGP to spines with the space filter; 10 originated
             prefixes; a static-route variant; some leaves tag exports with
             a community nobody ever matches. *)
          let export_rm =
            if li < dc_unique_comm_leaves then
              Some
                [
                  {
                    Route_map.verdict = Permit;
                    conds = [];
                    actions = [ Add_community (1000 + li) ];
                  };
                ]
            else None
          in
          let nbrs =
            Array.to_list (Graph.succ g v)
            |> List.map (fun u ->
                   ( u,
                     {
                       Device.import_rm = Some space_filter;
                       export_rm;
                       ibgp = false;
                       rel = Device.Rel_unknown;
                     } ))
          in
          let first_spine =
            Array.to_list (Graph.succ g v)
            |> List.find (fun u -> Hashtbl.mem spine_set u)
          in
          {
            r with
            Device.bgp_neighbors = nbrs;
            originated = List.init 10 (fun k -> prefix_of_index ((li * 10) + k));
            static_routes =
              [ (service_prefix (li mod dc_static_variants), first_spine) ];
            acl_out =
              Array.to_list (Graph.succ g v) |> List.map (fun u -> (u, leaf_acl));
          }
        | None ->
          (* Spines: space filter towards cores, prefer-leaf-tier towards
             leaves. Cores: plain eBGP plus a uniform outbound ACL. *)
          let r =
            if Hashtbl.mem core_set v then
              let r = Device.ebgp_full ~import_rm:space_filter g v r in
              {
                r with
                Device.acl_out =
                  Array.to_list (Graph.succ g v)
                  |> List.map (fun u -> (u, leaf_acl));
              }
            else
              {
                r with
                Device.bgp_neighbors =
                  Array.to_list (Graph.succ g v)
                  |> List.map (fun u ->
                         let import_rm =
                           if Hashtbl.mem leaf_set u then spine_from_leaf
                           else space_filter
                         in
                         ( u,
                           {
                             Device.import_rm = Some import_rm;
                             export_rm = None;
                             ibgp = false;
                             rel = Device.Rel_unknown;
                           } ));
              }
          in
          let core_rank =
            let rec go i =
              if i >= Array.length dc.dc_cores then None
              else if dc.dc_cores.(i) = v then Some i
              else go (i + 1)
            in
            go 0
          in
          match core_rank with
          | Some ci ->
            (* Each core originates a share of the service prefixes. *)
            {
              r with
              Device.originated =
                List.init dc_static_variants Fun.id
                |> List.filter (fun k -> k mod Array.length dc.dc_cores = ci)
                |> List.map service_prefix;
            }
          | None -> r)
  in
  {
    net = { Device.graph = g; routers };
    description =
      "synthetic stand-in for the paper's 197-router datacenter \
       (8 Clos clusters + core, eBGP + static routes, ACLs, communities)";
  }

(* ------------------------------------------------------------------ *)
(* WAN: 62 backbone + 31 PoPs x 33 routers + 1 NOC = 1086.             *)
(* ------------------------------------------------------------------ *)

let wan_pops = 31
let wan_pop_size = 33
let wan_static_variants = 13

let wan () =
  let w = Generators.wan ~extra:1 ~pops:wan_pops ~pop_size:wan_pop_size ~seed:7 () in
  let g = w.wan_graph in
  let n = Graph.n_nodes g in
  let backbone_set = Hashtbl.create 64 in
  Array.iteri (fun i v -> Hashtbl.replace backbone_set v i) w.wan_backbone;
  let pop_rank = Hashtbl.create 1024 in
  Array.iteri (fun i v -> Hashtbl.replace pop_rank v i) w.wan_pop_routers;
  let aggs_per_pop = max 1 (wan_pop_size / 8) in
  let service_prefix s = Prefix.make (Ipv4.of_octets 10 250 s 0) 24 in
  let backbone_export p : Route_map.t =
    [
      {
        verdict = Deny;
        conds =
          [
            Match_prefix
              [ Prefix.make (Ipv4.of_octets 10 (200 + (p mod 21)) 0 0) 16 ];
          ];
        actions = [];
      };
      { verdict = Permit; conds = []; actions = [] };
    ]
  in
  (* Each PoP owns 10.<pop>.0.0/16; its access routers originate /24s
     inside it. Aggregation routers never accept their own PoP's prefixes
     back from the backbone: without this (realistic) filter, routes
     redistributed from a PoP's OSPF into BGP reflect off the backbone and
     BGP loop prevention makes symmetric aggregation routers diverge. *)
  let pop_prefix p = Prefix.make (Ipv4.of_octets 10 p 0 0) 16 in
  let access_prefix p i = Prefix.make (Ipv4.of_octets 10 p i 0) 24 in
  let agg_import c : Route_map.t =
    [
      { verdict = Deny; conds = [ Match_prefix [ pop_prefix c ] ]; actions = [] };
      {
        verdict = Deny;
        conds =
          [
            Match_prefix
              [ Prefix.make (Ipv4.of_octets 10 (150 + (c mod 15)) 0 0) 16 ];
          ];
        actions = [];
      };
      { verdict = Permit; conds = [ Match_prefix [ space ] ]; actions = [] };
    ]
  in
  let routers =
    Array.init n (fun v ->
        let r = Device.default_router (Graph.name g v) in
        match Hashtbl.find_opt backbone_set v with
        | Some bi ->
          (* Backbone: eBGP to backbone neighbors and PoP aggregates, iBGP
             to the pair partner. *)
          let pair = if bi mod 2 = 0 then bi + 1 else bi - 1 in
          let pair_node =
            if pair < Array.length w.wan_backbone then
              Some w.wan_backbone.(pair)
            else None
          in
          let pop_class = bi / 2 in
          let nbrs =
            Array.to_list (Graph.succ g v)
            |> List.map (fun u ->
                   let ibgp = pair_node = Some u in
                   ( u,
                     {
                       Device.import_rm = Some space_filter;
                       export_rm = Some (backbone_export pop_class);
                       ibgp;
                       rel = Device.Rel_unknown;
                     } ))
          in
          { r with Device.bgp_neighbors = nbrs }
        | None -> (
          match Hashtbl.find_opt pop_rank v with
          | None ->
            (* the NOC router: eBGP to the backbone; originates the
               statically-routed service prefixes *)
            let r =
              Device.ebgp_full ~import_rm:space_filter g v r
            in
            {
              r with
              Device.originated =
                List.init wan_static_variants service_prefix;
            }
          | Some pi ->
            let pop = pi / wan_pop_size and idx = pi mod wan_pop_size in
            if idx < aggs_per_pop then
              (* Aggregation router: eBGP to the backbone, OSPF towards the
                 access tier, redistribution both ways. *)
              let nbrs = Array.to_list (Graph.succ g v) in
              let bgp_neighbors =
                List.filter (fun u -> Hashtbl.mem backbone_set u) nbrs
                |> List.map (fun u ->
                       ( u,
                         {
                           Device.import_rm = Some (agg_import pop);
                           export_rm = None;
                           ibgp = false;
                           rel = Device.Rel_unknown;
                         } ))
              in
              let ospf_links =
                List.filter (fun u -> not (Hashtbl.mem backbone_set u)) nbrs
                |> List.map (fun u -> (u, { Device.cost = 1; area = pop + 1 }))
              in
              {
                r with
                Device.bgp_neighbors;
                ospf_links;
                ospf_area = pop + 1;
                redistribute = [ Multi.Ospf_into_bgp; Multi.Bgp_into_ospf ];
              }
            else
              (* Access router: OSPF only; originates a /24; a static-route
                 variant towards a service prefix; OSPF cost and ACL
                 variants. The variant index [h] is unique per access
                 router, so the (cost, static, ACL) combinations realize
                 their full product and the role population is rich (the
                 paper's WAN has 137 roles from neighbor-specific filters
                 and ACLs). *)
              let h = (pop * (wan_pop_size - aggs_per_pop)) + idx in
              let cost = 1 + (h mod 3) in
              let ospf_links =
                Array.to_list (Graph.succ g v)
                |> List.map (fun u -> (u, { Device.cost = cost; area = pop + 1 }))
              in
              let first_agg =
                Array.to_list (Graph.succ g v)
                |> List.find_opt (fun u ->
                       match Hashtbl.find_opt pop_rank u with
                       | Some pj -> pj mod wan_pop_size < aggs_per_pop
                       | None -> false)
              in
              let static_routes =
                match first_agg with
                | Some agg when h / 3 mod 2 = 0 ->
                  [ (service_prefix (h / 6 mod wan_static_variants), agg) ]
                | _ -> []
              in
              let acl_out =
                if h / 78 mod 2 = 0 then
                  Array.to_list (Graph.succ g v)
                  |> List.map (fun u ->
                         (u, [ { Acl.permit = true; prefix = space } ]))
                else []
              in
              {
                r with
                Device.ospf_links;
                ospf_area = pop + 1;
                originated = [ access_prefix pop idx ];
                static_routes;
                acl_out;
              }))
  in
  {
    net = { Device.graph = g; routers };
    description =
      "synthetic stand-in for the paper's 1086-device WAN \
       (backbone eBGP/iBGP, OSPF PoPs with redistribution, static routes)";
  }

(* ------------------------------------------------------------------ *)
(* Random configured networks for property-based testing.              *)
(* ------------------------------------------------------------------ *)

let random_network ~n ~seed =
  let g = Generators.random_connected ~n ~extra:(max 1 (n / 3)) ~seed in
  let rng = Random.State.make [| seed; 0xbeef |] in
  let import_pool : Route_map.t option array =
    [|
      None;
      Some
        [
          {
            verdict = Permit;
            conds = [ Match_community [ 1 ] ];
            actions = [ Set_local_pref 200 ];
          };
          { verdict = Permit; conds = []; actions = [] };
        ];
      Some
        [
          { verdict = Deny; conds = [ Match_community [ 2 ] ]; actions = [] };
          { verdict = Permit; conds = []; actions = [] };
        ];
      Some
        [
          {
            verdict = Permit;
            conds = [ Match_community [ 2 ] ];
            actions = [ Set_local_pref 50; Delete_community 2 ];
          };
          { verdict = Permit; conds = []; actions = [] };
        ];
    |]
  in
  let export_pool : Route_map.t option array =
    [|
      None;
      Some
        [ { verdict = Permit; conds = []; actions = [ Add_community 1 ] } ];
      Some
        [ { verdict = Permit; conds = []; actions = [ Add_community 2 ] } ];
    |]
  in
  let routers =
    Array.init n (fun v ->
        let r = Device.default_router (Graph.name g v) in
        let import_rm = import_pool.(Random.State.int rng (Array.length import_pool)) in
        let export_rm = export_pool.(Random.State.int rng (Array.length export_pool)) in
        let nbrs =
          Array.to_list (Graph.succ g v)
          |> List.map (fun u -> (u, { Device.import_rm; export_rm; ibgp = false; rel = Device.Rel_unknown }))
        in
        let r = { r with Device.bgp_neighbors = nbrs } in
        if v = 0 then { r with Device.originated = [ prefix_of_index 0 ] } else r)
  in
  { Device.graph = g; routers }

let random_multi_network ~n ~seed =
  let g = Generators.random_connected ~n ~extra:(max 1 (n / 3)) ~seed in
  let rng = Random.State.make [| seed; 0xd1ce |] in
  (* Nodes are split into a BGP region and an OSPF region; border nodes
     (BGP nodes with an OSPF neighbor) redistribute both ways. *)
  let in_bgp = Array.init n (fun v -> v = 0 || Random.State.bool rng) in
  let routers =
    Array.init n (fun v ->
        let r = Device.default_router (Graph.name g v) in
        let nbrs = Array.to_list (Graph.succ g v) in
        let bgp_neighbors =
          if not in_bgp.(v) then []
          else
            List.filter (fun u -> in_bgp.(u)) nbrs
            |> List.map (fun u ->
                   (u, { Device.import_rm = None; export_rm = None; ibgp = false; rel = Device.Rel_unknown }))
        in
        let ospf_links =
          if in_bgp.(v) then
            (* border routers also speak OSPF towards the OSPF region *)
            List.filter (fun u -> not in_bgp.(u)) nbrs
            |> List.map (fun u ->
                   (u, { Device.cost = 1 + Random.State.int rng 3; area = 0 }))
          else
            List.map
              (fun u -> (u, { Device.cost = 1 + Random.State.int rng 3; area = 0 }))
              nbrs
        in
        let redistribute =
          if in_bgp.(v) && ospf_links <> [] then
            [ Multi.Ospf_into_bgp; Multi.Bgp_into_ospf ]
          else []
        in
        let static_routes =
          match nbrs with
          | nh :: _ when Random.State.int rng 5 = 0 && v <> 0 ->
            [ (prefix_of_index 0, nh) ]
          | _ -> []
        in
        let r =
          {
            r with
            Device.bgp_neighbors;
            ospf_links;
            redistribute;
            static_routes;
          }
        in
        if v = 0 then { r with Device.originated = [ prefix_of_index 0 ] } else r)
  in
  { Device.graph = g; routers }

(* ------------------------------------------------------------------ *)
(* Multi-region WAN with module annotations, streamable region by      *)
(* region so the 10k-router modular benchmark never materializes the   *)
(* whole network.                                                      *)
(* ------------------------------------------------------------------ *)

let multiwan_external = Prefix.make (Ipv4.of_octets 10 254 0 0) 16
let multiwan_region_prefix k = Prefix.make (Ipv4.of_octets 10 (k mod 250) 0 0) 16
let multiwan_region_name k = Printf.sprintf "region%d" k

(* Access-router import variants: the filter classes below behave
   differently on the region's own prefix and on the external aggregate,
   so each region compresses to a handful of roles instead of one. *)
let multiwan_import k j : Route_map.t =
  match j with
  | 0 ->
    (* no external reachability from these access routers *)
    [
      { verdict = Deny; conds = [ Match_prefix [ multiwan_external ] ]; actions = [] };
      { verdict = Permit; conds = [ Match_prefix [ space ] ]; actions = [] };
    ]
  | 1 -> space_filter
  | _ ->
    (* refuse the region's own prefix back from a neighbor *)
    [
      { verdict = Deny;
        conds = [ Match_prefix [ multiwan_region_prefix k ] ];
        actions = [] };
      { verdict = Permit; conds = [ Match_prefix [ space ] ]; actions = [] };
    ]

let multiwan_check ~regions ~region_size =
  if regions < 1 || regions > 250 then
    invalid_arg "Synthesis.multiwan: regions must be in 1..250";
  if region_size < 3 then
    invalid_arg "Synthesis.multiwan: region_size must be >= 3"

(* One region's routers: nodes 0 and 1 are the gateways (the module
   boundary), 2.. are access routers hanging off both gateways in a
   chain. [succ] lists every topology neighbor inside the region; extra
   neighbors appended by the caller (core links, env stubs) are wired by
   the caller itself. *)
(* Dual-homed hub-and-spoke: every access router peers with both
   gateways and nothing else, so access routers sharing an import
   variant are exchangeable — the shape compression exploits (a chain
   would pin every router to its distance and compress not at all). *)
let multiwan_region_links ~base ~region_size =
  let link i j = (base + i, base + j) in
  let links = ref [ link 0 1 ] in
  for i = 2 to region_size - 1 do
    links := link i 0 :: link i 1 :: !links
  done;
  List.rev !links

let multiwan_region_router ~k g v ~idx =
  let name = multiwan_region_name k in
  let r = Device.default_router (Graph.name g v) in
  let import_rm =
    if idx < 2 then Some space_filter else Some (multiwan_import k (idx mod 3))
  in
  let r =
    {
      r with
      Device.bgp_neighbors =
        Array.to_list (Graph.succ g v)
        |> List.map (fun u ->
               ( u,
                 {
                   Device.import_rm;
                   export_rm = None;
                   ibgp = false;
                   rel = Device.Rel_unknown;
                 } ));
      module_name = Some name;
    }
  in
  if idx = 0 then { r with Device.originated = [ multiwan_region_prefix k ] }
  else r

(* The fully materialized network: [regions] annotated regions plus a
   core ring (module "core") carrying the external aggregate. *)
let multiwan ~regions ~region_size =
  multiwan_check ~regions ~region_size;
  let b = Graph.Builder.create () in
  for k = 0 to regions - 1 do
    for i = 0 to region_size - 1 do
      ignore (Graph.Builder.add_node b (Printf.sprintf "r%dn%d" k i))
    done
  done;
  let core = Array.init regions (fun k ->
      Graph.Builder.add_node b (Printf.sprintf "core%d" k))
  in
  for k = 0 to regions - 1 do
    List.iter
      (fun (u, v) -> Graph.Builder.add_link b u v)
      (multiwan_region_links ~base:(k * region_size) ~region_size);
    Graph.Builder.add_link b core.(k) (k * region_size);
    Graph.Builder.add_link b core.(k) ((k * region_size) + 1);
    if k > 0 then Graph.Builder.add_link b core.(k - 1) core.(k)
  done;
  if regions > 2 then Graph.Builder.add_link b core.(regions - 1) core.(0);
  let g = Graph.Builder.build b in
  let routers =
    Array.init (Graph.n_nodes g) (fun v ->
        if v < regions * region_size then
          let k = v / region_size and idx = v mod region_size in
          multiwan_region_router ~k g v ~idx
        else begin
          let k = v - (regions * region_size) in
          let r = Device.default_router (Graph.name g v) in
          let r =
            {
              r with
              Device.bgp_neighbors =
                Array.to_list (Graph.succ g v)
                |> List.map (fun u ->
                       ( u,
                         {
                           Device.import_rm = Some space_filter;
                           export_rm = None;
                           ibgp = false;
                           rel = Device.Rel_unknown;
                         } ));
              module_name = Some "core";
            }
          in
          if k = 0 then { r with Device.originated = [ multiwan_external ] }
          else r
        end)
  in
  {
    net = { Device.graph = g; routers };
    description =
      Printf.sprintf
        "multi-region WAN: %d annotated regions x %d routers + %d-router core \
         (eBGP, neighbor-specific filters, external aggregate)"
        regions region_size regions;
  }

(* The streaming form: one self-contained subnet per region, produced
   lazily. The core never materializes; its boundary is summarized as an
   [env] stub attached to both gateways that originates the external
   aggregate — the best route the region's boundary sessions would carry
   for every destination class outside the region. *)
let multiwan_stream ~regions ~region_size =
  multiwan_check ~regions ~region_size;
  let region k =
    let b = Graph.Builder.create () in
    for i = 0 to region_size - 1 do
      ignore (Graph.Builder.add_node b (Printf.sprintf "r%dn%d" k i))
    done;
    let env = Graph.Builder.add_node b (Printf.sprintf "r%denv" k) in
    List.iter
      (fun (u, v) -> Graph.Builder.add_link b u v)
      (multiwan_region_links ~base:0 ~region_size);
    Graph.Builder.add_link b env 0;
    Graph.Builder.add_link b env 1;
    let g = Graph.Builder.build b in
    let routers =
      Array.init (Graph.n_nodes g) (fun v ->
          if v < region_size then
            multiwan_region_router ~k g v ~idx:v
          else
            let r = Device.default_router (Graph.name g v) in
            {
              r with
              Device.bgp_neighbors =
                Array.to_list (Graph.succ g v)
                |> List.map (fun u ->
                       ( u,
                         {
                           Device.import_rm = Some space_filter;
                           export_rm = None;
                           ibgp = false;
                           rel = Device.Rel_unknown;
                         } ));
              originated = [ multiwan_external ];
            })
    in
    (multiwan_region_name k, { Device.graph = g; routers })
  in
  Seq.init regions region

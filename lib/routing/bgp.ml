type attr = { lp : int; med : int; comms : int list; path : int list }

let default_lp = 100
let init = { lp = default_lp; med = 0; comms = []; path = [] }

(* Higher local preference preferred, then shorter AS path, then lower
   MED, then a deterministic tie-break on the {e policy-relevant} subset of
   the community set ([tie_filter], standing in for BGP's deterministic
   best-path selection; restricting it to communities some policy can
   observe keeps it commuting with the attribute abstraction h, preserving
   rank-equivalence). Routes differing only in their AS path remain ties
   (≈), enabling multipath. *)
let compare_with ~tie_filter a b =
  match Int.compare b.lp a.lp with
  | 0 -> (
    match Int.compare (List.length a.path) (List.length b.path) with
    | 0 -> (
      match Int.compare a.med b.med with
      | 0 ->
        List.compare Int.compare
          (List.filter tie_filter a.comms)
          (List.filter tie_filter b.comms)
      | c -> c)
    | c -> c)
  | c -> c

let compare a b = compare_with ~tie_filter:(fun _ -> true) a b

let equal a b =
  Int.equal a.lp b.lp && Int.equal a.med b.med
  && List.equal Int.equal a.comms b.comms
  && List.equal Int.equal a.path b.path

let rec add_sorted x = function
  | [] -> [ x ]
  | y :: rest as l ->
    if x < y then x :: l else if x = y then l else y :: add_sorted x rest

let add_comm c a = { a with comms = add_sorted c a.comms }

let del_comm c a =
  { a with comms = List.filter (fun x -> not (Int.equal x c)) a.comms }

let has_comm c a = List.exists (Int.equal c) a.comms

type policy = attr -> attr option

let pp ppf a =
  Format.fprintf ppf "(%d, {%a}, [%a])" a.lp
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    a.comms
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    a.path

let make ?(loop_prevention = true) ?(init = init)
    ?(tie_filter = fun _ -> true) ~policy graph ~dest =
  {
    Srp.graph;
    dest;
    init;
    compare = compare_with ~tie_filter;
    trans =
      (fun u v a ->
        match a with
        | None -> None
        | Some a ->
          let path = v :: a.path in
          if loop_prevention && List.exists (Int.equal u) path then None
          else policy u v { a with path });
    attr_equal = equal;
    pp_attr = pp;
  }

type attr = { cost : int; inter_area : bool }

let compare a b =
  match Bool.compare a.inter_area b.inter_area with
  | 0 -> Int.compare a.cost b.cost
  | c -> c

let equal a b =
  Int.equal a.cost b.cost && Bool.equal a.inter_area b.inter_area

let pp ppf a =
  Format.fprintf ppf "%d%s" a.cost (if a.inter_area then "(inter)" else "")

let make ?(cost = fun _ _ -> 1) ?(area = fun _ -> 0) graph ~dest =
  {
    Srp.graph;
    dest;
    init = { cost = 0; inter_area = false };
    compare;
    trans =
      (fun u v a ->
        match a with
        | None -> None
        | Some a ->
          let c = cost u v in
          if c <= 0 then invalid_arg "Ospf: link costs must be positive";
          Some
            {
              cost = a.cost + c;
              inter_area = a.inter_area || not (Int.equal (area u) (area v));
            });
    attr_equal = equal;
    pp_attr = pp;
  }

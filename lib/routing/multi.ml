type proto = P_static | P_ospf | P_ebgp | P_ibgp

let proto_equal a b =
  match (a, b) with
  | P_static, P_static | P_ospf, P_ospf | P_ebgp, P_ebgp | P_ibgp, P_ibgp ->
    true
  | (P_static | P_ospf | P_ebgp | P_ibgp), _ -> false

let proto_name = function
  | P_static -> "static"
  | P_ospf -> "ospf"
  | P_ebgp -> "ebgp"
  | P_ibgp -> "ibgp"

let admin_distance = function
  | P_static -> 1
  | P_ebgp -> 20
  | P_ospf -> 110
  | P_ibgp -> 200

type bgp_route = { battr : Bgp.attr; via_ibgp : bool }

type attr = {
  static_ : bool;
  ospf : Ospf.attr option;
  bgp : bgp_route option;
}

let bgp_proto b = if b.via_ibgp then P_ibgp else P_ebgp

let selected a =
  let candidates =
    (if a.static_ then [ P_static ] else [])
    @ (match a.ospf with Some _ -> [ P_ospf ] | None -> [])
    @ (match a.bgp with Some b -> [ bgp_proto b ] | None -> [])
  in
  match candidates with
  | [] -> invalid_arg "Multi.selected: empty attribute"
  | p :: rest ->
    List.fold_left
      (fun best q -> if admin_distance q < admin_distance best then q else best)
      p rest

let compare_with ~tie_filter a b =
  let pa = selected a and pb = selected b in
  match Int.compare (admin_distance pa) (admin_distance pb) with
  | 0 -> (
    match pa with
    | P_static -> 0
    | P_ospf -> (
      match (a.ospf, b.ospf) with
      | Some x, Some y -> Ospf.compare x y
      | _ -> assert false)
    | P_ebgp | P_ibgp -> (
      match (a.bgp, b.bgp) with
      | Some x, Some y -> Bgp.compare_with ~tie_filter x.battr y.battr
      | _ -> assert false))
  | c -> c

let compare a b = compare_with ~tie_filter:(fun _ -> true) a b

let bgp_route_equal a b =
  Bgp.equal a.battr b.battr && Bool.equal a.via_ibgp b.via_ibgp

let equal a b =
  Bool.equal a.static_ b.static_
  && Option.equal Ospf.equal a.ospf b.ospf
  && Option.equal bgp_route_equal a.bgp b.bgp

type redistribution = Ospf_into_bgp | Static_into_bgp | Bgp_into_ospf

let redistribution_equal a b =
  match (a, b) with
  | Ospf_into_bgp, Ospf_into_bgp
  | Static_into_bgp, Static_into_bgp
  | Bgp_into_ospf, Bgp_into_ospf ->
    true
  | (Ospf_into_bgp | Static_into_bgp | Bgp_into_ospf), _ -> false

let pp ppf a =
  let parts = ref [] in
  (match a.bgp with
  | Some b ->
    parts :=
      Format.asprintf "%s:%a" (if b.via_ibgp then "ibgp" else "ebgp") Bgp.pp b.battr
      :: !parts
  | None -> ());
  (match a.ospf with
  | Some o -> parts := Format.asprintf "ospf:%a" Ospf.pp o :: !parts
  | None -> ());
  if a.static_ then parts := "static" :: !parts;
  Format.fprintf ppf "{%s | sel=%s}"
    (String.concat "; " !parts)
    (proto_name (selected a))

let make ?(ospf_cost = fun _ _ -> 1) ?(ospf_area = fun _ -> 0)
    ?(ospf_enabled = fun _ _ -> true) ?(bgp_enabled = fun _ _ -> true)
    ?(ibgp = fun _ _ -> false) ?(bgp_policy = fun _ _ a -> Some a)
    ?(static_routes = []) ?(redistribute = fun _ -> [])
    ?(bgp_tie_filter = fun _ -> true)
    ?(origin_protocols = [ P_ospf; P_ebgp ]) graph ~dest =
  let static_set = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      if not (Graph.has_edge graph u v) then
        invalid_arg "Multi.make: static route along a missing edge";
      Hashtbl.replace static_set (u, v) ())
    static_routes;
  let originates p = List.exists (proto_equal p) origin_protocols in
  let init =
    {
      static_ = originates P_static;
      ospf =
        (if originates P_ospf then Some { Ospf.cost = 0; inter_area = false }
         else None);
      bgp =
        (if originates P_ebgp then Some { battr = Bgp.init; via_ibgp = false }
         else None);
    }
  in
  let trans u v a =
    let static' = Hashtbl.mem static_set (u, v) in
    (* Redistribution into OSPF at the advertising node [v]: if [v] holds a
       BGP route but no OSPF route, it may originate one. *)
    let ospf_raw = Option.bind a (fun x -> x.ospf) in
    let ospf_in =
      match ospf_raw with
      | Some o -> Some o
      | None ->
        if
          List.exists (redistribution_equal Bgp_into_ospf) (redistribute v)
          && Option.is_some (Option.bind a (fun x -> x.bgp))
        then Some { Ospf.cost = 0; inter_area = false }
        else None
    in
    let ospf' =
      match ospf_in with
      | Some o when ospf_enabled u v ->
        Some
          {
            Ospf.cost = o.Ospf.cost + ospf_cost u v;
            inter_area =
              o.Ospf.inter_area
              || not (Int.equal (ospf_area u) (ospf_area v));
          }
      | _ -> None
    in
    (* Redistribution happens at the advertising node [v]: if [v] has no
       BGP route but holds a redistributable one, it originates a fresh
       BGP announcement. *)
    let bgp_at_v =
      match Option.bind a (fun x -> x.bgp) with
      | Some b -> Some b
      | None ->
        let rs = redistribute v in
        let have_ospf = Option.is_some ospf_raw in
        let have_static = match a with Some x -> x.static_ | None -> false in
        if
          (List.exists (redistribution_equal Ospf_into_bgp) rs && have_ospf)
          || List.exists (redistribution_equal Static_into_bgp) rs
             && have_static
        then Some { battr = Bgp.init; via_ibgp = false }
        else None
    in
    let bgp' =
      match bgp_at_v with
      | Some b when bgp_enabled u v ->
        if ibgp u v then
          if b.via_ibgp then None (* no re-advertisement over iBGP *)
          else
            Option.map
              (fun battr -> { battr; via_ibgp = true })
              (bgp_policy u v b.battr)
        else
          let path = v :: b.battr.Bgp.path in
          if List.exists (Int.equal u) path then None
          else
            Option.map
              (fun battr -> { battr; via_ibgp = false })
              (bgp_policy u v { b.battr with Bgp.path })
      | _ -> None
    in
    if static' || Option.is_some ospf' || Option.is_some bgp' then
      Some { static_ = static'; ospf = ospf'; bgp = bgp' }
    else None
  in
  {
    Srp.graph;
    dest;
    init;
    compare = compare_with ~tie_filter:bgp_tie_filter;
    trans;
    attr_equal = equal;
    pp_attr = pp;
  }

(** eBGP (path vector, paper §3.2 and Figure 5).

    Attributes are tuples of a local-preference value, a set of community
    tags and the AS path (we give every router its own AS number, as in
    large data centers; see the paper). The comparison relation prefers
    higher local preference, then shorter AS paths, then lower MED. The
    transfer function appends the sending neighbor to the AS path, drops
    the route if the receiving node already occurs in it (BGP's implicit
    loop prevention — the feature that makes plain transfer-equivalence
    unattainable, §4.3), and then applies the configured per-edge policy. *)

type attr = {
  lp : int;  (** local preference; higher is preferred (default 100) *)
  med : int;  (** multi-exit discriminator; lower is preferred *)
  comms : int list;  (** community tags, sorted ascending, no duplicates *)
  path : int list;  (** AS path, nearest hop first; excludes the owner *)
}

val default_lp : int
(** 100. *)

val init : attr
(** The destination's announcement [(100, ∅, [])]. *)

val compare : attr -> attr -> int
(** Negative means preferred. Ties (0) are the paper's [≈] and permit
    multipath forwarding. After local preference, path length and MED, a
    deterministic tie-break on the community set stands in for BGP's
    deterministic best-path selection. *)

val compare_with : tie_filter:(int -> bool) -> attr -> attr -> int
(** Like {!compare} but the community tie-break only sees communities
    satisfying [tie_filter] (in compiled networks: communities some policy
    actually matches on, so ranking commutes with the attribute
    abstraction [h]). *)

val equal : attr -> attr -> bool
(** Typed structural equality (never polymorphic [=]). *)

val add_comm : int -> attr -> attr
val del_comm : int -> attr -> attr
val has_comm : int -> attr -> bool

type policy = attr -> attr option
(** A per-edge routing policy, already specialized to a destination:
    import/export filters composed. [None] means the route is filtered. *)

val make :
  ?loop_prevention:bool ->
  ?init:attr ->
  ?tie_filter:(int -> bool) ->
  policy:(int -> int -> policy) ->
  Graph.t ->
  dest:int ->
  attr Srp.t
(** [make ~policy g ~dest]: [policy u v] is the policy applied to routes
    received at [u] from neighbor [v] (after the AS-path append and loop
    check). [loop_prevention] defaults to [true]; disabling it yields the
    idealized BGP of Theorem 4.2/Corollary A.1 used in tests. *)

val pp : Format.formatter -> attr -> unit

(** Multi-protocol routing (paper §6): a single SRP whose attributes are
    products of the per-protocol attributes plus the main RIB selection.

    Each attribute carries the node's static-route presence, its OSPF route
    and its BGP route (with an iBGP marker); the comparison relation selects
    by administrative distance of the best available protocol and then by
    that protocol's own order. Route redistribution injects routes from one
    protocol into another inside the transfer function, following Batfish's
    treatment as the paper describes.

    iBGP follows the paper's §6 discussion: iBGP sessions do not extend the
    AS path, and routes learned over iBGP are not re-advertised to other
    iBGP neighbors (so iBGP session edges can never form usable loops). *)

type proto = P_static | P_ospf | P_ebgp | P_ibgp

val proto_equal : proto -> proto -> bool

val proto_name : proto -> string
(** ["static"], ["ospf"], ["ebgp"], ["ibgp"] (for reporting). *)

val admin_distance : proto -> int
(** Static 1, eBGP 20, OSPF 110, iBGP 200 (Cisco-style defaults). *)

type bgp_route = { battr : Bgp.attr; via_ibgp : bool }

type attr = {
  static_ : bool;
  ospf : Ospf.attr option;
  bgp : bgp_route option;
}
(** Invariant: at least one component is present. *)

val selected : attr -> proto
(** The protocol the main RIB selects (least administrative distance among
    present components). *)

val compare : attr -> attr -> int

val compare_with : tie_filter:(int -> bool) -> attr -> attr -> int
(** Community tie-break restricted as in {!Bgp.compare_with}. *)

val equal : attr -> attr -> bool
(** Typed structural equality (never polymorphic [=]). *)

type redistribution = Ospf_into_bgp | Static_into_bgp | Bgp_into_ospf

val redistribution_equal : redistribution -> redistribution -> bool

val make :
  ?ospf_cost:(int -> int -> int) ->
  ?ospf_area:(int -> int) ->
  ?ospf_enabled:(int -> int -> bool) ->
  ?bgp_enabled:(int -> int -> bool) ->
  ?ibgp:(int -> int -> bool) ->
  ?bgp_policy:(int -> int -> Bgp.policy) ->
  ?static_routes:(int * int) list ->
  ?redistribute:(int -> redistribution list) ->
  ?bgp_tie_filter:(int -> bool) ->
  ?origin_protocols:proto list ->
  Graph.t ->
  dest:int ->
  attr Srp.t
(** Per-edge predicates receive [(u, v)] with [u] the receiving node.
    [ospf_enabled]/[bgp_enabled] default to all edges; [ibgp] to none;
    [bgp_policy] to accept-unchanged; [origin_protocols] (which protocols
    the destination originates into) defaults to OSPF and eBGP. *)

val pp : Format.formatter -> attr -> unit

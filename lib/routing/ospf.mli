(** OSPF (link state, paper §3.2): attributes are path costs, optionally
    tagged as inter-area. Intra-area routes are preferred over inter-area
    routes, then lower cost wins. The transfer function adds the configured
    link cost and marks the inter-area bit when an edge crosses areas. *)

type attr = { cost : int; inter_area : bool }

val compare : attr -> attr -> int

val equal : attr -> attr -> bool
(** Typed structural equality (never polymorphic [=]). *)

val make :
  ?cost:(int -> int -> int) ->
  ?area:(int -> int) ->
  Graph.t ->
  dest:int ->
  attr Srp.t
(** [make ~cost ~area g ~dest]. [cost u v] is the configured cost of the
    link as seen by receiver [u] (default 1); [area n] assigns each node to
    an OSPF area (default: single area 0). An edge is inter-area when its
    endpoints' areas differ; once a route is inter-area it stays so. *)

val pp : Format.formatter -> attr -> unit

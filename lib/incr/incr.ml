type state = {
  mutable net : Device.network;
  mutable cache : Sig_cache.t;
  mutable results : Bonsai_api.ec_result list;
  mutable skipped_anycast : int;
  mutable bdd_time_s : float;
  mutable degradation : Bonsai_api.degradation option;
  pinned_names : string list;
  cache_cap : int option;
}

type report = {
  r_deltas : int;
  r_ecs : int;
  r_reused : int;
  r_seeded : int;
  r_scratch : int;
  r_full_rebuild : bool;
  r_recertified : int;
  r_recert_refuted : int;
  r_cache_hits : int;
  r_cache_misses : int;
  r_time_s : float;
  r_degradation : Bonsai_api.degradation option;
}

let resolve_pins (net : Device.network) names =
  List.filter_map (Graph.find_by_name net.Device.graph) names
  |> List.sort_uniq Int.compare

let single_origin_ec (ec : Ecs.ec) =
  match ec.Ecs.ec_origins with [ _ ] -> true | _ -> false

let compute_scratch ~cache ~pinned ~budget net (ec : Ecs.ec) =
  Bonsai_api.compress_ec_exn
    ~universe:(Sig_cache.universe cache)
    ~rm_bdd:(Sig_cache.rm_bdd cache ~dest:ec.Ecs.ec_prefix)
    ~pinned ~budget net ec

let identity_ec ~identity_of (ec : Ecs.ec) =
  let t0 = Timing.now () in
  let abstraction =
    Lazy.force identity_of ~dest:(Ecs.single_origin ec)
      ~dest_prefix:ec.Ecs.ec_prefix
  in
  {
    Bonsai_api.ec;
    abstraction;
    refine_stats = { Refine.iterations = 0; splits = 0 };
    time_s = Timing.now () -. t0;
    degraded = true;
  }

(* Sequential per-class loop with the same degradation contract as
   [Bonsai_api.compress]: the class that exhausts the budget and every
   remaining class fall back to the identity abstraction. *)
let run_ecs ~budget:_ net ecs worker =
  let total = List.length ecs in
  let identity_of =
    lazy
      (Abstraction.identity_family net
         ~universe:(Policy_bdd.universe_of_network net))
  in
  let acc = ref [] and degradation = ref None in
  let rec go = function
    | [] -> ()
    | ec :: rest -> (
      match worker ec with
      | r ->
        acc := r :: !acc;
        go rest
      | exception Budget.Exhausted info ->
        degradation :=
          Some
            {
              Bonsai_api.deg_info = info;
              deg_completed = List.length !acc;
              deg_total = total;
            };
        List.iter
          (fun ec -> acc := identity_ec ~identity_of ec :: !acc)
          (ec :: rest))
  in
  go ecs;
  (List.rev !acc, !degradation)

(* ------------------------------------------------------------------ *)
(* Seeded refinement. [Refine.find_partition ~seed] only splits, so from
   the stale partition it reaches the coarsest STABLE refinement F of the
   seed under the new signatures — possibly finer than the true coarsest
   stable partition P' when the change allowed classes to re-merge. F
   being stable, each of its classes has a uniform signature key, so we
   run the same refinement on the QUOTIENT (one element per F-class, key
   taken from a representative member) and merge F-classes that share a
   quotient block. Both the lifted quotient fixpoint and P' are the
   coarsest stable coarsening of F refining {dest}|{pins}|rest, hence
   equal — the seeded result matches from-scratch exactly (DESIGN.md
   §12). Pinned classes enter the quotient as singletons and are never
   merged. *)
let quotient_merge part (net : Device.network) ~dest ~signature ~pinned
    ~budget =
  let g = net.Device.graph in
  let cls_ids = Union_split_find.class_ids part in
  let m = List.length cls_ids in
  if m > 1 then begin
    let idx_of = Hashtbl.create m in
    let rep = Array.make m 0 in
    List.iteri
      (fun i c ->
        Hashtbl.replace idx_of c i;
        rep.(i) <- List.hd (Union_split_find.members part c))
      cls_ids;
    let q = Union_split_find.create m in
    let qidx u = Hashtbl.find idx_of (Union_split_find.find part u) in
    ignore (Union_split_find.pin q (qidx dest));
    List.iter (fun u -> ignore (Union_split_find.pin q (qidx u))) pinned;
    let key i =
      let u = rep.(i) in
      Array.to_list (Graph.succ g u)
      |> List.map (fun v ->
             (signature u v, signature v u, Union_split_find.find q (qidx v)))
      |> List.sort_uniq compare
    in
    let changed = ref true in
    while !changed do
      Budget.tick budget ~phase:"quotient-merge";
      changed := Union_split_find.refine_all q ~key
    done;
    Union_split_find.iter_classes q (fun _ block ->
        match block with
        | [] | [ _ ] -> ()
        | i0 :: rest ->
          List.iter
            (fun i -> ignore (Union_split_find.merge part rep.(i0) rep.(i)))
            rest)
  end

let seeded_compress ~cache ~pinned ~budget net (ec : Ecs.ec)
    (old_r : Bonsai_api.ec_result) =
  let t0 = Timing.now () in
  let dest = Ecs.single_origin ec in
  let universe = Sig_cache.universe cache in
  let rm_bdd = Sig_cache.rm_bdd cache ~dest:ec.Ecs.ec_prefix in
  Bdd.set_budget universe.Policy_bdd.man budget;
  Fun.protect ~finally:(fun () ->
      Bdd.set_budget universe.Policy_bdd.man Budget.infinite)
  @@ fun () ->
  let _, signature =
    Compile.edge_signatures ~universe ~rm_bdd net ~dest:ec.Ecs.ec_prefix
  in
  (* seedability guarantees every node sits at the default preference *)
  let prefs _ = [ Bgp.default_lp ] in
  let live_self u v = (signature u v).Compile.sig_static in
  let seed =
    Union_split_find.of_class_array
      old_r.Bonsai_api.abstraction.Abstraction.group_of
  in
  let part, refine_stats =
    Refine.find_partition net ~dest ~live_self ~pinned ~seed ~budget
      ~signature ~prefs
  in
  quotient_merge part net ~dest ~signature ~pinned ~budget;
  let abstraction =
    Abstraction.make net ~dest ~dest_prefix:ec.Ecs.ec_prefix ~universe
      ~partition:part
      ~copies:(fun _ -> 1)
  in
  {
    Bonsai_api.ec;
    abstraction;
    refine_stats;
    time_s = Timing.now () -. t0;
    degraded = false;
  }

(* ------------------------------------------------------------------ *)
(* Seedability: the seeded path replays refinement with the trivial
   preference function and one abstract copy per class, which is only
   the from-scratch behavior when (a) every router's effective
   preference set is exactly {default} and (b) no router has a static
   route covering the destination (so live-self-edge peeling is a
   no-op). *)

let no_lp_no_redistribute (net : Device.network) =
  let clause_sets_lp (cl : Route_map.clause) =
    List.exists
      (function Route_map.Set_local_pref _ -> true | _ -> false)
      cl.Route_map.actions
  in
  let rm_sets_lp = function
    | None -> false
    | Some rm -> List.exists clause_sets_lp rm
  in
  Array.for_all
    (fun (r : Device.router) ->
      r.Device.redistribute = []
      && List.for_all
           (fun (_, (nb : Device.bgp_neighbor)) ->
             not (rm_sets_lp nb.Device.import_rm))
           r.Device.bgp_neighbors)
    net.Device.routers

let ec_seedable ~prefs_trivial (net : Device.network) (ec : Ecs.ec) =
  let statics_clear =
    Array.for_all
      (fun (r : Device.router) ->
        r.Device.static_routes = []
        || Device.static_next_hops r ~dest:ec.Ecs.ec_prefix = [])
      net.Device.routers
  in
  statics_clear
  && (prefs_trivial
     ||
     let n = Array.length net.Device.routers in
     let ok = ref true in
     for u = 0 to n - 1 do
       if !ok && Bonsai_api.effective_prefs net ec u <> [ Bgp.default_lp ]
       then ok := false
     done;
     !ok)

(* Clean-class check: every refinement input is unchanged. Signatures of
   the old and the new network are compared through the SAME cache, so
   BDD ids are directly comparable; only edges incident to touched
   routers are queried (a signature depends only on its two endpoints'
   configurations). *)
let solution_unchanged ~old_net ~new_net ~cache ~touched (ec : Ecs.ec) =
  let dest = Ecs.single_origin ec in
  (not (List.mem dest touched))
  (* signatures are local to their endpoints ONLY while the class's
     OSPF-liveness (a whole-network property) is stable across the
     delta; a flip changes signatures on OSPF edges anywhere *)
  && Compile.ospf_live old_net ~dest:ec.Ecs.ec_prefix
     = Compile.ospf_live new_net ~dest:ec.Ecs.ec_prefix
  &&
  let universe = Sig_cache.universe cache in
  let rm_bdd = Sig_cache.rm_bdd cache ~dest:ec.Ecs.ec_prefix in
  let _, sig_old =
    Compile.edge_signatures ~universe ~rm_bdd old_net ~dest:ec.Ecs.ec_prefix
  in
  let _, sig_new =
    Compile.edge_signatures ~universe ~rm_bdd new_net ~dest:ec.Ecs.ec_prefix
  in
  List.for_all
    (fun u ->
      Bonsai_api.effective_prefs old_net ec u
      = Bonsai_api.effective_prefs new_net ec u
      && Array.for_all
           (fun v -> sig_old u v = sig_new u v && sig_old v u = sig_new v u)
           (Graph.succ new_net.Device.graph u))
    touched

let unchanged_ec ~old_net ~new_net ~cache ~touched (ec : Ecs.ec)
    (old_r : Bonsai_api.ec_result) =
  old_r.Bonsai_api.ec.Ecs.ec_origins = ec.Ecs.ec_origins
  && solution_unchanged ~old_net ~new_net ~cache ~touched ec

(* ------------------------------------------------------------------ *)

let init ?(pinned = []) ?cache_cap ?universe ?(budget = Budget.infinite)
    (net : Device.network) =
  Bonsai_error.protect @@ fun () ->
  (match Device.validate net with
  | Ok () -> ()
  | Error m -> Bonsai_error.error (Bonsai_error.Compile_error m));
  let cache, bdd_time_s =
    Timing.time (fun () -> Sig_cache.create ?max_entries:cache_cap ?universe net)
  in
  let n = Graph.n_nodes net.Device.graph in
  let pinned_names =
    List.filter_map
      (fun i ->
        if i >= 0 && i < n then Some (Graph.name net.Device.graph i) else None)
      pinned
    |> List.sort_uniq String.compare
  in
  let pins = resolve_pins net pinned_names in
  let singles, anycast =
    List.partition single_origin_ec (Ecs.compute net)
  in
  let results, degradation =
    run_ecs ~budget net singles (fun ec ->
        compute_scratch ~cache ~pinned:pins ~budget net ec)
  in
  {
    net;
    cache;
    results;
    skipped_anycast = List.length anycast;
    bdd_time_s;
    degradation;
    pinned_names;
    cache_cap;
  }

let recompress ?(budget = Budget.infinite) ?recertify st deltas =
  Bonsai_error.protect @@ fun () ->
  let t0 = Timing.now () in
  let old_net = st.net in
  let net' =
    try Delta.apply old_net deltas
    with Invalid_argument m ->
      Bonsai_error.error (Bonsai_error.Compile_error m)
  in
  (match Device.validate net' with
  | Ok () -> ()
  | Error m -> Bonsai_error.error (Bonsai_error.Compile_error m));
  let node_change = List.exists Delta.is_node_change deltas in
  let compatible = Sig_cache.compatible st.cache net' in
  let full = node_change || not compatible in
  let cache, bdd_time_s =
    if compatible then (st.cache, st.bdd_time_s)
    else
      let c, t =
        Timing.time (fun () ->
            Sig_cache.create ?max_entries:st.cache_cap net')
      in
      (c, t)
  in
  let hits0, misses0 = Sig_cache.stats cache in
  let pinned = resolve_pins net' st.pinned_names in
  let singles, anycast =
    List.partition single_origin_ec (Ecs.compute net')
  in
  let reused = ref 0 and seeded = ref 0 and scratch = ref 0 in
  let recertified = ref 0 and recert_refuted = ref 0 in
  let worker =
    if full then fun ec ->
      let r = compute_scratch ~cache ~pinned ~budget net' ec in
      incr scratch;
      r
    else begin
      let touched =
        List.concat_map (Delta.touched net') deltas
        |> List.sort_uniq Int.compare
      in
      let has_topo = List.exists Delta.is_topology deltas in
      let prefs_trivial = no_lp_no_redistribute net' in
      let old_by_prefix = Hashtbl.create 64 in
      List.iter
        (fun (r : Bonsai_api.ec_result) ->
          Hashtbl.replace old_by_prefix r.Bonsai_api.ec.Ecs.ec_prefix r)
        st.results;
      (* the audit must not share BDD state with the engine under audit:
         one fresh universe per recompression, built only if a reused or
         seeded candidate actually reaches the checker *)
      let audit_universe = lazy (Policy_bdd.universe_of_network net') in
      let recert ec counter (r : Bonsai_api.ec_result) =
        match recertify with
        | None ->
          incr counter;
          r
        | Some audit -> (
          match
            Certify.check_result ~budget
              ~universe:(Lazy.force audit_universe) ~audit net' r
          with
          | Certify.Certified _ ->
            incr counter;
            incr recertified;
            r
          | Certify.Audit_incomplete _ ->
            incr counter;
            r
          | Certify.Refuted _ ->
            incr recert_refuted;
            let r = compute_scratch ~cache ~pinned ~budget net' ec in
            incr scratch;
            r)
      in
      fun ec ->
        match Hashtbl.find_opt old_by_prefix ec.Ecs.ec_prefix with
        | Some old_r
          when (not old_r.Bonsai_api.degraded)
               && (not has_topo)
               && unchanged_ec ~old_net ~new_net:net' ~cache ~touched ec
                    old_r ->
          recert ec reused old_r
        | Some old_r
          when (not old_r.Bonsai_api.degraded)
               && old_r.Bonsai_api.ec.Ecs.ec_origins = ec.Ecs.ec_origins
               && ec_seedable ~prefs_trivial net' ec ->
          recert ec seeded
            (seeded_compress ~cache ~pinned ~budget net' ec old_r)
        | _ ->
          let r = compute_scratch ~cache ~pinned ~budget net' ec in
          incr scratch;
          r
    end
  in
  let results, degradation = run_ecs ~budget net' singles worker in
  let hits1, misses1 = Sig_cache.stats cache in
  st.net <- net';
  st.cache <- cache;
  st.results <- results;
  st.skipped_anycast <- List.length anycast;
  st.bdd_time_s <- bdd_time_s;
  st.degradation <- degradation;
  {
    r_deltas = List.length deltas;
    r_ecs = List.length singles;
    r_reused = !reused;
    r_seeded = !seeded;
    r_scratch = !scratch;
    r_full_rebuild = full;
    r_recertified = !recertified;
    r_recert_refuted = !recert_refuted;
    r_cache_hits = hits1 - hits0;
    r_cache_misses = misses1 - misses0;
    r_time_s = Timing.now () -. t0;
    r_degradation = degradation;
  }

let recompress_net ?budget ?recertify st net' =
  let deltas = Delta.diff st.net net' in
  match recompress ?budget ?recertify st deltas with
  | Ok r -> Ok (deltas, r)
  | Error e -> Error e

let network st = st.net
let sig_cache st = st.cache

let summary st =
  {
    Bonsai_api.net = st.net;
    bdd_time_s = st.bdd_time_s;
    results = st.results;
    skipped_anycast = st.skipped_anycast;
    degradation = st.degradation;
  }

let cache_stats st = Sig_cache.stats st.cache
let cache_evictions st = Sig_cache.evictions st.cache
let bdd_stats st = Sig_cache.bdd_stats st.cache

(* A state read back from a checkpoint (Marshal) carries copies of
   whatever [Budget.t] values were installed in its BDD managers; a copy
   of [Budget.infinite] is no longer physically equal to it, so the
   managers would pay per-tick bookkeeping forever (and report nonsense
   elapsed times from a dead process's start stamp). Re-install the real
   shared [infinite] everywhere. *)
let rearm st =
  Bdd.set_budget (Sig_cache.universe st.cache).Policy_bdd.man Budget.infinite;
  List.iter
    (fun (r : Bonsai_api.ec_result) ->
      Bdd.set_budget
        r.Bonsai_api.abstraction.Abstraction.universe.Policy_bdd.man
        Budget.infinite)
    st.results

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>deltas applied: %d@,\
     classes: %d (%d reused, %d seeded, %d scratch)%s@,\
     signature cache: %d hits, %d misses@,\
     time: %.3fs@]"
    r.r_deltas r.r_ecs r.r_reused r.r_seeded r.r_scratch
    (if r.r_full_rebuild then " [full rebuild]" else "")
    r.r_cache_hits r.r_cache_misses r.r_time_s;
  if r.r_recertified > 0 || r.r_recert_refuted > 0 then
    Format.fprintf ppf "@,re-certified: %d (%d refuted, recomputed)"
      r.r_recertified r.r_recert_refuted;
  match r.r_degradation with
  | None -> ()
  | Some d -> Format.fprintf ppf "@,%a" Bonsai_api.pp_degradation d

type dir = Import | Export

type t =
  | Link_up of string * string
  | Link_down of string * string
  | Node_add of string
  | Node_remove of string
  | Ospf_cost of { node : string; nbr : string; cost : int }
  | Ospf_link_set of {
      node : string;
      nbr : string;
      link : Device.ospf_link option;
    }
  | Ospf_area_set of { node : string; area : int }
  | Route_map_set of {
      node : string;
      nbr : string;
      dir : dir;
      rm : Route_map.t option;
    }
  | Bgp_neighbor_set of {
      node : string;
      nbr : string;
      config : Device.bgp_neighbor option;
    }
  | Acl_set of { node : string; nbr : string; acl : Acl.t option }
  | Static_set of { node : string; routes : (Prefix.t * string) list }
  | Originate_set of { node : string; prefixes : Prefix.t list }
  | Redistribute_set of {
      node : string;
      redistribute : Multi.redistribution list;
    }

(* ------------------------------------------------------------------ *)
(* Normalized named form: routers keyed by name, neighbor references by
   name, every list canonically sorted — so semantic equality of two
   networks is structural equality of their named forms, independent of
   node numbering and list order. *)

type nrouter = {
  nbgp : (string * Device.bgp_neighbor) list;
  nospf : (string * Device.ospf_link) list;
  narea : int;
  nstatic : (Prefix.t * string) list;
  nacl : (string * Acl.t) list;
  norig : Prefix.t list;
  nredist : Multi.redistribution list;
  nmodule : string option;
      (* fault-isolation module annotation: carried through apply so
         annotations survive delta application, but diff never emits a
         delta for it — it is partitioning metadata, not routing state *)
}

type named = {
  mutable order : string list;  (* insertion order = node-id order *)
  mutable links : (string * string) list;  (* canonical pairs, sorted *)
  routers : (string, nrouter) Hashtbl.t;
}

let canon a b = if String.compare a b <= 0 then (a, b) else (b, a)
let sort_by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let sort_static l =
  List.sort
    (fun (p1, n1) (p2, n2) ->
      let c = Prefix.compare p1 p2 in
      if c <> 0 then c else String.compare n1 n2)
    l

let sort_prefixes = List.sort Prefix.compare
let sort_redist l = List.sort_uniq compare l

let nrouter_of_router ~name (r : Device.router) =
  {
    nbgp = sort_by_name (List.map (fun (v, c) -> (name v, c)) r.Device.bgp_neighbors);
    nospf = sort_by_name (List.map (fun (v, l) -> (name v, l)) r.Device.ospf_links);
    narea = r.Device.ospf_area;
    nstatic =
      sort_static (List.map (fun (p, v) -> (p, name v)) r.Device.static_routes);
    nacl = sort_by_name (List.map (fun (v, a) -> (name v, a)) r.Device.acl_out);
    norig = sort_prefixes r.Device.originated;
    nredist = sort_redist r.Device.redistribute;
    nmodule = r.Device.module_name;
  }

let empty_nrouter name =
  let d = Device.default_router name in
  {
    nbgp = [];
    nospf = [];
    narea = d.Device.ospf_area;
    nstatic = [];
    nacl = [];
    norig = [];
    nredist = [];
    nmodule = d.Device.module_name;
  }

let to_named (net : Device.network) =
  let g = net.Device.graph in
  let n = Graph.n_nodes g in
  let name i = Graph.name g i in
  let links = ref [] in
  Graph.iter_edges g (fun u v -> links := canon (name u) (name v) :: !links);
  let routers = Hashtbl.create (max n 16) in
  Array.iteri
    (fun i r -> Hashtbl.replace routers (name i) (nrouter_of_router ~name r))
    net.Device.routers;
  { order = List.init n name; links = List.sort_uniq compare !links; routers }

let of_named nm =
  let b = Graph.Builder.create () in
  let ids = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.replace ids name (Graph.Builder.add_node b name))
    nm.order;
  let id name =
    match Hashtbl.find_opt ids name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Delta: unknown router %S" name)
  in
  List.iter (fun (x, y) -> Graph.Builder.add_link b (id x) (id y)) nm.links;
  let graph = Graph.Builder.build b in
  let by_id l = List.sort (fun (a, _) (b, _) -> Int.compare a b) l in
  let router_of name (nr : nrouter) =
    {
      Device.name;
      bgp_neighbors = by_id (List.map (fun (v, c) -> (id v, c)) nr.nbgp);
      ospf_links = by_id (List.map (fun (v, l) -> (id v, l)) nr.nospf);
      ospf_area = nr.narea;
      static_routes = List.map (fun (p, v) -> (p, id v)) nr.nstatic;
      acl_out = by_id (List.map (fun (v, a) -> (id v, a)) nr.nacl);
      originated = nr.norig;
      redistribute = nr.nredist;
      module_name = nr.nmodule;
    }
  in
  let routers =
    Array.of_list
      (List.map (fun name -> router_of name (Hashtbl.find nm.routers name))
         nm.order)
  in
  { Device.graph; routers }

(* ------------------------------------------------------------------ *)
(* apply *)

let get nm node =
  match Hashtbl.find_opt nm.routers node with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Delta: unknown router %S" node)

let set nm node r = Hashtbl.replace nm.routers node r
let assoc_del k l = List.filter (fun (k', _) -> k' <> k) l
let assoc_set k v l = sort_by_name ((k, v) :: assoc_del k l)

(* Drop everything [node] configures for neighbor [nbr]: the per-interface
   state that makes no sense once the link (or the neighbor) is gone. *)
let purge_neighbor nm node nbr =
  match Hashtbl.find_opt nm.routers node with
  | None -> ()
  | Some r ->
    set nm node
      {
        r with
        nbgp = assoc_del nbr r.nbgp;
        nospf = assoc_del nbr r.nospf;
        nacl = assoc_del nbr r.nacl;
        nstatic = List.filter (fun (_, v) -> v <> nbr) r.nstatic;
      }

let apply_delta nm = function
  | Link_up (a, b) ->
    ignore (get nm a);
    ignore (get nm b);
    if a = b then invalid_arg "Delta: self-link";
    if List.mem (canon a b) nm.links then
      invalid_arg (Printf.sprintf "Delta: link %s -- %s already exists" a b);
    nm.links <- List.sort compare (canon a b :: nm.links)
  | Link_down (a, b) ->
    if not (List.mem (canon a b) nm.links) then
      invalid_arg (Printf.sprintf "Delta: no link %s -- %s" a b);
    nm.links <- List.filter (fun l -> l <> canon a b) nm.links;
    purge_neighbor nm a b;
    purge_neighbor nm b a
  | Node_add name ->
    if Hashtbl.mem nm.routers name then
      invalid_arg (Printf.sprintf "Delta: router %S already exists" name);
    nm.order <- nm.order @ [ name ];
    Hashtbl.replace nm.routers name (empty_nrouter name)
  | Node_remove name ->
    ignore (get nm name);
    Hashtbl.remove nm.routers name;
    nm.order <- List.filter (fun x -> x <> name) nm.order;
    nm.links <- List.filter (fun (x, y) -> x <> name && y <> name) nm.links;
    List.iter (fun other -> purge_neighbor nm other name) nm.order
  | Ospf_cost { node; nbr; cost } -> (
    let r = get nm node in
    match List.assoc_opt nbr r.nospf with
    | None ->
      invalid_arg
        (Printf.sprintf "Delta: %s has no OSPF interface towards %s" node nbr)
    | Some l ->
      set nm node { r with nospf = assoc_set nbr { l with Device.cost } r.nospf })
  | Ospf_link_set { node; nbr; link } ->
    let r = get nm node in
    let nospf =
      match link with
      | None -> assoc_del nbr r.nospf
      | Some l -> assoc_set nbr l r.nospf
    in
    set nm node { r with nospf }
  | Ospf_area_set { node; area } -> set nm node { (get nm node) with narea = area }
  | Route_map_set { node; nbr; dir; rm } -> (
    let r = get nm node in
    match List.assoc_opt nbr r.nbgp with
    | None ->
      invalid_arg
        (Printf.sprintf "Delta: %s has no BGP session with %s" node nbr)
    | Some c ->
      let c =
        match dir with
        | Import -> { c with Device.import_rm = rm }
        | Export -> { c with Device.export_rm = rm }
      in
      set nm node { r with nbgp = assoc_set nbr c r.nbgp })
  | Bgp_neighbor_set { node; nbr; config } ->
    let r = get nm node in
    let nbgp =
      match config with
      | None -> assoc_del nbr r.nbgp
      | Some c -> assoc_set nbr c r.nbgp
    in
    set nm node { r with nbgp }
  | Acl_set { node; nbr; acl } ->
    let r = get nm node in
    let nacl =
      match acl with
      | None -> assoc_del nbr r.nacl
      | Some a -> assoc_set nbr a r.nacl
    in
    set nm node { r with nacl }
  | Static_set { node; routes } ->
    set nm node { (get nm node) with nstatic = sort_static routes }
  | Originate_set { node; prefixes } ->
    set nm node { (get nm node) with norig = sort_prefixes prefixes }
  | Redistribute_set { node; redistribute } ->
    set nm node { (get nm node) with nredist = sort_redist redistribute }

let apply net deltas =
  let nm = to_named net in
  List.iter (apply_delta nm) deltas;
  of_named nm

(* ------------------------------------------------------------------ *)
(* diff *)

let diff_router node (ra : nrouter) (rb : nrouter) =
  let union_keys la lb =
    List.sort_uniq String.compare (List.map fst la @ List.map fst lb)
  in
  let bgp =
    List.concat_map
      (fun nbr ->
        match (List.assoc_opt nbr ra.nbgp, List.assoc_opt nbr rb.nbgp) with
        | None, None -> []
        | None, Some c -> [ Bgp_neighbor_set { node; nbr; config = Some c } ]
        | Some _, None -> [ Bgp_neighbor_set { node; nbr; config = None } ]
        | Some ca, Some cb ->
          if ca = cb then []
          else if
            ca.Device.ibgp = cb.Device.ibgp
            && Device.relation_equal ca.Device.rel cb.Device.rel
          then
            (if ca.Device.import_rm <> cb.Device.import_rm then
               [ Route_map_set { node; nbr; dir = Import; rm = cb.Device.import_rm } ]
             else [])
            @
            if ca.Device.export_rm <> cb.Device.export_rm then
              [ Route_map_set { node; nbr; dir = Export; rm = cb.Device.export_rm } ]
            else []
          else [ Bgp_neighbor_set { node; nbr; config = Some cb } ])
      (union_keys ra.nbgp rb.nbgp)
  in
  let ospf =
    List.concat_map
      (fun nbr ->
        match (List.assoc_opt nbr ra.nospf, List.assoc_opt nbr rb.nospf) with
        | None, None -> []
        | None, Some l -> [ Ospf_link_set { node; nbr; link = Some l } ]
        | Some _, None -> [ Ospf_link_set { node; nbr; link = None } ]
        | Some la, Some lb ->
          if la = lb then []
          else if la.Device.area = lb.Device.area then
            [ Ospf_cost { node; nbr; cost = lb.Device.cost } ]
          else [ Ospf_link_set { node; nbr; link = Some lb } ])
      (union_keys ra.nospf rb.nospf)
  in
  let acl =
    List.concat_map
      (fun nbr ->
        let a = List.assoc_opt nbr ra.nacl
        and b = List.assoc_opt nbr rb.nacl in
        if a = b then [] else [ Acl_set { node; nbr; acl = b } ])
      (union_keys ra.nacl rb.nacl)
  in
  (if ra.narea <> rb.narea then [ Ospf_area_set { node; area = rb.narea } ]
   else [])
  @ bgp @ ospf @ acl
  @ (if ra.nstatic <> rb.nstatic then
       [ Static_set { node; routes = rb.nstatic } ]
     else [])
  @ (if ra.norig <> rb.norig then
       [ Originate_set { node; prefixes = rb.norig } ]
     else [])
  @
  if ra.nredist <> rb.nredist then
    [ Redistribute_set { node; redistribute = rb.nredist } ]
  else []

let diff a b =
  let na = to_named a and nb = to_named b in
  let in_a x = Hashtbl.mem na.routers x and in_b x = Hashtbl.mem nb.routers x in
  let removed = List.filter (fun x -> not (in_b x)) na.order in
  let added = List.filter (fun x -> not (in_a x)) nb.order in
  let surviving_links =
    List.filter (fun (x, y) -> in_b x && in_b y) na.links
  in
  let downs =
    List.filter (fun l -> not (List.mem l nb.links)) surviving_links
  in
  let ups = List.filter (fun l -> not (List.mem l na.links)) nb.links in
  let config =
    List.concat_map
      (fun node ->
        let ra =
          match Hashtbl.find_opt na.routers node with
          | Some r -> r
          | None -> empty_nrouter node
        in
        diff_router node ra (Hashtbl.find nb.routers node))
      nb.order
  in
  List.map (fun x -> Node_remove x) removed
  @ List.map (fun (x, y) -> Link_down (x, y)) downs
  @ List.map (fun x -> Node_add x) added
  @ List.map (fun (x, y) -> Link_up (x, y)) ups
  @ config

(* ------------------------------------------------------------------ *)

let touched (net : Device.network) d =
  let names =
    match d with
    | Link_up (a, b) | Link_down (a, b) -> [ a; b ]
    | Node_add x | Node_remove x -> [ x ]
    | Ospf_cost { node; nbr; _ }
    | Ospf_link_set { node; nbr; _ }
    | Route_map_set { node; nbr; _ }
    | Bgp_neighbor_set { node; nbr; _ }
    | Acl_set { node; nbr; _ } -> [ node; nbr ]
    | Ospf_area_set { node; _ }
    | Originate_set { node; _ }
    | Redistribute_set { node; _ } -> [ node ]
    | Static_set { node; routes } -> node :: List.map snd routes
  in
  List.filter_map (Graph.find_by_name net.Device.graph) names
  |> List.sort_uniq Int.compare

let is_topology = function
  | Link_up _ | Link_down _ | Node_add _ | Node_remove _ -> true
  | _ -> false

let is_node_change = function Node_add _ | Node_remove _ -> true | _ -> false

let pp ppf = function
  | Link_up (a, b) -> Format.fprintf ppf "link up %s -- %s" a b
  | Link_down (a, b) -> Format.fprintf ppf "link down %s -- %s" a b
  | Node_add x -> Format.fprintf ppf "add node %s" x
  | Node_remove x -> Format.fprintf ppf "remove node %s" x
  | Ospf_cost { node; nbr; cost } ->
    Format.fprintf ppf "ospf cost %s->%s = %d" node nbr cost
  | Ospf_link_set { node; nbr; link = None } ->
    Format.fprintf ppf "ospf interface %s->%s removed" node nbr
  | Ospf_link_set { node; nbr; link = Some l } ->
    Format.fprintf ppf "ospf interface %s->%s cost %d area %d" node nbr
      l.Device.cost l.Device.area
  | Ospf_area_set { node; area } ->
    Format.fprintf ppf "ospf area %s = %d" node area
  | Route_map_set { node; nbr; dir; rm } ->
    Format.fprintf ppf "%s route-map %s->%s %s"
      (match dir with Import -> "import" | Export -> "export")
      node nbr
      (match rm with None -> "cleared" | Some _ -> "replaced")
  | Bgp_neighbor_set { node; nbr; config = None } ->
    Format.fprintf ppf "bgp session %s->%s removed" node nbr
  | Bgp_neighbor_set { node; nbr; config = Some c } ->
    Format.fprintf ppf "%s session %s->%s configured"
      (if c.Device.ibgp then "ibgp" else "ebgp")
      node nbr
  | Acl_set { node; nbr; acl } ->
    Format.fprintf ppf "acl %s->%s %s" node nbr
      (match acl with None -> "cleared" | Some _ -> "replaced")
  | Static_set { node; routes } ->
    Format.fprintf ppf "static routes %s (%d)" node (List.length routes)
  | Originate_set { node; prefixes } ->
    Format.fprintf ppf "originate %s (%d prefixes)" node (List.length prefixes)
  | Redistribute_set { node; redistribute } ->
    Format.fprintf ppf "redistribute %s (%d)" node (List.length redistribute)

let to_string d = Format.asprintf "%a" pp d

(** Configuration deltas: the change vocabulary of the incremental engine.

    A delta names routers by their topology name (never by node id), so a
    delta list computed against one network applies to any network with
    the same names — node ids may be renumbered by unrelated changes.
    [diff] and [apply] are inverses on the semantic content of a network:
    [diff a (apply a ds)] is [[]] for any well-formed [ds], and
    [apply a (diff a b)] is semantically equal to [b] (router and
    neighbor-list orderings may differ; every observer keyed by node id or
    name agrees). *)

type dir = Import | Export

type t =
  | Link_up of string * string
      (** add the undirected link; both routers must exist *)
  | Link_down of string * string
      (** remove the link {e and} both endpoints' per-neighbor
          configuration for it (BGP session, OSPF interface, ACL, static
          routes via the neighbor) — a link failure, not a config edit *)
  | Node_add of string  (** append a fresh router with no configuration *)
  | Node_remove of string
      (** remove the router, its links, and every other router's
          per-neighbor configuration referencing it *)
  | Ospf_cost of { node : string; nbr : string; cost : int }
      (** change the cost of an existing OSPF interface *)
  | Ospf_link_set of {
      node : string;
      nbr : string;
      link : Device.ospf_link option;
    }  (** add/replace ([Some]) or remove ([None]) an OSPF interface *)
  | Ospf_area_set of { node : string; area : int }
  | Route_map_set of {
      node : string;
      nbr : string;
      dir : dir;
      rm : Route_map.t option;
    }  (** replace one route-map of an existing BGP session *)
  | Bgp_neighbor_set of {
      node : string;
      nbr : string;
      config : Device.bgp_neighbor option;
    }  (** add/replace ([Some]) or remove ([None]) a BGP session *)
  | Acl_set of { node : string; nbr : string; acl : Acl.t option }
  | Static_set of { node : string; routes : (Prefix.t * string) list }
      (** replace the router's static routes (next hops by name) *)
  | Originate_set of { node : string; prefixes : Prefix.t list }
  | Redistribute_set of {
      node : string;
      redistribute : Multi.redistribution list;
    }

val diff : Device.network -> Device.network -> t list
(** A delta list turning the first network into the second. Empty iff the
    networks are semantically equal. Emitted in application order: node
    removals, link removals, node additions, link additions, then
    per-router configuration changes (route-map-granular when only a
    session's import/export map changed). *)

val apply : Device.network -> t list -> Device.network
(** Apply deltas in order. Node ids of routers present in both networks
    are preserved whenever no node is added or removed; added routers get
    fresh ids past the existing ones.
    @raise Invalid_argument when a delta references an unknown router, an
    [Ospf_cost]/[Route_map_set] targets a non-existent interface/session,
    or a [Node_add]/[Link_up] duplicates an existing name/link. *)

val touched : Device.network -> t -> int list
(** Node ids (in the given network) whose configuration or incident
    topology the delta may change — every named router that resolves,
    including static-route next hops. Conservative and name-based, so it
    can be evaluated against the pre- or post-change network. *)

val is_topology : t -> bool
(** Changes the link set ([Link_up], [Link_down], [Node_add],
    [Node_remove]). *)

val is_node_change : t -> bool
(** Changes the node set — node ids are not comparable across the change
    and the incremental engine falls back to a full recompute. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type entry = { mutable e_bdd : Bdd.t; mutable e_stamp : int }

type t = {
  sc_universe : Policy_bdd.universe;
  sc_table : (Prefix.t * Route_map.t option, entry) Hashtbl.t;
  sc_max_entries : int;
  mutable sc_clock : int;
  mutable sc_hits : int;
  mutable sc_misses : int;
  mutable sc_evictions : int;
}

let create ?(max_entries = max_int) ?universe net =
  if max_entries < 1 then invalid_arg "Sig_cache.create: max_entries < 1";
  {
    sc_universe =
      (match universe with
      | Some u -> u
      | None -> Policy_bdd.universe_of_network net);
    sc_table = Hashtbl.create 256;
    sc_max_entries = max_entries;
    sc_clock = 0;
    sc_hits = 0;
    sc_misses = 0;
    sc_evictions = 0;
  }

let universe t = t.sc_universe

(* Everything that determines the variable layout; [man] excluded. *)
let fingerprint (u : Policy_bdd.universe) =
  (u.comms, u.lps, u.meds, u.lp_bits, u.med_bits, u.width)

let compatible t net =
  fingerprint t.sc_universe = fingerprint (Policy_bdd.universe_of_network net)

let touch t e =
  t.sc_clock <- t.sc_clock + 1;
  e.e_stamp <- t.sc_clock

(* Evict the least-recently-used entry. A linear scan is fine: eviction
   only happens with the table at its cap, inserts at the cap are rare in
   steady state, and the cap bounds the scan. Eviction drops the cache's
   reference to the BDD, not the hash-consed nodes themselves — those are
   reclaimed only when the whole manager is rebuilt (cache-incompatible
   delta, or a resident engine recycling a network entry) — but it bounds
   the number of live roots re-encodable work can accumulate. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k (e : entry) ->
      match !victim with
      | Some (_, stamp) when stamp <= e.e_stamp -> ()
      | _ -> victim := Some (k, e.e_stamp))
    t.sc_table;
  match !victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove t.sc_table k;
    t.sc_evictions <- t.sc_evictions + 1

let rm_bdd t ~dest rm =
  let key = (dest, rm) in
  match Hashtbl.find_opt t.sc_table key with
  | Some e ->
    t.sc_hits <- t.sc_hits + 1;
    touch t e;
    e.e_bdd
  | None ->
    t.sc_misses <- t.sc_misses + 1;
    let b =
      match rm with
      | None -> Policy_bdd.identity t.sc_universe
      | Some rm -> Policy_bdd.encode_route_map t.sc_universe rm ~dest
    in
    if Hashtbl.length t.sc_table >= t.sc_max_entries then evict_lru t;
    let e = { e_bdd = b; e_stamp = 0 } in
    touch t e;
    Hashtbl.replace t.sc_table key e;
    b

let stats t = (t.sc_hits, t.sc_misses)
let evictions t = t.sc_evictions
let length t = Hashtbl.length t.sc_table
let max_entries t = t.sc_max_entries
let bdd_stats t = Bdd.stats t.sc_universe.Policy_bdd.man

type t = {
  sc_universe : Policy_bdd.universe;
  sc_table : (Prefix.t * Route_map.t option, Bdd.t) Hashtbl.t;
  mutable sc_hits : int;
  mutable sc_misses : int;
}

let create net =
  {
    sc_universe = Policy_bdd.universe_of_network net;
    sc_table = Hashtbl.create 256;
    sc_hits = 0;
    sc_misses = 0;
  }

let universe t = t.sc_universe

(* Everything that determines the variable layout; [man] excluded. *)
let fingerprint (u : Policy_bdd.universe) =
  (u.comms, u.lps, u.meds, u.lp_bits, u.med_bits, u.width)

let compatible t net =
  fingerprint t.sc_universe = fingerprint (Policy_bdd.universe_of_network net)

let rm_bdd t ~dest rm =
  let key = (dest, rm) in
  match Hashtbl.find_opt t.sc_table key with
  | Some b ->
    t.sc_hits <- t.sc_hits + 1;
    b
  | None ->
    t.sc_misses <- t.sc_misses + 1;
    let b =
      match rm with
      | None -> Policy_bdd.identity t.sc_universe
      | Some rm -> Policy_bdd.encode_route_map t.sc_universe rm ~dest
    in
    Hashtbl.replace t.sc_table key b;
    b

let stats t = (t.sc_hits, t.sc_misses)
let bdd_stats t = Bdd.stats t.sc_universe.Policy_bdd.man

(** Policy-signature cache: hash-consed route-map BDDs that survive
    recompressions.

    All BDDs live in one shared manager, so a route-map's canonical BDD id
    ([Bdd.hash]) is stable across recompressions — recompiling the
    policies of an untouched device is a table lookup, and two policies
    are semantically equal iff their cached ids are equal {e across} the
    old and the new network. Keys are [(destination prefix, route-map)]
    pairs compared structurally (route-maps are plain data). The cache is
    only valid while the attribute universe of the network is unchanged;
    {!compatible} checks that, and the incremental engine rebuilds the
    cache when it fails. *)

type t

val create : ?max_entries:int -> ?universe:Policy_bdd.universe -> Device.network -> t
(** Fresh cache with a universe built from the network
    (matched-communities attribute abstraction, as [Bonsai_api.compress]
    defaults to). [universe] overrides that construction — modular
    compression passes a fresh-manager universe built from the {e global}
    network's layout so each module's cache is isolated yet layout-equal. [max_entries] caps the number of cached route-map BDDs
    (default: unbounded): once full, inserting a new entry evicts the
    least-recently-used one, so a resident engine serving thousands of
    recompressions cannot grow the root set without bound. An evicted
    entry re-encodes on its next use — into the same hash-consed manager,
    so re-encoding reproduces the identical BDD. Raises
    [Invalid_argument] if [max_entries < 1]. *)

val universe : t -> Policy_bdd.universe

val compatible : t -> Device.network -> bool
(** Would {!create} on this network produce the same universe (same
    communities, local-preference and MED values, same variable layout)?
    When false, cached BDDs are meaningless for the network and the cache
    must be rebuilt. *)

val rm_bdd : t -> dest:Prefix.t -> Route_map.t option -> Bdd.t
(** The relation BDD of a route-map specialized to [dest] ([None] =
    permit-all), encoding on miss. Shaped so
    [rm_bdd cache ~dest : Route_map.t option -> Bdd.t] plugs directly
    into [Compile.edge_signatures ?rm_bdd]. *)

val stats : t -> int * int
(** Cumulative (hits, misses) of {!rm_bdd} lookups. *)

val evictions : t -> int
(** Entries evicted by the {!create} size cap so far. *)

val length : t -> int
(** Entries currently cached. *)

val max_entries : t -> int
(** The size cap ([max_int] when unbounded). *)

val bdd_stats : t -> Bdd.stats
(** Node-table and memo statistics of the shared manager. *)

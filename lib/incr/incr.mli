(** Incremental compression engine: delta-driven abstraction maintenance.

    [init] compresses a network once and keeps the state alive; on each
    [recompress] the engine applies a list of {!Delta.t}s and brings every
    destination class's abstraction up to date while doing as little work
    as the change allows:

    - {e reuse}: classes none of whose refinement inputs changed (no
      topology delta, no edge-signature change incident to a touched
      router, preference levels and origin untouched) keep their old
      result verbatim;
    - {e seeded}: classes whose preference structure is trivial (every
      router at the default local preference, no static routes for the
      destination) re-refine starting from the {e old} partition — a
      split-only fixpoint reaches the coarsest stable refinement of the
      old partition, and a quotient-level refine-and-merge pass coarsens
      it back to exactly the from-scratch partition (see DESIGN.md §12
      for the proof sketch);
    - {e scratch}: everything else recomputes, still sharing the
      policy-signature cache ({!Sig_cache}) so unchanged route-maps are
      never re-encoded;
    - {e full rebuild}: node additions/removals renumber the id space and
      attribute-universe changes invalidate cached BDDs — all classes
      recompute against a fresh cache.

    Repair pins survive: they are stored by router name, re-resolved
    against the updated network, and both the seeded and the scratch path
    force them into singleton classes. Budget exhaustion degrades exactly
    like [Bonsai_api.compress]: the class that ran out and every remaining
    class fall back to the identity abstraction.

    This module is the library surface ISSUE.md calls
    [Bonsai_api.recompress]; it lives here because lib/incr depends on
    lib/core (see the pointer in [bonsai_api.mli]). *)

type state

type report = {
  r_deltas : int;  (** deltas applied *)
  r_ecs : int;  (** single-origin destination classes after the change *)
  r_reused : int;  (** classes whose old result was reused verbatim *)
  r_seeded : int;  (** classes re-refined from the surviving partition *)
  r_scratch : int;  (** classes recomputed from scratch (cache-backed) *)
  r_full_rebuild : bool;
      (** node set or attribute universe changed: cache rebuilt, every
          class recomputed *)
  r_recertified : int;
      (** reused/seeded results independently re-certified
          ({!Certify.check_result} in a fresh universe) *)
  r_recert_refuted : int;
      (** reused/seeded candidates whose certificate was refuted — each
          was discarded and recomputed from scratch (counted there) *)
  r_cache_hits : int;  (** {!Sig_cache} hits during this recompression *)
  r_cache_misses : int;
  r_time_s : float;  (** wall-clock for the whole recompression *)
  r_degradation : Bonsai_api.degradation option;
}

val init :
  ?pinned:int list ->
  ?cache_cap:int ->
  ?universe:Policy_bdd.universe ->
  ?budget:Budget.t ->
  Device.network ->
  (state, Bonsai_error.t) result
(** Compress from scratch and set up the cache. [pinned] node ids (of this
    network) are remembered by name and enforced on every later
    recompression. [cache_cap] bounds the signature cache
    ({!Sig_cache.create}'s [max_entries]), including after full rebuilds;
    a resident engine passes it so the shared BDD root set stays bounded
    across thousands of recompressions. [universe] seeds the signature
    cache with a caller-built universe (modular compression: a fresh
    manager per module over the global value layout) instead of one
    derived from [net]. *)

val recompress :
  ?budget:Budget.t ->
  ?recertify:Certify.audit ->
  state ->
  Delta.t list ->
  (report, Bonsai_error.t) result
(** Apply the deltas and update every class's abstraction. The state is
    mutated only on success; on [Error] it still describes the previous
    network. An invalid delta (unknown router, duplicate link, ...) or a
    post-change network failing [Device.validate] is a [Compile_error].

    [recertify] audits every reused and seeded result with
    {!Certify.check_result} against a fresh BDD universe before trusting
    it: a refuted candidate is thrown away and that class recomputes from
    scratch (the reuse ladder can be wrong only through engine bugs or a
    corrupted cache — never silently). [Audit_incomplete] (budget ran
    out mid-audit) keeps the candidate but does not count it as
    re-certified. *)

val recompress_net :
  ?budget:Budget.t ->
  ?recertify:Certify.audit ->
  state ->
  Device.network ->
  (Delta.t list * report, Bonsai_error.t) result
(** [recompress_net st net'] diffs the current network against [net'] and
    recompresses; returns the deltas it derived. The engine of
    [bonsai watch], where only the new configuration text is known. *)

val quotient_merge :
  Union_split_find.t ->
  Device.network ->
  dest:int ->
  signature:(int -> int -> 'k) ->
  pinned:int list ->
  budget:Budget.t ->
  unit
(** The merge half of the seeded path (DESIGN.md §12), coarsening a
    stable over-refinement in place: refine the quotient (one element
    per class, key from a representative) and merge classes sharing a
    quotient block. Exposed for modular compression, whose composition
    pass seeds a global refinement with the union of per-module
    partitions and needs the identical merge to recover the exact
    from-scratch partition. *)

val no_lp_no_redistribute : Device.network -> bool
(** No import route-map sets a local preference and no router
    redistributes: together with {!ec_seedable} this is the guard under
    which the seeded split-then-merge path is provably exact. *)

val ec_seedable : prefs_trivial:bool -> Device.network -> Ecs.ec -> bool
(** No static route covers the class and (unless [prefs_trivial] already
    established it network-wide) every router's effective preference set
    is exactly [{default}]. *)

val network : state -> Device.network

val sig_cache : state -> Sig_cache.t
(** The state's policy-signature cache, for read-only composition: the
    data-plane differ ({!Dp_diff} in lib/dataplane) proves classes
    untouched through the same cache so BDD ids stay comparable. *)

val solution_unchanged :
  old_net:Device.network ->
  new_net:Device.network ->
  cache:Sig_cache.t ->
  touched:int list ->
  Ecs.ec ->
  bool
(** The clean-class check at the heart of {!recompress}, exposed for
    data-plane reuse: the class's stable solution (and hence its FIB,
    since ACLs are part of the edge signature) is provably identical
    across the delta. [touched] are the routers any delta touches
    ([Delta.touched], deduplicated); both networks must share the same
    topology (the caller gates topology/node deltas) and [cache] must be
    {!Sig_cache.compatible} with both. The class's origins are the
    caller's obligation to compare. *)

val summary : state -> Bonsai_api.summary
(** The maintained per-class results, shaped like a fresh
    [Bonsai_api.compress] summary (times are those of the computation
    that produced each surviving result). *)

val cache_stats : state -> int * int
(** Cumulative (hits, misses) of the policy-signature cache. *)

val cache_evictions : state -> int
(** Entries evicted by the [cache_cap] so far. *)

val rearm : state -> unit
(** Reset every transient resource handle after the state was read back
    from a checkpoint (Marshal): re-installs the shared
    [Budget.infinite] in each BDD manager, whose marshaled copy lost the
    physical identity the fast-path check relies on. Call exactly once on
    a freshly unmarshaled state; a no-op on states built by {!init}. *)

val bdd_stats : state -> Bdd.stats
val pp_report : Format.formatter -> report -> unit

type round_log = {
  rl_round : int;
  rl_abs_nodes : int;
  rl_abs_links : int;
  rl_scenarios : int;
  rl_counterexample : Scenario.t option;
  rl_mismatches : Soundness.mismatch list;
  rl_new_pins : int list;
  rl_total_pins : int;
}

type t = {
  result : Bonsai_api.ec_result;
  rounds : round_log list;
  pins : int list;
  n_scenarios : int;
  n_counterexamples : int;
  cache_hits : int;
  fallback : Bonsai_api.fallback;
  sound : bool;
  plan_exhaustive : bool;
  k : int;
}

(* The identity fallback mirrors graceful degradation in Bonsai_api: a
   fresh, un-budgeted universe (the budgeted manager may be the very
   resource that ran out) and the discrete partition. *)
let identity_result (net : Device.network) (ec : Ecs.ec) =
  let universe = Policy_bdd.universe_of_network net in
  {
    Bonsai_api.ec;
    abstraction =
      Abstraction.identity net ~dest:(Ecs.single_origin ec)
        ~dest_prefix:ec.Ecs.ec_prefix ~universe;
    refine_stats = { Refine.iterations = 0; splits = 0 };
    time_s = 0.0;
    degraded = true;
  }

(* Exhaustive up to the frontier; past it an importance sample that
   doubles each round. A widened sample with the same seed extends the
   previous one (Scenario.sample draws deterministically), so scenarios
   cleared in round r stay covered in round r+1. *)
let scenario_plan ~k ~frontier ~samples ~seed ~round g =
  if Scenario.count ~k g <= frontier then
    { Fault_engine.scenarios = Scenario.enumerate ~k g; exhaustive = true }
  else
    let widened = samples * (1 lsl min 20 (round - 1)) in
    {
      Fault_engine.scenarios = Scenario.sample ~k ~samples:widened ~seed g;
      exhaustive = false;
    }

let harden_exn ?(k = 1) ?(rounds = 8) ?(frontier = 1024) ?(samples = 64)
    ?(seed = 0) ?(budget = Budget.infinite) (net : Device.network)
    (ec : Ecs.ec) =
  if k < 0 then invalid_arg "Repair.harden: negative k";
  if rounds < 0 then invalid_arg "Repair.harden: negative rounds";
  let g = net.Device.graph in
  let n = Graph.n_nodes g in
  let dest = Ecs.single_origin ec in
  let concrete = Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
  let concrete_cache = Fault_engine.cache () in
  let plan_exhaustive = Scenario.count ~k g <= frontier in
  let pins = ref [] in
  let logs = ref [] in
  let n_scen = ref 0 in
  let n_cex = ref 0 in
  let abs_hits = ref 0 in
  let finish result fallback sound =
    {
      result;
      rounds = List.rev !logs;
      pins = !pins;
      n_scenarios = !n_scen;
      n_counterexamples = !n_cex;
      cache_hits = Fault_engine.cache_hits concrete_cache + !abs_hits;
      fallback;
      sound;
      plan_exhaustive;
      k;
    }
  in
  let rec round_loop round (r : Bonsai_api.ec_result) =
    let t = r.Bonsai_api.abstraction in
    let abstract_ = Abstraction.bgp_srp t in
    (* the abstract network changes with every repair, so its cache
       lives for one round only *)
    let abstract_cache = Fault_engine.cache () in
    let plan = scenario_plan ~k ~frontier ~samples ~seed ~round g in
    let fails sc =
      Budget.check budget ~phase:"harden";
      Soundness.check_all ~concrete_cache ~abstract_cache t ~concrete
        ~abstract_ sc
      <> []
    in
    let scen0 = !n_scen in
    let counterexample =
      List.find_opt
        (fun sc ->
          incr n_scen;
          fails sc)
        plan.Fault_engine.scenarios
    in
    let log cex mismatches new_pins =
      abs_hits := !abs_hits + Fault_engine.cache_hits abstract_cache;
      logs :=
        {
          rl_round = round;
          rl_abs_nodes = Abstraction.n_abstract t;
          rl_abs_links = Graph.n_links t.Abstraction.abs_graph;
          rl_scenarios = !n_scen - scen0;
          rl_counterexample = cex;
          rl_mismatches = mismatches;
          rl_new_pins = new_pins;
          rl_total_pins = List.length !pins;
        }
        :: !logs
    in
    match counterexample with
    | None ->
      log None [] [];
      finish r Bonsai_api.No_fallback true
    | Some sc ->
      incr n_cex;
      let minimal = Scenario.shrink fails sc in
      let mismatches =
        Soundness.check_all ~concrete_cache ~abstract_cache t ~concrete
          ~abstract_ minimal
      in
      if round > rounds then begin
        (* No repair attempts left. [rounds = 0] means repair was never
           enabled: report the counterexample and the (unsound)
           abstraction as diagnosis. Otherwise the retry budget is
           exhausted: degrade to the always-sound identity. *)
        log (Some minimal) mismatches [];
        if rounds = 0 then finish r Bonsai_api.No_fallback false
        else finish (identity_result net ec) Bonsai_api.Rounds_fallback true
      end
      else begin
        let unpinned us =
          List.sort_uniq Int.compare us
          |> List.filter (fun u -> not (List.mem u !pins))
        in
        (* Pin every disagreeing node. If all of them are already pinned
           (the break sits elsewhere in the topology), widen to the full
           membership of the mismatching groups; as a last resort pin
           everything — the next round is then the identity abstraction,
           keeping the loop monotone and terminating. *)
        let fresh =
          match
            unpinned (List.map (fun m -> m.Soundness.mis_node) mismatches)
          with
          | _ :: _ as f -> f
          | [] -> (
            match
              unpinned
                (List.concat_map
                   (fun (m : Soundness.mismatch) ->
                     Abstraction.members_of_abs t m.Soundness.mis_abs)
                   mismatches)
            with
            | _ :: _ as f -> f
            | [] -> unpinned (List.init n Fun.id))
        in
        pins := List.sort_uniq Int.compare (List.rev_append fresh !pins);
        log (Some minimal) mismatches fresh;
        if fresh = [] then
          (* every node pinned and still breaking: defensive fallback
             (the identity abstraction cannot mismatch) *)
          finish (identity_result net ec) Bonsai_api.Rounds_fallback true
        else
          round_loop (round + 1)
            (Bonsai_api.compress_ec_exn ~pinned:!pins ~budget net ec)
      end
  in
  try round_loop 1 (Bonsai_api.compress_ec_exn ~budget net ec)
  with Budget.Exhausted info ->
    finish (identity_result net ec) (Bonsai_api.Budget_fallback info) true

let harden ?k ?rounds ?frontier ?samples ?seed ?budget net ec =
  Bonsai_error.protect (fun () ->
      try harden_exn ?k ?rounds ?frontier ?samples ?seed ?budget net ec
      with Invalid_argument m ->
        Bonsai_error.error (Bonsai_error.Compile_error m))

let to_hardened (r : t) =
  {
    Bonsai_api.h_result = r.result;
    h_rounds = List.length r.rounds;
    h_pins = r.pins;
    h_counterexamples = r.n_counterexamples;
    h_scenarios = r.n_scenarios;
    h_cache_hits = r.cache_hits;
    h_fallback = r.fallback;
    h_sound = r.sound;
  }

let ratio (r : t) = Abstraction.compression_ratio r.result.Bonsai_api.abstraction

(* Make [Bonsai_api.compress_fault_sound] real for every executable that
   links this library. *)
let () =
  Bonsai_api.register_fault_sound
    (fun ?k ?rounds ?frontier ?samples ?seed ?budget net ec ->
      Result.map to_hardened
        (harden ?k ?rounds ?frontier ?samples ?seed ?budget net ec))

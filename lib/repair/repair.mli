(** Counterexample-guided abstraction repair: fault-sound compression.

    A Bonsai abstraction is proven sound for the failure-free control
    plane; under link failures it can disagree with the concrete network
    (paper §9, {!Soundness}). This module closes the loop instead of
    merely detecting the drift — the standard CEGAR move of
    abstraction-based network verification (ACORN's refinement of
    too-coarse abstractions, Tiramisu's fault-tolerance-first workload):

    + {b compress} the destination class ({!Bonsai_api.compress_ec_exn}),
      seeding the partition with the current {e pin} set — nodes forced
      into singleton classes ({!Refine.find_partition}'s [?pinned]);
    + {b sweep} failure scenarios up to [k] downed links through
      {!Soundness.check_all} — exhaustively when the scenario space is at
      most [frontier], otherwise an importance sample whose size doubles
      every round;
    + on a mismatch, {b shrink} the scenario to 1-minimal
      ({!Scenario.shrink}), collect {e every} node whose verdict
      disagrees, add them to the pin set, and go to 1.

    Every round is monotone — pins only grow, so the partition only
    refines — which bounds the loop by the node count: in the worst case
    every node is pinned and the abstraction {e is} the concrete network
    (the identity abstraction, trivially sound). Budget or retry
    exhaustion therefore degrades to that identity fallback, exactly like
    a budgeted [bonsai compress --degrade] run, rather than ever emitting
    an unsound artifact.

    Scenario re-solves are memoized ({!Fault_engine.cache}): the concrete
    side shares one cache across all rounds (the concrete network never
    changes), the abstract side one per round. *)

type round_log = {
  rl_round : int;  (** 1-based sweep number *)
  rl_abs_nodes : int;  (** abstract nodes entering this sweep *)
  rl_abs_links : int;
  rl_scenarios : int;  (** scenarios checked before the sweep ended *)
  rl_counterexample : Scenario.t option;
      (** the 1-minimal failing scenario ([None]: clean sweep) *)
  rl_mismatches : Soundness.mismatch list;
      (** every disagreeing node on the minimal scenario *)
  rl_new_pins : int list;  (** nodes pinned in response, sorted *)
  rl_total_pins : int;  (** cumulative pin count after this round *)
}

type t = {
  result : Bonsai_api.ec_result;
      (** the final abstraction; [degraded] iff a fallback fired *)
  rounds : round_log list;  (** chronological; one entry per sweep *)
  pins : int list;  (** final pin set, sorted *)
  n_scenarios : int;  (** scenario checks summed over all sweeps *)
  n_counterexamples : int;
  cache_hits : int;  (** re-solves avoided, both sides, all rounds *)
  fallback : Bonsai_api.fallback;
  sound : bool;
      (** the abstraction passed a full sweep ([false] only when repair
          was disabled and a counterexample was found) *)
  plan_exhaustive : bool;  (** scenario sweeps enumerate, not sample *)
  k : int;
}

val harden_exn :
  ?k:int ->
  ?rounds:int ->
  ?frontier:int ->
  ?samples:int ->
  ?seed:int ->
  ?budget:Budget.t ->
  Device.network ->
  Ecs.ec ->
  t
(** Run the repair loop for one destination class.

    [k] (default 1) bounds simultaneous link failures per scenario.
    [rounds] (default 8) bounds {e repair} attempts, i.e. recompressions
    with a grown pin set; [rounds = 0] disables repair — the sweep then
    only diagnoses, and a counterexample yields [sound = false] with the
    unrepaired abstraction (callers map this to the soundness-break exit
    code). [frontier] (default 1024) caps exhaustive enumeration: a
    scenario space at most this large is swept completely, a larger one
    is importance-sampled starting at [samples] (default 64) scenarios,
    doubling every round ([seed] fixes the sample; a widened sample
    extends the previous one, keeping rounds comparable). [budget]
    bounds the whole loop (compression phases tick it as usual, the
    sweep checks it per scenario); exhaustion degrades to the identity
    abstraction instead of raising.

    @raise Invalid_argument on negative [k]/[rounds] or an anycast
    class. *)

val harden :
  ?k:int ->
  ?rounds:int ->
  ?frontier:int ->
  ?samples:int ->
  ?seed:int ->
  ?budget:Budget.t ->
  Device.network ->
  Ecs.ec ->
  (t, Bonsai_error.t) result
(** {!harden_exn} behind the crash-proof boundary
    ({!Bonsai_error.protect}); [Invalid_argument] becomes
    [Compile_error]. Registered as {!Bonsai_api.compress_fault_sound} at
    link time. *)

val to_hardened : t -> Bonsai_api.hardened
(** The core-level summary (drops the per-round trace and scenario
    payloads). *)

val ratio : t -> float * float
(** (node, link) compression ratio of the final abstraction — 1.0/1.0
    when repair degraded to identity. *)

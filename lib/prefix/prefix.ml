type t = { addr : Ipv4.t; len : int }

let mask len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: bad length";
  let a = Ipv4.to_int addr land mask len in
  { addr = Ipv4.of_int32_bits a; len }

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> make a 32) (Ipv4.of_string_opt s)
  | Some i -> (
    let addr = String.sub s 0 i in
    let len = String.sub s (i + 1) (String.length s - i - 1) in
    match (Ipv4.of_string_opt addr, int_of_string_opt len) with
    | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
    | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg ("Prefix.of_string: " ^ s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.addr) p.len
let pp ppf p = Format.pp_print_string ppf (to_string p)

let length p = p.len

let compare a b =
  match Int.compare (Ipv4.to_int a.addr) (Ipv4.to_int b.addr) with
  | 0 -> Int.compare a.len b.len
  | c -> c

let equal a b = compare a b = 0

let mem a p = Ipv4.to_int a land mask p.len = Ipv4.to_int p.addr

let subset p q = p.len >= q.len && mem p.addr q

let overlap p q = subset p q || subset q p

let bit p i =
  if i < 0 || i >= p.len then invalid_arg "Prefix.bit: index out of range";
  Ipv4.bit p.addr i

let split p =
  if p.len >= 32 then invalid_arg "Prefix.split: cannot split a /32";
  let lo = make p.addr (p.len + 1) in
  let hi_addr =
    Ipv4.of_int32_bits (Ipv4.to_int p.addr lor (1 lsl (31 - p.len)))
  in
  (lo, make hi_addr (p.len + 1))

let default = make (Ipv4.of_int32_bits 0) 0

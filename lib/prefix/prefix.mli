(** IPv4 prefixes (address + mask length) and containment tests. *)

type t = private { addr : Ipv4.t; len : int }

val make : Ipv4.t -> int -> t
(** [make addr len] normalizes [addr] by zeroing host bits.
    @raise Invalid_argument unless [0 <= len <= 32]. *)

val of_string : string -> t
(** Parse ["a.b.c.d/len"]. A bare address is read as a /32. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

(** Mask length in bits (0..32). *)
val length : t -> int

val mem : Ipv4.t -> t -> bool
(** [mem a p] holds when address [a] lies inside prefix [p]. *)

val subset : t -> t -> bool
(** [subset p q] holds when every address of [p] lies in [q]. *)

val overlap : t -> t -> bool

val bit : t -> int -> bool
(** [bit p i] is bit [i] of the prefix address, [0 <= i < len p]. *)

val split : t -> t * t
(** [split p] is the two half-prefixes of [p].
    @raise Invalid_argument on a /32. *)

val default : t
(** [0.0.0.0/0]. *)

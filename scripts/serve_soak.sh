#!/usr/bin/env bash
# Soak the resident engine over a real unix socket — the transport the
# golden --stdio tests cannot cover. Phases:
#
#   1. mixed request stream; typed errors (budget-exceeded, bad
#      request) must stay typed and map to the documented exit codes
#   2. SIGTERM mid-stream: drain, checkpoint, exit 0
#   3. restart: warm restore; compress response byte-identical to cold
#   4. kill -9: the periodic checkpoint (--checkpoint-every 1) survives
#      and the restart restores every loaded network
#   5. corrupt checkpoint: cold rebuild with a warning, never a crash
#
# Every request must produce exactly one typed JSON response — any
# empty read, connection error, or unexpected exit code fails the soak.
set -u

BIN=${BIN:-_build/default/bin/bonsai_cli.exe}
DIR=$(mktemp -d)
SOCK="$DIR/bonsai.sock"
CKPT="$DIR/warm.ckpt"
SRV=

fail() {
  echo "serve_soak FAIL: $*" >&2
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null
  exit 1
}
cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

start_server() { # logfile extra-args...
  local log=$1
  shift
  # a kill -9 leaves the previous socket file behind; remove it so the
  # readiness probe below sees the new server's bind, not the stale file
  rm -f "$SOCK"
  "$BIN" serve --socket "$SOCK" --checkpoint "$CKPT" "$@" 2>"$log" &
  SRV=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "server never created $SOCK ($(cat "$log"))"
}

req() { # expected-exit-code outfile request-args...
  local want=$1 out=$2
  shift 2
  "$BIN" request --socket "$SOCK" "$@" >"$out"
  local code=$?
  [ "$code" -eq "$want" ] ||
    fail "request $* exited $code, want $want ($(cat "$out"))"
  grep -q '"ok":' "$out" ||
    fail "request $* got a non-typed response: $(cat "$out")"
}

echo "== phase 1: mixed stream =="
start_server "$DIR/s1.log" --checkpoint-every 1 --max-inflight 8
req 0 "$DIR/r.json" health
req 0 "$DIR/r.json" load --network ring:6
req 0 "$DIR/cold.json" compress --network ring:6
req 0 "$DIR/r.json" compress --network ring:6 --ec 10.0.1.0/24
req 0 "$DIR/r.json" lint --network ring:6
req 0 "$DIR/r.json" flow --network ring:6
req 0 "$DIR/r.json" diff --network ring:6 --to ring:6
req 0 "$DIR/r.json" stats
# request isolation: a starved request fails typed, the server lives on
req 3 "$DIR/r.json" compress --network mesh:4 --budget-ticks 1
req 124 "$DIR/r.json" frobnicate
req 124 "$DIR/r.json" compress # missing network param
req 0 "$DIR/r.json" health

echo "== phase 2: SIGTERM mid-stream =="
(
  for _ in 1 2 3; do
    "$BIN" request --socket "$SOCK" compress --network ring:6 \
      >/dev/null 2>&1
  done
) &
STREAM=$!
sleep 0.3
kill -TERM "$SRV"
wait "$SRV"
code=$?
[ "$code" -eq 0 ] || fail "SIGTERM exit code $code, want 0 (drained)"
wait "$STREAM" 2>/dev/null
SRV=
[ -f "$CKPT" ] || fail "no checkpoint written on SIGTERM"

echo "== phase 3: restart restores warm state =="
start_server "$DIR/s2.log" --checkpoint-every 1
grep -q "restored" "$DIR/s2.log" ||
  fail "restart did not restore ($(cat "$DIR/s2.log"))"
req 0 "$DIR/stats.json" stats
grep -q '"restored_from_checkpoint":true' "$DIR/stats.json" ||
  fail "stats does not report the restore: $(cat "$DIR/stats.json")"
req 0 "$DIR/warm.json" compress --network ring:6
cmp -s "$DIR/cold.json" "$DIR/warm.json" ||
  fail "warm-restored compress differs from the cold response"

echo "== phase 4: kill -9 survives via the periodic checkpoint =="
req 0 "$DIR/r.json" load --network ring:8
sleep 0.7 # let the post-response checkpoint land before the kill
kill -9 "$SRV"
wait "$SRV" 2>/dev/null
SRV=
start_server "$DIR/s3.log" --checkpoint-every 1
grep -q "restored" "$DIR/s3.log" ||
  fail "restart after kill -9 did not restore ($(cat "$DIR/s3.log"))"
req 0 "$DIR/warm2.json" compress --network ring:6
cmp -s "$DIR/cold.json" "$DIR/warm2.json" ||
  fail "post-kill warm compress differs from the cold response"
req 0 "$DIR/r.json" compress --network ring:8
req 0 "$DIR/r.json" shutdown
wait "$SRV"
code=$?
[ "$code" -eq 0 ] || fail "shutdown op exit code $code, want 0"
SRV=

echo "== phase 5: corrupt checkpoint degrades to cold =="
printf 'not a checkpoint\n' >"$CKPT"
start_server "$DIR/s4.log"
grep -q "cold start" "$DIR/s4.log" ||
  fail "corrupt checkpoint not reported ($(cat "$DIR/s4.log"))"
req 0 "$DIR/r.json" health
req 0 "$DIR/cold2.json" compress --network ring:6
cmp -s "$DIR/cold.json" "$DIR/cold2.json" ||
  fail "cold rebuild after corruption is not deterministic"
req 0 "$DIR/r.json" shutdown
wait "$SRV"
code=$?
[ "$code" -eq 0 ] || fail "exit after corrupt-checkpoint start was $code"
SRV=

echo "serve_soak PASS"

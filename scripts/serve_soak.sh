#!/usr/bin/env bash
# Soak the resident engine over a real unix socket — the transport the
# golden --stdio tests cannot cover. Phases:
#
#   1. mixed request stream (including dataplane-diff against the warm
#      incremental state); typed errors (budget-exceeded, bad request)
#      must stay typed and map to the documented exit codes
#   2. SIGTERM mid-stream: drain, checkpoint, exit 0
#   3. restart: warm restore; compress response byte-identical to cold
#   4. kill -9: the periodic checkpoint (--checkpoint-every 1) survives
#      and the restart restores every loaded network
#   5. corrupt checkpoint: cold rebuild with a warning, never a crash
#   6. torn checkpoint: truncation at random offsets must yield a clean
#      restore-or-cold start on every offset, never a crash
#   7. kill -9 racing the periodic checkpoint writer: whatever half-file
#      the kill leaves behind, the restart starts cleanly
#   8. certificates: a corrupted certificate is refused with exit 8 and
#      REFUTED details; truncation is refused as unparsable
#   9. serve self-audit: a corrupted warm abstraction is refuted,
#      quarantined with a structured incident, and the next answer comes
#      from a cold rebuild, byte-identical to the honest one
#
# Every request must produce exactly one typed JSON response — any
# empty read, connection error, or unexpected exit code fails the soak.
set -u

BIN=${BIN:-_build/default/bin/bonsai_cli.exe}
DIR=$(mktemp -d)
SOCK="$DIR/bonsai.sock"
CKPT="$DIR/warm.ckpt"
SRV=

fail() {
  echo "serve_soak FAIL: $*" >&2
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null
  # keep server logs and incident records for the CI artifact upload
  if [ -n "${SOAK_KEEP_DIR:-}" ]; then
    mkdir -p "$SOAK_KEEP_DIR"
    cp -r "$DIR"/. "$SOAK_KEEP_DIR"/ 2>/dev/null
    echo "serve_soak: scratch state kept in $SOAK_KEEP_DIR" >&2
  fi
  exit 1
}
cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

start_server() { # logfile extra-args...
  local log=$1
  shift
  # a kill -9 leaves the previous socket file behind; remove it so the
  # readiness probe below sees the new server's bind, not the stale file
  rm -f "$SOCK"
  "$BIN" serve --socket "$SOCK" --checkpoint "$CKPT" "$@" 2>"$log" &
  SRV=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "server never created $SOCK ($(cat "$log"))"
}

req() { # expected-exit-code outfile request-args...
  local want=$1 out=$2
  shift 2
  "$BIN" request --socket "$SOCK" "$@" >"$out"
  local code=$?
  [ "$code" -eq "$want" ] ||
    fail "request $* exited $code, want $want ($(cat "$out"))"
  grep -q '"ok":' "$out" ||
    fail "request $* got a non-typed response: $(cat "$out")"
}

echo "== phase 1: mixed stream =="
start_server "$DIR/s1.log" --checkpoint-every 1 --max-inflight 8
req 0 "$DIR/r.json" health
req 0 "$DIR/r.json" load --network ring:6
req 0 "$DIR/cold.json" compress --network ring:6
req 0 "$DIR/r.json" compress --network ring:6 --ec 10.0.1.0/24
req 0 "$DIR/r.json" lint --network ring:6
req 0 "$DIR/r.json" flow --network ring:6
req 0 "$DIR/r.json" diff --network ring:6 --to ring:6
# dataplane-diff against the warm state: identical specs reuse every
# class; a topology change reports FIB-level changes; a starved request
# fails typed without poisoning the server
req 0 "$DIR/dpd.json" dataplane-diff --network ring:6 --to ring:6
grep -q '"changed":false' "$DIR/dpd.json" ||
  fail "identical dataplane-diff reported changes: $(cat "$DIR/dpd.json")"
grep -q '"reused":6' "$DIR/dpd.json" ||
  fail "warm dataplane-diff did not reuse all classes: $(cat "$DIR/dpd.json")"
req 0 "$DIR/dpd2.json" dataplane-diff --network ring:6 --to ring:8
grep -q '"changed":true' "$DIR/dpd2.json" ||
  fail "grown-ring dataplane-diff saw no changes: $(cat "$DIR/dpd2.json")"
req 3 "$DIR/r.json" dataplane-diff --network mesh:4 --to ring:6 --budget-ticks 1
req 0 "$DIR/r.json" stats
# request isolation: a starved request fails typed, the server lives on
req 3 "$DIR/r.json" compress --network mesh:4 --budget-ticks 1
req 124 "$DIR/r.json" frobnicate
req 124 "$DIR/r.json" compress # missing network param
req 0 "$DIR/r.json" health

echo "== phase 2: SIGTERM mid-stream =="
(
  for _ in 1 2 3; do
    "$BIN" request --socket "$SOCK" compress --network ring:6 \
      >/dev/null 2>&1
  done
) &
STREAM=$!
sleep 0.3
kill -TERM "$SRV"
wait "$SRV"
code=$?
[ "$code" -eq 0 ] || fail "SIGTERM exit code $code, want 0 (drained)"
wait "$STREAM" 2>/dev/null
SRV=
[ -f "$CKPT" ] || fail "no checkpoint written on SIGTERM"

echo "== phase 3: restart restores warm state =="
start_server "$DIR/s2.log" --checkpoint-every 1
grep -q "restored" "$DIR/s2.log" ||
  fail "restart did not restore ($(cat "$DIR/s2.log"))"
req 0 "$DIR/stats.json" stats
grep -q '"restored_from_checkpoint":true' "$DIR/stats.json" ||
  fail "stats does not report the restore: $(cat "$DIR/stats.json")"
req 0 "$DIR/warm.json" compress --network ring:6
cmp -s "$DIR/cold.json" "$DIR/warm.json" ||
  fail "warm-restored compress differs from the cold response"

echo "== phase 4: kill -9 survives via the periodic checkpoint =="
req 0 "$DIR/r.json" load --network ring:8
sleep 0.7 # let the post-response checkpoint land before the kill
kill -9 "$SRV"
wait "$SRV" 2>/dev/null
SRV=
start_server "$DIR/s3.log" --checkpoint-every 1
grep -q "restored" "$DIR/s3.log" ||
  fail "restart after kill -9 did not restore ($(cat "$DIR/s3.log"))"
req 0 "$DIR/warm2.json" compress --network ring:6
cmp -s "$DIR/cold.json" "$DIR/warm2.json" ||
  fail "post-kill warm compress differs from the cold response"
req 0 "$DIR/r.json" compress --network ring:8
req 0 "$DIR/r.json" shutdown
wait "$SRV"
code=$?
[ "$code" -eq 0 ] || fail "shutdown op exit code $code, want 0"
SRV=

echo "== phase 5: corrupt checkpoint degrades to cold =="
printf 'not a checkpoint\n' >"$CKPT"
start_server "$DIR/s4.log"
grep -q "cold start" "$DIR/s4.log" ||
  fail "corrupt checkpoint not reported ($(cat "$DIR/s4.log"))"
req 0 "$DIR/r.json" health
req 0 "$DIR/cold2.json" compress --network ring:6
cmp -s "$DIR/cold.json" "$DIR/cold2.json" ||
  fail "cold rebuild after corruption is not deterministic"
req 0 "$DIR/r.json" shutdown
wait "$SRV"
code=$?
[ "$code" -eq 0 ] || fail "exit after corrupt-checkpoint start was $code"
SRV=

echo "== phase 6: torn checkpoints (random truncation offsets) =="
# regenerate a real checkpoint to tear
start_server "$DIR/s5.log" --checkpoint-every 1
req 0 "$DIR/r.json" load --network ring:6
req 0 "$DIR/r.json" compress --network ring:6
req 0 "$DIR/r.json" shutdown
wait "$SRV"
SRV=
[ -f "$CKPT" ] || fail "no checkpoint to tear"
cp "$CKPT" "$DIR/good.ckpt"
size=$(wc -c <"$DIR/good.ckpt")
for i in 1 2 3 4; do
  cut=$((RANDOM % size))
  head -c "$cut" "$DIR/good.ckpt" >"$CKPT"
  start_server "$DIR/s6-$i.log"
  grep -Eq "restored|cold start" "$DIR/s6-$i.log" ||
    fail "torn checkpoint (cut=$cut/$size) neither restored nor cold:\
 $(cat "$DIR/s6-$i.log")"
  req 0 "$DIR/torn.json" compress --network ring:6
  cmp -s "$DIR/cold.json" "$DIR/torn.json" ||
    fail "answer after torn checkpoint (cut=$cut) differs from cold"
  req 0 "$DIR/r.json" shutdown
  wait "$SRV"
  code=$?
  [ "$code" -eq 0 ] || fail "torn-checkpoint run (cut=$cut) exited $code"
  SRV=
done

echo "== phase 7: kill -9 racing the checkpoint writer =="
for i in 1 2 3; do
  rm -f "$CKPT"
  start_server "$DIR/s7-$i.log" --checkpoint-every 1
  # hammer ops that each trigger a post-response checkpoint write, then
  # kill -9 at an arbitrary point in the stream
  (
    while :; do
      "$BIN" request --socket "$SOCK" load --network ring:4 \
        >/dev/null 2>&1 || exit 0
      "$BIN" request --socket "$SOCK" load --network mesh:4 \
        >/dev/null 2>&1 || exit 0
    done
  ) &
  HAMMER=$!
  sleep 0.$((2 + RANDOM % 5))
  kill -9 "$SRV"
  wait "$SRV" 2>/dev/null
  SRV=
  kill "$HAMMER" 2>/dev/null
  wait "$HAMMER" 2>/dev/null
  # whatever state the kill left the checkpoint file in, the restart
  # must come up clean and answer correctly (a missing file — killed
  # before the first atomic write — starts cold with no log line)
  had_ckpt=0
  [ -f "$CKPT" ] && had_ckpt=1
  start_server "$DIR/s7r-$i.log"
  if [ "$had_ckpt" -eq 1 ]; then
    grep -Eq "restored|cold start" "$DIR/s7r-$i.log" ||
      fail "restart after checkpoint race: $(cat "$DIR/s7r-$i.log")"
  fi
  req 0 "$DIR/race.json" compress --network ring:6
  cmp -s "$DIR/cold.json" "$DIR/race.json" ||
    fail "answer after checkpoint race $i differs from cold"
  req 0 "$DIR/r.json" shutdown
  wait "$SRV"
  code=$?
  [ "$code" -eq 0 ] || fail "post-race run $i exited $code"
  SRV=
done

echo "== phase 8: corrupted certificate is refused (exit 8) =="
CERT="$DIR/ring6.cert"
"$BIN" compress ring:6 --all --certify --certificate "$CERT" >/dev/null ||
  fail "compress --certify on ring:6 failed"
"$BIN" certify ring:6 "$CERT" >/dev/null ||
  fail "honest certificate did not verify"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$CERT" "$DIR/bad.cert" <<'PY'
import json, sys
c = json.load(open(sys.argv[1]))
cls = c["classes"][0]
# move a node between role groups: the checker must refute the partition
for i, g in enumerate(cls["groups"]):
    if i > 0 and len(g) > 1:
        moved = g.pop()
        cls["groups"][0].append(moved)
        break
else:
    sys.exit("no multi-member group to corrupt")
json.dump(c, open(sys.argv[2], "w"))
PY
  "$BIN" certify ring:6 "$DIR/bad.cert" >"$DIR/cert.out" 2>&1
  code=$?
  [ "$code" -eq 8 ] ||
    fail "mutated certificate exited $code, want 8 ($(cat "$DIR/cert.out"))"
  grep -q "REFUTED" "$DIR/cert.out" ||
    fail "mutated certificate refused without details: $(cat "$DIR/cert.out")"
fi
head -c $((RANDOM % 64)) "$CERT" >"$DIR/torn.cert"
"$BIN" certify ring:6 "$DIR/torn.cert" >"$DIR/cert2.out" 2>&1
code=$?
[ "$code" -eq 8 ] || fail "truncated certificate exited $code, want 8"

echo "== phase 9: serve self-audit quarantines a corrupted abstraction =="
rm -f "$CKPT"
export BONSAI_TEST_HOOKS=1
start_server "$DIR/s8.log" --checkpoint-every 1
unset BONSAI_TEST_HOOKS
req 0 "$DIR/cold3.json" compress --network ring:6
"$BIN" request --socket "$SOCK" \
  --raw '{"op":"test-corrupt","network":"ring:6"}' >"$DIR/tc.json" ||
  fail "test-corrupt failed: $(cat "$DIR/tc.json")"
# the corruption is caught either by the idle self-audit (if the server
# gets a quiet moment first) or by this explicit audit — both paths end
# in quarantine + incident; only the wrong answer must never escape
"$BIN" request --socket "$SOCK" \
  --raw '{"op":"audit","audit":"full"}' >"$DIR/audit.json" ||
  fail "audit op failed: $(cat "$DIR/audit.json")"
grep -q '"ok":true' "$DIR/audit.json" ||
  fail "audit op not ok: $(cat "$DIR/audit.json")"
req 0 "$DIR/rebuilt.json" compress --network ring:6
cmp -s "$DIR/cold3.json" "$DIR/rebuilt.json" ||
  fail "post-quarantine rebuild differs from the honest cold answer"
req 0 "$DIR/stats2.json" stats
grep -q '"incidents":1' "$DIR/stats2.json" ||
  fail "incident not counted in stats: $(cat "$DIR/stats2.json")"
req 0 "$DIR/r.json" shutdown
wait "$SRV"
code=$?
[ "$code" -eq 0 ] || fail "self-audit phase exit code $code"
SRV=
grep -q "certificate-incident" "$DIR/s8.log" ||
  fail "no structured incident in the server log: $(cat "$DIR/s8.log")"

echo "serve_soak PASS"

#!/usr/bin/env bash
# Fail if polymorphic comparison spellings reappear in directories that
# were swept to typed equality (lib/bdd, lib/routing, lib/faults).
# Attached to @runtest via the @forbid-polycompare alias in the root dune.
set -u

bad=0
for f in lib/bdd/*.ml lib/routing/*.ml lib/faults/*.ml; do
  [ -e "$f" ] || continue
  if grep -nE 'Stdlib\.compare|Pervasives\.compare|let compare = compare\b|attr_equal = \( = \)' "$f"; then
    echo "forbid-polycompare: polymorphic compare in $f (use typed equality)" >&2
    bad=1
  fi
done
exit $bad

(* bonsai: command-line frontend for control plane compression.

     bonsai info fattree:12
     bonsai compress wan --dot /tmp/wan.dot
     bonsai compress datacenter --ec 10.100.3.0/24
     bonsai verify fattree:12 --src edge3_1
     bonsai roles datacenter

   Network specifications: fattree:K, fattree-prefer:K, ring:N, mesh:N,
   random:N[:SEED], datacenter, wan. *)

(* A bad network spec / router name on the command line: reported as a
   usage error, not as one of the typed pipeline failures. *)
exception Usage of string

(* Resolves a network spec; [file:PATH] networks additionally carry a
   source location table for file:line diagnostics. Raises
   [Bonsai_error.Error (Parse_error _)] for an unparsable file and [Usage]
   for an unknown spec — both handled by [guarded] below, mapping parse
   errors to their dedicated exit code. *)
let resolve_network_full spec =
  let fail () =
    raise
      (Usage
         (Printf.sprintf
            "unknown network %S (expected fattree:K, fattree-prefer:K, \
             ring:N, mesh:N, random:N[:SEED], multiwan:R:S, datacenter, \
             wan, file:PATH)"
            spec))
  in
  let pure net = (net, None) in
  match String.split_on_char ':' spec with
  | "file" :: rest -> (
    match Config_text.load_full (String.concat ":" rest) with
    | Ok (net, locs) -> (net, Some locs)
    | Error ds ->
      Bonsai_error.error (Bonsai_error.Parse_error { diagnostics = ds }))
  | [ "datacenter" ] -> pure (Synthesis.datacenter ()).Synthesis.net
  | [ "wan" ] -> pure (Synthesis.wan ()).Synthesis.net
  | [ "fattree"; k ] -> (
    match int_of_string_opt k with
    | Some k -> pure (Synthesis.fattree_shortest_path (Generators.fattree ~k))
    | None -> fail ())
  | [ "fattree-prefer"; k ] -> (
    match int_of_string_opt k with
    | Some k -> pure (Synthesis.fattree_prefer_bottom (Generators.fattree ~k))
    | None -> fail ())
  | [ "ring"; n ] -> (
    match int_of_string_opt n with
    | Some n -> pure (Synthesis.ring_bgp ~n)
    | None -> fail ())
  | [ "mesh"; n ] -> (
    match int_of_string_opt n with
    | Some n -> pure (Synthesis.mesh_bgp ~n)
    | None -> fail ())
  | [ "multiwan"; r; s ] -> (
    (* R regions of S routers each, module-annotated (plus a core
       module) — the modular-compression workload at any scale. *)
    match (int_of_string_opt r, int_of_string_opt s) with
    | Some regions, Some region_size ->
      pure (Synthesis.multiwan ~regions ~region_size).Synthesis.net
    | _ -> fail ())
  | [ "random"; n ] | [ "random"; n; _ ] -> (
    let seed =
      match String.split_on_char ':' spec with
      | [ _; _; s ] -> Option.value ~default:0 (int_of_string_opt s)
      | _ -> 0
    in
    match int_of_string_opt n with
    | Some n -> pure (Synthesis.random_network ~n ~seed)
    | None -> fail ())
  | _ -> fail ()

let resolve_network spec = fst (resolve_network_full spec)

let network_arg =
  Cmdliner.Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"NETWORK"
        ~doc:
          "Network specification (e.g. fattree:12, or file:PATH for a \
           configuration file).")

(* Every command body runs under this wrapper: commands return their exit
   code, and any escaping failure is converted to the typed taxonomy and
   its documented exit code (budget 3, parse 4, compile 5, divergence 6,
   soundness 7, internal 9). *)
let guarded f =
  match f () with
  | code -> code
  | exception Usage m ->
    Format.eprintf "bonsai: %s@." m;
    Cmdliner.Cmd.Exit.cli_error
  | exception Failure m ->
    Format.eprintf "bonsai: %s@." m;
    Cmdliner.Cmd.Exit.some_error
  | exception e ->
    let err = Bonsai_error.of_exn e in
    Format.eprintf "bonsai: @[<v>%a@]@." Bonsai_error.pp err;
    Bonsai_error.exit_code err

let make_budget ms ticks =
  match (ms, ticks) with
  | None, None -> Budget.infinite
  | _ ->
    Budget.create
      ?deadline_s:(Option.map (fun m -> float_of_int m /. 1000.0) ms)
      ?max_ticks:ticks ()

let find_ec net = function
  | None -> List.hd (Ecs.compute net)
  | Some p -> (
    let p = Prefix.of_string p in
    match
      List.find_opt
        (fun ec -> Prefix.equal ec.Ecs.ec_prefix p)
        (Ecs.compute net)
    with
    | Some ec -> ec
    | None -> Format.kasprintf failwith "no destination class %a" Prefix.pp p)

(* JSON output helpers, shared by every subcommand with --format json:
   stdout carries exactly one machine-parseable document (or, for watch,
   one document per line), timings and diagnostics go to stderr. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let bdd_stats_json (st : Bdd.stats) =
  Printf.sprintf
    "{\"nodes\": %d, \"apply_hits\": %d, \"apply_misses\": %d, \"ite_hits\": \
     %d, \"ite_misses\": %d}"
    st.Bdd.nodes st.Bdd.apply_hits st.Bdd.apply_misses st.Bdd.ite_hits
    st.Bdd.ite_misses

let degradation_json = function
  | None -> "null"
  | Some (d : Bonsai_api.degradation) ->
    Printf.sprintf "{\"completed\": %d, \"total\": %d}" d.Bonsai_api.deg_completed
      d.Bonsai_api.deg_total

(* --- info ----------------------------------------------------------- *)

let info_cmd_run spec =
  guarded @@ fun () ->
  let net = resolve_network spec in
  let g = net.Device.graph in
  Format.printf "nodes: %d@." (Graph.n_nodes g);
  Format.printf "links: %d@." (Graph.n_links g);
  Format.printf "destination classes: %d@." (Ecs.count net);
  Format.printf "configuration lines: %d@." (Device.config_lines net);
  Format.printf "unique roles: %d@." (Bonsai_api.roles net);
  (match Device.validate net with
  | Ok () -> Format.printf "configuration: valid@."
  | Error e -> Format.printf "configuration: INVALID (%s)@." e);
  0

(* --- compress --------------------------------------------------------- *)

(* Re-validate the effective-abstraction conditions (paper Figure 4) on a
   finished abstraction. *)
let check_violations net (r : Bonsai_api.ec_result) =
  let _, signature =
    Compile.edge_signatures
      ~universe:r.Bonsai_api.abstraction.Abstraction.universe net
      ~dest:r.Bonsai_api.ec.Ecs.ec_prefix
  in
  Check.check r.Bonsai_api.abstraction ~signature

(* Text renderer of the above; true iff clean. *)
let check_result net (r : Bonsai_api.ec_result) =
  match check_violations net r with
  | [] ->
    Format.printf "check %a: ok@." Prefix.pp r.Bonsai_api.ec.Ecs.ec_prefix;
    true
  | vs ->
    Format.printf "check %a: %d violation%s@." Prefix.pp
      r.Bonsai_api.ec.Ecs.ec_prefix (List.length vs)
      (if List.length vs = 1 then "" else "s");
    List.iter (Format.printf "  %a@." Check.pp_violation) vs;
    false

(* --- certification ------------------------------------------------------ *)

(* --certify: export the result as a certificate and re-check it with the
   independent checker (lib/certify). Refuted is the one outcome
   --degrade must never mask — a wrong answer escaping as exit 0 is
   exactly what certification exists to prevent — so it raises the typed
   Certificate_failure (exit 8) through [guarded]. Budget exhaustion
   mid-audit is `Incomplete: a truthful "not certified", never a false
   "certified". *)
let write_certificate path cert =
  Out_channel.with_open_bin path (fun oc ->
      output_string oc (Json.to_string (Certify.to_json cert));
      output_char oc '\n')

let run_certify ~budget ~audit ~certificate net cert =
  Option.iter (fun path -> write_certificate path cert) certificate;
  match Certify.check ~budget ~audit net cert with
  | Certify.Certified { ecs; obligations } ->
    Printf.eprintf "certified: %d class%s, %d obligations (%s audit)\n%!" ecs
      (if ecs = 1 then "" else "es")
      obligations
      (Certify.audit_to_string audit);
    `Certified
  | Certify.Audit_incomplete info ->
    Printf.eprintf
      "certification incomplete: audit budget ran out in %s (%d ticks, \
       %.3fs)\n\
       %!"
      info.Budget.phase info.Budget.ticks info.Budget.elapsed_s;
    `Incomplete
  | Certify.Refuted fs ->
    Bonsai_error.error
      (Bonsai_error.Certificate_failure (Certify.failures_string fs))

(* --check-dataplane: compile the concrete and abstract FIBs per class
   and trace every destination from every role representative through
   both (lib/dataplane's bisimulation check). A diverging witness is a
   soundness break (exit 7) — like a refuted certificate, it must never
   be masked by --degrade. Text goes to stdout; under --format json it
   goes to stderr so the JSON document stays golden-testable. *)
let run_check_dataplane ~budget ~format net
    (results : Bonsai_api.ec_result list) =
  let emit s =
    match format with `Text -> print_endline s | `Json -> prerr_endline s
  in
  match Dp_bisim.check ~budget net results with
  | Dp_bisim.Equivalent { classes; traces } ->
    emit
      (Printf.sprintf "dataplane: %d class%s bisimulate (%d traces compared)"
         classes
         (if classes = 1 then "" else "es")
         traces);
    `Ok
  | Dp_bisim.Incomplete { classes; unknown; _ } ->
    emit
      (Printf.sprintf "dataplane: %d classes checked, %d UNKNOWN" classes
         (List.length unknown));
    `Incomplete
  | Dp_bisim.Refuted rf ->
    let t =
      match
        List.find_opt
          (fun (r : Bonsai_api.ec_result) ->
            Prefix.equal r.Bonsai_api.ec.Ecs.ec_prefix rf.Dp_bisim.rf_prefix)
          results
      with
      | Some r -> r.Bonsai_api.abstraction
      | None -> assert false
    in
    Bonsai_error.error
      (Bonsai_error.Soundness_break (Dp_bisim.refutation_string net t rf))

let compress_cmd_run spec ec_prefix dot all check check_dataplane format
    budget_ms budget_ticks degrade certify audit certificate modules =
  guarded @@ fun () ->
  let net = resolve_network spec in
  let budget = make_budget budget_ms budget_ticks in
  (* --modules: compress module-by-module with fault isolation, then
     compose the per-module partitions into the whole-network summary
     (exact under the seeded-path guards — DESIGN.md §16). Implies
     --all: composition covers every destination class anyway. The
     per-module health table goes to stderr; stdout keeps the normal
     compress shape. *)
  let modular_summary =
    match modules with
    | None -> None
    | Some mode ->
      let st =
        match Modular.run ~mode ~budget net with
        | Ok st -> st
        | Error e -> Bonsai_error.error e
      in
      Format.eprintf "%a%!" Modular.pp_report (Modular.report st);
      (match Modular.compose ~budget st with
      | Ok s -> Some s
      | Error e -> Bonsai_error.error e)
  in
  let all = all || Option.is_some modular_summary in
  (* Elapsed wall clock is nondeterministic, so it goes to stderr; the
     degradation report on stdout stays golden-testable. *)
  let report_budget () =
    if not (Budget.is_infinite budget) then
      Printf.eprintf "budget: %d ticks consumed, %.3fs elapsed\n%!"
        (Budget.ticks budget) (Budget.elapsed_s budget)
  in
  let degrade_exit code = if degrade then 0 else code in
  let g = net.Device.graph in
  if all then begin
    let s =
      match modular_summary with
      | Some s -> s
      | None -> Bonsai_api.compress_exn ~budget net
    in
    let checked_ok = ref true in
    (match format with
    | `Text ->
      Format.printf "%a@." Bonsai_api.pp_summary s;
      report_budget ();
      checked_ok :=
        (not check)
        || List.fold_left
             (* degraded classes are the identity abstraction — nothing to
                re-check, and their report line already flags them *)
             (fun ok r -> (r.Bonsai_api.degraded || check_result net r) && ok)
             true s.Bonsai_api.results
    | `Json ->
      let class_json (r : Bonsai_api.ec_result) =
        let t = r.Bonsai_api.abstraction in
        let vs =
          if check && not r.Bonsai_api.degraded then
            List.length (check_violations net r)
          else 0
        in
        if vs > 0 then checked_ok := false;
        Printf.sprintf
          "{\"destination\": %s, \"abstract_nodes\": %d, \"abstract_links\": \
           %d, \"degraded\": %b%s}"
          (json_string
             (Format.asprintf "%a" Prefix.pp r.Bonsai_api.ec.Ecs.ec_prefix))
          (Abstraction.n_abstract t)
          (Graph.n_links t.Abstraction.abs_graph)
          r.Bonsai_api.degraded
          (if check then Printf.sprintf ", \"check_violations\": %d" vs
           else "")
      in
      let classes = List.map class_json s.Bonsai_api.results in
      let bdd =
        match s.Bonsai_api.results with
        | r :: _ ->
          bdd_stats_json
            (Bdd.stats
               r.Bonsai_api.abstraction.Abstraction.universe.Policy_bdd.man)
        | [] -> "null"
      in
      Format.printf "{@.";
      Format.printf "  \"network\": {\"nodes\": %d, \"links\": %d},@."
        (Graph.n_nodes g) (Graph.n_links g);
      Format.printf "  \"skipped_anycast\": %d,@." s.Bonsai_api.skipped_anycast;
      Format.printf "  \"classes\": [%s],@." (String.concat "," classes);
      Format.printf "  \"degradation\": %s,@."
        (degradation_json s.Bonsai_api.degradation);
      Format.printf "  \"bdd\": %s@." bdd;
      Format.printf "}@.";
      report_budget ());
    let dp_status =
      if check_dataplane then
        run_check_dataplane ~budget ~format net s.Bonsai_api.results
      else `Ok
    in
    let cert_status =
      if certify then
        run_certify ~budget ~audit ~certificate net
          (Certify.of_summary ~network:spec net s)
      else `Skipped
    in
    match (s.Bonsai_api.degradation, !checked_ok) with
    | Some _, _ -> degrade_exit 3
    | None, false -> degrade_exit 1
    | None, true -> (
      match (dp_status, cert_status) with
      | `Incomplete, _ | _, `Incomplete -> degrade_exit 3
      | `Ok, (`Certified | `Skipped) -> 0)
  end
  else begin
    let ec = find_ec net ec_prefix in
    (* Identity fallback built against a fresh, un-budgeted universe (the
       budgeted manager may be what ran out). *)
    let fallback () =
      let universe = Policy_bdd.universe_of_network net in
      {
        Bonsai_api.ec;
        abstraction =
          Abstraction.identity net ~dest:(Ecs.single_origin ec)
            ~dest_prefix:ec.Ecs.ec_prefix ~universe;
        refine_stats = { Refine.iterations = 0; splits = 0 };
        time_s = 0.0;
        degraded = true;
      }
    in
    let r, why =
      match Bonsai_api.compress_ec ~budget net ec with
      | Ok r -> (r, None)
      | Error (Bonsai_error.Budget_exceeded info) ->
        (fallback (), Some (`Budget info))
      | Error e -> Bonsai_error.error e
    in
    let r, why =
      if check && why = None then begin
        let ok =
          match format with
          | `Text -> check_result net r
          | `Json -> check_violations net r = []
        in
        if ok then (r, why) else (fallback (), Some `Check)
      end
      else (r, why)
    in
    let t = r.Bonsai_api.abstraction in
    (match dot with
    | None -> ()
    | Some path -> Dot.write_file ~path t.Abstraction.abs_graph);
    (match format with
    | `Text ->
      Format.printf "%a@." Abstraction.pp_summary t;
      Format.printf "compression time: %.3fs (%d refinement iterations)@."
        r.Bonsai_api.time_s r.Bonsai_api.refine_stats.Refine.iterations;
      (* the identity fallback has one role per node — listing it is noise *)
      if not r.Bonsai_api.degraded then
        Array.iteri
          (fun gid members ->
            Format.printf "  role %d (%d node%s%s): %s@." gid
              (List.length members)
              (if List.length members = 1 then "" else "s")
              (if t.Abstraction.copies.(gid) > 1 then
                 Printf.sprintf ", %d copies" t.Abstraction.copies.(gid)
               else "")
              (String.concat ", "
                 (List.map (Graph.name net.Device.graph)
                    (List.filteri (fun i _ -> i < 6) members)
                 @ if List.length members > 6 then [ "..." ] else [])))
          t.Abstraction.groups;
      (match dot with
      | None -> ()
      | Some path -> Format.printf "abstract topology written to %s@." path);
      (match why with
      | None -> ()
      | Some (`Budget info) ->
        Format.printf "@[<v>%a@]@." Bonsai_api.pp_degradation
          {
            Bonsai_api.deg_info = info;
            deg_completed = 0;
            deg_total = 1;
          }
      | Some `Check ->
        Format.printf
          "DEGRADED: abstraction failed --check; fell back to the identity \
           abstraction (abstract network = concrete network)@.")
    | `Json ->
      (* Wall time is nondeterministic; it goes to stderr so the JSON
         document stays golden-testable. *)
      let roles_json =
        if r.Bonsai_api.degraded then []
        else
          Array.to_list
            (Array.mapi
               (fun gid members ->
                 Printf.sprintf
                   "{\"id\": %d, \"copies\": %d, \"members\": [%s]}" gid
                   t.Abstraction.copies.(gid)
                   (String.concat ","
                      (List.map
                         (fun u ->
                           json_string (Graph.name net.Device.graph u))
                         members)))
               t.Abstraction.groups)
      in
      Format.printf "{@.";
      Format.printf "  \"network\": {\"nodes\": %d, \"links\": %d},@."
        (Graph.n_nodes g) (Graph.n_links g);
      Format.printf "  \"destination\": %s,@."
        (json_string
           (Format.asprintf "%a" Prefix.pp r.Bonsai_api.ec.Ecs.ec_prefix));
      Format.printf "  \"abstraction\": {\"nodes\": %d, \"links\": %d},@."
        (Abstraction.n_abstract t)
        (Graph.n_links t.Abstraction.abs_graph);
      Format.printf "  \"refine_iterations\": %d,@."
        r.Bonsai_api.refine_stats.Refine.iterations;
      Format.printf "  \"roles\": [%s],@." (String.concat "," roles_json);
      Format.printf "  \"degraded\": %b,@." r.Bonsai_api.degraded;
      Format.printf "  \"fallback\": %s,@."
        (json_string
           (match why with
           | None -> "none"
           | Some (`Budget _) -> "budget"
           | Some `Check -> "check"));
      Format.printf "  \"bdd\": %s@."
        (bdd_stats_json
           (Bdd.stats t.Abstraction.universe.Policy_bdd.man));
      Format.printf "}@.";
      Printf.eprintf "compression time: %.3fs\n%!" r.Bonsai_api.time_s);
    report_budget ();
    let dp_status =
      if check_dataplane then run_check_dataplane ~budget ~format net [ r ]
      else `Ok
    in
    let cert_status =
      if certify then
        run_certify ~budget ~audit ~certificate net
          { Certify.network = spec; certs = [ Certify.of_ec_result net r ] }
      else `Skipped
    in
    match why with
    | None -> (
      match (dp_status, cert_status) with
      | `Incomplete, _ | _, `Incomplete -> degrade_exit 3
      | `Ok, (`Certified | `Skipped) -> 0)
    | Some (`Budget _) -> degrade_exit 3
    | Some `Check -> degrade_exit 1
  end

(* --- modular: per-module compression with fault isolation --------------- *)

let modular_cmd_run spec mode count format budget_ms budget_ticks degrade
    certify inject_fault =
  guarded @@ fun () ->
  let budget = make_budget budget_ms budget_ticks in
  (* Escalated-retry pacing: a faulting module waits (briefly, growing
     per fault) before its second attempt — the same Backoff policy the
     watcher and `bonsai request` use. *)
  let bo = Backoff.create ~base_ms:10 ~cap_ms:2000 () in
  let retry_pause name =
    let ms = Backoff.note_failure bo in
    Printf.eprintf "modular: module %s faulted; retrying after %dms with an \
                    escalated slice\n%!" name ms;
    Unix.sleepf (float_of_int ms /. 1000.0)
  in
  let report_budget () =
    if not (Budget.is_infinite budget) then
      Printf.eprintf "budget: %d ticks consumed, %.3fs elapsed\n%!"
        (Budget.ticks budget) (Budget.elapsed_s budget)
  in
  let finish (rp : Modular.report) =
    (match format with
    | `Text -> Format.printf "%a%!" Modular.pp_report rp
    | `Json ->
      print_endline (Json.to_string (Json.Obj (Modular.report_json_fields rp))));
    report_budget ();
    let refuted =
      List.exists
        (fun (mr : Modular.module_report) ->
          mr.Modular.mr_health = Modular.Refuted)
        rp.Modular.rp_modules
    in
    if refuted then
      (* a refuted certificate is never masked by --degrade *)
      Bonsai_error.exit_code (Bonsai_error.Certificate_failure "")
    else if Modular.any_fault rp && not degrade then 3
    else 0
  in
  match String.split_on_char ':' spec with
  | [ "multiwan-stream"; r; s ] -> (
    (* The 10k-router path: modules are synthesized, compressed, and
       dropped one at a time — the whole network never materializes. *)
    match (int_of_string_opt r, int_of_string_opt s) with
    | Some regions, Some region_size -> (
      let seq = Synthesis.multiwan_stream ~regions ~region_size in
      match
        Modular.run_stream ~budget ~certify ~inject_fault ~retry_pause
          ~count:regions seq
      with
      | Ok rp -> finish rp
      | Error e -> Bonsai_error.error e)
    | _ ->
      raise (Usage "multiwan-stream spec is multiwan-stream:REGIONS:SIZE"))
  | _ -> (
    let net = resolve_network spec in
    match
      Modular.run ~mode ?count ~budget ~certify ~inject_fault ~retry_pause
        net
    with
    | Ok st -> finish (Modular.report st)
    | Error e -> Bonsai_error.error e)

(* --- diff / watch: incremental recompression --------------------------- *)

(* Everything deterministic about an [Incr.report]; wall time is printed
   separately (stderr for diff, inline for watch events, which are not
   golden-tested). *)
let report_json ?(recert = false) (rep : Incr.report) =
  Printf.sprintf
    "\"classes\": %d, \"reused\": %d, \"seeded\": %d, \"scratch\": %d, \
     \"full_rebuild\": %b,%s \"cache\": {\"hits\": %d, \"misses\": %d}, \
     \"degradation\": %s"
    rep.Incr.r_ecs rep.Incr.r_reused rep.Incr.r_seeded rep.Incr.r_scratch
    rep.Incr.r_full_rebuild
    (if recert then
       Printf.sprintf " \"recertified\": %d, \"recert_refuted\": %d,"
         rep.Incr.r_recertified rep.Incr.r_recert_refuted
     else "")
    rep.Incr.r_cache_hits rep.Incr.r_cache_misses
    (degradation_json rep.Incr.r_degradation)

let deltas_json deltas =
  String.concat "," (List.map (fun d -> json_string (Delta.to_string d)) deltas)

let report_text ?(recert = false) (rep : Incr.report) =
  Format.printf "classes: %d (%d reused, %d seeded, %d scratch)%s@."
    rep.Incr.r_ecs rep.Incr.r_reused rep.Incr.r_seeded rep.Incr.r_scratch
    (if rep.Incr.r_full_rebuild then " [full rebuild]" else "");
  if recert then
    Format.printf "re-certified: %d (%d refuted, recomputed from scratch)@."
      rep.Incr.r_recertified rep.Incr.r_recert_refuted;
  Format.printf "signature cache: %d hits, %d misses@." rep.Incr.r_cache_hits
    rep.Incr.r_cache_misses;
  match rep.Incr.r_degradation with
  | None -> ()
  | Some d -> Format.printf "@[<v>%a@]@." Bonsai_api.pp_degradation d

let diff_cmd_run old_spec new_spec format budget_ms budget_ticks degrade
    certify audit certificate =
  guarded @@ fun () ->
  let old_net = resolve_network old_spec in
  let new_net = resolve_network new_spec in
  let deltas = Delta.diff old_net new_net in
  if deltas = [] then begin
    (match format with
    | `Text -> Format.printf "networks are identical@."
    | `Json -> Format.printf "{\"identical\": true, \"deltas\": []}@.");
    0
  end
  else begin
    let budget = make_budget budget_ms budget_ticks in
    let st =
      match Incr.init ~budget old_net with
      | Ok st -> st
      | Error e -> Bonsai_error.error e
    in
    let rep =
      match
        Incr.recompress ~budget
          ?recertify:(if certify then Some audit else None)
          st deltas
      with
      | Ok rep -> rep
      | Error e -> Bonsai_error.error e
    in
    let bdd = Incr.bdd_stats st in
    (match format with
    | `Text ->
      Format.printf "deltas (%d):@." (List.length deltas);
      List.iter (fun d -> Format.printf "  - %a@." Delta.pp d) deltas;
      report_text ~recert:certify rep;
      Format.printf "bdd: %a@." Bdd.pp_stats bdd
    | `Json ->
      Format.printf "{@.";
      Format.printf "  \"identical\": false,@.";
      Format.printf "  \"deltas\": [%s],@." (deltas_json deltas);
      Format.printf "  %s,@." (report_json ~recert:certify rep);
      Format.printf "  \"bdd\": %s@." (bdd_stats_json bdd);
      Format.printf "}@.");
    Printf.eprintf "diff: %d deltas recompressed in %.3fs\n%!"
      (List.length deltas) rep.Incr.r_time_s;
    (* certify the maintained state the recompression actually produced —
       the reuse ladder is part of what the certificate distrusts *)
    let cert_status =
      if certify then
        run_certify ~budget ~audit ~certificate new_net
          (Certify.of_summary ~network:new_spec new_net (Incr.summary st))
      else `Skipped
    in
    match rep.Incr.r_degradation with
    | Some _ when not degrade -> 3
    | _ -> (
      match cert_status with
      | `Incomplete when not degrade -> 3
      | _ -> 1)
  end

(* --- dataplane-diff: differential FIB compilation --------------------- *)

let dataplane_diff_cmd_run old_spec new_spec format budget_ms budget_ticks
    degrade =
  guarded @@ fun () ->
  let old_net = resolve_network old_spec in
  let new_net = resolve_network new_spec in
  let budget = make_budget budget_ms budget_ticks in
  let deltas = Delta.diff old_net new_net in
  let rep =
    match Dp_diff.run ~budget ~old_net ~new_net deltas with
    | Ok rep -> rep
    | Error e -> Bonsai_error.error e
  in
  let name u = Graph.name new_net.Device.graph u in
  let old_name u = Graph.name old_net.Device.graph u in
  let hops nm = function
    | None -> "-"
    | Some (e : Dataplane.entry) ->
      let nhs = String.concat "," (List.map nm e.Dataplane.e_next_hops) in
      let dropped =
        match e.Dataplane.e_acl_dropped with
        | [] -> ""
        | ds ->
          Printf.sprintf " (acl-dropped %s)"
            (String.concat "," (List.map nm ds))
      in
      Printf.sprintf "[%s]%s" nhs dropped
  in
  let added, removed, modified = Dp_diff.counts rep in
  (match format with
  | `Text ->
    Format.printf "deltas (%d):@." (List.length deltas);
    List.iter (fun d -> Format.printf "  - %a@." Delta.pp d) deltas;
    Format.printf "classes: %d (%d reused, %d recompiled)%s@."
      rep.Dp_diff.dp_classes rep.Dp_diff.dp_reused rep.Dp_diff.dp_recompiled
      (if rep.Dp_diff.dp_full_rebuild then " [full rebuild]" else "");
    Format.printf "fib changes: %d added, %d removed, %d modified@." added
      removed modified;
    List.iter
      (fun (c : Dp_diff.change) ->
        let router =
          match c.Dp_diff.c_kind with
          | Dp_diff.Removed -> old_name c.Dp_diff.c_router
          | _ -> name c.Dp_diff.c_router
        in
        let sym =
          match c.Dp_diff.c_kind with
          | Dp_diff.Added -> "+"
          | Dp_diff.Removed -> "-"
          | Dp_diff.Modified -> "~"
        in
        Format.printf "  %s %s %a: %s -> %s@." sym router Prefix.pp
          c.Dp_diff.c_prefix
          (hops old_name c.Dp_diff.c_old)
          (hops name c.Dp_diff.c_new))
      rep.Dp_diff.dp_changes;
    List.iter
      (fun p -> Format.printf "  ? %a: unknown (not compiled)@." Prefix.pp p)
      rep.Dp_diff.dp_unknown;
    (match rep.Dp_diff.dp_degradation with
    | None -> ()
    | Some d -> Format.printf "@[<v>%a@]@." Bonsai_api.pp_degradation d)
  | `Json ->
    let change_json (c : Dp_diff.change) =
      let entry_json nm = function
        | None -> "null"
        | Some (e : Dataplane.entry) ->
          Printf.sprintf "{\"next_hops\": [%s], \"acl_dropped\": [%s]}"
            (String.concat ","
               (List.map (fun u -> json_string (nm u)) e.Dataplane.e_next_hops))
            (String.concat ","
               (List.map (fun u -> json_string (nm u)) e.Dataplane.e_acl_dropped))
      in
      let router =
        match c.Dp_diff.c_kind with
        | Dp_diff.Removed -> old_name c.Dp_diff.c_router
        | _ -> name c.Dp_diff.c_router
      in
      Printf.sprintf
        "{\"router\": %s, \"prefix\": %s, \"kind\": %s, \"old\": %s, \
         \"new\": %s}"
        (json_string router)
        (json_string (Format.asprintf "%a" Prefix.pp c.Dp_diff.c_prefix))
        (json_string (Dp_diff.kind_string c.Dp_diff.c_kind))
        (entry_json old_name c.Dp_diff.c_old)
        (entry_json name c.Dp_diff.c_new)
    in
    Format.printf "{@.";
    Format.printf "  \"identical\": %b,@."
      (not (Dp_diff.changed rep) && rep.Dp_diff.dp_unknown = []);
    Format.printf "  \"deltas\": [%s],@." (deltas_json deltas);
    Format.printf
      "  \"classes\": %d, \"reused\": %d, \"recompiled\": %d, \
       \"anycast\": %d, \"full_rebuild\": %b,@."
      rep.Dp_diff.dp_classes rep.Dp_diff.dp_reused rep.Dp_diff.dp_recompiled
      rep.Dp_diff.dp_anycast rep.Dp_diff.dp_full_rebuild;
    Format.printf "  \"added\": %d, \"removed\": %d, \"modified\": %d,@."
      added removed modified;
    Format.printf "  \"changes\": [%s],@."
      (String.concat "," (List.map change_json rep.Dp_diff.dp_changes));
    Format.printf "  \"unknown\": [%s],@."
      (String.concat ","
         (List.map
            (fun p -> json_string (Format.asprintf "%a" Prefix.pp p))
            rep.Dp_diff.dp_unknown));
    Format.printf "  \"degradation\": %s@."
      (degradation_json rep.Dp_diff.dp_degradation);
    Format.printf "}@.");
  Printf.eprintf "dataplane-diff: %d classes diffed in %.3fs\n%!"
    rep.Dp_diff.dp_classes rep.Dp_diff.dp_time_s;
  match rep.Dp_diff.dp_unknown with
  | _ :: _ when not degrade -> 3
  | _ -> if Dp_diff.changed rep then 1 else 0

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* A directory is one network, one-or-more devices per file, concatenated
   in filename order (our text format is position-independent, so any
   split across files parses the same). *)
let read_watch_path path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.filter (fun f ->
           Filename.check_suffix f ".cfg" || Filename.check_suffix f ".conf")
    |> List.map (fun f -> read_file (Filename.concat path f))
    |> String.concat "\n"
  else read_file path

(* Router stanzas and topology nodes defined by a configuration text —
   a plain line scan, usable even when the text as a whole no longer
   parses (e.g. a deleted file left dangling link references). *)
let defined_router_names text =
  String.split_on_char '\n' text
  |> List.fold_left
       (fun acc line ->
         match
           String.split_on_char ' ' (String.trim line)
           |> List.filter (fun s -> s <> "")
         with
         | [ "node"; n ] | [ "router"; n ] -> n :: acc
         | _ -> acc)
       []

let watch_cmd_run path poll_ms once max_events format budget_ms budget_ticks
    degrade =
  guarded @@ fun () ->
  let read () =
    try Ok (read_watch_path path) with Sys_error m -> Error [ (0, m) ]
  in
  let text0 =
    match read () with
    | Ok t -> t
    | Error ds ->
      Bonsai_error.error (Bonsai_error.Parse_error { diagnostics = ds })
  in
  let net0 =
    match Config_text.parse_full text0 with
    | Ok (net, _) -> net
    | Error ds ->
      Bonsai_error.error (Bonsai_error.Parse_error { diagnostics = ds })
  in
  let st =
    match Incr.init ~budget:(make_budget budget_ms budget_ticks) net0 with
    | Ok st -> st
    | Error e -> Bonsai_error.error e
  in
  let s = Incr.summary st in
  let hits, misses = Incr.cache_stats st in
  let g = net0.Device.graph in
  let n_classes = List.length s.Bonsai_api.results in
  (match format with
  | `Text ->
    Format.printf
      "watch: %d nodes, %d links; %d classes compressed (cache %d hits, %d \
       misses)@."
      (Graph.n_nodes g) (Graph.n_links g) n_classes hits misses;
    (match s.Bonsai_api.degradation with
    | None -> ()
    | Some d -> Format.printf "@[<v>%a@]@." Bonsai_api.pp_degradation d)
  | `Json ->
    (* watch emits one JSON document per line (NDJSON) so consumers can
       stream events *)
    Printf.printf
      "{\"event\": \"init\", \"nodes\": %d, \"links\": %d, \"classes\": %d, \
       \"cache\": {\"hits\": %d, \"misses\": %d}, \"degradation\": %s}\n%!"
      (Graph.n_nodes g) (Graph.n_links g) n_classes hits misses
      (degradation_json s.Bonsai_api.degradation));
  if once then
    match s.Bonsai_api.degradation with
    | Some _ when not degrade -> 3
    | _ -> 0
  else begin
    let last = ref text0 in
    let events = ref 0 in
    let report_event deltas rep =
      (match format with
      | `Text ->
        Format.printf "watch: %d delta%s@." (List.length deltas)
          (if List.length deltas = 1 then "" else "s");
        List.iter (fun d -> Format.printf "  - %a@." Delta.pp d) deltas;
        report_text rep;
        Format.printf "time: %.3fs@." rep.Incr.r_time_s
      | `Json ->
        Printf.printf
          "{\"event\": \"recompress\", \"deltas\": [%s], %s, \"time_s\": \
           %.3f}\n%!"
          (deltas_json deltas) (report_json rep) rep.Incr.r_time_s);
      incr events
    in
    (* Consecutive read/parse failures back off exponentially (capped):
       a file that stays broken — deleted, permission flip, an editor
       that crashed mid-save — must not make the watcher spin at the
       poll rate forever. Any successfully parsed snapshot resets the
       backoff. The policy itself lives in Backoff (lib/serve), where
       the cap and the never-below-base invariant are unit-tested. *)
    let bo = Backoff.create ~base_ms:poll_ms () in
    let note_failure () =
      let ms = Backoff.note_failure bo in
      if ms > poll_ms then
        Printf.eprintf "watch: backing off to %dms after %d failure%s\n%!" ms
          (Backoff.failures bo)
          (if Backoff.failures bo = 1 then "" else "s")
    in
    let rec loop () =
      Unix.sleepf (float_of_int (Backoff.sleep_ms bo) /. 1000.0);
      (match read () with
      | Error ds ->
        List.iter (fun (_, m) -> Printf.eprintf "watch: %s\n%!" m) ds;
        note_failure ()
      | Ok text when String.equal text !last -> ()
      | Ok text -> (
        (* A change seen mid-write (truncate + write, rsync) shows up as
           an empty or unparsable snapshot; one quick re-read usually
           sees the completed write. Only after the retry do we report
           and keep the previous network. *)
        let text, parsed =
          Backoff.parse_with_retry ~read ~parse:Config_text.parse_full
            ~sleep:(fun () -> Unix.sleepf 0.05)
            text
        in
        last := text;
        match parsed with
        | Error ds -> (
          (* A deleted *.cfg/*.conf in directory mode leaves the
             surviving files' references to its routers dangling — the
             concatenated text stops parsing even though the operator's
             intent (remove those nodes) is clear. Routers whose [node]/
             [router] stanzas vanished from the text become node-removal
             deltas against the previous network; only a parse failure
             with nothing removed is reported as an error. *)
          let defined = defined_router_names text in
          let cur = Incr.network st in
          let removed =
            Graph.fold_nodes cur.Device.graph ~init:[] ~f:(fun acc v ->
                let nm = Graph.name cur.Device.graph v in
                if List.mem nm defined then acc else nm :: acc)
            |> List.sort compare
          in
          match removed with
          | [] ->
            (* keep serving the previous network; the next edit gets
               another chance *)
            Printf.eprintf
              "watch: parse error (%d diagnostic%s); keeping the previous \
               network\n%!"
              (List.length ds)
              (if List.length ds = 1 then "" else "s");
            List.iter
              (fun (line, m) -> Printf.eprintf "  line %d: %s\n%!" line m)
              ds;
            note_failure ()
          | names -> (
            Backoff.reset bo;
            Printf.eprintf
              "watch: %d router%s no longer defined; treating as node \
               removal\n%!"
              (List.length names)
              (if List.length names = 1 then "" else "s");
            let deltas = List.map (fun n -> Delta.Node_remove n) names in
            match
              Incr.recompress
                ~budget:(make_budget budget_ms budget_ticks)
                st deltas
            with
            | Error e ->
              Printf.eprintf "watch: %s\n%!"
                (Format.asprintf "@[%a@]" Bonsai_error.pp e)
            | Ok rep -> report_event deltas rep))
        | Ok (net', _) -> (
          Backoff.reset bo;
          match
            Incr.recompress_net ~budget:(make_budget budget_ms budget_ticks)
              st net'
          with
          | Error e ->
            Printf.eprintf "watch: %s\n%!"
              (Format.asprintf "@[%a@]" Bonsai_error.pp e)
          | Ok (deltas, rep) -> report_event deltas rep)));
      if max_events > 0 && !events >= max_events then 0 else loop ()
    in
    loop ()
  end

(* --- lint -------------------------------------------------------------- *)

let lint_cmd_run spec format min_severity no_compression flow budget_ms
    budget_ticks list_checks =
  guarded @@ fun () ->
  if list_checks then begin
    List.iter
      (fun (name, doc) -> Format.printf "%-24s %s@." name doc)
      Lint.checks;
    0
  end
  else begin
    let net, locs = resolve_network_full spec in
    let budget = make_budget budget_ms budget_ticks in
    let ds = Lint.run ?locs ~compression:(not no_compression) ~flow ~budget net in
    let shown = Lint.filter ~min_severity ds in
    (match format with
    | `Text -> Format.printf "%a" Lint.pp_text shown
    | `Json -> Format.printf "%a" Lint.pp_json shown);
    if Lint.has_errors ds then 1 else 0
  end

(* --- flow --------------------------------------------------------------- *)

(* Whole-network provenance checks (lib/analysis: Flow + Lint_flow). Exit
   codes: 0 clean, 1 at least one warning-or-error finding, 3 the dataflow
   budget ran out (facts degraded to Unknown; the degradation is reported
   instead of verdicts computed from partial state). *)
let flow_cmd_run spec ec_prefix format facts budget_ms budget_ticks =
  guarded @@ fun () ->
  let net, locs = resolve_network_full spec in
  let budget = make_budget budget_ms budget_ticks in
  let ds = Lint_flow.run ?locs ~budget net in
  let ds = List.sort Diag.compare ds in
  let degraded =
    List.exists (fun d -> String.equal d.Diag.check "flow-degraded") ds
  in
  let names = Graph.name net.Device.graph in
  let fact_dump =
    if not facts then None
    else begin
      let ec = find_ec net ec_prefix in
      let t = Flow.analyze ~budget net ec in
      let roles =
        match Bonsai_api.role_partition net ec with
        | Ok g -> Some g
        | Error _ -> None
      in
      let rows =
        List.init (Graph.n_nodes net.Device.graph) (fun r ->
            let plane p =
              match Flow.fact t r p with
              | None -> None
              | Some f -> Some (Format.asprintf "%a" (Flow.pp_fact ~names) f)
            in
            ( r,
              Option.map (fun g -> g.(r)) roles,
              plane Flow.Bgp,
              plane Flow.Ospf ))
      in
      Some (ec, rows)
    end
  in
  (match format with
  | `Text ->
    List.iter (fun d -> Format.printf "%a@." Diag.pp d) ds;
    Format.printf "%d finding%s@." (List.length ds)
      (if List.length ds = 1 then "" else "s");
    (match fact_dump with
    | None -> ()
    | Some (ec, fact_rows) ->
      Format.printf "facts for %a:@." Prefix.pp ec.Ecs.ec_prefix;
      List.iter
        (fun (r, role, bgp, ospf) ->
          Format.printf "  %s%s:@." (names r)
            (match role with
            | Some g -> Printf.sprintf " (role %d)" g
            | None -> "");
          let show plane = function
            | None -> Format.printf "    %s: unreachable@." plane
            | Some s -> Format.printf "    %s: %s@." plane s
          in
          show "bgp" bgp;
          show "ospf" ospf)
        fact_rows)
  | `Json ->
    let diag_items = String.concat "," (List.map Diag.to_json ds) in
    let fact_field =
      match fact_dump with
      | None -> ""
      | Some (_, fact_rows) ->
        Printf.sprintf ", \"facts\": [%s]"
          (String.concat ","
             (List.map
                (fun (r, role, bgp, ospf) ->
                  Printf.sprintf
                    "{\"router\": %s, \"role\": %s, \"bgp\": %s, \"ospf\": %s}"
                    (json_string (names r))
                    (match role with
                    | Some g -> string_of_int g
                    | None -> "null")
                    (match bgp with Some s -> json_string s | None -> "null")
                    (match ospf with Some s -> json_string s | None -> "null"))
                fact_rows))
    in
    Printf.printf "{\"findings\": [%s], \"degraded\": %b%s}\n" diag_items
      degraded fact_field);
  if degraded then
    (* same exit class as every other budget exhaustion *)
    Bonsai_error.exit_code
      (Bonsai_error.Budget_exceeded
         { Budget.phase = "flow"; ticks = 0; elapsed_s = 0.0; note = None })
  else if
    List.exists
      (fun d ->
        Diag.severity_rank d.Diag.severity >= Diag.severity_rank Diag.Warning)
      ds
  then 1
  else 0

(* --- verify ------------------------------------------------------------ *)

let verify_cmd_run spec src ec_prefix =
  guarded @@ fun () ->
  let net = resolve_network spec in
  let ec = find_ec net ec_prefix in
  let src_id =
    match Graph.find_by_name net.Device.graph src with
    | Some v -> v
    | None -> Format.kasprintf failwith "unknown router %S" src
  in
  let cv, ct =
    Timing.time (fun () -> Reachability.concrete_query net ~src:src_id ~ec)
  in
  let av, at =
    Timing.time (fun () -> Reachability.abstract_query net ~src:src_id ~ec)
  in
  Format.printf "%s reaches %a: %b (concrete, %.3fs) / %b (abstract, %.3fs)@."
    src Ecs.pp ec cv ct av at;
  if cv <> av then begin
    Format.printf "DISAGREEMENT — this is a bug@.";
    (* a disagreement between abstract and concrete is a soundness break *)
    Bonsai_error.exit_code (Bonsai_error.Soundness_break "")
  end
  else 0

(* --- trace ------------------------------------------------------------- *)

let trace_cmd_run spec src_name addr all =
  guarded @@ fun () ->
  let net = resolve_network spec in
  let src =
    match Graph.find_by_name net.Device.graph src_name with
    | Some v -> v
    | None -> Format.kasprintf failwith "unknown router %S" src_name
  in
  let addr = Ipv4.of_string addr in
  let dp = Dataplane.of_network net in
  Format.printf "data plane: %d classes solved, %d FIB entries@."
    (Dataplane.ecs_solved dp) (Dataplane.n_entries dp);
  let show = function
    | Dataplane.Delivered path ->
      Format.printf "delivered: %s@."
        (String.concat " -> "
           (List.map (Graph.name net.Device.graph) path))
    | Dataplane.Dropped path ->
      Format.printf "DROPPED at %s: %s@."
        (Graph.name net.Device.graph (List.nth path (List.length path - 1)))
        (String.concat " -> " (List.map (Graph.name net.Device.graph) path))
    | Dataplane.Looped path ->
      Format.printf "LOOP: %s@."
        (String.concat " -> " (List.map (Graph.name net.Device.graph) path))
  in
  if all then List.iter show (Dataplane.trace_all dp ~src addr)
  else show (Dataplane.trace dp ~src addr);
  0

(* --- faults ------------------------------------------------------------ *)

let scenario_json ~names (sc : Scenario.t) =
  let parts =
    List.map
      (fun (u, v) -> json_string (Printf.sprintf "%s-%s" (names u) (names v)))
      sc.Scenario.down_links
    @ List.map
        (fun u -> json_string (Printf.sprintf "node:%s" (names u)))
        sc.Scenario.down_nodes
  in
  "[" ^ String.concat "," parts ^ "]"

let faults_cmd_run spec ec_prefix k samples seed format budget_ms
    budget_ticks =
  guarded @@ fun () ->
  let net = resolve_network spec in
  let budget = make_budget budget_ms budget_ticks in
  let ec = find_ec net ec_prefix in
  let dest = Ecs.single_origin ec in
  let g = net.Device.graph in
  let name = Graph.name g in
  let srp = Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
  let plan = Fault_engine.plan ?samples ~seed ~k g in
  (* One concrete-side cache spans the survey and the soundness sweep:
     the soundness check re-solves the same scenarios the survey just
     solved (and shrinking probes sub-scenarios), so sharing avoids the
     double work and the stats line reports how much was saved. *)
  let cache = Fault_engine.cache () in
  let report = Fault_engine.survey ~budget ~cache srp plan in
  let r = Bonsai_api.compress_ec_exn net ec in
  let t = r.Bonsai_api.abstraction in
  let abs_name = Graph.name t.Abstraction.abs_graph in
  let break_ =
    Soundness.first_break t ~concrete:srp ~concrete_cache:cache
      ~abstract_:(Abstraction.bgp_srp t) plan.Fault_engine.scenarios
  in
  let n_scenarios = List.length plan.Fault_engine.scenarios in
  let disconnected =
    List.filter_map
      (function
        | sc, Fault_engine.Disconnected (_, stranded) -> Some (sc, stranded)
        | _ -> None)
      report.Fault_engine.outcomes
  in
  let diverged =
    List.filter_map
      (function
        | sc, Fault_engine.Diverged d -> Some (sc, d) | _ -> None)
      report.Fault_engine.outcomes
  in
  let pp_sc = Scenario.pp ~names:name in
  let side reaches stable =
    if not stable then "diverged"
    else if reaches then "reaches"
    else "does not reach"
  in
  (match format with
  | `Text ->
    Format.printf "destination %a (originated at %s)@." Prefix.pp
      ec.Ecs.ec_prefix (name dest);
    Format.printf "topology: %d nodes, %d links@." (Graph.n_nodes g)
      (Graph.n_links g);
    Format.printf "scenarios: %d (%s, up to %d failed link%s)@." n_scenarios
      (if plan.Fault_engine.exhaustive then "exhaustive" else "sampled")
      k
      (if k = 1 then "" else "s");
    Format.printf "  stable & reachable: %d@." report.Fault_engine.n_stable;
    Format.printf "  disconnected:       %d@."
      report.Fault_engine.n_disconnected;
    Format.printf "  diverged:           %d@." report.Fault_engine.n_diverged;
    if report.Fault_engine.n_skipped > 0 then
      Format.printf "  skipped (budget):   %d@." report.Fault_engine.n_skipped;
    let cap = 12 in
    if disconnected <> [] then begin
      Format.printf "disconnected scenarios%s:@."
        (if List.length disconnected > cap then
           Printf.sprintf " (first %d of %d)" cap (List.length disconnected)
         else "");
      List.iteri
        (fun i (sc, stranded) ->
          if i < cap then
            Format.printf "  %a: %d stranded (%s%s)@." pp_sc sc
              (List.length stranded)
              (String.concat ", "
                 (List.map name (List.filteri (fun i _ -> i < 6) stranded)))
              (if List.length stranded > 6 then ", ..." else ""))
        disconnected
    end;
    if diverged <> [] then begin
      Format.printf "diverged scenarios%s:@."
        (if List.length diverged > cap then
           Printf.sprintf " (first %d of %d)" cap (List.length diverged)
         else "");
      List.iteri
        (fun i (sc, (d : _ Solver.diagnosis)) ->
          if i < cap then
            Format.printf "  %a: %a@." pp_sc sc
              (Solver.pp_verdict
                 ~graph:d.Solver.diag_sol.Solution.srp.Srp.graph)
              d.Solver.diag_verdict)
        diverged
    end;
    Format.printf "abstraction: %d nodes, %d links@." (Abstraction.n_abstract t)
      (Graph.n_links t.Abstraction.abs_graph);
    (match break_ with
    | None ->
      Format.printf
        "  fault soundness: ok (verdicts agree on every scenario)@."
    | Some (sc, m) ->
      Format.printf "  fault soundness: BROKEN@.";
      Format.printf "  minimal failing scenario: %a@." pp_sc sc;
      Format.printf
        "  first diverging pair: %s vs %s (concrete %s, abstract %s)@."
        (name m.Soundness.mis_node)
        (abs_name m.Soundness.mis_abs)
        (side m.Soundness.concrete_reaches m.Soundness.concrete_stable)
        (side m.Soundness.abstract_reaches m.Soundness.abstract_stable))
  | `Json ->
    let verdict_json (d : _ Solver.diagnosis) =
      match d.Solver.diag_verdict with
      | Solver.Oscillation { period; participants } ->
        Printf.sprintf
          "\"verdict\":\"oscillation\",\"period\":%d,\"participants\":[%s]"
          period
          (String.concat ","
             (List.map (fun u -> json_string (name u)) participants))
      | Solver.Likely_convergent -> "\"verdict\":\"likely-convergent\""
      | Solver.Inconclusive rounds ->
        Printf.sprintf "\"verdict\":\"inconclusive\",\"rounds\":%d" rounds
    in
    Format.printf "{@.";
    Format.printf "  \"destination\": %s,@."
      (json_string (Format.asprintf "%a" Prefix.pp ec.Ecs.ec_prefix));
    Format.printf "  \"nodes\": %d, \"links\": %d,@." (Graph.n_nodes g)
      (Graph.n_links g);
    Format.printf "  \"k\": %d, \"mode\": %s, \"scenarios\": %d,@." k
      (json_string
         (if plan.Fault_engine.exhaustive then "exhaustive" else "sampled"))
      n_scenarios;
    Format.printf "  \"stable\": %d,@." report.Fault_engine.n_stable;
    if report.Fault_engine.n_skipped > 0 then
      Format.printf "  \"skipped\": %d,@." report.Fault_engine.n_skipped;
    Format.printf "  \"disconnected\": [%s],@."
      (String.concat ","
         (List.map
            (fun (sc, stranded) ->
              Printf.sprintf "{\"scenario\":%s,\"stranded\":[%s]}"
                (scenario_json ~names:name sc)
                (String.concat ","
                   (List.map (fun u -> json_string (name u)) stranded)))
            disconnected));
    Format.printf "  \"diverged\": [%s],@."
      (String.concat ","
         (List.map
            (fun (sc, d) ->
              Printf.sprintf "{\"scenario\":%s,%s}"
                (scenario_json ~names:name sc)
                (verdict_json d))
            diverged));
    Format.printf "  \"abstraction\": {\"nodes\": %d, %s}@."
      (Abstraction.n_abstract t)
      (match break_ with
      | None -> "\"sound\": true"
      | Some (sc, m) ->
        Printf.sprintf
          "\"sound\": false, \"minimal_scenario\": %s, \"node\": %s, \
           \"abs_node\": %s, \"concrete_reaches\": %b, \
           \"abstract_reaches\": %b"
          (scenario_json ~names:name sc)
          (json_string (name m.Soundness.mis_node))
          (json_string (abs_name m.Soundness.mis_abs))
          m.Soundness.concrete_reaches m.Soundness.abstract_reaches);
    Format.printf "}@.");
  Printf.eprintf "%d scenarios in %.3fs (%.0f scenarios/sec), %d cache hits\n"
    n_scenarios report.Fault_engine.time_s
    (float_of_int n_scenarios /. max 1e-9 report.Fault_engine.time_s)
    (Fault_engine.cache_hits cache);
  if
    report.Fault_engine.n_disconnected + report.Fault_engine.n_diverged > 0
    || break_ <> None
  then 1
  else if report.Fault_engine.n_skipped > 0 then 3
  else 0

(* --- harden ------------------------------------------------------------ *)

let harden_cmd_run spec ec_prefix k rounds frontier samples seed format
    budget_ms budget_ticks degrade certify audit certificate =
  guarded @@ fun () ->
  let net = resolve_network spec in
  let budget = make_budget budget_ms budget_ticks in
  let ec = find_ec net ec_prefix in
  let dest = Ecs.single_origin ec in
  let g = net.Device.graph in
  let name = Graph.name g in
  let r =
    match Repair.harden ~k ~rounds ~frontier ?samples ~seed ~budget net ec with
    | Ok r -> r
    | Error e -> Bonsai_error.error e
  in
  let t = r.Repair.result.Bonsai_api.abstraction in
  let rn, re = Repair.ratio r in
  let pp_sc = Scenario.pp ~names:name in
  let mode = if r.Repair.plan_exhaustive then "exhaustive" else "sampled" in
  (match format with
  | `Text ->
    Format.printf "destination %a (originated at %s)@." Prefix.pp
      ec.Ecs.ec_prefix (name dest);
    Format.printf "topology: %d nodes, %d links@." (Graph.n_nodes g)
      (Graph.n_links g);
    Format.printf "harden: k=%d, %s scenarios, max %d repair round%s@."
      r.Repair.k mode rounds
      (if rounds = 1 then "" else "s");
    List.iter
      (fun (rl : Repair.round_log) ->
        match rl.Repair.rl_counterexample with
        | None ->
          Format.printf "round %d: %d nodes, %d links; sound (%d scenarios)@."
            rl.Repair.rl_round rl.Repair.rl_abs_nodes rl.Repair.rl_abs_links
            rl.Repair.rl_scenarios
        | Some sc ->
          Format.printf
            "round %d: %d nodes, %d links; counterexample %a (%d mismatched \
             node%s); pinned %d (total %d)@."
            rl.Repair.rl_round rl.Repair.rl_abs_nodes rl.Repair.rl_abs_links
            pp_sc sc
            (List.length rl.Repair.rl_mismatches)
            (if List.length rl.Repair.rl_mismatches = 1 then "" else "s")
            (List.length rl.Repair.rl_new_pins)
            rl.Repair.rl_total_pins)
      r.Repair.rounds;
    Format.printf "hardened: %d/%d nodes, %d/%d links (%.1fx / %.1fx)@."
      (Graph.n_nodes g) (Abstraction.n_abstract t)
      (Graph.n_links g)
      (Graph.n_links t.Abstraction.abs_graph)
      rn re;
    Format.printf
      "rounds: %d, counterexamples: %d, pins: %d, scenario checks: %d, \
       cache hits: %d@."
      (List.length r.Repair.rounds)
      r.Repair.n_counterexamples
      (List.length r.Repair.pins)
      r.Repair.n_scenarios r.Repair.cache_hits;
    (match r.Repair.fallback with
    | Bonsai_api.No_fallback ->
      if r.Repair.sound then
        Format.printf "fault soundness: ok (every swept scenario agrees)@."
      else begin
        Format.printf "fault soundness: BROKEN (repair disabled)@.";
        match List.rev r.Repair.rounds with
        | { Repair.rl_counterexample = Some sc; rl_mismatches = m :: _; _ }
          :: _ ->
          Format.printf "  minimal failing scenario: %a@." pp_sc sc;
          Format.printf "  first diverging pair: %s vs %s@."
            (name m.Soundness.mis_node)
            (Graph.name t.Abstraction.abs_graph m.Soundness.mis_abs)
        | _ -> ()
      end
    | Bonsai_api.Budget_fallback info ->
      Format.printf "@[<v>%a@]@." Bonsai_api.pp_degradation
        { Bonsai_api.deg_info = info; deg_completed = 0; deg_total = 1 }
    | Bonsai_api.Rounds_fallback ->
      Format.printf
        "DEGRADED: %d repair rounds exhausted; fell back to the identity \
         abstraction (sound, no compression)@."
        rounds)
  | `Json ->
    let round_json (rl : Repair.round_log) =
      Printf.sprintf
        "{\"round\":%d,\"abs_nodes\":%d,\"abs_links\":%d,\"scenarios\":%d,%s\
         \"new_pins\":[%s],\"total_pins\":%d}"
        rl.Repair.rl_round rl.Repair.rl_abs_nodes rl.Repair.rl_abs_links
        rl.Repair.rl_scenarios
        (match rl.Repair.rl_counterexample with
        | None -> ""
        | Some sc ->
          Printf.sprintf "\"counterexample\":%s,\"mismatches\":%d,"
            (scenario_json ~names:name sc)
            (List.length rl.Repair.rl_mismatches))
        (String.concat ","
           (List.map (fun u -> json_string (name u)) rl.Repair.rl_new_pins))
        rl.Repair.rl_total_pins
    in
    Format.printf "{@.";
    Format.printf "  \"destination\": %s,@."
      (json_string (Format.asprintf "%a" Prefix.pp ec.Ecs.ec_prefix));
    Format.printf "  \"nodes\": %d, \"links\": %d,@." (Graph.n_nodes g)
      (Graph.n_links g);
    Format.printf "  \"k\": %d, \"mode\": %s,@." r.Repair.k
      (json_string mode);
    Format.printf "  \"rounds\": [%s],@."
      (String.concat "," (List.map round_json r.Repair.rounds));
    Format.printf "  \"pins\": [%s],@."
      (String.concat ","
         (List.map (fun u -> json_string (name u)) r.Repair.pins));
    Format.printf
      "  \"counterexamples\": %d, \"scenario_checks\": %d, \"cache_hits\": \
       %d,@."
      r.Repair.n_counterexamples r.Repair.n_scenarios r.Repair.cache_hits;
    Format.printf "  \"sound\": %b, \"fallback\": %s,@." r.Repair.sound
      (json_string
         (match r.Repair.fallback with
         | Bonsai_api.No_fallback -> "none"
         | Bonsai_api.Budget_fallback _ -> "budget"
         | Bonsai_api.Rounds_fallback -> "rounds"));
    Format.printf
      "  \"abstraction\": {\"nodes\": %d, \"links\": %d, \"ratio_nodes\": \
       %.2f, \"ratio_links\": %.2f}@."
      (Abstraction.n_abstract t)
      (Graph.n_links t.Abstraction.abs_graph)
      rn re;
    Format.printf "}@.");
  let degrade_exit code = if degrade then 0 else code in
  (* certify the hardened abstraction itself — pins and repair rounds
     change the partition, so the witness must come from the result *)
  let cert_status =
    if certify then
      run_certify ~budget ~audit ~certificate net
        {
          Certify.network = spec;
          certs = [ Certify.of_ec_result net r.Repair.result ];
        }
    else `Skipped
  in
  match r.Repair.fallback with
  | Bonsai_api.Budget_fallback _ -> degrade_exit 3
  | Bonsai_api.Rounds_fallback ->
    degrade_exit (Bonsai_error.exit_code (Bonsai_error.Soundness_break ""))
  | Bonsai_api.No_fallback ->
    if r.Repair.sound then
      match cert_status with
      | `Incomplete -> degrade_exit 3
      | `Certified | `Skipped -> 0
    else Bonsai_error.exit_code (Bonsai_error.Soundness_break "")

(* --- certify (stored certificates) ------------------------------------- *)

(* `bonsai certify NETWORK CERT` re-checks a stored certificate file
   against the live configs. Everything that can go wrong with the file
   itself — unreadable, unparsable, malformed, refuted — is the same
   typed Certificate_failure (exit 8): a certificate that cannot be
   validated must never pass for one that was. *)
let certify_cmd_run spec cert_path audit budget_ms budget_ticks =
  guarded @@ fun () ->
  let net = resolve_network spec in
  let budget = make_budget budget_ms budget_ticks in
  let cert_failure fmt =
    Format.kasprintf
      (fun m -> Bonsai_error.error (Bonsai_error.Certificate_failure m))
      fmt
  in
  let text =
    try read_file cert_path
    with Sys_error m -> cert_failure "unreadable certificate: %s" m
  in
  let cert =
    match Json.parse text with
    | Error m -> cert_failure "unparsable certificate: %s" m
    | Ok j -> (
      match Certify.of_json j with
      | Error m -> cert_failure "malformed certificate: %s" m
      | Ok c -> c)
  in
  match Certify.check ~budget ~audit net cert with
  | Certify.Certified { ecs; obligations } ->
    Format.printf "certified: %d class%s, %d obligations (%s audit)@." ecs
      (if ecs = 1 then "" else "es")
      obligations
      (Certify.audit_to_string audit);
    0
  | Certify.Audit_incomplete info ->
    Format.printf "audit incomplete: budget ran out in %s@."
      info.Budget.phase;
    3
  | Certify.Refuted fs ->
    List.iter
      (fun (f : Certify.failure) ->
        Format.printf "REFUTED %s: %s: %s@." f.Certify.f_prefix
          f.Certify.f_condition f.Certify.f_detail)
      fs;
    cert_failure "%s" (Certify.failures_string fs)

(* --- explain ----------------------------------------------------------- *)

let explain_cmd_run spec a_name b_name ec_prefix =
  guarded @@ fun () ->
  let net = resolve_network spec in
  let ec = find_ec net ec_prefix in
  let node name =
    match Graph.find_by_name net.Device.graph name with
    | Some v -> v
    | None -> Format.kasprintf failwith "unknown router %S" name
  in
  (match Bonsai_api.explain net ec (node a_name) (node b_name) with
  | [] ->
    Format.printf "%s and %s play the same role for %a@." a_name b_name
      Prefix.pp ec.Ecs.ec_prefix
  | reasons ->
    Format.printf "%s and %s differ for %a:@." a_name b_name Prefix.pp
      ec.Ecs.ec_prefix;
    List.iter (Format.printf "  - %s@.") reasons);
  0

(* --- policy ----------------------------------------------------------- *)

let policy_cmd_run spec from_name to_name ec_prefix =
  guarded @@ fun () ->
  let net = resolve_network spec in
  let ec = find_ec net ec_prefix in
  let node name =
    match Graph.find_by_name net.Device.graph name with
    | Some v -> v
    | None -> Format.kasprintf failwith "unknown router %S" name
  in
  let recv = node from_name and sender = node to_name in
  let u = Policy_bdd.universe_of_network net in
  let b = Policy_bdd.edge_policy u net ~dest:ec.Ecs.ec_prefix recv sender in
  Format.printf
    "policy for routes received at %s from %s (destination %a):@." from_name
    to_name Prefix.pp ec.Ecs.ec_prefix;
  (match Device.bgp_neighbor_config net.Device.routers.(recv) sender with
  | Some nb ->
    (match nb.Device.import_rm with
    | Some rm -> Format.printf "import route-map:@.%a@." Route_map.pp rm
    | None -> Format.printf "import: permit all@.")
  | None -> Format.printf "no BGP session@.");
  Format.printf "BDD: %d nodes@." (Bdd.size b);
  Format.printf "relation: %a@." (Policy_bdd.pp_policy u) b;
  0

(* --- export --------------------------------------------------------------- *)

let export_cmd_run spec path format =
  guarded @@ fun () ->
  let net = resolve_network spec in
  (match format with
  | "text" -> Config_text.save ~path net
  | "ios" ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Ios_print.to_string net))
  | f -> Format.kasprintf failwith "unknown format %S (text|ios)" f);
  Format.printf "wrote %s@." path;
  0

(* --- serve ------------------------------------------------------------- *)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> raise (Usage (Printf.sprintf "expected HOST:PORT, got %S" s))
  | Some i -> (
    let host = String.sub s 0 i in
    let host = if host = "" then "127.0.0.1" else host in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port -> (host, port)
    | None -> raise (Usage (Printf.sprintf "invalid port in %S" s)))

let serve_cmd_run stdio socket tcp max_inflight budget_ms budget_ticks
    cache_cap max_networks checkpoint_path checkpoint_every drain_ms preload =
  guarded @@ fun () ->
  let listen =
    match (stdio, socket, tcp) with
    | true, None, None -> Serve_loop.Stdio
    | false, Some path, None -> Serve_loop.Unix_socket path
    | false, None, Some hp ->
      let host, port = parse_host_port hp in
      Serve_loop.Tcp (host, port)
    | false, None, None ->
      raise (Usage "one of --stdio, --socket PATH or --tcp HOST:PORT is required")
    | _ -> raise (Usage "--stdio, --socket and --tcp are mutually exclusive")
  in
  (* [resolve_network]'s Usage (unknown spec) becomes a Failure so the
     engine answers it as a bad-request instead of killing the server *)
  let resolve spec = try resolve_network spec with Usage m -> failwith m in
  let engine =
    Serve_engine.create ~resolve ?budget_ms ?budget_ticks ?cache_cap
      ~max_networks ()
  in
  Serve_loop.run ~engine ~listen ~max_inflight ~drain_ms ?checkpoint_path
    ~checkpoint_every ~preload ()

(* --- request ----------------------------------------------------------- *)

(* One-shot client for a running serve instance: build the request line
   (or take it raw), send it, print the one response line, exit with the
   code the equivalent one-shot command would have used. *)
let request_cmd_run socket tcp op network ec to_spec k rounds samples seed
    budget_ms budget_ticks raw no_retry =
  guarded @@ fun () ->
  let line =
    match raw with
    | Some r -> r
    | None ->
      let op =
        match op with
        | Some op -> op
        | None -> raise (Usage "an OP argument is required (or --raw)")
      in
      let str key v =
        match v with None -> [] | Some s -> [ (key, Json.String s) ]
      in
      let int key v =
        match v with None -> [] | Some i -> [ (key, Json.Int i) ]
      in
      Json.to_string
        (Json.Obj
           (("op", Json.String op)
           :: (str "network" network @ str "ec" ec @ str "to" to_spec
             @ int "k" k @ int "rounds" rounds @ int "samples" samples
             @ int "seed" seed @ int "budget_ms" budget_ms
             @ int "budget_ticks" budget_ticks)))
  in
  let addr =
    match (socket, tcp) with
    | Some path, None -> Unix.ADDR_UNIX path
    | None, Some hp ->
      let host, port = parse_host_port hp in
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> raise (Usage (Printf.sprintf "unknown host %S" host))
      in
      Unix.ADDR_INET (inet, port)
    | _ -> raise (Usage "exactly one of --socket or --tcp is required")
  in
  (* One request/response exchange on a fresh connection (the server is
     line-oriented but we reconnect per attempt, so a shed request never
     holds a socket open across its backoff sleep). *)
  let exchange () =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (match Unix.connect fd addr with
        | () -> ()
        | exception Unix.Unix_error (e, _, _) ->
          Format.kasprintf failwith "cannot connect: %s"
            (Unix.error_message e));
        let payload = Bytes.of_string (line ^ "\n") in
        let len = Bytes.length payload in
        let rec send off =
          if off < len then send (off + Unix.write fd payload off (len - off))
        in
        send 0;
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec recv () =
          if not (String.contains (Buffer.contents buf) '\n') then
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              recv ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
        in
        recv ();
        let resp =
          match String.index_opt (Buffer.contents buf) '\n' with
          | Some i -> String.sub (Buffer.contents buf) 0 i
          | None -> Buffer.contents buf
        in
        if String.length resp = 0 then
          failwith "connection closed without a response";
        resp)
  in
  (* Overload is transient by definition — the server said so with its
     retry_after_ms hint. Honor it (floored by exponential backoff) for
     a bounded number of attempts instead of exiting 11 immediately;
     --no-retry restores the old single-shot behavior. Only the final
     response line reaches stdout. *)
  let max_attempts = if no_retry then 1 else 5 in
  let bo = Backoff.create ~base_ms:100 ~cap_ms:5000 () in
  let overloaded_hint r =
    match Option.bind (Json.member "error" r) (Json.member "class") with
    | Some (Json.String "overloaded") ->
      Some
        (Option.value ~default:0
           (Option.bind
              (Option.bind (Json.member "error" r)
                 (Json.member "retry_after_ms"))
              Json.to_int_opt))
    | _ -> None
  in
  let rec go attempt =
    let resp = exchange () in
    let finish () =
      print_endline resp;
      match Json.parse resp with
      | Ok r
        when (match Json.member "ok" r with
             | Some v -> Json.equal v (Json.Bool true)
             | None -> false) ->
        0
      | Ok r -> (
        match Option.bind (Json.member "error" r) (Json.member "class") with
        | Some (Json.String cls) -> Protocol.exit_code_of_class cls
        | _ -> Bonsai_error.exit_code (Bonsai_error.Internal ""))
      | Error _ -> Bonsai_error.exit_code (Bonsai_error.Internal "")
    in
    match Json.parse resp with
    | Ok r when attempt < max_attempts -> (
      match overloaded_hint r with
      | Some hint_ms ->
        let ms = max hint_ms (Backoff.note_failure bo) in
        Printf.eprintf
          "request: server overloaded; retrying in %dms (attempt %d/%d)\n%!"
          ms (attempt + 1) max_attempts;
        Unix.sleepf (float_of_int ms /. 1000.0);
        go (attempt + 1)
      | None -> finish ())
    | _ -> finish ()
  in
  go 1

(* --- roles -------------------------------------------------------------- *)

let roles_cmd_run spec =
  guarded @@ fun () ->
  let net = resolve_network spec in
  Format.printf "semantic roles (BDD policy equality): %d@."
    (Bonsai_api.roles net);
  Format.printf "naive roles (unmatched communities kept): %d@."
    (Bonsai_api.roles ~keep_unmatched_comms:true net);
  0

(* --- command wiring ------------------------------------------------------ *)

open Cmdliner

(* Exit codes of the typed error taxonomy, shown in every --help. *)
let exits =
  Cmd.Exit.info 0 ~doc:"on success (including degraded results under \
                        $(b,--degrade))."
  :: Cmd.Exit.info 1
       ~doc:
         "on findings: a failed $(b,--check), error-severity lint \
          diagnostics, a non-empty $(b,diff), or fault scenarios that \
          disconnect/diverge/break the abstraction."
  :: Cmd.Exit.info 3
       ~doc:
         "on budget exhaustion ($(b,--budget-ms)/$(b,--budget-ticks)) \
          without $(b,--degrade)."
  :: Cmd.Exit.info 4 ~doc:"on configuration parse errors."
  :: Cmd.Exit.info 5 ~doc:"on compilation errors."
  :: Cmd.Exit.info 6 ~doc:"on solver divergence."
  :: Cmd.Exit.info 7
       ~doc:"on a soundness break (abstract and concrete disagree)."
  :: Cmd.Exit.info 8
       ~doc:
         "on a certificate failure: the independent checker refuted a \
          $(b,--certify) result or a stored certificate (never masked by \
          $(b,--degrade))."
  :: Cmd.Exit.info 9 ~doc:"on internal errors."
  :: List.filter
       (fun i -> Cmd.Exit.info_code i <> Cmd.Exit.ok)
       Cmd.Exit.defaults

let cmd_info name ~doc = Cmd.info name ~doc ~exits

let ec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ec" ] ~docv:"PREFIX"
        ~doc:"Destination class to operate on (default: the first).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format (text|json).")

let budget_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget in milliseconds. When it runs out the tool \
           stops the expensive phases and exits 3 — or degrades gracefully \
           under $(b,--degrade).")

let budget_ticks_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-ticks" ] ~docv:"N"
        ~doc:
          "Deterministic work budget: one tick per solver activation, \
           refinement iteration, or uncached BDD operation. Exhaustion \
           behaves like $(b,--budget-ms); useful for reproducible tests.")

let degrade_arg =
  Arg.(
    value & flag
    & info [ "degrade" ]
        ~doc:
          "On budget exhaustion or a failed $(b,--check), exit 0 with the \
           identity abstraction (every router its own role — always sound, \
           no compression) and a degradation report, instead of a nonzero \
           exit.")

let info_cmd =
  Cmd.v
    (cmd_info "info" ~doc:"Describe a network")
    Term.(const info_cmd_run $ network_arg)

let certify_flag =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Export the result as a certificate and re-validate it with the \
           independent checker (fresh BDD universe, executable route-map \
           semantics). A refuted certificate exits 8 — never masked by \
           $(b,--degrade); an audit that runs out of budget is reported \
           incomplete, never falsely certified.")

let audit_arg =
  Arg.(
    value
    & opt (enum [ ("full", Certify.Full); ("sample", Certify.Sample) ])
        Certify.Sample
    & info [ "audit" ] ~docv:"LEVEL"
        ~doc:
          "Audit granularity for certification: $(b,sample) (default) \
           checks every condition but spot-checks per-member/per-edge \
           agreement obligations; $(b,full) checks every member and every \
           concrete edge.")

let certificate_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "certificate" ] ~docv:"PATH"
        ~doc:
          "Write the certificate as JSON to $(docv) (checkable later with \
           $(b,bonsai certify)).")

let compress_cmd =
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"PATH" ~doc:"Write the abstract topology as DOT.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Compress every destination class and summarize.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Independently re-validate the effective-abstraction conditions \
             (paper Figure 4) on the result; exit 1 on any violation.")
  in
  let check_dataplane =
    Arg.(
      value & flag
      & info [ "check-dataplane" ]
          ~doc:
            "Compile the concrete and abstract per-class forwarding tables \
             (LPM FIBs with ACLs folded in) and check they bisimulate: \
             trace every destination class from every role representative \
             through both. A diverging (router, prefix, path) witness is a \
             soundness break (exit 7, never masked by $(b,--degrade)); \
             classes the budget leaves unchecked exit 3.")
  in
  let modules =
    Arg.(
      value
      & opt (some (enum [ ("auto", Modular.Auto); ("annot", Modular.Annot) ]))
          None
      & info [ "modules" ] ~docv:"MODE"
          ~doc:
            "Compress module-by-module with per-module fault isolation and \
             compose the result (implies $(b,--all)): $(b,annot) uses the \
             operators' $(i,module NAME) annotations, $(b,auto) partitions \
             by BFS regions. The per-module health table goes to stderr.")
  in
  Cmd.v
    (cmd_info "compress" ~doc:"Compress a network for one destination class")
    Term.(
      const compress_cmd_run $ network_arg $ ec_arg $ dot $ all $ check
      $ check_dataplane $ format_arg $ budget_ms_arg $ budget_ticks_arg
      $ degrade_arg $ certify_flag $ audit_arg $ certificate_arg $ modules)

let modular_cmd =
  let mode =
    Arg.(
      value
      & opt (enum [ ("auto", Modular.Auto); ("annot", Modular.Annot) ])
          Modular.Auto
      & info [ "modules" ] ~docv:"MODE"
          ~doc:
            "Partitioning mode: $(b,annot) requires a $(i,module NAME) \
             annotation on every router; $(b,auto) (default) grows BFS \
             regions of roughly equal size.")
  in
  let count =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ] ~docv:"N"
          ~doc:"Target module count for $(b,--modules auto).")
  in
  let inject =
    Arg.(
      value & opt_all string []
      & info [ "inject-fault" ] ~docv:"MODULE"
          ~doc:
            "Force the named module to run under a 1-tick budget (both \
             attempts) — a deterministic fault for testing isolation; \
             repeatable.")
  in
  Cmd.v
    (cmd_info "modular"
       ~doc:
         "Compress a network module-by-module, each module under its own \
          budget slice and BDD manager, with per-module fault isolation: a \
          module that diverges, exhausts its slice, or fails \
          $(b,--certify) is retried once with an escalated slice, then \
          degraded to the identity abstraction for that module only. \
          Prints the per-module health table (ok/retried/degraded/\
          refuted). The spec $(b,multiwan-stream:R:S) synthesizes and \
          compresses an R-region WAN one module at a time without \
          materializing the whole network. Exit 0 when every module is \
          healthy (or $(b,--degrade) is set), 3 when any module degraded, \
          8 when a certificate was refuted.")
    Term.(
      const modular_cmd_run $ network_arg $ mode $ count $ format_arg
      $ budget_ms_arg $ budget_ticks_arg $ degrade_arg $ certify_flag
      $ inject)

let diff_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD"
          ~doc:"Old network specification (e.g. file:PATH or fattree:4).")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"New network specification.")
  in
  Cmd.v
    (cmd_info "diff"
       ~doc:
         "Diff two network configurations into semantic deltas and \
          incrementally recompress the old network under them (exit 1 iff \
          the networks differ): classes whose refinement inputs are \
          untouched are reused verbatim, the rest re-refine from the \
          surviving partition or recompute against the policy-signature \
          cache.")
    Term.(
      const diff_cmd_run $ old_arg $ new_arg $ format_arg $ budget_ms_arg
      $ budget_ticks_arg $ degrade_arg $ certify_flag $ audit_arg
      $ certificate_arg)

let dataplane_diff_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD"
          ~doc:"Old network specification (e.g. file:PATH or fattree:4).")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"New network specification.")
  in
  Cmd.v
    (cmd_info "dataplane-diff"
       ~doc:
         "Report the exact forwarding-table changes a configuration change \
          produces: per (router, prefix), added/removed/modified FIB \
          entries with old and new ECMP next-hop sets and ACL-induced \
          drops. Destination classes whose solution is provably untouched \
          by the deltas (same origins, equal policy signatures on every \
          touched-incident edge, stable OSPF liveness) are reused without \
          recompilation — only dirty classes are recompiled on both \
          networks. Exit 0 when the data planes are identical, 1 when any \
          entry changed, 3 when the budget left classes unknown (without \
          $(b,--degrade); unknown classes are always listed, never \
          silently omitted).")
    Term.(
      const dataplane_diff_cmd_run $ old_arg $ new_arg $ format_arg
      $ budget_ms_arg $ budget_ticks_arg $ degrade_arg)

let watch_cmd =
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH"
          ~doc:
            "Configuration file to watch, or a directory whose *.cfg/*.conf \
             files (concatenated in name order) form one network.")
  in
  let poll_ms =
    Arg.(
      value & opt int 500
      & info [ "poll-ms" ] ~docv:"MS" ~doc:"Polling interval.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Compress the current contents, report, and exit instead of \
             watching (for scripting and tests).")
  in
  let max_events =
    Arg.(
      value & opt int 0
      & info [ "max-events" ] ~docv:"N"
          ~doc:
            "Exit 0 after N recompression events (0: watch forever). For \
             scripting and tests.")
  in
  Cmd.v
    (cmd_info "watch"
       ~doc:
         "Watch a configuration file or directory and incrementally \
          re-compress on every change. A parse error mid-watch keeps the \
          previous network alive (diagnostics on stderr); every event is \
          budget-governed by $(b,--budget-ms)/$(b,--budget-ticks) with the \
          same degradation rules as compress.")
    Term.(
      const watch_cmd_run $ path_arg $ poll_ms $ once $ max_events
      $ format_arg $ budget_ms_arg $ budget_ticks_arg $ degrade_arg)

let lint_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format (text|json).")
  in
  let min_severity =
    Arg.(
      value
      & opt
          (enum
             [
               ("info", Diag.Info);
               ("warning", Diag.Warning);
               ("error", Diag.Error);
             ])
          Diag.Info
      & info [ "min-severity" ] ~docv:"SEV"
          ~doc:"Hide diagnostics below this severity (error|warning|info).")
  in
  let no_compression =
    Arg.(
      value & flag
      & info [ "no-compression-check" ]
          ~doc:
            "Skip the compression-blocker report (it encodes every interface \
             policy as a BDD, the slow part on big networks).")
  in
  let list_checks =
    Arg.(
      value & flag
      & info [ "list-checks" ] ~doc:"List every check and exit.")
  in
  let flow =
    Arg.(
      value & flag
      & info [ "flow" ]
          ~doc:
            "Additionally run the whole-network route-provenance checks \
             (see $(b,bonsai flow)): cross-protocol leaks, unintended \
             transit, community provenance, blocker localization.")
  in
  Cmd.v
    (cmd_info "lint"
       ~doc:
         "Run the semantic configuration linter (exit 1 iff any \
          error-severity diagnostic; file:PATH networks get file:line \
          positions)")
    Term.(
      const lint_cmd_run $ network_arg $ format $ min_severity
      $ no_compression $ flow $ budget_ms_arg $ budget_ticks_arg
      $ list_checks)

let flow_cmd =
  let facts =
    Arg.(
      value & flag
      & info [ "facts" ]
          ~doc:
            "Also dump the provenance fixpoint for the class selected by \
             $(b,--ec) (default: the first): per router and plane, the \
             possible route origins, their taint, and the communities the \
             route may carry, grouped by compressed role.")
  in
  Cmd.v
    (cmd_info "flow"
       ~doc:
         "Whole-network route-provenance dataflow analysis: push (origin, \
          taint, communities) facts over every way a route can propagate — \
          OSPF adjacencies, deliverable BGP sessions, redistribution — to \
          a fixpoint, then report cross-protocol route leaks, unintended \
          transit (Gao-Rexford violations), communities matched where no \
          reachable origin can set them, and the upstream policy \
          divergence blocking compression. Facts over-approximate the \
          simulator, so every \"no origin can do X\" verdict is sound. \
          Exit 0 clean, 1 findings at warning or above, 3 budget exhausted \
          (facts degrade to unknown, never to partial state).")
    Term.(
      const flow_cmd_run $ network_arg $ ec_arg $ format_arg $ facts
      $ budget_ms_arg $ budget_ticks_arg)

let verify_cmd =
  let src =
    Arg.(
      required
      & opt (some string) None
      & info [ "src" ] ~docv:"ROUTER" ~doc:"Source router name.")
  in
  Cmd.v
    (cmd_info "verify"
       ~doc:
         "Answer a reachability query on the concrete and compressed \
          network (exit 7 if they disagree)")
    Term.(const verify_cmd_run $ network_arg $ src $ ec_arg)

let roles_cmd =
  Cmd.v
    (cmd_info "roles" ~doc:"Count unique router roles")
    Term.(const roles_cmd_run $ network_arg)

let policy_cmd =
  let from_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"ROUTER" ~doc:"Receiving router.")
  in
  let to_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "to" ] ~docv:"ROUTER" ~doc:"Sending neighbor.")
  in
  Cmd.v
    (cmd_info "policy"
       ~doc:"Show an interface's routing policy and its BDD (paper Figure 10)")
    Term.(const policy_cmd_run $ network_arg $ from_arg $ to_arg $ ec_arg)

let trace_cmd =
  let src =
    Arg.(
      required
      & opt (some string) None
      & info [ "src" ] ~docv:"ROUTER" ~doc:"Source router.")
  in
  let addr =
    Arg.(
      required
      & opt (some string) None
      & info [ "addr" ] ~docv:"A.B.C.D" ~doc:"Destination address.")
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Follow every ECMP next hop.")
  in
  Cmd.v
    (cmd_info "trace" ~doc:"Trace a packet through the data plane")
    Term.(const trace_cmd_run $ network_arg $ src $ addr $ all)

let explain_cmd =
  let a_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "a" ] ~docv:"ROUTER" ~doc:"First router.")
  in
  let b_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "b" ] ~docv:"ROUTER" ~doc:"Second router.")
  in
  Cmd.v
    (cmd_info "explain" ~doc:"Explain why two routers play different roles")
    Term.(const explain_cmd_run $ network_arg $ a_arg $ b_arg $ ec_arg)

let faults_cmd =
  let k =
    Arg.(
      value & opt int 1
      & info [ "k"; "kmax" ] ~docv:"K"
          ~doc:
            "Maximum number of simultaneous link failures (also reachable as \
             the prefix $(b,--k)).")
  in
  let samples =
    Arg.(
      value
      & opt (some int) None
      & info [ "samples" ] ~docv:"N"
          ~doc:
            "Force sampling with N scenarios (default: exhaustive when the \
             scenario space is small, 256 samples otherwise).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Sampling seed.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format (text|json).")
  in
  Cmd.v
    (cmd_info "faults"
       ~doc:
         "Re-solve the network under link-failure scenarios and check the \
          abstraction stays sound under each (exit 1 iff any scenario \
          disconnects a router, diverges, or breaks the abstraction; a \
          budget bounds the survey — scenarios it cannot afford are \
          reported as skipped, exit 3)")
    Term.(
      const faults_cmd_run $ network_arg $ ec_arg $ k $ samples $ seed
      $ format $ budget_ms_arg $ budget_ticks_arg)

let harden_cmd =
  let k =
    Arg.(
      value & opt int 1
      & info [ "k"; "kmax" ] ~docv:"K"
          ~doc:"Maximum number of simultaneous link failures per scenario.")
  in
  let rounds =
    Arg.(
      value & opt int 8
      & info [ "rounds" ] ~docv:"N"
          ~doc:
            "Maximum repair rounds (recompressions with a grown pin set). \
             0 disables repair: the sweep only diagnoses, and a \
             counterexample exits 7 with the unrepaired abstraction.")
  in
  let frontier =
    Arg.(
      value & opt int 1024
      & info [ "frontier" ] ~docv:"N"
          ~doc:
            "Exhaustive-enumeration cap: a scenario space at most this \
             large is swept completely, a larger one is importance-sampled.")
  in
  let samples =
    Arg.(
      value
      & opt (some int) None
      & info [ "samples" ] ~docv:"N"
          ~doc:
            "Initial sample size past the frontier (default 64; doubles \
             every repair round).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Sampling seed.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format (text|json).")
  in
  Cmd.v
    (cmd_info "harden"
       ~doc:
         "Compress with counterexample-guided repair until the abstraction \
          is sound under every swept failure scenario: on a soundness break \
          the disagreeing routers are pinned into singleton roles and the \
          network is recompressed. Budget or round exhaustion degrades to \
          the identity abstraction (sound, no compression; exit 3 or 7, or \
          0 under $(b,--degrade)) rather than emitting an unsound result.")
    Term.(
      const harden_cmd_run $ network_arg $ ec_arg $ k $ rounds $ frontier
      $ samples $ seed $ format $ budget_ms_arg $ budget_ticks_arg
      $ degrade_arg $ certify_flag $ audit_arg $ certificate_arg)

let certify_cmd =
  let cert_path_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CERT"
          ~doc:
            "Certificate file (JSON written by $(b,--certificate)) to check \
             against $(i,NETWORK).")
  in
  Cmd.v
    (cmd_info "certify"
       ~doc:
         "Independently check a stored compression certificate against the \
          live configuration: partition well-formedness, the paper's \
          Figure-4 bisimulation conditions (dest equivalence, ∀∃, transfer \
          and rank agreement) and stability of the claimed abstract \
          labeling — in a fresh BDD universe, with a BDD-free route-map \
          spot check. An unreadable, malformed, or refuted certificate \
          exits 8.")
    Term.(
      const certify_cmd_run $ network_arg $ cert_path_arg $ audit_arg
      $ budget_ms_arg $ budget_ticks_arg)

let export_cmd =
  let path =
    Arg.(
      required
      & opt (some string) None
      & info [ "o" ] ~docv:"PATH" ~doc:"Output file.")
  in
  let format =
    Arg.(
      value & opt string "text"
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: our text format or Cisco-IOS flavor (text|ios).")
  in
  Cmd.v
    (cmd_info "export" ~doc:"Write a network as a configuration file")
    Term.(const export_cmd_run $ network_arg $ path $ format)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"TCP endpoint.")

let serve_cmd =
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Speak the protocol on stdin/stdout instead of a socket \
             (deterministic; used by the golden tests).")
  in
  let max_inflight =
    Arg.(
      value & opt int 16
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission-queue bound: requests beyond N in flight receive a \
             typed $(i,overloaded) response with a retry hint instead of \
             queueing without bound.")
  in
  let cache_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:
            "Bound each network's policy-signature cache to N entries \
             (LRU; default unbounded).")
  in
  let max_networks =
    Arg.(
      value & opt int 8
      & info [ "max-networks" ] ~docv:"N"
          ~doc:"Bound the warm-network registry (LRU; default 8).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:
            "Persist warm state (compressed classes + signature caches) \
             here: written atomically on shutdown and every \
             $(b,--checkpoint-every) requests, restored on startup. A \
             corrupt or version-skewed checkpoint logs a warning and \
             serves cold.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Also checkpoint every N processed requests (0: only at \
                shutdown).")
  in
  let drain_ms =
    Arg.(
      value & opt int 2000
      & info [ "drain-ms" ] ~docv:"MS"
          ~doc:
            "Graceful-shutdown deadline: queued requests get this much \
             wall-clock to finish before being answered with \
             overloaded(\"server draining\").")
  in
  let preload =
    Arg.(
      value & opt_all string []
      & info [ "preload" ] ~docv:"NETWORK"
          ~doc:"Load (compress) this network before serving; repeatable.")
  in
  Cmd.v
    (cmd_info "serve"
       ~doc:
         "Run the resident engine: NDJSON requests (compress, lint, flow, \
          diff, dataplane-diff, faults, harden, load, unload, health, \
          stats, shutdown) \
          over a unix/TCP socket or stdio, against a registry of warm \
          networks. Every request runs under its own budget clamped by the \
          server-wide $(b,--budget-ms)/$(b,--budget-ticks); overload sheds \
          with a typed response; SIGTERM/SIGINT drain in-flight work and \
          checkpoint warm state.")
    Term.(
      const serve_cmd_run $ stdio $ socket_arg $ tcp_arg $ max_inflight
      $ budget_ms_arg $ budget_ticks_arg $ cache_cap $ max_networks
      $ checkpoint $ checkpoint_every $ drain_ms $ preload)

let request_cmd =
  let op =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:"Operation (compress|lint|flow|diff|faults|harden|load|\
                unload|health|stats|shutdown).")
  in
  let network =
    Arg.(
      value
      & opt (some string) None
      & info [ "network" ] ~docv:"NETWORK" ~doc:"Network spec parameter.")
  in
  let ec =
    Arg.(
      value
      & opt (some string) None
      & info [ "ec" ] ~docv:"PREFIX" ~doc:"Destination class prefix.")
  in
  let to_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "to" ] ~docv:"NETWORK" ~doc:"Target network for diff.")
  in
  let k =
    Arg.(
      value & opt (some int) None
      & info [ "k" ] ~docv:"K" ~doc:"Failure bound for faults/harden.")
  in
  let rounds =
    Arg.(
      value & opt (some int) None
      & info [ "rounds" ] ~docv:"N" ~doc:"Repair rounds for harden.")
  in
  let samples =
    Arg.(
      value & opt (some int) None
      & info [ "samples" ] ~docv:"N" ~doc:"Scenario samples.")
  in
  let seed =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Sampling seed.")
  in
  let raw =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"JSON"
          ~doc:"Send this exact JSON line instead of building one.")
  in
  let no_retry =
    Arg.(
      value & flag
      & info [ "no-retry" ]
          ~doc:
            "Exit 11 immediately on an $(i,overloaded) response instead of \
             honoring its retry_after_ms hint with bounded backed-off \
             retries.")
  in
  Cmd.v
    (cmd_info "request"
       ~doc:
         "Send one request to a running $(b,bonsai serve) and print the \
          response line. An $(i,overloaded) response is retried a bounded \
          number of times, honoring the server's retry_after_ms hint \
          (floored by exponential backoff) unless $(b,--no-retry); exits \
          with the same code the equivalent one-shot command would have \
          used (plus 11 when the server shed the request as overloaded).")
    Term.(
      const request_cmd_run $ socket_arg $ tcp_arg $ op $ network $ ec
      $ to_spec $ k $ rounds $ samples $ seed $ budget_ms_arg
      $ budget_ticks_arg $ raw $ no_retry)

let () =
  let doc = "Bonsai: control plane compression (SIGCOMM 2018 reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "bonsai" ~version:"1.0.0" ~doc ~exits)
          [ info_cmd; compress_cmd; modular_cmd; certify_cmd; diff_cmd; dataplane_diff_cmd; watch_cmd; lint_cmd; flow_cmd; verify_cmd; roles_cmd; export_cmd; policy_cmd; explain_cmd; trace_cmd; faults_cmd; harden_cmd; serve_cmd; request_cmd ]))

(* Solver and solution semantics: stability, Theorem 4.1 (solutions of
   loop-free SRPs form DAGs), agreement with reference shortest-path
   algorithms, multipath, and divergence detection. *)

(* reference BFS distance *)
let bfs_dist g ~dest =
  let n = Graph.n_nodes g in
  let dist = Array.make n (-1) in
  dist.(dest) <- 0;
  let q = Queue.create () in
  Queue.add dest q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      (Graph.succ g u)
  done;
  dist

let is_dag_rooted_at_dest sol =
  let g = sol.Solution.srp.Srp.graph in
  let n = Graph.n_nodes g in
  let color = Array.make n 0 in
  let acyclic = ref true in
  let rec visit u =
    if color.(u) = 1 then acyclic := false
    else if color.(u) = 0 then begin
      color.(u) <- 1;
      List.iter (fun (_, v) -> visit v) (Solution.fwd sol u);
      color.(u) <- 2
    end
  in
  for u = 0 to n - 1 do
    visit u
  done;
  !acyclic

let test_solver_stable_on_ring_rip () =
  let g = Generators.ring ~n:9 in
  let sol = Solver.solve_exn (Rip.make g ~dest:0) in
  Alcotest.(check bool) "stable" true (Solution.is_stable sol);
  Alcotest.(check bool) "dag" true (is_dag_rooted_at_dest sol);
  let dist = bfs_dist g ~dest:0 in
  for u = 0 to 8 do
    Alcotest.(check (option int)) "bfs distance" (Some dist.(u))
      (Solution.label sol u)
  done

let test_multipath_fwd () =
  (* diamond: 0 -- 1 -- 3, 0 -- 2 -- 3: node 3 has two equal paths *)
  let g = Graph.of_links ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let sol = Solver.solve_exn (Rip.make g ~dest:0) in
  Alcotest.(check int) "two forwarding edges" 2
    (List.length (Solution.fwd sol 3))

let test_dest_label_and_fwd () =
  let g = Generators.ring ~n:5 in
  let sol = Solver.solve_exn (Rip.make g ~dest:2) in
  Alcotest.(check (option int)) "dest label" (Some 0) (Solution.label sol 2);
  Alcotest.(check (list (pair int int))) "dest forwards nowhere" []
    (Solution.fwd sol 2)

let test_stability_violations_detected () =
  let g = Generators.ring ~n:5 in
  let srp = Rip.make g ~dest:0 in
  let sol = Solver.solve_exn srp in
  (* corrupt the solution *)
  let bad = { sol with Solution.labels = Array.copy sol.Solution.labels } in
  bad.Solution.labels.(2) <- Some 7;
  Alcotest.(check bool) "corrupted is unstable" false (Solution.is_stable bad);
  Alcotest.(check bool) "violation names node 2" true
    (List.mem_assoc 2 (Solution.stability_violations bad))

let test_forwarding_paths_enumeration () =
  let g = Graph.of_links ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let sol = Solver.solve_exn (Rip.make g ~dest:0) in
  let paths = Solution.forwarding_paths sol ~src:3 ~max_len:10 in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check int) "length 3" 3 (List.length p);
      Alcotest.(check (option int)) "ends at dest" (Some 0)
        (List.nth_opt p (List.length p - 1)))
    paths

let test_reaches () =
  let g = Graph.of_links ~n:4 [ (0, 1); (1, 2) ] in
  (* node 3 is isolated *)
  let sol = Solver.solve_exn (Rip.make g ~dest:0) in
  Alcotest.(check bool) "2 reaches" true (Solution.reaches sol 2);
  Alcotest.(check bool) "3 does not" false (Solution.reaches sol 3)

let test_solver_stats () =
  let g = Generators.ring ~n:8 in
  match Solver.solve (Rip.make g ~dest:0) with
  | Ok (_, stats) ->
    Alcotest.(check bool) "steps counted" true (stats.Solver.steps >= 8);
    Alcotest.(check bool) "updates bounded by steps" true
      (stats.Solver.updates <= stats.Solver.steps)
  | Error _ -> Alcotest.fail "ring diverged"

let test_solver_budget_exhaustion () =
  (* an absurdly small budget forces the divergence report even on a
     convergent instance *)
  let g = Generators.ring ~n:10 in
  match Solver.solve ~max_steps:1 (Rip.make g ~dest:0) with
  | Error (`Diverged _) -> ()
  | Error (`Budget _) -> Alcotest.fail "max_steps must diagnose, not bail"
  | Ok _ -> Alcotest.fail "budget of 1 step cannot solve a 10-ring"

let test_solution_choices () =
  let g = Graph.of_links ~n:3 [ (0, 1); (0, 2) ] in
  let sol = Solver.solve_exn (Rip.make g ~dest:0) in
  (* node 0 is offered hop-2 routes back from both leaves *)
  let cs = Solution.choices sol 0 in
  Alcotest.(check int) "two choices" 2 (List.length cs);
  List.iter
    (fun ((u, _), a) ->
      Alcotest.(check int) "receiver" 0 u;
      Alcotest.(check int) "echoed route" 2 a)
    cs

let test_solution_pp_smoke () =
  let g = Graph.of_links ~n:2 [ (0, 1) ] in
  let sol = Solver.solve_exn (Rip.make g ~dest:0) in
  let s = Format.asprintf "%a" Solution.pp sol in
  Alcotest.(check bool) "mentions nodes" true
    (Astring_contains.contains s "n0" && Astring_contains.contains s "n1")

(* --- seeded solving explores multiple stable solutions --------------- *)

let gadget_srp () =
  (* Figure 2's gadget, directly as an SRP: b's prefer routes from a. *)
  let g =
    Graph.of_links ~n:5 [ (0, 1); (0, 2); (0, 3); (4, 1); (4, 2); (4, 3) ]
  in
  let policy u v (a : Bgp.attr) =
    if u >= 1 && u <= 3 && v = 4 then Some { a with Bgp.lp = 200 } else Some a
  in
  Bgp.make ~policy g ~dest:0

let test_enumerate_ring_unique () =
  (* shortest-path RIP on a ring has exactly one stable solution *)
  let g = Generators.ring ~n:6 in
  let sols = Solver.enumerate_solutions (Rip.make g ~dest:0) in
  Alcotest.(check int) "unique solution" 1 (List.length sols);
  Alcotest.(check bool) "matches the solver" true
    ((List.hd sols).Solution.labels
    = (Solver.solve_exn (Rip.make g ~dest:0)).Solution.labels)

let test_enumerate_gadget_exactly_three () =
  (* the Figure 2 gadget has exactly three stable solutions: each b can be
     the one routing directly *)
  let sols = Solver.enumerate_solutions (gadget_srp ()) in
  Alcotest.(check int) "three solutions" 3 (List.length sols);
  List.iter
    (fun s -> Alcotest.(check bool) "stable" true (Solution.is_stable s))
    sols;
  (* sampling finds a subset of the enumeration *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "sampled solution is enumerated" true
        (List.exists (fun s' -> s'.Solution.labels = s.Solution.labels) sols))
    (Solver.solutions_sample ~tries:16 (gadget_srp ()))

let test_enumerate_rejects_large () =
  let g = Generators.ring ~n:20 in
  Alcotest.check_raises "too large"
    (Invalid_argument "Solver.enumerate_solutions: network too large")
    (fun () -> ignore (Solver.enumerate_solutions (Rip.make g ~dest:0)))

let test_gadget_multiple_solutions () =
  let sols = Solver.solutions_sample ~tries:24 (gadget_srp ()) in
  (* three symmetric solutions: each b can be the direct router *)
  Alcotest.(check bool)
    (Printf.sprintf "found %d distinct solutions" (List.length sols))
    true
    (List.length sols >= 2);
  List.iter
    (fun s -> Alcotest.(check bool) "each stable" true (Solution.is_stable s))
    sols

(* --- divergence: a bad-gadget-style SRP with no stable solution ------ *)

type owned = { owner : int; opath : int list }

let bad_gadget_srp () =
  (* Nodes 1,2,3 around dest 0, ring edges between them. Each node ranks
     the two-hop path through its clockwise neighbor above its direct
     path, and everything else below — the classic BGP "bad gadget"
     (Griffin et al.), which has no stable solution. *)
  let g =
    Graph.of_links ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (2, 3); (3, 1) ]
  in
  let clockwise = function 1 -> 2 | 2 -> 3 | 3 -> 1 | _ -> 0 in
  let rank o = function
    | [ v; 0 ] when v = clockwise o -> 0
    | [ 0 ] -> 1
    | _ -> 2
  in
  {
    Srp.graph = g;
    dest = 0;
    init = { owner = 0; opath = [] };
    compare = (fun a b ->
      if a.owner = b.owner then compare (rank a.owner a.opath) (rank b.owner b.opath)
      else 0);
    trans =
      (fun u v a ->
        match a with
        | None -> None
        | Some a ->
          let opath = v :: a.opath in
          if List.mem u opath then None else Some { owner = u; opath });
    attr_equal = ( = );
    pp_attr = (fun ppf a -> Format.fprintf ppf "%d:%s" a.owner
                  (String.concat "." (List.map string_of_int a.opath)));
  }

let test_enumerate_bad_gadget_empty () =
  Alcotest.(check int) "no stable solution" 0
    (List.length (Solver.enumerate_solutions (bad_gadget_srp ())))

let test_bad_gadget_diverges () =
  match Solver.solve ~max_steps:20000 (bad_gadget_srp ()) with
  | Ok (sol, _) ->
    Alcotest.failf "unexpected stable solution:@ %a" Solution.pp sol
  | Error (`Budget _) -> Alcotest.fail "max_steps must diagnose, not bail"
  | Error (`Diverged _) -> ()

let test_divergence_across_seeds () =
  for seed = 0 to 7 do
    match Solver.solve ~seed ~max_steps:20000 (bad_gadget_srp ()) with
    | Ok _ -> Alcotest.fail "bad gadget stabilized"
    | Error _ -> ()
  done

(* --- property tests -------------------------------------------------- *)

let prop_rip_stable_and_dag =
  QCheck.Test.make ~name:"RIP solutions stable + DAG (Thm 4.1)" ~count:60
    QCheck.(pair (int_range 2 25) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Generators.random_connected ~n ~extra:(n / 2) ~seed in
      let sol = Solver.solve_exn (Rip.make g ~dest:0) in
      Solution.is_stable sol && is_dag_rooted_at_dest sol)

let prop_rip_labels_are_bfs =
  QCheck.Test.make ~name:"RIP labels are BFS distances" ~count:60
    QCheck.(pair (int_range 2 20) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Generators.random_connected ~n ~extra:(n / 2) ~seed in
      let sol = Solver.solve_exn (Rip.make g ~dest:0) in
      let dist = bfs_dist g ~dest:0 in
      let ok = ref true in
      for u = 0 to n - 1 do
        let expect = if dist.(u) > Rip.max_hops then None else Some dist.(u) in
        if Solution.label sol u <> expect then ok := false
      done;
      !ok)

let prop_ospf_stable_any_seed =
  QCheck.Test.make ~name:"OSPF stable under any activation order" ~count:60
    QCheck.(triple (int_range 2 20) (int_range 0 500) (int_range 0 10))
    (fun (n, seed, solver_seed) ->
      let g = Generators.random_connected ~n ~extra:(n / 2) ~seed in
      let cost u v = 1 + ((u + (3 * v)) mod 5) in
      match Solver.solve ~seed:solver_seed (Ospf.make ~cost g ~dest:0) with
      | Ok (sol, _) -> Solution.is_stable sol && is_dag_rooted_at_dest sol
      | Error _ -> false)

let prop_bgp_config_stable =
  QCheck.Test.make ~name:"random configured BGP networks stabilize" ~count:40
    QCheck.(pair (int_range 2 16) (int_range 0 500))
    (fun (n, seed) ->
      let net = Synthesis.random_network ~n ~seed in
      let ec = List.hd (Ecs.compute net) in
      let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
      match Solver.solve srp with
      | Ok (sol, _) -> Solution.is_stable sol && is_dag_rooted_at_dest sol
      | Error _ -> false)

let () =
  Alcotest.run "simulate"
    [
      ( "solver",
        [
          Alcotest.test_case "ring rip" `Quick test_solver_stable_on_ring_rip;
          Alcotest.test_case "multipath" `Quick test_multipath_fwd;
          Alcotest.test_case "destination" `Quick test_dest_label_and_fwd;
          Alcotest.test_case "violations detected" `Quick
            test_stability_violations_detected;
          Alcotest.test_case "path enumeration" `Quick
            test_forwarding_paths_enumeration;
          Alcotest.test_case "reaches" `Quick test_reaches;
          Alcotest.test_case "stats" `Quick test_solver_stats;
          Alcotest.test_case "budget exhaustion" `Quick
            test_solver_budget_exhaustion;
          Alcotest.test_case "choices" `Quick test_solution_choices;
          Alcotest.test_case "pp" `Quick test_solution_pp_smoke;
        ] );
      ( "multiple-solutions",
        [
          Alcotest.test_case "gadget solutions" `Quick
            test_gadget_multiple_solutions;
          Alcotest.test_case "enumerate: ring unique" `Quick
            test_enumerate_ring_unique;
          Alcotest.test_case "enumerate: gadget = 3" `Quick
            test_enumerate_gadget_exactly_three;
          Alcotest.test_case "enumerate: bad gadget = 0" `Quick
            test_enumerate_bad_gadget_empty;
          Alcotest.test_case "enumerate: size guard" `Quick
            test_enumerate_rejects_large;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "bad gadget" `Quick test_bad_gadget_diverges;
          Alcotest.test_case "all seeds" `Quick test_divergence_across_seeds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rip_stable_and_dag;
            prop_rip_labels_are_bfs;
            prop_ospf_stable_any_seed;
            prop_bgp_config_stable;
          ] );
    ]
